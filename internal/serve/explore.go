package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"dualbank/internal/alloc"
	"dualbank/internal/bench"
	"dualbank/internal/explore"
	"dualbank/internal/machine"
)

// This file is the async exploration API: POST /v1/explore submits a
// design-space exploration job, GET /v1/explore/{id} polls it, and
// GET /v1/explore/{id}/frontier fetches the finished Pareto report.
// Jobs run in background goroutines but every measurement goes through
// the same bounded worker pool as /v1/run — exploration shares the
// service's backpressure, memo cache, and latency metrics. With
// Config.ExploreStore the engine checkpoints each evaluation as it
// completes, so a job cancelled by shutdown resumes on resubmission.

// ExploreRequest is the JSON body of POST /v1/explore.
type ExploreRequest struct {
	// Benchmarks names the built-in benchmarks to explore (at least
	// one; see GET /v1/benchmarks).
	Benchmarks []string `json:"benchmarks"`
	// Budget caps evaluations per benchmark (default 200, clamped to
	// the server's maximum).
	Budget int `json:"budget,omitempty"`
	// ExactK is the duplication-subset exhaustion bound (default 4).
	ExactK int `json:"exact_k,omitempty"`
	// Resume controls checkpoint replay when the server has a store
	// (default true).
	Resume *bool `json:"resume,omitempty"`
	// Banks and Ports pin the exploration's machine geometry — the hw
	// axis. Zero values explore the classic 2-bank, single-ported
	// machine.
	Banks int `json:"banks,omitempty"`
	Ports int `json:"ports,omitempty"`
}

// ExploreStatus is the JSON body of POST /v1/explore (202) and
// GET /v1/explore/{id}.
type ExploreStatus struct {
	ID string `json:"job_id"`
	// State is "running", "done", "failed", or "cancelled".
	State      string   `json:"state"`
	Benchmarks []string `json:"benchmarks"`
	Budget     int      `json:"budget"`
	// Done and Planned count evaluations; Planned grows when the
	// adaptive search schedules more rounds.
	Done    int `json:"done"`
	Planned int `json:"planned"`
	// Error is set for failed jobs.
	Error string `json:"error,omitempty"`
	// FrontierURL is set once the report is ready.
	FrontierURL string `json:"frontier_url,omitempty"`
}

// exploreJob is one background exploration.
type exploreJob struct {
	id         string
	benchmarks []string
	budget     int
	cancel     context.CancelFunc

	mu            sync.Mutex
	state         string // "running", "done", "failed", "cancelled"
	done, planned int
	err           string
	report        *explore.Report
}

func (j *exploreJob) status() ExploreStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := ExploreStatus{
		ID: j.id, State: j.state, Benchmarks: j.benchmarks, Budget: j.budget,
		Done: j.done, Planned: j.planned, Error: j.err,
	}
	if j.state == "done" {
		st.FrontierURL = "/v1/explore/" + j.id + "/frontier"
	}
	return st
}

// handleExploreSubmit is POST /v1/explore: validate, register the job,
// start it in the background, answer 202 with its status.
func (s *Server) handleExploreSubmit(w http.ResponseWriter, r *http.Request) {
	done := s.metrics.RequestStart()
	defer done()

	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req ExploreRequest
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Benchmarks) == 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("%q must name at least one benchmark", "benchmarks"))
		return
	}
	progs := make([]bench.Program, 0, len(req.Benchmarks))
	for _, n := range req.Benchmarks {
		p, ok := bench.ByName(n)
		if !ok {
			s.fail(w, http.StatusNotFound, fmt.Errorf("%w %q (see /v1/benchmarks)", ErrUnknownBench, n))
			return
		}
		progs = append(progs, p)
	}
	if req.Banks != 0 || req.Ports != 0 {
		if err := (machine.BankSpec{Banks: req.Banks, PortsPerBank: req.Ports}).Validate(); err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
	}
	budget := req.Budget
	if budget <= 0 {
		budget = 200
	}
	if budget > s.cfg.MaxExploreBudget {
		budget = s.cfg.MaxExploreBudget
	}

	jctx, cancel := context.WithCancel(s.jobsCtx)
	job := &exploreJob{
		id:         fmt.Sprintf("explore-%d", s.jobSeq.Add(1)),
		benchmarks: req.Benchmarks,
		budget:     budget,
		cancel:     cancel,
		state:      "running",
	}
	opts := explore.Options{
		Budget:   budget,
		Workers:  s.cfg.Workers,
		ExactK:   req.ExactK,
		Store:    s.cfg.ExploreStore,
		NoResume: req.Resume != nil && !*req.Resume,
		Banks:    req.Banks,
		Ports:    req.Ports,
		Evaluate: s.exploreEval,
		Progress: func(ev explore.Event) {
			s.metrics.ExploreEval(ev.Source)
			job.mu.Lock()
			job.done, job.planned = ev.Done, ev.Planned
			job.mu.Unlock()
		},
	}

	s.jobsMu.Lock()
	s.jobs[job.id] = job
	s.jobsMu.Unlock()
	s.metrics.ExploreJob("submitted")

	s.jobsWG.Add(1)
	go func() {
		defer s.jobsWG.Done()
		defer cancel()
		rep, err := explore.Explore(jctx, progs, opts)
		state := "done"
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled) && jctx.Err() != nil:
			state = "cancelled"
		default:
			state = "failed"
		}
		job.mu.Lock()
		job.state = state
		if err != nil {
			job.err = err.Error()
		} else {
			job.report = rep
		}
		job.mu.Unlock()
		s.metrics.ExploreJob(state)
	}()

	s.reply(w, http.StatusAccepted, job.status())
}

// exploreEval routes one exploration measurement through the serving
// pool, so it shares workers, backpressure, and the memo cache with
// interactive requests.
func (s *Server) exploreEval(ctx context.Context, p bench.Program, mode alloc.Mode, ro bench.RunOptions) (bench.Result, bool, error) {
	return s.pool.Do(ctx, Job{
		Prog: p, Mode: mode, Method: ro.Partitioner,
		FMPasses: ro.FMPasses, Profiled: ro.Profiled, DupOnly: ro.DupOnly,
		Banks: ro.Banks, Ports: ro.Ports,
		Cacheable: true,
	})
}

// lookupJob resolves {id} for the polling handlers.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) *exploreJob {
	s.jobsMu.Lock()
	job := s.jobs[r.PathValue("id")]
	s.jobsMu.Unlock()
	if job == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown exploration job %q", r.PathValue("id")))
	}
	return job
}

// handleExploreStatus is GET /v1/explore/{id}.
func (s *Server) handleExploreStatus(w http.ResponseWriter, r *http.Request) {
	done := s.metrics.RequestStart()
	defer done()
	if job := s.lookupJob(w, r); job != nil {
		s.reply(w, http.StatusOK, job.status())
	}
}

// handleExploreFrontier is GET /v1/explore/{id}/frontier: the full
// explore.Report once the job is done, 409 while it is still running,
// and the job's error for failed or cancelled jobs.
func (s *Server) handleExploreFrontier(w http.ResponseWriter, r *http.Request) {
	done := s.metrics.RequestStart()
	defer done()
	job := s.lookupJob(w, r)
	if job == nil {
		return
	}
	job.mu.Lock()
	state, report, jerr := job.state, job.report, job.err
	job.mu.Unlock()
	switch state {
	case "done":
		s.reply(w, http.StatusOK, report)
	case "running":
		s.fail(w, http.StatusConflict, fmt.Errorf("job %s is still running", job.id))
	default:
		s.fail(w, http.StatusUnprocessableEntity, fmt.Errorf("job %s %s: %s", job.id, state, jerr))
	}
}
