package genmc

import (
	"fmt"
	"strings"
)

// builder accumulates one program: the planned declarations, the loop
// nests, and the trailing stores that surface accumulator state into
// the out array. plan, buildLoops and finish are the three pipeline
// stages; render and eval are the two backends.
type builder struct {
	knobs Knobs
	r     *rng

	data []*array // a0..aN-1, seeded with random contents
	nxt  *array   // chain successor array (Chain archetype only)
	out  *array   // zero-initialized results array

	loopVars []string     // i0[, i1], shared by every nest
	accs     []scalarDecl // accumulators
	ptrs     []scalarDecl // chain pointers (Chain archetype only)

	nests []stmt // top-level loop nests, in program order
	final []stmt // trailing out-array stores
}

// scalarDecl is one `int name = init;` local.
type scalarDecl struct {
	name string
	init int32
}

// plan draws the declaration set: data arrays, the archetype's helper
// arrays, the out array, and the scalar pool.
func (b *builder) plan() {
	k, r := b.knobs, b.r
	for i := 0; i < k.Arrays; i++ {
		vals := make([]int32, k.Size)
		for j := range vals {
			vals[j] = r.i32()
		}
		b.data = append(b.data, &array{name: fmt.Sprintf("a%d", i), init: vals})
	}
	if k.Archetype == Chain {
		// A scrambled successor permutation: chasing it visits every
		// element in an order no affine analysis predicts.
		perm := make([]int32, k.Size)
		for i := range perm {
			perm[i] = int32(i)
		}
		for i := len(perm) - 1; i > 0; i-- {
			j := int(r.n(uint64(i + 1)))
			perm[i], perm[j] = perm[j], perm[i]
		}
		b.nxt = &array{name: "nxt", init: perm}
	}
	b.out = &array{name: "out", init: make([]int32, 8), out: true}

	for d := 0; d < k.Depth; d++ {
		b.loopVars = append(b.loopVars, fmt.Sprintf("i%d", d))
	}
	numAccs := 1 + int(r.n(3))
	for i := 0; i < numAccs; i++ {
		b.accs = append(b.accs, scalarDecl{fmt.Sprintf("acc%d", i), r.i32()})
	}
	if k.Archetype == Chain {
		numPtrs := 1 + int(r.n(2))
		for i := 0; i < numPtrs; i++ {
			b.ptrs = append(b.ptrs, scalarDecl{fmt.Sprintf("p%d", i), int32(r.n(uint64(k.Size)))})
		}
	}
}

// affineIdx builds a masked affine index expression over the loop
// variables: (off + c0*i0 [+ c1*i1]) & (size-1). Always in bounds.
func (b *builder) affineIdx(arr *array) expr {
	e := expr(intLit(int32(b.r.n(uint64(arr.size())))))
	for _, v := range b.loopVars {
		c := intLit(1 + int32(b.r.n(5)))
		e = bin{op: '+', l: e, r: bin{op: '*', l: scalarRef(v), r: c}}
	}
	return bin{op: '&', l: e, r: intLit(arr.mask())}
}

// ptrIdx builds a masked index through a chain pointer, optionally
// displaced: (p + off) & (size-1).
func (b *builder) ptrIdx(arr *array, p string) expr {
	e := expr(scalarRef(p))
	if off := int32(b.r.n(uint64(arr.size()))); off != 0 {
		e = bin{op: '+', l: e, r: intLit(off)}
	}
	return bin{op: '&', l: e, r: intLit(arr.mask())}
}

// accOps are the compound-assignment operators accumulators update
// through; valOps combine two loads into a value.
var accOps = []byte{'+', '^', '|', '&'}
var valOps = []byte{'*', '+', '-', '^'}

// bodyStmt draws one innermost-body statement in the archetype's
// access shape.
func (b *builder) bodyStmt() stmt {
	r := b.r
	acc := pick(r, b.accs).name
	switch b.knobs.Archetype {
	case Pair:
		// Two loads from distinct arrays in one statement — the
		// schedulable pair CB partitioning exists to split across banks.
		ai := int(r.n(uint64(len(b.data))))
		bi := (ai + 1 + int(r.n(uint64(len(b.data)-1)))) % len(b.data)
		la := load{arr: b.data[ai], idx: b.affineIdx(b.data[ai])}
		lb := load{arr: b.data[bi], idx: b.affineIdx(b.data[bi])}
		val := bin{op: pick(r, valOps), l: la, r: lb}
		if len(b.data) >= 3 && r.n(3) == 0 {
			// Store into a third array, keeping the loaded pair distinct.
			ci := ai
			for ci == ai || ci == bi {
				ci = int(r.n(uint64(len(b.data))))
			}
			dst := b.data[ci]
			return assignElem{arr: dst, idx: b.affineIdx(dst), op: 0,
				rhs: bin{op: '^', l: val, r: scalarRef(acc)}}
		}
		return assignScalar{name: acc, op: pick(r, accOps), rhs: val}
	case Window:
		// Two offsets of one array in one statement — the same-array
		// conflict only duplication can parallelize.
		x := pick(r, b.data)
		l1 := load{arr: x, idx: b.affineIdx(x)}
		l2 := load{arr: x, idx: b.affineIdx(x)}
		val := bin{op: pick(r, valOps), l: l1, r: l2}
		if r.n(4) == 0 {
			// Occasional write-back into the window array: duplicated
			// arrays then pay coherence stores, the cost side of the
			// paper's duplication trade-off.
			return assignElem{arr: x, idx: b.affineIdx(x), op: 0,
				rhs: bin{op: '+', l: l1, r: scalarRef(acc)}}
		}
		return assignScalar{name: acc, op: pick(r, accOps), rhs: val}
	default: // Chain
		p := pick(r, b.ptrs).name
		d := pick(r, b.data)
		switch r.n(3) {
		case 0:
			return assignScalar{name: acc, op: '^',
				rhs: load{arr: d, idx: b.ptrIdx(d, p)}}
		case 1:
			e := pick(r, b.data)
			return assignScalar{name: acc, op: '+',
				rhs: bin{op: pick(r, valOps),
					l: load{arr: d, idx: b.ptrIdx(d, p)},
					r: load{arr: e, idx: b.ptrIdx(e, p)}}}
		default:
			return assignElem{arr: d, idx: b.ptrIdx(d, p), op: 0,
				rhs: bin{op: '^', l: scalarRef(acc), r: scalarRef(p)}}
		}
	}
}

// buildLoops draws the loop nests. Trip counts are bounded so a whole
// program executes a few thousand innermost iterations at most — big
// enough to exercise the schedulers, small enough that a thousand
// programs run through three engines in seconds.
func (b *builder) buildLoops() {
	k, r := b.knobs, b.r
	for n := 0; n < k.Loops; n++ {
		var body []stmt
		if k.Archetype == Chain {
			// Advance every chain pointer once per innermost iteration:
			// the loads that follow are data-dependent on memory.
			for _, p := range b.ptrs {
				body = append(body, assignScalar{name: p.name, op: 0,
					rhs: load{arr: b.nxt, idx: b.ptrIdx(b.nxt, p.name)}})
			}
		}
		for s := 0; s < k.Stmts; s++ {
			body = append(body, b.bodyStmt())
		}
		if k.Depth == 2 {
			inner := loop{v: b.loopVars[1], n: 8 + int(r.n(16)), body: body}
			b.nests = append(b.nests, loop{v: b.loopVars[0], n: 6 + int(r.n(12)), body: []stmt{inner}})
		} else {
			b.nests = append(b.nests, loop{v: b.loopVars[0], n: 24 + int(r.n(64)), body: body})
		}
	}
}

// finish surfaces every accumulator and chain pointer into the out
// array, so scalar state that lived in registers all along becomes
// part of the checked memory image.
func (b *builder) finish() {
	slot := 0
	for _, a := range b.accs {
		b.final = append(b.final, assignElem{arr: b.out, idx: intLit(int32(slot)), op: 0, rhs: scalarRef(a.name)})
		slot++
	}
	for _, p := range b.ptrs {
		b.final = append(b.final, assignElem{arr: b.out, idx: intLit(int32(slot)), op: 0, rhs: scalarRef(p.name)})
		slot++
	}
}

// arrays lists every global array in declaration order.
func (b *builder) arrays() []*array {
	all := append([]*array(nil), b.data...)
	if b.nxt != nil {
		all = append(all, b.nxt)
	}
	return append(all, b.out)
}

// render is the codegen backend: the IR as a MiniC translation unit.
func (b *builder) render() string {
	var sb strings.Builder
	for _, a := range b.arrays() {
		if a.out {
			fmt.Fprintf(&sb, "int %s[%d];\n", a.name, a.size())
			continue
		}
		fmt.Fprintf(&sb, "int %s[%d] = {", a.name, a.size())
		for i, v := range a.init {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%d", v)
		}
		sb.WriteString("};\n")
	}
	sb.WriteString("\nvoid main() {\n")
	for _, v := range b.loopVars {
		fmt.Fprintf(&sb, "\tint %s;\n", v)
	}
	for _, s := range append(append([]scalarDecl(nil), b.accs...), b.ptrs...) {
		if s.init < 0 {
			fmt.Fprintf(&sb, "\tint %s = (%d);\n", s.name, s.init)
		} else {
			fmt.Fprintf(&sb, "\tint %s = %d;\n", s.name, s.init)
		}
	}
	for _, n := range b.nests {
		n.emitStmt(&sb, 1)
	}
	for _, s := range b.final {
		s.emitStmt(&sb, 1)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// eval is the oracle backend: it executes the same IR in Go and
// returns the expected final contents of every global array.
func (b *builder) eval() map[string][]int32 {
	st := &state{
		scalars: make(map[string]int32),
		arrays:  make(map[string][]int32),
	}
	for _, v := range b.loopVars {
		st.scalars[v] = 0
	}
	for _, s := range append(append([]scalarDecl(nil), b.accs...), b.ptrs...) {
		st.scalars[s.name] = s.init
	}
	for _, a := range b.arrays() {
		st.arrays[a.name] = append([]int32(nil), a.init...)
	}
	for _, n := range b.nests {
		n.exec(st)
	}
	for _, s := range b.final {
		s.exec(st)
	}
	out := make(map[string][]int32, len(st.arrays))
	for name, vals := range st.arrays {
		out[name] = vals
	}
	return out
}
