package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"dualbank/internal/ir"
)

// This file generalizes the bipartitioners to k-way partitioning for
// machines with more than two data banks. The k=2 case delegates to
// the battle-tested bipartition code paths (Partition, PartitionFM,
// PartitionKL, PartitionAnneal, the registered exact backend), so the
// generalized entry point is bit-for-bit the historical system on the
// default machine — a property the equivalence tests pin.

// KPartition is the result of a k-way partition: Sets[b] holds the
// symbols assigned to bank b. Cost is the residual cost — the summed
// weight of edges whose endpoints share a bank. Trace records the cost
// after each committed greedy move, starting with the all-in-bank-0
// cost, exactly as Partition.Trace does for k=2.
type KPartition struct {
	K     int
	Sets  [][]*ir.Symbol
	Cost  int64
	Trace []int64
}

// Bipartition converts a 2-way KPartition to the legacy Partition
// shape. It panics for K != 2.
func (p *KPartition) Bipartition() *Partition {
	if p.K != 2 {
		panic(fmt.Sprintf("core: Bipartition on %d-way partition", p.K))
	}
	return &Partition{SetX: p.Sets[0], SetY: p.Sets[1], Cost: p.Cost, Trace: p.Trace}
}

// KFromBipartition lifts a legacy Partition into the k-way shape.
func KFromBipartition(p *Partition) *KPartition {
	return &KPartition{
		K:     2,
		Sets:  [][]*ir.Symbol{p.SetX, p.SetY},
		Cost:  p.Cost,
		Trace: p.Trace,
	}
}

// String renders the partition for diagnostics.
func (p *KPartition) String() string {
	var sb strings.Builder
	for b, set := range p.Sets {
		var ns []string
		for _, s := range set {
			ns = append(ns, s.Name)
		}
		fmt.Fprintf(&sb, "bank %d: {%s}\n", b, strings.Join(ns, ", "))
	}
	fmt.Fprintf(&sb, "cost: %d", p.Cost)
	return sb.String()
}

// exactKPartition is the registered certified-exact k-way backend (see
// RegisterExactPartitioner for the 2-way equivalent).
var exactKPartition func(*Graph, int) *KPartition

// RegisterExactKPartitioner installs the k-way MethodExact backend.
// Called from internal/exact's init; last registration wins.
func RegisterExactKPartitioner(f func(*Graph, int) *KPartition) { exactKPartition = f }

// PartitionK partitions the graph's nodes into k banks with the chosen
// method. k == 2 delegates to the corresponding bipartitioner, so the
// default machine takes the historical code path; k > 2 runs the k-way
// generalizations below. fmPasses has the PartitionWithPasses meaning.
func (g *Graph) PartitionK(k int, m Method, fmPasses int) *KPartition {
	if k < 2 {
		panic(fmt.Sprintf("core: PartitionK with k = %d", k))
	}
	if k == 2 {
		return KFromBipartition(g.PartitionWithPasses(m, fmPasses))
	}
	switch m {
	case MethodKL:
		// KL is greedy plus flip-refinement; for k > 2 the FM-K
		// refinement passes are the same idea with the better data
		// structure, so KL folds into FM-K.
		return g.partitionFMK(k, fmMaxPasses)
	case MethodAnneal:
		return g.partitionAnnealK(k, 1)
	case MethodFM:
		if fmPasses < 0 {
			fmPasses = fmMaxPasses
		}
		return g.partitionFMK(k, fmPasses)
	case MethodExact:
		if exactKPartition == nil {
			panic("core: exact k-way partitioner not linked (import dualbank/internal/exact)")
		}
		return exactKPartition(g, k)
	default:
		return g.partitionGreedyK(k)
	}
}

// KPartitionFromSides materialises a KPartition from an explicit bank
// assignment (side[i] is node i's bank), computing the residual cost
// from the CSR view. The exact k-way backend and tests use it.
func (g *Graph) KPartitionFromSides(k int, side []int32) *KPartition {
	return g.kPartitionFrom(k, side)
}

func (g *Graph) kPartitionFrom(k int, side []int32) *KPartition {
	p := &KPartition{K: k, Sets: make([][]*ir.Symbol, k), Cost: g.CSR().cutCostK(side)}
	for i, s := range g.Nodes {
		p.Sets[side[i]] = append(p.Sets[side[i]], s)
	}
	return p
}

// cutCostK returns the summed weight of edges whose endpoints share a
// bank under the given assignment.
func (c *CSR) cutCostK(side []int32) int64 {
	var cost int64
	for i := range side {
		for h := c.Start[i]; h < c.Start[i+1]; h++ {
			if j := c.Adj[h]; int(j) > i && side[j] == side[i] {
				cost += c.W[h]
			}
		}
	}
	return cost
}

// moveGainK is the cost decrease from moving node i to bank dest: its
// edge weight into its current bank minus its edge weight into dest.
func (c *CSR) moveGainK(side []int32, i int, dest int32) int64 {
	var same, into int64
	for h := c.Start[i]; h < c.Start[i+1]; h++ {
		switch side[c.Adj[h]] {
		case side[i]:
			same += c.W[h]
		case dest:
			into += c.W[h]
		}
	}
	return same - into
}

// partitionGreedyK generalizes the paper's Figure 5 walk to k banks:
// every node starts in bank 0 and the walk repeatedly commits the
// (node, destination) move with the greatest net cost decrease,
// stopping when no move strictly decreases the cost. Ties break as in
// the bipartition walk — towards the preferred node (canonical
// first-reference rank on scanner-built graphs, node index otherwise)
// — and, between destinations of one node, towards the lowest bank
// index, which keeps the walk deterministic and makes bank indexes
// canonical (a fresh bank is only opened when no used bank does as
// well).
func (g *Graph) partitionGreedyK(k int) *KPartition {
	n := len(g.Nodes)
	c := g.CSR()
	side := make([]int32, n)

	pref := func(i int) int32 {
		if g.tiePref != nil {
			return g.tiePref[i]
		}
		return int32(i)
	}
	cost := c.Total
	trace := []int64{cost}
	for {
		bestI, bestDest, bestDelta := -1, int32(0), int64(0)
		for i := 0; i < n; i++ {
			for dest := int32(0); dest < int32(k); dest++ {
				if dest == side[i] {
					continue
				}
				delta := c.moveGainK(side, i, dest)
				if delta <= 0 {
					continue
				}
				better := delta > bestDelta
				if delta == bestDelta && bestI >= 0 {
					if p, bp := pref(i), pref(bestI); p > bp || (p == bp && dest < bestDest) {
						better = true
					}
				}
				if better {
					bestI, bestDest, bestDelta = i, dest, delta
				}
			}
		}
		if bestI < 0 {
			break
		}
		side[bestI] = bestDest
		cost -= bestDelta
		trace = append(trace, cost)
	}

	p := g.kPartitionFrom(k, side)
	p.Trace = trace
	return p
}

// partitionFMK refines the greedy k-way walk with FM-style passes:
// each pass tentatively moves every node once to its best alternative
// bank in best-gain order (negative gains allowed), keeps the best
// prefix of moves, and repeats until a pass fails to strictly improve.
// Because it starts from the greedy result and only commits strict
// improvements, FM-K is never worse than greedy-K — the property the
// k-way partitioner tests pin on random graphs.
func (g *Graph) partitionFMK(k, passes int) *KPartition {
	greedy := g.partitionGreedyK(k)
	n := len(g.Nodes)
	c := g.CSR()
	side := make([]int32, n)
	for b, set := range greedy.Sets {
		for _, s := range set {
			side[g.index[s]] = int32(b)
		}
	}
	cost := greedy.Cost

	type move struct {
		i    int32
		from int32
		to   int32
	}
	state := make([]int32, n)
	locked := make([]bool, n)
	for pass := 0; pass < passes; pass++ {
		copy(state, side)
		for i := range locked {
			locked[i] = false
		}
		cur, best, bestPrefix := cost, cost, 0
		var moves []move
		for step := 0; step < n; step++ {
			bi, bdest, bg := -1, int32(0), int64(math.MinInt64)
			for i := 0; i < n; i++ {
				if locked[i] {
					continue
				}
				for dest := int32(0); dest < int32(k); dest++ {
					if dest == state[i] {
						continue
					}
					if gn := c.moveGainK(state, i, dest); gn > bg {
						bi, bdest, bg = i, dest, gn
					}
				}
			}
			if bi < 0 {
				break
			}
			moves = append(moves, move{int32(bi), state[bi], bdest})
			state[bi] = bdest
			locked[bi] = true
			cur -= bg
			if cur < best {
				best, bestPrefix = cur, len(moves)
			}
		}
		if best >= cost {
			break
		}
		for _, mv := range moves[:bestPrefix] {
			side[mv.i] = mv.to
		}
		cost = best
	}

	p := g.kPartitionFrom(k, side)
	p.Trace = greedy.Trace
	return p
}

// partitionAnnealK is the k-way simulated annealer: the bipartition
// annealer's schedule with moves drawn as (random node, random other
// bank). The seed makes it deterministic.
func (g *Graph) partitionAnnealK(k int, seed int64) *KPartition {
	n := len(g.Nodes)
	c := g.CSR()
	total := c.Total
	rng := rand.New(rand.NewSource(seed))
	side := make([]int32, n)
	cost := c.cutCostK(side)
	bestSide := append([]int32(nil), side...)
	best := cost

	if n > 0 && total > 0 {
		temp := float64(total)
		const cooling = 0.95
		for ; temp > 0.01; temp *= cooling {
			for step := 0; step < 4*n; step++ {
				i := rng.Intn(n)
				dest := int32(rng.Intn(k - 1))
				if dest >= side[i] {
					dest++
				}
				gain := c.moveGainK(side, i, dest)
				if gain >= 0 || rng.Float64() < math.Exp(float64(gain)/temp) {
					side[i] = dest
					cost -= gain
					if cost < best {
						best = cost
						copy(bestSide, side)
					}
				}
			}
		}
	}
	p := g.kPartitionFrom(k, bestSide)
	p.Trace = []int64{total, p.Cost}
	return p
}
