package sim

import (
	"context"
	"fmt"
	"math"

	"dualbank/internal/compact"
	"dualbank/internal/ir"
	"dualbank/internal/machine"
	"dualbank/internal/opt"
)

// This file implements the predecoded execution engine: a second VLIW
// simulator that flattens a scheduled compact.Program into dense
// per-instruction operation records before execution. Branch and block
// targets, callee functions, symbol base addresses, and (where the
// port model makes them static) memory banks are all resolved once at
// predecode time, so the per-cycle execute loop performs no map
// lookups and no heap allocation. The interpretive Machine in vliw.go
// remains the reference semantics; differential tests pin the two
// engines to identical cycle counts, bandwidth counters, and memory
// images on the whole benchmark suite.

// pOp is one predecoded non-control operation. Register fields are
// physical-file indices into FastMachine.Regs; for memory operations
// base/size describe the accessed symbol and bank carries the
// statically resolved bank index (meaningless under the low-order port
// model, where the address low bits decide at run time).
type pOp struct {
	kind ir.OpKind
	bank uint8
	dst  uint8
	a0   uint8
	a1   uint8
	idx  uint8 // index register, 0 = direct access
	imm  uint32
	base int32
	size int32
}

// pInstr is one predecoded long instruction: a dense run of data
// operations plus at most one control operation (the PCU slot).
type pInstr struct {
	opStart int32
	opEnd   int32
	ctrl    ir.OpKind // OpInvalid when the PCU slot is empty
	ctrlReg uint8     // condition or loop-count register
	succ0   int32     // taken / loop-body block index
	succ1   int32     // fall-through block index
	callee  *pFunc
	nops    int64 // occupied slots, including the control op
}

// pBlock is a predecoded basic block.
type pBlock struct {
	instrs []pInstr
}

// pFunc is a predecoded function. Blocks are indexed by ir block ID,
// mirroring compact.Func.Blocks; ops is the flattened operation pool
// every pInstr slices into.
type pFunc struct {
	name   string
	blocks []pBlock
	ops    []pOp
	entry  int32
}

// Predecoded is a program prepared for the fast execution path,
// produced by Predecode and shared by any number of FastMachines.
type Predecoded struct {
	Prog *compact.Program

	main  *pFunc
	ports machine.PortModel
	// Bank geometry, resolved once from Prog.Spec.
	nbanks, pports int
	bankOf         [machine.MaxUnits]uint8
	// initBanks are the initial bank images (global initializers
	// applied); Reset restores them with one copy per bank.
	initBanks [][]uint32
}

// bankIndexOf maps a single-bank tag to its bank index; unassigned
// data lives in bank 0 (the baseline single-bank layout).
func bankIndexOf(b machine.Bank, nbanks int) int {
	if i := b.Index(); i >= 0 && i < nbanks {
		return i
	}
	return 0
}

// Predecode flattens a scheduled program for the fast path. The
// program must be in physical-register form.
func Predecode(p *compact.Program) (*Predecoded, error) {
	spec := p.Spec.Norm()
	pd := &Predecoded{
		Prog:   p,
		ports:  p.Ports,
		nbanks: spec.Banks,
		pports: spec.PortsPerBank,
	}
	pd.initBanks = make([][]uint32, pd.nbanks)
	for b := range pd.initBanks {
		pd.initBanks[b] = make([]uint32, machine.BankWords)
	}
	for u := range pd.bankOf {
		if i := spec.BankOfUnit(machine.Unit(u)).Index(); i >= 0 {
			pd.bankOf[u] = uint8(i)
		}
	}
	for _, s := range p.Src.Symbols() {
		for i, w := range s.Init {
			a := s.Addr + i
			if p.Ports == machine.PortsLowOrder {
				pd.initBanks[a%pd.nbanks][a/pd.nbanks] = w
				continue
			}
			if s.Bank == machine.BankBoth {
				for b := range pd.initBanks {
					pd.initBanks[b][a] = w
				}
				continue
			}
			pd.initBanks[bankIndexOf(s.Bank, pd.nbanks)][a] = w
		}
	}

	funcs := make(map[string]*pFunc, len(p.Funcs))
	for name, f := range p.Funcs {
		if !f.Src.Phys() {
			return nil, fmt.Errorf("sim: predecode %s: program must be in physical-register form", name)
		}
		funcs[name] = &pFunc{name: name, entry: int32(f.Src.Entry().ID)}
	}
	for name, f := range p.Funcs {
		pf := funcs[name]
		pf.blocks = make([]pBlock, len(f.Blocks))
		for bi, sb := range f.Blocks {
			pb := &pf.blocks[bi]
			pb.instrs = make([]pInstr, 0, len(sb.Instrs))
			for _, in := range sb.Instrs {
				pi := pInstr{opStart: int32(len(pf.ops)), ctrl: ir.OpInvalid, succ0: -1, succ1: -1}
				for u, op := range in.Slots {
					if op == nil {
						continue
					}
					pi.nops++
					switch op.Kind {
					case ir.OpBr, ir.OpDo:
						pi.ctrl = op.Kind
						pi.succ0 = int32(sb.Src.Succs[0].ID)
						if op.Kind == ir.OpDo {
							pi.ctrlReg = uint8(op.Args[0])
						}
					case ir.OpCondBr, ir.OpEndDo:
						pi.ctrl = op.Kind
						pi.succ0 = int32(sb.Src.Succs[0].ID)
						pi.succ1 = int32(sb.Src.Succs[1].ID)
						if op.Kind == ir.OpCondBr {
							pi.ctrlReg = uint8(op.Args[0])
						}
					case ir.OpRet:
						pi.ctrl = ir.OpRet
					case ir.OpCall:
						callee := funcs[op.Callee]
						if callee == nil {
							return nil, fmt.Errorf("sim: predecode %s: call to unknown %s", name, op.Callee)
						}
						pi.ctrl = ir.OpCall
						pi.callee = callee
					default:
						po, err := predecodeOp(op, machine.Unit(u), p.Ports, &pd.bankOf, pd.nbanks)
						if err != nil {
							return nil, fmt.Errorf("sim: predecode %s: %w", name, err)
						}
						pf.ops = append(pf.ops, po)
					}
				}
				pi.opEnd = int32(len(pf.ops))
				pb.instrs = append(pb.instrs, pi)
			}
		}
	}
	pd.main = funcs["main"]
	if pd.main == nil {
		return nil, fmt.Errorf("sim: predecode: no main function")
	}
	return pd, nil
}

// predecodeOp flattens one data operation, resolving the memory bank
// where the port model makes it static: under the banked model the
// executing unit determines the bank, under the dual-ported model the
// operation's own tag does.
func predecodeOp(op *ir.Op, u machine.Unit, ports machine.PortModel, bankOf *[machine.MaxUnits]uint8, nbanks int) (pOp, error) {
	po := pOp{
		kind: op.Kind,
		dst:  uint8(op.Dst),
		a0:   uint8(op.Args[0]),
		a1:   uint8(op.Args[1]),
	}
	switch op.Kind {
	case ir.OpConst:
		po.imm = uint32(int32(op.Imm))
	case ir.OpFConst:
		po.imm = math.Float32bits(float32(op.FImm))
	case ir.OpLoad, ir.OpStore:
		if op.Idx != ir.NoReg {
			po.idx = uint8(op.Idx)
		}
		po.base = int32(op.Sym.Addr)
		po.size = int32(op.Sym.Size)
		switch ports {
		case machine.PortsBanked:
			po.bank = bankOf[u]
		case machine.PortsDualPorted:
			po.bank = uint8(bankIndexOf(op.Bank, nbanks))
		}
	}
	return po, nil
}

// pWrite is one deferred result of the read phase.
type pWrite struct {
	val   uint32
	addr  int32
	reg   uint8
	isReg bool
	bank  uint8
}

// FastMachine executes a predecoded program. It reproduces the
// interpretive Machine's observable behaviour exactly — cycle counts,
// bandwidth and conflict counters, and final memory images — but its
// steady-state loop allocates nothing and performs no map lookups.
// The debugging hooks of the reference engine (Trace, AfterInstr,
// CheckPorts) are deliberately absent; use sim.Machine for those.
type FastMachine struct {
	pd *Predecoded

	// Banks are the data-memory banks; X and Y alias Banks[0] and
	// Banks[1] (every spec has at least two).
	Banks [][]uint32
	X, Y  []uint32
	// Regs is the unified physical register file view.
	Regs [65]uint32

	// Cycles, OpsExecuted, MemAccesses, DualMemCycles and BankConflicts
	// mirror the reference Machine's counters.
	Cycles        int64
	OpsExecuted   int64
	MemAccesses   int64
	DualMemCycles int64
	BankConflicts int64
	// MaxCycles bounds execution.
	MaxCycles int64

	loops  [maxHWLoopDepth]int32
	nloops int
	writes []pWrite

	cancel ctxCheck
}

// NewMachine builds a fresh FastMachine: banks hold the predecoded
// initial images, registers are zero.
func (pd *Predecoded) NewMachine() *FastMachine {
	m := &FastMachine{
		pd:        pd,
		Banks:     make([][]uint32, pd.nbanks),
		MaxCycles: DefaultMaxSteps,
		writes:    make([]pWrite, 0, machine.MaxUnits),
	}
	for b := range m.Banks {
		m.Banks[b] = make([]uint32, machine.BankWords)
		copy(m.Banks[b], pd.initBanks[b])
	}
	m.X, m.Y = m.Banks[0], m.Banks[1]
	return m
}

// Reset restores the machine to its initial state so it can be run
// again without reallocating. It performs no heap allocation.
func (m *FastMachine) Reset() {
	for b := range m.Banks {
		copy(m.Banks[b], m.pd.initBanks[b])
	}
	m.Regs = [65]uint32{}
	m.Cycles = 0
	m.OpsExecuted = 0
	m.MemAccesses = 0
	m.DualMemCycles = 0
	m.BankConflicts = 0
	m.nloops = 0
	m.writes = m.writes[:0]
}

// Run executes main() to completion.
func (m *FastMachine) Run() error {
	return m.RunContext(context.Background())
}

// RunContext executes main() to completion, honoring ctx: the
// steady-state loop polls for cancellation at basic-block boundaries
// (decimated so an uncancelled context costs one nil check per block)
// and returns an error wrapping ctx.Err() once the context is done.
func (m *FastMachine) RunContext(ctx context.Context) error {
	m.cancel.arm(ctx)
	defer m.cancel.disarm()
	return m.runFunc(m.pd.main)
}

// runFunc executes one function invocation until its ret.
func (m *FastMachine) runFunc(f *pFunc) error {
	lowOrder := m.pd.ports == machine.PortsLowOrder
	bi := f.entry
block:
	for {
		if err := m.cancel.poll(); err != nil {
			return fmt.Errorf("sim: %s: %w", f.name, err)
		}
		b := &f.blocks[bi]
		for ii := range b.instrs {
			in := &b.instrs[ii]
			m.Cycles++
			if m.Cycles > m.MaxCycles {
				return fmt.Errorf("sim: cycle limit exceeded in %s", f.name)
			}
			m.OpsExecuted += in.nops
			writes := m.writes[:0]
			var ports [machine.MaxBanks]int
			mem := 0

			// Read phase: evaluate every data operation against the
			// pre-instruction register file.
			ops := f.ops[in.opStart:in.opEnd]
			for oi := range ops {
				op := &ops[oi]
				switch op.kind {
				case ir.OpLoad:
					addr, bank, err := m.resolveFast(op, lowOrder)
					if err != nil {
						return fmt.Errorf("sim: %s: %w", f.name, err)
					}
					ports[bank]++
					mem++
					writes = append(writes, pWrite{isReg: true, reg: op.dst, val: m.Banks[bank][addr]})
				case ir.OpStore:
					addr, bank, err := m.resolveFast(op, lowOrder)
					if err != nil {
						return fmt.Errorf("sim: %s: %w", f.name, err)
					}
					ports[bank]++
					mem++
					writes = append(writes, pWrite{addr: addr, bank: bank, val: m.Regs[op.a0]})
				default:
					v, err := m.evalFast(op)
					if err != nil {
						return fmt.Errorf("sim: %s: %w", f.name, err)
					}
					writes = append(writes, pWrite{isReg: true, reg: op.dst, val: v})
				}
			}

			if mem > 0 {
				m.MemAccesses += int64(mem)
				if mem >= 2 {
					m.DualMemCycles++
				}
				// Under the low-order-interleaved organisation a run-time
				// same-bank conflict serialises the instruction: the
				// memory system drains each bank's accesses through its
				// ports, and the instruction retires with the slowest
				// bank. (Under the banked model the schedule is validated
				// conflict-free; the reference engine's CheckPorts
				// assertion guards that invariant.)
				if lowOrder {
					stall := 0
					for b := 0; b < m.pd.nbanks; b++ {
						if rounds := (ports[b] + m.pd.pports - 1) / m.pd.pports; rounds-1 > stall {
							stall = rounds - 1
						}
					}
					if stall > 0 {
						m.Cycles += int64(stall)
						m.BankConflicts += int64(stall)
						m.DualMemCycles--
					}
				}
			}

			// Write phase: commit all results in slot order.
			for wi := range writes {
				w := &writes[wi]
				if w.isReg {
					m.Regs[w.reg] = w.val
				} else {
					m.Banks[w.bank][w.addr] = w.val
				}
			}
			m.writes = writes[:0]

			// Control transfer after the instruction completes.
			switch in.ctrl {
			case ir.OpInvalid:
			case ir.OpBr:
				bi = in.succ0
				continue block
			case ir.OpCondBr:
				if m.Regs[in.ctrlReg] != 0 {
					bi = in.succ0
				} else {
					bi = in.succ1
				}
				continue block
			case ir.OpRet:
				return nil
			case ir.OpDo:
				n := int32(m.Regs[in.ctrlReg])
				if n < 1 {
					return fmt.Errorf("sim: do with count %d in %s", n, f.name)
				}
				if m.nloops >= maxHWLoopDepth {
					return fmt.Errorf("sim: loop stack overflow in %s", f.name)
				}
				m.loops[m.nloops] = n
				m.nloops++
				bi = in.succ0
				continue block
			case ir.OpEndDo:
				if m.nloops == 0 {
					return fmt.Errorf("sim: enddo with empty loop stack in %s", f.name)
				}
				m.loops[m.nloops-1]--
				if m.loops[m.nloops-1] > 0 {
					bi = in.succ0
				} else {
					m.nloops--
					bi = in.succ1
				}
				continue block
			case ir.OpCall:
				if err := m.runFunc(in.callee); err != nil {
					return err
				}
			}
		}
		return fmt.Errorf("sim: block b%d of %s has no terminator", bi, f.name)
	}
}

// resolveFast computes the in-bank word address and bank index of a
// memory access. The bank is predecoded except under the low-order
// model, where address parity decides.
func (m *FastMachine) resolveFast(op *pOp, lowOrder bool) (int32, uint8, error) {
	return resolvePOp(&m.Regs, op, lowOrder)
}

// resolvePOp is resolveFast over an explicit register file, shared with
// the compiled engine's staged (two-phase) instruction path. The
// low-order model is defined on the classic 2-bank machine (wider
// specs reject it at allocation), so its address split is the parity.
func resolvePOp(r *[65]uint32, op *pOp, lowOrder bool) (int32, uint8, error) {
	idx := int32(0)
	if op.idx != 0 {
		idx = int32(r[op.idx])
	}
	if idx < 0 || idx >= op.size {
		return 0, 0, fmt.Errorf("index %d out of range (size %d)", idx, op.size)
	}
	addr := op.base + idx
	if lowOrder {
		return addr >> 1, uint8(addr & 1), nil
	}
	return addr, op.bank, nil
}

// evalFast computes a scalar operation's result from the current
// register file; semantics match Machine.evalALU exactly.
func (m *FastMachine) evalFast(op *pOp) (uint32, error) {
	return evalPOp(&m.Regs, op)
}

// evalPOp is evalFast over an explicit register file, shared with the
// compiled engine's staged (two-phase) instruction path.
func evalPOp(r *[65]uint32, op *pOp) (uint32, error) {
	iv := func(i uint8) int32 { return int32(r[i]) }
	fv := func(i uint8) float32 { return math.Float32frombits(r[i]) }
	fb := math.Float32bits

	switch op.kind {
	case ir.OpConst, ir.OpFConst:
		return op.imm, nil
	case ir.OpMov:
		return r[op.a0], nil
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpShr, ir.OpSetEQ, ir.OpSetNE, ir.OpSetLT,
		ir.OpSetLE, ir.OpSetGT, ir.OpSetGE:
		return uint32(opt.EvalIntBin(op.kind, iv(op.a0), iv(op.a1))), nil
	case ir.OpDiv, ir.OpRem:
		if iv(op.a1) == 0 {
			return 0, fmt.Errorf("integer division by zero")
		}
		return uint32(opt.EvalIntBin(op.kind, iv(op.a0), iv(op.a1))), nil
	case ir.OpNeg:
		return uint32(-iv(op.a0)), nil
	case ir.OpNot:
		return uint32(^iv(op.a0)), nil
	case ir.OpMac:
		return uint32(iv(op.dst) + iv(op.a0)*iv(op.a1)), nil
	case ir.OpFAdd:
		return fb(fv(op.a0) + fv(op.a1)), nil
	case ir.OpFSub:
		return fb(fv(op.a0) - fv(op.a1)), nil
	case ir.OpFMul:
		return fb(fv(op.a0) * fv(op.a1)), nil
	case ir.OpFDiv:
		return fb(fv(op.a0) / fv(op.a1)), nil
	case ir.OpFNeg:
		return fb(-fv(op.a0)), nil
	case ir.OpFMac:
		return fb(fv(op.dst) + fv(op.a0)*fv(op.a1)), nil
	case ir.OpFSetEQ:
		return uint32(b2i(fv(op.a0) == fv(op.a1))), nil
	case ir.OpFSetNE:
		return uint32(b2i(fv(op.a0) != fv(op.a1))), nil
	case ir.OpFSetLT:
		return uint32(b2i(fv(op.a0) < fv(op.a1))), nil
	case ir.OpFSetLE:
		return uint32(b2i(fv(op.a0) <= fv(op.a1))), nil
	case ir.OpFSetGT:
		return uint32(b2i(fv(op.a0) > fv(op.a1))), nil
	case ir.OpFSetGE:
		return uint32(b2i(fv(op.a0) >= fv(op.a1))), nil
	case ir.OpIntToFloat:
		return fb(float32(iv(op.a0))), nil
	case ir.OpFloatToInt:
		return uint32(FloatToInt(fv(op.a0))), nil
	}
	return 0, fmt.Errorf("sim: cannot execute %s", op.kind)
}

// Word reads sym[idx], mirroring Machine.Word: the bank-0 copy for
// duplicated symbols, with a coherence check across every bank.
func (m *FastMachine) Word(sym *ir.Symbol, idx int) (uint32, error) {
	a := sym.Addr + idx
	if m.pd.ports == machine.PortsLowOrder {
		return m.Banks[a%m.pd.nbanks][a/m.pd.nbanks], nil
	}
	if sym.Bank == machine.BankBoth {
		v := m.Banks[0][a]
		for b := 1; b < m.pd.nbanks; b++ {
			if m.Banks[b][a] != v {
				return 0, fmt.Errorf("sim: duplicated symbol %s[%d] incoherent: %s=%#x %s=%#x",
					sym, idx, machine.BankAt(0), v, machine.BankAt(b), m.Banks[b][a])
			}
		}
		return v, nil
	}
	return m.Banks[bankIndexOf(sym.Bank, m.pd.nbanks)][a], nil
}

// Int32 reads sym[idx] as an integer.
func (m *FastMachine) Int32(sym *ir.Symbol, idx int) (int32, error) {
	w, err := m.Word(sym, idx)
	return int32(w), err
}

// Float32 reads sym[idx] as a float.
func (m *FastMachine) Float32(sym *ir.Symbol, idx int) (float32, error) {
	w, err := m.Word(sym, idx)
	return math.Float32frombits(w), err
}
