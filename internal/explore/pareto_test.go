package explore

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestFrontierMatchesBruteForce is the property test: on randomized
// point sets, the incremental frontier must equal the O(n²) pairwise
// reference exactly — same points, same order.
func TestFrontierMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(60)
		span := 1 + rng.Intn(20) // small spans force coordinate ties
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{
				Config: fmt.Sprintf("c%d", i),
				Cycles: int64(rng.Intn(span)),
				Cost:   rng.Intn(span),
			}
		}
		var f Frontier
		for _, p := range pts {
			f.Add(p)
		}
		got, want := f.Points(), bruteFrontier(pts)
		if len(got) != len(want) {
			t.Fatalf("trial %d: frontier size %d, brute force %d\ngot  %v\nwant %v",
				trial, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: point %d differs\ngot  %v\nwant %v", trial, i, got, want)
			}
		}
	}
}

// TestFrontierInvariants checks the sorted-and-strictly-improving
// shape and the dominance query.
func TestFrontierInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var f Frontier
	for i := 0; i < 300; i++ {
		f.Add(Point{Config: fmt.Sprintf("c%d", i), Cycles: int64(rng.Intn(50)), Cost: rng.Intn(50)})
	}
	pts := f.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].Cost <= pts[i-1].Cost || pts[i].Cycles >= pts[i-1].Cycles {
			t.Fatalf("frontier not strictly improving at %d: %v", i, pts)
		}
	}
	// Every frontier point must dominate a reference worse than all of
	// them; none dominates a reference better than all of them.
	if got := f.Dominating(Point{Cycles: 1 << 40, Cost: 1 << 20}); len(got) != len(pts) {
		t.Errorf("worst-case ref dominated by %d of %d points", len(got), len(pts))
	}
	if got := f.Dominating(Point{Cycles: -1, Cost: -1}); len(got) != 0 {
		t.Errorf("best-case ref dominated by %d points", len(got))
	}
}

// TestFrontierTieKeepsIncumbent pins the determinism tie-break: equal
// coordinates keep the first-inserted point.
func TestFrontierTieKeepsIncumbent(t *testing.T) {
	var f Frontier
	if !f.Add(Point{Config: "first", Cycles: 10, Cost: 10}) {
		t.Fatal("first add rejected")
	}
	if f.Add(Point{Config: "second", Cycles: 10, Cost: 10}) {
		t.Fatal("coordinate tie displaced the incumbent")
	}
	if pts := f.Points(); len(pts) != 1 || pts[0].Config != "first" {
		t.Fatalf("frontier %v, want the incumbent only", pts)
	}
}
