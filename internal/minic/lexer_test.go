package minic

import (
	"testing"
	"testing/quick"
)

func kinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := LexAll(src)
	if err != nil {
		t.Fatalf("LexAll(%q): %v", src, err)
	}
	out := make([]Kind, 0, len(toks))
	for _, tok := range toks {
		out = append(out, tok.Kind)
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	got := kinds(t, "int x = 42;")
	want := []Kind{KwInt, IDENT, Assign, INTLIT, Semi, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	src := "+ - * / % & | ^ ~ ! << >> && || ++ -- == != < <= > >= = += -= *= /= %= &= |= ^= <<= >>= ? :"
	want := []Kind{
		Plus, Minus, Star, Slash, Percent, Amp, Pipe, Caret, Tilde, Bang,
		Shl, Shr, AndAnd, OrOr, Inc, Dec,
		EQ, NE, LT, LE, GT, GE,
		Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign,
		PercentAssign, AmpAssign, PipeAssign, CaretAssign, ShlAssign, ShrAssign,
		Question, Colon, EOF,
	}
	got := kinds(t, src)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
		i    int64
		f    float64
	}{
		{"0", INTLIT, 0, 0},
		{"12345", INTLIT, 12345, 0},
		{"0x10", INTLIT, 16, 0},
		{"0xFFFFFFFF", INTLIT, -1, 0}, // wraps to 32-bit
		{"1.5", FLOATLIT, 0, 1.5},
		{"0.25", FLOATLIT, 0, 0.25},
		{".5", FLOATLIT, 0, 0.5},
		{"1e3", FLOATLIT, 0, 1000},
		{"2.5e-2", FLOATLIT, 0, 0.025},
		{"3.0f", FLOATLIT, 0, 3.0},
	}
	for _, c := range cases {
		toks, err := LexAll(c.src)
		if err != nil {
			t.Errorf("LexAll(%q): %v", c.src, err)
			continue
		}
		tok := toks[0]
		if tok.Kind != c.kind {
			t.Errorf("%q: kind %v, want %v", c.src, tok.Kind, c.kind)
		}
		if c.kind == INTLIT && tok.Int != c.i {
			t.Errorf("%q: value %d, want %d", c.src, tok.Int, c.i)
		}
		if c.kind == FLOATLIT && tok.Flt != c.f {
			t.Errorf("%q: value %g, want %g", c.src, tok.Flt, c.f)
		}
	}
}

func TestLexComments(t *testing.T) {
	got := kinds(t, "a // line comment\n b /* block\n comment */ c")
	want := []Kind{IDENT, IDENT, IDENT, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	if _, err := LexAll("a /* never closed"); err == nil {
		t.Fatal("expected error for unterminated block comment")
	}
}

func TestLexBadCharacter(t *testing.T) {
	if _, err := LexAll("int $x;"); err == nil {
		t.Fatal("expected error for $")
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, err := LexAll("intx forx if_ return_ while0")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks[:5] {
		if tok.Kind != IDENT {
			t.Errorf("%v should lex as identifier", tok)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

// TestLexIntRoundTrip checks that any int32 printed in decimal lexes
// back to itself.
func TestLexIntRoundTrip(t *testing.T) {
	f := func(v int32) bool {
		n := v
		neg := n < 0
		if neg {
			if n == -2147483648 {
				return true // -(min) not representable as a literal
			}
			n = -n
		}
		toks, err := LexAll(fmtInt(int64(n)))
		if err != nil || toks[0].Kind != INTLIT {
			return false
		}
		got := toks[0].Int
		if neg {
			got = -got
		}
		return int32(got) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func fmtInt(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
