// Tradeoff explores the performance/cost frontier of §4.2: for a
// chosen application it evaluates every allocation strategy, applies
// the paper's first-order cost model (Cost = X + Y + 2S + I), and
// prints the Performance Gain, Cost Increase, and Performance/Cost
// Ratio of each — the per-application view of Table 3. It is a thin
// wrapper over the exploration engine's fixed-mode sweep
// (internal/explore.Fixed); the full search over partitioners and
// duplication subsets lives in cmd/dspexplore.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	"dualbank/internal/bench"
	"dualbank/internal/explore"
)

func main() {
	name := flag.String("bench", "lpc", "application benchmark to explore (see dspbench -list)")
	flag.Parse()

	p, ok := bench.ByName(*name)
	if !ok {
		log.Fatalf("unknown benchmark %q; available: %s", *name, strings.Join(bench.Names(), ", "))
	}
	base, rows, err := explore.Fixed(context.Background(), p, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Performance/cost frontier for %s\n", p.Name)
	fmt.Printf("baseline: %d cycles, cost %d words (X=%d Y=%d stack=%d instr=%d)\n\n",
		base.Cycles, base.Mem.Total(), base.Mem.XData, base.Mem.YData, base.Mem.Stack, base.Mem.Instr)
	fmt.Printf("%-14s %10s %6s %6s %6s %6s   %s\n",
		"mode", "cycles", "PG", "CI", "PCR", "cost", "duplicated")
	for _, row := range rows {
		fmt.Printf("%-14s %10d %6.2f %6.2f %6.2f %6d   %s\n",
			row.Mode, row.Cycles, row.Metrics.PG, row.Metrics.CI, row.Metrics.PCR, row.Cost,
			strings.Join(row.Duplicated, ","))
	}
	fmt.Println()
	fmt.Println("PCR > 1 means the speedup outweighs the memory cost; the paper")
	fmt.Println("uses this to argue full duplication is never cost-effective while")
	fmt.Println("partitioning (and selective duplication) usually is.")
}
