package sim_test

import (
	"math"
	"math/big"
	"strings"
	"testing"
	"testing/quick"

	"dualbank/internal/alloc"
	"dualbank/internal/compact"
	"dualbank/internal/ir"
	"dualbank/internal/lower"
	"dualbank/internal/minic"
	"dualbank/internal/opt"
	"dualbank/internal/regalloc"
	"dualbank/internal/sim"
)

// compileTo compiles source fully (through scheduling) under a mode.
func compileTo(t *testing.T, src string, mode alloc.Mode) (*ir.Program, *compact.Program) {
	t.Helper()
	file, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := minic.Analyze(file); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	p, err := lower.Program(file, "t")
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	opt.Run(p, opt.Options{})
	if _, err := regalloc.Run(p); err != nil {
		t.Fatalf("regalloc: %v", err)
	}
	res, err := alloc.Run(p, alloc.Options{Mode: mode})
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	sched, err := compact.Schedule(p, compact.Config{Ports: res.Ports})
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	return p, sched
}

func globalOf(p *ir.Program, name string) *ir.Symbol {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// TestEvalIntBinAgainstBigInt cross-checks the architecture's 32-bit
// wraparound arithmetic against arbitrary-precision references.
func TestEvalIntBinAgainstBigInt(t *testing.T) {
	mask := big.NewInt(1)
	mask.Lsh(mask, 32)
	toI32 := func(b *big.Int) int32 {
		m := new(big.Int).Mod(b, mask)
		return int32(uint32(m.Uint64()))
	}
	f := func(a, b int32) bool {
		ba, bb := big.NewInt(int64(a)), big.NewInt(int64(b))
		if opt.EvalIntBin(ir.OpAdd, a, b) != toI32(new(big.Int).Add(ba, bb)) {
			return false
		}
		if opt.EvalIntBin(ir.OpSub, a, b) != toI32(new(big.Int).Sub(ba, bb)) {
			return false
		}
		if opt.EvalIntBin(ir.OpMul, a, b) != toI32(new(big.Int).Mul(ba, bb)) {
			return false
		}
		sh := uint(b) & 31
		if opt.EvalIntBin(ir.OpShl, a, b) != int32(uint32(a)<<sh) {
			return false
		}
		if opt.EvalIntBin(ir.OpShr, a, b) != a>>sh {
			return false
		}
		if b != 0 {
			if opt.EvalIntBin(ir.OpDiv, a, b) != a/b || opt.EvalIntBin(ir.OpRem, a, b) != a%b {
				return false
			}
		}
		lt := int32(0)
		if a < b {
			lt = 1
		}
		return opt.EvalIntBin(ir.OpSetLT, a, b) == lt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloatToIntEdgeCases(t *testing.T) {
	cases := []struct {
		in   float32
		want int32
	}{
		{2.9, 2},
		{-2.9, -2},
		{0, 0},
		{float32(math.NaN()), 0},
		{float32(math.Inf(1)), math.MaxInt32},
		{float32(math.Inf(-1)), math.MinInt32},
		{3e9, math.MaxInt32},
		{-3e9, math.MinInt32},
	}
	for _, c := range cases {
		if got := sim.FloatToInt(c.in); got != c.want {
			t.Errorf("FloatToInt(%g) = %d, want %d", c.in, got, c.want)
		}
	}
}

const smallSrc = `
int r[2];
float fr;
void main() {
	int i;
	int s = 0;
	for (i = 0; i < 10; i++) { s += i * i; }
	r[0] = s;
	r[1] = s % 7;
	fr = (float)s / 4.0;
}
`

// TestInterpMachineAgree runs the same compiled program on both
// engines and compares every output word.
func TestInterpMachineAgree(t *testing.T) {
	for _, mode := range []alloc.Mode{alloc.SingleBank, alloc.CB, alloc.CBDup, alloc.Ideal} {
		p, sched := compileTo(t, smallSrc, mode)
		in := sim.NewInterp(p)
		if err := in.Run(); err != nil {
			t.Fatalf("%v: interp: %v", mode, err)
		}
		m := sim.NewMachine(sched)
		if err := m.Run(); err != nil {
			t.Fatalf("%v: machine: %v", mode, err)
		}
		for _, name := range []string{"r", "fr"} {
			g := globalOf(p, name)
			for i := 0; i < g.Size; i++ {
				mw, err := m.Word(g, i)
				if err != nil {
					t.Fatal(err)
				}
				if iw := in.Word(g, i); iw != mw {
					t.Fatalf("%v: %s[%d]: interp %#x, machine %#x", mode, name, i, iw, mw)
				}
			}
		}
	}
}

// TestMachineCycleCounting: the cycle count equals the number of long
// instructions retired, which for straight-line code equals the static
// count.
func TestMachineCycleCounting(t *testing.T) {
	_, sched := compileTo(t, `int r; void main() { r = 1 + 2; }`, alloc.SingleBank)
	m := sim.NewMachine(sched)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Cycles != int64(sched.StaticInstrs()) {
		t.Fatalf("cycles = %d, static instrs = %d", m.Cycles, sched.StaticInstrs())
	}
}

// TestDuplicatedCoherence: after a run, both copies of duplicated data
// are identical (Machine.Word asserts this internally).
func TestDuplicatedCoherence(t *testing.T) {
	src := `
float s[16] = {1.0, 2.0, 3.0};
float R[4];
void main() {
	int m;
	int i;
	for (m = 0; m < 4; m++) {
		float acc = 0.0;
		int lim = 16 - m;
		for (i = 0; i < lim; i++) {
			acc += s[i] * s[i + m];
		}
		R[m] = acc;
		s[m] = acc * 0.5;
	}
}
`
	p, sched := compileTo(t, src, alloc.CBDup)
	m := sim.NewMachine(sched)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	s := globalOf(p, "s")
	if !s.Duplicated {
		t.Fatal("s should be duplicated")
	}
	for i := 0; i < s.Size; i++ {
		if _, err := m.Word(s, i); err != nil {
			t.Fatalf("coherence violated: %v", err)
		}
	}
}

// TestInterpProfileCounts: profiling counts block executions.
func TestInterpProfileCounts(t *testing.T) {
	p, _ := compileTo(t, smallSrc, alloc.SingleBank)
	in := sim.NewInterp(p)
	in.Profile = true
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	var loopCount int64
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.LoopDepth > 0 && b.ExecCount > loopCount {
				loopCount = b.ExecCount
			}
		}
	}
	if loopCount != 10 {
		t.Fatalf("hot block executed %d times, want 10", loopCount)
	}
}

// TestInterpOutOfBounds: an out-of-range access is caught, not silently
// wrapped.
func TestInterpOutOfBounds(t *testing.T) {
	src := `
int a[4];
void main() {
	int i = 9;
	a[i] = 1;
}
`
	p, sched := compileTo(t, src, alloc.SingleBank)
	in := sim.NewInterp(p)
	if err := in.Run(); err == nil {
		t.Fatal("interp accepted out-of-bounds store")
	}
	m := sim.NewMachine(sched)
	if err := m.Run(); err == nil {
		t.Fatal("machine accepted out-of-bounds store")
	}
}

// TestIntegerDivisionByZeroTrap: both engines trap runtime division by
// zero.
func TestIntegerDivisionByZeroTrap(t *testing.T) {
	src := `
int r;
int zero;
void main() {
	r = 10 / zero;
}
`
	p, sched := compileTo(t, src, alloc.SingleBank)
	in := sim.NewInterp(p)
	if err := in.Run(); err == nil {
		t.Fatal("interp accepted division by zero")
	}
	m := sim.NewMachine(sched)
	if err := m.Run(); err == nil {
		t.Fatal("machine accepted division by zero")
	}
	_ = p
}

// TestMachineRejectsVirtualProgram: the VLIW machine requires physical
// register form.
func TestMachineRejectsVirtualProgram(t *testing.T) {
	file, err := minic.Parse(`void main() {}`)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Analyze(file); err != nil {
		t.Fatal(err)
	}
	p, err := lower.Program(file, "t")
	if err != nil {
		t.Fatal(err)
	}
	res, err := alloc.Run(p, alloc.Options{Mode: alloc.SingleBank})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := compact.Schedule(p, compact.Config{Ports: res.Ports})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine(sched)
	if err := m.Run(); err == nil {
		t.Fatal("machine must reject virtual-register programs")
	}
}

// TestTraceOutput: the per-instruction trace names the cycle, the
// function, and the issued operations.
func TestTraceOutput(t *testing.T) {
	_, sched := compileTo(t, `int r; void main() { r = 2 + 3; }`, alloc.SingleBank)
	m := sim.NewMachine(sched)
	var sb strings.Builder
	m.Trace = &sb
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Count(out, "\n")
	if int64(lines) != m.Cycles {
		t.Fatalf("trace has %d lines for %d cycles", lines, m.Cycles)
	}
	for _, want := range []string{"main", "ret", "store"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

// TestHardwareLoopNesting: deeply nested counted loops exercise the
// loop stack.
func TestHardwareLoopNesting(t *testing.T) {
	src := `
int r;
void main() {
	int i;
	int j;
	int k;
	int s = 0;
	for (i = 0; i < 3; i++) {
		for (j = 0; j < 4; j++) {
			for (k = 0; k < 5; k++) {
				s += 1;
			}
		}
	}
	r = s;
}
`
	p, sched := compileTo(t, src, alloc.CB)
	m := sim.NewMachine(sched)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	g := globalOf(p, "r")
	v, err := m.Int32(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 60 {
		t.Fatalf("r = %d, want 60", v)
	}
}
