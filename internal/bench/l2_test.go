package bench

import (
	"context"
	"strings"
	"sync"
	"testing"

	"dualbank/internal/alloc"
	"dualbank/internal/core"
)

// fakeL2 is an in-memory ResultCache recording its traffic.
type fakeL2 struct {
	mu   sync.Mutex
	m    map[string]Result
	gets int
	puts int
}

func newFakeL2() *fakeL2 { return &fakeL2{m: make(map[string]Result)} }

func (f *fakeL2) Get(key string) (Result, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gets++
	r, ok := f.m[key]
	return r, ok
}

func (f *fakeL2) Put(key string, r Result) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.puts++
	f.m[key] = r
}

// TestCacheKeyMirrorsRunKey holds the exported string key to the same
// aliasing contract as the in-memory struct key: distinct
// configurations get distinct strings, provably-equivalent requests
// share one, and the engine is part of the identity.
func TestCacheKeyMirrorsRunKey(t *testing.T) {
	p := Program{Name: "fir_32_1"}
	type req struct {
		mode alloc.Mode
		ro   RunOptions
	}
	distinct := []req{
		{alloc.SingleBank, RunOptions{}},
		{alloc.CB, RunOptions{}},
		{alloc.CB, RunOptions{Profiled: true}},
		{alloc.CB, RunOptions{Partitioner: core.MethodFM}},
		{alloc.CB, RunOptions{Partitioner: core.MethodFM, FMPasses: 2}},
		{alloc.CBDup, RunOptions{}},
		{alloc.CBDup, RunOptions{DupOnly: []string{}}},
		{alloc.CBDup, RunOptions{DupOnly: []string{"x", "y"}}},
		{alloc.CB, RunOptions{Engine: EngineFast}},
		{alloc.CB, RunOptions{Engine: EngineMachine}},
		{alloc.Ideal, RunOptions{}},
	}
	seen := make(map[string]int)
	for i, r := range distinct {
		k := CacheKey(p, r.mode, r.ro)
		if !strings.HasPrefix(k, "run|fir_32_1|") {
			t.Errorf("key %q lacks the run|bench prefix", k)
		}
		if j, ok := seen[k]; ok {
			t.Errorf("configs %d and %d alias onto one string key %q", j, i, k)
		}
		seen[k] = i
	}
	same := [][2]req{
		{{alloc.CBDup, RunOptions{DupOnly: []string{"y", "x"}}},
			{alloc.CBDup, RunOptions{DupOnly: []string{"x", "y", "x"}}}},
		{{alloc.CB, RunOptions{FMPasses: 3}}, {alloc.CB, RunOptions{}}},
		{{alloc.SingleBank, RunOptions{Profiled: true}}, {alloc.SingleBank, RunOptions{}}},
	}
	for i, pair := range same {
		a := CacheKey(p, pair[0].mode, pair[0].ro)
		b := CacheKey(p, pair[1].mode, pair[1].ro)
		if a != b {
			t.Errorf("pair %d: equivalent requests got distinct keys %q / %q", i, a, b)
		}
	}
	// Different benchmarks never collide.
	if CacheKey(Program{Name: "fft_256"}, alloc.CB, RunOptions{}) == CacheKey(p, alloc.CB, RunOptions{}) {
		t.Error("distinct benchmarks share a key")
	}
}

// TestHarnessL2WriteThroughAndHit proves the L2 protocol: a cold miss
// computes and writes through; a fresh harness over the same L2 serves
// the key without computing and reports it cached; accounting lands in
// L2Hits, not Hits or Misses.
func TestHarnessL2WriteThroughAndHit(t *testing.T) {
	p, ok := ByName("fir_32_1")
	if !ok {
		t.Fatal("fir_32_1 missing")
	}
	l2 := newFakeL2()
	h1 := NewHarness(1)
	h1.L2 = l2
	want, cached, err := h1.RunCtx(context.Background(), p, alloc.CB, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("cold computation reported cached")
	}
	if l2.puts != 1 {
		t.Fatalf("cold computation made %d L2 puts, want 1", l2.puts)
	}
	if st := h1.Stats(); st.Misses != 1 || st.L2Hits != 0 {
		t.Fatalf("cold stats %+v, want 1 miss, 0 l2 hits", st)
	}

	// A second harness — another node in the fleet — finds the result.
	h2 := NewHarness(1)
	h2.L2 = l2
	got, cached, err := h2.RunCtx(context.Background(), p, alloc.CB, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("L2-served measurement not reported cached")
	}
	if got.Cycles != want.Cycles || got.Bench != want.Bench || got.Mode != want.Mode {
		t.Errorf("L2 result %+v differs from computed %+v", got, want)
	}
	st := h2.Stats()
	if st.Misses != 0 || st.L2Hits != 1 {
		t.Fatalf("warm stats %+v, want 0 misses, 1 l2 hit", st)
	}
	if l2.puts != 1 {
		t.Errorf("L2 hit wrote back (%d puts)", l2.puts)
	}

	// The L2 hit seeded the in-memory cache: a repeat is a plain hit
	// with no further L2 traffic.
	gets := l2.gets
	if _, cached, err = h2.RunCtx(context.Background(), p, alloc.CB, RunOptions{}); err != nil || !cached {
		t.Fatalf("repeat after L2 hit: cached=%v err=%v", cached, err)
	}
	if l2.gets != gets {
		t.Errorf("in-memory hit still consulted the L2 (%d -> %d gets)", gets, l2.gets)
	}
	if st := h2.Stats(); st.Hits != 1 {
		t.Errorf("repeat stats %+v, want 1 hit", st)
	}
}

// TestHarnessCachedProbe exercises the non-blocking availability probe.
func TestHarnessCachedProbe(t *testing.T) {
	p, ok := ByName("fir_32_1")
	if !ok {
		t.Fatal("fir_32_1 missing")
	}
	h := NewHarness(1)
	if h.Cached(p, alloc.CB, RunOptions{}) {
		t.Error("empty harness claims a cached entry")
	}
	if _, _, err := h.RunCtx(context.Background(), p, alloc.CB, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if !h.Cached(p, alloc.CB, RunOptions{}) {
		t.Error("completed entry not visible to Cached")
	}
	if h.Cached(p, alloc.CBDup, RunOptions{}) {
		t.Error("distinct mode aliased by Cached")
	}
	// A failing computation must not register as available.
	bad := Program{Name: "broken", Source: "not minic"}
	if _, _, err := h.RunCtx(context.Background(), bad, alloc.CB, RunOptions{}); err == nil {
		t.Fatal("broken source compiled")
	}
	if h.Cached(bad, alloc.CB, RunOptions{}) {
		t.Error("failed entry reported available")
	}
}
