package dualbank_test

// This file regenerates every table and figure of the paper's
// evaluation as Go benchmarks. Each sub-benchmark compiles and
// simulates one (program, allocation-mode) pair and reports the
// simulated cycle count and the percentage gain over the single-bank
// baseline as custom metrics:
//
//	go test -bench 'Figure7' -benchtime 1x
//	go test -bench 'Figure8' -benchtime 1x
//	go test -bench 'Table3'  -benchtime 1x
//
// The wall-clock ns/op numbers measure this reproduction's compiler
// and simulator; the paper's results correspond to the cycles and
// gain_% metrics.

import (
	"fmt"
	"runtime"
	"testing"

	"dualbank"
	"dualbank/internal/alloc"
	"dualbank/internal/bench"
	"dualbank/internal/cost"
	"dualbank/internal/sim"
)

// measure compiles and runs p under mode once per iteration and
// reports cycle metrics.
func measure(b *testing.B, p bench.Program, mode alloc.Mode, baseCycles int64) bench.Result {
	b.Helper()
	var res bench.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.Run(p, mode)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Cycles), "cycles")
	if baseCycles > 0 {
		gain := (float64(baseCycles)/float64(res.Cycles) - 1) * 100
		b.ReportMetric(gain, "gain_%")
	}
	return res
}

func baseline(b *testing.B, p bench.Program) int64 {
	b.Helper()
	res, err := bench.Run(p, alloc.SingleBank)
	if err != nil {
		b.Fatal(err)
	}
	return res.Cycles
}

// BenchmarkFigure7 reproduces the kernel experiment: CB partitioning
// vs the dual-ported Ideal over the twelve Table 1 kernels.
func BenchmarkFigure7(b *testing.B) {
	for _, p := range bench.Kernels() {
		p := p
		base := int64(0)
		b.Run(p.Name+"/baseline", func(b *testing.B) {
			r := measure(b, p, alloc.SingleBank, 0)
			base = r.Cycles
		})
		for _, mode := range bench.Figure7Modes {
			mode := mode
			b.Run(fmt.Sprintf("%s/%v", p.Name, mode), func(b *testing.B) {
				measure(b, p, mode, base)
			})
		}
	}
}

// BenchmarkFigure8 reproduces the application experiment: CB, profiled
// weights (Pr), partial duplication (Dup) and Ideal over the eleven
// Table 2 applications.
func BenchmarkFigure8(b *testing.B) {
	for _, p := range bench.Applications() {
		p := p
		base := int64(0)
		b.Run(p.Name+"/baseline", func(b *testing.B) {
			r := measure(b, p, alloc.SingleBank, 0)
			base = r.Cycles
		})
		for _, mode := range bench.Figure8Modes {
			mode := mode
			b.Run(fmt.Sprintf("%s/%v", p.Name, mode), func(b *testing.B) {
				measure(b, p, mode, base)
			})
		}
	}
}

// BenchmarkTable3 reproduces the performance/cost trade-off table:
// full duplication, partial duplication, CB partitioning and Ideal,
// reporting PG, CI and PCR per application.
func BenchmarkTable3(b *testing.B) {
	for _, p := range bench.Applications() {
		p := p
		baseRes, err := bench.Run(p, alloc.SingleBank)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range bench.Table3Modes {
			mode := mode
			b.Run(fmt.Sprintf("%s/%v", p.Name, mode), func(b *testing.B) {
				res := measure(b, p, mode, baseRes.Cycles)
				m := cost.Compare(baseRes.Cycles, res.Cycles, baseRes.Mem, res.Mem)
				b.ReportMetric(m.PG, "PG")
				b.ReportMetric(m.CI, "CI")
				b.ReportMetric(m.PCR, "PCR")
			})
		}
	}
}

// BenchmarkAblations quantifies the design choices DESIGN.md calls
// out: multiply-accumulate fusion, loop shaping (rotation plus
// hardware loops), and derived-induction strength reduction, measured
// on fir_256_64 under CB partitioning.
func BenchmarkAblations(b *testing.B) {
	p, _ := bench.ByName("fir_256_64")
	cases := []struct {
		name string
		opts dualbank.Options
	}{
		{"full", dualbank.Options{Mode: dualbank.CB}},
		{"no-mac-fusion", dualbank.Options{Mode: dualbank.CB, DisableMACFusion: true}},
		{"no-loop-shaping", dualbank.Options{Mode: dualbank.CB, DisableLoopShaping: true}},
		{"no-strength-reduce", dualbank.Options{Mode: dualbank.CB, DisableStrengthReduce: true}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				comp, err := dualbank.Compile(p.Source, p.Name, c.opts)
				if err != nil {
					b.Fatal(err)
				}
				m, err := comp.Run()
				if err != nil {
					b.Fatal(err)
				}
				cycles = m.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// runHarness regenerates the Figure 7, Figure 8, Table 3,
// memory-organisation and FIR-sweep experiments on one harness — the
// full `dspbench -all` workload.
func runHarness(b *testing.B, h *bench.Harness) {
	b.Helper()
	if _, err := h.Figure7(); err != nil {
		b.Fatal(err)
	}
	if _, err := h.Figure8(); err != nil {
		b.Fatal(err)
	}
	if _, err := h.Table3(); err != nil {
		b.Fatal(err)
	}
	if _, err := h.Organizations(); err != nil {
		b.Fatal(err)
	}
	if _, err := h.SweepFIR([]int{8, 16, 32, 64, 128, 256}, 16); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHarnessSerial measures the whole evaluation pipeline on a
// single worker; BenchmarkHarnessParallel fans the same jobs across
// GOMAXPROCS workers. Both share the per-invocation memoized cache (a
// fresh harness per iteration), so the ratio isolates the worker
// pool's wall-clock win.
func BenchmarkHarnessSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runHarness(b, bench.NewHarness(1))
	}
}

// BenchmarkHarnessParallel is the multi-worker counterpart of
// BenchmarkHarnessSerial.
func BenchmarkHarnessParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runHarness(b, bench.NewHarness(runtime.GOMAXPROCS(0)))
	}
}

// BenchmarkSimulatorFast is BenchmarkSimulator on the predecoded
// fast-path engine: same program, same cycle counts, but the
// steady-state loop performs no map lookups and no heap allocation.
func BenchmarkSimulatorFast(b *testing.B) {
	p, _ := bench.ByName("fft_1024")
	comp, err := dualbank.Compile(p.Source, p.Name, dualbank.Options{Mode: dualbank.CB})
	if err != nil {
		b.Fatal(err)
	}
	pd, err := sim.Predecode(comp.Sched)
	if err != nil {
		b.Fatal(err)
	}
	m := pd.NewMachine()
	b.ReportAllocs()
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		m.Reset()
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
		total += m.Cycles
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "sim_cycles/s")
}

// BenchmarkCompiler measures compilation speed (front-end through
// scheduling) on a representative program.
func BenchmarkCompiler(b *testing.B) {
	for _, name := range []string{"fft_256", "lpc", "G721MLencode"} {
		p, _ := bench.ByName(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dualbank.Compile(p.Source, p.Name, dualbank.Options{Mode: dualbank.CB}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulator measures simulation throughput (simulated cycles
// per wall-clock second) on the largest kernel.
func BenchmarkSimulator(b *testing.B) {
	p, _ := bench.ByName("fft_1024")
	comp, err := dualbank.Compile(p.Source, p.Name, dualbank.Options{Mode: dualbank.CB})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		m, err := comp.Run()
		if err != nil {
			b.Fatal(err)
		}
		total += m.Cycles
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "sim_cycles/s")
}
