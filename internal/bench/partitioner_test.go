package bench

import (
	"maps"
	"testing"

	"dualbank/internal/alloc"
	"dualbank/internal/compact"
	"dualbank/internal/core"
	"dualbank/internal/machine"
	"dualbank/internal/pipeline"
)

// TestPartitionerDifferential pins the fast partitioners to the
// Figure-5 greedy reference across the whole 23-benchmark suite: FM
// and KL must never produce a worse cut than greedy, and whenever the
// cut costs tie they must assign every symbol to the same bank —
// both algorithms start from the greedy walk and only ever commit
// strict improvements, so a tied cost with a different image would
// mean the replay has diverged.
func TestPartitionerDifferential(t *testing.T) {
	progs := append(Kernels(), Applications()...)
	if len(progs) != 23 {
		t.Fatalf("suite has %d benchmarks, want 23", len(progs))
	}
	type outcome struct {
		cost  int64
		banks map[string]machine.Bank
	}
	for _, p := range progs {
		compile := func(m core.Method) outcome {
			c, err := pipeline.Compile(p.Source, p.Name, pipeline.Options{
				Mode: alloc.CB, Partitioner: m,
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", p.Name, m, err)
			}
			if err := compact.Validate(c.Sched); err != nil {
				t.Fatalf("%s/%v: %v", p.Name, m, err)
			}
			banks := make(map[string]machine.Bank)
			for _, s := range c.IR.Symbols() {
				banks[s.Name] = s.Bank
			}
			return outcome{cost: c.Alloc.Part.Cost, banks: banks}
		}
		greedy := compile(core.MethodGreedy)
		for _, m := range []core.Method{core.MethodFM, core.MethodKL} {
			o := compile(m)
			if o.cost > greedy.cost {
				t.Errorf("%s: %v cut cost %d worse than greedy %d", p.Name, m, o.cost, greedy.cost)
				continue
			}
			if o.cost == greedy.cost && !maps.Equal(o.banks, greedy.banks) {
				t.Errorf("%s: %v ties greedy at cut cost %d but assigns different banks", p.Name, m, o.cost)
			}
		}
	}
}

// TestPartitionerComparison reproduces the Princeton finding the
// paper's related-work section leans on: a computationally expensive
// partitioner (simulated annealing) buys essentially nothing over the
// simple greedy heuristic — which is the paper's justification for
// using the greedy algorithm. Kernighan-Lin refinement likewise only
// marginally moves the needle.
func TestPartitionerComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison study in short mode")
	}
	suite := []string{
		"fir_256_64", "iir_4_64", "latnrm_32_64", "mult_10_10",
		"fft_256", "lpc", "edge_detect", "V32encode", "trellis",
	}
	methods := []core.Method{core.MethodGreedy, core.MethodKL, core.MethodAnneal}
	for _, name := range suite {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("no benchmark %q", name)
		}
		cycles := map[core.Method]int64{}
		for _, m := range methods {
			c, err := pipeline.Compile(p.Source, name, pipeline.Options{
				Mode: alloc.CB, Partitioner: m,
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, m, err)
			}
			if err := compact.Validate(c.Sched); err != nil {
				t.Fatalf("%s/%v: %v", name, m, err)
			}
			mach, err := c.Run()
			if err != nil {
				t.Fatalf("%s/%v: %v", name, m, err)
			}
			if p.Check != nil {
				read := func(gn string, idx int) (uint32, error) {
					return mach.Word(c.Global(gn), idx)
				}
				if err := p.Check(read); err != nil {
					t.Fatalf("%s/%v: wrong output: %v", name, m, err)
				}
			}
			cycles[m] = mach.Cycles
		}
		greedy := float64(cycles[core.MethodGreedy])
		for _, m := range methods[1:] {
			ratio := float64(cycles[m]) / greedy
			// Comparable means within ~15% either way; typically they
			// are identical.
			if ratio > 1.15 || ratio < 0.70 {
				t.Errorf("%s: %v gives %d cycles vs greedy %d (ratio %.2f) — not comparable",
					name, m, cycles[m], cycles[core.MethodGreedy], ratio)
			}
		}
		t.Logf("%-14s greedy=%-8d kl=%-8d anneal=%-8d",
			name, cycles[core.MethodGreedy], cycles[core.MethodKL], cycles[core.MethodAnneal])
	}
}
