package bench

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"dualbank/internal/alloc"
	"dualbank/internal/core"
	"dualbank/internal/cost"
	"dualbank/internal/machine"
	"dualbank/internal/pipeline"
)

// This file is the parallel experiment harness: a bounded worker pool
// that fans (benchmark × mode) jobs across CPUs, layered over a
// concurrency-safe, single-flight memoized cache of Run results. The
// SingleBank baseline — which every figure and table measures against —
// is compiled and simulated exactly once per Harness no matter how many
// experiments share it, and overlapping arms (e.g. the CB and Ideal
// columns appearing in both Figure 7 and the memory-organisation study)
// are likewise deduplicated. Row order and rendered output are
// byte-identical to the serial harness at any worker count.

// Harness runs experiments through a worker pool and a memoized
// result cache. The zero value is not usable; call NewHarness.
type Harness struct {
	// Parallel is the maximum number of concurrent compile+simulate
	// jobs; 1 reproduces the serial harness exactly.
	Parallel int

	// Engine selects the simulation engine for every measurement the
	// harness itself schedules (figures, tables, sweeps). The zero value
	// is the compiled engine; all engines produce identical figures. Set
	// it before the harness sees traffic.
	Engine Engine

	// Intercept, when non-nil, runs before every cache-miss
	// computation. A non-nil return aborts the measurement with that
	// error — the fault-injection and instrumentation seam. Set it
	// before the harness sees traffic; it is read without locking.
	Intercept func(ctx context.Context, p Program, mode alloc.Mode) error

	// L2, when non-nil, is a shared second-level result cache consulted
	// on every in-memory cache miss before computing and written through
	// after every successful computation. The lookup happens inside the
	// single-flight slot, so at most one goroutine per process performs
	// the (possibly remote or on-disk) L2 round trip for a key. Set it
	// before the harness sees traffic; it is read without locking.
	L2 ResultCache

	mu      sync.Mutex
	cache   map[runKey]*cacheEntry
	timings []RunTiming

	hits, misses, l2hits atomic.Int64
}

// ResultCache is a shared second-level result cache — typically the
// content-addressed explore store promoted to a fleet-wide L2 — keyed
// by the canonical CacheKey string. Implementations must be safe for
// concurrent use. Get returns only successful measurements; Put is
// called only with them. Both are best-effort: a Get miss recomputes
// and a failed Put loses nothing but a future shortcut.
type ResultCache interface {
	Get(key string) (Result, bool)
	Put(key string, r Result)
}

// RunTiming is the compile/simulate wall-clock split of one executed
// (benchmark, mode) measurement — one entry per cache miss.
type RunTiming struct {
	Bench          string     `json:"bench"`
	Mode           alloc.Mode `json:"mode"`
	CompileSeconds float64    `json:"compile_seconds"`
	SimSeconds     float64    `json:"sim_seconds"`
}

// runKey identifies one memoizable measurement. Benchmark sources are
// pure functions of their name (the name encodes the generator
// parameters, e.g. fir_256_64), so name × mode × run options ×
// machine-configuration fingerprint determines the result. Every
// RunOptions knob that can change the measurement — partitioner, FM
// pass bound, profile weighting, and the duplication set — is part of
// the key, so distinct configurations can never alias.
type runKey struct {
	bench    string
	mode     alloc.Mode
	method   core.Method
	fmPasses int
	profiled bool
	// dup encodes the duplication set: "-" for nil (the paper's
	// marked-arrays policy), otherwise "=" plus the sorted,
	// deduplicated, comma-joined names ("=" alone is the empty set).
	dup    string
	config string
	// perm encodes a bank permutation ("" when none): cycle counts are
	// invariant under it but the per-bank memory split is not, so
	// permuted measurements never alias unpermuted ones.
	perm string
	// engine is the simulation engine that produced the entry. Results
	// are engine-independent by the differential pinning, but the
	// recorded timings are not, so entries never alias across engines.
	engine Engine
	// batched marks entries produced by a batched dispatch
	// (RunBatchCtx), whose timings reflect shared-arena amortization;
	// they never alias single-run entries.
	batched bool
}

// String renders the key's canonical wire form — the identity the
// cluster tier hashes for consistent routing and the shared L2 result
// cache stores under. Every in-memory key field except batched appears
// (batched only distinguishes timing amortization, never the result,
// so batched and single-run measurements share one L2 entry).
func (k runKey) String() string {
	s := "run|" + k.bench +
		"|mode=" + k.mode.String() +
		"|part=" + k.method.String() +
		"|fmp=" + strconv.Itoa(k.fmPasses) +
		"|prof=" + strconv.FormatBool(k.profiled) +
		"|dup=" + k.dup
	if k.perm != "" {
		// Appended only when set, so classic-machine keys are unchanged.
		s += "|perm=" + k.perm
	}
	return s + "|engine=" + k.engine.String() + "|" + k.config
}

// CacheKey returns the canonical string identity of one memoizable
// measurement: the exact single-flight memo key — benchmark, mode,
// every result-affecting RunOptions knob including the engine, and the
// machine-configuration fingerprint. Two requests share a CacheKey if
// and only if the harness would coalesce them onto one cache entry, so
// the string is safe to use as a consistent-hash routing key and as a
// shared-cache address.
func CacheKey(p Program, mode alloc.Mode, ro RunOptions) string {
	return newRunKey(p, mode, ro).String()
}

// newRunKey canonicalizes one measurement request into its cache key.
// Knobs that provably cannot affect the result under the requested
// mode are normalized away (the FM pass bound without the FM
// partitioner, profile weighting and duplication sets on modes that
// never partition or duplicate), so equivalent requests share an
// entry.
func newRunKey(p Program, mode alloc.Mode, ro RunOptions) runKey {
	key := runKey{
		bench:    p.Name,
		mode:     mode,
		method:   ro.Partitioner,
		fmPasses: ro.FMPasses,
		profiled: ro.Profiled,
		dup:      "-",
		config:   configKeySpec(mode, machine.BankSpec{Banks: ro.Banks, PortsPerBank: ro.Ports}),
		engine:   ro.Engine,
	}
	if ro.BankPerm != nil {
		parts := make([]string, len(ro.BankPerm))
		for i, b := range ro.BankPerm {
			parts[i] = strconv.Itoa(b)
		}
		key.perm = strings.Join(parts, ",")
	}
	if key.method != core.MethodFM {
		key.fmPasses = 0
	}
	if !mode.Partitioned() {
		key.profiled = false
	}
	if mode == alloc.CBDup && ro.DupOnly != nil {
		names := append([]string(nil), ro.DupOnly...)
		sort.Strings(names)
		names = slices.Compact(names)
		key.dup = "=" + strings.Join(names, ",")
	}
	return key
}

// cacheEntry is a single-flight slot: the first requester computes,
// concurrent requesters block on done. An entry whose computation was
// cut short by its requester's context is marked cancelled and removed
// from the cache before done closes, so waiters retry and later
// requests recompute — a client giving up must never poison the cache.
type cacheEntry struct {
	done      chan struct{}
	res       Result
	err       error
	cancelled bool
}

// configKeySpec fingerprints the machine and port-model configuration
// a measurement depends on, so cached results can never leak across
// architecture variants. A non-default bank spec appends an "hw="
// geometry term (and its own unit count); the classic machine's string
// is unchanged, preserving every existing cache and checkpoint key.
func configKeySpec(mode alloc.Mode, spec machine.BankSpec) string {
	ports := machine.PortsBanked
	switch mode {
	case alloc.Ideal:
		ports = machine.PortsDualPorted
	case alloc.LowOrder:
		ports = machine.PortsLowOrder
	}
	n := spec.Norm()
	s := fmt.Sprintf("units=%d;bank=%d;stack=%d;ports=%v",
		n.NumUnits(), machine.BankWords, machine.StackWords, ports)
	if !n.IsDefault() {
		s += ";hw=" + n.String()
	}
	return s
}

// Fingerprint returns the machine and port-model configuration string
// a measurement under mode depends on — the same string the memo
// cache keys on. The explorer's on-disk checkpoint store includes it
// in its content-addressed keys so checkpoints never leak across
// architecture variants.
func Fingerprint(mode alloc.Mode) string { return configKeySpec(mode, machine.BankSpec{}) }

// FingerprintSpec is Fingerprint for an explicit bank geometry; the
// zero spec reproduces Fingerprint exactly.
func FingerprintSpec(mode alloc.Mode, spec machine.BankSpec) string {
	return configKeySpec(mode, spec)
}

// NewHarness returns a harness running at most parallel concurrent
// jobs (values below 1 are treated as 1).
func NewHarness(parallel int) *Harness {
	if parallel < 1 {
		parallel = 1
	}
	return &Harness{Parallel: parallel, cache: make(map[runKey]*cacheEntry)}
}

// CacheStats reports the memoized cache's traffic: Misses is the
// number of compile+simulate executions performed, Hits the number of
// requests served from (or coalesced onto) an existing in-memory
// entry, and L2Hits the number of measurements satisfied by the shared
// second-level cache instead of computing. Hits + Misses + L2Hits
// accounts for every measurement request when an L2 is configured;
// without one, L2Hits stays zero.
type CacheStats struct {
	Hits, Misses, L2Hits int64
}

// Stats returns the cache counters.
func (h *Harness) Stats() CacheStats {
	return CacheStats{Hits: h.hits.Load(), Misses: h.misses.Load(), L2Hits: h.l2hits.Load()}
}

// Run measures one (benchmark, mode) pair through the cache: the first
// request computes via the package-level Run, concurrent and repeated
// requests share the result.
func (h *Harness) Run(p Program, mode alloc.Mode) (Result, error) {
	return h.run(p, mode, nil)
}

// run is Run with optional reusable compiler scratch (each pool worker
// owns one).
func (h *Harness) run(p Program, mode alloc.Mode, cc *pipeline.Compiler) (Result, error) {
	res, _, err := h.RunCtx(context.Background(), p, mode, RunOptions{Compiler: cc, Engine: h.Engine})
	return res, err
}

// RunCtx measures one (benchmark, mode, partitioner) triple through
// the single-flight cache, honoring ctx; cached reports whether the
// result came from (or was coalesced onto) an existing entry. A
// request arriving while another computes the same key waits for that
// computation, but only as long as its own context allows. If the
// computing request's context fires mid-measurement the partial result
// is discarded and the entry removed, so coalesced waiters (and all
// later requests) recompute rather than inherit a stranger's
// cancellation error. A waiter taking over re-checks the cache first
// and verifies its own context is still live — a dead waiter must
// never start (and then abandon) a fresh computation. Transient
// failures (errors exposing Transient() bool, e.g. injected faults)
// are likewise never cached: the entry is removed so the next request
// retries.
func (h *Harness) RunCtx(ctx context.Context, p Program, mode alloc.Mode, ro RunOptions) (res Result, cached bool, err error) {
	return h.runEntry(ctx, newRunKey(p, mode, ro), p, mode, ro)
}

// RunBatchCtx measures one benchmark under many configuration variants
// through the single-flight cache, sharing one compiler (back-end
// scratch plus the compiled engine's recycled simulation arena) across
// every cache miss in the batch. Entries are keyed as batched, so a
// batched measurement never aliases a single-run one (their timings
// reflect different amortization). Outcomes land in item order;
// per-item failures — including one variant's cancellation — leave the
// remaining items to run on the same, reset arena.
func (h *Harness) RunBatchCtx(ctx context.Context, p Program, items []BatchItem) []BatchOutcome {
	cc := new(pipeline.Compiler)
	out := make([]BatchOutcome, len(items))
	for i, it := range items {
		ro := it.Opts
		if ro.Compiler == nil {
			ro.Compiler = cc
		}
		key := newRunKey(p, it.Mode, ro)
		key.batched = true
		out[i].Res, out[i].Cached, out[i].Err = h.runEntry(ctx, key, p, it.Mode, ro)
	}
	return out
}

// runEntry is the single-flight cache protocol for one key.
func (h *Harness) runEntry(ctx context.Context, key runKey, p Program, mode alloc.Mode, ro RunOptions) (res Result, cached bool, err error) {
	for {
		h.mu.Lock()
		if e, ok := h.cache[key]; ok {
			h.mu.Unlock()
			select {
			case <-e.done:
			case <-ctx.Done():
				return Result{}, false, fmt.Errorf("%s/%v: awaiting shared result: %w", p.Name, mode, ctx.Err())
			}
			if e.cancelled {
				// The computing request gave up (or hit a transient
				// fault). Loop to re-check the cache — another waiter
				// may already have republished — but only with a live
				// context: taking over just to cancel would evict
				// whatever that other waiter computes.
				if cerr := ctx.Err(); cerr != nil {
					return Result{}, false, fmt.Errorf("%s/%v: awaiting shared result: %w", p.Name, mode, cerr)
				}
				continue
			}
			h.hits.Add(1)
			return e.res, true, e.err
		}
		e := &cacheEntry{done: make(chan struct{})}
		h.cache[key] = e
		h.mu.Unlock()
		// Inside the single-flight slot, try the shared L2 first: a hit
		// means some node (possibly this one, in a previous life)
		// already computed the measurement, so only Bench and Mode —
		// which the L2 does not persist — need restoring. Exactly one
		// goroutine per process pays the L2 round trip per key.
		fromL2 := false
		if h.L2 != nil {
			if res, ok := h.L2.Get(key.String()); ok {
				res.Bench, res.Mode = p.Name, mode
				e.res, fromL2 = res, true
				h.l2hits.Add(1)
			}
		}
		if !fromL2 {
			h.misses.Add(1)
			e.res, e.err = h.compute(ctx, p, mode, ro)
		}
		h.mu.Lock()
		switch {
		case e.err != nil && (ctx.Err() != nil || isTransient(e.err)):
			e.cancelled = true
			delete(h.cache, key)
		case e.err == nil && !fromL2:
			h.timings = append(h.timings, RunTiming{
				Bench: p.Name, Mode: mode,
				CompileSeconds: e.res.CompileSeconds, SimSeconds: e.res.SimSeconds,
			})
		}
		h.mu.Unlock()
		close(e.done)
		// Write-through happens after waiters are released: they need
		// the result, not the L2 persistence, and a slow shared store
		// must never stall a coalesced request.
		if e.err == nil && !fromL2 && h.L2 != nil {
			h.L2.Put(key.String(), e.res)
		}
		return e.res, fromL2, e.err
	}
}

// Cached reports whether the harness can serve the measurement without
// a fresh computation: a completed successful entry, or one currently
// in flight that a request would coalesce onto. It never blocks and
// never computes — the cluster tier's replica probe, deciding between
// serving a hot key locally and forwarding its cold miss to the
// owner.
func (h *Harness) Cached(p Program, mode alloc.Mode, ro RunOptions) bool {
	h.mu.Lock()
	e, ok := h.cache[newRunKey(p, mode, ro)]
	h.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-e.done:
		return !e.cancelled && e.err == nil
	default:
		// In flight: a request arriving now coalesces onto it.
		return true
	}
}

// compute is one cache-miss execution: the Intercept hook (fault
// injection, instrumentation) runs first and may veto the measurement.
func (h *Harness) compute(ctx context.Context, p Program, mode alloc.Mode, ro RunOptions) (Result, error) {
	if h.Intercept != nil {
		if err := h.Intercept(ctx, p, mode); err != nil {
			return Result{}, err
		}
	}
	return RunCtx(ctx, p, mode, ro)
}

// isTransient reports whether err carries the Transient() bool marker
// anywhere in its chain. The check is structural so this package needs
// no knowledge of who injected the error.
func isTransient(err error) bool {
	var tr interface{ Transient() bool }
	return errors.As(err, &tr) && tr.Transient()
}

// Timings returns the compile/simulate split of every measurement the
// harness actually executed (one entry per cache miss), sorted by
// benchmark then mode for deterministic reporting.
func (h *Harness) Timings() []RunTiming {
	h.mu.Lock()
	out := append([]RunTiming(nil), h.timings...)
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bench != out[j].Bench {
			return out[i].Bench < out[j].Bench
		}
		return out[i].Mode < out[j].Mode
	})
	return out
}

// job is one unit of pool work: measure prog under mode, deposit the
// result at a fixed slot so assembly order is deterministic.
type job struct {
	prog Program
	mode alloc.Mode
}

// runJobs executes every job on up to h.Parallel workers and returns
// the results in job order. On failure it returns the error of the
// lowest-numbered failing job, matching the serial harness's
// first-error semantics.
func (h *Harness) runJobs(jobs []job) ([]Result, error) {
	results := make([]Result, len(jobs))
	errs := make([]error, len(jobs))
	if h.Parallel <= 1 {
		cc := new(pipeline.Compiler)
		for i, j := range jobs {
			var err error
			results[i], err = h.run(j.prog, j.mode, cc)
			if err != nil {
				return nil, err
			}
		}
		return results, nil
	}
	workers := h.Parallel
	if workers > len(jobs) {
		workers = len(jobs)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			cc := new(pipeline.Compiler)
			for i := range next {
				results[i], errs[i] = h.run(jobs[i].prog, jobs[i].mode, cc)
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// RunFigure measures the given benchmarks under the given modes,
// producing rows identical to the serial package-level RunFigure.
func (h *Harness) RunFigure(progs []Program, modes []alloc.Mode) ([]FigureRow, error) {
	jobs := make([]job, 0, len(progs)*(len(modes)+1))
	for _, p := range progs {
		jobs = append(jobs, job{prog: p, mode: alloc.SingleBank})
		for _, m := range modes {
			jobs = append(jobs, job{prog: p, mode: m})
		}
	}
	results, err := h.runJobs(jobs)
	if err != nil {
		return nil, err
	}
	var rows []FigureRow
	i := 0
	for _, p := range progs {
		base := results[i]
		i++
		row := FigureRow{
			Bench:      p.Name,
			BaseCycles: base.Cycles,
			Gains:      make(map[alloc.Mode]float64, len(modes)),
			Cycles:     make(map[alloc.Mode]int64, len(modes)),
		}
		for _, m := range modes {
			res := results[i]
			i++
			row.Gains[m] = Gain(base, res)
			row.Cycles[m] = res.Cycles
			if m == alloc.CBDup {
				row.Duplicated = res.Duplicated
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure7 reproduces the kernel experiment through the pool and cache.
func (h *Harness) Figure7() ([]FigureRow, error) { return h.RunFigure(Kernels(), Figure7Modes) }

// Figure8 reproduces the application experiment.
func (h *Harness) Figure8() ([]FigureRow, error) { return h.RunFigure(Applications(), Figure8Modes) }

// Organizations runs the memory-organisation study over the whole
// suite; its CB/CBDup/Ideal arms and every baseline are cache hits
// when Figure 7 and Figure 8 ran first on the same harness.
func (h *Harness) Organizations() ([]FigureRow, error) {
	return h.RunFigure(append(Kernels(), Applications()...), OrganizationModes)
}

// Table3 reproduces the performance/cost trade-off table.
func (h *Harness) Table3() ([]Table3Row, error) {
	apps := Applications()
	jobs := make([]job, 0, len(apps)*(len(Table3Modes)+1))
	for _, p := range apps {
		jobs = append(jobs, job{prog: p, mode: alloc.SingleBank})
		for _, m := range Table3Modes {
			jobs = append(jobs, job{prog: p, mode: m})
		}
	}
	results, err := h.runJobs(jobs)
	if err != nil {
		return nil, err
	}
	var rows []Table3Row
	i := 0
	for _, p := range apps {
		base := results[i]
		i++
		row := Table3Row{Bench: p.Name, Metrics: make(map[alloc.Mode]cost.Metrics)}
		for _, m := range Table3Modes {
			res := results[i]
			i++
			row.Metrics[m] = cost.Compare(base.Cycles, res.Cycles, base.Mem, res.Mem)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SweepFIR measures the CB gain across filter orders through the pool.
func (h *Harness) SweepFIR(taps []int, samples int) ([]SweepRow, error) {
	progs := make([]Program, len(taps))
	for i, n := range taps {
		progs[i] = FIR(n, samples)
	}
	jobs := make([]job, 0, 2*len(progs))
	for _, p := range progs {
		jobs = append(jobs, job{prog: p, mode: alloc.SingleBank}, job{prog: p, mode: alloc.CB})
	}
	results, err := h.runJobs(jobs)
	if err != nil {
		return nil, err
	}
	var rows []SweepRow
	for i, p := range progs {
		base, cb := results[2*i], results[2*i+1]
		rows = append(rows, SweepRow{
			Label:      p.Name,
			BaseCycles: base.Cycles,
			CBGain:     Gain(base, cb),
		})
	}
	return rows, nil
}
