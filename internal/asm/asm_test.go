package asm_test

import (
	"strings"
	"testing"

	"dualbank/internal/alloc"
	"dualbank/internal/asm"
	"dualbank/internal/pipeline"
)

const src = `
float A[8] = {1.0};
float B[8] = {2.0};
float sum;
void main() {
	int i;
	float s = 0.0;
	for (i = 0; i < 8; i++) {
		s += A[i] * B[i];
	}
	sum = s;
}
`

func TestPrintContainsStructure(t *testing.T) {
	c, err := pipeline.Compile(src, "fir", pipeline.Options{Mode: alloc.CB})
	if err != nil {
		t.Fatal(err)
	}
	out := asm.Print(c.Sched)
	for _, want := range []string{
		"; program fir",
		"banked",
		"main:",
		".main_b0:",
		"MU0:",   // memory unit 0 in use
		"MU1:",   // both banks active under CB
		" || ",   // at least one packed instruction
		"enddo",  // hardware loop
		"fmac",   // fused multiply-accumulate
		"bank=X", // symbol table comments
		"bank=Y",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("assembly missing %q:\n%s", want, out)
		}
	}
}

func TestPrintFuncUnknown(t *testing.T) {
	c, err := pipeline.Compile(src, "fir", pipeline.Options{Mode: alloc.CB})
	if err != nil {
		t.Fatal(err)
	}
	if out := asm.PrintFunc(c.Sched, "nope"); !strings.Contains(out, "no function") {
		t.Errorf("PrintFunc on unknown = %q", out)
	}
}

func TestPrintSingleBankUsesOnlyMU0(t *testing.T) {
	c, err := pipeline.Compile(src, "fir", pipeline.Options{Mode: alloc.SingleBank})
	if err != nil {
		t.Fatal(err)
	}
	out := asm.Print(c.Sched)
	if strings.Contains(out, "MU1:") {
		t.Errorf("single-bank assembly uses MU1:\n%s", out)
	}
}
