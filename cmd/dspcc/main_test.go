package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const smokeSource = `
int x[4] = {1, 2, 3, 4};
int y[4] = {10, 20, 30, 40};
int z[4];
void main() {
	int i;
	for (i = 0; i < 4; i++) {
		z[i] = x[i] + y[i];
	}
}
`

func TestRunCompilesFromFile(t *testing.T) {
	src := filepath.Join(t.TempDir(), "add.c")
	if err := os.WriteFile(src, []byte(smokeSource), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"single", "cb", "pr", "dup", "fulldup", "ideal", "loworder"} {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-mode", mode, "-dump", "all", src}, strings.NewReader(""), &stdout, &stderr)
		if code != 0 {
			t.Fatalf("mode %s: exit %d, stderr: %s", mode, code, stderr.String())
		}
		if !strings.Contains(stdout.String(), "main:") {
			t.Errorf("mode %s: no assembly for main in output", mode)
		}
	}
}

func TestRunCompilesFromStdin(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dump", "asm"}, strings.NewReader(smokeSource), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if stdout.Len() == 0 {
		t.Fatal("no assembly on stdout")
	}
}

func TestRunWritesROMImage(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "add.c")
	img := filepath.Join(dir, "add.rom")
	if err := os.WriteFile(src, []byte(smokeSource), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-o", img, src}, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "wrote ") {
		t.Errorf("no image confirmation: %q", stdout.String())
	}
	if fi, err := os.Stat(img); err != nil || fi.Size() == 0 {
		t.Fatalf("image missing or empty: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-mode", "bogus"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("unknown mode: exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run(nil, strings.NewReader("void main( {"), &stdout, &stderr); code != 1 {
		t.Errorf("syntax error: exit %d, want 1", code)
	}
	if stderr.Len() == 0 {
		t.Error("syntax error: nothing on stderr")
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.c")}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}
