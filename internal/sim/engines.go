package sim

// CycleCount returns the retired-cycle counter; with Word it forms the
// minimal surface shared by all three engines, letting engine-generic
// callers (the benchmark harness) treat them uniformly.
func (m *Machine) CycleCount() int64 { return m.Cycles }

// CycleCount returns the retired-cycle counter.
func (m *FastMachine) CycleCount() int64 { return m.Cycles }

// CycleCount returns the retired-cycle counter.
func (m *CompiledMachine) CycleCount() int64 { return m.Cycles }

// Counters is the full bandwidth-counter set every engine maintains,
// for callers (the dspsim driver) that report more than the cycle
// count.
type Counters struct {
	Cycles        int64
	OpsExecuted   int64
	MemAccesses   int64
	DualMemCycles int64
	BankConflicts int64
}

// Counters snapshots the bandwidth counters.
func (m *Machine) Counters() Counters {
	return Counters{m.Cycles, m.OpsExecuted, m.MemAccesses, m.DualMemCycles, m.BankConflicts}
}

// Counters snapshots the bandwidth counters.
func (m *FastMachine) Counters() Counters {
	return Counters{m.Cycles, m.OpsExecuted, m.MemAccesses, m.DualMemCycles, m.BankConflicts}
}

// Counters snapshots the bandwidth counters.
func (m *CompiledMachine) Counters() Counters {
	return Counters{m.Cycles, m.OpsExecuted, m.MemAccesses, m.DualMemCycles, m.BankConflicts}
}
