// Command dspsim compiles a MiniC program and executes it on the
// dual-bank VLIW instruction-set simulator, reporting the cycle count
// and, optionally, the contents of named global arrays.
//
// Usage:
//
//	dspsim [-mode cb|...] [-print global[:n]] file.c
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dualbank/internal/alloc"
	"dualbank/internal/compact"
	"dualbank/internal/encode"
	"dualbank/internal/ir"
	"dualbank/internal/pipeline"
	"dualbank/internal/sim"
)

var modeNames = map[string]alloc.Mode{
	"single":   alloc.SingleBank,
	"cb":       alloc.CB,
	"pr":       alloc.CBProfiled,
	"dup":      alloc.CBDup,
	"fulldup":  alloc.FullDup,
	"ideal":    alloc.Ideal,
	"loworder": alloc.LowOrder,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with injectable streams and exit code, so the smoke
// tests can drive the whole simulator driver in-process.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dspsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mode := fs.String("mode", "cb", "data allocation mode: single, cb, pr, dup, fulldup, ideal, loworder")
	print := fs.String("print", "", "comma-separated globals to dump after the run (name or name:count)")
	image := fs.Bool("image", false, "the input is a binary ROM image produced by dspcc -o")
	trace := fs.Bool("trace", false, "print one line per retired long instruction")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	m, ok := modeNames[*mode]
	if !ok {
		fmt.Fprintf(stderr, "dspsim: unknown mode %q\n", *mode)
		return 2
	}
	var data []byte
	var err error
	name := "stdin"
	if fs.NArg() == 0 || fs.Arg(0) == "-" {
		data, err = io.ReadAll(stdin)
	} else {
		name = fs.Arg(0)
		data, err = os.ReadFile(name)
	}
	if err != nil {
		fmt.Fprintln(stderr, "dspsim:", err)
		return 1
	}

	var sched *compact.Program
	var globals []*ir.Symbol
	if *image {
		sched, err = encode.Decode(data)
		if err != nil {
			fmt.Fprintln(stderr, "dspsim:", err)
			return 1
		}
		globals = sched.Src.Globals
	} else {
		c, err := pipeline.Compile(string(data), name, pipeline.Options{Mode: m})
		if err != nil {
			fmt.Fprintln(stderr, "dspsim:", err)
			return 1
		}
		sched = c.Sched
		globals = c.IR.Globals
	}

	mach := sim.NewMachine(sched)
	if *trace {
		mach.Trace = stdout
	}
	if err := mach.Run(); err != nil {
		fmt.Fprintln(stderr, "dspsim:", err)
		return 1
	}
	fmt.Fprintf(stdout, "ports=%-11s cycles=%d ops=%d instrs=%d dualmem=%d conflicts=%d\n",
		sched.Ports, mach.Cycles, mach.OpsExecuted, sched.StaticInstrs(),
		mach.DualMemCycles, mach.BankConflicts)

	if *print == "" {
		return 0
	}
	byName := func(n string) *ir.Symbol {
		for _, g := range globals {
			if g.Name == n {
				return g
			}
		}
		return nil
	}
	for _, spec := range strings.Split(*print, ",") {
		gname, count := spec, 8
		if i := strings.IndexByte(spec, ':'); i >= 0 {
			gname = spec[:i]
			if n, err := strconv.Atoi(spec[i+1:]); err == nil {
				count = n
			}
		}
		g := byName(gname)
		if g == nil {
			fmt.Fprintf(stderr, "dspsim: no global %q\n", gname)
			continue
		}
		if count > g.Size {
			count = g.Size
		}
		fmt.Fprintf(stdout, "%s[0:%d] =", gname, count)
		for i := 0; i < count; i++ {
			if g.Elem == ir.TFloat {
				v, _ := mach.Float32(g, i)
				fmt.Fprintf(stdout, " %g", v)
			} else {
				v, _ := mach.Int32(g, i)
				fmt.Fprintf(stdout, " %d", v)
			}
		}
		fmt.Fprintln(stdout)
	}
	return 0
}
