package bench

import (
	"fmt"
	"sort"
	"strings"

	"dualbank/internal/alloc"
	"dualbank/internal/cost"
)

// This file is the experiment harness: it regenerates the paper's
// Figure 7 (kernel performance gains), Figure 8 (application gains
// under CB, Pr, Dup and Ideal) and Table 3 (performance/cost
// trade-offs of duplication).

// FigureRow is one benchmark's gains, in percent over the single-bank
// baseline, per mode.
type FigureRow struct {
	Bench      string
	BaseCycles int64
	Gains      map[alloc.Mode]float64
	Cycles     map[alloc.Mode]int64
	Duplicated []string
}

// RunFigure measures the given benchmarks under the given modes on a
// fresh serial harness. Long-running callers should construct one
// Harness and reuse it so baselines and shared arms are measured once.
func RunFigure(progs []Program, modes []alloc.Mode) ([]FigureRow, error) {
	return NewHarness(1).RunFigure(progs, modes)
}

// Figure7Modes and Figure8Modes are the experiment arms shown in each
// figure; OrganizationModes is the extra memory-organisation study
// (high-order banked with CB partitioning vs low-order interleaved
// with hardware conflict stalls vs dual-ported).
var (
	Figure7Modes      = []alloc.Mode{alloc.CB, alloc.Ideal}
	Figure8Modes      = []alloc.Mode{alloc.CB, alloc.CBProfiled, alloc.CBDup, alloc.Ideal}
	OrganizationModes = []alloc.Mode{alloc.LowOrder, alloc.CB, alloc.CBDup, alloc.Ideal}
)

// Figure7 reproduces the kernel experiment.
func Figure7() ([]FigureRow, error) { return RunFigure(Kernels(), Figure7Modes) }

// Figure8 reproduces the application experiment.
func Figure8() ([]FigureRow, error) { return RunFigure(Applications(), Figure8Modes) }

// Organizations runs the memory-organisation study over the whole
// suite: it quantifies the paper's §1.2 argument for high-order
// interleaving by pitting CB partitioning against a low-order
// interleaved memory whose run-time bank conflicts stall the pipeline.
func Organizations() ([]FigureRow, error) {
	return RunFigure(append(Kernels(), Applications()...), OrganizationModes)
}

// RenderFigure formats rows as a text table.
func RenderFigure(title string, rows []FigureRow, modes []alloc.Mode) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-14s %12s", "benchmark", "base cycles")
	for _, m := range modes {
		fmt.Fprintf(&sb, " %9s", m)
	}
	sb.WriteString("\n")
	sums := make(map[alloc.Mode]float64)
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %12d", r.Bench, r.BaseCycles)
		for _, m := range modes {
			fmt.Fprintf(&sb, " %8.1f%%", r.Gains[m])
			sums[m] += r.Gains[m]
		}
		if len(r.Duplicated) > 0 {
			fmt.Fprintf(&sb, "   dup: %s", strings.Join(r.Duplicated, ","))
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "%-14s %12s", "average", "")
	for _, m := range modes {
		fmt.Fprintf(&sb, " %8.1f%%", sums[m]/float64(len(rows)))
	}
	sb.WriteString("\n")
	return sb.String()
}

// Table3Row is one application's performance/cost metrics for the four
// techniques of Table 3.
type Table3Row struct {
	Bench   string
	Metrics map[alloc.Mode]cost.Metrics
}

// Table3Modes are the techniques compared in Table 3.
var Table3Modes = []alloc.Mode{alloc.FullDup, alloc.CBDup, alloc.CB, alloc.Ideal}

// Table3 reproduces the performance/cost trade-off table over the
// application benchmarks.
func Table3() ([]Table3Row, error) { return NewHarness(1).Table3() }

// RenderTable3 formats the table with the paper's PG/CI/PCR columns
// and arithmetic means.
func RenderTable3(rows []Table3Row) string {
	var sb strings.Builder
	sb.WriteString("Table 3: Performance/Cost Trade-Offs of Exploiting Dual Data-Memory Banks\n")
	fmt.Fprintf(&sb, "%-14s", "application")
	for _, m := range Table3Modes {
		fmt.Fprintf(&sb, " |%7s: PG    CI   PCR", m)
	}
	sb.WriteString("\n")
	type acc struct{ pg, ci, pcr float64 }
	accs := make(map[alloc.Mode]*acc)
	for _, m := range Table3Modes {
		accs[m] = &acc{}
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s", r.Bench)
		for _, m := range Table3Modes {
			mt := r.Metrics[m]
			fmt.Fprintf(&sb, " | %12.2f %5.2f %5.2f", mt.PG, mt.CI, mt.PCR)
			accs[m].pg += mt.PG
			accs[m].ci += mt.CI
			accs[m].pcr += mt.PCR
		}
		sb.WriteString("\n")
	}
	n := float64(len(rows))
	fmt.Fprintf(&sb, "%-14s", "mean")
	for _, m := range Table3Modes {
		a := accs[m]
		fmt.Fprintf(&sb, " | %12.2f %5.2f %5.2f", a.pg/n, a.ci/n, a.pcr/n)
	}
	sb.WriteString("\n")
	return sb.String()
}

// SweepRow is one point of a kernel-size sensitivity sweep.
type SweepRow struct {
	Label      string
	BaseCycles int64
	CBGain     float64
}

// SweepFIR measures how the CB partitioning gain develops with filter
// order: the longer the inner loop dominates, the closer the whole
// kernel approaches the 2-cycles-per-tap dual-bank steady state. It
// generalises the paper's fir_256_64 / fir_32_1 pairing into a curve.
func SweepFIR(taps []int, samples int) ([]SweepRow, error) {
	return NewHarness(1).SweepFIR(taps, samples)
}

// RenderSweep formats a sweep.
func RenderSweep(title string, rows []SweepRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%-16s %12s %9s\n", title, "kernel", "base cycles", "CB")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %12d %8.1f%%\n", r.Label, r.BaseCycles, r.CBGain)
	}
	return sb.String()
}

// RenderTables renders Tables 1 and 2 of the paper: the benchmark
// inventories with their descriptions.
func RenderTables() string {
	var sb strings.Builder
	sb.WriteString("Table 1: DSP Kernel Benchmarks\n")
	for _, p := range Kernels() {
		fmt.Fprintf(&sb, "  %-14s %s\n", p.Name, p.Desc)
	}
	sb.WriteString("\nTable 2: DSP Application Benchmarks\n")
	for _, p := range Applications() {
		fmt.Fprintf(&sb, "  %-14s %s\n", p.Name, p.Desc)
	}
	return sb.String()
}

// Names lists the benchmark names of a suite, sorted, for CLI help.
func Names() []string {
	var out []string
	for _, p := range Kernels() {
		out = append(out, p.Name)
	}
	for _, p := range Applications() {
		out = append(out, p.Name)
	}
	sort.Strings(out)
	return out
}
