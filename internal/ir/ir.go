// Package ir defines the mid-level intermediate representation produced
// by the MiniC front-end and consumed by the optimizer, the data
// allocation pass, the register allocator, and the operation-compaction
// pass. It corresponds to the "sequence of unpacked machine operations"
// that the paper's GNU-C front-end hands to the optimizing back-end.
//
// The IR is a conventional three-address form over typed virtual
// registers, organised as a control-flow graph of basic blocks. It is
// not SSA: loop-carried values are expressed by re-assigning registers,
// which matches the list-scheduling and live-range machinery the paper
// describes. Memory operations carry the Symbol they access; this is
// the symbol-level alias information the compaction-based partitioning
// algorithm requires (§2 of the paper).
package ir

import (
	"fmt"

	"dualbank/internal/machine"
)

// Type is the type of a register, symbol element, or operation result.
type Type int8

const (
	// TVoid is the type of value-less operations and void functions.
	TVoid Type = iota
	// TInt is a 32-bit two's-complement integer.
	TInt
	// TFloat is a 32-bit IEEE-754 float.
	TFloat
)

func (t Type) String() string {
	switch t {
	case TVoid:
		return "void"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	}
	return fmt.Sprintf("Type(%d)", int8(t))
}

// Reg names a virtual register. NoReg (zero) means "absent".
// Register types are recorded per-function in Func.RegType.
type Reg int32

// NoReg is the absent register.
const NoReg Reg = 0

func (r Reg) String() string {
	if r == NoReg {
		return "_"
	}
	return fmt.Sprintf("v%d", int32(r))
}

// SymKind classifies a Symbol.
type SymKind int8

const (
	// SymGlobal is a global scalar or array, allocated at a fixed bank
	// address.
	SymGlobal SymKind = iota
	// SymLocal is a function-local scalar or array, allocated at a
	// frame offset on one of the two program stacks.
	SymLocal
	// SymSpill is a compiler-introduced stack slot created by the
	// register allocator. Spill slots participate in data partitioning
	// like any other local.
	SymSpill
)

func (k SymKind) String() string {
	switch k {
	case SymGlobal:
		return "global"
	case SymLocal:
		return "local"
	case SymSpill:
		return "spill"
	}
	return fmt.Sprintf("SymKind(%d)", int8(k))
}

// Symbol is a program variable or array: the unit of data allocation.
// The partitioning algorithm treats each array as a monolithic entity
// assigned in its entirety to a single memory bank (§3), or to both
// banks when duplicated (§3.2).
type Symbol struct {
	Name string
	Kind SymKind
	// Elem is the element type; Size is the total size in 32-bit words.
	// For a scalar Size is 1; for int a[R][C] it is R*C.
	Elem Type
	Size int
	// Dims holds array dimensions ([]=scalar, [N]=1-D, [R C]=2-D).
	Dims []int
	// Init holds initial contents for globals, as raw 32-bit words
	// (floats via math.Float32bits). len(Init) <= Size; the remainder
	// is zero-filled.
	Init []uint32

	// ReadOnly marks globals never stored to; duplication of such
	// symbols needs no coherence stores.
	ReadOnly bool

	// Save marks a callee-save slot. The paper assigns successive
	// save/restore operations to alternating memory banks mechanically,
	// outside the interference-graph partitioning (§3.1).
	Save bool

	// Allocation results, filled by the data allocation pass.
	//
	// Bank is the assigned memory bank (BankBoth when duplicated).
	// Addr is the word address within the bank for globals and spill
	// or frame slots' offset from the frame base for locals.
	Bank       machine.Bank
	Addr       int
	Duplicated bool
}

func (s *Symbol) String() string { return s.Name }

// IsArray reports whether the symbol has array dimensions.
func (s *Symbol) IsArray() bool { return len(s.Dims) > 0 }

// Block is a basic block: a maximal straight-line sequence of
// operations ending in an explicit terminator (Br, CondBr, or Ret).
type Block struct {
	ID  int
	Ops []*Op
	// Succs and Preds are the CFG edges. CondBr order: [true, false].
	Succs []*Block
	Preds []*Block
	// LoopDepth is the syntactic loop-nesting depth (0 = outside any
	// loop). The static edge-weight heuristic uses LoopDepth+1.
	LoopDepth int
	// ExecCount is the number of times the block ran in a profiling
	// run; used by the profile-driven weight policy (Pr in Figure 8).
	ExecCount int64
}

func (b *Block) String() string { return fmt.Sprintf("b%d", b.ID) }

// Terminator returns the block's final operation, or nil if the block
// is empty.
func (b *Block) Terminator() *Op {
	if len(b.Ops) == 0 {
		return nil
	}
	return b.Ops[len(b.Ops)-1]
}

// Func is a single function.
type Func struct {
	Name    string
	Params  []*Symbol // scalar parameters; values arrive in registers
	RetType Type
	Locals  []*Symbol // locals, spill slots appended by regalloc
	Blocks  []*Block  // Blocks[0] is the entry block

	// ParamRegs[i] is the virtual register holding Params[i] on entry.
	ParamRegs []Reg

	// regType[r] is the type of virtual register r (index 0 unused).
	regType []Type
	// phys records whether registers have been mapped to the physical
	// files.
	phys bool

	// FrameWordsX/Y are the per-stack frame sizes in words, filled by
	// the allocation pass after locals are partitioned between the two
	// program stacks.
	FrameWordsX, FrameWordsY int

	// SavedRegs is the number of callee-saved register save/restore
	// pairs the prologue/epilogue performs; the allocation pass assigns
	// successive save/restore operations to alternating banks (§3.1).
	SavedRegs int
}

// NewFunc returns an empty function with the given signature.
func NewFunc(name string, ret Type) *Func {
	return &Func{Name: name, RetType: ret, regType: make([]Type, 1)}
}

// NewReg allocates a fresh virtual register of type t.
func (f *Func) NewReg(t Type) Reg {
	if t == TVoid {
		panic("ir: NewReg(TVoid)")
	}
	f.regType = append(f.regType, t)
	return Reg(len(f.regType) - 1)
}

// RegType returns the type of virtual register r.
func (f *Func) RegType(r Reg) Type {
	if r == NoReg {
		return TVoid
	}
	return f.regType[r]
}

// NumRegs returns the number of virtual registers allocated (including
// the unused register 0).
func (f *Func) NumRegs() int { return len(f.regType) }

// Phys reports whether the function has been rewritten to physical
// registers.
func (f *Func) Phys() bool { return f.phys }

// SetPhysRegTable switches the function's register table to the
// physical convention used after register allocation: Reg(1..32) are
// the integer file r1..r32 and Reg(33..64) are the floating-point file
// f1..f32. Reg(1) and Reg(33) are the scalar return registers.
func (f *Func) SetPhysRegTable() {
	f.regType = make([]Type, 65)
	for i := 1; i <= 32; i++ {
		f.regType[i] = TInt
	}
	for i := 33; i <= 64; i++ {
		f.regType[i] = TFloat
	}
	f.phys = true
}

// PhysInt returns the physical register for integer file entry n
// (1-based).
func PhysInt(n int) Reg { return Reg(n) }

// PhysFloat returns the physical register for float file entry n
// (1-based).
func PhysFloat(n int) Reg { return Reg(32 + n) }

// RetInt and RetFloat are the scalar return registers of the calling
// convention.
var (
	RetInt   = PhysInt(1)
	RetFloat = PhysFloat(1)
)

// NewBlock appends a fresh empty block to the function.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// Program is a whole compiled program.
type Program struct {
	Name    string
	Globals []*Symbol
	Funcs   []*Func

	funcByName map[string]*Func
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *Func {
	if p.funcByName == nil {
		p.funcByName = make(map[string]*Func, len(p.Funcs))
		for _, f := range p.Funcs {
			p.funcByName[f.Name] = f
		}
	}
	return p.funcByName[name]
}

// AddFunc appends f to the program.
func (p *Program) AddFunc(f *Func) {
	p.Funcs = append(p.Funcs, f)
	if p.funcByName != nil {
		p.funcByName[f.Name] = f
	}
}

// Symbols returns every data symbol in the program: all globals plus
// every function's locals (including spill slots). This is the node set
// of the interference graph.
func (p *Program) Symbols() []*Symbol {
	var out []*Symbol
	out = append(out, p.Globals...)
	for _, f := range p.Funcs {
		out = append(out, f.Locals...)
	}
	return out
}
