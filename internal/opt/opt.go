// Package opt implements the machine-independent optimizations the
// paper's back-end applies before data allocation and compaction:
// local constant folding and propagation, copy propagation, move
// coalescing, multiply-accumulate fusion, loop-invariant constant
// hoisting, dead-code elimination, and unreachable-block removal.
//
// The passes are deliberately local (basic-block scoped) where the
// paper's compaction machinery is local; the global passes (DCE,
// unreachable-block removal, constant hoisting) are conservative.
package opt

import (
	"dualbank/internal/ir"
)

// Options selects which optimizations run.
type Options struct {
	// NoMACFusion disables multiply-accumulate fusion; used by ablation
	// benchmarks.
	NoMACFusion bool
	// NoConstHoist disables loop-invariant constant hoisting.
	NoConstHoist bool
	// NoLoopShaping disables block merging, loop rotation and
	// hardware-loop conversion; used by ablation benchmarks.
	NoLoopShaping bool
	// NoStrengthReduce disables derived-induction-variable rewriting
	// (the software analogue of post-increment addressing).
	NoStrengthReduce bool
}

// Run applies the optimization pipeline to every function in p.
func Run(p *ir.Program, o Options) {
	for _, f := range p.Funcs {
		removeUnreachable(f)
		for i := 0; i < 2; i++ {
			for _, b := range f.Blocks {
				localConstAndCopy(f, b)
				redundantLoadElim(f, b)
			}
			coalesceMoves(f)
			deadCodeElim(f)
		}
		if !o.NoMACFusion {
			fuseMAC(f)
		}
		if !o.NoConstHoist {
			hoistLoopConstants(f)
		}
		deadCodeElim(f)
		if !o.NoLoopShaping {
			ShapeLoops(f)
			if !o.NoStrengthReduce {
				strengthReduce(f)
			}
			for _, b := range f.Blocks {
				localConstAndCopy(f, b)
				redundantLoadElim(f, b)
			}
			coalesceMoves(f)
			deadCodeElim(f)
			// Constant propagation may just have turned a loop entry
			// guard into a constant branch (constant trip counts);
			// another shaping round folds it and merges the remnants.
			ShapeLoops(f)
			deadCodeElim(f)
		}
		removeUnreachable(f)
	}
}

// removeUnreachable deletes blocks not reachable from the entry and
// renumbers the remainder.
func removeUnreachable(f *ir.Func) {
	reach := make(map[*ir.Block]bool)
	var stack []*ir.Block
	stack = append(stack, f.Entry())
	reach[f.Entry()] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	var kept []*ir.Block
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		}
	}
	if len(kept) == len(f.Blocks) {
		return
	}
	for i, b := range kept {
		b.ID = i
		var preds []*ir.Block
		for _, p := range b.Preds {
			if reach[p] {
				preds = append(preds, p)
			}
		}
		b.Preds = preds
	}
	f.Blocks = kept
}

// useCounts returns, for each register, how many times it is read
// anywhere in the function.
func useCounts(f *ir.Func) []int {
	counts := make([]int, f.NumRegs())
	var buf []ir.Reg
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			buf = op.Uses(buf[:0])
			for _, r := range buf {
				counts[r]++
			}
		}
	}
	return counts
}

type constVal struct {
	isFloat bool
	i       int64
	fl      float64
}

// localConstAndCopy performs block-local constant and copy propagation
// plus integer constant folding.
func localConstAndCopy(f *ir.Func, b *ir.Block) {
	consts := make(map[ir.Reg]constVal)
	copies := make(map[ir.Reg]ir.Reg) // dst -> src (src still valid)

	resolve := func(r ir.Reg) ir.Reg {
		for {
			s, ok := copies[r]
			if !ok {
				return r
			}
			r = s
		}
	}
	invalidate := func(d ir.Reg) {
		delete(consts, d)
		delete(copies, d)
		for k, v := range copies {
			if v == d {
				delete(copies, k)
			}
		}
	}

	for _, op := range b.Ops {
		// Rewrite uses through the copy map.
		for i, a := range op.Args {
			if a != ir.NoReg {
				op.Args[i] = resolve(a)
			}
		}
		if op.Idx != ir.NoReg {
			op.Idx = resolve(op.Idx)
		}
		for i, a := range op.CallArgs {
			op.CallArgs[i] = resolve(a)
		}

		// Integer constant folding.
		if folded, ok := foldInt(op, consts); ok {
			invalidate(op.Dst)
			op.Kind = ir.OpConst
			op.Args = [2]ir.Reg{}
			op.Imm = folded
			consts[op.Dst] = constVal{i: folded}
			continue
		}

		if op.Dst != ir.NoReg {
			invalidate(op.Dst)
		}
		switch op.Kind {
		case ir.OpConst:
			consts[op.Dst] = constVal{i: op.Imm}
		case ir.OpFConst:
			consts[op.Dst] = constVal{isFloat: true, fl: op.FImm}
		case ir.OpMov:
			if op.Args[0] != op.Dst {
				copies[op.Dst] = op.Args[0]
			}
			if c, ok := consts[op.Args[0]]; ok {
				consts[op.Dst] = c
			}
		case ir.OpCall:
			// Calls clobber nothing in the caller's register file under
			// the callee-save-everything convention, so constants and
			// copies survive.
		}
	}
}

// foldInt folds an integer operation whose operands are known
// constants. It returns the folded value and true on success.
func foldInt(op *ir.Op, consts map[ir.Reg]constVal) (int64, bool) {
	bin := func() (int32, int32, bool) {
		a, okA := consts[op.Args[0]]
		b, okB := consts[op.Args[1]]
		if !okA || !okB || a.isFloat || b.isFloat {
			return 0, 0, false
		}
		return int32(a.i), int32(b.i), true
	}
	switch op.Kind {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpShr, ir.OpSetEQ, ir.OpSetNE, ir.OpSetLT,
		ir.OpSetLE, ir.OpSetGT, ir.OpSetGE:
		a, b, ok := bin()
		if !ok {
			return 0, false
		}
		return int64(evalIntBin(op.Kind, a, b)), true
	case ir.OpDiv, ir.OpRem:
		a, b, ok := bin()
		if !ok || b == 0 {
			return 0, false
		}
		return int64(evalIntBin(op.Kind, a, b)), true
	case ir.OpNeg:
		if a, ok := consts[op.Args[0]]; ok && !a.isFloat {
			return int64(-int32(a.i)), true
		}
	case ir.OpNot:
		if a, ok := consts[op.Args[0]]; ok && !a.isFloat {
			return int64(^int32(a.i)), true
		}
	}
	return 0, false
}

// evalIntBin defines the integer semantics of the model architecture:
// 32-bit two's-complement wraparound, arithmetic right shift, shift
// counts masked to 5 bits. The simulator uses the same function, so
// folding can never change program behaviour.
func evalIntBin(k ir.OpKind, a, b int32) int32 {
	switch k {
	case ir.OpAdd:
		return a + b
	case ir.OpSub:
		return a - b
	case ir.OpMul:
		return a * b
	case ir.OpDiv:
		return a / b
	case ir.OpRem:
		return a % b
	case ir.OpAnd:
		return a & b
	case ir.OpOr:
		return a | b
	case ir.OpXor:
		return a ^ b
	case ir.OpShl:
		return a << (uint32(b) & 31)
	case ir.OpShr:
		return a >> (uint32(b) & 31)
	case ir.OpSetEQ:
		return b2i(a == b)
	case ir.OpSetNE:
		return b2i(a != b)
	case ir.OpSetLT:
		return b2i(a < b)
	case ir.OpSetLE:
		return b2i(a <= b)
	case ir.OpSetGT:
		return b2i(a > b)
	case ir.OpSetGE:
		return b2i(a >= b)
	}
	panic("opt: evalIntBin on " + k.String())
}

// EvalIntBin exposes the architecture's integer semantics to the
// simulator.
func EvalIntBin(k ir.OpKind, a, b int32) int32 { return evalIntBin(k, a, b) }

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// redundantLoadElim removes block-local redundant memory accesses: a
// load of the same symbol through the same (un-redefined) index
// register as an earlier load or store is replaced by a register copy.
// Besides being a standard optimization, this keeps a pair of loads of
// the *same address* from being mistaken for a simultaneous same-array
// access and triggering a needless duplication mark.
func redundantLoadElim(f *ir.Func, b *ir.Block) {
	type key struct {
		sym *ir.Symbol
		idx ir.Reg
	}
	avail := make(map[key]ir.Reg)
	invalidateReg := func(r ir.Reg) {
		for k, v := range avail {
			if v == r || k.idx == r {
				delete(avail, k)
			}
		}
	}
	invalidateSym := func(s *ir.Symbol) {
		for k := range avail {
			if k.sym == s {
				delete(avail, k)
			}
		}
	}
	for _, op := range b.Ops {
		switch op.Kind {
		case ir.OpLoad:
			k := key{op.Sym, op.Idx}
			v, hit := avail[k]
			if hit {
				op.Kind = ir.OpMov
				op.Args[0] = v
				op.Sym = nil
				op.Idx = ir.NoReg
			}
			invalidateReg(op.Dst)
			// If the destination doubles as the index register, the
			// index value is gone and the address can no longer be
			// named.
			if k.idx != op.Dst {
				avail[k] = op.Dst
			}
			continue
		case ir.OpStore:
			invalidateSym(op.Sym)
			avail[key{op.Sym, op.Idx}] = op.Args[0] // store-to-load forwarding
			continue
		case ir.OpCall:
			avail = make(map[key]ir.Reg)
			continue
		}
		if op.Dst != ir.NoReg {
			invalidateReg(op.Dst)
		}
	}
}

// coalesceMoves fuses `d = op ...; s = mov d` pairs where d has exactly
// one use, rewriting the defining op to target s directly. This removes
// the copies that compound assignments and accumulators introduce.
func coalesceMoves(f *ir.Func) {
	counts := useCounts(f)
	for _, b := range f.Blocks {
		for i := 0; i+1 < len(b.Ops); i++ {
			op, nxt := b.Ops[i], b.Ops[i+1]
			if nxt.Kind != ir.OpMov || op.Dst == ir.NoReg || nxt.Args[0] != op.Dst {
				continue
			}
			if counts[op.Dst] != 1 {
				continue
			}
			// A multiply-accumulate implicitly reads its destination, so
			// retargeting would change which accumulator is read.
			if op.Kind == ir.OpMac || op.Kind == ir.OpFMac {
				continue
			}
			if op.Kind == ir.OpCall {
				continue
			}
			op.Dst = nxt.Dst
			nxt.Kind = ir.OpMov
			nxt.Args[0] = nxt.Dst // becomes a self-move; DCE removes it
		}
	}
	// Delete self-moves.
	for _, b := range f.Blocks {
		out := b.Ops[:0]
		for _, op := range b.Ops {
			if op.Kind == ir.OpMov && op.Args[0] == op.Dst {
				continue
			}
			out = append(out, op)
		}
		b.Ops = out
	}
}

// fuseMAC rewrites  t = mul a,b ; s = add s,t  (or add t,s) into a
// single multiply-accumulate when t has no other use and a, b, s are
// not redefined in between. This is the accumulator idiom at the heart
// of the FIR example in Figure 1.
func fuseMAC(f *ir.Func) {
	counts := useCounts(f)
	for _, b := range f.Blocks {
		defsBetween := func(from, to int, r ir.Reg) bool {
			for j := from + 1; j < to; j++ {
				if b.Ops[j].Dst == r {
					return true
				}
			}
			return false
		}
		for i, op := range b.Ops {
			var addK, macK ir.OpKind
			switch op.Kind {
			case ir.OpMul:
				addK, macK = ir.OpAdd, ir.OpMac
			case ir.OpFMul:
				addK, macK = ir.OpFAdd, ir.OpFMac
			default:
				continue
			}
			t := op.Dst
			if counts[t] != 1 {
				continue
			}
			for j := i + 1; j < len(b.Ops); j++ {
				cand := b.Ops[j]
				if cand.Kind != addK {
					// Stop the search if t's operands or t itself are
					// redefined before we find the add.
					if cand.Dst == t || cand.Dst == op.Args[0] || cand.Dst == op.Args[1] {
						break
					}
					continue
				}
				var acc ir.Reg
				switch {
				case cand.Args[0] == t && cand.Args[1] != t:
					acc = cand.Args[1]
				case cand.Args[1] == t && cand.Args[0] != t:
					acc = cand.Args[0]
				default:
					continue
				}
				if cand.Dst != acc {
					continue // not an accumulator update
				}
				if defsBetween(i, j, op.Args[0]) || defsBetween(i, j, op.Args[1]) || defsBetween(i, j, acc) {
					break
				}
				// Fuse: cand becomes mac acc += a*b; the mul becomes a
				// self-move that DCE removes.
				cand.Kind = macK
				cand.Args = op.Args
				op.Kind = ir.OpMov
				op.Args = [2]ir.Reg{t}
				break
			}
		}
	}
	// Remove the self-moves left behind.
	for _, b := range f.Blocks {
		out := b.Ops[:0]
		for _, op := range b.Ops {
			if op.Kind == ir.OpMov && op.Args[0] == op.Dst {
				continue
			}
			out = append(out, op)
		}
		b.Ops = out
	}
}

// hoistLoopConstants moves constant definitions whose block is inside a
// loop to the function entry, deduplicating by value. Constants are
// pure and their registers are single-assignment after the hoist, so
// this is always safe; it frees loop instruction slots at the price of
// register pressure (spills land on the partitioned stacks).
func hoistLoopConstants(f *ir.Func) {
	redef := make(map[ir.Reg]int) // defs per register
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			if op.Dst != ir.NoReg {
				redef[op.Dst]++
			}
		}
	}
	type key struct {
		kind ir.OpKind
		imm  int64
		fimm float64
	}
	pooled := make(map[key]ir.Reg)
	var hoisted []*ir.Op
	replace := make(map[ir.Reg]ir.Reg)

	for _, b := range f.Blocks {
		if b.LoopDepth == 0 {
			continue
		}
		out := b.Ops[:0]
		for _, op := range b.Ops {
			if (op.Kind == ir.OpConst || op.Kind == ir.OpFConst) && redef[op.Dst] == 1 {
				k := key{kind: op.Kind, imm: op.Imm, fimm: op.FImm}
				if r, ok := pooled[k]; ok {
					replace[op.Dst] = r
				} else {
					pooled[k] = op.Dst
					hoisted = append(hoisted, op)
				}
				continue
			}
			out = append(out, op)
		}
		b.Ops = out
	}
	if len(hoisted) == 0 && len(replace) == 0 {
		return
	}
	entry := f.Entry()
	entry.Ops = append(hoisted, entry.Ops...)
	if len(replace) == 0 {
		return
	}
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			for i, a := range op.Args {
				if r, ok := replace[a]; ok {
					op.Args[i] = r
				}
			}
			if r, ok := replace[op.Idx]; ok {
				op.Idx = r
			}
			for i, a := range op.CallArgs {
				if r, ok := replace[a]; ok {
					op.CallArgs[i] = r
				}
			}
		}
	}
}

// deadCodeElim removes pure operations whose results are never used.
// It iterates to a fixed point because removing one op can make
// another's result dead.
func deadCodeElim(f *ir.Func) {
	for {
		counts := useCounts(f)
		changed := false
		for _, b := range f.Blocks {
			out := b.Ops[:0]
			for _, op := range b.Ops {
				if isPure(op) && op.Dst != ir.NoReg && counts[op.Dst] == 0 {
					changed = true
					continue
				}
				out = append(out, op)
			}
			b.Ops = out
		}
		if !changed {
			return
		}
	}
}

func isPure(op *ir.Op) bool {
	switch op.Kind {
	case ir.OpStore, ir.OpCall, ir.OpBr, ir.OpCondBr, ir.OpRet, ir.OpLoad:
		// Loads are pure in effect, but removing one never helps after
		// lowering and keeping them makes memory-traffic accounting
		// honest; still, an unused load's result is dead weight, so
		// allow elimination.
		return op.Kind == ir.OpLoad
	}
	return true
}
