// Command dspbench regenerates the paper's evaluation: Figure 7
// (kernel gains under CB partitioning vs the dual-ported Ideal),
// Figure 8 (application gains under CB, profiled weights, partial
// duplication, and Ideal), and Table 3 (performance/cost trade-offs).
//
// Usage:
//
//	dspbench [-fig7] [-fig8] [-table3] [-all] [-bench name]
package main

import (
	"flag"
	"fmt"
	"os"

	"dualbank/internal/alloc"
	"dualbank/internal/bench"
	"dualbank/internal/pipeline"
)

func main() {
	fig7 := flag.Bool("fig7", false, "run the kernel experiment (Figure 7)")
	fig8 := flag.Bool("fig8", false, "run the application experiment (Figure 8)")
	table3 := flag.Bool("table3", false, "run the performance/cost table (Table 3)")
	orgs := flag.Bool("organizations", false, "compare memory organisations (low-order vs high-order vs dual-ported)")
	tables := flag.Bool("tables", false, "print the benchmark inventories (Tables 1 and 2)")
	sweep := flag.Bool("sweep", false, "sweep FIR filter order vs CB gain")
	all := flag.Bool("all", false, "run everything")
	one := flag.String("bench", "", "run a single benchmark across all modes")
	selective := flag.String("selective", "", "run PCR-driven selective duplication on one benchmark")
	list := flag.Bool("list", false, "list benchmark names")
	flag.Parse()

	if *list {
		for _, n := range bench.Names() {
			fmt.Println(n)
		}
		return
	}
	if *selective != "" {
		runSelective(*selective)
		return
	}
	if *one != "" {
		runOne(*one)
		return
	}
	if !*fig7 && !*fig8 && !*table3 && !*orgs && !*tables && !*sweep {
		*all = true
	}
	if *tables || *all {
		fmt.Println(bench.RenderTables())
	}
	if *fig7 || *all {
		rows, err := bench.Figure7()
		check(err)
		fmt.Println(bench.RenderFigure(
			"Figure 7: Performance Gain for DSP Kernels (over single-bank baseline)",
			rows, bench.Figure7Modes))
	}
	if *fig8 || *all {
		rows, err := bench.Figure8()
		check(err)
		fmt.Println(bench.RenderFigure(
			"Figure 8: Performance Gain for DSP Applications (over single-bank baseline)",
			rows, bench.Figure8Modes))
	}
	if *table3 || *all {
		rows, err := bench.Table3()
		check(err)
		fmt.Println(bench.RenderTable3(rows))
	}
	if *orgs || *all {
		rows, err := bench.Organizations()
		check(err)
		fmt.Println(bench.RenderFigure(
			"Memory organisations: low-order interleaved (hardware conflict stalls) vs high-order banked (CB/Dup) vs dual-ported",
			rows, bench.OrganizationModes))
	}
	if *sweep || *all {
		rows, err := bench.SweepFIR([]int{8, 16, 32, 64, 128, 256}, 16)
		check(err)
		fmt.Println(bench.RenderSweep("FIR order sensitivity: CB gain vs filter length (16 samples)", rows))
	}
}

func runOne(name string) {
	p, ok := bench.ByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "dspbench: unknown benchmark %q (use -list)\n", name)
		os.Exit(2)
	}
	modes := []alloc.Mode{
		alloc.SingleBank, alloc.CB, alloc.CBProfiled,
		alloc.CBDup, alloc.FullDup, alloc.Ideal,
	}
	var base bench.Result
	for _, m := range modes {
		res, err := bench.Run(p, m)
		check(err)
		if m == alloc.SingleBank {
			base = res
			fmt.Printf("%-12s cycles=%-10d cost=%d\n", m, res.Cycles, res.Mem.Total())
			continue
		}
		fmt.Printf("%-12s cycles=%-10d gain=%+6.1f%% cost=%-8d dupStores=%d dup=%v\n",
			m, res.Cycles, bench.Gain(base, res), res.Mem.Total(), res.DupStores, res.Duplicated)
	}
}

// runSelective demonstrates the paper's §5 refinement: duplicate only
// the arrays whose performance gain justifies their memory cost.
func runSelective(name string) {
	p, ok := bench.ByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "dspbench: unknown benchmark %q (use -list)\n", name)
		os.Exit(2)
	}
	res, err := pipeline.CompileSelective(p.Source, p.Name, pipeline.SelectiveOptions{})
	check(err)
	fmt.Printf("selective duplication for %s\n", p.Name)
	fmt.Printf("plain CB: %d cycles, PCR %.3f\n", res.BaseCycles, res.BasePCR)
	fmt.Printf("candidates: %v\n", res.Candidates)
	for _, tr := range res.Trials {
		verdict := "rejected"
		if tr.Kept {
			verdict = "kept"
		}
		fmt.Printf("  %-10s %-8s cycles=%-8d PG=%.2f CI=%.2f PCR=%.3f  (%s)\n",
			tr.Symbol, verdict, tr.Cycles, tr.PG, tr.CI, tr.PCR, tr.Reason)
	}
	fmt.Printf("chosen: %v\n", res.Chosen)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dspbench:", err)
		os.Exit(1)
	}
}
