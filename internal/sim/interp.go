// Package sim executes compiled programs. It provides two engines:
//
//   - Interp walks the IR directly (any pipeline stage). It is the
//     reference semantics: tests compare its memory image against Go
//     reference implementations, and the profiler uses it to collect
//     basic-block execution counts for the profile-driven edge-weight
//     policy (Pr).
//   - Machine executes scheduled VLIW code against the two-bank memory
//     system with read-before-write instruction semantics and counts
//     cycles — the paper's performance metric.
//
// Both engines share the architecture's arithmetic semantics, so any
// divergence between them is a compiler bug; the integration tests
// exploit this.
package sim

import (
	"context"
	"fmt"
	"math"

	"dualbank/internal/ir"
	"dualbank/internal/opt"
)

// DefaultMaxSteps bounds interpreter execution (operations) and
// simulator execution (cycles) to catch runaway programs.
const DefaultMaxSteps = 1 << 32

// Interp is the IR-level interpreter.
type Interp struct {
	Prog *ir.Program
	// MaxSteps bounds the number of executed operations.
	MaxSteps int64
	// Steps is the number of operations executed.
	Steps int64
	// Profile enables basic-block execution counting into
	// ir.Block.ExecCount.
	Profile bool

	mem   map[*ir.Symbol][]uint32
	regs  []uint32 // global file when the program is in physical form
	phys  bool
	loops []int32 // hardware loop-counter stack

	cancel ctxCheck
}

// maxLoopDepth bounds the hardware loop stack, like real DSP loop
// hardware.
const maxLoopDepth = 64

// NewInterp prepares an interpreter with freshly initialized memory.
func NewInterp(p *ir.Program) *Interp {
	in := &Interp{Prog: p, MaxSteps: DefaultMaxSteps, mem: make(map[*ir.Symbol][]uint32)}
	for _, s := range p.Symbols() {
		w := make([]uint32, s.Size)
		copy(w, s.Init)
		in.mem[s] = w
	}
	if len(p.Funcs) > 0 && p.Funcs[0].Phys() {
		in.phys = true
		in.regs = make([]uint32, 65)
	}
	return in
}

// Run executes main().
func (in *Interp) Run() error {
	return in.RunContext(context.Background())
}

// RunContext executes main(), honoring ctx: the step loop polls for
// cancellation at control-transfer boundaries and returns an error
// wrapping ctx.Err() once the context is done.
func (in *Interp) RunContext(ctx context.Context) error {
	in.cancel.arm(ctx)
	defer in.cancel.disarm()
	mainF := in.Prog.Func("main")
	if mainF == nil {
		return fmt.Errorf("interp: no main function")
	}
	if in.Profile {
		for _, f := range in.Prog.Funcs {
			for _, b := range f.Blocks {
				b.ExecCount = 0
			}
		}
	}
	_, err := in.call(mainF)
	return err
}

// Word returns the raw word at sym[idx].
func (in *Interp) Word(sym *ir.Symbol, idx int) uint32 { return in.mem[sym][idx] }

// Int32 returns sym[idx] as an integer.
func (in *Interp) Int32(sym *ir.Symbol, idx int) int32 { return int32(in.mem[sym][idx]) }

// Float32 returns sym[idx] as a float.
func (in *Interp) Float32(sym *ir.Symbol, idx int) float32 {
	return math.Float32frombits(in.mem[sym][idx])
}

// GlobalByName finds a global symbol for test inspection.
func (in *Interp) GlobalByName(name string) *ir.Symbol {
	for _, g := range in.Prog.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

func (in *Interp) call(f *ir.Func) (uint32, error) {
	// In physical form the whole program shares one register file and
	// the functions' own prologues/epilogues preserve state across
	// calls; in virtual form each invocation gets a private frame.
	regs := in.regs
	if !in.phys {
		regs = make([]uint32, f.NumRegs())
	}

	b := f.Entry()
	for i := 0; i < len(b.Ops); {
		op := b.Ops[i]
		in.Steps++
		if in.Steps > in.MaxSteps {
			return 0, fmt.Errorf("interp: step limit exceeded in %s", f.Name)
		}
		if i == 0 {
			if err := in.cancel.poll(); err != nil {
				return 0, fmt.Errorf("interp: %s: %w", f.Name, err)
			}
			if in.Profile {
				b.ExecCount++
			}
		}
		switch op.Kind {
		case ir.OpBr:
			b = b.Succs[0]
			i = 0
			continue
		case ir.OpCondBr:
			if regs[op.Args[0]] != 0 {
				b = b.Succs[0]
			} else {
				b = b.Succs[1]
			}
			i = 0
			continue
		case ir.OpDo:
			n := int32(regs[op.Args[0]])
			if n < 1 {
				return 0, fmt.Errorf("interp: do with count %d in %s", n, f.Name)
			}
			if len(in.loops) >= maxLoopDepth {
				return 0, fmt.Errorf("interp: loop stack overflow in %s", f.Name)
			}
			in.loops = append(in.loops, n)
			b = b.Succs[0]
			i = 0
			continue
		case ir.OpEndDo:
			top := len(in.loops) - 1
			if top < 0 {
				return 0, fmt.Errorf("interp: enddo with empty loop stack in %s", f.Name)
			}
			in.loops[top]--
			if in.loops[top] > 0 {
				b = b.Succs[0]
			} else {
				in.loops = in.loops[:top]
				b = b.Succs[1]
			}
			i = 0
			continue
		case ir.OpRet:
			if op.Args[0] != ir.NoReg {
				return regs[op.Args[0]], nil
			}
			return 0, nil
		case ir.OpCall:
			callee := in.Prog.Func(op.Callee)
			v, err := in.call(callee)
			if err != nil {
				return 0, err
			}
			if op.Dst != ir.NoReg {
				regs[op.Dst] = v
			}
		default:
			if err := in.exec(f, op, regs); err != nil {
				return 0, fmt.Errorf("%s: %s: %w", f.Name, op, err)
			}
		}
		i++
	}
	return 0, fmt.Errorf("interp: fell off end of block in %s", f.Name)
}

func (in *Interp) exec(f *ir.Func, op *ir.Op, regs []uint32) error {
	iv := func(r ir.Reg) int32 { return int32(regs[r]) }
	fv := func(r ir.Reg) float32 { return math.Float32frombits(regs[r]) }
	setI := func(v int32) { regs[op.Dst] = uint32(v) }
	setF := func(v float32) { regs[op.Dst] = math.Float32bits(v) }

	switch op.Kind {
	case ir.OpConst:
		setI(int32(op.Imm))
	case ir.OpFConst:
		setF(float32(op.FImm))
	case ir.OpMov:
		regs[op.Dst] = regs[op.Args[0]]
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpShr, ir.OpSetEQ, ir.OpSetNE, ir.OpSetLT,
		ir.OpSetLE, ir.OpSetGT, ir.OpSetGE:
		setI(opt.EvalIntBin(op.Kind, iv(op.Args[0]), iv(op.Args[1])))
	case ir.OpDiv, ir.OpRem:
		if iv(op.Args[1]) == 0 {
			return fmt.Errorf("integer division by zero")
		}
		setI(opt.EvalIntBin(op.Kind, iv(op.Args[0]), iv(op.Args[1])))
	case ir.OpNeg:
		setI(-iv(op.Args[0]))
	case ir.OpNot:
		setI(^iv(op.Args[0]))
	case ir.OpMac:
		setI(iv(op.Dst) + iv(op.Args[0])*iv(op.Args[1]))
	case ir.OpFAdd:
		setF(fv(op.Args[0]) + fv(op.Args[1]))
	case ir.OpFSub:
		setF(fv(op.Args[0]) - fv(op.Args[1]))
	case ir.OpFMul:
		setF(fv(op.Args[0]) * fv(op.Args[1]))
	case ir.OpFDiv:
		setF(fv(op.Args[0]) / fv(op.Args[1]))
	case ir.OpFNeg:
		setF(-fv(op.Args[0]))
	case ir.OpFMac:
		setF(fv(op.Dst) + fv(op.Args[0])*fv(op.Args[1]))
	case ir.OpFSetEQ:
		setI(b2i(fv(op.Args[0]) == fv(op.Args[1])))
	case ir.OpFSetNE:
		setI(b2i(fv(op.Args[0]) != fv(op.Args[1])))
	case ir.OpFSetLT:
		setI(b2i(fv(op.Args[0]) < fv(op.Args[1])))
	case ir.OpFSetLE:
		setI(b2i(fv(op.Args[0]) <= fv(op.Args[1])))
	case ir.OpFSetGT:
		setI(b2i(fv(op.Args[0]) > fv(op.Args[1])))
	case ir.OpFSetGE:
		setI(b2i(fv(op.Args[0]) >= fv(op.Args[1])))
	case ir.OpIntToFloat:
		setF(float32(iv(op.Args[0])))
	case ir.OpFloatToInt:
		setI(FloatToInt(fv(op.Args[0])))
	case ir.OpLoad:
		idx, err := in.memIndex(op, regs)
		if err != nil {
			return err
		}
		regs[op.Dst] = in.mem[op.Sym][idx]
	case ir.OpStore:
		idx, err := in.memIndex(op, regs)
		if err != nil {
			return err
		}
		in.mem[op.Sym][idx] = regs[op.Args[0]]
	default:
		return fmt.Errorf("interp: cannot execute %s", op.Kind)
	}
	return nil
}

func (in *Interp) memIndex(op *ir.Op, regs []uint32) (int, error) {
	idx := 0
	if op.Idx != ir.NoReg {
		idx = int(int32(regs[op.Idx]))
	}
	if idx < 0 || idx >= op.Sym.Size {
		return 0, fmt.Errorf("index %d out of range for %s (size %d)", idx, op.Sym, op.Sym.Size)
	}
	return idx, nil
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// FloatToInt defines the architecture's float-to-int conversion:
// truncation toward zero with saturation and NaN mapping to zero,
// making the operation fully deterministic.
func FloatToInt(f float32) int32 {
	switch {
	case f != f: // NaN
		return 0
	case f >= 2147483647:
		return math.MaxInt32
	case f <= -2147483648:
		return math.MinInt32
	}
	return int32(f)
}
