package core

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestDotGolden pins the Graphviz rendering of the Figure 4 graph —
// nodes in symbol order, edges sorted by endpoint names — so the
// output is stable across runs and map-iteration-order changes.
func TestDotGolden(t *testing.T) {
	g := figure4Graph()
	// Mark one symbol for duplication so the peripheries attribute is
	// covered too.
	g.DupMarks[g.Nodes[1]] = true
	got := g.Dot(g.Partition())

	golden := filepath.Join("testdata", "figure4.dot")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("Dot output diverged from %s:\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestDotDeterministic renders the same graph many times and requires
// byte-identical output each time.
func TestDotDeterministic(t *testing.T) {
	g := figure4Graph()
	p := g.Partition()
	first := g.Dot(p)
	for i := 0; i < 20; i++ {
		if out := g.Dot(p); out != first {
			t.Fatalf("Dot output varies between calls:\n%s\nvs\n%s", first, out)
		}
	}
}
