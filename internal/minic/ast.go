package minic

// TypeName is a MiniC scalar type.
type TypeName int8

const (
	TypeVoid TypeName = iota
	TypeInt
	TypeFloat
)

func (t TypeName) String() string {
	switch t {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	}
	return "?"
}

// File is a parsed translation unit.
type File struct {
	Decls []*VarDecl // globals, in source order
	Funcs []*FuncDecl
}

// VarDecl declares one variable or array (a source declaration with
// multiple declarators is split into one VarDecl per name).
type VarDecl struct {
	Pos  Pos
	Name string
	Type TypeName
	Dims []int // [] scalar, [N], or [R C]
	Init Expr  // scalar initializer, or *InitList for arrays; may be nil
	// Sym is filled by semantic analysis.
	Sym *VarSym
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Ret    TypeName
	Params []*VarDecl // scalars only
	Body   *BlockStmt
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// BlockStmt is a `{ ... }` compound statement.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// DeclStmt is a local variable declaration.
type DeclStmt struct{ Decl *VarDecl }

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct{ X Expr }

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// DoWhileStmt is a bottom-tested do { ... } while (cond); loop.
type DoWhileStmt struct {
	Pos  Pos
	Body Stmt
	Cond Expr
}

// ForStmt is a C for loop.
type ForStmt struct {
	Pos  Pos
	Init Stmt // DeclStmt or ExprStmt; may be nil
	Cond Expr // may be nil (true)
	Post Expr // may be nil
	Body Stmt
}

// SwitchStmt is a C switch over an integer scrutinee. Cases fall
// through unless terminated by break, exactly as in C.
type SwitchStmt struct {
	Pos   Pos
	X     Expr
	Cases []*SwitchCase
}

// SwitchCase is one `case N:` (or `default:`) arm with the statements
// that follow it up to the next label.
type SwitchCase struct {
	Pos     Pos
	Default bool
	Val     Expr // constant expression; nil for default
	Stmts   []Stmt
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	Pos Pos
	X   Expr // may be nil
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt jumps to the innermost loop's next iteration.
type ContinueStmt struct{ Pos Pos }

// EmptyStmt is a bare semicolon.
type EmptyStmt struct{ Pos Pos }

func (*BlockStmt) stmt()    {}
func (*DeclStmt) stmt()     {}
func (*ExprStmt) stmt()     {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*DoWhileStmt) stmt()  {}
func (*ForStmt) stmt()      {}
func (*SwitchStmt) stmt()   {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*EmptyStmt) stmt()    {}

// Expr is an expression node. Semantic analysis records each node's
// type via SetType; lowering reads it via TypeOf.
type Expr interface {
	expr()
	ExprPos() Pos
	TypeOf() TypeName
	setType(TypeName)
}

type exprBase struct {
	Pos Pos
	typ TypeName
}

func (e *exprBase) expr()              {}
func (e *exprBase) ExprPos() Pos       { return e.Pos }
func (e *exprBase) TypeOf() TypeName   { return e.typ }
func (e *exprBase) setType(t TypeName) { e.typ = t }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Val int64
}

// FloatLit is a float literal.
type FloatLit struct {
	exprBase
	Val float64
}

// Ident references a variable.
type Ident struct {
	exprBase
	Name string
	Sym  *VarSym // resolved by sema
}

// IndexExpr is a[i] or a[i][j].
type IndexExpr struct {
	exprBase
	Arr  *Ident
	Idxs []Expr // 1 or 2, matching the array's rank
}

// CallExpr is f(args...).
type CallExpr struct {
	exprBase
	Name string
	Args []Expr
	Decl *FuncDecl // resolved by sema
}

// UnaryExpr is -x, !x, ~x.
type UnaryExpr struct {
	exprBase
	Op Kind // Minus, Bang, Tilde
	X  Expr
}

// CastExpr is (int)x or (float)x.
type CastExpr struct {
	exprBase
	To TypeName
	X  Expr
}

// BinaryExpr is a binary arithmetic, logical or relational expression.
type BinaryExpr struct {
	exprBase
	Op   Kind // Plus..GE, AndAnd, OrOr
	L, R Expr
}

// CondExpr is c ? a : b.
type CondExpr struct {
	exprBase
	Cond, Then, Else Expr
}

// AssignExpr is lhs op= rhs (op Assign for plain =). Lhs is an Ident or
// IndexExpr.
type AssignExpr struct {
	exprBase
	Op  Kind // Assign, PlusAssign, ...
	Lhs Expr
	Rhs Expr
}

// IncDecExpr is ++x, --x, x++, or x--.
type IncDecExpr struct {
	exprBase
	Op      Kind // Inc or Dec
	Postfix bool
	X       Expr // Ident or IndexExpr
}

// InitList is a brace-enclosed array initializer. Elements are constant
// expressions (literals, possibly negated).
type InitList struct {
	exprBase
	Elems []Expr
}

// VarSym is the semantic object for a declared variable; it links the
// front-end name to the IR symbol created during lowering.
type VarSym struct {
	Name    string
	Type    TypeName
	Dims    []int
	Global  bool
	IsParam bool
	Decl    *VarDecl
}

// IsArray reports whether the symbol is an array.
func (v *VarSym) IsArray() bool { return len(v.Dims) > 0 }

// Words returns the symbol's size in 32-bit words.
func (v *VarSym) Words() int {
	n := 1
	for _, d := range v.Dims {
		n *= d
	}
	return n
}
