package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"dualbank/internal/bench"
	"dualbank/internal/pipeline"
)

// ErrStopped is returned for work submitted to (or stranded in) a pool
// that has been closed; the HTTP layer maps it to 503.
var ErrStopped = errors.New("serve: pool stopped")

// ErrShed is returned when bounded admission gives up waiting for a
// queue slot; the HTTP layer maps it to 429 with a Retry-After.
var ErrShed = errors.New("serve: admission queue full")

// RunFunc executes one job on a worker's private compiler scratch.
type RunFunc func(ctx context.Context, cc *pipeline.Compiler, j Job) (bench.Result, bool, error)

// Pool is a bounded worker pool. Each worker goroutine owns one
// pipeline.Compiler — the reusable interference-scanner and scheduler
// arenas — so steady-state request handling allocates only retained
// results, exactly like the batch harness's workers. Submission blocks
// when every worker is busy and the queue is full; the caller's
// context bounds the wait, which is the service's backpressure.
type Pool struct {
	tasks  chan *task
	ctx    context.Context // cancelled by Close; aborts queued and running work
	cancel context.CancelFunc
	wg     sync.WaitGroup
	once   sync.Once

	workers int
	active  atomic.Int64
}

// task is one queued job plus its result slot. res is buffered so a
// worker can always deliver and move on, even when the submitter has
// already given up.
type task struct {
	ctx context.Context
	job Job
	res chan taskResult
}

type taskResult struct {
	res    bench.Result
	cached bool
	err    error
}

// NewPool starts workers goroutines executing run. queueDepth bounds
// the number of accepted-but-unstarted jobs (0 means no buffering:
// submission hands off directly to an idle worker).
func NewPool(workers, queueDepth int, run RunFunc) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		tasks:   make(chan *task, queueDepth),
		ctx:     ctx,
		cancel:  cancel,
		workers: workers,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker(run)
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Active returns the number of workers currently executing a job.
func (p *Pool) Active() int64 { return p.active.Load() }

// Do submits j and waits for its result. The wait — both for a worker
// slot and for the job itself — is bounded by ctx; a job whose context
// is already done when a worker picks it up is skipped, not executed.
func (p *Pool) Do(ctx context.Context, j Job) (bench.Result, bool, error) {
	t := &task{ctx: ctx, job: j, res: make(chan taskResult, 1)}
	select {
	case p.tasks <- t:
	case <-ctx.Done():
		return bench.Result{}, false, ctx.Err()
	case <-p.ctx.Done():
		return bench.Result{}, false, ErrStopped
	}
	select {
	case r := <-t.res:
		return r.res, r.cached, r.err
	case <-p.ctx.Done():
		return bench.Result{}, false, ErrStopped
	}
}

// DoTimeout is Do with bounded admission: if no queue slot frees
// within admit, the job is shed with ErrShed instead of waiting out
// the request's whole deadline. Once admitted, the job runs exactly
// like Do. This is the load-shedding primitive — a saturated server
// fails fast with a retryable signal rather than stacking up work it
// will time out on anyway.
func (p *Pool) DoTimeout(ctx context.Context, j Job, admit time.Duration) (bench.Result, bool, error) {
	t := &task{ctx: ctx, job: j, res: make(chan taskResult, 1)}
	timer := time.NewTimer(admit)
	defer timer.Stop()
	select {
	case p.tasks <- t:
	case <-timer.C:
		return bench.Result{}, false, ErrShed
	case <-ctx.Done():
		return bench.Result{}, false, ctx.Err()
	case <-p.ctx.Done():
		return bench.Result{}, false, ErrStopped
	}
	select {
	case r := <-t.res:
		return r.res, r.cached, r.err
	case <-p.ctx.Done():
		return bench.Result{}, false, ErrStopped
	}
}

// Close stops the pool: in-flight jobs are cancelled through their
// contexts, queued jobs are failed with ErrStopped, and Close returns
// once every worker has exited. Safe to call more than once.
func (p *Pool) Close() {
	p.once.Do(func() {
		p.cancel()
		p.wg.Wait()
	})
}

// worker executes tasks until the pool closes, then drains the queue
// so no submitter is left waiting forever. Each worker owns one
// Compiler for its whole life: the interference scanner and scheduler
// arena reach a steady state sized by the largest program the worker
// has seen, and back-to-back requests stop churning the collector.
func (p *Pool) worker(run RunFunc) {
	defer p.wg.Done()
	cc := new(pipeline.Compiler)
	for {
		select {
		case t := <-p.tasks:
			p.handle(t, cc, run)
		case <-p.ctx.Done():
			for {
				select {
				case t := <-p.tasks:
					t.res <- taskResult{err: ErrStopped}
				default:
					return
				}
			}
		}
	}
}

// handle runs one task under a context that fires on either the
// request's own deadline/disconnect or pool shutdown.
func (p *Pool) handle(t *task, cc *pipeline.Compiler, run RunFunc) {
	if err := t.ctx.Err(); err != nil {
		t.res <- taskResult{err: err}
		return
	}
	ctx, cancel := context.WithCancel(t.ctx)
	stop := context.AfterFunc(p.ctx, cancel)
	p.active.Add(1)

	res, cached, err := run(ctx, cc, t.job)

	p.active.Add(-1)
	stop()
	cancel()
	t.res <- taskResult{res: res, cached: cached, err: err}
}
