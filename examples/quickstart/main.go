// Quickstart reproduces Figure 1 of the paper: an N-th order FIR
// filter written in C, compiled for the dual-bank VLIW DSP. It prints
// the VLIW assembly under the single-bank baseline and under
// compaction-based partitioning — showing the two arrays landing in
// opposite banks and their loads pairing into one long instruction —
// and compares simulated cycle counts.
package main

import (
	"fmt"
	"log"

	"dualbank"
)

const src = `
float A[64] = {1.0, 2.0, 3.0, 4.0};   // remaining elements are zero
float B[64] = {0.5, 0.25, 0.125};
float sum;

void main() {
	int i;
	float s = 0.0;
	for (i = 0; i < 64; i++) {
		s += A[i] * B[i];
	}
	sum = s;
}
`

func main() {
	fmt.Println("Figure 1: N-th order FIR filter, sum += A[i]*B[i]")
	fmt.Println()

	var cycles [2]int64
	for i, mode := range []dualbank.Mode{dualbank.SingleBank, dualbank.CB} {
		c, err := dualbank.Compile(src, "fir", dualbank.Options{Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		m, err := c.Run()
		if err != nil {
			log.Fatal(err)
		}
		cycles[i] = m.Cycles
		sum, err := m.Float32(c.Global("sum"), 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== mode %s: %d cycles, sum = %g ===\n", mode, m.Cycles, sum)
		fmt.Println(dualbank.Assembly(c))
	}
	fmt.Printf("CB partitioning speedup over single bank: %.2fx\n",
		float64(cycles[0])/float64(cycles[1]))
	fmt.Println("Note how A and B occupy different banks under CB, so the")
	fmt.Println("inner loop issues both element loads in one instruction —")
	fmt.Println("the dual-bank parallel move of the DSP56001 listing in Figure 1(b).")
}
