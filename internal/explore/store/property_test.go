package store

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dualbank/internal/faultinject"
)

// TestConcurrentWritersOneKey hammers one key from 8 goroutines (under
// -race this is the store's concurrency audit): afterwards exactly one
// valid record file exists, it parses whole, and both the live index
// and a fresh Open agree on its contents.
func TestConcurrentWritersOneKey(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Bench: "fir_32_1", Config: "part=fm;dup=all", Cycles: 4242, MemXData: 7}
	key := Key(rec.Bench, rec.Config, "units=2")

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := s.Put(key, rec); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var jsonFiles []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			jsonFiles = append(jsonFiles, e.Name())
		}
		// Temp files may be stranded by racing renames; they must never
		// masquerade as records.
		if strings.Contains(e.Name(), ".tmp") && strings.HasSuffix(e.Name(), ".json") {
			t.Errorf("stranded temp file %q is loadable as a record", e.Name())
		}
	}
	if len(jsonFiles) != 1 {
		t.Fatalf("dir holds %d record files after concurrent writes, want exactly 1: %v", len(jsonFiles), jsonFiles)
	}
	data, err := os.ReadFile(filepath.Join(dir, jsonFiles[0]))
	if err != nil {
		t.Fatal(err)
	}
	var f file
	if err := json.Unmarshal(data, &f); err != nil || f.Key != key {
		t.Fatalf("surviving file invalid: %v (key %q)", err, f.Key)
	}
	if f.Record.Bench != rec.Bench || f.Record.Config != rec.Config ||
		f.Record.Cycles != rec.Cycles || f.Record.MemXData != rec.MemXData {
		t.Fatalf("surviving record %+v, want %+v", f.Record, rec)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened store has %d records, want 1", s2.Len())
	}
	if got, ok := s2.Get(key); !ok || got.Cycles != rec.Cycles {
		t.Fatalf("reopened Get = %+v, %v", got, ok)
	}
}

// TestTruncationAtEveryOffset writes one real record, then replays
// every possible torn prefix of its file into a fresh directory: a
// strict prefix must always be detected and skipped — never
// half-loaded — while the full bytes (with or without the trailing
// newline) load the exact record.
func TestTruncationAtEveryOffset(t *testing.T) {
	src := t.TempDir()
	s, err := Open(src)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{
		Bench: "fft_256", Config: "part=greedy;dup=none", Cycles: 987654321,
		MemXData: 11, MemYData: 13, MemStack: 5, MemInstr: 99,
		DupStores: 3, Duplicated: []string{"tw", "x"},
	}
	key := Key(rec.Bench, rec.Config, "units=2;bank=65536")
	if err := s.Put(key, rec); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d files, want 1", len(entries))
	}
	name := entries[0].Name()
	data, err := os.ReadFile(filepath.Join(src, name))
	if err != nil {
		t.Fatal(err)
	}

	dst := t.TempDir()
	path := filepath.Join(dst, name)
	for cut := 0; cut <= len(data); cut++ {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dst)
		if err != nil {
			t.Fatalf("cut %d: Open failed outright: %v", cut, err)
		}
		// Only the complete JSON value may load: the full file, or the
		// full file minus its trailing newline.
		complete := cut >= len(data)-1
		switch got, ok := s2.Get(key); {
		case !complete && (ok || s2.Len() != 0):
			t.Fatalf("cut %d of %d: truncated file half-loaded: %d records, rec %+v", cut, len(data), s2.Len(), got)
		case complete && (!ok || got.Cycles != rec.Cycles || got.DupStores != rec.DupStores ||
			len(got.Duplicated) != len(rec.Duplicated)):
			t.Fatalf("cut %d of %d: complete file loaded %+v, %v", cut, len(data), got, ok)
		}
	}
}

// TestPutUnderTornWrites drives Put through a filesystem that tears
// every write: every Put must fail cleanly, nothing may enter the
// index, and the directory must reload empty — the atomic-write
// discipline confines the damage to temp files.
func TestPutUnderTornWrites(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(faultinject.Profile{PartialWrite: 1})
	s, err := OpenFS(dir, faultinject.NewFaultFS(faultinject.OSFS{}, inj))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		err := s.Put(Key("b", "c", "m"), Record{Bench: "b", Cycles: 1})
		if err == nil {
			t.Fatal("torn Put reported success")
		}
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("torn Put error %v does not unwrap to ErrInjected", err)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("index holds %d records after failed Puts", s.Len())
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 0 {
		t.Fatalf("directory reloaded %d records after failed Puts, want 0", s2.Len())
	}
}

// TestPutStoreFailAfter models the checkpoint directory going
// read-only (or the disk filling) mid-run: writes succeed up to the
// threshold and deterministically fail afterwards, and the already
// published records survive a reload.
func TestPutStoreFailAfter(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(faultinject.Profile{StoreFailAfter: 6})
	s, err := OpenFS(dir, faultinject.NewFaultFS(faultinject.OSFS{}, inj))
	if err != nil {
		t.Fatal(err)
	}
	// Open's MkdirAll is write op 1; each Put then costs two write ops
	// (CreateTemp + Rename). Puts 1-2 use ops 2-5 and succeed; put 3
	// hits op 6 and every later op fails.
	var firstErr error
	ok := 0
	for i := 0; i < 6; i++ {
		err := s.Put(Key("b", string(rune('a'+i)), "m"), Record{Bench: "b", Cycles: int64(i)})
		if err == nil {
			ok++
		} else if firstErr == nil {
			firstErr = err
		}
	}
	if ok != 2 {
		t.Fatalf("%d Puts succeeded under store-failafter=5, want 2", ok)
	}
	if !errors.Is(firstErr, faultinject.ErrInjected) {
		t.Fatalf("failafter error %v does not unwrap to ErrInjected", firstErr)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != ok {
		t.Fatalf("reload found %d records, want %d", s2.Len(), ok)
	}
}
