package compact_test

import (
	"strings"
	"testing"

	"dualbank/internal/alloc"
	"dualbank/internal/compact"
	"dualbank/internal/ir"
	"dualbank/internal/lower"
	"dualbank/internal/machine"
	"dualbank/internal/minic"
	"dualbank/internal/opt"
	"dualbank/internal/regalloc"
)

// build compiles source through the allocation pass under a mode.
func build(t *testing.T, src string, mode alloc.Mode) (*ir.Program, *alloc.Result) {
	t.Helper()
	file, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := minic.Analyze(file); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	p, err := lower.Program(file, "t")
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	opt.Run(p, opt.Options{})
	if _, err := regalloc.Run(p); err != nil {
		t.Fatalf("regalloc: %v", err)
	}
	res, err := alloc.Run(p, alloc.Options{Mode: mode})
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	return p, res
}

const firSrc = `
float a[16] = {1.0};
float b[16] = {2.0};
float r;
void main() {
	int i;
	float s = 0.0;
	for (i = 0; i < 16; i++) {
		s += a[i] * b[i];
	}
	r = s;
}
`

func schedule(t *testing.T, src string, mode alloc.Mode) *compact.Program {
	t.Helper()
	p, res := build(t, src, mode)
	sched, err := compact.Schedule(p, compact.Config{Ports: res.Ports})
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	if err := compact.Validate(sched); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return sched
}

func TestScheduleValidAllModes(t *testing.T) {
	for _, mode := range []alloc.Mode{
		alloc.SingleBank, alloc.CB, alloc.CBDup, alloc.FullDup, alloc.Ideal,
	} {
		schedule(t, firSrc, mode)
	}
}

// TestBankedPortDiscipline: under the banked model, no instruction may
// carry two accesses to one bank, and every memory op sits on the unit
// wired to its bank.
func TestBankedPortDiscipline(t *testing.T) {
	sched := schedule(t, firSrc, alloc.CB)
	for _, f := range sched.Funcs {
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if op := in.Slots[machine.MU0]; op != nil {
					if op.Bank == machine.BankY {
						t.Fatalf("Y-bank op on MU0: %v", op)
					}
				}
				if op := in.Slots[machine.MU1]; op != nil {
					if op.Bank == machine.BankX {
						t.Fatalf("X-bank op on MU1: %v", op)
					}
				}
			}
		}
	}
}

// TestSingleBankNeverUsesMU1: with all data in bank X, the second
// memory unit must stay idle — the motivating inefficiency.
func TestSingleBankNeverUsesMU1(t *testing.T) {
	sched := schedule(t, firSrc, alloc.SingleBank)
	for _, f := range sched.Funcs {
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if in.Slots[machine.MU1] != nil {
					t.Fatalf("MU1 used under single-bank: %v", in.Slots[machine.MU1])
				}
			}
		}
	}
}

// TestCBPairsLoads: the FIR inner loop must contain an instruction
// issuing loads on both memory units.
func TestCBPairsLoads(t *testing.T) {
	sched := schedule(t, firSrc, alloc.CB)
	paired := false
	for _, f := range sched.Funcs {
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				a, b := in.Slots[machine.MU0], in.Slots[machine.MU1]
				if a != nil && b != nil && a.Kind == ir.OpLoad && b.Kind == ir.OpLoad {
					paired = true
				}
			}
		}
	}
	if !paired {
		t.Fatal("CB schedule never issues two loads in one instruction")
	}
}

// TestScheduleTighterThanBaseline: static code size must shrink when
// partitioning packs more operations per instruction.
func TestScheduleTighterThanBaseline(t *testing.T) {
	base := schedule(t, firSrc, alloc.SingleBank)
	cb := schedule(t, firSrc, alloc.CB)
	if cb.StaticInstrs() >= base.StaticInstrs() {
		t.Fatalf("CB %d instrs, baseline %d — expected tighter code",
			cb.StaticInstrs(), base.StaticInstrs())
	}
}

// TestEveryOpScheduledOnce: each IR op appears in exactly one slot.
func TestEveryOpScheduledOnce(t *testing.T) {
	sched := schedule(t, firSrc, alloc.CB)
	for name, f := range sched.Funcs {
		for _, blk := range f.Blocks {
			count := map[*ir.Op]int{}
			for _, in := range blk.Instrs {
				for _, op := range in.Ops() {
					count[op]++
				}
			}
			for _, op := range blk.Src.Ops {
				if count[op] != 1 {
					t.Fatalf("%s: op %v scheduled %d times", name, op, count[op])
				}
			}
		}
	}
}

const dupSrc = `
float s[32] = {1.0};
float R[8];
void main() {
	int m;
	int i;
	for (m = 0; m < 8; m++) {
		float acc = 0.0;
		int lim = 32 - m;
		for (i = 0; i < lim; i++) {
			acc += s[i] * s[i + m];
		}
		R[m] = acc;
		s[m] = acc;
	}
}
`

// TestAtomicPairsShareInstruction: under InterruptSafe, both halves of
// a duplicated store must land in one instruction (checked by
// Validate, exercised here end to end).
func TestAtomicPairsShareInstruction(t *testing.T) {
	file, err := minic.Parse(dupSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Analyze(file); err != nil {
		t.Fatal(err)
	}
	p, err := lower.Program(file, "t")
	if err != nil {
		t.Fatal(err)
	}
	opt.Run(p, opt.Options{})
	if _, err := regalloc.Run(p); err != nil {
		t.Fatal(err)
	}
	res, err := alloc.Run(p, alloc.Options{Mode: alloc.CBDup, InterruptSafe: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.DupStores == 0 {
		t.Fatal("expected duplicated stores")
	}
	sched, err := compact.Schedule(p, compact.Config{Ports: res.Ports})
	if err != nil {
		t.Fatal(err)
	}
	if err := compact.Validate(sched); err != nil {
		t.Fatal(err)
	}
	// Validate covers the pairing rule; double-check directly.
	for _, f := range sched.Funcs {
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				for _, op := range in.Ops() {
					if op.Atomic && op.DupPair != nil {
						twin := false
						for _, other := range in.Ops() {
							if other == op.DupPair {
								twin = true
							}
						}
						if !twin {
							t.Fatal("atomic pair split across instructions")
						}
					}
				}
			}
		}
	}
}

// TestStaticStats: the schedule statistics are self-consistent, and CB
// partitioning raises both occupancy and the dual-memory-access ratio
// relative to the single-bank baseline.
func TestStaticStats(t *testing.T) {
	base := schedule(t, firSrc, alloc.SingleBank).StaticStats()
	cb := schedule(t, firSrc, alloc.CB).StaticStats()
	for _, s := range []compact.Stats{base, cb} {
		unitTotal := 0
		for _, n := range s.UnitOps {
			unitTotal += n
		}
		if unitTotal != s.Ops {
			t.Fatalf("unit occupancy %d != ops %d", unitTotal, s.Ops)
		}
		if s.DualMemInstrs > s.MemInstrs || s.Instrs < s.MemInstrs {
			t.Fatalf("inconsistent stats %+v", s)
		}
	}
	if base.DualMemInstrs != 0 {
		t.Errorf("single-bank schedule claims %d dual accesses", base.DualMemInstrs)
	}
	if cb.DualMemInstrs == 0 {
		t.Error("CB schedule shows no dual memory accesses")
	}
	if cb.OpsPerInstr() <= base.OpsPerInstr() {
		t.Errorf("CB occupancy %.2f not above baseline %.2f", cb.OpsPerInstr(), base.OpsPerInstr())
	}
	if !strings.Contains(cb.String(), "dual-access") {
		t.Error("stats report misses dual-access line")
	}
}

// TestDualPortedAllowsTwoSameBankAccesses: under the Ideal model, two
// X-bank accesses may share an instruction on the two memory units.
func TestDualPortedAllowsTwoSameBankAccesses(t *testing.T) {
	// Same-array accesses: only dual-porting can pair them.
	sched := schedule(t, dupSrc, alloc.Ideal)
	paired := false
	for _, f := range sched.Funcs {
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				a, b := in.Slots[machine.MU0], in.Slots[machine.MU1]
				if a != nil && b != nil && a.Sym == b.Sym {
					paired = true
				}
			}
		}
	}
	if !paired {
		t.Fatal("dual-ported schedule never pairs same-array accesses")
	}
}
