package cluster_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dualbank/internal/cluster"
	"dualbank/internal/explore/store"
	"dualbank/internal/faultinject"
	"dualbank/internal/serve"
)

// This file soaks a deliberately degraded cluster: node 0 runs under a
// compute-fault injector, node 1's shared-store handle sits on a slow,
// error-injecting filesystem, node 2 is partitioned from node 0 (its
// forwards there fail), and node 1 is killed abruptly halfway through
// the soak. The cluster must keep answering: every received response
// is in the serve layer's exhaustive taxonomy {200, 408, 429, 499,
// 500}, requests cut off by the kill surface only as client-side
// transport errors, the surviving nodes' own accounting stays in the
// same taxonomy, and no goroutine outlives the fleet.

// partitionTransport fails every request addressed to one host —
// a one-way network partition.
type partitionTransport struct {
	blocked string
	inner   http.RoundTripper
}

func (p partitionTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if r.URL.Host == p.blocked {
		return nil, fmt.Errorf("injected partition to %s", p.blocked)
	}
	return p.inner.RoundTrip(r)
}

var allowedClusterCodes = map[int]bool{
	http.StatusOK:                   true,
	http.StatusRequestTimeout:       true,
	http.StatusTooManyRequests:      true,
	serve.StatusClientClosedRequest: true,
	http.StatusInternalServerError:  true,
}

func clusterChaosSeed(t *testing.T) int64 {
	env := os.Getenv("CHAOS_SEED")
	if env == "" {
		return 1
	}
	seed, err := strconv.ParseInt(env, 10, 64)
	if err != nil {
		t.Fatalf("CHAOS_SEED=%q: %v", env, err)
	}
	return seed
}

func TestClusterChaosDegraded(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos soak in short mode")
	}
	seed := clusterChaosSeed(t)
	before := runtime.NumGoroutine()

	dir := t.TempDir()
	computeInj := faultinject.New(faultinject.Profile{
		Seed:         seed,
		ComputeError: 0.05,
		Latency:      0.02, LatencyDur: 5 * time.Millisecond,
		Starve: 0.01, StarveDur: 25 * time.Millisecond,
	})
	storeInj := faultinject.New(faultinject.Profile{
		Seed:    seed + 1,
		IOError: 0.10,
		Latency: 0.20, LatencyDur: 2 * time.Millisecond,
	})

	var addrs []string
	lc, err := cluster.StartLocal(cluster.LocalOptions{
		N: 3, Replication: 2,
		StoreDir: dir,
		Serve:    serve.Config{Workers: 4, AdmitTimeout: 100 * time.Millisecond},
		Configure: func(i int, cfg *cluster.Config) {
			addrs = append(addrs, cfg.Self)
			switch i {
			case 0:
				cfg.Serve.Fault = computeInj
			case 1:
				// The shared store through an injected filesystem: reads
				// stall and error. The L2 is a cache — a faulted read is a
				// miss, never a request failure.
				st, err := store.OpenFS(dir, faultinject.NewFaultFS(faultinject.OSFS{}, storeInj))
				if err == nil {
					cfg.Serve.ResultCache = cluster.NewStoreCache(st)
				}
			case 2:
				cfg.Transport = partitionTransport{
					blocked: addrs[0],
					inner:   http.DefaultTransport,
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	bodies := cluster.LoadBodies()
	const requests = 600
	const killAt = 300

	var (
		mu        sync.Mutex
		byStatus  = map[int]int{}
		transport int
		killed    sync.Once
		wg        sync.WaitGroup
	)
	serveOne := func(i int) {
		// After the kill, steer new requests at the survivors; requests
		// already in flight to node 1 surface as transport errors.
		target := i % 3
		if i >= killAt && target == 1 {
			target = 2
		}
		body := bodies[(i*7)%len(bodies)]
		ctx := context.Background()
		cancel := func() {}
		if i%20 == 19 { // a client that hangs up mid-request
			ctx, cancel = context.WithCancel(context.Background())
			time.AfterFunc(time.Duration(1+i%5)*time.Millisecond, cancel)
		}
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			lc.URL(target)+"/v1/run", strings.NewReader(body))
		if err != nil {
			t.Errorf("building request: %v", err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			transport++
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		byStatus[resp.StatusCode]++
	}

	next := make(chan int)
	for w := 0; w < 24; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				serveOne(i)
			}
		}()
	}
	for i := 0; i < requests; i++ {
		if i == killAt {
			killed.Do(func() { lc.Kill(1) })
		}
		next <- i
	}
	close(next)
	wg.Wait()

	// 1. Every received response is in the exhaustive taxonomy.
	total := 0
	for code, n := range byStatus {
		total += n
		if !allowedClusterCodes[code] {
			t.Errorf("%d responses carried unexpected status %d", n, code)
		}
	}
	if total+transport != requests {
		t.Errorf("accounted for %d responses + %d transport errors of %d requests", total, transport, requests)
	}
	// The kill must actually have bitten: a soak where nothing died
	// proves nothing.
	if byStatus[http.StatusOK] == 0 {
		t.Error("no successes during the degraded soak")
	}

	// 2. The survivors' own accounting stays inside the taxonomy.
	for _, i := range []int{0, 2} {
		snap := lc.Node(i).Server().Metrics().Snapshot()
		for code := range snap.Requests {
			if !allowedClusterCodes[code] {
				t.Errorf("node %d accounted status %d outside the taxonomy", i, code)
			}
		}
	}

	// 3. The partitioned node degraded gracefully: any forward failures
	// it saw fell back to local compute, never to a client error.
	cm := lc.Node(2).Metrics().Snapshot()
	if cm.ForwardErrors > 0 && cm.Local["peer_down"]+cm.Local["fallback"] == 0 {
		t.Errorf("node 2 saw %d forward errors but never served a fallback", cm.ForwardErrors)
	}

	writeClusterMetricsArtifact(t, lc, []int{0, 2}, byStatus, transport, seed)

	// 4. Teardown leaks nothing. Idle keep-alive connections are the
	// client's goroutines, not the fleet's — drop them first.
	lc.Close()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// writeClusterMetricsArtifact dumps each surviving node's /metrics
// text plus the client-side histogram to the path in CLUSTER_METRICS
// (the CI artifact); a no-op when unset.
func writeClusterMetricsArtifact(t *testing.T, lc *cluster.LocalCluster, nodes []int, byStatus map[int]int, transport int, seed int64) {
	path := os.Getenv("CLUSTER_METRICS")
	if path == "" {
		return
	}
	out := struct {
		Seed            int64             `json:"seed"`
		Statuses        map[string]int    `json:"statuses"`
		TransportErrors int               `json:"transport_errors"`
		Nodes           map[string]string `json:"node_metrics"`
	}{Seed: seed, Statuses: map[string]int{}, TransportErrors: transport, Nodes: map[string]string{}}
	for code, n := range byStatus {
		out.Statuses[strconv.Itoa(code)] = n
	}
	for _, i := range nodes {
		resp, err := http.Get(lc.URL(i) + "/metrics")
		if err != nil {
			t.Errorf("scraping node %d: %v", i, err)
			continue
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		out.Nodes[lc.Addr(i)] = string(data)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatalf("writing %s: %v", path, err)
	}
	t.Logf("cluster metrics artifact written to %s", path)
}
