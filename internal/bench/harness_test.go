package bench

import (
	"reflect"
	"testing"

	"dualbank/internal/alloc"
)

// TestHarnessParallelDeterminism runs the Figure 7 and Figure 8
// experiments serially and at eight workers and requires identical
// rows — gains, cycle counts, duplicated-symbol lists — and identical
// rendered text. Run under -race this also proves the pool and the
// single-flight cache are data-race-free.
func TestHarnessParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in short mode")
	}
	serial := NewHarness(1)
	parallel := NewHarness(8)

	type figure struct {
		name  string
		run   func(*Harness) ([]FigureRow, error)
		modes []alloc.Mode
		title string
	}
	figures := []figure{
		{"figure7", (*Harness).Figure7, Figure7Modes, "Figure 7"},
		{"figure8", (*Harness).Figure8, Figure8Modes, "Figure 8"},
	}
	for _, fig := range figures {
		fig := fig
		t.Run(fig.name, func(t *testing.T) {
			want, err := fig.run(serial)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			got, err := fig.run(parallel)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("rows diverge between -parallel 1 and -parallel 8:\nserial:   %+v\nparallel: %+v", want, got)
			}
			ws := RenderFigure(fig.title, want, fig.modes)
			gs := RenderFigure(fig.title, got, fig.modes)
			if ws != gs {
				t.Errorf("rendered text diverges:\nserial:\n%s\nparallel:\n%s", ws, gs)
			}
		})
	}
}

// TestHarnessCacheMemoizes checks the single-flight cache: repeating
// an experiment on the same harness recomputes nothing, and the
// results stay identical.
func TestHarnessCacheMemoizes(t *testing.T) {
	h := NewHarness(4)
	first, err := h.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	// 12 kernels × (baseline + CB + Ideal), all distinct.
	if want := int64(36); st.Misses != want {
		t.Errorf("after first Figure7: %d misses, want %d", st.Misses, want)
	}
	second, err := h.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	st2 := h.Stats()
	if st2.Misses != st.Misses {
		t.Errorf("second Figure7 recomputed: misses %d -> %d", st.Misses, st2.Misses)
	}
	if st2.Hits-st.Hits != 36 {
		t.Errorf("second Figure7: %d hits, want 36", st2.Hits-st.Hits)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached rows differ from computed rows")
	}
}

// TestHarnessSharesBaselineAcrossExperiments checks the cross-figure
// deduplication the cache exists for: after Figure 7, the kernel
// baselines and the CB and Ideal arms of the organisation study are
// all served from cache.
func TestHarnessSharesBaselineAcrossExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in short mode")
	}
	h := NewHarness(2)
	if _, err := h.Figure7(); err != nil {
		t.Fatal(err)
	}
	before := h.Stats()
	if _, err := h.Organizations(); err != nil {
		t.Fatal(err)
	}
	after := h.Stats()
	// Kernel rows of the organisation study share baseline, CB and
	// Ideal with Figure 7: 12 kernels × 3 cached arms.
	if hits := after.Hits - before.Hits; hits < 36 {
		t.Errorf("organisation study hit cache %d times, want >= 36", hits)
	}
}

// TestRunFigureSerialEquivalence pins the package-level serial
// entry points to the harness path.
func TestRunFigureSerialEquivalence(t *testing.T) {
	progs := []Program{FIR(8, 4), IIR(1, 1)}
	modes := []alloc.Mode{alloc.CB, alloc.Ideal}
	direct, err := RunFigure(progs, modes)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := NewHarness(3).RunFigure(progs, modes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, pooled) {
		t.Errorf("serial and pooled rows diverge:\n%+v\n%+v", direct, pooled)
	}
}
