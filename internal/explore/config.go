package explore

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"dualbank/internal/alloc"
	"dualbank/internal/bench"
	"dualbank/internal/core"
	"dualbank/internal/machine"
)

// Config is one point of the explorer's design space: the knobs the
// back-end exposes per benchmark. The zero value is the paper's fixed
// CB mode (greedy partitioner, static weights, no duplication).
type Config struct {
	// Single selects the single-bank baseline; every other field is
	// ignored (and must be zero for the key to be canonical).
	Single bool `json:"single,omitempty"`
	// Part is the graph-partitioning algorithm.
	Part core.Method `json:"-"`
	// Profiled uses profile-derived interference-edge weights.
	Profiled bool `json:"profiled,omitempty"`
	// FMPasses bounds FM refinement: 0 = library default, negative =
	// greedy-equivalent phase 1 only. Only meaningful when Part is
	// core.MethodFM.
	FMPasses int `json:"fm_passes,omitempty"`
	// DupAll duplicates every array the interference analysis marks —
	// the paper's Dup policy.
	DupAll bool `json:"dup_all,omitempty"`
	// Dup, when non-empty, is an explicit duplication subset (sorted).
	// Mutually exclusive with DupAll.
	Dup []string `json:"dup,omitempty"`
	// Banks and Ports are the hardware axis: bank count and ports per
	// bank. Zero values are the classic 2-bank, single-ported machine
	// (and 2/1 canonicalize to zero), so classic design points render
	// the same keys they always did.
	Banks int `json:"banks,omitempty"`
	Ports int `json:"ports,omitempty"`
}

// Canon returns the canonical form of c: irrelevant knobs zeroed and
// the duplication set sorted and deduplicated, so equal design points
// always render equal keys.
func (c Config) Canon() Config {
	if c.Banks == 2 {
		c.Banks = 0
	}
	if c.Ports == 1 {
		c.Ports = 0
	}
	if c.Single {
		return Config{Single: true, Banks: c.Banks, Ports: c.Ports}
	}
	if c.Part != core.MethodFM {
		c.FMPasses = 0
	}
	if c.FMPasses < 0 {
		c.FMPasses = -1
	}
	if c.DupAll {
		c.Dup = nil
	} else if len(c.Dup) > 0 {
		d := append([]string(nil), c.Dup...)
		sort.Strings(d)
		c.Dup = slices.Compact(d)
	} else {
		c.Dup = nil
	}
	return c
}

// Key renders the canonical, human-readable identity of the
// configuration — the string the frontier, the checkpoint store, and
// the wire schema all use.
func (c Config) Key() string {
	c = c.Canon()
	var sb strings.Builder
	if c.Single {
		sb.WriteString("single")
	} else {
		sb.WriteString("part=")
		sb.WriteString(c.Part.String())
		if c.FMPasses != 0 {
			fmt.Fprintf(&sb, ";fmp=%d", c.FMPasses)
		}
		if c.Profiled {
			sb.WriteString(";prof")
		}
		switch {
		case c.DupAll:
			sb.WriteString(";dup=all")
		case len(c.Dup) > 0:
			sb.WriteString(";dup=")
			sb.WriteString(strings.Join(c.Dup, ","))
		}
	}
	if c.Banks != 0 || c.Ports != 0 {
		// The hardware term appears only off the classic machine, so
		// every historical key is unchanged.
		fmt.Fprintf(&sb, ";hw=%s", c.Spec().Norm())
	}
	return sb.String()
}

// Spec returns the machine geometry of the design point (the zero
// value for the classic machine).
func (c Config) Spec() machine.BankSpec {
	return machine.BankSpec{Banks: c.Banks, PortsPerBank: c.Ports}
}

// ParseConfig inverts Key. It accepts exactly the strings Key renders
// (plus field reordering), so checkpoint records and wire requests can
// round-trip configurations.
func ParseConfig(s string) (Config, error) {
	if s == "single" {
		return Config{Single: true}, nil
	}
	var c Config
	sawPart := false
	for _, field := range strings.Split(s, ";") {
		k, v, _ := strings.Cut(field, "=")
		switch k {
		case "single":
			c.Single = true
		case "part":
			m, err := core.ParseMethod(v)
			if err != nil {
				return Config{}, fmt.Errorf("explore: config %q: %w", s, err)
			}
			c.Part, sawPart = m, true
		case "fmp":
			if _, err := fmt.Sscanf(v, "%d", &c.FMPasses); err != nil {
				return Config{}, fmt.Errorf("explore: config %q: bad fmp %q", s, v)
			}
		case "prof":
			c.Profiled = true
		case "dup":
			if v == "all" {
				c.DupAll = true
			} else {
				c.Dup = strings.Split(v, ",")
			}
		case "hw":
			if _, err := fmt.Sscanf(v, "%dx%d", &c.Banks, &c.Ports); err != nil {
				return Config{}, fmt.Errorf("explore: config %q: bad hw %q", s, v)
			}
			if err := c.Spec().Validate(); err != nil {
				return Config{}, fmt.Errorf("explore: config %q: %w", s, err)
			}
		default:
			return Config{}, fmt.Errorf("explore: config %q: unknown field %q", s, field)
		}
	}
	if c.Single {
		return Config{Single: true, Banks: c.Banks, Ports: c.Ports}.Canon(), nil
	}
	if !sawPart {
		return Config{}, fmt.Errorf("explore: config %q: missing part=", s)
	}
	return c.Canon(), nil
}

// Mode maps the configuration onto the allocation mode the pipeline
// runs: the baseline, plain CB partitioning, or CB plus duplication.
func (c Config) Mode() alloc.Mode {
	switch {
	case c.Single:
		return alloc.SingleBank
	case c.DupAll || len(c.Dup) > 0:
		return alloc.CBDup
	default:
		return alloc.CB
	}
}

// RunOptions maps the configuration onto the harness's measurement
// options.
func (c Config) RunOptions() bench.RunOptions {
	c = c.Canon()
	ro := bench.RunOptions{
		Partitioner: c.Part, FMPasses: c.FMPasses, Profiled: c.Profiled,
		Banks: c.Banks, Ports: c.Ports,
	}
	if !c.Single && !c.DupAll && c.Dup != nil {
		ro.DupOnly = c.Dup
	}
	return ro
}

// FixedCB is the paper's fixed CB design point — the reference the
// acceptance criterion measures domination against.
var FixedCB = Config{Part: core.MethodGreedy}

// enumerate produces the deterministic candidate order for one
// benchmark. marked is the probe's duplication-candidate set (the
// arrays the paper's analysis would replicate), arrays every
// partitioned array, both sorted. The order front-loads the paper's
// own design points and the cheap grid so small budgets still cover
// the headline comparisons, then sweeps FM pass bounds, then
// duplication subsets (exactly when len(arrays) <= exactK; the
// adaptive phase in explore.go takes over beyond that).
func enumerate(marked, arrays []string, exactK int) []Config {
	var out []Config
	seen := make(map[string]bool)
	add := func(c Config) {
		c = c.Canon()
		// An explicit subset equal to the full marked set is the DupAll
		// point; keep only the canonical spelling.
		if !c.DupAll && len(c.Dup) > 0 && slices.Equal(c.Dup, marked) {
			c.DupAll, c.Dup = true, nil
		}
		if k := c.Key(); !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}

	// The paper's fixed arms first: baseline, CB, Pr, Dup.
	add(Config{Single: true})
	add(Config{Part: core.MethodGreedy})
	add(Config{Part: core.MethodGreedy, Profiled: true})
	add(Config{Part: core.MethodGreedy, DupAll: true})

	// The base grid: every partitioner × weighting × coarse
	// duplication policy.
	parts := []core.Method{core.MethodGreedy, core.MethodFM, core.MethodKL, core.MethodAnneal}
	for _, part := range parts {
		for _, prof := range []bool{false, true} {
			for _, dupAll := range []bool{false, true} {
				add(Config{Part: part, Profiled: prof, DupAll: dupAll})
			}
		}
	}

	// FM refinement-pass sweep.
	for _, passes := range []int{-1, 1, 2} {
		for _, prof := range []bool{false, true} {
			for _, dupAll := range []bool{false, true} {
				add(Config{Part: core.MethodFM, FMPasses: passes, Profiled: prof, DupAll: dupAll})
			}
		}
	}

	// Exact duplication-subset enumeration under three carrier
	// configurations, cheapest carrier first. Masks count up, so the
	// order (and therefore the frontier under a budget) is fixed.
	if n := len(arrays); n > 0 && n <= exactK {
		carriers := []Config{
			{Part: core.MethodGreedy},
			{Part: core.MethodFM},
			{Part: core.MethodGreedy, Profiled: true},
		}
		for _, carrier := range carriers {
			for mask := 1; mask < 1<<n; mask++ {
				c := carrier
				c.Dup = subset(arrays, mask)
				add(c)
			}
		}
	}
	return out
}

// subset materializes the bitmask-selected subset of sorted names.
func subset(names []string, mask int) []string {
	var out []string
	for i, name := range names {
		if mask&(1<<i) != 0 {
			out = append(out, name)
		}
	}
	return out
}
