package sim_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"dualbank/internal/alloc"
	"dualbank/internal/machine"
	"dualbank/internal/sim"
)

// TestCompiledMatchesMachine cross-checks the compiled engine against
// the interpretive reference on the local kernel under every port
// model: counters and the full memory image, including the invariant
// that the reference never touches a word beyond the compiled arena's
// high-water mark. The full-suite differential test lives in
// internal/bench.
func TestCompiledMatchesMachine(t *testing.T) {
	for _, mode := range []alloc.Mode{
		alloc.SingleBank, alloc.CB, alloc.CBDup, alloc.FullDup,
		alloc.Ideal, alloc.LowOrder,
	} {
		sched := compileSched(t, firSource, mode)
		ref := sim.NewMachine(sched)
		if err := ref.Run(); err != nil {
			t.Fatalf("%v: reference: %v", mode, err)
		}
		cp, err := sim.Compile(sched)
		if err != nil {
			t.Fatalf("%v: compile: %v", mode, err)
		}
		cm := cp.NewMachine()
		if err := cm.Run(); err != nil {
			t.Fatalf("%v: compiled: %v", mode, err)
		}
		if cm.Cycles != ref.Cycles || cm.OpsExecuted != ref.OpsExecuted ||
			cm.MemAccesses != ref.MemAccesses || cm.DualMemCycles != ref.DualMemCycles ||
			cm.BankConflicts != ref.BankConflicts {
			t.Errorf("%v: counters diverge: compiled {cyc %d ops %d mem %d dual %d conf %d} vs reference {cyc %d ops %d mem %d dual %d conf %d}",
				mode,
				cm.Cycles, cm.OpsExecuted, cm.MemAccesses, cm.DualMemCycles, cm.BankConflicts,
				ref.Cycles, ref.OpsExecuted, ref.MemAccesses, ref.DualMemCycles, ref.BankConflicts)
		}
		n := cp.MemWords()
		for i := 0; i < n; i++ {
			if cm.X[i] != ref.X[i] || cm.Y[i] != ref.Y[i] {
				t.Fatalf("%v: memory image diverges at word %#x", mode, i)
			}
		}
		for i := n; i < machine.BankWords; i++ {
			if ref.X[i] != 0 || ref.Y[i] != 0 {
				t.Fatalf("%v: reference touched word %#x beyond the compiled arena (%d words)", mode, i, n)
			}
		}
	}
}

// TestCompiledZeroAllocSteadyState enforces the compiled engine's
// allocation contract: once lowered, Reset+Run allocates nothing.
func TestCompiledZeroAllocSteadyState(t *testing.T) {
	cp, err := sim.Compile(compileSched(t, firSource, alloc.CBDup))
	if err != nil {
		t.Fatal(err)
	}
	cm := cp.NewMachine()
	if err := cm.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		cm.Reset()
		if err := cm.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Reset+Run allocates %.1f objects/run, want 0", allocs)
	}
}

// TestBatchAcrossVariants runs one Batch over several allocation
// variants of the same kernel, checking each run's counters against a
// fresh machine: the arena recycling must not leak state — memory
// images, counters, or loop stacks — between variants.
func TestBatchAcrossVariants(t *testing.T) {
	var b sim.Batch
	for round := 0; round < 2; round++ {
		for _, mode := range []alloc.Mode{
			alloc.CBDup, alloc.SingleBank, alloc.LowOrder, alloc.Ideal,
		} {
			sched := compileSched(t, firSource, mode)
			cp, err := sim.Compile(sched)
			if err != nil {
				t.Fatalf("%v: compile: %v", mode, err)
			}
			want := cp.NewMachine()
			if err := want.Run(); err != nil {
				t.Fatalf("%v: fresh: %v", mode, err)
			}
			got, err := b.Run(context.Background(), cp)
			if err != nil {
				t.Fatalf("%v: batch: %v", mode, err)
			}
			if got.Cycles != want.Cycles || got.MemAccesses != want.MemAccesses ||
				got.BankConflicts != want.BankConflicts {
				t.Errorf("%v round %d: batch run diverges from fresh machine: {cyc %d mem %d conf %d} vs {cyc %d mem %d conf %d}",
					mode, round,
					got.Cycles, got.MemAccesses, got.BankConflicts,
					want.Cycles, want.MemAccesses, want.BankConflicts)
			}
			for i := 0; i < cp.MemWords(); i++ {
				if got.X[i] != want.X[i] || got.Y[i] != want.Y[i] {
					t.Fatalf("%v round %d: batch memory image diverges at word %#x", mode, round, i)
				}
			}
		}
	}
}

// TestBatchSteadyStateAllocs checks the amortization contract: after a
// warm-up run, re-running a compiled program through a Batch allocates
// nothing.
func TestBatchSteadyStateAllocs(t *testing.T) {
	cp, err := sim.Compile(compileSched(t, firSource, alloc.CBDup))
	if err != nil {
		t.Fatal(err)
	}
	var b sim.Batch
	if _, err := b.Run(context.Background(), cp); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := b.Run(context.Background(), cp); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Batch.Run allocates %.1f objects/run, want 0", allocs)
	}
}

// slowSource runs ~3.6e9 cycles — far longer than any test timeout —
// so a prompt return can only mean the cancellation path worked.
const slowSource = `
int out;

void main() {
	int i;
	int j;
	int acc = 0;
	for (i = 0; i < 60000; i++) {
		for (j = 0; j < 60000; j++) {
			acc = acc + 1;
		}
	}
	out = acc;
}
`

// TestCompiledCancelMidRun cancels a compiled-engine run mid-flight
// and requires a prompt ctx.Err()-wrapping error.
func TestCompiledCancelMidRun(t *testing.T) {
	cp, err := sim.Compile(compileSched(t, slowSource, alloc.CBDup))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	runErr := cp.NewMachine().RunContext(ctx)
	if runErr == nil {
		t.Fatal("cancelled run returned nil")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", runErr)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", d)
	}
}

// TestBatchCancelDoesNotPoisonSiblings cancels one variant mid-run and
// then evaluates further variants through the same Batch: the recycled
// machine must come back clean, with results identical to a fresh
// machine's.
func TestBatchCancelDoesNotPoisonSiblings(t *testing.T) {
	slow, err := sim.Compile(compileSched(t, slowSource, alloc.CBDup))
	if err != nil {
		t.Fatal(err)
	}
	fir, err := sim.Compile(compileSched(t, firSource, alloc.CBDup))
	if err != nil {
		t.Fatal(err)
	}
	want := fir.NewMachine()
	if err := want.Run(); err != nil {
		t.Fatal(err)
	}

	var b sim.Batch
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if _, err := b.Run(ctx, slow); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled variant returned %v, want context.Canceled", err)
	}

	for round := 0; round < 3; round++ {
		got, err := b.Run(context.Background(), fir)
		if err != nil {
			t.Fatalf("sibling after cancel: %v", err)
		}
		if got.Cycles != want.Cycles || got.MemAccesses != want.MemAccesses {
			t.Errorf("sibling after cancel diverges: {cyc %d mem %d} vs {cyc %d mem %d}",
				got.Cycles, got.MemAccesses, want.Cycles, want.MemAccesses)
		}
		for i := 0; i < fir.MemWords(); i++ {
			if got.X[i] != want.X[i] || got.Y[i] != want.Y[i] {
				t.Fatalf("sibling after cancel: memory diverges at word %#x", i)
			}
		}
	}

	// Cancellation must not leave goroutines behind (the poll is a
	// channel select, not a watcher goroutine — this pins that).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+1 {
		t.Errorf("goroutines leaked across cancelled batch run: %d before, %d after", before, n)
	}
}

// TestCompiledCycleLimit pins the compiled engine's cycle-limit
// behaviour to the reference's: same verdict at the same limits, even
// though the compiled engine checks per block rather than per cycle.
func TestCompiledCycleLimit(t *testing.T) {
	sched := compileSched(t, firSource, alloc.CBDup)
	ref := sim.NewMachine(sched)
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	cp, err := sim.Compile(sched)
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int64{ref.Cycles, ref.Cycles - 1, ref.Cycles / 2, 1} {
		refM := sim.NewMachine(sched)
		refM.MaxCycles = limit
		refErr := refM.Run()
		cm := cp.NewMachine()
		cm.MaxCycles = limit
		cmErr := cm.Run()
		if (refErr == nil) != (cmErr == nil) {
			t.Errorf("limit %d: reference err %v, compiled err %v", limit, refErr, cmErr)
		}
	}
}

// BenchmarkCompiledMachine measures the compiled engine's steady-state
// loop, comparable against BenchmarkMachine and BenchmarkFastMachine.
func BenchmarkCompiledMachine(b *testing.B) {
	cp, err := sim.Compile(compileSched(b, firSource, alloc.CBDup))
	if err != nil {
		b.Fatal(err)
	}
	m := cp.NewMachine()
	if err := m.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
