// Explorer shows the compiler's data-partitioning analysis on user
// code: it compiles a MiniC program (a file argument, or a built-in
// sample reproducing Figure 4 of the paper), prints the interference
// graph with its edge weights, the greedy partition walk (the Figure 5
// trace), and the resulting bank assignment of every symbol. It is a
// thin wrapper over the exploration engine's analysis view
// (internal/explore.Analyze).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dualbank/internal/explore"
)

// sample is the Figure 4 example program: every pairing of A, B, C, D
// may be accessed simultaneously; A and D also pair inside a loop, so
// edge (A, D) carries the higher weight.
const sample = `
float A[8] = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
float B[8] = {2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0};
float C[8];
float D[8];

void main() {
	int i = 1;
	int j = 2;
	int k = 3;
	D[i] = A[j] + B[k];
	B[i] = B[j] + D[k];
	C[i] = B[j] + C[k];
	C[i] = A[j] + C[k];
	for (i = 0; i < 5; i++) {
		C[i] = A[i] + D[i];
	}
}
`

func main() {
	dot := flag.Bool("dot", false, "emit the interference graph in Graphviz format and exit")
	flag.Parse()
	src, name := sample, "figure4"
	if flag.NArg() > 0 {
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		src, name = string(b), flag.Arg(0)
	} else {
		fmt.Println("(no file given: analysing the paper's Figure 4 example)")
	}

	a, err := explore.Analyze(src, name)
	if err != nil {
		log.Fatal(err)
	}
	if *dot {
		fmt.Print(a.Dot())
		return
	}
	a.WriteText(os.Stdout)
}
