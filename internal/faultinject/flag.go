package faultinject

import (
	"fmt"
	"os"
)

// EnvGate is the environment variable that must be set to "1" before a
// command-line fault profile is honored. The gate keeps fault
// injection a deliberate, test-only act: a -fault-profile flag left in
// a production unit file is an error, not a silent chaos monkey.
const EnvGate = "DSP_FAULT_ENABLE"

// FromFlag turns a -fault-profile flag value into an Injector,
// enforcing the EnvGate. An empty or all-zero profile yields (nil,
// nil) — no injection, no gate required.
func FromFlag(profile string) (*Injector, error) {
	if profile == "" {
		return nil, nil
	}
	if os.Getenv(EnvGate) != "1" {
		return nil, fmt.Errorf("-fault-profile requires %s=1 in the environment", EnvGate)
	}
	p, err := ParseProfile(profile)
	if err != nil {
		return nil, err
	}
	if p.Zero() {
		return nil, nil
	}
	return New(p), nil
}
