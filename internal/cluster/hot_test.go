package cluster

import (
	"fmt"
	"testing"
	"time"
)

// TestHotPromotion: a key clearing the threshold mid-window goes hot
// immediately; one below it stays cold.
func TestHotPromotion(t *testing.T) {
	h := newHotTracker(4, 3, time.Hour)
	if h.Observe("a") || h.Observe("a") {
		t.Fatal("key hot below threshold")
	}
	if !h.Observe("a") {
		t.Fatal("key cold at threshold")
	}
	if !h.Observe("a") {
		t.Fatal("hot key went cold within the window")
	}
	if h.Observe("b") {
		t.Fatal("unrelated key hot")
	}
	if h.HotCount() != 1 {
		t.Fatalf("hot count %d, want 1", h.HotCount())
	}
}

// TestHotTopK: mid-window promotion stops at K; rotation keeps only
// the K hottest, deterministically.
func TestHotTopK(t *testing.T) {
	h := newHotTracker(2, 2, time.Hour)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		for j := 0; j <= i+2; j++ {
			h.Observe(key)
		}
	}
	if h.HotCount() != 2 {
		t.Fatalf("hot count %d, want K=2", h.HotCount())
	}
	// Force a rotation: the top-2 by count are k4 (7 obs) and k3 (6).
	h.mu.Lock()
	h.rotated = time.Now().Add(-2 * time.Hour)
	h.mu.Unlock()
	h.Observe("k0") // triggers rotate, then counts k0 in the new window
	if !h.hotNow("k4") || !h.hotNow("k3") {
		t.Errorf("rotation dropped the hottest keys; hot set lacks k4/k3")
	}
	if h.hotNow("k0") {
		t.Errorf("k0 stayed hot through rotation with only rank 5")
	}
}

// TestHotWindowReset: a key hot in one window goes cold after a
// rotation in which it drew no traffic.
func TestHotWindowReset(t *testing.T) {
	h := newHotTracker(4, 2, time.Hour)
	h.Observe("a")
	h.Observe("a")
	if !h.Observe("a") {
		t.Fatal("not hot after clearing threshold")
	}
	// Two idle rotations: the first still carries "a" (it cleared the
	// threshold in the closing window), the second drops it.
	for i := 0; i < 2; i++ {
		h.mu.Lock()
		h.rotated = time.Now().Add(-2 * time.Hour)
		h.mu.Unlock()
		h.Observe("b")
	}
	if h.hotNow("a") {
		t.Error("key stayed hot through an idle window")
	}
}

// hotNow reads hotness without counting an observation.
func (t *hotTracker) hotNow(key string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hot[key]
}
