package ir

import (
	"fmt"
	"strings"
)

// String renders the function as readable text, one op per line.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", p.Elem, p.Name)
	}
	fmt.Fprintf(&b, ") %s {\n", f.RetType)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:", blk)
		if blk.LoopDepth > 0 {
			fmt.Fprintf(&b, "  ; depth=%d", blk.LoopDepth)
		}
		if len(blk.Preds) > 0 {
			fmt.Fprintf(&b, "  ; preds=%v", blk.Preds)
		}
		b.WriteByte('\n')
		for _, op := range blk.Ops {
			fmt.Fprintf(&b, "\t%s", op)
			switch op.Kind {
			case OpBr, OpDo:
				fmt.Fprintf(&b, " %s", blk.Succs[0])
			case OpCondBr, OpEndDo:
				fmt.Fprintf(&b, " %s, %s", blk.Succs[0], blk.Succs[1])
			}
			b.WriteByte('\n')
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders the whole program.
func (p *Program) String() string {
	var b strings.Builder
	for _, g := range p.Globals {
		fmt.Fprintf(&b, "%s %s", g.Elem, g.Name)
		for _, d := range g.Dims {
			fmt.Fprintf(&b, "[%d]", d)
		}
		fmt.Fprintf(&b, "  ; size=%d bank=%s addr=%d\n", g.Size, g.Bank, g.Addr)
	}
	for _, f := range p.Funcs {
		b.WriteString(f.String())
	}
	return b.String()
}
