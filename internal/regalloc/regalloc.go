// Package regalloc maps virtual registers onto the model machine's two
// 32-entry scalar register files (integer and floating-point) with a
// Chaitin/Briggs-style graph-colouring allocator. Because the target
// places no bank-related restrictions on register usage, register
// allocation and data partitioning are orthogonal problems (§2 of the
// paper); the allocator therefore runs before the data-allocation pass
// and simply contributes its spill and callee-save slots as ordinary
// partitionable stack data.
//
// Calling convention (see internal/lower): arguments arrive in the
// callee's static parameter slots, scalar results return in r1/f1, and
// every function saves and restores each physical register it writes
// (callee-save-everything). Colour choice is round-robin biased so
// that unrelated values land in different registers, minimising the
// false anti-dependences that would otherwise constrain the
// operation-compaction pass.
package regalloc

import (
	"fmt"
	"math/bits"
	"sort"

	"dualbank/internal/ir"
)

// Reserved registers per file: entry 1 of each file carries scalar
// return values and is never allocated.
const (
	numAllocatable = 31 // entries 2..32 of each file
	maxSpillRounds = 64
)

// Stats reports what the allocator did to one function.
type Stats struct {
	Spilled   int // virtual registers spilled to stack slots
	SaveSlots int // callee-save slots created
	IntUsed   int // integer registers used
	FloatUsed int // float registers used
}

// Run allocates registers for every function in the program and
// rewrites it to physical form.
func Run(p *ir.Program) (map[string]Stats, error) {
	stats := make(map[string]Stats, len(p.Funcs))
	for _, f := range p.Funcs {
		st, err := allocFunc(f)
		if err != nil {
			return nil, fmt.Errorf("regalloc %s: %w", f.Name, err)
		}
		stats[f.Name] = st
	}
	if err := ir.Verify(p); err != nil {
		return nil, fmt.Errorf("regalloc: %w", err)
	}
	return stats, nil
}

func allocFunc(f *ir.Func) (Stats, error) {
	var st Stats
	var colors []int
	// Registers created by spill rewriting live for a single operation;
	// re-spilling them cannot reduce pressure and would livelock, so
	// the colourer treats them as unspillable while any original
	// register remains a candidate.
	firstTemp := ir.Reg(f.NumRegs())
	for round := 0; ; round++ {
		if round > maxSpillRounds {
			return st, fmt.Errorf("did not converge after %d spill rounds", maxSpillRounds)
		}
		ig := buildInterference(f)
		var spills []ir.Reg
		colors, spills = color(f, ig, firstTemp)
		if len(spills) == 0 {
			break
		}
		st.Spilled += len(spills)
		spill(f, spills, &st)
	}
	rewrite(f, colors, &st)
	return st, nil
}

// --- Liveness ---

type bitset []uint64

func newBitset(n int) bitset    { return make(bitset, (n+63)/64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }
func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (uint(i) % 64) }

func (b bitset) orInto(o bitset) bool {
	changed := false
	for i, v := range o {
		nv := b[i] | v
		if nv != b[i] {
			b[i] = nv
			changed = true
		}
	}
	return changed
}

func (b bitset) copyFrom(o bitset) {
	copy(b, o)
}

// liveness computes live-out sets per block.
func liveness(f *ir.Func) (liveOut []bitset) {
	n := f.NumRegs()
	nb := len(f.Blocks)
	use := make([]bitset, nb) // upward-exposed uses
	def := make([]bitset, nb) // defs
	liveIn := make([]bitset, nb)
	liveOut = make([]bitset, nb)
	var buf []ir.Reg
	for i, b := range f.Blocks {
		use[i] = newBitset(n)
		def[i] = newBitset(n)
		liveIn[i] = newBitset(n)
		liveOut[i] = newBitset(n)
		for _, op := range b.Ops {
			buf = op.Uses(buf[:0])
			for _, u := range buf {
				if !def[i].get(int(u)) {
					use[i].set(int(u))
				}
			}
			if op.Dst != ir.NoReg {
				def[i].set(int(op.Dst))
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for i := nb - 1; i >= 0; i-- {
			b := f.Blocks[i]
			for _, s := range b.Succs {
				if liveOut[i].orInto(liveIn[s.ID]) {
					changed = true
				}
			}
			// liveIn = use | (liveOut &^ def)
			for w := range liveIn[i] {
				nv := use[i][w] | (liveOut[i][w] &^ def[i][w])
				if nv != liveIn[i][w] {
					liveIn[i][w] = nv
					changed = true
				}
			}
		}
	}
	return liveOut
}

// --- Interference graph ---

type igraph struct {
	n     int
	adj   [][]ir.Reg // adjacency lists
	edges map[[2]ir.Reg]bool
	cost  []float64 // spill cost per register
}

func (g *igraph) addEdge(a, b ir.Reg) {
	if a == b || a == ir.NoReg || b == ir.NoReg {
		return
	}
	if a > b {
		a, b = b, a
	}
	k := [2]ir.Reg{a, b}
	if g.edges[k] {
		return
	}
	g.edges[k] = true
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
}

func buildInterference(f *ir.Func) *igraph {
	n := f.NumRegs()
	g := &igraph{
		n:     n,
		adj:   make([][]ir.Reg, n),
		edges: make(map[[2]ir.Reg]bool),
		cost:  make([]float64, n),
	}
	liveOut := liveness(f)
	live := newBitset(n)
	var buf []ir.Reg
	for bi, b := range f.Blocks {
		live.copyFrom(liveOut[bi])
		depthW := 1.0
		for d := 0; d < b.LoopDepth && d < 6; d++ {
			depthW *= 10
		}
		for i := len(b.Ops) - 1; i >= 0; i-- {
			op := b.Ops[i]
			d := op.Dst
			if d != ir.NoReg {
				g.cost[d] += depthW
				// The def interferes with everything live after the op.
				// Registers of different files never interfere. For a
				// move, skip the source: giving both the same colour is
				// harmless and enables coalescing-like assignments.
				for w, word := range live {
					for word != 0 {
						bit := bits.TrailingZeros64(word)
						word &^= 1 << uint(bit)
						r := ir.Reg(w*64 + bit)
						if r == d {
							continue
						}
						if f.RegType(r) != f.RegType(d) {
							continue
						}
						if op.Kind == ir.OpMov && r == op.Args[0] {
							continue
						}
						g.addEdge(d, r)
					}
				}
				live.clear(int(d))
			}
			buf = op.Uses(buf[:0])
			for _, u := range buf {
				g.cost[u] += depthW
				live.set(int(u))
			}
		}
	}
	return g
}

// --- Colouring ---

// color assigns each virtual register a colour in [0, numAllocatable)
// within its register file. It returns the colouring and the registers
// that must be spilled (empty on success). Registers at or above
// firstTemp are spill-rewrite temporaries and are only spilled as a
// last resort.
func color(f *ir.Func, g *igraph, firstTemp ir.Reg) ([]int, []ir.Reg) {
	n := g.n
	degree := make([]int, n)
	removed := make([]bool, n)
	exists := make([]bool, n)
	for r := 1; r < n; r++ {
		degree[r] = len(g.adj[r])
		exists[r] = true
	}

	// Simplify: repeatedly remove low-degree nodes; when stuck, pick a
	// cheap spill candidate optimistically (Briggs).
	var stack []ir.Reg
	left := n - 1
	for left > 0 {
		picked := ir.NoReg
		for r := 1; r < n; r++ {
			if !removed[r] && exists[r] && degree[r] < numAllocatable {
				picked = ir.Reg(r)
				break
			}
		}
		if picked == ir.NoReg {
			// Choose the node with minimal cost/degree as the potential
			// spill, pushed optimistically; spill temporaries are
			// penalised so an original register is always preferred.
			best, bestScore := ir.NoReg, 0.0
			for r := 1; r < n; r++ {
				if removed[r] || !exists[r] {
					continue
				}
				score := g.cost[r] / float64(degree[r]+1)
				if ir.Reg(r) >= firstTemp {
					score += 1e12
				}
				if best == ir.NoReg || score < bestScore {
					best, bestScore = ir.Reg(r), score
				}
			}
			picked = best
		}
		removed[picked] = true
		left--
		stack = append(stack, picked)
		for _, m := range g.adj[picked] {
			degree[m]--
		}
	}

	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	var spills []ir.Reg
	next := 0 // round-robin bias
	for i := len(stack) - 1; i >= 0; i-- {
		r := stack[i]
		var used [numAllocatable]bool
		for _, m := range g.adj[r] {
			if colors[m] >= 0 {
				used[colors[m]] = true
			}
		}
		assigned := -1
		for k := 0; k < numAllocatable; k++ {
			c := (next + k) % numAllocatable
			if !used[c] {
				assigned = c
				break
			}
		}
		if assigned < 0 {
			spills = append(spills, r)
			continue
		}
		colors[r] = assigned
		next = (assigned + 1) % numAllocatable
	}
	return colors, spills
}

// --- Spilling ---

// spill rewrites each spilled register to live in a fresh stack slot:
// every use loads it into a new temporary just before the op, every
// def stores it just after. Spill slots are ordinary stack data and
// are partitioned between the banks like any other variable.
func spill(f *ir.Func, regs []ir.Reg, st *Stats) {
	slots := make(map[ir.Reg]*ir.Symbol, len(regs))
	for _, r := range regs {
		sym := &ir.Symbol{
			Name: fmt.Sprintf("%s.spill%d", f.Name, len(f.Locals)),
			Kind: ir.SymSpill,
			Elem: f.RegType(r),
			Size: 1,
		}
		f.Locals = append(f.Locals, sym)
		slots[r] = sym
	}
	var buf []ir.Reg
	for _, b := range f.Blocks {
		var out []*ir.Op
		for _, op := range b.Ops {
			// Reload each spilled register the op reads.
			reloaded := make(map[ir.Reg]ir.Reg)
			buf = op.Uses(buf[:0])
			for _, u := range buf {
				sym, ok := slots[u]
				if !ok {
					continue
				}
				if _, done := reloaded[u]; done {
					continue
				}
				t := f.NewReg(sym.Elem)
				reloaded[u] = t
				out = append(out, &ir.Op{Kind: ir.OpLoad, Type: sym.Elem, Dst: t, Sym: sym})
			}
			macRead := op.Kind == ir.OpMac || op.Kind == ir.OpFMac
			for i, a := range op.Args {
				if t, ok := reloaded[a]; ok {
					op.Args[i] = t
				}
			}
			if t, ok := reloaded[op.Idx]; ok {
				op.Idx = t
			}
			for i, a := range op.CallArgs {
				if t, ok := reloaded[a]; ok {
					op.CallArgs[i] = t
				}
			}
			// Store each spilled register the op writes. A
			// multiply-accumulate reads and writes its destination: the
			// reload above already retargeted it to the temporary, which
			// is stored back after the update.
			if sym, ok := slots[op.Dst]; ok {
				var t ir.Reg
				if macRead {
					t = reloaded[op.Dst]
				} else {
					t = f.NewReg(sym.Elem)
				}
				op.Dst = t
				out = append(out, op)
				out = append(out, &ir.Op{Kind: ir.OpStore, Args: [2]ir.Reg{t}, Sym: sym})
				continue
			}
			out = append(out, op)
		}
		b.Ops = out
	}
}

// --- Physical rewrite ---

// rewrite renames coloured virtual registers to physical registers,
// inserts return-value plumbing through r1/f1, and adds the prologue
// saves and epilogue restores for every physical register the function
// writes.
func rewrite(f *ir.Func, colors []int, st *Stats) {
	phys := func(r ir.Reg) ir.Reg {
		if r == ir.NoReg {
			return ir.NoReg
		}
		c := colors[r]
		if f.RegType(r) == ir.TFloat {
			return ir.PhysFloat(c + 2) // f2..f32
		}
		return ir.PhysInt(c + 2) // r2..r32
	}
	// The function's register table still describes virtual registers;
	// classify already-renamed physical registers by their number.
	physType := func(r ir.Reg) ir.Type {
		if r > 32 {
			return ir.TFloat
		}
		return ir.TInt
	}

	written := make(map[ir.Reg]bool)

	for _, b := range f.Blocks {
		var out []*ir.Op
		for _, op := range b.Ops {
			for i, a := range op.Args {
				if a != ir.NoReg {
					op.Args[i] = phys(a)
				}
			}
			if op.Idx != ir.NoReg {
				op.Idx = phys(op.Idx)
			}
			for i, a := range op.CallArgs {
				op.CallArgs[i] = phys(a)
			}
			switch op.Kind {
			case ir.OpCall:
				// The callee delivers its result in r1/f1. Keeping the
				// return register as the call's Dst tells the dependence
				// graph that the call defines it, so the copy below can
				// never be scheduled at or before the call.
				dst := op.Dst
				op.Dst = ir.NoReg
				if dst != ir.NoReg {
					ret := ir.RetInt
					if f.RegType(dst) == ir.TFloat {
						ret = ir.RetFloat
					}
					op.Dst = ret
					d := phys(dst)
					written[d] = true
					out = append(out, op,
						&ir.Op{Kind: ir.OpMov, Type: op.Type, Dst: d, Args: [2]ir.Reg{ret}})
					continue
				}
				out = append(out, op)
				continue
			case ir.OpRet:
				if op.Args[0] != ir.NoReg {
					ret := ir.RetInt
					if f.RetType == ir.TFloat {
						ret = ir.RetFloat
					}
					out = append(out, &ir.Op{Kind: ir.OpMov, Type: f.RetType, Dst: ret, Args: [2]ir.Reg{op.Args[0]}})
					op.Args[0] = ret
				}
				out = append(out, op)
				continue
			}
			if op.Dst != ir.NoReg {
				op.Dst = phys(op.Dst)
				written[op.Dst] = true
			}
			out = append(out, op)
		}
		b.Ops = out
	}
	for i, r := range f.ParamRegs {
		f.ParamRegs[i] = phys(r)
	}
	for r := range written {
		if physType(r) == ir.TFloat {
			st.FloatUsed++
		} else {
			st.IntUsed++
		}
	}

	// Callee-save: one slot per written register (r1/f1 are scratch and
	// carry return values, and are never allocated, so they are never
	// in the written set). Prologue saves run before everything else;
	// restores precede every return. The data-allocation pass assigns
	// the slots to alternating banks. main has no caller whose
	// registers need preserving, so it saves nothing.
	var saved []ir.Reg
	if f.Name != "main" {
		for r := range written {
			saved = append(saved, r)
		}
	}
	sort.Slice(saved, func(i, j int) bool { return saved[i] < saved[j] })
	slots := make([]*ir.Symbol, len(saved))
	for i, r := range saved {
		slots[i] = &ir.Symbol{
			Name: fmt.Sprintf("%s.save.%d", f.Name, i),
			Kind: ir.SymSpill,
			Elem: physType(r),
			Size: 1,
			Save: true,
		}
		f.Locals = append(f.Locals, slots[i])
	}
	st.SaveSlots = len(saved)
	f.SavedRegs = len(saved)

	if len(saved) > 0 {
		entry := f.Entry()
		var pro []*ir.Op
		for i, r := range saved {
			pro = append(pro, &ir.Op{Kind: ir.OpStore, Args: [2]ir.Reg{r}, Sym: slots[i]})
		}
		entry.Ops = append(pro, entry.Ops...)
		for _, b := range f.Blocks {
			t := b.Terminator()
			if t == nil || t.Kind != ir.OpRet {
				continue
			}
			var epi []*ir.Op
			for i, r := range saved {
				epi = append(epi, &ir.Op{Kind: ir.OpLoad, Type: physType(r), Dst: r, Sym: slots[i]})
			}
			b.Ops = append(b.Ops[:len(b.Ops)-1], append(epi, t)...)
		}
	}

	f.SetPhysRegTable()
}
