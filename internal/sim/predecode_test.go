package sim_test

import (
	"testing"

	"dualbank/internal/alloc"
	"dualbank/internal/compact"
	"dualbank/internal/lower"
	"dualbank/internal/minic"
	"dualbank/internal/opt"
	"dualbank/internal/regalloc"
	"dualbank/internal/sim"
)

// firSource is a small FIR filter with function calls, loops, integer
// and float arithmetic — enough to exercise every fast-path dispatch
// case while staying quick to simulate.
const firSource = `
float x[128] = {1.0, 2.0, 3.0, 4.0, 5.0};
float h[32] = {0.5, 0.25, 0.125};
float y[96];
int checksum;

float tap(float acc, float a, float b) {
	return acc + a * b;
}

void main() {
	int n;
	int k;
	int c = 0;
	for (n = 0; n < 96; n++) {
		float acc = 0.0;
		for (k = 0; k < 32; k++) {
			acc = tap(acc, x[n + k], h[k]);
		}
		y[n] = acc;
		if (acc > 0.0) {
			c = c + 1;
		}
	}
	checksum = c;
}
`

// compileSched compiles source through scheduling for tests and
// benchmarks alike (compileTo is *testing.T-only).
func compileSched(tb testing.TB, src string, mode alloc.Mode) *compact.Program {
	tb.Helper()
	file, err := minic.Parse(src)
	if err != nil {
		tb.Fatalf("parse: %v", err)
	}
	if err := minic.Analyze(file); err != nil {
		tb.Fatalf("analyze: %v", err)
	}
	p, err := lower.Program(file, "t")
	if err != nil {
		tb.Fatalf("lower: %v", err)
	}
	opt.Run(p, opt.Options{})
	if _, err := regalloc.Run(p); err != nil {
		tb.Fatalf("regalloc: %v", err)
	}
	res, err := alloc.Run(p, alloc.Options{Mode: mode})
	if err != nil {
		tb.Fatalf("alloc: %v", err)
	}
	sched, err := compact.Schedule(p, compact.Config{Ports: res.Ports})
	if err != nil {
		tb.Fatalf("schedule: %v", err)
	}
	return sched
}

// TestPredecodeMatchesMachine cross-checks the two engines on the
// local kernel under every port model; the full-suite differential
// test lives in internal/bench.
func TestPredecodeMatchesMachine(t *testing.T) {
	for _, mode := range []alloc.Mode{
		alloc.SingleBank, alloc.CB, alloc.CBDup, alloc.FullDup,
		alloc.Ideal, alloc.LowOrder,
	} {
		sched := compileSched(t, firSource, mode)
		ref := sim.NewMachine(sched)
		if err := ref.Run(); err != nil {
			t.Fatalf("%v: reference: %v", mode, err)
		}
		pd, err := sim.Predecode(sched)
		if err != nil {
			t.Fatalf("%v: predecode: %v", mode, err)
		}
		fast := pd.NewMachine()
		if err := fast.Run(); err != nil {
			t.Fatalf("%v: fast: %v", mode, err)
		}
		if fast.Cycles != ref.Cycles || fast.OpsExecuted != ref.OpsExecuted ||
			fast.MemAccesses != ref.MemAccesses || fast.DualMemCycles != ref.DualMemCycles ||
			fast.BankConflicts != ref.BankConflicts {
			t.Errorf("%v: counters diverge: fast {cyc %d ops %d mem %d dual %d conf %d} vs reference {cyc %d ops %d mem %d dual %d conf %d}",
				mode,
				fast.Cycles, fast.OpsExecuted, fast.MemAccesses, fast.DualMemCycles, fast.BankConflicts,
				ref.Cycles, ref.OpsExecuted, ref.MemAccesses, ref.DualMemCycles, ref.BankConflicts)
		}
		for i := range ref.X {
			if fast.X[i] != ref.X[i] || fast.Y[i] != ref.Y[i] {
				t.Fatalf("%v: memory image diverges at word %#x", mode, i)
			}
		}
	}
}

// TestFastMachineZeroAllocSteadyState enforces the fast path's
// allocation contract: once built, Reset+Run performs no heap
// allocation at all.
func TestFastMachineZeroAllocSteadyState(t *testing.T) {
	pd, err := sim.Predecode(compileSched(t, firSource, alloc.CBDup))
	if err != nil {
		t.Fatal(err)
	}
	fast := pd.NewMachine()
	// Warm up so the deferred-write buffer reaches its high-water mark.
	if err := fast.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		fast.Reset()
		if err := fast.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Reset+Run allocates %.1f objects/run, want 0", allocs)
	}
}

// BenchmarkMachine measures the interpretive reference engine;
// BenchmarkFastMachine measures the predecoded engine on the identical
// schedule. Comparing ns/op quantifies the fast path's speedup, and
// the fast benchmark must report 0 allocs/op.
func BenchmarkMachine(b *testing.B) {
	sched := compileSched(b, firSource, alloc.CBDup)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := sim.NewMachine(sched)
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFastMachine measures the predecoded fast path's
// steady-state loop: Reset+Run on a prebuilt machine.
func BenchmarkFastMachine(b *testing.B) {
	pd, err := sim.Predecode(compileSched(b, firSource, alloc.CBDup))
	if err != nil {
		b.Fatal(err)
	}
	m := pd.NewMachine()
	if err := m.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
