// Package genmc is a deterministic, seed-driven generator of valid
// MiniC programs with controllable memory-access shape. It exists to
// widen the repository's test distribution beyond the 23 hand-ported
// paper benchmarks: every program it emits terminates, stays in
// bounds, and carries its own expected outputs, so corpus-scale
// differential and metamorphic suites can run over thousands of
// programs instead of a fixed handful.
//
// The package mirrors the compact front-to-back pipeline shape of a
// small compiler: a seed expands into a plan (knobs plus drawn
// parameters), the plan builds a tiny statement IR, and two backends
// consume that IR — a code generator rendering MiniC source and an
// evaluator computing the expected final memory image in Go. Because
// both backends walk the same IR in the same order, the evaluator is
// an independent oracle for the whole compile-and-simulate stack.
//
// Programs are integer-only: every operation the generator emits
// (add, sub, mul, and, or, xor) wraps in 32 bits identically in Go
// and on the simulated machine, so expected outputs compare exactly,
// with no float tolerance to hide single-bit divergence.
//
// Three archetypes control the access shape the paper's allocation
// modes care about:
//
//   - Pair: loop bodies pair loads across distinct arrays — the
//     partitioning-friendly shape where compaction-based (CB) bank
//     assignment approaches the dual-ported ideal.
//   - Window: loop bodies read two offsets of one array per statement
//     (autocorrelation windows) — the duplication-friendly shape where
//     CB alone cannot parallelize the conflicting same-array reads.
//   - Chain: loop bodies chase data-dependent index chains through a
//     scrambled successor array — the irregular, DAG-structured
//     low-locality shape where banking is hardest.
//
// A program is a pure function of its canonical name
// ("gen_<archetype>_<seed>"), the same property the hand-written
// suite has (fir_256_64 encodes its generator parameters), so
// generated programs flow through the harness memo cache, the cluster
// routing ring, and the shared L2 exactly like built-in benchmarks.
package genmc

import (
	"fmt"
	"strconv"
	"strings"
)

// Archetype selects the memory-access shape of a generated program.
type Archetype int8

const (
	// Pair emits co-accessed distinct-array pairs (partitioning-friendly).
	Pair Archetype = iota
	// Window emits same-array autocorrelation windows (duplication-friendly).
	Window
	// Chain emits irregular data-dependent index chains (poor locality).
	Chain
)

// Archetypes returns all archetypes in canonical order.
func Archetypes() []Archetype { return []Archetype{Pair, Window, Chain} }

func (a Archetype) String() string {
	switch a {
	case Pair:
		return "pair"
	case Window:
		return "window"
	case Chain:
		return "chain"
	}
	return fmt.Sprintf("Archetype(%d)", int8(a))
}

// ParseArchetype resolves an archetype name.
func ParseArchetype(s string) (Archetype, bool) {
	for _, a := range Archetypes() {
		if a.String() == s {
			return a, true
		}
	}
	return 0, false
}

// Knobs are the generator's controls. Derive fills them from a seed;
// tests may also construct them directly. Generate clamps every field
// into its valid range, so arbitrary (fuzzed) knob values are safe.
type Knobs struct {
	Archetype Archetype
	// Seed drives every random draw. Equal knobs generate equal
	// programs, byte for byte.
	Seed uint64
	// Arrays is the data-array count (clamped to 2..6).
	Arrays int
	// Size is the data-array length in words, rounded down to a power
	// of two (clamped to 16..128) so every index can be masked in
	// bounds.
	Size int
	// Loops is the number of top-level loop nests (clamped to 1..3).
	Loops int
	// Depth is the nesting depth of each nest (clamped to 1..2).
	Depth int
	// Stmts is the statement count per innermost body (clamped to 1..3).
	Stmts int
}

// Derive expands a seed into the canonical knob setting for an
// archetype — the setting Name/ParseName round-trip, and the one the
// corpus and load-generator populations draw from.
func Derive(a Archetype, seed uint64) Knobs {
	r := rng{state: seed ^ 0xd1b54a32d192ed03}
	return Knobs{
		Archetype: a,
		Seed:      seed,
		Arrays:    2 + int(r.n(5)),
		Size:      16 << r.n(4),
		Loops:     1 + int(r.n(3)),
		Depth:     1 + int(r.n(2)),
		Stmts:     1 + int(r.n(3)),
	}
}

// Name returns the canonical benchmark name of the program these
// knobs derive from: "gen_<archetype>_<seed>". Only seed-derived knob
// settings have names; ParseName(k.Name()) returns Derive(k.Archetype,
// k.Seed), which equals k exactly when k came from Derive.
func (k Knobs) Name() string {
	return fmt.Sprintf("gen_%s_%d", k.Archetype, k.Seed)
}

// ParseName resolves a canonical generated-benchmark name. It is
// strict: only names Name itself produces parse (no leading zeros, no
// unknown archetypes), so the resolvable key space is exactly the
// generatable program space.
func ParseName(name string) (Knobs, bool) {
	rest, ok := strings.CutPrefix(name, "gen_")
	if !ok {
		return Knobs{}, false
	}
	archName, seedStr, ok := strings.Cut(rest, "_")
	if !ok {
		return Knobs{}, false
	}
	a, ok := ParseArchetype(archName)
	if !ok {
		return Knobs{}, false
	}
	seed, err := strconv.ParseUint(seedStr, 10, 64)
	if err != nil || strconv.FormatUint(seed, 10) != seedStr {
		return Knobs{}, false
	}
	return Derive(a, seed), true
}

// Program is one generated benchmark: MiniC source plus the expected
// final contents of every global array, computed by the evaluator
// backend over the same IR the source was rendered from.
type Program struct {
	Name   string
	Desc   string
	Knobs  Knobs
	Source string
	// Out maps every global array name to its expected final contents.
	// A simulation whose memory image disagrees at any word diverged
	// from the generator's evaluator.
	Out map[string][]int32
}

// FromName generates the program a canonical name denotes.
func FromName(name string) (Program, bool) {
	k, ok := ParseName(name)
	if !ok {
		return Program{}, false
	}
	return Generate(k), true
}

// Population returns the canonical n-program knob population for a
// base seed: archetypes round-robin and per-program seeds are
// decorrelated across base seeds, so runs with different base seeds
// cover disjoint populations. The corpus harness and the cluster load
// generator both draw from this, so a corpus-verified program and a
// load-generated key with the same position and base seed are the
// same program.
func Population(n int, seed uint64) []Knobs {
	pop := make([]Knobs, 0, n)
	arch := Archetypes()
	for i := 0; i < n; i++ {
		pop = append(pop, Derive(arch[i%len(arch)], seed*1000003+uint64(i)))
	}
	return pop
}

// rng is splitmix64 — self-contained so generated sources are stable
// across Go releases, like the benchmark suite's xorshift32.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// n returns a draw in [0, n).
func (r *rng) n(n uint64) uint64 { return r.next() % n }

// i32 returns a value in [-32768, 32767] — small enough to keep
// generated sources readable, wide enough that products exercise the
// full 32-bit wrap.
func (r *rng) i32() int32 { return int32(r.n(65536)) - 32768 }

// pick returns a draw from a non-empty slice.
func pick[T any](r *rng, s []T) T { return s[r.n(uint64(len(s)))] }

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// pow2floor rounds down to a power of two.
func pow2floor(v int) int {
	p := 1
	for p*2 <= v {
		p *= 2
	}
	return p
}

// Generate builds the program for one knob setting. It is total:
// every knob is clamped into range, every emitted index is masked in
// bounds, every loop has a constant trip count, and no division is
// emitted, so any knob value — including fuzzer-supplied garbage —
// yields a valid, terminating MiniC program.
func Generate(k Knobs) Program {
	k.Arrays = clamp(k.Arrays, 2, 6)
	k.Size = pow2floor(clamp(k.Size, 16, 128))
	k.Loops = clamp(k.Loops, 1, 3)
	k.Depth = clamp(k.Depth, 1, 2)
	k.Stmts = clamp(k.Stmts, 1, 3)

	r := &rng{state: k.Seed*0x2545f4914f6cdd1d + uint64(k.Archetype) + 1}
	b := &builder{knobs: k, r: r}
	b.plan()
	b.buildLoops()
	b.finish()

	return Program{
		Name:   k.Name(),
		Desc:   fmt.Sprintf("Generated %s-archetype program (seed %d, %d arrays x %d words)", k.Archetype, k.Seed, k.Arrays, k.Size),
		Knobs:  k,
		Source: b.render(),
		Out:    b.eval(),
	}
}
