// Package ddg builds the per-basic-block data-dependence graph used by
// the interference-graph construction pass (Figure 3 of the paper) and
// by the operation-compaction pass. Edges are typed: a *strict* edge
// forces the successor into a strictly later long instruction, while a
// *weak* edge (an anti-dependence) allows both operations to share one
// long instruction, because within an instruction all operands are read
// before any result is written. This is exactly the "data-compatible"
// distinction the paper's scheduler makes.
//
// Graph construction is on the compile hot path — it runs once per
// block in the interference scan and again per block in the compaction
// pass — so the Builder type keeps every piece of transient state
// (per-register def/use tracking, per-symbol access history, priority
// bitsets, adjacency backing arrays) in reusable storage. A Builder
// reused across blocks reaches a zero-allocation steady state.
package ddg

import (
	"math/bits"

	"dualbank/internal/ir"
	"dualbank/internal/machine"
)

// Edge is a dependence from one operation to another within a block.
type Edge struct {
	// To is the index of the dependent operation in Graph.Ops.
	To int
	// Strict reports whether the dependent operation must issue in a
	// strictly later instruction (flow and output dependences). A
	// non-strict edge is an anti-dependence: same instruction is fine.
	Strict bool
}

// Graph is the data-dependence graph of one basic block.
type Graph struct {
	Ops  []*ir.Op
	Succ [][]Edge
	Pred [][]Edge
	// Priority[i] is the number of descendants of op i in the graph,
	// the heuristic the paper uses to order the data-ready set.
	Priority []int
}

// Build constructs the dependence graph for block b using a throwaway
// Builder. Callers building many blocks should allocate one Builder
// and call its Build method instead.
func Build(b *ir.Block) *Graph { return new(Builder).Build(b) }

// memEvent records one memory access to a symbol within the block.
type memEvent struct {
	idx     int
	isStore bool
	bank    machine.Bank
}

// Builder holds reusable scratch for dependence-graph construction.
// The zero value is ready to use. Build returns a *Graph that aliases
// the Builder's storage: it is valid until the next Build call on the
// same Builder. A Builder must not be used concurrently.
type Builder struct {
	g Graph

	// Adjacency backing: outer slices sized to the largest block seen,
	// inner slices keep their capacity across builds.
	succ, pred [][]Edge
	prio       []int

	// Per-register state, indexed by register number and validated by
	// epoch stamps so nothing needs clearing between blocks.
	lastDef   []int // op index of the latest def
	lastDefEp []uint32
	uses      [][]int // reads since that def
	usesEp    []uint32

	// Per-symbol access history, keyed by a block-local symbol id.
	symID map[*ir.Symbol]int32
	hist  [][]memEvent

	memOps []int
	useBuf []ir.Reg

	// Priority bitset scratch.
	setsBuf []uint64
	sets    [][]uint64

	epoch uint32
}

// ensureReg grows the per-register tables to cover register r.
func (bld *Builder) ensureReg(r ir.Reg) {
	n := int(r) + 1
	for len(bld.lastDef) < n {
		bld.lastDef = append(bld.lastDef, 0)
		bld.lastDefEp = append(bld.lastDefEp, 0)
		bld.uses = append(bld.uses, nil)
		bld.usesEp = append(bld.usesEp, 0)
	}
}

// defOf returns the op index of r's latest definition in this block,
// or -1.
func (bld *Builder) defOf(r ir.Reg) int {
	if bld.lastDefEp[r] != bld.epoch {
		return -1
	}
	return bld.lastDef[r]
}

// usesOf returns the (possibly stale) use list for r, resetting it if
// it belongs to an earlier block.
func (bld *Builder) usesOf(r ir.Reg) []int {
	if bld.usesEp[r] != bld.epoch {
		bld.usesEp[r] = bld.epoch
		bld.uses[r] = bld.uses[r][:0]
	}
	return bld.uses[r]
}

// histOf returns the block-local access history slice for symbol s,
// creating an empty one on first sight.
func (bld *Builder) histOf(s *ir.Symbol) *[]memEvent {
	id, ok := bld.symID[s]
	if !ok {
		id = int32(len(bld.symID))
		bld.symID[s] = id
		if int(id) >= len(bld.hist) {
			bld.hist = append(bld.hist, nil)
		}
		bld.hist[id] = bld.hist[id][:0]
	}
	return &bld.hist[id]
}

// Build constructs the dependence graph for block b. The returned
// Graph aliases the Builder's reusable storage.
func (bld *Builder) Build(b *ir.Block) *Graph {
	n := len(b.Ops)
	bld.epoch++
	if bld.epoch == 0 { // wrapped: stamps are ambiguous, reset them
		clear(bld.lastDefEp)
		clear(bld.usesEp)
		bld.epoch = 1
	}
	if bld.symID == nil {
		bld.symID = make(map[*ir.Symbol]int32)
	} else {
		clear(bld.symID)
	}
	for len(bld.succ) < n {
		bld.succ = append(bld.succ, nil)
		bld.pred = append(bld.pred, nil)
		bld.prio = append(bld.prio, 0)
	}
	for i := 0; i < n; i++ {
		bld.succ[i] = bld.succ[i][:0]
		bld.pred[i] = bld.pred[i][:0]
	}
	g := &bld.g
	g.Ops = b.Ops
	g.Succ = bld.succ[:n]
	g.Pred = bld.pred[:n]
	g.Priority = bld.prio[:n]

	lastCall := -1
	bld.memOps = bld.memOps[:0]

	for i, op := range b.Ops {
		// Register flow dependences.
		bld.useBuf = op.Uses(bld.useBuf[:0])
		for _, u := range bld.useBuf {
			bld.ensureReg(u)
			if d := bld.defOf(u); d >= 0 {
				g.addEdge(d, i, true)
			}
			bld.uses[u] = append(bld.usesOf(u), i)
		}
		// Register anti- and output dependences.
		if d := op.Dst; d != ir.NoReg {
			bld.ensureReg(d)
			for _, u := range bld.usesOf(d) {
				g.addEdge(u, i, false)
			}
			if p := bld.defOf(d); p >= 0 {
				g.addEdge(p, i, true)
			}
			bld.lastDef[d] = i
			bld.lastDefEp[d] = bld.epoch
			bld.uses[d] = bld.uses[d][:0]
			bld.usesEp[d] = bld.epoch
		}

		switch op.Kind {
		case ir.OpLoad:
			h := bld.histOf(op.Sym)
			for _, ev := range *h {
				if ev.isStore && banksConflict(ev.bank, op.Bank) {
					g.addEdge(ev.idx, i, true) // memory flow
				}
			}
			if lastCall >= 0 {
				g.addEdge(lastCall, i, true)
			}
			*h = append(*h, memEvent{i, false, op.Bank})
			bld.memOps = append(bld.memOps, i)
		case ir.OpStore:
			h := bld.histOf(op.Sym)
			for _, ev := range *h {
				if !banksConflict(ev.bank, op.Bank) {
					continue
				}
				if ev.isStore {
					g.addEdge(ev.idx, i, true) // memory output
				} else {
					g.addEdge(ev.idx, i, false) // memory anti
				}
			}
			if lastCall >= 0 {
				g.addEdge(lastCall, i, true)
			}
			*h = append(*h, memEvent{i, true, op.Bank})
			bld.memOps = append(bld.memOps, i)
		case ir.OpCall:
			// Calls are memory barriers: every earlier memory op must
			// complete no later than the call (weak: a store may share
			// the call's instruction because memory writes commit before
			// control transfers), and later memory ops wait for the
			// return.
			for _, m := range bld.memOps {
				g.addEdge(m, i, false)
			}
			if lastCall >= 0 {
				g.addEdge(lastCall, i, true)
			}
			lastCall = i
			bld.memOps = bld.memOps[:0]
		}

		// The terminator must issue in the block's final instruction:
		// give it a weak edge from every other operation.
		if op.Kind.IsTerminator() {
			for j := 0; j < i; j++ {
				g.addEdge(j, i, false)
			}
		}
	}

	bld.computePriorities()
	return g
}

// addEdge records a dependence from op index from to op index to,
// keeping the strictest variant of a duplicate edge.
func (g *Graph) addEdge(from, to int, strict bool) {
	if from == to {
		return
	}
	for k := range g.Succ[from] {
		if g.Succ[from][k].To == to {
			if strict && !g.Succ[from][k].Strict {
				g.Succ[from][k].Strict = true
				for j := range g.Pred[to] {
					if g.Pred[to][j].To == from {
						g.Pred[to][j].Strict = true
					}
				}
			}
			return
		}
	}
	g.Succ[from] = append(g.Succ[from], Edge{To: to, Strict: strict})
	g.Pred[to] = append(g.Pred[to], Edge{To: from, Strict: strict})
}

// banksConflict reports whether two accesses to the same symbol may
// touch the same memory location. After the allocation pass, the two
// halves of a duplicated-store pair carry distinct single-bank tags and
// so do not conflict — this is what lets the coherence store issue in
// parallel with the original. Untagged accesses (before allocation, or
// duplicated loads tagged BankBoth) conflict conservatively.
func banksConflict(a, b machine.Bank) bool {
	if a.IsSingle() && b.IsSingle() && a != b {
		return false
	}
	return true
}

// computePriorities sets Priority[i] to the number of distinct
// descendants of i, the paper's scheduling priority.
func (bld *Builder) computePriorities() {
	g := &bld.g
	n := len(g.Ops)
	// Process in reverse topological order (ops are in program order,
	// and all edges point forward), accumulating descendant bitsets.
	words := (n + 63) / 64
	need := n * words
	if cap(bld.setsBuf) < need {
		bld.setsBuf = make([]uint64, need)
	}
	buf := bld.setsBuf[:need]
	clear(buf)
	for len(bld.sets) < n {
		bld.sets = append(bld.sets, nil)
	}
	sets := bld.sets[:n]
	for i := range sets {
		sets[i] = buf[i*words : (i+1)*words]
	}
	for i := n - 1; i >= 0; i-- {
		s := sets[i]
		for _, e := range g.Succ[i] {
			s[e.To/64] |= 1 << (uint(e.To) % 64)
			for w, v := range sets[e.To] {
				s[w] |= v
			}
		}
		count := 0
		for _, v := range s {
			count += bits.OnesCount64(v)
		}
		g.Priority[i] = count
	}
}

// SortByPriority sorts op indices by descending Priority, breaking
// ties by ascending index (stable program order) — the order in which
// both the interference scan and the compaction pass walk the
// data-ready set. Insertion sort: ready sets are small and the slice
// is nearly sorted between refills, and unlike sort.SliceStable this
// never allocates.
func SortByPriority(idx []int, prio []int) {
	for i := 1; i < len(idx); i++ {
		v := idx[i]
		j := i - 1
		for j >= 0 && (prio[idx[j]] < prio[v] || (prio[idx[j]] == prio[v] && idx[j] > v)) {
			idx[j+1] = idx[j]
			j--
		}
		idx[j+1] = v
	}
}
