package pipeline_test

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"dualbank/internal/alloc"
	"dualbank/internal/bench"
	"dualbank/internal/compact"
	"dualbank/internal/minic"
	"dualbank/internal/pipeline"
)

// Metamorphic compiler tests: three semantics-preserving source (or
// option) transformations that must leave the simulated cycle count of
// every benchmark invariant under every allocation mode —
//
//   - renaming every identifier (the compiler must not key any
//     decision on spelling),
//   - permuting the top-level declaration order (layout and
//     partitioning must not depend on which global came first), and
//   - swapping the X/Y bank assignment wholesale (the banks are
//     architecturally identical).
//
// A divergence here means some pass broke a symmetry the architecture
// guarantees — typically an order- or name-sensitive tie-break.

// metamorphicModes is the mode slice the invariants are checked under:
// the unoptimized baseline, compaction-based partitioning, and partial
// duplication.
var metamorphicModes = []alloc.Mode{alloc.SingleBank, alloc.CB, alloc.CBDup}

// spellToken renders one token back to compilable source. Identifier
// spellings run through rename when non-nil ("main" is pinned — the
// entry point is looked up by name). Literals are re-spelled from
// their parsed values, which round-trip exactly.
func spellToken(t *testing.T, tok minic.Token, rename map[string]string) string {
	switch tok.Kind {
	case minic.IDENT:
		if rename == nil || tok.Text == "main" {
			return tok.Text
		}
		r, ok := rename[tok.Text]
		if !ok {
			r = fmt.Sprintf("mm%d_%s", len(rename), strings.Repeat("q", 1+len(rename)%3))
			rename[tok.Text] = r
		}
		return r
	case minic.INTLIT:
		if tok.Int < 0 {
			// Only hex literals can parse negative, and the suite has
			// none; spelling one as "-N" would need expression context.
			t.Fatalf("negative integer literal %d cannot be re-spelled", tok.Int)
		}
		return strconv.FormatInt(tok.Int, 10)
	case minic.FLOATLIT:
		s := strconv.FormatFloat(tok.Flt, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0" // keep it a FLOATLIT on re-lex
		}
		return s
	default:
		return tok.Kind.String()
	}
}

// emitTokens joins re-spelled tokens into source the front end accepts.
func emitTokens(t *testing.T, toks []minic.Token, rename map[string]string) string {
	var b strings.Builder
	for i, tok := range toks {
		if tok.Kind == minic.EOF {
			break
		}
		if i > 0 {
			if i%32 == 0 {
				b.WriteByte('\n')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteString(spellToken(t, tok, rename))
	}
	b.WriteByte('\n')
	return b.String()
}

// lexAll tokenizes source, failing the test on any lex error.
func lexAll(t *testing.T, source string) []minic.Token {
	t.Helper()
	toks, err := minic.LexAll(source)
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	return toks
}

// renameIdents rewrites source with every identifier (except main)
// replaced by a fresh machine-generated name, first occurrence order.
func renameIdents(t *testing.T, source string) string {
	t.Helper()
	return emitTokens(t, lexAll(t, source), map[string]string{})
}

// topLevelChunks splits the token stream into top-level declarations.
// A chunk ends at a depth-0 semicolon (global declarations, including
// brace-enclosed array initializers) or at a depth-0 closing brace
// followed by a type keyword or EOF (function bodies).
func topLevelChunks(t *testing.T, toks []minic.Token) [][]minic.Token {
	t.Helper()
	var chunks [][]minic.Token
	var cur []minic.Token
	depth := 0
	for i, tok := range toks {
		if tok.Kind == minic.EOF {
			break
		}
		cur = append(cur, tok)
		switch tok.Kind {
		case minic.LBrace, minic.LParen, minic.LBrack:
			depth++
		case minic.RBrace, minic.RParen, minic.RBrack:
			depth--
		}
		if depth != 0 {
			continue
		}
		end := tok.Kind == minic.Semi
		if tok.Kind == minic.RBrace {
			switch toks[i+1].Kind {
			case minic.KwInt, minic.KwFloat, minic.KwVoid, minic.EOF:
				end = true
			}
		}
		if end {
			chunks = append(chunks, cur)
			cur = nil
		}
	}
	if len(cur) != 0 {
		t.Fatalf("trailing tokens after the last top-level declaration: %v", cur)
	}
	return chunks
}

// permuteDecls rewrites source with its top-level declarations in
// reverse order — the full mirror permutation, which displaces every
// declaration and still compiles because MiniC resolves globals and
// functions in a separate pass before checking bodies.
func permuteDecls(t *testing.T, source string) string {
	t.Helper()
	chunks := topLevelChunks(t, lexAll(t, source))
	if len(chunks) < 2 {
		t.Fatalf("only %d top-level declarations; nothing to permute", len(chunks))
	}
	var out []minic.Token
	for i := len(chunks) - 1; i >= 0; i-- {
		out = append(out, chunks[i]...)
	}
	out = append(out, minic.Token{Kind: minic.EOF})
	return emitTokens(t, out, nil)
}

// measureCycles compiles source under o, validates the schedule, runs
// the fast simulator, optionally checks program outputs, and returns
// the cycle count.
func measureCycles(t *testing.T, source, name string, o pipeline.Options, check func(bench.Reader) error) int64 {
	t.Helper()
	c, err := pipeline.Compile(source, name, o)
	if err != nil {
		t.Fatalf("%s/%v: compile: %v", name, o.Mode, err)
	}
	if err := compact.Validate(c.Sched); err != nil {
		t.Fatalf("%s/%v: schedule: %v", name, o.Mode, err)
	}
	m, err := c.RunFast()
	if err != nil {
		t.Fatalf("%s/%v: run: %v", name, o.Mode, err)
	}
	if check != nil {
		read := func(sym string, idx int) (uint32, error) {
			g := c.Global(sym)
			if g == nil {
				return 0, fmt.Errorf("no global %q", sym)
			}
			return m.Word(g, idx)
		}
		if err := check(read); err != nil {
			t.Fatalf("%s/%v: output check: %v", name, o.Mode, err)
		}
	}
	return m.Cycles
}

// TestMetamorphicInvariants checks all three invariants for all 23
// benchmarks under {single-bank, CB, Dup}. Renamed variants skip the
// output check (it reads globals by their original names); the other
// variants keep it, so the transforms are also validated end to end.
func TestMetamorphicInvariants(t *testing.T) {
	progs := append(bench.Kernels(), bench.Applications()...)
	for _, p := range progs {
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			renamed := renameIdents(t, p.Source)
			permuted := permuteDecls(t, p.Source)
			for _, mode := range metamorphicModes {
				base := measureCycles(t, p.Source, p.Name, pipeline.Options{Mode: mode}, p.Check)
				if got := measureCycles(t, renamed, p.Name, pipeline.Options{Mode: mode}, nil); got != base {
					t.Errorf("%s/%v: renaming identifiers changed cycles: %d -> %d", p.Name, mode, base, got)
				}
				if got := measureCycles(t, permuted, p.Name, pipeline.Options{Mode: mode}, p.Check); got != base {
					t.Errorf("%s/%v: permuting declarations changed cycles: %d -> %d", p.Name, mode, base, got)
				}
				swapped := pipeline.Options{Mode: mode, SwapBanks: true}
				if got := measureCycles(t, p.Source, p.Name, swapped, p.Check); got != base {
					t.Errorf("%s/%v: swapping banks changed cycles: %d -> %d", p.Name, mode, base, got)
				}
			}
		})
	}
}

// TestSwapBanksMirrorsAllocation pins the mechanism, not just the
// cycle count: under CB with swapped banks the partition's X set lands
// in bank Y and vice versa, and the per-bank word accounting mirrors.
func TestSwapBanksMirrorsAllocation(t *testing.T) {
	p, ok := bench.ByName("fir_32_1")
	if !ok {
		t.Fatal("fir_32_1 missing from the suite")
	}
	plain, err := pipeline.Compile(p.Source, p.Name, pipeline.Options{Mode: alloc.CB})
	if err != nil {
		t.Fatal(err)
	}
	swapped, err := pipeline.Compile(p.Source, p.Name, pipeline.Options{Mode: alloc.CB, SwapBanks: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Alloc.GlobalX != swapped.Alloc.GlobalY || plain.Alloc.GlobalY != swapped.Alloc.GlobalX {
		t.Errorf("global words did not mirror: plain X=%d Y=%d, swapped X=%d Y=%d",
			plain.Alloc.GlobalX, plain.Alloc.GlobalY, swapped.Alloc.GlobalX, swapped.Alloc.GlobalY)
	}
	if plain.Alloc.StackX != swapped.Alloc.StackY || plain.Alloc.StackY != swapped.Alloc.StackX {
		t.Errorf("stack words did not mirror: plain X=%d Y=%d, swapped X=%d Y=%d",
			plain.Alloc.StackX, plain.Alloc.StackY, swapped.Alloc.StackX, swapped.Alloc.StackY)
	}
	if plain.Alloc.GlobalX+plain.Alloc.GlobalY == 0 {
		t.Error("degenerate benchmark: no global words at all")
	}
}
