package bench

import (
	"strings"
	"testing"

	"dualbank/internal/alloc"
	"dualbank/internal/pipeline"
)

// This file asserts the paper's qualitative results hold in the
// reproduction — the per-experiment "shape" checks that DESIGN.md's
// experiment index calls out. Absolute numbers differ from the 1996
// testbed; these tests pin down who wins, roughly by how much, and
// where duplication helps or hurts.

// TestFigure7Shape: every kernel gains from CB partitioning with
// double-digit gains for most, and CB reaches the dual-ported Ideal
// for every kernel except iir_4_64 (whose cascaded sections share one
// delay-line array).
func TestFigure7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in short mode")
	}
	rows, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("got %d kernels, want 12", len(rows))
	}
	var sum float64
	for _, r := range rows {
		cb, ideal := r.Gains[alloc.CB], r.Gains[alloc.Ideal]
		sum += cb
		if cb < 10 {
			t.Errorf("%s: CB gain %.1f%%, want double digits", r.Bench, cb)
		}
		if cb > 60 {
			t.Errorf("%s: CB gain %.1f%% suspiciously high", r.Bench, cb)
		}
		gap := ideal - cb
		if r.Bench == "iir_4_64" {
			if gap <= 1 {
				t.Errorf("iir_4_64: CB should trail Ideal (CB %.1f%%, Ideal %.1f%%)", cb, ideal)
			}
		} else if gap > 2 {
			t.Errorf("%s: CB %.1f%% should match Ideal %.1f%%", r.Bench, cb, ideal)
		}
	}
	avg := sum / float64(len(rows))
	if avg < 20 || avg > 45 {
		t.Errorf("kernel average CB gain %.1f%%, paper reports 29%%", avg)
	}
}

// TestFigure8Shape: applications gain less than kernels; histogram and
// the G721 codecs gain nothing even with dual-ported memory; lpc is
// rescued by partial duplication; spectral loses from duplication;
// profiled edge weights change nothing.
func TestFigure8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in short mode")
	}
	rows, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("got %d applications, want 11", len(rows))
	}
	byName := map[string]FigureRow{}
	for _, r := range rows {
		byName[r.Bench] = r
	}

	// The zero-parallelism programs: no technique helps.
	for _, name := range []string{"histogram", "G721MLencode", "G721MLdecode", "G721WFencode"} {
		r := byName[name]
		if r.Gains[alloc.Ideal] > 2.5 {
			t.Errorf("%s: Ideal gain %.1f%%, expected ~0 (serial dependence chains)",
				name, r.Gains[alloc.Ideal])
		}
	}

	// lpc: the Figure 6 flagship. CB small; Dup large and close to
	// Ideal.
	lpc := byName["lpc"]
	if lpc.Gains[alloc.CB] > 8 {
		t.Errorf("lpc: CB gain %.1f%%, paper reports ~3%%", lpc.Gains[alloc.CB])
	}
	if lpc.Gains[alloc.CBDup] < 20 {
		t.Errorf("lpc: Dup gain %.1f%%, paper reports ~34%%", lpc.Gains[alloc.CBDup])
	}
	if lpc.Gains[alloc.Ideal]-lpc.Gains[alloc.CBDup] > 6 {
		t.Errorf("lpc: Dup (%.1f%%) should approach Ideal (%.1f%%)",
			lpc.Gains[alloc.CBDup], lpc.Gains[alloc.Ideal])
	}
	found := false
	for _, d := range lpc.Duplicated {
		if d == "s" {
			found = true
		}
	}
	if !found {
		t.Errorf("lpc: frame buffer not duplicated (got %v)", lpc.Duplicated)
	}

	// spectral: duplication's bookkeeping stores make Dup worse than
	// plain CB — the paper's inversion.
	sp := byName["spectral"]
	if sp.Gains[alloc.CBDup] >= sp.Gains[alloc.CB] {
		t.Errorf("spectral: Dup (%.1f%%) should underperform CB (%.1f%%)",
			sp.Gains[alloc.CBDup], sp.Gains[alloc.CB])
	}

	// Profiled weights match the static heuristic (the paper's finding
	// that profiling is unnecessary).
	for _, r := range rows {
		if diff := r.Gains[alloc.CBProfiled] - r.Gains[alloc.CB]; diff > 3 || diff < -3 {
			t.Errorf("%s: Pr gain %.1f%% deviates from CB %.1f%%",
				r.Bench, r.Gains[alloc.CBProfiled], r.Gains[alloc.CB])
		}
	}

	// Applications average below the kernel average.
	var appAvg float64
	for _, r := range rows {
		appAvg += r.Gains[alloc.CB]
	}
	appAvg /= float64(len(rows))
	if appAvg > 20 {
		t.Errorf("application average CB gain %.1f%%, should be well below kernels", appAvg)
	}
}

// TestTable3Shape: full duplication's cost always outweighs its
// performance (PCR < 1); CB partitioning is nearly cost-free; partial
// duplication's extra memory is small; lpc's duplication is
// cost-effective (its PCR beats CB's).
func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in short mode")
	}
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	var fullCI, dupCI, cbCI float64
	for _, r := range rows {
		full := r.Metrics[alloc.FullDup]
		if full.PCR >= 1 {
			t.Errorf("%s: full duplication PCR %.2f, must be < 1", r.Bench, full.PCR)
		}
		if full.CI < 1.3 {
			t.Errorf("%s: full duplication CI %.2f, expected a large cost increase", r.Bench, full.CI)
		}
		cb := r.Metrics[alloc.CB]
		if cb.CI > 1.05 {
			t.Errorf("%s: CB cost increase %.2f, partitioning should be nearly free", r.Bench, cb.CI)
		}
		fullCI += full.CI
		dupCI += r.Metrics[alloc.CBDup].CI
		cbCI += cb.CI
	}
	n := float64(len(rows))
	if fullCI/n < 1.5 {
		t.Errorf("mean full-dup CI %.2f, paper reports 1.62", fullCI/n)
	}
	if dupCI/n > 1.10 {
		t.Errorf("mean partial-dup CI %.2f, paper reports 1.01", dupCI/n)
	}
	if cbCI/n > 1.02 {
		t.Errorf("mean CB CI %.2f, paper reports 0.99", cbCI/n)
	}

	// lpc: duplication is worth its memory (paper: PCR 1.20 vs 1.04).
	for _, r := range rows {
		if r.Bench != "lpc" {
			continue
		}
		if r.Metrics[alloc.CBDup].PCR <= r.Metrics[alloc.CB].PCR {
			t.Errorf("lpc: Dup PCR %.2f should beat CB PCR %.2f",
				r.Metrics[alloc.CBDup].PCR, r.Metrics[alloc.CB].PCR)
		}
	}
}

// TestFigure6DuplicationMarking compiles the literal Figure 6 loop and
// checks the signal array is marked for duplication.
func TestFigure6DuplicationMarking(t *testing.T) {
	src := `
float signal[64] = {1.0};
float R[8];
void main() {
	int n;
	int m;
	for (m = 1; m < 8; m++) {
		float acc = 0.0;
		int r = 64 - m;
		for (n = 1; n < r; n++) {
			acc += signal[n] * signal[n + m];
		}
		R[m] = acc;
	}
}
`
	c, err := pipeline.Compile(src, "fig6", pipeline.Options{Mode: alloc.CBDup})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, s := range c.Alloc.Duplicated {
		names = append(names, s.Name)
	}
	if len(names) != 1 || names[0] != "signal" {
		t.Fatalf("duplicated = %v, want [signal]", names)
	}
}

// TestFigure1Quickstart compiles the Figure 1 FIR filter under CB and
// verifies the inner loop contains the dual parallel move: both
// element loads in one long instruction.
func TestFigure1Quickstart(t *testing.T) {
	src := `
float A[32] = {1.0, 2.0};
float B[32] = {0.5};
float sum;
void main() {
	int i;
	float s = 0.0;
	for (i = 0; i < 32; i++) {
		s += A[i] * B[i];
	}
	sum = s;
}
`
	c, err := pipeline.Compile(src, "fig1", pipeline.Options{Mode: alloc.CB})
	if err != nil {
		t.Fatal(err)
	}
	a, b := c.Global("A"), c.Global("B")
	if a.Bank == b.Bank {
		t.Fatalf("A and B share bank %v", a.Bank)
	}
	// The whole filter must run at ~2 cycles per tap plus constant
	// overhead, like the hand-written DSP56001 listing's single-cycle
	// MAC-with-two-moves steady state over two instructions.
	m, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles > 2*32+16 {
		t.Errorf("FIR took %d cycles; dual-bank schedule should be ~%d", m.Cycles, 2*32)
	}
	got, err := m.Float32(c.Global("sum"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 { // only A[0]*B[0] is non-zero
		t.Errorf("sum = %g, want 0.5", got)
	}
}

// TestBenchmarkNamesMatchTables: the suite names match Tables 1 and 2.
func TestBenchmarkNamesMatchTables(t *testing.T) {
	wantKernels := []string{
		"fft_1024", "fft_256", "fir_256_64", "fir_32_1", "iir_4_64",
		"iir_1_1", "latnrm_32_64", "latnrm_8_1", "lmsfir_32_64",
		"lmsfir_8_1", "mult_10_10", "mult_4_4",
	}
	ks := Kernels()
	for i, w := range wantKernels {
		if ks[i].Name != w {
			t.Errorf("kernel %d = %s, want %s", i, ks[i].Name, w)
		}
		if ks[i].Kind != Kernel {
			t.Errorf("%s misclassified", w)
		}
	}
	wantApps := []string{
		"adpcm", "lpc", "spectral", "edge_detect", "compress",
		"histogram", "V32encode", "G721MLencode", "G721MLdecode",
		"G721WFencode", "trellis",
	}
	as := Applications()
	for i, w := range wantApps {
		if as[i].Name != w {
			t.Errorf("application %d = %s, want %s", i, as[i].Name, w)
		}
		if as[i].Kind != Application {
			t.Errorf("%s misclassified", w)
		}
	}
	if _, ok := ByName("lpc"); !ok {
		t.Error("ByName(lpc) failed")
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("ByName(nonesuch) succeeded")
	}
}

// TestRenderers: the text renderers include every benchmark and the
// column heads.
func TestRenderers(t *testing.T) {
	rows := []FigureRow{{
		Bench:      "demo",
		BaseCycles: 100,
		Gains:      map[alloc.Mode]float64{alloc.CB: 25},
		Cycles:     map[alloc.Mode]int64{alloc.CB: 80},
	}}
	out := RenderFigure("T", rows, []alloc.Mode{alloc.CB})
	for _, want := range []string{"T", "demo", "25.0%", "average"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure render missing %q:\n%s", want, out)
		}
	}
}
