package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dualbank/internal/alloc"
	"dualbank/internal/bench"
	"dualbank/internal/serve"
)

// allModes are the seven experiment arms, by canonical wire name.
var allModes = []alloc.Mode{
	alloc.SingleBank, alloc.CB, alloc.CBProfiled,
	alloc.CBDup, alloc.FullDup, alloc.Ideal, alloc.LowOrder,
}

// postRun issues one POST /v1/run and decodes the response body.
func postRun(t *testing.T, client *http.Client, url, body string) (int, []byte) {
	t.Helper()
	resp, err := client.Post(url+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp.StatusCode, data
}

// TestServeMatchesDirect is the end-to-end integration suite: every
// Table 1/2 benchmark under every allocation mode through the HTTP
// API, each response compared field-by-field against a direct
// bench.RunWith measurement. Timing fields are nondeterministic and
// excluded; everything else must be identical.
func TestServeMatchesDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark x mode matrix in short mode")
	}
	s := serve.New(serve.Config{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	// Cleanup, not defer: parallel subtests outlive this function body,
	// and the server must outlive them.
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	for _, p := range append(bench.Kernels(), bench.Applications()...) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			for _, mode := range allModes {
				direct, err := bench.RunWith(p, mode, bench.RunOptions{})
				if err != nil {
					t.Fatalf("%v: direct: %v", mode, err)
				}
				body := fmt.Sprintf(`{"bench":%q,"mode":%q}`, p.Name, mode)
				code, data := postRun(t, ts.Client(), ts.URL, body)
				if code != http.StatusOK {
					t.Fatalf("%v: status %d: %s", mode, code, data)
				}
				var got serve.Response
				if err := json.Unmarshal(data, &got); err != nil {
					t.Fatalf("%v: decoding: %v", mode, err)
				}
				want := serve.ResponseFor(direct, 0, got.Cached)
				// Phase timings are wall clock, never comparable.
				want.CompileSeconds, want.SimSeconds = got.CompileSeconds, got.SimSeconds
				if got.Bench != want.Bench || got.Mode != want.Mode || got.Partitioner != want.Partitioner {
					t.Errorf("%v: identity mismatch: got (%s,%s,%s), want (%s,%s,%s)", mode,
						got.Bench, got.Mode, got.Partitioner, want.Bench, want.Mode, want.Partitioner)
				}
				if got.Cycles != want.Cycles {
					t.Errorf("%v: cycles: served %d, direct %d", mode, got.Cycles, want.Cycles)
				}
				if got.MemXData != want.MemXData || got.MemYData != want.MemYData ||
					got.MemStack != want.MemStack || got.MemInstr != want.MemInstr ||
					got.MemTotal != want.MemTotal {
					t.Errorf("%v: memory: served %+v, direct %+v", mode, got, want)
				}
				if got.DupStores != want.DupStores {
					t.Errorf("%v: dup stores: served %d, direct %d", mode, got.DupStores, want.DupStores)
				}
				if fmt.Sprint(got.Duplicated) != fmt.Sprint(want.Duplicated) {
					t.Errorf("%v: duplicated: served %v, direct %v", mode, got.Duplicated, want.Duplicated)
				}
			}
		})
	}
}

// TestServeModeAliasesAndPartitioners spot-checks that the dspcc short
// mode names and the fm partitioner work over the wire and that the
// partitioner participates in the cache key (fm and greedy must not
// alias each other's entries).
func TestServeModeAliasesAndPartitioners(t *testing.T) {
	s := serve.New(serve.Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, data := postRun(t, ts.Client(), ts.URL, `{"bench":"fir_32_1","mode":"dup"}`)
	if code != http.StatusOK {
		t.Fatalf("alias mode: status %d: %s", code, data)
	}
	var aliased serve.Response
	if err := json.Unmarshal(data, &aliased); err != nil {
		t.Fatal(err)
	}
	if aliased.Mode != alloc.CBDup.String() {
		t.Errorf("alias dup resolved to %s", aliased.Mode)
	}

	for _, part := range []string{"greedy", "fm", "kl", "anneal", "exact"} {
		body := fmt.Sprintf(`{"bench":"mult_4_4","mode":"CB","partitioner":%q}`, part)
		code, data := postRun(t, ts.Client(), ts.URL, body)
		if code != http.StatusOK {
			t.Fatalf("partitioner %s: status %d: %s", part, code, data)
		}
		var got serve.Response
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		if got.Partitioner != part {
			t.Errorf("partitioner echoed as %s, want %s", got.Partitioner, part)
		}
		if got.Cached {
			t.Errorf("partitioner %s: first request served from cache — cache key ignores the partitioner", part)
		}
	}
}

// TestServeExplorerKnobs drives the explorer's run knobs through
// /v1/run: an exact duplication set, profile weighting, and an FM pass
// bound, each a distinct cache key.
func TestServeExplorerKnobs(t *testing.T) {
	s := serve.New(serve.Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, data := postRun(t, ts.Client(), ts.URL, `{"bench":"fir_32_1","mode":"dup","dup":["h"]}`)
	if code != http.StatusOK {
		t.Fatalf("exact dup set: status %d: %s", code, data)
	}
	var got serve.Response
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Duplicated) != 1 || got.Duplicated[0] != "h" {
		t.Errorf("dup [h] duplicated %v", got.Duplicated)
	}

	for _, body := range []string{
		`{"bench":"fir_32_1","mode":"CB","profiled":true}`,
		`{"bench":"fir_32_1","mode":"CB","partitioner":"fm","fm_passes":1}`,
	} {
		code, data := postRun(t, ts.Client(), ts.URL, body)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", body, code, data)
		}
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		if got.Cached {
			t.Errorf("%s: first request served from cache — cache key ignores the knob", body)
		}
	}
}

// TestServeCacheFlag checks the memo-cache contract over the wire: the
// first named-benchmark request computes, the second is a hit with an
// identical measurement, and source requests never cache.
func TestServeCacheFlag(t *testing.T) {
	s := serve.New(serve.Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var first, second serve.Response
	for i, out := range []*serve.Response{&first, &second} {
		code, data := postRun(t, ts.Client(), ts.URL, `{"bench":"iir_1_1","mode":"CB"}`)
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, code, data)
		}
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatal(err)
		}
	}
	if first.Cached {
		t.Error("first request claimed a cache hit")
	}
	if !second.Cached {
		t.Error("second request missed the cache")
	}
	if first.Cycles != second.Cycles || first.MemTotal != second.MemTotal {
		t.Errorf("cache changed the measurement: %+v vs %+v", first, second)
	}
	st := s.CacheStats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss", st)
	}

	src := `{"source":"int y[1];\nvoid main() { y[0] = 7; }"}`
	for i := 0; i < 2; i++ {
		code, data := postRun(t, ts.Client(), ts.URL, src)
		if code != http.StatusOK {
			t.Fatalf("source request: status %d: %s", code, data)
		}
		var got serve.Response
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		if got.Cached {
			t.Error("source request served from cache")
		}
	}
}

// TestServeErrors exercises the failure surface: malformed JSON,
// unknown fields, unknown benchmarks/modes/partitioners, both and
// neither of bench/source, oversized source, compile errors, and
// failing output checks.
func TestServeErrors(t *testing.T) {
	s := serve.New(serve.Config{Workers: 1, MaxSourceBytes: 128})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		code int
	}{
		{"malformed json", `{"bench":`, http.StatusBadRequest},
		{"trailing data", `{"bench":"fir_32_1"} {"x":1}`, http.StatusBadRequest},
		{"unknown field", `{"bench":"fir_32_1","wat":1}`, http.StatusBadRequest},
		{"neither bench nor source", `{"mode":"CB"}`, http.StatusBadRequest},
		{"both bench and source", `{"bench":"fir_32_1","source":"void main() {}"}`, http.StatusBadRequest},
		{"unknown bench", `{"bench":"nope"}`, http.StatusNotFound},
		{"unknown mode", `{"bench":"fir_32_1","mode":"zigzag"}`, http.StatusBadRequest},
		{"unknown partitioner", `{"bench":"fir_32_1","partitioner":"magic"}`, http.StatusBadRequest},
		{"negative timeout", `{"bench":"fir_32_1","timeout_ms":-5}`, http.StatusBadRequest},
		{"fm_passes without fm", `{"bench":"fir_32_1","fm_passes":2}`, http.StatusBadRequest},
		{"dup without Dup mode", `{"bench":"fir_32_1","mode":"CB","dup":["x"]}`, http.StatusBadRequest},
		{"oversized source", fmt.Sprintf(`{"source":%q}`, strings.Repeat("x", 200)), http.StatusBadRequest},
		{"compile error", `{"source":"void main( {"}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, data := postRun(t, ts.Client(), ts.URL, tc.body)
			if code != tc.code {
				t.Fatalf("status %d, want %d: %s", code, tc.code, data)
			}
			var er serve.ErrorResponse
			if err := json.Unmarshal(data, &er); err != nil || er.Error == "" {
				t.Errorf("error body not ErrorResponse: %s", data)
			}
		})
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run: status %d, want 405", resp.StatusCode)
	}
}

// TestServeInventoryAndHealth covers /v1/benchmarks, /healthz, and the
// metrics exposition.
func TestServeInventoryAndHealth(t *testing.T) {
	s := serve.New(serve.Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/benchmarks")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var inv struct {
		Benchmarks []struct {
			Name, Kind, Desc string
		} `json:"benchmarks"`
		Modes        []string `json:"modes"`
		Partitioners []string `json:"partitioners"`
	}
	if err := json.Unmarshal(data, &inv); err != nil {
		t.Fatalf("decoding inventory: %v", err)
	}
	if len(inv.Benchmarks) != 23 {
		t.Errorf("inventory lists %d benchmarks, want 23", len(inv.Benchmarks))
	}
	if len(inv.Modes) != 7 {
		t.Errorf("inventory lists %d modes, want 7", len(inv.Modes))
	}
	if len(inv.Partitioners) != 5 {
		t.Errorf("inventory lists %d partitioners, want 5", len(inv.Partitioners))
	}

	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, []byte("ok\n")) {
		t.Errorf("/healthz: %d %q", resp.StatusCode, body)
	}

	// One real run so the histograms have a sample, then scrape.
	if code, data := postRun(t, ts.Client(), ts.URL, `{"bench":"fir_32_1"}`); code != http.StatusOK {
		t.Fatalf("warm-up run: %d: %s", code, data)
	}
	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"dspservd_in_flight 0",
		"dspservd_pool_workers 1",
		"dspservd_cache_misses_total 1",
		`dspservd_requests_total{code="200"}`,
		"dspservd_compile_seconds_count 1",
		"dspservd_simulate_seconds_count 1",
		`dspservd_simulate_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestServeAfterClose checks that a closed server fails requests with
// 503 rather than hanging or panicking.
func TestServeAfterClose(t *testing.T) {
	s := serve.New(serve.Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Close()
	code, data := postRun(t, ts.Client(), ts.URL, `{"bench":"fir_32_1"}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d after close, want 503: %s", code, data)
	}
}
