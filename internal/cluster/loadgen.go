package cluster

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"dualbank/internal/bench"
	"dualbank/internal/genmc"
)

// This file is the load generator behind cmd/dsploadgen and the
// scaling experiments: a closed-loop driver spraying the benchmark ×
// mode matrix at a set of cluster nodes under a configurable key-skew
// (uniform or zipf), reporting throughput, latency quantiles, the
// status mix, and the fleet-wide compute count that verifies
// cross-node single-flight (distinct keys requested == measurements
// computed, regardless of request count or fan-out).

// LoadOptions configures one load run.
type LoadOptions struct {
	// Targets are the node base URLs ("http://host:port"); requests
	// round-robin across them.
	Targets []string
	// Requests is the total request count (default 1000).
	Requests int
	// Concurrency is the closed-loop worker count (default 32).
	Concurrency int
	// Keyspace bounds the distinct request bodies drawn from the
	// benchmark × mode matrix (default and max 161 = 23 benchmarks × 7
	// modes).
	Keyspace int
	// Skew picks the key distribution: "uniform" (default), "zipf", or
	// "sweep" (round-robin through the whole keyspace in order — the
	// warm-up pattern that touches every key with minimal requests).
	Skew string
	// ZipfS is the zipf exponent (default 1.2; must be > 1).
	ZipfS float64
	// Seed seeds the key sequence; runs with equal seeds draw equal
	// sequences (default 1).
	Seed int64
	// Generated mixes this many seeded generated-program keys (see
	// internal/genmc) into the population after the Keyspace clamp, so
	// the cluster serves a blend of built-in and generated traffic.
	// The generated keys derive from Seed, like the key sequence.
	Generated int
	// Timeout caps each request (default 30s).
	Timeout time.Duration
}

// LoadReport is one load run's result.
type LoadReport struct {
	Requests        int            `json:"requests"`
	Seconds         float64        `json:"seconds"`
	Throughput      float64        `json:"throughput_rps"`
	Statuses        map[int]int    `json:"statuses"`
	TransportErrors int            `json:"transport_errors"`
	P50Ms           float64        `json:"p50_ms"`
	P99Ms           float64        `json:"p99_ms"`
	DistinctKeys    int            `json:"distinct_keys"`
	Skew            string         `json:"skew"`
	Targets         int            `json:"targets"`
	TopKeys         map[string]int `json:"top_keys,omitempty"`
}

// loadModes is the allocation-mode vocabulary of the request matrix.
var loadModes = []string{"single-bank", "CB", "Pr", "Dup", "full-dup", "Ideal", "low-order"}

// LoadBodies returns the canonical request-body matrix: every built-in
// benchmark crossed with every allocation mode, in deterministic
// order.
func LoadBodies() []string {
	var bodies []string
	for _, p := range append(bench.Kernels(), bench.Applications()...) {
		for _, m := range loadModes {
			bodies = append(bodies, fmt.Sprintf(`{"bench":%q,"mode":%q}`, p.Name, m))
		}
	}
	return bodies
}

// GeneratedBodies returns n generated-program request bodies for a
// base seed: the canonical genmc population's keys, each paired with a
// rotating allocation mode. Generated programs are pure functions of
// their names, so these keys are cacheable and routable exactly like
// the built-in matrix — the single-flight verification counts them the
// same way.
func GeneratedBodies(n int, seed uint64) []string {
	bodies := make([]string, 0, n)
	for i, k := range genmc.Population(n, seed) {
		bodies = append(bodies, fmt.Sprintf(`{"bench":%q,"mode":%q}`, k.Name(), loadModes[i%len(loadModes)]))
	}
	return bodies
}

// RunLoad drives one load run to completion.
func RunLoad(ctx context.Context, opts LoadOptions) (LoadReport, error) {
	if len(opts.Targets) == 0 {
		return LoadReport{}, fmt.Errorf("loadgen: no targets")
	}
	if opts.Requests <= 0 {
		opts.Requests = 1000
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 32
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.Skew == "" {
		opts.Skew = "uniform"
	}
	if opts.ZipfS <= 1 {
		opts.ZipfS = 1.2
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	bodies := LoadBodies()
	if opts.Keyspace > 0 && opts.Keyspace < len(bodies) {
		bodies = bodies[:opts.Keyspace]
	}
	if opts.Generated > 0 {
		bodies = append(bodies, GeneratedBodies(opts.Generated, uint64(opts.Seed))...)
	}

	// Pre-draw the whole key sequence so the distribution is exactly
	// reproducible regardless of worker interleaving.
	rng := rand.New(rand.NewSource(opts.Seed))
	var draw func() int
	switch opts.Skew {
	case "uniform":
		draw = func() int { return rng.Intn(len(bodies)) }
	case "zipf":
		z := rand.NewZipf(rng, opts.ZipfS, 1, uint64(len(bodies)-1))
		draw = func() int { return int(z.Uint64()) }
	case "sweep":
		i := -1
		draw = func() int { i++; return i % len(bodies) }
	default:
		return LoadReport{}, fmt.Errorf("loadgen: unknown skew %q (want uniform, zipf, or sweep)", opts.Skew)
	}
	keys := make([]int, opts.Requests)
	distinct := map[int]int{}
	for i := range keys {
		keys[i] = draw()
		distinct[keys[i]]++
	}

	// A dedicated transport sized to the worker count: the default
	// caps idle connections at 2 per host, which forces most of a
	// 32-worker closed loop onto fresh TCP dials every request and
	// turns the measurement into a connection-churn benchmark.
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = opts.Concurrency * 2
	tr.MaxIdleConnsPerHost = opts.Concurrency
	client := &http.Client{Timeout: opts.Timeout, Transport: tr}
	defer tr.CloseIdleConnections()
	var (
		mu         sync.Mutex
		statuses   = map[int]int{}
		transport  int
		latencies  = make([]time.Duration, 0, opts.Requests)
		wg         sync.WaitGroup
		next       = make(chan int)
		targetsLen = len(opts.Targets)
	)
	start := time.Now()
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				body := bodies[keys[i]]
				url := opts.Targets[i%targetsLen] + "/v1/run"
				t0 := time.Now()
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(body))
				if err != nil {
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err != nil {
					mu.Lock()
					transport++
					mu.Unlock()
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lat := time.Since(t0)
				mu.Lock()
				statuses[resp.StatusCode]++
				latencies = append(latencies, lat)
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < opts.Requests; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			close(next)
			wg.Wait()
			return LoadReport{}, ctx.Err()
		}
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	quantile := func(q float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(q * float64(len(latencies)-1))
		return float64(latencies[i]) / float64(time.Millisecond)
	}
	top := map[string]int{}
	type kc struct {
		k, n int
	}
	var ks []kc
	for k, n := range distinct {
		ks = append(ks, kc{k, n})
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].n != ks[j].n {
			return ks[i].n > ks[j].n
		}
		return ks[i].k < ks[j].k
	})
	for i := 0; i < len(ks) && i < 5; i++ {
		top[bodies[ks[i].k]] = ks[i].n
	}
	return LoadReport{
		Requests:        opts.Requests,
		Seconds:         elapsed.Seconds(),
		Throughput:      float64(opts.Requests) / elapsed.Seconds(),
		Statuses:        statuses,
		TransportErrors: transport,
		P50Ms:           quantile(0.50),
		P99Ms:           quantile(0.99),
		DistinctKeys:    len(distinct),
		Skew:            opts.Skew,
		Targets:         targetsLen,
		TopKeys:         top,
	}, nil
}
