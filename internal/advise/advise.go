// Package advise turns the compiler's data-allocation analysis into a
// report for the DSP application designer. §4.2 of the paper closes by
// observing that the compiler and the designer must cooperate — the
// designer supplies real-time and area budgets, the compiler reports
// where memory parallelism was found, lost, or purchasable with
// duplication. This report is that conversation's compiler side:
//
//   - the bank partition and its balance,
//   - the parallel-access opportunities the partition could NOT
//     satisfy (residual interference edges), ranked by weight,
//   - the arrays marked for duplication, with their memory price and
//     whether they are read-only (free to duplicate), and
//   - static schedule utilization, including how often the two memory
//     units issue together.
package advise

import (
	"fmt"
	"sort"
	"strings"

	"dualbank/internal/alloc"
	"dualbank/internal/ir"
	"dualbank/internal/machine"
	"dualbank/internal/pipeline"
)

// Report renders the advisory text for a compiled program.
func Report(c *pipeline.Compiled) string {
	var sb strings.Builder
	res := c.Alloc
	fmt.Fprintf(&sb, "Data-allocation report for %s (mode %s)\n\n", c.Name, res.Mode)

	// Bank balance, one line per bank. The classic machine renders the
	// historical X/Y pair; multi-bank allocations add B2, B3, ... lines.
	globals, stacks := []int{res.GlobalX, res.GlobalY}, []int{res.StackX, res.StackY}
	if res.GlobalBank != nil {
		globals, stacks = res.GlobalBank, res.StackBank
	}
	for b := range globals {
		w := res.DupWords + globals[b] + stacks[b]
		fmt.Fprintf(&sb, "Bank %s: %d words (%d duplicated + %d globals + %d stack)\n",
			machine.BankAt(b), w, res.DupWords, globals[b], stacks[b])
	}

	if res.Graph == nil {
		fmt.Fprintf(&sb, "\nMode %s performs no partitioning analysis.\n", res.Mode)
		writeStats(&sb, c)
		return sb.String()
	}

	// Residual edges: pairs the partition left in one bank.
	side := map[*ir.Symbol]machine.Bank{}
	partCost := int64(0)
	switch {
	case res.PartK != nil:
		for b, set := range res.PartK.Sets {
			for _, s := range set {
				side[s] = machine.BankAt(b)
			}
		}
		partCost = res.PartK.Cost
	case res.Part != nil:
		for _, s := range res.Part.SetX {
			side[s] = machine.BankX
		}
		for _, s := range res.Part.SetY {
			side[s] = machine.BankY
		}
		partCost = res.Part.Cost
	}
	type residual struct {
		a, b string
		w    int64
	}
	var left []residual
	for i, a := range res.Graph.Nodes {
		for j := i + 1; j < len(res.Graph.Nodes); j++ {
			b := res.Graph.Nodes[j]
			w := res.Graph.Weight(a, b)
			if w > 0 && side[a] == side[b] {
				left = append(left, residual{a.Name, b.Name, w})
			}
		}
	}
	sort.Slice(left, func(i, j int) bool {
		if left[i].w != left[j].w {
			return left[i].w > left[j].w
		}
		return left[i].a < left[j].a
	})
	fmt.Fprintf(&sb, "\nPartition residual cost: %d (parallel-access opportunities left in one bank)\n", partCost)
	for i, r := range left {
		if i == 8 {
			fmt.Fprintf(&sb, "  ... and %d more\n", len(left)-8)
			break
		}
		fmt.Fprintf(&sb, "  (%s, %s) weight %d — consider restructuring so these are not co-resident\n",
			r.a, r.b, r.w)
	}
	if len(left) == 0 {
		sb.WriteString("  none: every discovered pair was separated across the banks\n")
	}

	// Duplication candidates.
	var marks []*ir.Symbol
	for _, s := range res.Graph.Nodes {
		if res.Graph.DupMarks[s] && s.IsArray() {
			marks = append(marks, s)
		}
	}
	sort.Slice(marks, func(i, j int) bool { return marks[i].Name < marks[j].Name })
	sb.WriteString("\nSame-array parallel accesses (partitioning cannot help; duplication can):\n")
	if len(marks) == 0 {
		sb.WriteString("  none\n")
	}
	for _, s := range marks {
		note := fmt.Sprintf("+%d words and a coherence store per write", s.Size)
		if s.ReadOnly {
			note = fmt.Sprintf("+%d words; READ-ONLY, so duplication needs no coherence stores", s.Size)
		}
		status := "not duplicated"
		if s.Duplicated {
			status = "duplicated"
		}
		fmt.Fprintf(&sb, "  %-16s %s (%s)\n", s.Name, note, status)
	}
	if len(marks) > 0 && res.Mode == alloc.CB {
		sb.WriteString("  hint: compile with partial duplication (mode dup) or run the\n")
		sb.WriteString("  selective refinement (dspbench -selective) to weigh these.\n")
	}

	writeStats(&sb, c)
	return sb.String()
}

func writeStats(sb *strings.Builder, c *pipeline.Compiled) {
	st := c.Sched.StaticStats()
	sb.WriteString("\nStatic schedule utilization:\n")
	fmt.Fprintf(sb, "  %d long instructions, %.2f ops each\n", st.Instrs, st.OpsPerInstr())
	fmt.Fprintf(sb, "  %d memory instructions, %d dual-access (%.0f%% of memory traffic paired)\n",
		st.MemInstrs, st.DualMemInstrs, 100*st.DualMemRatio())
}
