// Package compact implements the operation-compaction pass: the
// list-scheduling algorithm (based on local microcode compaction) that
// packs independent machine operations into VLIW long instructions,
// honouring functional-unit capacities and the memory-unit/bank binding
// established by the data allocation pass. It is the same algorithm the
// interference-graph builder dry-runs (Figure 3), now with both memory
// units usable because every memory operation carries a bank tag.
package compact

import (
	"fmt"

	"dualbank/internal/ddg"
	"dualbank/internal/ir"
	"dualbank/internal/machine"
)

// Instr is one VLIW long instruction: at most one operation per
// functional unit, all executing in a single cycle with operands read
// before results are written.
type Instr struct {
	Slots [machine.NumUnits]*ir.Op
}

// Ops returns the instruction's operations in unit order.
func (in *Instr) Ops() []*ir.Op {
	var out []*ir.Op
	for _, op := range in.Slots {
		if op != nil {
			out = append(out, op)
		}
	}
	return out
}

// Count returns the number of occupied slots.
func (in *Instr) Count() int {
	n := 0
	for _, op := range in.Slots {
		if op != nil {
			n++
		}
	}
	return n
}

// Block is a scheduled basic block.
type Block struct {
	Src    *ir.Block
	Instrs []*Instr
}

// Func is a scheduled function.
type Func struct {
	Src    *ir.Func
	Blocks []*Block // indexed by ir block ID
}

// Program is a fully scheduled program, the input to the simulator and
// the assembly printer.
type Program struct {
	Src   *ir.Program
	Funcs map[string]*Func
	Ports machine.PortModel
}

// StaticInstrs returns the total number of long instructions in the
// program — the instruction-memory size I in the cost model (the paper
// assumes one word per instruction).
func (p *Program) StaticInstrs() int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}

// Config parameterises scheduling.
type Config struct {
	// Ports is the memory port model: banked (MU0=X, MU1=Y) or
	// dual-ported (Ideal).
	Ports machine.PortModel
}

// Schedule compacts every block of every function.
func Schedule(p *ir.Program, cfg Config) (*Program, error) {
	out := &Program{Src: p, Funcs: make(map[string]*Func, len(p.Funcs)), Ports: cfg.Ports}
	for _, f := range p.Funcs {
		sf := &Func{Src: f}
		for _, b := range f.Blocks {
			sb, err := scheduleBlock(b, cfg)
			if err != nil {
				return nil, fmt.Errorf("compact %s %s: %w", f.Name, b, err)
			}
			sf.Blocks = append(sf.Blocks, sb)
		}
		out.Funcs[f.Name] = sf
	}
	return out, nil
}

// unitsFor lists the functional units that may execute op, most
// preferred first.
func unitsFor(op *ir.Op, ports machine.PortModel) []machine.Unit {
	cls := op.Kind.Class()
	if cls != machine.ClassMemory {
		return machine.UnitsOf(cls)
	}
	return ports.UnitsForBank(op.Bank)
}

func scheduleBlock(b *ir.Block, cfg Config) (*Block, error) {
	g := ddg.Build(b)
	n := len(g.Ops)
	sb := &Block{Src: b}
	if n == 0 {
		return sb, nil
	}
	scheduled := make([]bool, n)
	cycleOf := make([]int, n)
	for i := range cycleOf {
		cycleOf[i] = -1
	}
	pairIndex := make(map[*ir.Op]int, n)
	for i, op := range g.Ops {
		pairIndex[op] = i
	}
	remaining := n

	drs := make([]int, 0, n)
	for cycle := 0; remaining > 0; cycle++ {
		instr := &Instr{}
		remBefore := remaining

		compatible := func(i int) bool {
			for _, e := range g.Pred[i] {
				if e.Strict && cycleOf[e.To] == cycle {
					return false
				}
			}
			return true
		}
		place := func(i int) bool {
			for _, u := range unitsFor(g.Ops[i], cfg.Ports) {
				if instr.Slots[u] == nil {
					instr.Slots[u] = g.Ops[i]
					scheduled[i] = true
					cycleOf[i] = cycle
					remaining--
					return true
				}
			}
			return false
		}

		// Fill the instruction to a fixed point: scheduling an
		// operation can make its anti-dependent successors data-ready
		// within the same cycle (operands are read before results are
		// written), so the data-ready set is recalculated until the
		// instruction stops growing.
		for {
			drs = drs[:0]
			for i := 0; i < n; i++ {
				if scheduled[i] {
					continue
				}
				ready := true
				for _, e := range g.Pred[i] {
					if !scheduled[e.To] {
						ready = false
						break
					}
				}
				if ready {
					drs = append(drs, i)
				}
			}
			insertionSortByPriority(drs, g.Priority)
			inDRS := make(map[int]bool, len(drs))
			for _, i := range drs {
				inDRS[i] = true
			}

			placed := false
			for _, i := range drs {
				if scheduled[i] || !compatible(i) {
					continue
				}
				op := g.Ops[i]
				// Atomic duplicated-store pairs must commit in the same
				// instruction: schedule both or neither.
				if op.Atomic && op.DupPair != nil {
					j, ok := pairIndex[op.DupPair]
					if !ok || scheduled[j] || !inDRS[j] || !compatible(j) {
						continue
					}
					if place(i) {
						if place(j) {
							placed = true
						} else {
							// Undo: both halves wait for the next cycle.
							for u := range instr.Slots {
								if instr.Slots[u] == op {
									instr.Slots[u] = nil
								}
							}
							scheduled[i] = false
							cycleOf[i] = -1
							remaining++
						}
					}
					continue
				}
				if place(i) {
					placed = true
				}
			}
			if !placed {
				break
			}
		}
		if remaining == remBefore {
			return nil, fmt.Errorf("scheduler made no progress at cycle %d", cycle)
		}
		sb.Instrs = append(sb.Instrs, instr)
	}
	return sb, nil
}

// insertionSortByPriority sorts indices by descending priority, ties by
// ascending index (stable program order).
func insertionSortByPriority(idx []int, prio []int) {
	for i := 1; i < len(idx); i++ {
		v := idx[i]
		j := i - 1
		for j >= 0 && (prio[idx[j]] < prio[v] || (prio[idx[j]] == prio[v] && idx[j] > v)) {
			idx[j+1] = idx[j]
			j--
		}
		idx[j+1] = v
	}
}

// Validate checks that the schedule respects all dependences and unit
// constraints; tests run it over every compiled benchmark.
func Validate(p *Program) error {
	for name, f := range p.Funcs {
		for _, sb := range f.Blocks {
			cycle := make(map[*ir.Op]int)
			for c, in := range sb.Instrs {
				for u, op := range in.Slots {
					if op == nil {
						continue
					}
					cycle[op] = c
					cls := op.Kind.Class()
					okUnit := false
					for _, au := range unitsFor(op, p.Ports) {
						if machine.Unit(u) == au {
							okUnit = true
						}
					}
					if !okUnit {
						return fmt.Errorf("%s: op %s of class %s on unit %s", name, op, cls, machine.Unit(u))
					}
				}
			}
			// Every op scheduled exactly once.
			if len(cycle) != len(sb.Src.Ops) {
				return fmt.Errorf("%s %s: %d ops scheduled, want %d", name, sb.Src, len(cycle), len(sb.Src.Ops))
			}
			g := ddg.Build(sb.Src)
			for i, op := range g.Ops {
				for _, e := range g.Succ[i] {
					to := g.Ops[e.To]
					if e.Strict && cycle[to] <= cycle[op] {
						return fmt.Errorf("%s: strict dependence violated: %s -> %s", name, op, to)
					}
					if !e.Strict && cycle[to] < cycle[op] {
						return fmt.Errorf("%s: anti dependence violated: %s -> %s", name, op, to)
					}
				}
			}
			// Atomic pairs share an instruction.
			for op, c := range cycle {
				if op.Atomic && op.DupPair != nil && cycle[op.DupPair] != c {
					return fmt.Errorf("%s: atomic pair split across instructions", name)
				}
			}
		}
	}
	return nil
}
