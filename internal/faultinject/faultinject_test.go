package faultinject

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestParseProfileRoundTrip(t *testing.T) {
	in := "seed=7,ioerr=0.05,latency=0.02,latency-ms=10,partial=0.02,compute=0.05,starve=0.01,starve-ms=50,store-failafter=20"
	p, err := ParseProfile(in)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.IOError != 0.05 || p.Latency != 0.02 ||
		p.LatencyDur != 10*time.Millisecond || p.PartialWrite != 0.02 ||
		p.ComputeError != 0.05 || p.Starve != 0.01 ||
		p.StarveDur != 50*time.Millisecond || p.StoreFailAfter != 20 {
		t.Fatalf("parsed %+v", p)
	}
	back, err := ParseProfile(p.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", p.String(), err)
	}
	if back != p {
		t.Fatalf("round trip drifted: %+v vs %+v", back, p)
	}
}

func TestParseProfileZeroAndSpaces(t *testing.T) {
	p, err := ParseProfile(" ")
	if err != nil || !p.Zero() {
		t.Fatalf("blank profile: %+v, %v", p, err)
	}
	p, err = ParseProfile("ioerr=0.5, latency=1")
	if err != nil || p.IOError != 0.5 || p.Latency != 1 {
		t.Fatalf("spaced profile: %+v, %v", p, err)
	}
}

func TestParseProfileRejects(t *testing.T) {
	for _, s := range []string{
		"wat=1", "ioerr", "ioerr=1.5", "ioerr=-0.1", "ioerr=x",
		"latency-ms=-5", "latency-ms=x", "store-failafter=-1",
		"store-failafter=x", "seed=zz",
	} {
		if _, err := ParseProfile(s); err == nil {
			t.Errorf("ParseProfile(%q) accepted", s)
		}
	}
}

// TestDeterministicCounts is the injector's core contract: over N
// opportunities a class with probability p fires floor(N*p) or
// floor(N*p)+1 times, regardless of seed.
func TestDeterministicCounts(t *testing.T) {
	const n = 1000
	for _, seed := range []int64{0, 1, 2, 42} {
		inj := New(Profile{Seed: seed, ComputeError: 0.05})
		faults := 0
		for i := 0; i < n; i++ {
			if inj.Compute("op") != nil {
				faults++
			}
		}
		if faults != 50 && faults != 51 {
			t.Errorf("seed %d: %d faults over %d ops at p=0.05, want 50 or 51", seed, faults, n)
		}
		st := inj.Stats()
		if st.ComputeOps != n || st.ComputeFaults != int64(faults) {
			t.Errorf("seed %d: stats %+v disagree with observed %d/%d", seed, st, faults, n)
		}
	}
}

// TestSeedShiftsPhase checks distinct seeds fault different
// opportunities at the same rate.
func TestSeedShiftsPhase(t *testing.T) {
	pattern := func(seed int64) []bool {
		inj := New(Profile{Seed: seed, ComputeError: 0.1})
		out := make([]bool, 100)
		for i := range out {
			out[i] = inj.Compute("op") != nil
		}
		return out
	}
	a, b := pattern(1), pattern(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical fault patterns")
	}
}

// TestCountsConcurrencyInvariant: total fault counts must not depend
// on goroutine interleaving.
func TestCountsConcurrencyInvariant(t *testing.T) {
	inj := New(Profile{Seed: 3, ComputeError: 0.2})
	var wg sync.WaitGroup
	var mu sync.Mutex
	faults := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for i := 0; i < 125; i++ {
				if inj.Compute("op") != nil {
					local++
				}
			}
			mu.Lock()
			faults += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if faults != 200 && faults != 201 {
		t.Errorf("%d faults over 1000 concurrent ops at p=0.2, want 200 or 201", faults)
	}
}

func TestInjectedErrorIdentity(t *testing.T) {
	inj := New(Profile{ComputeError: 1})
	err := inj.Compute("measure")
	if err == nil {
		t.Fatal("p=1 compute injected nothing")
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("injected error %v is not ErrInjected", err)
	}
	var tr interface{ Transient() bool }
	if !errors.As(err, &tr) || !tr.Transient() {
		t.Errorf("injected error %v is not transient", err)
	}
}

func TestStoreFailAfter(t *testing.T) {
	inj := New(Profile{StoreFailAfter: 3})
	for i := 1; i <= 5; i++ {
		_, err := inj.FSOp("write", true)
		if i < 3 && err != nil {
			t.Errorf("write %d failed early: %v", i, err)
		}
		if i >= 3 && err == nil {
			t.Errorf("write %d succeeded past failafter=3", i)
		}
	}
	// Reads stay unaffected.
	if _, err := inj.FSOp("read", false); err != nil {
		t.Errorf("read failed under store-failafter: %v", err)
	}
}

func TestFaultFSTornWrite(t *testing.T) {
	dir := t.TempDir()
	inj := New(Profile{PartialWrite: 1})
	ffs := NewFaultFS(OSFS{}, inj)
	f, err := ffs.CreateTemp(dir, "x*")
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if err == nil {
		t.Fatal("p=1 partial write reported success")
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("torn write error %v is not ErrInjected", err)
	}
	if n != 5 {
		t.Errorf("torn write reported %d bytes, want 5", n)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "01234" {
		t.Errorf("torn file holds %q, want the 5-byte prefix", data)
	}
}

func TestFaultFSIOError(t *testing.T) {
	dir := t.TempDir()
	inj := New(Profile{IOError: 1})
	ffs := NewFaultFS(OSFS{}, inj)
	if _, err := ffs.ReadDir(dir); !errors.Is(err, ErrInjected) {
		t.Errorf("ReadDir under p=1: %v", err)
	}
	if _, err := ffs.CreateTemp(dir, "x*"); !errors.Is(err, ErrInjected) {
		t.Errorf("CreateTemp under p=1: %v", err)
	}
	if err := ffs.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); !errors.Is(err, ErrInjected) {
		t.Errorf("Rename under p=1: %v", err)
	}
	if st := inj.Stats(); st.IOFaults < 3 {
		t.Errorf("stats recorded %d io faults, want >=3: %+v", st.IOFaults, st)
	}
}

// TestFaultFSCleanPassThrough: a zero profile must behave exactly like
// the OS filesystem.
func TestFaultFSCleanPassThrough(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OSFS{}, New(Profile{}))
	f, err := ffs.CreateTemp(dir, "t*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "final")
	if err := ffs.Rename(f.Name(), dst); err != nil {
		t.Fatal(err)
	}
	data, err := ffs.ReadFile(dst)
	if err != nil || string(data) != "hello" {
		t.Fatalf("read back %q, %v", data, err)
	}
	ents, err := ffs.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir: %d entries, %v", len(ents), err)
	}
	if err := ffs.Remove(dst); err != nil {
		t.Fatal(err)
	}
	if err := ffs.MkdirAll(filepath.Join(dir, "sub/dir"), 0o755); err != nil {
		t.Fatal(err)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{IOFaults: 2, ComputeFaults: 5}
	out := s.String()
	for _, want := range []string{"compute=5", "io=2", "starve=0"} {
		if !contains(out, want) {
			t.Errorf("Stats.String() = %q missing %q", out, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
