package cluster

import (
	"sort"
	"sync"
	"time"
)

// hotTracker finds the hottest keys of the recent past: every request
// bumps its key's count in the current window, and at each window
// rotation the top K keys that cleared the threshold become the hot
// set, served by any replica instead of only the owner. The previous
// window's set stays in force while the current one fills, so hotness
// survives rotation instead of flickering off every window boundary.
type hotTracker struct {
	k         int
	threshold int
	window    time.Duration

	mu      sync.Mutex
	counts  map[string]int
	hot     map[string]bool
	rotated time.Time
}

func newHotTracker(k, threshold int, window time.Duration) *hotTracker {
	if k < 1 {
		k = 16
	}
	if threshold < 1 {
		threshold = 8
	}
	if window <= 0 {
		window = 2 * time.Second
	}
	return &hotTracker{
		k: k, threshold: threshold, window: window,
		counts:  make(map[string]int),
		hot:     make(map[string]bool),
		rotated: time.Now(),
	}
}

// Observe counts one request for key and reports whether the key is
// currently hot. A key that clears the threshold mid-window while the
// hot set has room is promoted immediately — a flash crowd should not
// have to wait out the window before replicas start absorbing it.
func (t *hotTracker) Observe(key string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if now := time.Now(); now.Sub(t.rotated) >= t.window {
		t.rotate(now)
	}
	t.counts[key]++
	if !t.hot[key] && t.counts[key] >= t.threshold && len(t.hot) < t.k {
		t.hot[key] = true
	}
	return t.hot[key]
}

// rotate rebuilds the hot set from the finished window: the top K keys
// above the threshold, ties broken by key so every node converges on
// the same set given the same traffic. Caller holds t.mu.
func (t *hotTracker) rotate(now time.Time) {
	type kc struct {
		key string
		n   int
	}
	cleared := make([]kc, 0, len(t.counts))
	for k, n := range t.counts {
		if n >= t.threshold {
			cleared = append(cleared, kc{k, n})
		}
	}
	sort.Slice(cleared, func(i, j int) bool {
		if cleared[i].n != cleared[j].n {
			return cleared[i].n > cleared[j].n
		}
		return cleared[i].key < cleared[j].key
	})
	if len(cleared) > t.k {
		cleared = cleared[:t.k]
	}
	t.hot = make(map[string]bool, len(cleared))
	for _, c := range cleared {
		t.hot[c.key] = true
	}
	t.counts = make(map[string]int)
	t.rotated = now
}

// HotCount returns the current hot-set size.
func (t *hotTracker) HotCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.hot)
}
