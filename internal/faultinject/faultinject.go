// Package faultinject is a deterministic, seed-driven fault-injection
// layer for the serving and checkpointing stack. It wraps the three
// resources the robustness tests stress — the filesystem beneath the
// explore checkpoint store, the experiment harness's memo-cache
// computations, and the serve worker pool — and injects I/O errors,
// latency spikes, partial writes, and pool-slot starvation at
// configured rates.
//
// Injection decisions are quasi-random but count-deterministic: each
// fault class keeps an accumulator that gains its probability per
// opportunity and fires whenever it crosses one, with a seed-derived
// starting phase. Over N opportunities a class with probability p
// injects floor(N*p)±1 faults no matter how the opportunities
// interleave across goroutines — so a chaos run can assert on fault
// counts, not just tolerate whatever a PRNG happened to produce.
//
// The package has no hooks into production paths unless explicitly
// wired in: an Injector reaches the server only through
// serve.Config.Fault, the harness only through bench.Harness.Intercept,
// and the store only through store.OpenFS, all of which default to the
// fault-free implementations.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the sentinel all injected faults wrap; errors.Is
// distinguishes an injected fault from a real failure.
var ErrInjected = errors.New("injected fault")

// Error is one injected fault. It unwraps to ErrInjected and reports
// itself transient, which the harness memo cache uses to avoid caching
// it as if it were a deterministic compile failure.
type Error struct {
	// Class is the fault class ("io", "compute", ...); Op is the
	// operation it fired on.
	Class, Op string
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected %s fault on %s", e.Class, e.Op)
}

// Unwrap ties the error to the ErrInjected sentinel.
func (e *Error) Unwrap() error { return ErrInjected }

// Transient reports that retrying the operation may succeed. The
// harness checks for this method structurally, so packages that never
// import faultinject still handle injected faults correctly.
func (e *Error) Transient() bool { return true }

// Profile configures an Injector. All probabilities are per
// opportunity, in [0, 1]; zero disables the class. The zero Profile
// injects nothing.
type Profile struct {
	// Seed derives each class's accumulator phase, so distinct seeds
	// fault different operations at the same rates.
	Seed int64

	// IOError is the probability an FS operation fails with an
	// injected *Error before touching the disk.
	IOError float64
	// Latency is the probability an FS operation or a pool execution
	// stalls for LatencyDur first.
	Latency float64
	// LatencyDur is the injected stall (default 10ms).
	LatencyDur time.Duration
	// PartialWrite is the probability a file write persists only a
	// prefix and then fails — the torn write an atomic store must
	// tolerate.
	PartialWrite float64
	// ComputeError is the probability a memo-cache computation fails
	// with an injected transient *Error.
	ComputeError float64
	// Starve is the probability a pool execution holds its worker slot
	// idle for StarveDur before running — a pool-starvation burst.
	Starve float64
	// StarveDur is the injected slot hold (default 50ms).
	StarveDur time.Duration
	// StoreFailAfter, when positive, fails every FS write operation
	// after the first StoreFailAfter-1 — the disk filling up (or going
	// read-only) partway through a run, deterministically.
	StoreFailAfter int
}

// Zero reports whether the profile injects nothing.
func (p Profile) Zero() bool {
	return p.IOError == 0 && p.Latency == 0 && p.PartialWrite == 0 &&
		p.ComputeError == 0 && p.Starve == 0 && p.StoreFailAfter == 0
}

// String renders the profile in ParseProfile's syntax.
func (p Profile) String() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	if p.Seed != 0 {
		add("seed", strconv.FormatInt(p.Seed, 10))
	}
	if p.IOError != 0 {
		add("ioerr", f(p.IOError))
	}
	if p.Latency != 0 {
		add("latency", f(p.Latency))
	}
	if p.LatencyDur != 0 {
		add("latency-ms", strconv.FormatInt(p.LatencyDur.Milliseconds(), 10))
	}
	if p.PartialWrite != 0 {
		add("partial", f(p.PartialWrite))
	}
	if p.ComputeError != 0 {
		add("compute", f(p.ComputeError))
	}
	if p.Starve != 0 {
		add("starve", f(p.Starve))
	}
	if p.StarveDur != 0 {
		add("starve-ms", strconv.FormatInt(p.StarveDur.Milliseconds(), 10))
	}
	if p.StoreFailAfter != 0 {
		add("store-failafter", strconv.Itoa(p.StoreFailAfter))
	}
	return strings.Join(parts, ",")
}

// ParseProfile parses a comma-separated key=value profile:
//
//	seed=7,ioerr=0.05,latency=0.02,latency-ms=10,partial=0.02,
//	compute=0.05,starve=0.01,starve-ms=50,store-failafter=20
//
// Unknown keys, malformed values, and probabilities outside [0, 1] are
// errors; an empty string is the zero profile.
func ParseProfile(s string) (Profile, error) {
	var p Profile
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	for _, field := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return Profile{}, fmt.Errorf("faultinject: %q is not key=value", field)
		}
		prob := func(dst *float64) error {
			x, err := strconv.ParseFloat(v, 64)
			if err != nil || x < 0 || x > 1 {
				return fmt.Errorf("faultinject: %s=%q: want a probability in [0,1]", k, v)
			}
			*dst = x
			return nil
		}
		ms := func(dst *time.Duration) error {
			x, err := strconv.ParseInt(v, 10, 64)
			if err != nil || x < 0 {
				return fmt.Errorf("faultinject: %s=%q: want non-negative milliseconds", k, v)
			}
			*dst = time.Duration(x) * time.Millisecond
			return nil
		}
		var err error
		switch k {
		case "seed":
			p.Seed, err = strconv.ParseInt(v, 10, 64)
			if err != nil {
				err = fmt.Errorf("faultinject: seed=%q: %v", v, err)
			}
		case "ioerr":
			err = prob(&p.IOError)
		case "latency":
			err = prob(&p.Latency)
		case "latency-ms":
			err = ms(&p.LatencyDur)
		case "partial":
			err = prob(&p.PartialWrite)
		case "compute":
			err = prob(&p.ComputeError)
		case "starve":
			err = prob(&p.Starve)
		case "starve-ms":
			err = ms(&p.StarveDur)
		case "store-failafter":
			p.StoreFailAfter, err = strconv.Atoi(v)
			if err != nil || p.StoreFailAfter < 0 {
				err = fmt.Errorf("faultinject: store-failafter=%q: want a non-negative count", v)
			}
		default:
			err = fmt.Errorf("faultinject: unknown profile key %q", k)
		}
		if err != nil {
			return Profile{}, err
		}
	}
	return p, nil
}

// class is one fault class's deterministic trigger: the accumulator
// gains p per opportunity and fires on crossing 1.
type class struct {
	p    float64
	acc  float64
	ops  int64 // opportunities seen
	hits int64 // faults injected
}

// fire consumes one opportunity and reports whether the fault triggers.
func (c *class) fire() bool {
	c.ops++
	if c.p <= 0 {
		return false
	}
	c.acc += c.p
	if c.acc >= 1 {
		c.acc--
		c.hits++
		return true
	}
	return false
}

// Injector makes seed-deterministic fault decisions. It is safe for
// concurrent use; decisions are serialized, so total fault counts
// depend only on how many opportunities each class sees, never on
// goroutine interleaving.
type Injector struct {
	profile Profile

	mu       sync.Mutex
	io       class
	latency  class
	partial  class
	compute  class
	starve   class
	writes   int64 // FS write operations seen, for StoreFailAfter
	failHits int64 // StoreFailAfter faults injected
}

// New builds an Injector for the profile. Durations get defaults
// (10ms latency, 50ms starvation) when the profile enables the class
// but leaves its duration zero.
func New(p Profile) *Injector {
	if p.LatencyDur <= 0 {
		p.LatencyDur = 10 * time.Millisecond
	}
	if p.StarveDur <= 0 {
		p.StarveDur = 50 * time.Millisecond
	}
	inj := &Injector{profile: p}
	// Seed each class's accumulator phase so different seeds shift
	// which opportunities fault while keeping the totals fixed.
	rng := rand.New(rand.NewSource(p.Seed))
	for _, c := range []*class{&inj.io, &inj.latency, &inj.partial, &inj.compute, &inj.starve} {
		c.acc = rng.Float64()
	}
	inj.io.p = p.IOError
	inj.latency.p = p.Latency
	inj.partial.p = p.PartialWrite
	inj.compute.p = p.ComputeError
	inj.starve.p = p.Starve
	return inj
}

// Profile returns the injector's configuration.
func (inj *Injector) Profile() Profile { return inj.profile }

// FSOp gives the injector one filesystem-operation opportunity.
// It returns the injected delay to apply (0 for none) and the injected
// error (nil for none). write marks mutating operations, which are
// additionally subject to StoreFailAfter.
func (inj *Injector) FSOp(op string, write bool) (time.Duration, error) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var d time.Duration
	if inj.latency.fire() {
		d = inj.profile.LatencyDur
	}
	if write {
		inj.writes++
		if n := int64(inj.profile.StoreFailAfter); n > 0 && inj.writes >= n {
			inj.failHits++
			return d, &Error{Class: "io", Op: op}
		}
	}
	if inj.io.fire() {
		return d, &Error{Class: "io", Op: op}
	}
	return d, nil
}

// WriteLen gives the injector one partial-write opportunity for an
// n-byte write: it returns how many bytes to persist and whether the
// write must then fail as torn.
func (inj *Injector) WriteLen(n int) (int, bool) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if !inj.partial.fire() {
		return n, false
	}
	// Persist a deterministic strict prefix: torn exactly in half,
	// rounding down, so even 1-byte writes lose everything.
	return n / 2, true
}

// Compute gives the injector one memo-cache computation opportunity
// and returns the transient error to fail it with, or nil.
func (inj *Injector) Compute(op string) error {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.compute.fire() {
		return &Error{Class: "compute", Op: op}
	}
	return nil
}

// ExecDelay gives the injector one pool-execution opportunity and
// returns how long the worker slot should stall before running the
// job: StarveDur for a starvation burst, LatencyDur for a latency
// spike, 0 for neither (starvation wins when both fire).
func (inj *Injector) ExecDelay() time.Duration {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var d time.Duration
	if inj.latency.fire() {
		d = inj.profile.LatencyDur
	}
	if inj.starve.fire() {
		d = inj.profile.StarveDur
	}
	return d
}

// Stats is a snapshot of the injector's traffic: per-class
// opportunities seen and faults injected.
type Stats struct {
	IOOps, IOFaults           int64
	LatencyFaults             int64
	PartialFaults             int64
	ComputeOps, ComputeFaults int64
	ExecOps, ExecFaults       int64
	WriteOps, FailAfterFaults int64
}

// Stats returns the current counters.
func (inj *Injector) Stats() Stats {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return Stats{
		IOOps: inj.io.ops, IOFaults: inj.io.hits,
		LatencyFaults: inj.latency.hits,
		PartialFaults: inj.partial.hits,
		ComputeOps:    inj.compute.ops, ComputeFaults: inj.compute.hits,
		ExecOps: inj.starve.ops, ExecFaults: inj.starve.hits,
		WriteOps: inj.writes, FailAfterFaults: inj.failHits,
	}
}

// String renders the stats compactly for logs.
func (s Stats) String() string {
	type kv struct {
		k string
		v int64
	}
	pairs := []kv{
		{"io", s.IOFaults}, {"latency", s.LatencyFaults},
		{"partial", s.PartialFaults}, {"compute", s.ComputeFaults},
		{"starve", s.ExecFaults}, {"failafter", s.FailAfterFaults},
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].v > pairs[j].v })
	parts := make([]string, len(pairs))
	for i, p := range pairs {
		parts[i] = fmt.Sprintf("%s=%d", p.k, p.v)
	}
	return strings.Join(parts, " ")
}
