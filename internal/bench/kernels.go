package bench

import (
	"fmt"
	"math"
	"strings"
)

// This file implements the twelve DSP kernels of Table 1. Each kernel
// follows the memory-access shape the paper describes: most pair
// accesses across distinct arrays (so CB partitioning reaches the
// dual-ported ideal), while iir_N_M deliberately reads two elements of
// its single state array per section — the access pattern that keeps
// CB slightly below Ideal for iir_4_64 in Figure 7.

// FIR builds fir_<taps>_<samples>: an N-tap finite impulse response
// filter over M output samples (Figure 1 of the paper).
func FIR(taps, samples int) Program {
	rng := newPRNG(uint32(taps*31 + samples))
	x := randFloats(rng, taps+samples)
	h := randFloats(rng, taps)

	want := make([]float32, samples)
	for n := 0; n < samples; n++ {
		var acc float32
		for k := 0; k < taps; k++ {
			acc += h[k] * x[n+k]
		}
		want[n] = acc
	}

	var sb strings.Builder
	sb.WriteString(floatsDecl("x", x))
	sb.WriteString(floatsDecl("h", h))
	fmt.Fprintf(&sb, "float y[%d];\n", samples)
	fmt.Fprintf(&sb, `
void main() {
	int n;
	int k;
	for (n = 0; n < %d; n++) {
		float acc = 0.0;
		for (k = 0; k < %d; k++) {
			acc += h[k] * x[n + k];
		}
		y[n] = acc;
	}
}
`, samples, taps)

	return Program{
		Name:   fmt.Sprintf("fir_%d_%d", taps, samples),
		Desc:   fmt.Sprintf("Finite impulse response (FIR) filter, %d taps over %d samples", taps, samples),
		Kind:   Kernel,
		Source: sb.String(),
		Check:  func(r Reader) error { return checkF32s(r, "y", want, 1e-4) },
	}
}

// IIR builds iir_<sections>_<samples>: a cascade of direct-form-II
// biquad sections. The two delay elements of each section live in one
// state array (d[2s], d[2s+1]), giving the simultaneous same-array
// accesses that keep CB partitioning just below Ideal.
func IIR(sections, samples int) Program {
	rng := newPRNG(uint32(sections*77 + samples))
	x := randFloats(rng, samples)
	b0 := make([]float32, sections)
	b1 := make([]float32, sections)
	b2 := make([]float32, sections)
	a1 := make([]float32, sections)
	a2 := make([]float32, sections)
	for s := 0; s < sections; s++ {
		b0[s] = 0.2 + 0.05*float32(s)
		b1[s] = 0.1
		b2[s] = 0.05
		a1[s] = -0.3 + 0.02*float32(s) // stable poles
		a2[s] = 0.1
	}

	d := make([]float32, 2*sections)
	want := make([]float32, samples)
	for n := 0; n < samples; n++ {
		in := x[n]
		for s := 0; s < sections; s++ {
			w := in - a1[s]*d[2*s] - a2[s]*d[2*s+1]
			out := b0[s]*w + b1[s]*d[2*s] + b2[s]*d[2*s+1]
			d[2*s+1] = d[2*s]
			d[2*s] = w
			in = out
		}
		want[n] = in
	}

	var sb strings.Builder
	sb.WriteString(floatsDecl("x", x))
	sb.WriteString(floatsDecl("b0", b0))
	sb.WriteString(floatsDecl("b1", b1))
	sb.WriteString(floatsDecl("b2", b2))
	sb.WriteString(floatsDecl("a1", a1))
	sb.WriteString(floatsDecl("a2", a2))
	if sections == 1 {
		// A single biquad is naturally written with scalar delay state
		// (register-resident), which is why the paper's iir_1_1 reaches
		// the dual-ported ideal under CB partitioning while the
		// cascaded iir_4_64, whose sections share one delay array, does
		// not.
		fmt.Fprintf(&sb, "float y[%d];\n", samples)
		fmt.Fprintf(&sb, `
void main() {
	int n;
	float d0 = 0.0;
	float d1 = 0.0;
	for (n = 0; n < %d; n++) {
		float w = x[n] - a1[0] * d0 - a2[0] * d1;
		float out = b0[0] * w + b1[0] * d0 + b2[0] * d1;
		d1 = d0;
		d0 = w;
		y[n] = out;
	}
}
`, samples)
	} else {
		fmt.Fprintf(&sb, "float d[%d];\nfloat y[%d];\n", 2*sections, samples)
		fmt.Fprintf(&sb, `
void main() {
	int n;
	int s;
	for (n = 0; n < %d; n++) {
		float in = x[n];
		for (s = 0; s < %d; s++) {
			float w = in - a1[s] * d[2*s] - a2[s] * d[2*s + 1];
			float out = b0[s] * w + b1[s] * d[2*s] + b2[s] * d[2*s + 1];
			d[2*s + 1] = d[2*s];
			d[2*s] = w;
			in = out;
		}
		y[n] = in;
	}
}
`, samples, sections)
	}

	return Program{
		Name:   fmt.Sprintf("iir_%d_%d", sections, samples),
		Desc:   fmt.Sprintf("Infinite impulse response (IIR) filter, %d biquad section(s) over %d samples", sections, samples),
		Kind:   Kernel,
		Source: sb.String(),
		Check:  func(r Reader) error { return checkF32s(r, "y", want, 1e-3) },
	}
}

// Latnrm builds latnrm_<order>_<samples>: a normalized lattice filter
// with per-section reflection coefficient pairs and a weighted output
// tap sum.
func Latnrm(order, samples int) Program {
	rng := newPRNG(uint32(order*13 + samples))
	x := randFloats(rng, samples)
	k1 := make([]float32, order)
	k2 := make([]float32, order)
	c := make([]float32, order)
	for m := 0; m < order; m++ {
		k1[m] = 0.3 * rng.f32()
		k2[m] = 0.3 * rng.f32()
		c[m] = rng.f32()
	}

	b := make([]float32, order)
	want := make([]float32, samples)
	for n := 0; n < samples; n++ {
		f := x[n]
		for m := 0; m < order; m++ {
			bm := b[m]
			fn := f + k1[m]*bm
			b[m] = bm + k2[m]*f
			f = fn
		}
		var acc float32
		for m := 0; m < order; m++ {
			acc += c[m] * b[m]
		}
		want[n] = acc + f
	}

	var sb strings.Builder
	sb.WriteString(floatsDecl("x", x))
	sb.WriteString(floatsDecl("k1", k1))
	sb.WriteString(floatsDecl("k2", k2))
	sb.WriteString(floatsDecl("c", c))
	fmt.Fprintf(&sb, "float b[%d];\nfloat y[%d];\n", order, samples)
	fmt.Fprintf(&sb, `
void main() {
	int n;
	int m;
	for (n = 0; n < %d; n++) {
		float f = x[n];
		for (m = 0; m < %d; m++) {
			float bm = b[m];
			float fn = f + k1[m] * bm;
			b[m] = bm + k2[m] * f;
			f = fn;
		}
		float acc = 0.0;
		for (m = 0; m < %d; m++) {
			acc += c[m] * b[m];
		}
		y[n] = acc + f;
	}
}
`, samples, order, order)

	return Program{
		Name:   fmt.Sprintf("latnrm_%d_%d", order, samples),
		Desc:   fmt.Sprintf("Normalized lattice filter, order %d over %d samples", order, samples),
		Kind:   Kernel,
		Source: sb.String(),
		Check:  func(r Reader) error { return checkF32s(r, "y", want, 1e-3) },
	}
}

// LMSFIR builds lmsfir_<taps>_<samples>: a least-mean-squares adaptive
// FIR filter — an N-tap FIR plus a coefficient-update sweep against a
// desired signal.
func LMSFIR(taps, samples int) Program {
	rng := newPRNG(uint32(taps*7 + samples*3))
	x := randFloats(rng, taps+samples)
	d := randFloats(rng, samples)
	const mu = float32(0.02)

	h := make([]float32, taps)
	want := make([]float32, samples)
	for n := 0; n < samples; n++ {
		var acc float32
		for k := 0; k < taps; k++ {
			acc += h[k] * x[n+k]
		}
		want[n] = acc
		e := mu * (d[n] - acc)
		for k := 0; k < taps; k++ {
			h[k] = h[k] + e*x[n+k]
		}
	}

	var sb strings.Builder
	sb.WriteString(floatsDecl("x", x))
	sb.WriteString(floatsDecl("d", d))
	fmt.Fprintf(&sb, "float h[%d];\nfloat y[%d];\n", taps, samples)
	fmt.Fprintf(&sb, `
void main() {
	int n;
	int k;
	for (n = 0; n < %d; n++) {
		float acc = 0.0;
		for (k = 0; k < %d; k++) {
			acc += h[k] * x[n + k];
		}
		y[n] = acc;
		float e = %s * (d[n] - acc);
		for (k = 0; k < %d; k++) {
			h[k] = h[k] + e * x[n + k];
		}
	}
}
`, samples, taps, fmtF(mu), taps)

	return Program{
		Name:   fmt.Sprintf("lmsfir_%d_%d", taps, samples),
		Desc:   fmt.Sprintf("Least-mean-squares (LMS) adaptive FIR filter, %d taps over %d samples", taps, samples),
		Kind:   Kernel,
		Source: sb.String(),
		Check:  func(r Reader) error { return checkF32s(r, "y", want, 1e-3) },
	}
}

// MatMult builds mult_<n>_<n>: dense n-by-n matrix multiplication.
func MatMult(n int) Program {
	rng := newPRNG(uint32(n * 101))
	a := randFloats(rng, n*n)
	b := randFloats(rng, n*n)

	want := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for k := 0; k < n; k++ {
				acc += a[i*n+k] * b[k*n+j]
			}
			want[i*n+j] = acc
		}
	}

	var sb strings.Builder
	sb.WriteString(floats2Decl("A", a, n, n))
	sb.WriteString(floats2Decl("B", b, n, n))
	fmt.Fprintf(&sb, "float C[%d][%d];\n", n, n)
	fmt.Fprintf(&sb, `
void main() {
	int i;
	int j;
	int k;
	for (i = 0; i < %d; i++) {
		for (j = 0; j < %d; j++) {
			float acc = 0.0;
			for (k = 0; k < %d; k++) {
				acc += A[i][k] * B[k][j];
			}
			C[i][j] = acc;
		}
	}
}
`, n, n, n)

	return Program{
		Name:   fmt.Sprintf("mult_%d_%d", n, n),
		Desc:   fmt.Sprintf("Dense %dx%d matrix multiplication", n, n),
		Kind:   Kernel,
		Source: sb.String(),
		Check:  func(r Reader) error { return checkF32s(r, "C", want, 1e-3) },
	}
}

// FFT builds fft_<n>: an in-place radix-2 decimation-in-time fast
// Fourier transform with precomputed twiddle tables and explicit
// bit-reversal.
func FFT(n int) Program {
	logn := 0
	for 1<<logn < n {
		logn++
	}
	rng := newPRNG(uint32(n + 5))
	re := randFloats(rng, n)
	im := randFloats(rng, n)
	wr := make([]float32, n/2)
	wi := make([]float32, n/2)
	for i := 0; i < n/2; i++ {
		ang := -2 * math.Pi * float64(i) / float64(n)
		wr[i] = float32(math.Cos(ang))
		wi[i] = float32(math.Sin(ang))
	}

	wantRe := append([]float32(nil), re...)
	wantIm := append([]float32(nil), im...)
	fftRef(wantRe, wantIm, wr, wi, n, logn)

	var sb strings.Builder
	sb.WriteString(floatsDecl("re", re))
	sb.WriteString(floatsDecl("im", im))
	sb.WriteString(floatsDecl("wr", wr))
	sb.WriteString(floatsDecl("wi", wi))
	fmt.Fprintf(&sb, `
void main() {
	int i;
	int s;
	// Bit-reversal permutation.
	for (i = 0; i < %[1]d; i++) {
		int r = 0;
		int v = i;
		for (s = 0; s < %[2]d; s++) {
			r = (r << 1) | (v & 1);
			v = v >> 1;
		}
		if (r > i) {
			float tr = re[i];
			float ti = im[i];
			re[i] = re[r];
			im[i] = im[r];
			re[r] = tr;
			im[r] = ti;
		}
	}
	// Butterfly stages.
	int le = 1;
	for (s = 0; s < %[2]d; s++) {
		int le2 = le * 2;
		int step = %[1]d / le2;
		int j;
		for (j = 0; j < le; j++) {
			float ur = wr[j * step];
			float ui = wi[j * step];
			int c;
			int nb = %[1]d / le2;
			int idx = j;
			for (c = 0; c < nb; c++) {
				int ip = idx + le;
				float tr = re[ip] * ur - im[ip] * ui;
				float ti = re[ip] * ui + im[ip] * ur;
				re[ip] = re[idx] - tr;
				im[ip] = im[idx] - ti;
				re[idx] = re[idx] + tr;
				im[idx] = im[idx] + ti;
				idx = idx + le2;
			}
		}
		le = le2;
	}
}
`, n, logn)

	return Program{
		Name:   fmt.Sprintf("fft_%d", n),
		Desc:   fmt.Sprintf("Radix-2, in-place, decimation-in-time fast Fourier transform, %d points", n),
		Kind:   Kernel,
		Source: sb.String(),
		Check: func(r Reader) error {
			if err := checkF32s(r, "re", wantRe, 2e-3); err != nil {
				return err
			}
			return checkF32s(r, "im", wantIm, 2e-3)
		},
	}
}

// fftRef is the Go reference FFT, mirroring the MiniC operation order
// in float32.
func fftRef(re, im, wr, wi []float32, n, logn int) {
	for i := 0; i < n; i++ {
		r, v := 0, i
		for s := 0; s < logn; s++ {
			r = (r << 1) | (v & 1)
			v >>= 1
		}
		if r > i {
			re[i], re[r] = re[r], re[i]
			im[i], im[r] = im[r], im[i]
		}
	}
	le := 1
	for s := 0; s < logn; s++ {
		le2 := le * 2
		step := n / le2
		for j := 0; j < le; j++ {
			ur, ui := wr[j*step], wi[j*step]
			idx := j
			for c := 0; c < n/le2; c++ {
				ip := idx + le
				tr := re[ip]*ur - im[ip]*ui
				ti := re[ip]*ui + im[ip]*ur
				re[ip] = re[idx] - tr
				im[ip] = im[idx] - ti
				re[idx] = re[idx] + tr
				im[idx] = im[idx] + ti
				idx += le2
			}
		}
		le = le2
	}
}
