// Command dsploadgen drives load at a dspservd cluster and reports
// throughput, latency quantiles, the status mix, and — with -verify —
// the fleet-wide single-flight check: across the whole run, the
// cluster's cache-miss counters must have grown by exactly the number
// of distinct keys requested, proving every cold key was computed once
// no matter how many nodes and requests touched it (the check assumes
// the fleet shares an L2 result store, as a -store deployment does).
//
// Two ways to point it at a fleet:
//
//	-targets http://a:8357,http://b:8357   an external cluster
//	-nodes 4                               a self-contained in-process
//	                                       fixture on loopback ports
//
// In fixture mode, -service-time emulates per-request work with an
// injected stall inside each node's worker pool: per-node capacity
// becomes workers/service-time, which makes scaling measurable on one
// machine (in-process nodes share the CPU, so real compute cannot
// scale with node count). -service-time 0 runs real compute.
//
// Key skew: -skew uniform sprays the benchmark × mode matrix evenly;
// -skew zipf (-zipf-s exponent) concentrates traffic on a heavy head,
// the shape hot-key replication exists for.
//
// -generated N mixes N seeded generated-program keys (internal/genmc)
// into the population. Generated programs are pure functions of their
// names, so the cluster routes, caches, and single-flights them
// exactly like built-in benchmarks — -verify covers both kinds.
//
// Usage:
//
//	dsploadgen [-targets urls | -nodes N] [-requests 1000]
//	           [-concurrency 32] [-skew uniform|zipf] [-zipf-s 1.2]
//	           [-seed 1] [-keyspace 161] [-generated N] [-warm] [-verify]
//	           [-nodes-workers 8] [-service-time 10ms] [-replication 2]
//	           [-store-dir dir] [-json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"dualbank/internal/cluster"
	"dualbank/internal/faultinject"
	"dualbank/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dsploadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	targets := fs.String("targets", "", "comma-separated node base URLs of an external cluster")
	nodes := fs.Int("nodes", 0, "spin an in-process fixture with this many nodes instead of -targets")
	nodeWorkers := fs.Int("nodes-workers", 8, "fixture: worker-pool width per node")
	serviceTime := fs.Duration("service-time", 10*time.Millisecond, "fixture: injected per-request service time (0 = real compute)")
	replication := fs.Int("replication", 2, "fixture: replica-set size per key")
	storeDir := fs.String("store-dir", "", "fixture: shared L2 store directory (default: a temp dir)")
	requests := fs.Int("requests", 1000, "total request count")
	concurrency := fs.Int("concurrency", 32, "closed-loop worker count")
	skew := fs.String("skew", "uniform", "key distribution: uniform or zipf")
	zipfS := fs.Float64("zipf-s", 1.2, "zipf exponent (>1)")
	seed := fs.Int64("seed", 1, "key-sequence seed")
	keyspace := fs.Int("keyspace", 0, "distinct request bodies (default: the whole 161-entry matrix)")
	generated := fs.Int("generated", 0, "mix this many seeded generated-program keys into the population")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	warm := fs.Bool("warm", false, "issue every distinct key once before measuring")
	verify := fs.Bool("verify", false, "check fleet-wide single-flight via the nodes' miss counters")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var urls []string
	if *nodes > 0 {
		dir := *storeDir
		if dir == "" {
			var err error
			if dir, err = os.MkdirTemp("", "dsploadgen-store-*"); err != nil {
				fmt.Fprintln(stderr, "dsploadgen:", err)
				return 1
			}
			defer os.RemoveAll(dir)
		}
		lc, err := cluster.StartLocal(cluster.LocalOptions{
			N:           *nodes,
			Replication: *replication,
			StoreDir:    dir,
			Serve:       serve.Config{Workers: *nodeWorkers},
			Configure: func(i int, cfg *cluster.Config) {
				if *serviceTime > 0 {
					cfg.Serve.Fault = faultinject.New(faultinject.Profile{
						Seed:    int64(i) + 1,
						Latency: 1.0, LatencyDur: *serviceTime,
					})
				}
			},
		})
		if err != nil {
			fmt.Fprintln(stderr, "dsploadgen:", err)
			return 1
		}
		defer lc.Close()
		for i := 0; i < lc.N(); i++ {
			urls = append(urls, lc.URL(i))
		}
		fmt.Fprintf(stdout, "dsploadgen: %d-node fixture up (workers=%d, service-time=%s)\n",
			*nodes, *nodeWorkers, *serviceTime)
	} else {
		for _, u := range strings.Split(*targets, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, strings.TrimRight(u, "/"))
			}
		}
		if len(urls) == 0 {
			fmt.Fprintln(stderr, "dsploadgen: one of -targets or -nodes is required")
			return 2
		}
	}

	ctx := context.Background()
	missesBefore, missErr := scrapeMisses(urls)

	distinctWarmed := 0
	if *warm {
		bodies := len(cluster.LoadBodies())
		if *keyspace > 0 && *keyspace < bodies {
			bodies = *keyspace
		}
		bodies += *generated
		rep, err := cluster.RunLoad(ctx, cluster.LoadOptions{
			Targets:     urls,
			Requests:    bodies,
			Concurrency: *concurrency,
			Keyspace:    *keyspace,
			Generated:   *generated,
			Skew:        "sweep",
			Seed:        *seed,
			Timeout:     *timeout,
		})
		if err != nil {
			fmt.Fprintln(stderr, "dsploadgen: warm:", err)
			return 1
		}
		distinctWarmed = bodies
		fmt.Fprintf(stdout, "dsploadgen: warm pass done (%d requests, %d distinct keys, %.1fs)\n",
			rep.Requests, rep.DistinctKeys, rep.Seconds)
	}

	rep, err := cluster.RunLoad(ctx, cluster.LoadOptions{
		Targets:     urls,
		Requests:    *requests,
		Concurrency: *concurrency,
		Keyspace:    *keyspace,
		Generated:   *generated,
		Skew:        *skew,
		ZipfS:       *zipfS,
		Seed:        *seed,
		Timeout:     *timeout,
	})
	if err != nil {
		fmt.Fprintln(stderr, "dsploadgen:", err)
		return 1
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	} else {
		fmt.Fprintf(stdout, "dsploadgen: %d requests to %d nodes (%s skew)\n", rep.Requests, rep.Targets, rep.Skew)
		fmt.Fprintf(stdout, "  throughput   %.0f req/s (%.2fs)\n", rep.Throughput, rep.Seconds)
		fmt.Fprintf(stdout, "  latency      p50 %.1fms  p99 %.1fms\n", rep.P50Ms, rep.P99Ms)
		fmt.Fprintf(stdout, "  distinct     %d keys\n", rep.DistinctKeys)
		codes := make([]int, 0, len(rep.Statuses))
		for c := range rep.Statuses {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(stdout, "  status %d   %d\n", c, rep.Statuses[c])
		}
		if rep.TransportErrors > 0 {
			fmt.Fprintf(stdout, "  transport    %d errors\n", rep.TransportErrors)
		}
	}

	if *verify {
		if missErr != nil {
			fmt.Fprintln(stderr, "dsploadgen: verify: scraping before:", missErr)
			return 1
		}
		missesAfter, err := scrapeMisses(urls)
		if err != nil {
			fmt.Fprintln(stderr, "dsploadgen: verify:", err)
			return 1
		}
		// Distinct keys across warm + measure: the warm pass covers a
		// superset of the measured draw when both ran.
		want := rep.DistinctKeys
		if distinctWarmed > want {
			want = distinctWarmed
		}
		got := missesAfter - missesBefore
		if got != int64(want) {
			fmt.Fprintf(stderr, "dsploadgen: single-flight VIOLATED: fleet computed %d keys, %d were distinct\n", got, want)
			return 1
		}
		fmt.Fprintf(stdout, "dsploadgen: single-flight verified: %d distinct keys, %d fleet-wide computes\n", want, got)
	}
	return 0
}

var missRe = regexp.MustCompile(`(?m)^dspservd_cache_misses_total (\d+)$`)

// scrapeMisses sums dspservd_cache_misses_total across the fleet.
func scrapeMisses(urls []string) (int64, error) {
	var total int64
	for _, u := range urls {
		resp, err := http.Get(u + "/metrics")
		if err != nil {
			return 0, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, err
		}
		m := missRe.FindSubmatch(data)
		if m == nil {
			return 0, fmt.Errorf("%s/metrics lacks dspservd_cache_misses_total", u)
		}
		v, _ := strconv.ParseInt(string(m[1]), 10, 64)
		total += v
	}
	return total, nil
}
