package exact

import (
	"sort"

	"dualbank/internal/core"
	"dualbank/internal/ir"
)

// This file generalizes the certified bipartitioner to k-way
// partitioning for machines with more than two banks. The k-way tree
// is far bushier (branching factor k instead of 2), so the solver uses
// a smaller default budget and a weaker bound — the triangle-packing
// term is dropped, because a triangle splits residual-free across
// three banks — and therefore falls back to Bounded verdicts sooner,
// which is the documented contract. Symmetry is broken k-ary: along
// any root-to-node path a node may only enter a bank index at most one
// past the highest index already used, so each set-partition is
// enumerated once rather than k! times.

// DefaultNodeBudgetK is the branch-and-bound node budget for the k-way
// solver when Options leaves it zero: a quarter of the 2-way budget,
// reflecting the bushier tree.
const DefaultNodeBudgetK = DefaultNodeBudget / 4

// ResultK pairs a solved k-way partition with its certificate.
// Part.Cost always equals Cert.Upper.
type ResultK struct {
	Part *core.KPartition
	Cert Certificate
}

func init() {
	core.RegisterExactKPartitioner(func(g *core.Graph, k int) *core.KPartition {
		return SolveK(g, k, Options{}).Part
	})
}

// SolveK runs the certified k-way partitioner on g. k == 2 delegates
// to Solve, so the default machine takes the historical search.
func SolveK(g *core.Graph, k int, opt Options) *ResultK {
	if k == 2 {
		r := Solve(g, opt)
		return &ResultK{Part: core.KFromBipartition(r.Part), Cert: r.Cert}
	}
	if opt.NodeBudget <= 0 {
		opt.NodeBudget = DefaultNodeBudgetK
	}
	opt = opt.withDefaults()
	c := g.CSR()
	n := len(g.Nodes)

	// Incumbent: the best k-way heuristic (FM-K starts from greedy-K
	// and only improves, so it dominates the portfolio).
	seed := g.PartitionK(k, core.MethodFM, -1)
	seedSide := make([]int32, n)
	pos := make(map[*ir.Symbol]int32, n)
	for i, s := range g.Nodes {
		pos[s] = int32(i)
	}
	for b, set := range seed.Sets {
		for _, s := range set {
			seedSide[pos[s]] = int32(b)
		}
	}

	comps := components(c, n)
	sort.SliceStable(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) < len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})

	best := make([]int32, n) // isolated nodes stay in bank 0
	cert := Certificate{Budget: opt.NodeBudget}
	budget := opt.NodeBudget
	closedAll := true
	for _, comp := range comps {
		s := newCompSolverK(c, comp, k)
		local := make([]int32, len(comp))
		for li, v := range comp {
			local[li] = seedSide[v]
		}
		s.offerLocal(local)
		s.search(&budget)
		cert.Components++
		cert.BBNodes += s.nodes
		lb, closed := s.lowerBound()
		cert.Lower += lb
		cert.Upper += s.ub
		if closed {
			cert.Closed++
		} else {
			closedAll = false
		}
		for li, v := range comp {
			best[v] = s.bestSide[li]
		}
	}
	switch {
	case closedAll:
		cert.Verdict = Optimal
	case cert.Lower > 0:
		cert.Verdict = Bounded
	default:
		cert.Verdict = Budget
	}

	part := g.KPartitionFromSides(k, best)
	part.Trace = []int64{c.Total, part.Cost}
	return &ResultK{Part: part, Cert: cert}
}

// compSolverK is the branch-and-bound state for one component of the
// k-way search, over a local (remapped, sorted-adjacency) CSR copy.
type compSolverK struct {
	n, k  int
	start []int32
	adj   []int32
	w     []int64
	order []int32 // decision order: weighted degree descending

	assigned []bool
	side     []int32
	e        [][]int64 // e[v][b]: v's edge weight into assigned bank b
	fixed    int64
	sumMin   int64 // sum over unassigned of min_b e[v][b]

	ub       int64
	bestSide []int32
	nodes    int64
	minOpen  int64
	seeded   bool
}

func newCompSolverK(c *core.CSR, comp []int32, k int) *compSolverK {
	n := len(comp)
	local := make(map[int32]int32, n)
	for li, v := range comp {
		local[v] = int32(li)
	}
	s := &compSolverK{
		n: n, k: k,
		start:    make([]int32, n+1),
		assigned: make([]bool, n),
		side:     make([]int32, n),
		e:        make([][]int64, n),
		bestSide: make([]int32, n),
		ub:       infCost,
		minOpen:  infCost,
	}
	for i := range s.e {
		s.e[i] = make([]int64, k)
	}
	type half struct {
		to int32
		w  int64
	}
	rows := make([][]half, n)
	for li, v := range comp {
		for h := c.Start[v]; h < c.Start[v+1]; h++ {
			rows[li] = append(rows[li], half{local[c.Adj[h]], c.W[h]})
		}
		sort.Slice(rows[li], func(a, b int) bool { return rows[li][a].to < rows[li][b].to })
	}
	for li, row := range rows {
		s.start[li+1] = s.start[li] + int32(len(row))
		for _, h := range row {
			s.adj = append(s.adj, h.to)
			s.w = append(s.w, h.w)
		}
	}

	deg := make([]int64, n)
	s.order = make([]int32, n)
	for i := range s.order {
		s.order[i] = int32(i)
		for h := s.start[i]; h < s.start[i+1]; h++ {
			deg[i] += s.w[h]
		}
	}
	sort.SliceStable(s.order, func(a, b int) bool {
		if deg[s.order[a]] != deg[s.order[b]] {
			return deg[s.order[a]] > deg[s.order[b]]
		}
		return s.order[a] < s.order[b]
	})
	return s
}

// offerLocal proposes a local bank assignment as an incumbent.
func (s *compSolverK) offerLocal(side []int32) {
	var cost int64
	for a := int32(0); a < int32(s.n); a++ {
		for h := s.start[a]; h < s.start[a+1]; h++ {
			if b := s.adj[h]; b > a && side[b] == side[a] {
				cost += s.w[h]
			}
		}
	}
	if cost < s.ub {
		s.ub = cost
		copy(s.bestSide, side)
		s.seeded = true
	}
}

func (s *compSolverK) search(budget *int64) { s.dfs(0, 0, budget) }

func (s *compSolverK) minE(v int32) int64 {
	m := s.e[v][0]
	for b := 1; b < s.k; b++ {
		if s.e[v][b] < m {
			m = s.e[v][b]
		}
	}
	return m
}

// dfs expands the decision at depth d. maxUsed is the highest bank
// index assigned along the current path (-1 at the root); the k-ary
// symmetry pin only allows banks 0..maxUsed+1, so relabelings of the
// same set-partition are never explored twice.
func (s *compSolverK) dfs(d int, maxUsed int, budget *int64) {
	bound := s.fixed + s.sumMin
	if bound >= s.ub {
		return
	}
	if d == s.n {
		s.ub = s.fixed
		copy(s.bestSide, s.side)
		return
	}
	if *budget <= 0 {
		if bound < s.minOpen {
			s.minOpen = bound
		}
		return
	}
	*budget--
	s.nodes++

	v := s.order[d]
	limit := maxUsed + 1
	if limit >= s.k {
		limit = s.k - 1
	}
	// Cheapest bank first among the permitted prefix; ties to the lower
	// bank index keep the search deterministic.
	tried := make([]bool, limit+1)
	for range tried {
		bb, bw := -1, infCost
		for b := 0; b <= limit; b++ {
			if !tried[b] && s.e[v][b] < bw {
				bb, bw = b, s.e[v][b]
			}
		}
		tried[bb] = true
		s.assign(v, int32(bb))
		mu := maxUsed
		if bb > mu {
			mu = bb
		}
		s.dfs(d+1, mu, budget)
		s.unassign(v, int32(bb))
	}
}

func (s *compSolverK) assign(v int32, b int32) {
	s.assigned[v] = true
	s.side[v] = b
	s.sumMin -= s.minE(v)
	s.fixed += s.e[v][b]
	for h := s.start[v]; h < s.start[v+1]; h++ {
		u := s.adj[h]
		if s.assigned[u] {
			continue
		}
		old := s.minE(u)
		s.e[u][b] += s.w[h]
		s.sumMin += s.minE(u) - old
	}
}

func (s *compSolverK) unassign(v int32, b int32) {
	for h := s.start[v]; h < s.start[v+1]; h++ {
		u := s.adj[h]
		if s.assigned[u] {
			continue
		}
		old := s.minE(u)
		s.e[u][b] -= s.w[h]
		s.sumMin += s.minE(u) - old
	}
	s.fixed -= s.e[v][b]
	s.sumMin += s.minE(v)
	s.assigned[v] = false
}

func (s *compSolverK) lowerBound() (int64, bool) {
	if s.minOpen >= s.ub {
		return s.ub, true
	}
	return s.minOpen, false
}
