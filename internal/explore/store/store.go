// Package store is the design-space explorer's on-disk checkpoint: a
// content-addressed key/value store of completed evaluations. Keys are
// the canonical evaluation identity (benchmark × configuration ×
// machine fingerprint); each record lands in its own JSON file named
// by the SHA-256 of its key, written atomically (temp file + rename),
// so a run killed at any instant leaves only whole records behind and
// a resumed run replays them instead of re-simulating. The store is
// safe for concurrent use by one process; cross-process writers are
// safe too because identical keys always carry identical contents.
//
// All disk traffic flows through a faultinject.FS, so the robustness
// suite can open a store over an injected filesystem and verify that
// I/O errors, latency spikes, and torn writes never publish a corrupt
// record — the atomic-write discipline confines damage to temp files
// that a later Open ignores.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"sync"

	"dualbank/internal/faultinject"
)

// Record is one checkpointed evaluation. The fields mirror what the
// explorer needs to rebuild a frontier point without re-running:
// cycles, the memory-footprint breakdown, and the duplication stats.
// Err, when non-empty, records an infeasible configuration (e.g. a
// duplication set that overflows a bank) so resumed runs skip it
// without retrying.
type Record struct {
	Bench  string `json:"bench"`
	Config string `json:"config"`
	Cycles int64  `json:"cycles"`

	MemXData int `json:"mem_x_data"`
	MemYData int `json:"mem_y_data"`
	MemStack int `json:"mem_stack"`
	MemInstr int `json:"mem_instr"`

	DupStores  int      `json:"dup_stores"`
	Duplicated []string `json:"duplicated,omitempty"`

	Err string `json:"err,omitempty"`
}

// Store is a directory of checkpointed evaluations with an in-memory
// index. The zero value is not usable; call Open.
type Store struct {
	dir string
	fs  faultinject.FS

	mu   sync.Mutex
	recs map[string]Record // key -> record, loaded lazily at Open
}

// Key builds the canonical content address of one evaluation:
// benchmark name, configuration key, and the machine-configuration
// fingerprint the measurement depends on.
func Key(bench, config, fingerprint string) string {
	return bench + "|" + config + "|" + fingerprint
}

// Open creates (if needed) and loads the store rooted at dir on the
// real filesystem.
func Open(dir string) (*Store, error) {
	return OpenFS(dir, faultinject.OSFS{})
}

// OpenFS is Open over an explicit filesystem — the fault-injection
// seam. Corrupt or truncated record files — possible only from
// non-atomic external tampering — are skipped, not fatal: the
// evaluations re-run. A file that fails to read whole is likewise
// skipped rather than half-loaded.
func OpenFS(dir string, fsys faultinject.FS) (*Store, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, fs: fsys, recs: make(map[string]Record)}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := fsys.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		var f file
		if err := json.Unmarshal(data, &f); err != nil || f.Key == "" {
			continue
		}
		s.recs[f.Key] = f.Record
	}
	return s, nil
}

// file is the on-disk framing: the full key rides along with the
// record so the index can be rebuilt from the files alone.
type file struct {
	Key    string `json:"key"`
	Record Record `json:"record"`
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of loaded records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Get returns the record stored under key, if any.
func (s *Store) Get(key string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.recs[key]
	return r, ok
}

// Snapshot copies the whole index. The robustness suite compares it
// against a fresh Open of the same directory to prove the disk state
// reloads identically.
func (s *Store) Snapshot() map[string]Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Record, len(s.recs))
	for k, r := range s.recs {
		out[k] = r
	}
	return out
}

// Put checkpoints one evaluation, writing through to disk atomically
// before indexing it. A later Put of the same key overwrites — keys
// are content addresses, so the record is necessarily identical and
// the overwrite is idempotent. On any write failure the temp file is
// discarded and the index is left untouched: a failed Put never
// publishes a partial record, on disk or in memory.
func (s *Store) Put(key string, r Record) error {
	data, err := json.MarshalIndent(file{Key: key, Record: r}, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sum := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(sum[:]) + ".json"
	tmp, err := s.fs.CreateTemp(s.dir, name+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		s.fs.Remove(tmp.Name())
		return fmt.Errorf("store: writing %s: %w", name, firstErr(werr, cerr))
	}
	if err := s.fs.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		s.fs.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	s.recs[key] = r
	s.mu.Unlock()
	return nil
}

func firstErr(a, b error) error {
	if a != nil {
		return a
	}
	return b
}
