// Package serve is the HTTP/JSON layer of dspservd: it turns the
// repository's batch compile-and-simulate pipeline into a long-lived
// service. Requests name either a built-in benchmark or carry MiniC
// source, pick an allocation mode and partitioner, and run on a
// bounded worker pool where each worker owns its reusable compiler
// scratch; named-benchmark results flow through the harness's
// single-flight memo cache. Every request carries a deadline that is
// honored down to the simulator's basic-block boundaries.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"dualbank/internal/alloc"
	"dualbank/internal/bench"
	"dualbank/internal/core"
	"dualbank/internal/machine"
)

// Request is the JSON body of POST /v1/run. Exactly one of Bench (a
// built-in Table 1/2 benchmark name) and Source (a MiniC translation
// unit) must be set.
type Request struct {
	// Bench names a built-in benchmark (see GET /v1/benchmarks).
	Bench string `json:"bench,omitempty"`
	// Source is a MiniC translation unit to compile and run directly.
	Source string `json:"source,omitempty"`
	// Name labels a Source request in logs and errors ("source" when
	// empty). Ignored for Bench requests.
	Name string `json:"name,omitempty"`
	// Mode is the data-allocation mode; canonical names ("CB", "Dup",
	// "Pr", "single-bank", "full-dup", "Ideal", "low-order") and the
	// dspcc short forms ("cb", "dup", "pr", "single", "fulldup",
	// "ideal", "loworder") are accepted. Defaults to CB.
	Mode string `json:"mode,omitempty"`
	// Partitioner picks the graph-partitioning algorithm: greedy
	// (default), kl, anneal, or fm.
	Partitioner string `json:"partitioner,omitempty"`
	// Profiled applies profile-derived edge weights to any partitioned
	// mode (the Pr mode implies it).
	Profiled bool `json:"profiled,omitempty"`
	// FMPasses bounds the fm partitioner's refinement passes: 0 is the
	// library default, a negative value stops after the first pass, a
	// positive value is an exact bound. Requires the fm partitioner.
	FMPasses int `json:"fm_passes,omitempty"`
	// Dup names the exact arrays to duplicate instead of the paper's
	// marked-array policy. Requires the Dup mode.
	Dup []string `json:"dup,omitempty"`
	// Banks and Ports select the machine geometry — data-bank count and
	// ports per bank. Zero values are the classic 2-bank, single-ported
	// machine. The Ideal and low-order modes model the classic machine
	// only.
	Banks int `json:"banks,omitempty"`
	Ports int `json:"ports,omitempty"`
	// Engine pins the simulation engine for this request: compiled,
	// fast, or machine. Empty uses the server's configured engine. The
	// cluster forwarder sets it explicitly so every node computes the
	// identical memo key for one request.
	Engine string `json:"engine,omitempty"`
	// TimeoutMs caps this request's compile+simulate wall clock; zero
	// means the server default. The server clamps it to its maximum.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// Response is the JSON body of a successful POST /v1/run: the fields
// of one bench.Result plus the memory-footprint breakdown and whether
// the result came from the memo cache.
type Response struct {
	Bench       string `json:"bench"`
	Mode        string `json:"mode"`
	Partitioner string `json:"partitioner"`
	Cycles      int64  `json:"cycles"`

	MemXData int `json:"mem_x_data"`
	MemYData int `json:"mem_y_data"`
	MemStack int `json:"mem_stack"`
	MemInstr int `json:"mem_instr"`
	// MemExtra and MemNBanks carry the extra banks' data sizes and the
	// bank count for multi-bank requests; absent on the classic machine.
	MemExtra  []int `json:"mem_extra,omitempty"`
	MemNBanks int   `json:"mem_nbanks,omitempty"`
	MemTotal  int   `json:"mem_total"`

	DupStores  int      `json:"dup_stores"`
	Duplicated []string `json:"duplicated,omitempty"`

	CompileSeconds float64 `json:"compile_seconds"`
	SimSeconds     float64 `json:"sim_seconds"`

	// Cached reports whether the measurement was served from (or
	// coalesced onto) an existing memo-cache entry.
	Cached bool `json:"cached"`
}

// ResponseFor maps one measurement into the wire schema.
func ResponseFor(res bench.Result, method core.Method, cached bool) Response {
	return Response{
		Bench:          res.Bench,
		Mode:           res.Mode.String(),
		Partitioner:    method.String(),
		Cycles:         res.Cycles,
		MemXData:       res.Mem.XData,
		MemYData:       res.Mem.YData,
		MemStack:       res.Mem.Stack,
		MemInstr:       res.Mem.Instr,
		MemExtra:       res.Mem.Extra,
		MemNBanks:      res.Mem.NBanks,
		MemTotal:       res.Mem.Total(),
		DupStores:      res.DupStores,
		Duplicated:     res.Duplicated,
		CompileSeconds: res.CompileSeconds,
		SimSeconds:     res.SimSeconds,
		Cached:         cached,
	}
}

// ErrorResponse is the JSON body of every non-200 response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Job is a validated, executable request.
type Job struct {
	Prog   bench.Program
	Mode   alloc.Mode
	Method core.Method
	// FMPasses, Profiled, and DupOnly are the explorer's knobs (see
	// Request); they flow into bench.RunOptions and the memo-cache key.
	FMPasses int
	Profiled bool
	DupOnly  []string
	// Banks and Ports are the request's machine geometry (zero = the
	// classic 2-bank, single-ported machine).
	Banks, Ports int
	// Engine is the request's pinned simulation engine, meaningful only
	// when EngineSet is true (the zero Engine is a valid engine); when
	// false the server's configured engine applies.
	Engine    bench.Engine
	EngineSet bool
	// Timeout is the request's own deadline; zero means the server
	// default applies.
	Timeout time.Duration
	// Cacheable marks named-benchmark jobs, whose results are pure
	// functions of (name, mode, partitioner) and safe to memoize.
	// Source jobs always compile and simulate afresh.
	Cacheable bool
}

// ErrUnknownBench marks a request for a benchmark name the suite does
// not contain; the HTTP layer maps it to 404.
var ErrUnknownBench = errors.New("unknown benchmark")

// modeAliases are the dspcc/dspsim short mode names, accepted
// alongside the canonical alloc.Mode spellings.
var modeAliases = map[string]alloc.Mode{
	"single":   alloc.SingleBank,
	"cb":       alloc.CB,
	"pr":       alloc.CBProfiled,
	"dup":      alloc.CBDup,
	"fulldup":  alloc.FullDup,
	"ideal":    alloc.Ideal,
	"loworder": alloc.LowOrder,
}

// Modes lists every accepted canonical mode name, in experiment order.
func Modes() []string {
	all := []alloc.Mode{
		alloc.SingleBank, alloc.CB, alloc.CBProfiled,
		alloc.CBDup, alloc.FullDup, alloc.Ideal, alloc.LowOrder,
	}
	names := make([]string, len(all))
	for i, m := range all {
		names[i] = m.String()
	}
	return names
}

// ParseMode resolves a mode string: first the canonical names the
// modes themselves print, then the dspcc short aliases.
func ParseMode(s string) (alloc.Mode, error) {
	var m alloc.Mode
	if err := m.UnmarshalText([]byte(s)); err == nil {
		return m, nil
	}
	if m, ok := modeAliases[strings.ToLower(s)]; ok {
		return m, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want one of %s or dspcc short forms)",
		s, strings.Join(Modes(), ", "))
}

// DecodeRequest parses and validates one request body. It enforces the
// source-size cap, rejects unknown JSON fields, resolves the mode and
// partitioner, and looks benchmark names up in the suite. It never
// panics on hostile input — the fuzz target holds it to that.
func DecodeRequest(data []byte, maxSource int) (Job, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return Job{}, fmt.Errorf("bad request body: %w", err)
	}
	// A body holding two JSON values is malformed, not a request plus
	// trailing garbage to silently accept.
	if dec.More() {
		return Job{}, fmt.Errorf("bad request body: trailing data after JSON object")
	}
	return req.Job(maxSource)
}

// Job validates the request and resolves it into an executable Job.
func (req *Request) Job(maxSource int) (Job, error) {
	switch {
	case req.Bench == "" && req.Source == "":
		return Job{}, fmt.Errorf("one of %q or %q is required", "bench", "source")
	case req.Bench != "" && req.Source != "":
		return Job{}, fmt.Errorf("%q and %q are mutually exclusive", "bench", "source")
	case req.TimeoutMs < 0:
		return Job{}, fmt.Errorf("timeout_ms must be non-negative, got %d", req.TimeoutMs)
	case maxSource > 0 && len(req.Source) > maxSource:
		return Job{}, fmt.Errorf("source is %d bytes, limit %d", len(req.Source), maxSource)
	}

	j := Job{Timeout: time.Duration(req.TimeoutMs) * time.Millisecond}

	mode := req.Mode
	if mode == "" {
		mode = "CB"
	}
	var err error
	if j.Mode, err = ParseMode(mode); err != nil {
		return Job{}, err
	}
	if req.Partitioner != "" {
		if j.Method, err = core.ParseMethod(req.Partitioner); err != nil {
			return Job{}, fmt.Errorf("unknown partitioner %q (want greedy, kl, anneal, fm, or exact)", req.Partitioner)
		}
	}
	if req.FMPasses != 0 && j.Method != core.MethodFM {
		return Job{}, fmt.Errorf("fm_passes requires the fm partitioner")
	}
	if len(req.Dup) > 0 && j.Mode != alloc.CBDup {
		return Job{}, fmt.Errorf("dup requires mode %q", alloc.CBDup)
	}
	j.FMPasses = req.FMPasses
	j.Profiled = req.Profiled
	j.DupOnly = req.Dup
	if req.Banks != 0 || req.Ports != 0 {
		spec := machine.BankSpec{Banks: req.Banks, PortsPerBank: req.Ports}
		if err := spec.Validate(); err != nil {
			return Job{}, err
		}
		if !spec.IsDefault() && (j.Mode == alloc.Ideal || j.Mode == alloc.LowOrder) {
			return Job{}, fmt.Errorf("mode %q models the classic 2-bank machine only", j.Mode)
		}
		j.Banks, j.Ports = req.Banks, req.Ports
	}
	if req.Engine != "" {
		if j.Engine, err = bench.ParseEngine(req.Engine); err != nil {
			return Job{}, err
		}
		j.EngineSet = true
	}

	if req.Bench != "" {
		p, ok := bench.ByName(req.Bench)
		if !ok {
			return Job{}, fmt.Errorf("%w %q (see /v1/benchmarks)", ErrUnknownBench, req.Bench)
		}
		j.Prog = p
		j.Cacheable = true
		return j, nil
	}
	name := req.Name
	if name == "" {
		name = "source"
	}
	j.Prog = bench.Program{Name: name, Source: req.Source}
	return j, nil
}
