// Package lower translates the MiniC AST into the IR: a CFG of unpacked
// machine operations over virtual registers.
//
// Calling convention (documented in DESIGN.md): the reproduction uses
// static stack allocation, a technique common in DSP compilers of the
// period — recursion is rejected, so every function's frame (parameter
// slots, array locals, spill slots, callee-save slots) is laid out at
// link time on the two program stacks. Callers store argument values
// into the callee's parameter slots (ordinary, partitionable memory
// operations), the callee loads them into registers on entry, and
// scalar results return in a dedicated register inserted by the
// register allocator. Scalar locals are promoted to virtual registers;
// only arrays, parameters, spills and save slots generate memory
// traffic.
package lower

import (
	"fmt"
	"math"

	"dualbank/internal/ir"
	"dualbank/internal/minic"
)

// Program lowers an analyzed MiniC file to an IR program.
func Program(file *minic.File, name string) (*ir.Program, error) {
	lw := &lowerer{
		prog:   &ir.Program{Name: name},
		syms:   make(map[*minic.VarSym]*ir.Symbol),
		regs:   make(map[*minic.VarSym]ir.Reg),
		params: make(map[string][]*ir.Symbol),
		stored: make(map[*ir.Symbol]bool),
	}
	for _, d := range file.Decls {
		g := &ir.Symbol{
			Name: d.Name,
			Kind: ir.SymGlobal,
			Elem: typeOf(d.Type),
			Size: d.Sym.Words(),
			Dims: d.Dims,
		}
		if d.Init != nil {
			words, err := constWords(d)
			if err != nil {
				return nil, err
			}
			g.Init = words
		}
		lw.syms[d.Sym] = g
		lw.prog.Globals = append(lw.prog.Globals, g)
	}
	// Create parameter slots for every function up front so that call
	// sites can be lowered before their callee.
	for _, fn := range file.Funcs {
		for _, p := range fn.Params {
			slot := &ir.Symbol{
				Name: fn.Name + "." + p.Name,
				Kind: ir.SymLocal,
				Elem: typeOf(p.Type),
				Size: 1,
			}
			lw.params[fn.Name] = append(lw.params[fn.Name], slot)
		}
	}
	for _, fn := range file.Funcs {
		f, err := lw.lowerFunc(fn)
		if err != nil {
			return nil, err
		}
		lw.prog.AddFunc(f)
	}
	// Mark globals that are never stored to as read-only; duplicating
	// them needs no coherence stores.
	for _, g := range lw.prog.Globals {
		g.ReadOnly = !lw.stored[g]
	}
	if err := ir.Verify(lw.prog); err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	if err := checkNoRecursion(lw.prog); err != nil {
		return nil, err
	}
	return lw.prog, nil
}

func typeOf(t minic.TypeName) ir.Type {
	switch t {
	case minic.TypeInt:
		return ir.TInt
	case minic.TypeFloat:
		return ir.TFloat
	}
	return ir.TVoid
}

type lowerer struct {
	prog   *ir.Program
	syms   map[*minic.VarSym]*ir.Symbol // arrays and globals
	regs   map[*minic.VarSym]ir.Reg     // promoted scalar locals/params
	params map[string][]*ir.Symbol      // per-function parameter slots
	stored map[*ir.Symbol]bool

	f         *ir.Func
	cur       *ir.Block
	loopDepth int
	breaks    []*ir.Block
	conts     []*ir.Block
}

func (lw *lowerer) emit(op *ir.Op) *ir.Op {
	lw.cur.Ops = append(lw.cur.Ops, op)
	return op
}

func (lw *lowerer) newBlock() *ir.Block {
	b := lw.f.NewBlock()
	b.LoopDepth = lw.loopDepth
	return b
}

// link adds a CFG edge from to b.
func link(from, to *ir.Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// br terminates the current block with an unconditional branch and
// makes `to` the current block... callers switch blocks themselves.
func (lw *lowerer) br(to *ir.Block) {
	lw.emit(&ir.Op{Kind: ir.OpBr})
	link(lw.cur, to)
}

func (lw *lowerer) condBr(cond ir.Reg, ifTrue, ifFalse *ir.Block) {
	lw.emit(&ir.Op{Kind: ir.OpCondBr, Args: [2]ir.Reg{cond}})
	link(lw.cur, ifTrue)
	link(lw.cur, ifFalse)
}

func (lw *lowerer) lowerFunc(fn *minic.FuncDecl) (*ir.Func, error) {
	f := ir.NewFunc(fn.Name, typeOf(fn.Ret))
	lw.f = f
	lw.loopDepth = 0
	lw.cur = f.NewBlock()

	// Parameters: load each incoming slot into a fresh register.
	slots := lw.params[fn.Name]
	for i, p := range fn.Params {
		slot := slots[i]
		f.Params = append(f.Params, slot)
		f.Locals = append(f.Locals, slot)
		r := f.NewReg(typeOf(p.Type))
		f.ParamRegs = append(f.ParamRegs, r)
		lw.regs[p.Sym] = r
		lw.emit(&ir.Op{Kind: ir.OpLoad, Type: typeOf(p.Type), Dst: r, Sym: slot})
	}
	if err := lw.stmt(fn.Body); err != nil {
		return nil, err
	}
	// Seal the final block if control can fall off the end.
	if t := lw.cur.Terminator(); t == nil || !t.Kind.IsTerminator() {
		if f.RetType == ir.TVoid {
			lw.emit(&ir.Op{Kind: ir.OpRet})
		} else {
			z := lw.zero(f.RetType)
			lw.emit(&ir.Op{Kind: ir.OpRet, Args: [2]ir.Reg{z}})
		}
	}
	return f, nil
}

func (lw *lowerer) zero(t ir.Type) ir.Reg {
	r := lw.f.NewReg(t)
	if t == ir.TFloat {
		lw.emit(&ir.Op{Kind: ir.OpFConst, Type: t, Dst: r})
	} else {
		lw.emit(&ir.Op{Kind: ir.OpConst, Type: t, Dst: r})
	}
	return r
}

func (lw *lowerer) stmt(s minic.Stmt) error {
	switch s := s.(type) {
	case *minic.BlockStmt:
		for _, st := range s.Stmts {
			if err := lw.stmt(st); err != nil {
				return err
			}
		}
		return nil
	case *minic.EmptyStmt:
		return nil
	case *minic.DeclStmt:
		return lw.declStmt(s.Decl)
	case *minic.ExprStmt:
		_, err := lw.expr(s.X)
		return err
	case *minic.IfStmt:
		return lw.ifStmt(s)
	case *minic.WhileStmt:
		return lw.whileStmt(s)
	case *minic.DoWhileStmt:
		return lw.doWhileStmt(s)
	case *minic.ForStmt:
		return lw.forStmt(s)
	case *minic.SwitchStmt:
		return lw.switchStmt(s)
	case *minic.ReturnStmt:
		if s.X != nil {
			v, err := lw.exprAs(s.X, lw.f.RetType)
			if err != nil {
				return err
			}
			lw.emit(&ir.Op{Kind: ir.OpRet, Args: [2]ir.Reg{v}})
		} else {
			lw.emit(&ir.Op{Kind: ir.OpRet})
		}
		lw.cur = lw.newBlock() // unreachable continuation
		return nil
	case *minic.BreakStmt:
		lw.br(lw.breaks[len(lw.breaks)-1])
		lw.cur = lw.newBlock()
		return nil
	case *minic.ContinueStmt:
		lw.br(lw.conts[len(lw.conts)-1])
		lw.cur = lw.newBlock()
		return nil
	}
	return fmt.Errorf("lower: unknown statement %T", s)
}

func (lw *lowerer) declStmt(d *minic.VarDecl) error {
	if d.Sym.IsArray() {
		sym := &ir.Symbol{
			Name: lw.f.Name + "." + d.Name,
			Kind: ir.SymLocal,
			Elem: typeOf(d.Type),
			Size: d.Sym.Words(),
			Dims: d.Dims,
		}
		lw.syms[d.Sym] = sym
		lw.f.Locals = append(lw.f.Locals, sym)
		if d.Init != nil {
			words, err := constWords(d)
			if err != nil {
				return err
			}
			// C semantics: re-initialize on each entry to the scope.
			for i, w := range words {
				v := lw.f.NewReg(sym.Elem)
				if sym.Elem == ir.TFloat {
					lw.emit(&ir.Op{Kind: ir.OpFConst, Type: sym.Elem, Dst: v,
						FImm: float64(math.Float32frombits(w))})
				} else {
					lw.emit(&ir.Op{Kind: ir.OpConst, Type: sym.Elem, Dst: v, Imm: int64(int32(w))})
				}
				ix := lw.f.NewReg(ir.TInt)
				lw.emit(&ir.Op{Kind: ir.OpConst, Type: ir.TInt, Dst: ix, Imm: int64(i)})
				lw.store(sym, ix, v)
			}
		}
		return nil
	}
	// Scalar local: promote to a virtual register.
	r := lw.f.NewReg(typeOf(d.Type))
	lw.regs[d.Sym] = r
	if d.Init != nil {
		v, err := lw.exprAs(d.Init, typeOf(d.Type))
		if err != nil {
			return err
		}
		lw.emit(&ir.Op{Kind: ir.OpMov, Type: typeOf(d.Type), Dst: r, Args: [2]ir.Reg{v}})
	} else {
		// Define the register so liveness never sees an upward-exposed
		// use of an undefined value.
		if typeOf(d.Type) == ir.TFloat {
			lw.emit(&ir.Op{Kind: ir.OpFConst, Type: ir.TFloat, Dst: r})
		} else {
			lw.emit(&ir.Op{Kind: ir.OpConst, Type: ir.TInt, Dst: r})
		}
	}
	return nil
}

func (lw *lowerer) ifStmt(s *minic.IfStmt) error {
	cond, err := lw.expr(s.Cond)
	if err != nil {
		return err
	}
	thenB := lw.newBlock()
	exitB := lw.newBlock()
	elseB := exitB
	if s.Else != nil {
		elseB = lw.newBlock()
	}
	lw.condBr(cond, thenB, elseB)
	lw.cur = thenB
	if err := lw.stmt(s.Then); err != nil {
		return err
	}
	lw.br(exitB)
	if s.Else != nil {
		lw.cur = elseB
		if err := lw.stmt(s.Else); err != nil {
			return err
		}
		lw.br(exitB)
	}
	lw.cur = exitB
	return nil
}

func (lw *lowerer) whileStmt(s *minic.WhileStmt) error {
	lw.loopDepth++
	condB := lw.newBlock()
	bodyB := lw.newBlock()
	lw.loopDepth--
	exitB := lw.newBlock()
	lw.loopDepth++

	lw.br(condB)
	lw.cur = condB
	cond, err := lw.expr(s.Cond)
	if err != nil {
		return err
	}
	lw.condBr(cond, bodyB, exitB)

	lw.breaks = append(lw.breaks, exitB)
	lw.conts = append(lw.conts, condB)
	lw.cur = bodyB
	err = lw.stmt(s.Body)
	lw.breaks = lw.breaks[:len(lw.breaks)-1]
	lw.conts = lw.conts[:len(lw.conts)-1]
	if err != nil {
		return err
	}
	lw.br(condB)
	lw.loopDepth--
	lw.cur = exitB
	return nil
}

// doWhileStmt lowers a bottom-tested loop: body, then condition with a
// back edge. continue targets the condition block, break the exit.
func (lw *lowerer) doWhileStmt(s *minic.DoWhileStmt) error {
	lw.loopDepth++
	bodyB := lw.newBlock()
	condB := lw.newBlock()
	lw.loopDepth--
	exitB := lw.newBlock()
	lw.loopDepth++

	lw.br(bodyB)
	lw.breaks = append(lw.breaks, exitB)
	lw.conts = append(lw.conts, condB)
	lw.cur = bodyB
	err := lw.stmt(s.Body)
	lw.breaks = lw.breaks[:len(lw.breaks)-1]
	lw.conts = lw.conts[:len(lw.conts)-1]
	if err != nil {
		return err
	}
	lw.br(condB)
	lw.cur = condB
	cond, err := lw.expr(s.Cond)
	if err != nil {
		return err
	}
	lw.condBr(cond, bodyB, exitB)
	lw.loopDepth--
	lw.cur = exitB
	return nil
}

func (lw *lowerer) forStmt(s *minic.ForStmt) error {
	if s.Init != nil {
		if err := lw.stmt(s.Init); err != nil {
			return err
		}
	}
	lw.loopDepth++
	condB := lw.newBlock()
	bodyB := lw.newBlock()
	postB := lw.newBlock()
	lw.loopDepth--
	exitB := lw.newBlock()
	lw.loopDepth++

	lw.br(condB)
	lw.cur = condB
	if s.Cond != nil {
		cond, err := lw.expr(s.Cond)
		if err != nil {
			return err
		}
		lw.condBr(cond, bodyB, exitB)
	} else {
		lw.br(bodyB)
	}

	lw.breaks = append(lw.breaks, exitB)
	lw.conts = append(lw.conts, postB)
	lw.cur = bodyB
	err := lw.stmt(s.Body)
	lw.breaks = lw.breaks[:len(lw.breaks)-1]
	lw.conts = lw.conts[:len(lw.conts)-1]
	if err != nil {
		return err
	}
	lw.br(postB)
	lw.cur = postB
	if s.Post != nil {
		if _, err := lw.expr(s.Post); err != nil {
			return err
		}
	}
	lw.br(condB)
	lw.loopDepth--
	lw.cur = exitB
	return nil
}

// switchStmt lowers a C switch: the scrutinee is evaluated once, a
// chain of equality tests dispatches to the matching case body, and
// bodies fall through to the next case unless they break.
func (lw *lowerer) switchStmt(s *minic.SwitchStmt) error {
	x, err := lw.exprAs(s.X, ir.TInt)
	if err != nil {
		return err
	}
	exitB := lw.newBlock()
	bodies := make([]*ir.Block, len(s.Cases))
	for i := range s.Cases {
		bodies[i] = lw.newBlock()
	}

	// Dispatch chain.
	defaultIdx := -1
	for i, c := range s.Cases {
		if c.Default {
			defaultIdx = i
			continue
		}
		v, err := lw.exprAs(c.Val, ir.TInt)
		if err != nil {
			return err
		}
		t := lw.f.NewReg(ir.TInt)
		lw.emit(&ir.Op{Kind: ir.OpSetEQ, Type: ir.TInt, Dst: t, Args: [2]ir.Reg{x, v}})
		next := lw.newBlock()
		lw.condBr(t, bodies[i], next)
		lw.cur = next
	}
	if defaultIdx >= 0 {
		lw.br(bodies[defaultIdx])
	} else {
		lw.br(exitB)
	}

	// Case bodies, falling through in declaration order.
	lw.breaks = append(lw.breaks, exitB)
	for i, c := range s.Cases {
		lw.cur = bodies[i]
		for _, st := range c.Stmts {
			if err := lw.stmt(st); err != nil {
				lw.breaks = lw.breaks[:len(lw.breaks)-1]
				return err
			}
		}
		if i+1 < len(bodies) {
			lw.br(bodies[i+1])
		} else {
			lw.br(exitB)
		}
	}
	lw.breaks = lw.breaks[:len(lw.breaks)-1]
	lw.cur = exitB
	return nil
}

// --- Expressions ---

// exprAs lowers e and converts the result to type t.
func (lw *lowerer) exprAs(e minic.Expr, t ir.Type) (ir.Reg, error) {
	r, err := lw.expr(e)
	if err != nil {
		return ir.NoReg, err
	}
	return lw.convert(r, typeOf(e.TypeOf()), t), nil
}

func (lw *lowerer) convert(r ir.Reg, from, to ir.Type) ir.Reg {
	if from == to || to == ir.TVoid {
		return r
	}
	d := lw.f.NewReg(to)
	k := ir.OpIntToFloat
	if from == ir.TFloat {
		k = ir.OpFloatToInt
	}
	lw.emit(&ir.Op{Kind: k, Type: to, Dst: d, Args: [2]ir.Reg{r}})
	return d
}

func (lw *lowerer) load(sym *ir.Symbol, idx ir.Reg) ir.Reg {
	d := lw.f.NewReg(sym.Elem)
	lw.emit(&ir.Op{Kind: ir.OpLoad, Type: sym.Elem, Dst: d, Sym: sym, Idx: idx})
	return d
}

func (lw *lowerer) store(sym *ir.Symbol, idx ir.Reg, v ir.Reg) {
	lw.stored[sym] = true
	lw.emit(&ir.Op{Kind: ir.OpStore, Args: [2]ir.Reg{v}, Sym: sym, Idx: idx})
}

// place is an lvalue: either a promoted register or a memory location.
type place struct {
	reg ir.Reg     // valid when sym == nil
	sym *ir.Symbol // memory location
	idx ir.Reg     // index register (NoReg for scalars)
	typ ir.Type
}

func (lw *lowerer) lvalue(e minic.Expr) (place, error) {
	switch e := e.(type) {
	case *minic.Ident:
		if r, ok := lw.regs[e.Sym]; ok {
			return place{reg: r, typ: lw.f.RegType(r)}, nil
		}
		sym := lw.syms[e.Sym]
		return place{sym: sym, typ: sym.Elem}, nil
	case *minic.IndexExpr:
		sym := lw.syms[e.Arr.Sym]
		idx, err := lw.index(sym, e)
		if err != nil {
			return place{}, err
		}
		return place{sym: sym, idx: idx, typ: sym.Elem}, nil
	}
	return place{}, fmt.Errorf("lower: not an lvalue: %T", e)
}

// index computes the (flattened) element index register for an array
// access.
func (lw *lowerer) index(sym *ir.Symbol, e *minic.IndexExpr) (ir.Reg, error) {
	idx, err := lw.exprAs(e.Idxs[0], ir.TInt)
	if err != nil {
		return ir.NoReg, err
	}
	if len(e.Idxs) == 2 {
		cols := lw.f.NewReg(ir.TInt)
		lw.emit(&ir.Op{Kind: ir.OpConst, Type: ir.TInt, Dst: cols, Imm: int64(sym.Dims[1])})
		row := lw.f.NewReg(ir.TInt)
		lw.emit(&ir.Op{Kind: ir.OpMul, Type: ir.TInt, Dst: row, Args: [2]ir.Reg{idx, cols}})
		j, err := lw.exprAs(e.Idxs[1], ir.TInt)
		if err != nil {
			return ir.NoReg, err
		}
		flat := lw.f.NewReg(ir.TInt)
		lw.emit(&ir.Op{Kind: ir.OpAdd, Type: ir.TInt, Dst: flat, Args: [2]ir.Reg{row, j}})
		return flat, nil
	}
	return idx, nil
}

func (lw *lowerer) readPlace(p place) ir.Reg {
	if p.sym == nil {
		return p.reg
	}
	return lw.load(p.sym, p.idx)
}

func (lw *lowerer) writePlace(p place, v ir.Reg) {
	if p.sym == nil {
		lw.emit(&ir.Op{Kind: ir.OpMov, Type: p.typ, Dst: p.reg, Args: [2]ir.Reg{v}})
		return
	}
	lw.store(p.sym, p.idx, v)
}

func (lw *lowerer) expr(e minic.Expr) (ir.Reg, error) {
	switch e := e.(type) {
	case *minic.IntLit:
		r := lw.f.NewReg(ir.TInt)
		lw.emit(&ir.Op{Kind: ir.OpConst, Type: ir.TInt, Dst: r, Imm: e.Val})
		return r, nil
	case *minic.FloatLit:
		r := lw.f.NewReg(ir.TFloat)
		lw.emit(&ir.Op{Kind: ir.OpFConst, Type: ir.TFloat, Dst: r, FImm: e.Val})
		return r, nil
	case *minic.Ident:
		p, err := lw.lvalue(e)
		if err != nil {
			return ir.NoReg, err
		}
		return lw.readPlace(p), nil
	case *minic.IndexExpr:
		p, err := lw.lvalue(e)
		if err != nil {
			return ir.NoReg, err
		}
		return lw.readPlace(p), nil
	case *minic.CallExpr:
		return lw.call(e)
	case *minic.UnaryExpr:
		return lw.unary(e)
	case *minic.CastExpr:
		return lw.exprAs(e.X, typeOf(e.To))
	case *minic.BinaryExpr:
		return lw.binary(e)
	case *minic.CondExpr:
		return lw.condExpr(e)
	case *minic.AssignExpr:
		return lw.assign(e)
	case *minic.IncDecExpr:
		return lw.incDec(e)
	}
	return ir.NoReg, fmt.Errorf("lower: unknown expression %T", e)
}

func (lw *lowerer) call(e *minic.CallExpr) (ir.Reg, error) {
	slots := lw.params[e.Name]
	for i, a := range e.Args {
		v, err := lw.exprAs(a, slots[i].Elem)
		if err != nil {
			return ir.NoReg, err
		}
		lw.store(slots[i], ir.NoReg, v)
	}
	ret := typeOf(e.TypeOf())
	op := &ir.Op{Kind: ir.OpCall, Callee: e.Name, Type: ret}
	if ret != ir.TVoid {
		op.Dst = lw.f.NewReg(ret)
	}
	lw.emit(op)
	return op.Dst, nil
}

func (lw *lowerer) unary(e *minic.UnaryExpr) (ir.Reg, error) {
	x, err := lw.expr(e.X)
	if err != nil {
		return ir.NoReg, err
	}
	t := typeOf(e.TypeOf())
	d := lw.f.NewReg(t)
	switch e.Op {
	case minic.Minus:
		k := ir.OpNeg
		if t == ir.TFloat {
			k = ir.OpFNeg
		}
		lw.emit(&ir.Op{Kind: k, Type: t, Dst: d, Args: [2]ir.Reg{x}})
	case minic.Bang:
		// !x == (x == 0)
		z := lw.zero(typeOf(e.X.TypeOf()))
		k := ir.OpSetEQ
		if typeOf(e.X.TypeOf()) == ir.TFloat {
			k = ir.OpFSetEQ
		}
		lw.emit(&ir.Op{Kind: k, Type: ir.TInt, Dst: d, Args: [2]ir.Reg{x, z}})
	case minic.Tilde:
		lw.emit(&ir.Op{Kind: ir.OpNot, Type: ir.TInt, Dst: d, Args: [2]ir.Reg{x}})
	default:
		return ir.NoReg, fmt.Errorf("lower: bad unary op %s", e.Op)
	}
	return d, nil
}

var intBinKind = map[minic.Kind]ir.OpKind{
	minic.Plus: ir.OpAdd, minic.Minus: ir.OpSub, minic.Star: ir.OpMul,
	minic.Slash: ir.OpDiv, minic.Percent: ir.OpRem,
	minic.Amp: ir.OpAnd, minic.Pipe: ir.OpOr, minic.Caret: ir.OpXor,
	minic.Shl: ir.OpShl, minic.Shr: ir.OpShr,
	minic.EQ: ir.OpSetEQ, minic.NE: ir.OpSetNE, minic.LT: ir.OpSetLT,
	minic.LE: ir.OpSetLE, minic.GT: ir.OpSetGT, minic.GE: ir.OpSetGE,
}

var floatBinKind = map[minic.Kind]ir.OpKind{
	minic.Plus: ir.OpFAdd, minic.Minus: ir.OpFSub, minic.Star: ir.OpFMul,
	minic.Slash: ir.OpFDiv,
	minic.EQ:    ir.OpFSetEQ, minic.NE: ir.OpFSetNE, minic.LT: ir.OpFSetLT,
	minic.LE: ir.OpFSetLE, minic.GT: ir.OpFSetGT, minic.GE: ir.OpFSetGE,
}

func (lw *lowerer) binary(e *minic.BinaryExpr) (ir.Reg, error) {
	if e.Op == minic.AndAnd || e.Op == minic.OrOr {
		return lw.shortCircuit(e)
	}
	// Operand type: float if either side is float (comparisons compare
	// in the promoted type but produce int).
	opT := ir.TInt
	if typeOf(e.L.TypeOf()) == ir.TFloat || typeOf(e.R.TypeOf()) == ir.TFloat {
		opT = ir.TFloat
	}
	l, err := lw.exprAs(e.L, opT)
	if err != nil {
		return ir.NoReg, err
	}
	r, err := lw.exprAs(e.R, opT)
	if err != nil {
		return ir.NoReg, err
	}
	table := intBinKind
	if opT == ir.TFloat {
		table = floatBinKind
	}
	k, ok := table[e.Op]
	if !ok {
		return ir.NoReg, fmt.Errorf("lower: bad binary op %s for %s", e.Op, opT)
	}
	resT := typeOf(e.TypeOf())
	d := lw.f.NewReg(resT)
	lw.emit(&ir.Op{Kind: k, Type: resT, Dst: d, Args: [2]ir.Reg{l, r}})
	return d, nil
}

// shortCircuit lowers && and || with proper control flow.
func (lw *lowerer) shortCircuit(e *minic.BinaryExpr) (ir.Reg, error) {
	d := lw.f.NewReg(ir.TInt)
	l, err := lw.expr(e.L)
	if err != nil {
		return ir.NoReg, err
	}
	evalR := lw.newBlock()
	skip := lw.newBlock()
	exit := lw.newBlock()
	if e.Op == minic.AndAnd {
		lw.condBr(l, evalR, skip) // false -> result 0
	} else {
		lw.condBr(l, skip, evalR) // true -> result 1
	}
	lw.cur = skip
	c := &ir.Op{Kind: ir.OpConst, Type: ir.TInt, Dst: d}
	if e.Op == minic.OrOr {
		c.Imm = 1
	}
	lw.emit(c)
	lw.br(exit)
	lw.cur = evalR
	r, err := lw.expr(e.R)
	if err != nil {
		return ir.NoReg, err
	}
	// Normalize to 0/1.
	z := lw.zero(typeOf(e.R.TypeOf()))
	k := ir.OpSetNE
	if typeOf(e.R.TypeOf()) == ir.TFloat {
		k = ir.OpFSetNE
	}
	lw.emit(&ir.Op{Kind: k, Type: ir.TInt, Dst: d, Args: [2]ir.Reg{r, z}})
	lw.br(exit)
	lw.cur = exit
	return d, nil
}

func (lw *lowerer) condExpr(e *minic.CondExpr) (ir.Reg, error) {
	t := typeOf(e.TypeOf())
	d := lw.f.NewReg(t)
	c, err := lw.expr(e.Cond)
	if err != nil {
		return ir.NoReg, err
	}
	thenB := lw.newBlock()
	elseB := lw.newBlock()
	exit := lw.newBlock()
	lw.condBr(c, thenB, elseB)
	lw.cur = thenB
	v, err := lw.exprAs(e.Then, t)
	if err != nil {
		return ir.NoReg, err
	}
	lw.emit(&ir.Op{Kind: ir.OpMov, Type: t, Dst: d, Args: [2]ir.Reg{v}})
	lw.br(exit)
	lw.cur = elseB
	v, err = lw.exprAs(e.Else, t)
	if err != nil {
		return ir.NoReg, err
	}
	lw.emit(&ir.Op{Kind: ir.OpMov, Type: t, Dst: d, Args: [2]ir.Reg{v}})
	lw.br(exit)
	lw.cur = exit
	return d, nil
}

var compoundOp = map[minic.Kind]minic.Kind{
	minic.PlusAssign: minic.Plus, minic.MinusAssign: minic.Minus,
	minic.StarAssign: minic.Star, minic.SlashAssign: minic.Slash,
	minic.PercentAssign: minic.Percent, minic.AmpAssign: minic.Amp,
	minic.PipeAssign: minic.Pipe, minic.CaretAssign: minic.Caret,
	minic.ShlAssign: minic.Shl, minic.ShrAssign: minic.Shr,
}

func (lw *lowerer) assign(e *minic.AssignExpr) (ir.Reg, error) {
	p, err := lw.lvalue(e.Lhs)
	if err != nil {
		return ir.NoReg, err
	}
	if e.Op == minic.Assign {
		v, err := lw.exprAs(e.Rhs, p.typ)
		if err != nil {
			return ir.NoReg, err
		}
		lw.writePlace(p, v)
		return v, nil
	}
	// Compound assignment: read-modify-write, index evaluated once.
	old := lw.readPlace(p)
	binOp := compoundOp[e.Op]
	opT := p.typ
	if typeOf(e.Rhs.TypeOf()) == ir.TFloat {
		opT = ir.TFloat
	}
	l := lw.convert(old, p.typ, opT)
	r, err := lw.exprAs(e.Rhs, opT)
	if err != nil {
		return ir.NoReg, err
	}
	table := intBinKind
	if opT == ir.TFloat {
		table = floatBinKind
	}
	k, ok := table[binOp]
	if !ok {
		return ir.NoReg, fmt.Errorf("lower: bad compound op %s for %s", e.Op, opT)
	}
	tmp := lw.f.NewReg(opT)
	lw.emit(&ir.Op{Kind: k, Type: opT, Dst: tmp, Args: [2]ir.Reg{l, r}})
	v := lw.convert(tmp, opT, p.typ)
	lw.writePlace(p, v)
	return v, nil
}

func (lw *lowerer) incDec(e *minic.IncDecExpr) (ir.Reg, error) {
	p, err := lw.lvalue(e.X)
	if err != nil {
		return ir.NoReg, err
	}
	old := lw.readPlace(p)
	if e.Postfix && p.sym == nil {
		// For a register-resident variable, readPlace returns the
		// register itself; the old value must be copied out before the
		// write or the postfix result would see the update.
		cp := lw.f.NewReg(p.typ)
		lw.emit(&ir.Op{Kind: ir.OpMov, Type: p.typ, Dst: cp, Args: [2]ir.Reg{old}})
		old = cp
	}
	one := lw.f.NewReg(p.typ)
	addK, subK := ir.OpAdd, ir.OpSub
	if p.typ == ir.TFloat {
		lw.emit(&ir.Op{Kind: ir.OpFConst, Type: p.typ, Dst: one, FImm: 1})
		addK, subK = ir.OpFAdd, ir.OpFSub
	} else {
		lw.emit(&ir.Op{Kind: ir.OpConst, Type: p.typ, Dst: one, Imm: 1})
	}
	k := addK
	if e.Op == minic.Dec {
		k = subK
	}
	nw := lw.f.NewReg(p.typ)
	lw.emit(&ir.Op{Kind: k, Type: p.typ, Dst: nw, Args: [2]ir.Reg{old, one}})
	lw.writePlace(p, nw)
	if e.Postfix {
		return old, nil
	}
	return nw, nil
}

// --- Constant initializers ---

// constWords evaluates a declaration initializer to raw 32-bit words.
func constWords(d *minic.VarDecl) ([]uint32, error) {
	if len(d.Dims) == 0 {
		w, err := constWord(d.Init, d.Type)
		if err != nil {
			return nil, err
		}
		return []uint32{w}, nil
	}
	lst := d.Init.(*minic.InitList)
	return flattenInit(lst, d.Type, d.Dims)
}

func flattenInit(lst *minic.InitList, t minic.TypeName, dims []int) ([]uint32, error) {
	var out []uint32
	for _, e := range lst.Elems {
		if sub, ok := e.(*minic.InitList); ok {
			row, err := flattenInit(sub, t, dims[1:])
			if err != nil {
				return nil, err
			}
			for len(row) < dims[1] {
				row = append(row, 0)
			}
			out = append(out, row...)
			continue
		}
		w, err := constWord(e, t)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

func constWord(e minic.Expr, t minic.TypeName) (uint32, error) {
	neg := false
	for {
		u, ok := e.(*minic.UnaryExpr)
		if !ok || u.Op != minic.Minus {
			break
		}
		neg = !neg
		e = u.X
	}
	switch e := e.(type) {
	case *minic.IntLit:
		v := e.Val
		if neg {
			v = -v
		}
		if t == minic.TypeFloat {
			return math.Float32bits(float32(v)), nil
		}
		return uint32(int32(v)), nil
	case *minic.FloatLit:
		v := e.Val
		if neg {
			v = -v
		}
		if t == minic.TypeFloat {
			return math.Float32bits(float32(v)), nil
		}
		return uint32(int32(v)), nil
	}
	return 0, fmt.Errorf("lower: non-constant initializer %T", e)
}

// checkNoRecursion rejects call-graph cycles: static stack allocation
// requires an acyclic call graph.
func checkNoRecursion(p *ir.Program) error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := make(map[string]int)
	var visit func(name string, path []string) error
	visit = func(name string, path []string) error {
		switch state[name] {
		case grey:
			return fmt.Errorf("lower: recursion detected: %v -> %s (static stack allocation requires an acyclic call graph)", path, name)
		case black:
			return nil
		}
		state[name] = grey
		f := p.Func(name)
		if f != nil {
			for _, b := range f.Blocks {
				for _, op := range b.Ops {
					if op.Kind == ir.OpCall {
						if err := visit(op.Callee, append(path, name)); err != nil {
							return err
						}
					}
				}
			}
		}
		state[name] = black
		return nil
	}
	for _, f := range p.Funcs {
		if err := visit(f.Name, nil); err != nil {
			return err
		}
	}
	return nil
}
