package bench

import (
	"testing"

	"dualbank/internal/alloc"
	"dualbank/internal/pipeline"
	"dualbank/internal/sim"
)

// TestAllBenchmarksAllModes compiles and runs every benchmark under
// every allocation mode and validates its outputs against the Go
// reference — the broadest integration test in the repository.
func TestAllBenchmarksAllModes(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	modes := []alloc.Mode{
		alloc.SingleBank, alloc.CB, alloc.CBProfiled,
		alloc.CBDup, alloc.FullDup, alloc.Ideal, alloc.LowOrder,
	}
	all := append(Kernels(), Applications()...)
	for _, p := range all {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			var base Result
			for _, mode := range modes {
				res, err := Run(p, mode)
				if err != nil {
					t.Fatalf("%v: %v", mode, err)
				}
				if mode == alloc.SingleBank {
					base = res
				} else {
					t.Logf("%-12v cycles=%-10d gain=%+6.1f%% dupStores=%d",
						mode, res.Cycles, Gain(base, res), res.DupStores)
				}
			}
			t.Logf("%-12v cycles=%-10d cost=%d", alloc.SingleBank, base.Cycles, base.Mem.Total())
		})
	}
}

// TestBenchmarkSourcesCompile is the fast variant: single-bank compile
// and run with validation only.
func TestBenchmarkSourcesCompile(t *testing.T) {
	for _, p := range append(Kernels(), Applications()...) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			if _, err := Run(p, alloc.CB); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestInterpMatchesMachineOnSuite runs a slice of the suite on both
// execution engines and requires identical output images — the two
// independently-written semantics must agree on real programs.
func TestInterpMatchesMachineOnSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite in short mode")
	}
	names := []string{"fir_32_1", "iir_4_64", "latnrm_8_1", "adpcm", "histogram", "trellis", "lpc"}
	for _, name := range names {
		p, _ := ByName(name)
		c, err := pipeline.Compile(p.Source, name, pipeline.Options{Mode: alloc.CBDup})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		in := sim.NewInterp(c.IR)
		if err := in.Run(); err != nil {
			t.Fatalf("%s: interp: %v", name, err)
		}
		m, err := c.Run()
		if err != nil {
			t.Fatalf("%s: machine: %v", name, err)
		}
		for _, g := range c.IR.Globals {
			for i := 0; i < g.Size; i++ {
				mw, err := m.Word(g, i)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if iw := in.Word(g, i); iw != mw {
					t.Fatalf("%s: %s[%d]: interp %#x, machine %#x", name, g.Name, i, iw, mw)
				}
			}
		}
	}
}
