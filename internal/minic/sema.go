package minic

import "fmt"

// Analyze resolves names and type-checks the file, annotating the AST
// in place. On success every Expr has a type and every Ident/VarDecl a
// VarSym.
func Analyze(f *File) error {
	s := &sema{
		funcs:   make(map[string]*FuncDecl),
		globals: make(map[string]*VarSym),
	}
	for _, d := range f.Decls {
		if s.globals[d.Name] != nil {
			return errf(d.Pos, "global %q redeclared", d.Name)
		}
		if s.funcs[d.Name] != nil {
			return errf(d.Pos, "%q redeclared as variable", d.Name)
		}
		sym := &VarSym{Name: d.Name, Type: d.Type, Dims: d.Dims, Global: true, Decl: d}
		d.Sym = sym
		s.globals[d.Name] = sym
		if d.Init != nil {
			if err := s.checkInit(d, true); err != nil {
				return err
			}
		}
	}
	for _, fn := range f.Funcs {
		if s.funcs[fn.Name] != nil {
			return errf(fn.Pos, "function %q redefined", fn.Name)
		}
		if s.globals[fn.Name] != nil {
			return errf(fn.Pos, "%q redeclared as function", fn.Name)
		}
		s.funcs[fn.Name] = fn
	}
	for _, fn := range f.Funcs {
		if err := s.checkFunc(fn); err != nil {
			return err
		}
	}
	if s.funcs["main"] == nil {
		return fmt.Errorf("program has no main function")
	}
	return nil
}

type sema struct {
	funcs   map[string]*FuncDecl
	globals map[string]*VarSym

	fn        *FuncDecl
	scopes    []map[string]*VarSym
	loopDepth int // enclosing loops (continue targets)
	brkDepth  int // enclosing loops or switches (break targets)
}

func (s *sema) pushScope() { s.scopes = append(s.scopes, map[string]*VarSym{}) }
func (s *sema) popScope()  { s.scopes = s.scopes[:len(s.scopes)-1] }

func (s *sema) declare(d *VarDecl, isParam bool) error {
	top := s.scopes[len(s.scopes)-1]
	if top[d.Name] != nil {
		return errf(d.Pos, "%q redeclared in this scope", d.Name)
	}
	sym := &VarSym{Name: d.Name, Type: d.Type, Dims: d.Dims, IsParam: isParam, Decl: d}
	d.Sym = sym
	top[d.Name] = sym
	return nil
}

func (s *sema) lookup(name string) *VarSym {
	for i := len(s.scopes) - 1; i >= 0; i-- {
		if v := s.scopes[i][name]; v != nil {
			return v
		}
	}
	return s.globals[name]
}

func (s *sema) checkFunc(fn *FuncDecl) error {
	s.fn = fn
	s.scopes = nil
	s.loopDepth = 0
	s.pushScope()
	for _, p := range fn.Params {
		if err := s.declare(p, true); err != nil {
			return err
		}
	}
	if err := s.checkBlock(fn.Body); err != nil {
		return err
	}
	s.popScope()
	return nil
}

func (s *sema) checkBlock(b *BlockStmt) error {
	s.pushScope()
	defer s.popScope()
	for _, st := range b.Stmts {
		if err := s.checkStmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (s *sema) checkStmt(st Stmt) error {
	switch st := st.(type) {
	case *BlockStmt:
		return s.checkBlock(st)
	case *EmptyStmt:
		return nil
	case *DeclStmt:
		d := st.Decl
		if err := s.declare(d, false); err != nil {
			return err
		}
		if d.Init != nil {
			return s.checkInit(d, false)
		}
		return nil
	case *ExprStmt:
		_, err := s.checkExpr(st.X)
		return err
	case *IfStmt:
		if err := s.checkCond(st.Cond); err != nil {
			return err
		}
		if err := s.checkStmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return s.checkStmt(st.Else)
		}
		return nil
	case *WhileStmt:
		if err := s.checkCond(st.Cond); err != nil {
			return err
		}
		s.loopDepth++
		s.brkDepth++
		defer func() { s.loopDepth--; s.brkDepth-- }()
		return s.checkStmt(st.Body)
	case *DoWhileStmt:
		s.loopDepth++
		s.brkDepth++
		err := s.checkStmt(st.Body)
		s.loopDepth--
		s.brkDepth--
		if err != nil {
			return err
		}
		return s.checkCond(st.Cond)
	case *SwitchStmt:
		return s.checkSwitch(st)
	case *ForStmt:
		s.pushScope()
		defer s.popScope()
		if st.Init != nil {
			if err := s.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := s.checkCond(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if _, err := s.checkExpr(st.Post); err != nil {
				return err
			}
		}
		s.loopDepth++
		s.brkDepth++
		defer func() { s.loopDepth--; s.brkDepth-- }()
		return s.checkStmt(st.Body)
	case *ReturnStmt:
		if s.fn.Ret == TypeVoid {
			if st.X != nil {
				return errf(st.Pos, "return with value in void function %q", s.fn.Name)
			}
			return nil
		}
		if st.X == nil {
			return errf(st.Pos, "return without value in function %q returning %s", s.fn.Name, s.fn.Ret)
		}
		t, err := s.checkExpr(st.X)
		if err != nil {
			return err
		}
		return s.requireScalar(st.X.ExprPos(), t, "return value")
	case *BreakStmt:
		if s.brkDepth == 0 {
			return errf(st.Pos, "break outside loop or switch")
		}
		return nil
	case *ContinueStmt:
		if s.loopDepth == 0 {
			return errf(st.Pos, "continue outside loop")
		}
		return nil
	}
	return fmt.Errorf("sema: unknown statement %T", st)
}

// checkSwitch validates a switch statement: integer scrutinee,
// constant unique integer case labels, at most one default.
func (s *sema) checkSwitch(st *SwitchStmt) error {
	t, err := s.checkExpr(st.X)
	if err != nil {
		return err
	}
	if t != TypeInt {
		return errf(st.Pos, "switch scrutinee must be int, got %s", t)
	}
	seen := map[int64]bool{}
	hasDefault := false
	s.brkDepth++
	defer func() { s.brkDepth-- }()
	for _, c := range st.Cases {
		if c.Default {
			if hasDefault {
				return errf(c.Pos, "multiple default cases")
			}
			hasDefault = true
		} else {
			if !isConstExpr(c.Val) {
				return errf(c.Pos, "case label must be a constant")
			}
			setConstType(c.Val, TypeInt)
			v, ok := constIntValue(c.Val)
			if !ok {
				return errf(c.Pos, "case label must be an integer constant")
			}
			if seen[v] {
				return errf(c.Pos, "duplicate case %d", v)
			}
			seen[v] = true
		}
		s.pushScope()
		for _, body := range c.Stmts {
			if err := s.checkStmt(body); err != nil {
				s.popScope()
				return err
			}
		}
		s.popScope()
	}
	return nil
}

// constIntValue evaluates a (possibly negated) integer literal.
func constIntValue(e Expr) (int64, bool) {
	neg := false
	for {
		u, ok := e.(*UnaryExpr)
		if !ok || u.Op != Minus {
			break
		}
		neg = !neg
		e = u.X
	}
	lit, ok := e.(*IntLit)
	if !ok {
		return 0, false
	}
	v := lit.Val
	if neg {
		v = -v
	}
	return v, true
}

func (s *sema) checkCond(e Expr) error {
	t, err := s.checkExpr(e)
	if err != nil {
		return err
	}
	return s.requireScalar(e.ExprPos(), t, "condition")
}

func (s *sema) requireScalar(pos Pos, t TypeName, what string) error {
	if t == TypeVoid {
		return errf(pos, "%s has no value (void)", what)
	}
	return nil
}

// checkInit validates a declaration initializer. Globals require
// constant initializers; locals accept any expression for scalars and
// constant lists for arrays.
func (s *sema) checkInit(d *VarDecl, global bool) error {
	if len(d.Dims) == 0 {
		if _, ok := d.Init.(*InitList); ok {
			return errf(d.Pos, "brace initializer for scalar %q", d.Name)
		}
		if global {
			if !isConstExpr(d.Init) {
				return errf(d.Pos, "global initializer for %q must be constant", d.Name)
			}
			setConstType(d.Init, d.Type)
			return nil
		}
		t, err := s.checkExpr(d.Init)
		if err != nil {
			return err
		}
		return s.requireScalar(d.Pos, t, "initializer")
	}
	lst, ok := d.Init.(*InitList)
	if !ok {
		return errf(d.Pos, "array %q needs a brace initializer", d.Name)
	}
	n, err := countInit(lst, d)
	if err != nil {
		return err
	}
	size := wordsOf(d.Dims)
	if n > size {
		return errf(d.Pos, "too many initializers for %q (%d > %d)", d.Name, n, size)
	}
	return nil
}

func wordsOf(dims []int) int {
	n := 1
	for _, d := range dims {
		n *= d
	}
	return n
}

func countInit(lst *InitList, d *VarDecl) (int, error) {
	n := 0
	for _, e := range lst.Elems {
		if sub, ok := e.(*InitList); ok {
			if len(d.Dims) != 2 {
				return 0, errf(sub.Pos, "nested initializer for 1-D array %q", d.Name)
			}
			m, err := countInit(sub, &VarDecl{Pos: d.Pos, Name: d.Name, Type: d.Type, Dims: d.Dims[1:]})
			if err != nil {
				return 0, err
			}
			if m > d.Dims[1] {
				return 0, errf(sub.Pos, "row initializer too long for %q", d.Name)
			}
			n += d.Dims[1]
			continue
		}
		if !isConstExpr(e) {
			return 0, errf(e.ExprPos(), "array initializer element must be constant")
		}
		setConstType(e, d.Type)
		n++
	}
	return n, nil
}

// isConstExpr reports whether e is a literal, possibly negated.
func isConstExpr(e Expr) bool {
	switch e := e.(type) {
	case *IntLit, *FloatLit:
		return true
	case *UnaryExpr:
		return e.Op == Minus && isConstExpr(e.X)
	}
	return false
}

func setConstType(e Expr, t TypeName) {
	e.setType(t)
	if u, ok := e.(*UnaryExpr); ok {
		setConstType(u.X, t)
	}
}

func (s *sema) checkExpr(e Expr) (TypeName, error) {
	switch e := e.(type) {
	case *IntLit:
		e.setType(TypeInt)
		return TypeInt, nil
	case *FloatLit:
		e.setType(TypeFloat)
		return TypeFloat, nil
	case *Ident:
		sym := s.lookup(e.Name)
		if sym == nil {
			return 0, errf(e.Pos, "undeclared identifier %q", e.Name)
		}
		if sym.IsArray() {
			return 0, errf(e.Pos, "array %q used without subscript", e.Name)
		}
		e.Sym = sym
		e.setType(sym.Type)
		return sym.Type, nil
	case *IndexExpr:
		sym := s.lookup(e.Arr.Name)
		if sym == nil {
			return 0, errf(e.Arr.Pos, "undeclared identifier %q", e.Arr.Name)
		}
		if !sym.IsArray() {
			return 0, errf(e.Arr.Pos, "subscript of non-array %q", e.Arr.Name)
		}
		if len(e.Idxs) != len(sym.Dims) {
			return 0, errf(e.Arr.Pos, "array %q has rank %d, got %d subscripts",
				e.Arr.Name, len(sym.Dims), len(e.Idxs))
		}
		e.Arr.Sym = sym
		e.Arr.setType(sym.Type)
		for _, ix := range e.Idxs {
			t, err := s.checkExpr(ix)
			if err != nil {
				return 0, err
			}
			if t != TypeInt {
				return 0, errf(ix.ExprPos(), "array subscript must be int, got %s", t)
			}
		}
		e.setType(sym.Type)
		return sym.Type, nil
	case *CallExpr:
		fn := s.funcs[e.Name]
		if fn == nil {
			return 0, errf(e.Pos, "call to undefined function %q", e.Name)
		}
		if len(e.Args) != len(fn.Params) {
			return 0, errf(e.Pos, "function %q takes %d arguments, got %d",
				e.Name, len(fn.Params), len(e.Args))
		}
		for i, a := range e.Args {
			t, err := s.checkExpr(a)
			if err != nil {
				return 0, err
			}
			if err := s.requireScalar(a.ExprPos(), t, "argument"); err != nil {
				return 0, err
			}
			_ = i
		}
		e.Decl = fn
		e.setType(fn.Ret)
		return fn.Ret, nil
	case *UnaryExpr:
		t, err := s.checkExpr(e.X)
		if err != nil {
			return 0, err
		}
		if err := s.requireScalar(e.Pos, t, "operand"); err != nil {
			return 0, err
		}
		switch e.Op {
		case Minus:
			e.setType(t)
			return t, nil
		case Bang:
			e.setType(TypeInt)
			return TypeInt, nil
		case Tilde:
			if t != TypeInt {
				return 0, errf(e.Pos, "operator ~ requires int, got %s", t)
			}
			e.setType(TypeInt)
			return TypeInt, nil
		}
		return 0, errf(e.Pos, "bad unary operator %s", e.Op)
	case *CastExpr:
		t, err := s.checkExpr(e.X)
		if err != nil {
			return 0, err
		}
		if err := s.requireScalar(e.Pos, t, "cast operand"); err != nil {
			return 0, err
		}
		e.setType(e.To)
		return e.To, nil
	case *BinaryExpr:
		lt, err := s.checkExpr(e.L)
		if err != nil {
			return 0, err
		}
		rt, err := s.checkExpr(e.R)
		if err != nil {
			return 0, err
		}
		if err := s.requireScalar(e.L.ExprPos(), lt, "operand"); err != nil {
			return 0, err
		}
		if err := s.requireScalar(e.R.ExprPos(), rt, "operand"); err != nil {
			return 0, err
		}
		switch e.Op {
		case Percent, Amp, Pipe, Caret, Shl, Shr:
			if lt != TypeInt || rt != TypeInt {
				return 0, errf(e.Pos, "operator %s requires int operands", e.Op)
			}
			e.setType(TypeInt)
			return TypeInt, nil
		case AndAnd, OrOr, EQ, NE, LT, LE, GT, GE:
			e.setType(TypeInt)
			return TypeInt, nil
		case Plus, Minus, Star, Slash:
			t := TypeInt
			if lt == TypeFloat || rt == TypeFloat {
				t = TypeFloat
			}
			e.setType(t)
			return t, nil
		}
		return 0, errf(e.Pos, "bad binary operator %s", e.Op)
	case *CondExpr:
		if err := s.checkCond(e.Cond); err != nil {
			return 0, err
		}
		tt, err := s.checkExpr(e.Then)
		if err != nil {
			return 0, err
		}
		et, err := s.checkExpr(e.Else)
		if err != nil {
			return 0, err
		}
		if err := s.requireScalar(e.Pos, tt, "?: arm"); err != nil {
			return 0, err
		}
		if err := s.requireScalar(e.Pos, et, "?: arm"); err != nil {
			return 0, err
		}
		t := TypeInt
		if tt == TypeFloat || et == TypeFloat {
			t = TypeFloat
		}
		e.setType(t)
		return t, nil
	case *AssignExpr:
		lt, err := s.checkExpr(e.Lhs)
		if err != nil {
			return 0, err
		}
		rt, err := s.checkExpr(e.Rhs)
		if err != nil {
			return 0, err
		}
		if err := s.requireScalar(e.Pos, rt, "assigned value"); err != nil {
			return 0, err
		}
		switch e.Op {
		case PercentAssign, AmpAssign, PipeAssign, CaretAssign, ShlAssign, ShrAssign:
			if lt != TypeInt || rt != TypeInt {
				return 0, errf(e.Pos, "operator %s requires int operands", e.Op)
			}
		}
		e.setType(lt)
		return lt, nil
	case *IncDecExpr:
		switch e.X.(type) {
		case *Ident, *IndexExpr:
		default:
			return 0, errf(e.Pos, "%s target must be a variable or array element", e.Op)
		}
		t, err := s.checkExpr(e.X)
		if err != nil {
			return 0, err
		}
		e.setType(t)
		return t, nil
	case *InitList:
		return 0, errf(e.Pos, "brace initializer outside declaration")
	}
	return 0, fmt.Errorf("sema: unknown expression %T", e)
}
