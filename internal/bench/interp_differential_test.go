package bench

import (
	"testing"

	"dualbank/internal/alloc"
	"dualbank/internal/pipeline"
	"dualbank/internal/sim"
)

// TestInterpMatchesMachineValues closes the oracle gap left by
// TestFastSimMatchesReference, which pins the two VLIW engines to each
// other but would miss a bug shared by both (a mis-scheduled store, a
// broken bank assignment). Here the independent oracle is sim.Interp —
// the IR-level reference semantics — and the property is value-level:
// for every benchmark under every allocation mode, every word of every
// global must be identical after the interpreter's run and the
// machine's run. Machine.Word additionally verifies that duplicated
// (BankBoth) symbols stayed coherent across both banks, so the CBDup
// and FullDup columns also audit the duplicate-store machinery.
func TestInterpMatchesMachineValues(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite in short mode")
	}
	modes := []alloc.Mode{
		alloc.SingleBank, alloc.CB, alloc.CBProfiled,
		alloc.CBDup, alloc.FullDup, alloc.Ideal, alloc.LowOrder,
	}
	for _, p := range append(Kernels(), Applications()...) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			for _, mode := range modes {
				c, err := pipeline.Compile(p.Source, p.Name, pipeline.Options{Mode: mode})
				if err != nil {
					t.Fatalf("%v: compile: %v", mode, err)
				}
				in := sim.NewInterp(c.IR)
				if err := in.Run(); err != nil {
					t.Fatalf("%v: interp: %v", mode, err)
				}
				m := sim.NewMachine(c.Sched)
				if err := m.Run(); err != nil {
					t.Fatalf("%v: machine: %v", mode, err)
				}
				for _, g := range c.IR.Globals {
					for i := 0; i < g.Size; i++ {
						mw, err := m.Word(g, i)
						if err != nil {
							t.Fatalf("%v: %s[%d]: %v", mode, g.Name, i, err)
						}
						if iw := in.Word(g, i); mw != iw {
							t.Fatalf("%v: %s[%d]: machine %#x, interp %#x",
								mode, g.Name, i, mw, iw)
						}
					}
				}
			}
		})
	}
}
