package cluster

import (
	"dualbank/internal/bench"
	"dualbank/internal/explore/store"
)

// l2Prefix namespaces the serving tier's result records inside the
// shared store so they can never collide with the explorer's
// checkpoint keys living in the same directory.
const l2Prefix = "l2run|"

// StoreCache adapts the explorer's content-addressed checkpoint store
// into the harness's L2 result cache. Gets fall through the in-memory
// index to disk, so records another node published after this one
// opened the store are visible; Puts are atomic write-throughs. Only
// successful measurements are stored, and timings are deliberately
// dropped: a cached result's compile/sim seconds describe some other
// node's past, not this request.
type StoreCache struct {
	s *store.Store
}

// NewStoreCache wraps a store as a shared L2 result cache.
func NewStoreCache(s *store.Store) *StoreCache { return &StoreCache{s: s} }

var _ bench.ResultCache = (*StoreCache)(nil)

// Get loads the result stored under key, if any node has published it.
func (c *StoreCache) Get(key string) (bench.Result, bool) {
	rec, ok := c.s.GetOrLoad(l2Prefix + key)
	if !ok || rec.Err != "" {
		return bench.Result{}, false
	}
	res := bench.Result{
		Cycles:     rec.Cycles,
		DupStores:  rec.DupStores,
		Duplicated: rec.Duplicated,
	}
	res.Mem.XData = rec.MemXData
	res.Mem.YData = rec.MemYData
	res.Mem.Stack = rec.MemStack
	res.Mem.Instr = rec.MemInstr
	return res, true
}

// Put publishes one computed result under key. Write failures are
// swallowed: the L2 is a cache, and a node that cannot reach the
// shared disk must keep serving from its own memory.
func (c *StoreCache) Put(key string, r bench.Result) {
	c.s.Put(l2Prefix+key, store.Record{
		Bench:      r.Bench,
		Cycles:     r.Cycles,
		MemXData:   r.Mem.XData,
		MemYData:   r.Mem.YData,
		MemStack:   r.Mem.Stack,
		MemInstr:   r.Mem.Instr,
		DupStores:  r.DupStores,
		Duplicated: r.Duplicated,
	})
}
