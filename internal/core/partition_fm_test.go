package core

import (
	"math/rand"
	"testing"
	"time"

	"dualbank/internal/ir"
)

// figure4Graph builds the paper's Figure 4/5 example graph: edges
// (A,B)=1, (A,C)=1, (A,D)=2, (B,C)=1, (B,D)=1, (C,D)=1.
func figure4Graph() *Graph {
	a, b, c, d := sym("A"), sym("B"), sym("C"), sym("D")
	g := NewGraph([]*ir.Symbol{a, b, c, d})
	top := &ir.Block{LoopDepth: 0}
	loop := &ir.Block{LoopDepth: 1}
	g.addEvent(a, b, top, WeightStatic)
	g.addEvent(a, c, top, WeightStatic)
	g.addEvent(a, d, loop, WeightStatic)
	g.addEvent(b, c, top, WeightStatic)
	g.addEvent(b, d, top, WeightStatic)
	g.addEvent(c, d, top, WeightStatic)
	return g
}

// timeIt returns the best-of-rounds wall time of f.
func timeIt(f func(), rounds int) time.Duration {
	best := time.Duration(1<<63 - 1)
	for r := 0; r < rounds; r++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// TestFMNeverWorseThanGreedy is the central property of the gain-bucket
// partitioner: across 200 seeded random graphs, FM's cut cost never
// exceeds greedy's, and whenever the costs tie the bank image (the
// exact X/Y membership, in order) is identical — FM phase 1 replays
// the greedy walk and phase 2 only commits strict improvements.
func TestFMNeverWorseThanGreedy(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, rng.Intn(4*n))
		greedy := g.Partition()
		fm := g.PartitionFM()
		if fm.Cost > greedy.Cost {
			t.Fatalf("seed %d: FM cost %d worse than greedy %d", seed, fm.Cost, greedy.Cost)
		}
		if fm.Cost == greedy.Cost {
			if !samePartition(fm, greedy) {
				t.Fatalf("seed %d: FM tied greedy at cost %d but produced a different bank image\nfm:     %v\ngreedy: %v",
					seed, fm.Cost, fm, greedy)
			}
		}
	}
}

// TestFMTraceMatchesGreedy: phase 1 of FM is the greedy walk with
// incremental gain bookkeeping, so its recorded trace — including the
// Figure 5 tie-breaks — must match greedy's move for move.
func TestFMTraceMatchesGreedy(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		n := 2 + rng.Intn(20)
		g := randomGraph(rng, n, rng.Intn(3*n))
		greedy := g.Partition()
		fm := g.PartitionFM()
		if len(fm.Trace) != len(greedy.Trace) {
			t.Fatalf("seed %d: trace lengths differ: fm %v greedy %v", seed, fm.Trace, greedy.Trace)
		}
		for i := range fm.Trace {
			if fm.Trace[i] != greedy.Trace[i] {
				t.Fatalf("seed %d: traces diverge at move %d: fm %v greedy %v", seed, i, fm.Trace, greedy.Trace)
			}
		}
	}
}

// TestFMFigure5 pins FM to the paper's published example: the same
// 7 -> 3 -> 2 walk the greedy partitioner is tested against.
func TestFMFigure5(t *testing.T) {
	g := figure4Graph()
	p := g.PartitionFM()
	if p.Cost != 2 {
		t.Fatalf("FM cost = %d, want 2", p.Cost)
	}
	want := []int64{7, 3, 2}
	if len(p.Trace) != len(want) {
		t.Fatalf("trace = %v, want %v", p.Trace, want)
	}
	for i := range want {
		if p.Trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", p.Trace, want)
		}
	}
}

// TestFMHeapFallback forces profile-scale weights past the gain
// bucket range so the queue runs in heap mode, and checks the same
// never-worse / identical-on-tie contract holds there too.
func TestFMHeapFallback(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		n := 3 + rng.Intn(12)
		syms := make([]*ir.Symbol, n)
		for i := range syms {
			syms[i] = &ir.Symbol{Name: string(rune('a' + i)), Size: 1}
		}
		g := NewGraph(syms)
		for e := 0; e < 3*n; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j || g.Weight(syms[i], syms[j]) != 0 {
				continue
			}
			// Weights in the millions, like loop-nest profile counts.
			g.SetWeight(syms[i], syms[j], int64(rng.Intn(5_000_000)+1_000_000))
		}
		var q gainQueue
		var pmax int64
		c := g.CSR()
		for i := 0; i < n; i++ {
			if d := c.weightedDegree(i); d > pmax {
				pmax = d
			}
		}
		q.init(n, pmax)
		if !q.useHeap && pmax > 0 {
			t.Fatalf("seed %d: expected heap fallback for pmax=%d", seed, pmax)
		}
		greedy := g.Partition()
		fm := g.PartitionFM()
		if fm.Cost > greedy.Cost {
			t.Fatalf("seed %d: heap-mode FM cost %d worse than greedy %d", seed, fm.Cost, greedy.Cost)
		}
		if fm.Cost == greedy.Cost && !samePartition(fm, greedy) {
			t.Fatalf("seed %d: heap-mode FM tied greedy but bank image differs", seed)
		}
	}
}

func samePartition(a, b *Partition) bool {
	if len(a.SetX) != len(b.SetX) || len(a.SetY) != len(b.SetY) {
		return false
	}
	for i := range a.SetX {
		if a.SetX[i] != b.SetX[i] {
			return false
		}
	}
	for i := range a.SetY {
		if a.SetY[i] != b.SetY[i] {
			return false
		}
	}
	return true
}

// benchGraph builds the ISSUE's reference synthetic workload: a
// 1000-node, ~10000-edge random graph with small static-style weights.
func benchGraph(tb testing.TB) *Graph {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 1000, 10000)
	if g.Edges() < 9000 {
		tb.Fatalf("bench graph too sparse: %d edges", g.Edges())
	}
	return g
}

func BenchmarkPartitionGreedy(b *testing.B) {
	g := benchGraph(b)
	g.CSR()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Partition()
	}
}

func BenchmarkPartitionFM(b *testing.B) {
	g := benchGraph(b)
	g.CSR()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.PartitionFM()
	}
}

func BenchmarkPartitionKL(b *testing.B) {
	g := benchGraph(b)
	g.CSR()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.PartitionKL()
	}
}

// TestFMSpeedupOnLargeGraph is the acceptance check from the issue:
// on the 1k-node/10k-edge graph FM must beat greedy by at least 5x.
// Benchmarked properly in BenchmarkPartition*; this is a coarse guard
// that also runs under plain `go test`.
func TestFMSpeedupOnLargeGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	g := benchGraph(t)
	g.CSR()
	greedyT := timeIt(func() { g.Partition() }, 3)
	fmT := timeIt(func() { g.PartitionFM() }, 3)
	if fmT*5 > greedyT {
		t.Errorf("FM not 5x faster: greedy %v, fm %v (%.1fx)", greedyT, fmT, float64(greedyT)/float64(fmT))
	}
	t.Logf("greedy %v, fm %v (%.1fx)", greedyT, fmT, float64(greedyT)/float64(fmT))
}
