package explore

import (
	"fmt"
	"io"

	"dualbank/internal/alloc"
	"dualbank/internal/pipeline"
)

// This file is the explorer's static analysis view: the interference
// graph, the greedy partition walk, and the bank assignment of one
// compiled program — what the paper's Figures 4 and 5 show. The
// explorer example is a thin wrapper over it.

// Analysis is the partitioning analysis of one program.
type Analysis struct {
	Compiled *pipeline.Compiled
}

// Analyze compiles source under CB partitioning and returns its
// analysis.
func Analyze(source, name string) (*Analysis, error) {
	c, err := pipeline.Compile(source, name, pipeline.Options{Mode: alloc.CB})
	if err != nil {
		return nil, err
	}
	return &Analysis{Compiled: c}, nil
}

// Dot renders the interference graph in Graphviz format, colored by
// the final partition.
func (a *Analysis) Dot() string {
	return a.Compiled.Alloc.Graph.Dot(a.Compiled.Alloc.Part)
}

// WriteText renders the full analysis: the weighted interference
// graph, the greedy walk's cost trace (Figure 5), the final
// partition, and every global's bank assignment.
func (a *Analysis) WriteText(w io.Writer) {
	al := a.Compiled.Alloc
	fmt.Fprintln(w, "Interference graph (edge weight = loop nesting depth + 1):")
	fmt.Fprint(w, al.Graph.String())
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Greedy partition (Figure 5): cost after each move:")
	fmt.Fprintf(w, "  %v\n\n", al.Part.Trace)
	fmt.Fprintln(w, "Final partition:")
	fmt.Fprintln(w, al.Part)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Bank assignment:")
	for _, g := range a.Compiled.IR.Globals {
		fmt.Fprintf(w, "  %-12s bank %-2s addr %4d  (%d words)\n", g.Name, g.Bank, g.Addr, g.Size)
	}
}
