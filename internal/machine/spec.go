package machine

import "fmt"

// This file generalizes the fixed two-bank, one-port-per-bank machine
// of Figure 2 into a parameterized family: N data banks, each with P
// ports, each port carried by its own memory unit. The zero-value
// BankSpec is the paper's machine (2 banks x 1 port, MU0<->X, MU1<->Y),
// and every consumer routes the zero value through the exact code paths
// that existed before the generalization, so the default configuration
// is bit-for-bit the historical system.

// Capacity limits for the generalized machine. The ISA encoding keeps
// the nine classic units at their historical numbers (PCU=0 .. FPU1=8)
// and appends extra memory units after FPU1, so the unit number space
// grows but never renumbers.
const (
	// MaxBanks bounds BankSpec.Banks.
	MaxBanks = 8
	// MaxMemUnits bounds Banks*PortsPerBank: each bank port is carried
	// by a dedicated memory unit.
	MaxMemUnits = 8
	// MaxUnits is the widest possible long instruction: the nine
	// classic units with MU0/MU1 replaced by up to MaxMemUnits memory
	// units (the 7 non-memory units plus MaxMemUnits memory units).
	MaxUnits = NumUnits - 2 + MaxMemUnits
)

// MemUnit returns the unit carrying memory port ordinal j. Ordinals 0
// and 1 are the classic MU0 and MU1; higher ordinals map to the units
// appended after FPU1 (MU2 = Unit 9, MU3 = Unit 10, ...).
func MemUnit(j int) Unit {
	switch j {
	case 0:
		return MU0
	case 1:
		return MU1
	}
	return Unit(NumUnits + j - 2)
}

// MemOrdinal is the inverse of MemUnit: the memory-port ordinal of a
// memory unit, or -1 for non-memory units.
func MemOrdinal(u Unit) int {
	switch {
	case u == MU0:
		return 0
	case u == MU1:
		return 1
	case u >= NumUnits && u < MaxUnits:
		return int(u) - NumUnits + 2
	}
	return -1
}

// BankAt returns the Bank value naming data bank index i. Indexes 0
// and 1 are the classic BankX and BankY; higher indexes map past
// BankBoth (bank 2 = Bank(4), bank 3 = Bank(5), ...), so every
// historical Bank constant keeps its value and BankBoth stays the
// "duplicated in all banks" sentinel.
func BankAt(i int) Bank {
	switch i {
	case 0:
		return BankX
	case 1:
		return BankY
	}
	return Bank(i + 2)
}

// Index is the inverse of BankAt: the data-bank index of a single-bank
// tag, or -1 for BankNone and BankBoth.
func (b Bank) Index() int {
	switch {
	case b == BankX:
		return 0
	case b == BankY:
		return 1
	case b >= 4:
		return int(b) - 2
	}
	return -1
}

// IsSingle reports whether b names exactly one data bank.
func (b Bank) IsSingle() bool { return b == BankX || b == BankY || b >= 4 }

// BankSpec parameterizes the data-memory system: how many banks, how
// many ports each bank exposes, and which memory unit reaches which
// bank. The zero value is the paper's machine: two single-ported banks
// with MU0 wired to X and MU1 to Y.
type BankSpec struct {
	// Banks is the number of data banks (0 means the default 2).
	Banks int
	// PortsPerBank is the number of simultaneous accesses each bank
	// sustains per cycle (0 means the default 1). Each port is carried
	// by a dedicated memory unit, so the machine issues up to
	// Banks*PortsPerBank memory operations per long instruction.
	PortsPerBank int
	// UnitBinding, when non-nil, maps memory-port ordinal j to the
	// bank index it reaches. Nil means the dedicated default binding
	// j % Banks, which preserves MU0->bank 0 and MU1->bank 1 and deals
	// extra ports round-robin.
	UnitBinding []int8
}

// Norm returns the spec with defaults filled in: zero Banks and
// PortsPerBank become 2 and 1.
func (s BankSpec) Norm() BankSpec {
	if s.Banks == 0 {
		s.Banks = 2
	}
	if s.PortsPerBank == 0 {
		s.PortsPerBank = 1
	}
	return s
}

// IsDefault reports whether the spec (after normalization) is the
// paper's 2-bank, 1-port machine with the dedicated binding. Consumers
// route default specs through the historical code paths, which is what
// pins the generalized system bit-for-bit to the pre-generalization
// one.
func (s BankSpec) IsDefault() bool {
	s = s.Norm()
	if s.Banks != 2 || s.PortsPerBank != 1 {
		return false
	}
	for j, b := range s.UnitBinding {
		if int(b) != j%2 {
			return false
		}
	}
	return true
}

// Validate checks the spec against the machine's capacity limits.
func (s BankSpec) Validate() error {
	s = s.Norm()
	if s.Banks < 2 || s.Banks > MaxBanks {
		return fmt.Errorf("machine: %d banks out of range [2,%d]", s.Banks, MaxBanks)
	}
	if s.PortsPerBank < 1 {
		return fmt.Errorf("machine: %d ports per bank out of range", s.PortsPerBank)
	}
	if n := s.Banks * s.PortsPerBank; n > MaxMemUnits {
		return fmt.Errorf("machine: %d banks x %d ports needs %d memory units (max %d)",
			s.Banks, s.PortsPerBank, n, MaxMemUnits)
	}
	if s.UnitBinding != nil {
		if len(s.UnitBinding) != s.Banks*s.PortsPerBank {
			return fmt.Errorf("machine: unit binding has %d entries, want %d",
				len(s.UnitBinding), s.Banks*s.PortsPerBank)
		}
		var per [MaxBanks]int
		for j, b := range s.UnitBinding {
			if b < 0 || int(b) >= s.Banks {
				return fmt.Errorf("machine: unit binding[%d] = %d out of range", j, b)
			}
			per[b]++
		}
		for b := 0; b < s.Banks; b++ {
			if per[b] != s.PortsPerBank {
				return fmt.Errorf("machine: bank %d bound to %d units, want %d ports",
					b, per[b], s.PortsPerBank)
			}
		}
	}
	return nil
}

// NumMemUnits is the number of memory units the spec instantiates.
func (s BankSpec) NumMemUnits() int {
	s = s.Norm()
	return s.Banks * s.PortsPerBank
}

// NumUnits is the total number of functional units under the spec: the
// seven non-memory units plus the spec's memory units. The default
// spec yields the classic 9.
func (s BankSpec) NumUnits() int { return NumUnits - 2 + s.NumMemUnits() }

// BankOfMemUnit returns the bank index memory-port ordinal j reaches.
func (s BankSpec) BankOfMemUnit(j int) int {
	s = s.Norm()
	if s.UnitBinding != nil {
		return int(s.UnitBinding[j])
	}
	return j % s.Banks
}

// BankOfUnit reports which bank unit u accesses under the spec, or
// BankNone for non-memory units. It generalizes the package-level
// BankOfUnit, which remains the default-spec fast path.
func (s BankSpec) BankOfUnit(u Unit) Bank {
	j := MemOrdinal(u)
	if j < 0 || j >= s.NumMemUnits() {
		return BankNone
	}
	return BankAt(s.BankOfMemUnit(j))
}

// MemUnits returns the spec's memory units in ordinal order. The slice
// is freshly allocated; hot paths should build their own table once.
func (s BankSpec) MemUnits() []Unit {
	n := s.NumMemUnits()
	us := make([]Unit, n)
	for j := range us {
		us[j] = MemUnit(j)
	}
	return us
}

// UnitsForBankIndex returns the memory units wired to bank index i, in
// ordinal order. The slice is freshly allocated.
func (s BankSpec) UnitsForBankIndex(i int) []Unit {
	var us []Unit
	for j, n := 0, s.NumMemUnits(); j < n; j++ {
		if s.BankOfMemUnit(j) == i {
			us = append(us, MemUnit(j))
		}
	}
	return us
}

// HardwareCost is the relative silicon cost of the spec's memory
// system, the third axis of the architecture-exploration frontier. The
// model charges 2 units per bank (array periphery: decoders, sense
// amps) and 3 per bank port (the port itself plus its memory unit and
// result bus) — so the default machine costs 10, a third bank raises
// it to 15, and dual-porting both default banks to 16. The constants
// are a documented fiction; only the ordering matters, and any convex
// per-bank/per-port charge orders the same way.
func (s BankSpec) HardwareCost() int {
	s = s.Norm()
	return 2*s.Banks + 3*s.Banks*s.PortsPerBank
}

// String renders the spec as "BanksxPorts", e.g. "2x1".
func (s BankSpec) String() string {
	s = s.Norm()
	return fmt.Sprintf("%dx%d", s.Banks, s.PortsPerBank)
}
