package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dualbank/internal/alloc"
	"dualbank/internal/bench"
	"dualbank/internal/explore/store"
	"dualbank/internal/faultinject"
	"dualbank/internal/serve"
)

// This file is the chaos/soak harness: the full benchmark mix driven
// through the serve layer while a seeded fault injector fires compute
// errors, latency spikes, and pool-slot starvation bursts. Faults are
// count-deterministic (see faultinject), so the assertions are exact:
// every request ends in exactly one of {200, 408, 429, 499, 500},
// injected faults and 500s match one-for-one, the memo cache accounts
// for every success, no goroutine outlives the server, and a
// fault-injected checkpoint store reloads identically. CI runs it
// under -race with several CHAOS_SEED values; CHAOS_HISTOGRAM, when
// set, receives the per-seed status-code histogram as JSON.

// chaosSeed reads CHAOS_SEED (default 1).
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	env := os.Getenv("CHAOS_SEED")
	if env == "" {
		return 1
	}
	seed, err := strconv.ParseInt(env, 10, 64)
	if err != nil {
		t.Fatalf("CHAOS_SEED=%q: %v", env, err)
	}
	return seed
}

// allowedChaosCodes is the exhaustive status set for well-formed run
// requests under chaos: success, server deadline, shed, client gone,
// injected fault.
var allowedChaosCodes = map[int]bool{
	http.StatusOK:                   true,
	http.StatusRequestTimeout:       true,
	http.StatusTooManyRequests:      true,
	serve.StatusClientClosedRequest: true,
	http.StatusInternalServerError:  true,
}

// TestChaosSoak pushes 1000 mixed requests — the full 23-benchmark
// matrix, deadline-doomed sources, and mid-flight client cancellations
// — through a fault-injected server and audits the exhaustive failure
// taxonomy.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak in short mode")
	}
	seed := chaosSeed(t)
	inj := faultinject.New(faultinject.Profile{
		Seed:         seed,
		ComputeError: 0.05,
		Latency:      0.02, LatencyDur: 5 * time.Millisecond,
		Starve: 0.01, StarveDur: 25 * time.Millisecond,
	})

	before := runtime.NumGoroutine()
	s := serve.New(serve.Config{
		Workers:      8,
		AdmitTimeout: 100 * time.Millisecond,
		Fault:        inj,
	})

	var names []string
	for _, p := range append(bench.Kernels(), bench.Applications()...) {
		names = append(names, p.Name)
	}
	if len(names) != 23 {
		t.Fatalf("benchmark mix has %d entries, want 23", len(names))
	}
	modes := []alloc.Mode{
		alloc.SingleBank, alloc.CB, alloc.CBProfiled,
		alloc.CBDup, alloc.FullDup, alloc.Ideal, alloc.LowOrder,
	}

	// Requests go straight through ServeHTTP so counting is airtight:
	// no transport layer to drop or retry anything.
	const requests = 1000
	serveOne := func(i int) int {
		var body string
		var ctx context.Context
		cancel := func() {}
		arm := i % 20
		switch {
		case arm >= 17: // client hangs up mid-measurement
			ctx, cancel = context.WithCancel(context.Background())
			time.AfterFunc(time.Duration(1+i%10)*time.Millisecond, cancel)
			body = fmt.Sprintf(`{"source":%q,"timeout_ms":60000}`, slowSource)
		case arm >= 14: // doomed to the server-enforced deadline
			ctx = context.Background()
			body = fmt.Sprintf(`{"source":%q,"timeout_ms":%d}`, slowSource, 5+i%25)
		default: // the benchmark matrix, fuse far beyond the soak
			ctx = context.Background()
			body = fmt.Sprintf(`{"bench":%q,"mode":%q,"timeout_ms":60000}`,
				names[i%len(names)], modes[i%len(modes)])
		}
		defer cancel()
		req := httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(body)).WithContext(ctx)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		return rec.Code
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		byStatus = map[int]int{}
	)
	next := make(chan int)
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				code := serveOne(i)
				mu.Lock()
				byStatus[code]++
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < requests; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	// 1. Exhaustive taxonomy: every request in exactly one allowed code.
	total := 0
	for code, n := range byStatus {
		total += n
		if !allowedChaosCodes[code] {
			t.Errorf("%d requests ended in unexpected status %d", n, code)
		}
	}
	if total != requests {
		t.Errorf("accounted for %d of %d requests: %v", total, requests, byStatus)
	}

	// 2. Server-side accounting matches the client tally per code.
	snap := s.Metrics().Snapshot()
	for code, n := range byStatus {
		if snap.Requests[code] != int64(n) {
			t.Errorf("metrics count %d for status %d, client saw %d", snap.Requests[code], code, n)
		}
	}
	var metricTotal int64
	for _, n := range snap.Requests {
		metricTotal += n
	}
	if metricTotal != int64(requests) {
		t.Errorf("metrics account for %d requests, want %d: %v", metricTotal, requests, snap.Requests)
	}
	if shed := snap.Shed["queue"]; shed != int64(byStatus[http.StatusTooManyRequests]) {
		t.Errorf("shed counter %d != %d observed 429s", shed, byStatus[http.StatusTooManyRequests])
	}

	// 3. Fault accounting is exact: every injected compute error became
	// exactly one 500, and nothing else did.
	st := inj.Stats()
	if int64(byStatus[http.StatusInternalServerError]) != st.ComputeFaults {
		t.Errorf("%d responses were 500 but the injector fired %d compute faults",
			byStatus[http.StatusInternalServerError], st.ComputeFaults)
	}

	// 4. Cache accounting is exact: only successful named measurements
	// touch the memo cache (faulted executions are vetoed before it,
	// cancelled arms run source jobs that bypass it), so hits + misses
	// equal the 200s.
	cs := s.CacheStats()
	if cs.Hits+cs.Misses != int64(byStatus[http.StatusOK]) {
		t.Errorf("cache traffic %d hits + %d misses != %d successes",
			cs.Hits, cs.Misses, byStatus[http.StatusOK])
	}

	// 5. Quiescence and goroutine hygiene.
	if got := s.Metrics().InFlight(); got != 0 {
		t.Errorf("in-flight gauge %d after soak", got)
	}
	waitDrained(t, s)
	s.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	writeChaosHistogram(t, seed, byStatus, st)
}

// writeChaosHistogram dumps the per-seed status histogram to the path
// in CHAOS_HISTOGRAM (the CI artifact); a no-op when unset.
func writeChaosHistogram(t *testing.T, seed int64, byStatus map[int]int, st faultinject.Stats) {
	path := os.Getenv("CHAOS_HISTOGRAM")
	if path == "" {
		return
	}
	out := struct {
		Seed     int64          `json:"seed"`
		Statuses map[string]int `json:"statuses"`
		Faults   string         `json:"faults"`
	}{Seed: seed, Statuses: map[string]int{}, Faults: st.String()}
	for code, n := range byStatus {
		out.Statuses[strconv.Itoa(code)] = n
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatalf("marshaling histogram: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatalf("writing %s: %v", path, err)
	}
	t.Logf("chaos histogram written to %s", path)
}

// TestChaosStoreIntegrity runs explorations against a checkpoint store
// whose filesystem injects I/O errors, latency, and torn writes, then
// proves no corruption reached the disk: a clean reload of the
// directory yields exactly the records the live store published.
func TestChaosStoreIntegrity(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos store soak in short mode")
	}
	seed := chaosSeed(t)
	inj := faultinject.New(faultinject.Profile{
		Seed:    seed,
		IOError: 0.05, PartialWrite: 0.02,
		Latency: 0.02, LatencyDur: 2 * time.Millisecond,
	})
	dir := t.TempDir()
	// Open itself runs over the faulted filesystem, so it may be hit by
	// a transient injected error; retrying is exactly what a resuming
	// explorer would do.
	var st *store.Store
	var err error
	for attempt := 0; attempt < 100; attempt++ {
		st, err = store.OpenFS(dir, faultinject.NewFaultFS(faultinject.OSFS{}, inj))
		if err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("store never opened under 5%% I/O faults: %v", err)
	}

	before := runtime.NumGoroutine()
	s := serve.New(serve.Config{Workers: 4, ExploreStore: st})
	ts := httptest.NewServer(s.Handler())

	// Three exploration jobs over small kernels; under injected store
	// faults each ends "done" (faults missed it) or "failed" (a Put
	// error aborted it) — either way the disk must stay whole.
	var jobIDs []string
	for _, name := range []string{"fir_32_1", "iir_1_1", "mult_4_4"} {
		body := fmt.Sprintf(`{"benchmarks":[%q],"budget":15}`, name)
		resp, err := ts.Client().Post(ts.URL+"/v1/explore", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var status serve.ExploreStatus
		if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: status %d", name, resp.StatusCode)
		}
		jobIDs = append(jobIDs, status.ID)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for _, id := range jobIDs {
		for {
			resp, err := ts.Client().Get(ts.URL + "/v1/explore/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var status serve.ExploreStatus
			err = json.NewDecoder(resp.Body).Decode(&status)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if status.State != "running" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s still running after 2m", id)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	live := st.Snapshot()
	s.BeginDrain()
	ts.Close()
	s.Close()

	// The reload oracle: a fault-free Open of the same directory must
	// see exactly the records the live store published — nothing extra
	// (no torn temp file parsed), nothing missing (no indexed record
	// unpersisted), nothing altered.
	fresh, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reloaded := fresh.Snapshot()
	if len(reloaded) != len(live) {
		t.Errorf("reload found %d records, live store published %d", len(reloaded), len(live))
	}
	for k, want := range live {
		got, ok := reloaded[k]
		if !ok {
			t.Errorf("published record %q missing after reload", k)
			continue
		}
		if !reflect.DeepEqual(normalizeRecord(got), normalizeRecord(want)) {
			t.Errorf("record %q changed across reload:\n live: %+v\n disk: %+v", k, want, got)
		}
	}

	if faults := inj.Stats(); faults.IOFaults == 0 && faults.PartialFaults == 0 {
		t.Errorf("soak injected no store faults (stats %+v) — the integrity claim is vacuous", faults)
	}

	gcDeadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(gcDeadline) {
			t.Fatalf("goroutines: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// normalizeRecord maps empty and nil Duplicated slices together: JSON
// omitempty erases the distinction on disk.
func normalizeRecord(r store.Record) store.Record {
	if len(r.Duplicated) == 0 {
		r.Duplicated = nil
	}
	return r
}
