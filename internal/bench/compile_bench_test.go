package bench

import (
	"testing"

	"dualbank/internal/alloc"
	"dualbank/internal/core"
	"dualbank/internal/pipeline"
)

// Compile-path microbenchmarks over a real benchmark program, tracking
// the fast compile path end to end: interference-graph construction,
// whole-pipeline compilation, and the harness's compile+simulate unit.

// benchProgramIR compiles fft_256 once and returns its post-regalloc
// IR for graph-construction benchmarks.
func benchProgramIR(tb testing.TB) *pipeline.Compiled {
	p, ok := ByName("fft_256")
	if !ok {
		tb.Fatal("no fft_256 benchmark")
	}
	c, err := pipeline.Compile(p.Source, p.Name, pipeline.Options{Mode: alloc.SingleBank})
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

func BenchmarkBuildGraph(b *testing.B) {
	c := benchProgramIR(b)
	sc := new(core.Scanner)
	sc.BuildGraph(c.IR, core.WeightStatic) // warm the scanner
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.BuildGraph(c.IR, core.WeightStatic)
	}
}

func BenchmarkCompileCB(b *testing.B) {
	p, ok := ByName("fft_256")
	if !ok {
		b.Fatal("no fft_256 benchmark")
	}
	cc := new(pipeline.Compiler)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cc.Compile(p.Source, p.Name, pipeline.Options{Mode: alloc.CB}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunCB(b *testing.B) {
	p, ok := ByName("fft_256")
	if !ok {
		b.Fatal("no fft_256 benchmark")
	}
	cc := new(pipeline.Compiler)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunWith(p, alloc.CB, RunOptions{Compiler: cc}); err != nil {
			b.Fatal(err)
		}
	}
}
