package explore

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteText renders the report as the dspexplore CLI's human-readable
// output: one frontier table per benchmark, the fixed-CB verdict, and
// the suite frontier when present.
func (r *Report) WriteText(w io.Writer) {
	for i := range r.Benchmarks {
		br := &r.Benchmarks[i]
		fmt.Fprintf(w, "%s: %d evals (%d store hits, %d cache hits", br.Bench, br.Evals, br.StoreHits, br.CacheHits)
		if br.Infeasible > 0 {
			fmt.Fprintf(w, ", %d infeasible", br.Infeasible)
		}
		fmt.Fprintf(w, "), baseline %d cycles / %d words\n", br.BaselineCycles, br.BaselineCost)
		writeFrontier(w, br.Frontier, br.CB.Config)
		switch {
		case len(br.DominatingCB) > 0:
			d := br.DominatingCB[len(br.DominatingCB)-1]
			fmt.Fprintf(w, "  verdict: %q dominates fixed CB (%d vs %d cycles at cost %d vs %d)\n",
				d.Config, d.Cycles, br.CB.Cycles, d.Cost, br.CB.Cost)
		case br.Exhaustive:
			fmt.Fprintf(w, "  verdict: exhausted the space (%d configs): no point dominates fixed CB\n", br.Evals)
		default:
			fmt.Fprintf(w, "  verdict: no dominating point within budget (space not exhausted)\n")
		}
		fmt.Fprintln(w)
	}
	if len(r.Suite) > 0 {
		fmt.Fprintf(w, "suite frontier (shared configs, summed cycles/cost over %d benchmarks):\n", len(r.Benchmarks))
		writeFrontier(w, r.Suite, "")
	}
}

func writeFrontier(w io.Writer, pts []Point, cbKey string) {
	fmt.Fprintf(w, "  %-40s %10s %8s %6s %6s %6s\n", "config", "cycles", "cost", "PG", "CI", "PCR")
	for _, p := range pts {
		mark := " "
		if cbKey != "" && p.Config == cbKey {
			mark = "*"
		}
		fmt.Fprintf(w, " %s%-40s %10d %8d %6.2f %6.2f %6.2f\n", mark, p.Config, p.Cycles, p.Cost, p.PG, p.CI, p.PCR)
	}
}

// WriteCSV renders every frontier point (per benchmark, then the
// suite rows labelled "suite") as CSV.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"bench", "config", "cycles", "cost", "pg", "ci", "pcr"}); err != nil {
		return err
	}
	row := func(benchName string, p Point) error {
		return cw.Write([]string{
			benchName, p.Config,
			strconv.FormatInt(p.Cycles, 10), strconv.Itoa(p.Cost),
			formatFloat(p.PG), formatFloat(p.CI), formatFloat(p.PCR),
		})
	}
	for i := range r.Benchmarks {
		br := &r.Benchmarks[i]
		for _, p := range br.Frontier {
			if err := row(br.Bench, p); err != nil {
				return err
			}
		}
	}
	for _, p := range r.Suite {
		if err := row("suite", p); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(strconv.FormatFloat(f, 'f', 4, 64), "0"), ".")
}
