// Romimage demonstrates the deployment path of the toolchain: a MiniC
// program is compiled with CB partitioning, serialised into the binary
// ROM-image format a production flow would burn into the DSP's on-chip
// instruction memory, loaded back from those bytes, and executed —
// verifying byte-level round-trip fidelity with identical cycle counts
// and results.
package main

import (
	"fmt"
	"log"

	"dualbank"
	"dualbank/internal/compact"
	"dualbank/internal/encode"
	"dualbank/internal/ir"
	"dualbank/internal/sim"
)

const src = `
// A tiny echo-cancelling NLMS-style filter stage.
float x[40] = {0.5, -0.25, 0.75, 0.1};
float d[32] = {0.3, 0.3, -0.2};
float h[8];
float y[32];

void main() {
	int n;
	int k;
	for (n = 0; n < 32; n++) {
		float acc = 0.0;
		for (k = 0; k < 8; k++) {
			acc += h[k] * x[n + k];
		}
		y[n] = acc;
		float e = 0.05 * (d[n] - acc);
		for (k = 0; k < 8; k++) {
			h[k] = h[k] + e * x[n + k];
		}
	}
}
`

func main() {
	c, err := dualbank.Compile(src, "nlms", dualbank.Options{Mode: dualbank.CB})
	if err != nil {
		log.Fatal(err)
	}
	img, err := encode.Encode(c.Sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ROM image: %d bytes for %d long instructions + data tables\n",
		len(img), c.Sched.StaticInstrs())

	// "Ship" the bytes, then boot a machine from them alone.
	loaded, err := encode.Decode(img)
	if err != nil {
		log.Fatal(err)
	}

	m1 := sim.NewMachine(c.Sched)
	if err := m1.Run(); err != nil {
		log.Fatal(err)
	}
	m2 := sim.NewMachine(loaded)
	if err := m2.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original build: %d cycles; booted from image: %d cycles\n", m1.Cycles, m2.Cycles)

	g1, g2 := c.Global("h"), findGlobal(loaded, "h")
	fmt.Print("adapted filter taps (image run): ")
	for i := 0; i < g2.Size; i++ {
		v2, _ := m2.Float32(g2, i)
		v1, _ := m1.Float32(g1, i)
		if v1 != v2 {
			log.Fatalf("tap %d differs: %g vs %g", i, v1, v2)
		}
		fmt.Printf("%.4f ", v2)
	}
	fmt.Println()
	fmt.Println("round trip exact: the image is the program.")
}

func findGlobal(p *compact.Program, name string) *ir.Symbol {
	for _, g := range p.Src.Globals {
		if g.Name == name {
			return g
		}
	}
	log.Fatalf("image lost global %q", name)
	return nil
}
