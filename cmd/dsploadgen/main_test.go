package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunFixtureVerify drives the whole tool end to end: a two-node
// in-process fixture, a warm pass, a small measured run, and the
// single-flight verification against the fleet's miss counters.
func TestRunFixtureVerify(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-nodes", "2", "-requests", "100", "-concurrency", "8",
		"-keyspace", "20", "-warm", "-verify", "-service-time", "0",
		"-store-dir", t.TempDir(),
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"2-node fixture up",
		"warm pass done",
		"status 200   100",
		"single-flight verified: 20 distinct keys, 20 fleet-wide computes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout lacks %q:\n%s", want, out)
		}
	}
}

// TestRunJSONReport pins the -json schema a dashboard would scrape.
func TestRunJSONReport(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-nodes", "1", "-requests", "30", "-concurrency", "4",
		"-keyspace", "10", "-skew", "zipf", "-service-time", "0", "-json",
		"-store-dir", t.TempDir(),
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	// The fixture banner precedes the JSON document.
	out := stdout.String()
	i := strings.Index(out, "{")
	if i < 0 {
		t.Fatalf("no JSON in output: %s", out)
	}
	var rep struct {
		Requests   int            `json:"requests"`
		Throughput float64        `json:"throughput_rps"`
		Statuses   map[string]int `json:"statuses"`
		Skew       string         `json:"skew"`
	}
	if err := json.Unmarshal([]byte(out[i:]), &rep); err != nil {
		t.Fatalf("bad JSON report: %v\n%s", err, out)
	}
	if rep.Requests != 30 || rep.Skew != "zipf" || rep.Statuses["200"] != 30 || rep.Throughput <= 0 {
		t.Errorf("report fields off: %+v", rep)
	}
}

// TestRunFlagErrors pins the exit codes of unusable invocations.
func TestRunFlagErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no targets: exit %d, want 2", code)
	}
	if code := run([]string{"-nodes", "1", "-skew", "bogus", "-service-time", "0"}, &stdout, &stderr); code != 1 {
		t.Errorf("bad skew: exit %d, want 1", code)
	}
}
