package explore

import (
	"context"
	"fmt"
	"sort"

	"dualbank/internal/bench"
	"dualbank/internal/core"
	"dualbank/internal/machine"
)

// This file is the hardware co-design sweep: instead of searching
// compiler knobs on one fixed machine, it sweeps machine geometries
// (bank count × ports per bank) and measures a small, fixed set of
// compiler arms on each, producing a three-axis Pareto surface per
// benchmark — cycles × memory cost × hardware cost. The surface
// answers the architecture question the paper fixes by fiat: is the
// second bank worth its silicon, and would a third (or a second port)
// pay for itself?

// HWPoint is one (geometry, configuration) design point.
type HWPoint struct {
	Banks int `json:"banks"`
	Ports int `json:"ports"`
	// HW is the geometry's hardware cost under the
	// machine.BankSpec.HardwareCost model (the classic machine scores
	// 10).
	HW     int    `json:"hw"`
	Config string `json:"config"`
	Cycles int64  `json:"cycles"`
	// Cost is the memory footprint in words under the generalized
	// Cost = Σ banks + k·S + I model.
	Cost int `json:"cost"`
	// Err marks an infeasible (geometry, configuration) pair; such
	// points never join the frontier.
	Err string `json:"err,omitempty"`
}

// dominates3 reports 3-axis Pareto dominance, minimizing cycles,
// memory cost, and hardware cost.
func dominates3(a, b HWPoint) bool {
	if a.Cycles > b.Cycles || a.Cost > b.Cost || a.HW > b.HW {
		return false
	}
	return a.Cycles < b.Cycles || a.Cost < b.Cost || a.HW < b.HW
}

// frontier3 computes the 3-axis frontier by pairwise dominance,
// first-come-wins on exact ties, sorted by (HW, Cost, Cycles). The
// sweep produces tens of points per benchmark, so O(n²) is fine.
func frontier3(pts []HWPoint) []HWPoint {
	var out []HWPoint
	for i, p := range pts {
		if p.Err != "" {
			continue
		}
		alive := true
		for j, q := range pts {
			if q.Err != "" {
				continue
			}
			if dominates3(q, p) ||
				(q.Cycles == p.Cycles && q.Cost == p.Cost && q.HW == p.HW && j < i) {
				alive = false
				break
			}
		}
		if alive {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.HW != b.HW {
			return a.HW < b.HW
		}
		if a.Cost != b.Cost {
			return a.Cost < b.Cost
		}
		return a.Cycles < b.Cycles
	})
	return out
}

// HWBenchReport is one benchmark's co-design sweep: every measured
// point in sweep order, plus the 3-axis frontier.
type HWBenchReport struct {
	Bench    string    `json:"bench"`
	Points   []HWPoint `json:"points"`
	Frontier []HWPoint `json:"frontier"`
}

// HWReport is a whole sweep's outcome.
type HWReport struct {
	// Geometries lists the swept machine geometries as "BxP" strings.
	Geometries []string        `json:"geometries"`
	Configs    []string        `json:"configs"`
	Benchmarks []HWBenchReport `json:"benchmarks"`
}

// hwArms is the fixed compiler-arm set measured on every geometry: the
// single-bank baseline, the paper's CB point, its profiled and
// duplicate-everything variants, and the strongest partitioner. A
// fixed arm set keeps the sweep's cost linear in geometries while
// still exposing the compiler's best response to each machine.
func hwArms() []Config {
	return []Config{
		{Single: true},
		{Part: core.MethodGreedy},
		{Part: core.MethodGreedy, Profiled: true},
		{Part: core.MethodGreedy, DupAll: true},
		{Part: core.MethodFM},
	}
}

// ExploreHW measures the fixed compiler arms on every geometry for
// every benchmark and returns the 3-axis Pareto surface. The sweep is
// deterministic: geometries and arms are visited in argument/fixed
// order, and every measurement flows through the harness memo cache
// when opts.Harness is set.
func ExploreHW(ctx context.Context, progs []bench.Program, specs []machine.BankSpec, opts Options) (*HWReport, error) {
	if len(specs) == 0 {
		specs = []machine.BankSpec{{}, {Banks: 3}, {Banks: 4}, {PortsPerBank: 2}, {Banks: 4, PortsPerBank: 2}}
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("explore: hw sweep: %w", err)
		}
	}
	h := opts.Harness
	if h == nil {
		h = bench.NewHarness(1)
	}
	arms := hwArms()

	rep := &HWReport{}
	for _, s := range specs {
		rep.Geometries = append(rep.Geometries, s.String())
	}
	for _, c := range arms {
		rep.Configs = append(rep.Configs, c.Key())
	}

	for _, p := range progs {
		br := HWBenchReport{Bench: p.Name}
		for _, s := range specs {
			n := s.Norm()
			items := make([]bench.BatchItem, len(arms))
			configs := make([]Config, len(arms))
			for i, c := range arms {
				c.Banks, c.Ports = n.Banks, n.PortsPerBank
				c = c.Canon()
				configs[i] = c
				items[i] = bench.BatchItem{Mode: c.Mode(), Opts: c.RunOptions()}
			}
			for i, o := range h.RunBatchCtx(ctx, p, items) {
				if ctx.Err() != nil {
					return rep, ctx.Err()
				}
				pt := HWPoint{
					Banks: n.Banks, Ports: n.PortsPerBank,
					HW:     n.HardwareCost(),
					Config: configs[i].Key(),
				}
				if o.Err != nil {
					pt.Err = o.Err.Error()
				} else {
					pt.Cycles = o.Res.Cycles
					pt.Cost = o.Res.Mem.Total()
				}
				br.Points = append(br.Points, pt)
			}
		}
		br.Frontier = frontier3(br.Points)
		rep.Benchmarks = append(rep.Benchmarks, br)
	}
	return rep, nil
}
