package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dualbank/internal/cluster"
)

// TestRunFixtureVerify drives the whole tool end to end: a two-node
// in-process fixture, a warm pass, a small measured run, and the
// single-flight verification against the fleet's miss counters.
func TestRunFixtureVerify(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-nodes", "2", "-requests", "100", "-concurrency", "8",
		"-keyspace", "20", "-warm", "-verify", "-service-time", "0",
		"-store-dir", t.TempDir(),
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"2-node fixture up",
		"warm pass done",
		"status 200   100",
		"single-flight verified: 20 distinct keys, 20 fleet-wide computes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout lacks %q:\n%s", want, out)
		}
	}
}

// TestRunJSONReport pins the -json schema a dashboard would scrape.
func TestRunJSONReport(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-nodes", "1", "-requests", "30", "-concurrency", "4",
		"-keyspace", "10", "-skew", "zipf", "-service-time", "0", "-json",
		"-store-dir", t.TempDir(),
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	// The fixture banner precedes the JSON document.
	out := stdout.String()
	i := strings.Index(out, "{")
	if i < 0 {
		t.Fatalf("no JSON in output: %s", out)
	}
	var rep struct {
		Requests   int            `json:"requests"`
		Throughput float64        `json:"throughput_rps"`
		Statuses   map[string]int `json:"statuses"`
		Skew       string         `json:"skew"`
	}
	if err := json.Unmarshal([]byte(out[i:]), &rep); err != nil {
		t.Fatalf("bad JSON report: %v\n%s", err, out)
	}
	if rep.Requests != 30 || rep.Skew != "zipf" || rep.Statuses["200"] != 30 || rep.Throughput <= 0 {
		t.Errorf("report fields off: %+v", rep)
	}
}

// TestGeneratedBodiesShape: -generated derives canonical gen_* keys
// paired with rotating modes, deterministically per seed.
func TestGeneratedBodiesShape(t *testing.T) {
	a := cluster.GeneratedBodies(8, 1)
	b := cluster.GeneratedBodies(8, 1)
	if len(a) != 8 {
		t.Fatalf("got %d bodies, want 8", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generated bodies not deterministic at %d: %q vs %q", i, a[i], b[i])
		}
		if !strings.Contains(a[i], `"bench":"gen_`) {
			t.Errorf("body %d is not a generated key: %q", i, a[i])
		}
	}
	if a[0] == cluster.GeneratedBodies(8, 2)[0] {
		t.Error("different seeds drew the same first key")
	}
}

// TestRunGeneratedVerify mixes generated keys into the fixture load:
// every request must succeed (the cluster routes and computes gen_*
// keys like built-ins) and the fleet-wide single-flight check must
// hold across the blended population — warm plus measure compute each
// distinct key exactly once.
func TestRunGeneratedVerify(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-nodes", "3", "-requests", "60", "-concurrency", "8",
		"-keyspace", "7", "-generated", "5", "-service-time", "0",
		"-warm", "-verify", "-store-dir", t.TempDir(),
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"status 200   60",
		"single-flight verified: 12 distinct keys, 12 fleet-wide computes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout lacks %q:\n%s", want, out)
		}
	}
}

// TestRunFlagErrors pins the exit codes of unusable invocations.
func TestRunFlagErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no targets: exit %d, want 2", code)
	}
	if code := run([]string{"-nodes", "1", "-skew", "bogus", "-service-time", "0"}, &stdout, &stderr); code != 1 {
		t.Errorf("bad skew: exit %d, want 1", code)
	}
}
