package explore

import (
	"context"

	"dualbank/internal/alloc"
	"dualbank/internal/bench"
	"dualbank/internal/cost"
)

// This file evaluates the paper's fixed design points — the Table 3
// view of one benchmark. It is the library form of what the tradeoff
// example prints, and gives the explorer's reports a reference row for
// each fixed mode.

// FixedModes are the non-baseline arms the paper's trade-off study
// evaluates, in table order.
var FixedModes = []alloc.Mode{
	alloc.CB, alloc.CBProfiled, alloc.CBDup, alloc.FullDup, alloc.Ideal,
}

// FixedRow is one fixed mode's measurement and Table 3 metrics.
type FixedRow struct {
	Mode       alloc.Mode   `json:"mode"`
	Cycles     int64        `json:"cycles"`
	Cost       int          `json:"cost"`
	Metrics    cost.Metrics `json:"metrics"`
	Duplicated []string     `json:"duplicated,omitempty"`
}

// Fixed measures p under the single-bank baseline and every fixed
// mode through h (a private harness when nil), returning the baseline
// and one row per mode.
func Fixed(ctx context.Context, p bench.Program, h *bench.Harness) (base bench.Result, rows []FixedRow, err error) {
	if h == nil {
		h = bench.NewHarness(1)
	}
	base, _, err = h.RunCtx(ctx, p, alloc.SingleBank, bench.RunOptions{})
	if err != nil {
		return bench.Result{}, nil, err
	}
	for _, mode := range FixedModes {
		res, _, err := h.RunCtx(ctx, p, mode, bench.RunOptions{})
		if err != nil {
			return bench.Result{}, nil, err
		}
		rows = append(rows, FixedRow{
			Mode:       mode,
			Cycles:     res.Cycles,
			Cost:       res.Mem.Total(),
			Metrics:    cost.Compare(base.Cycles, res.Cycles, base.Mem, res.Mem),
			Duplicated: res.Duplicated,
		})
	}
	return base, rows, nil
}
