package core

import (
	"fmt"
	"strings"

	"dualbank/internal/ir"
)

// Partition is the result of bipartitioning the interference graph:
// SetX holds the symbols assigned to bank X, SetY those assigned to
// bank Y. Cost is the residual cost — the summed weight of edges whose
// endpoints ended up in the same set, i.e. the parallel-access
// opportunities the partition could not satisfy.
type Partition struct {
	SetX, SetY []*ir.Symbol
	Cost       int64
	// Trace records the cost after each greedy move, starting with the
	// initial all-in-one-set cost; exposed so tests can check the
	// Figure 5 walk (7 -> 3 -> 2).
	Trace []int64
}

// Partition bipartitions the graph's nodes with the paper's greedy
// algorithm (Figure 5):
//
//	Start with every node in set 1 and set 2 empty; the cost is the
//	total weight of edges inside set 1. Repeatedly move the node whose
//	transfer to set 2 yields the greatest net decrease in cost — the
//	weight of its edges into set 1 minus the weight of its edges into
//	set 2 — stopping as soon as no move decreases the cost.
//
// Ties are broken in favour of the later node, which reproduces the
// published walk on the Figure 5 example. The greedy method is O(v²)
// and, as the paper reports, achieves near-ideal partitions in
// practice.
func (g *Graph) Partition() *Partition {
	n := len(g.Nodes)
	inY := make([]bool, n)

	// Adjacency lists for O(deg) delta updates.
	type adj struct {
		to int
		w  int64
	}
	adjs := make([][]adj, n)
	var total int64
	for k, w := range g.weights {
		adjs[k[0]] = append(adjs[k[0]], adj{k[1], w})
		adjs[k[1]] = append(adjs[k[1]], adj{k[0], w})
		total += w
	}

	cost := total
	trace := []int64{cost}
	for {
		best, bestDelta := -1, int64(0)
		for i := 0; i < n; i++ {
			if inY[i] {
				continue
			}
			// Net decrease: edges into set 1 minus edges into set 2.
			var delta int64
			for _, a := range adjs[i] {
				if inY[a.to] {
					delta -= a.w
				} else {
					delta += a.w
				}
			}
			if delta > 0 && delta >= bestDelta {
				best, bestDelta = i, delta
			}
		}
		if best < 0 {
			break
		}
		inY[best] = true
		cost -= bestDelta
		trace = append(trace, cost)
	}

	part := &Partition{Cost: cost, Trace: trace}
	for i, s := range g.Nodes {
		if inY[i] {
			part.SetY = append(part.SetY, s)
		} else {
			part.SetX = append(part.SetX, s)
		}
	}
	return part
}

// String renders the partition for diagnostics.
func (p *Partition) String() string {
	names := func(ss []*ir.Symbol) string {
		var ns []string
		for _, s := range ss {
			ns = append(ns, s.Name)
		}
		return strings.Join(ns, ", ")
	}
	return fmt.Sprintf("X: {%s}\nY: {%s}\ncost: %d", names(p.SetX), names(p.SetY), p.Cost)
}
