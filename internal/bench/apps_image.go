package bench

import (
	"fmt"
	"math"
	"strings"
)

// This file implements the image-processing applications of Table 2:
// edge_detect, compress, and histogram.
//
// edge_detect uses the line-buffer structure common in embedded image
// pipelines: three row buffers are filled from the image and the Sobel
// gradients read across them, so most simultaneous accesses pair
// *different* arrays and CB partitioning captures nearly all of the
// available parallelism. histogram is the paper's no-parallelism
// benchmark: all three passes are single serial dependence chains
// (load, data-dependent load, store), so even dual-ported memory buys
// nothing.

// EdgeDetect builds the Sobel edge detector over a 64x64 image.
func EdgeDetect() Program {
	const dim = 64
	rng := newPRNG(1234)
	img := randInts(rng, dim*dim, 256)

	// Go reference.
	want := make([]int32, dim*dim)
	var r0, r1, r2 [dim]int32
	for i := 1; i < dim-1; i++ {
		for j := 0; j < dim; j++ {
			r0[j] = img[(i-1)*dim+j]
			r1[j] = img[i*dim+j]
			r2[j] = img[(i+1)*dim+j]
		}
		for j := 1; j < dim-1; j++ {
			gx := (r0[j+1] + 2*r1[j+1] + r2[j+1]) - (r0[j-1] + 2*r1[j-1] + r2[j-1])
			gy := (r2[j-1] + 2*r2[j] + r2[j+1]) - (r0[j-1] + 2*r0[j] + r0[j+1])
			if gx < 0 {
				gx = -gx
			}
			if gy < 0 {
				gy = -gy
			}
			m := gx + gy
			if m > 255 {
				m = 255
			}
			want[i*dim+j] = m
		}
	}

	var sb strings.Builder
	sb.WriteString(ints2Decl("img", img, dim, dim))
	fmt.Fprintf(&sb, "int edge[%d][%d];\nint r0[%d];\nint r1[%d];\nint r2[%d];\n",
		dim, dim, dim, dim, dim)
	fmt.Fprintf(&sb, `
void main() {
	int i;
	int j;
	for (i = 1; i < %[1]d - 1; i++) {
		for (j = 0; j < %[1]d; j++) {
			r0[j] = img[i-1][j];
		}
		for (j = 0; j < %[1]d; j++) {
			r1[j] = img[i][j];
		}
		for (j = 0; j < %[1]d; j++) {
			r2[j] = img[i+1][j];
		}
		for (j = 1; j < %[1]d - 1; j++) {
			int gx = (r0[j+1] + 2*r1[j+1] + r2[j+1]) - (r0[j-1] + 2*r1[j-1] + r2[j-1]);
			int gy = (r2[j-1] + 2*r2[j] + r2[j+1]) - (r0[j-1] + 2*r0[j] + r0[j+1]);
			if (gx < 0) gx = -gx;
			if (gy < 0) gy = -gy;
			int m = gx + gy;
			if (m > 255) m = 255;
			edge[i][j] = m;
		}
	}
}
`, dim)

	return Program{
		Name:   "edge_detect",
		Desc:   "Edge detection using 2D convolution and Sobel operators over line buffers",
		Kind:   Application,
		Source: sb.String(),
		Check:  func(r Reader) error { return checkI32s(r, "edge", want) },
	}
}

// Compress builds the DCT image-compression application: a separable
// 8x8 discrete cosine transform over a 32x32 image followed by
// quantization.
func Compress() Program {
	const (
		dim = 32
		bs  = 8
	)
	rng := newPRNG(55)
	img := make([]float32, dim*dim)
	for i := range img {
		img[i] = float32(rng.i32n(256))
	}
	// DCT-II basis matrix.
	cm := make([]float32, bs*bs)
	for u := 0; u < bs; u++ {
		for x := 0; x < bs; x++ {
			s := math.Sqrt(2.0 / float64(bs))
			if u == 0 {
				s = math.Sqrt(1.0 / float64(bs))
			}
			cm[u*bs+x] = float32(s * math.Cos(float64(2*x+1)*float64(u)*math.Pi/float64(2*bs)))
		}
	}
	qt := make([]float32, bs*bs)
	for u := 0; u < bs; u++ {
		for v := 0; v < bs; v++ {
			qt[u*bs+v] = float32(8 + (u+v)*4)
		}
	}

	// Go reference.
	want := make([]int32, dim*dim)
	var blk, tmp, out [bs * bs]float32
	for bi := 0; bi < dim/bs; bi++ {
		for bj := 0; bj < dim/bs; bj++ {
			for x := 0; x < bs; x++ {
				for y := 0; y < bs; y++ {
					blk[x*bs+y] = img[(bi*bs+x)*dim+(bj*bs+y)]
				}
			}
			for u := 0; u < bs; u++ {
				for y := 0; y < bs; y++ {
					var acc float32
					for x := 0; x < bs; x++ {
						acc += cm[u*bs+x] * blk[x*bs+y]
					}
					tmp[u*bs+y] = acc
				}
			}
			for u := 0; u < bs; u++ {
				for v := 0; v < bs; v++ {
					var acc float32
					for y := 0; y < bs; y++ {
						acc += tmp[u*bs+y] * cm[v*bs+y]
					}
					out[u*bs+v] = acc
				}
			}
			for u := 0; u < bs; u++ {
				for v := 0; v < bs; v++ {
					q := out[u*bs+v] / qt[u*bs+v]
					want[(bi*bs+u)*dim+(bj*bs+v)] = int32(q)
				}
			}
		}
	}

	var sb strings.Builder
	sb.WriteString(floats2Decl("img", img, dim, dim))
	sb.WriteString(floats2Decl("cm", cm, bs, bs))
	sb.WriteString(floats2Decl("qt", qt, bs, bs))
	fmt.Fprintf(&sb, "float blk[%d][%d];\nfloat tmp[%d][%d];\nfloat outb[%d][%d];\nint q[%d][%d];\n",
		bs, bs, bs, bs, bs, bs, dim, dim)
	fmt.Fprintf(&sb, `
void main() {
	int bi;
	int bj;
	int u;
	int v;
	int x;
	int y;
	for (bi = 0; bi < %[1]d; bi++) {
		for (bj = 0; bj < %[1]d; bj++) {
			for (x = 0; x < %[2]d; x++) {
				for (y = 0; y < %[2]d; y++) {
					blk[x][y] = img[bi*%[2]d + x][bj*%[2]d + y];
				}
			}
			for (u = 0; u < %[2]d; u++) {
				for (y = 0; y < %[2]d; y++) {
					float acc = 0.0;
					for (x = 0; x < %[2]d; x++) {
						acc += cm[u][x] * blk[x][y];
					}
					tmp[u][y] = acc;
				}
			}
			for (u = 0; u < %[2]d; u++) {
				for (v = 0; v < %[2]d; v++) {
					float acc = 0.0;
					for (y = 0; y < %[2]d; y++) {
						acc += tmp[u][y] * cm[v][y];
					}
					outb[u][v] = acc;
				}
			}
			for (u = 0; u < %[2]d; u++) {
				for (v = 0; v < %[2]d; v++) {
					q[bi*%[2]d + u][bj*%[2]d + v] = (int)(outb[u][v] / qt[u][v]);
				}
			}
		}
	}
}
`, dim/bs, bs)

	return Program{
		Name:   "compress",
		Desc:   "Image compression using an 8x8 separable Discrete Cosine Transform",
		Kind:   Application,
		Source: sb.String(),
		Check:  func(r Reader) error { return checkI32sTol(r, "q", want, 1) },
	}
}

// Histogram builds the histogram-equalization image enhancer. Every
// pass is a serial chain of dependent memory accesses, so no memory
// organisation can speed it up — the paper's zero-parallelism case.
func Histogram() Program {
	const (
		npix   = 64 * 64
		levels = 256
	)
	rng := newPRNG(77)
	img := randInts(rng, npix, levels)

	// Go reference.
	hist := make([]int32, levels)
	for _, p := range img {
		hist[p]++
	}
	cdf := make([]int32, levels)
	c := int32(0)
	for v := 0; v < levels; v++ {
		c += hist[v]
		cdf[v] = c
	}
	var cdfMin int32
	for v := 0; v < levels; v++ {
		if cdf[v] != 0 {
			cdfMin = cdf[v]
			break
		}
	}
	lut := make([]int32, levels)
	den := int32(npix) - cdfMin
	if den < 1 {
		den = 1
	}
	for v := 0; v < levels; v++ {
		x := cdf[v] - cdfMin
		if x < 0 {
			x = 0
		}
		lut[v] = (x * (levels - 1)) / den
	}
	want := make([]int32, npix)
	for i, p := range img {
		want[i] = lut[p]
	}

	var sb strings.Builder
	sb.WriteString(intsDecl("img", img))
	fmt.Fprintf(&sb, "int hist[%d];\nint cdf[%d];\nint lut[%d];\nint outp[%d];\n",
		levels, levels, levels, npix)
	fmt.Fprintf(&sb, `
void main() {
	int i;
	int v;
	for (i = 0; i < %[1]d; i++) {
		hist[img[i]] += 1;
	}
	int c = 0;
	for (v = 0; v < %[2]d; v++) {
		c += hist[v];
		cdf[v] = c;
	}
	int cdfmin = 0;
	for (v = 0; v < %[2]d; v++) {
		if (cdf[v] != 0) {
			cdfmin = cdf[v];
			break;
		}
	}
	int den = %[1]d - cdfmin;
	if (den < 1) den = 1;
	for (v = 0; v < %[2]d; v++) {
		int x = cdf[v] - cdfmin;
		if (x < 0) x = 0;
		lut[v] = (x * (%[2]d - 1)) / den;
	}
	for (i = 0; i < %[1]d; i++) {
		outp[i] = lut[img[i]];
	}
}
`, npix, levels)

	return Program{
		Name:   "histogram",
		Desc:   "Image enhancement using histogram equalization",
		Kind:   Application,
		Source: sb.String(),
		Check:  func(r Reader) error { return checkI32s(r, "outp", want) },
	}
}
