package bench

import (
	"context"
	"testing"

	"dualbank/internal/alloc"
	"dualbank/internal/core"
)

// TestRunKeyDistinctConfigs holds the memo cache to the explorer's
// contract: every knob RunOptions exposes — mode, partitioner, FM pass
// bound, profile weighting, duplication set — must appear in the cache
// key, so two configurations that can produce different measurements
// never alias onto one entry.
func TestRunKeyDistinctConfigs(t *testing.T) {
	p := Program{Name: "fir_32_1"}
	type req struct {
		mode alloc.Mode
		ro   RunOptions
	}
	distinct := []req{
		{alloc.SingleBank, RunOptions{}},
		{alloc.CB, RunOptions{}},
		{alloc.CBProfiled, RunOptions{}},
		{alloc.CB, RunOptions{Profiled: true}},
		{alloc.CB, RunOptions{Partitioner: core.MethodFM}},
		{alloc.CB, RunOptions{Partitioner: core.MethodFM, FMPasses: 1}},
		{alloc.CB, RunOptions{Partitioner: core.MethodFM, FMPasses: -1}},
		{alloc.CB, RunOptions{Partitioner: core.MethodKL}},
		{alloc.CBDup, RunOptions{}},
		{alloc.CBDup, RunOptions{DupOnly: []string{}}},
		{alloc.CBDup, RunOptions{DupOnly: []string{"x"}}},
		{alloc.CBDup, RunOptions{DupOnly: []string{"x", "y"}}},
		{alloc.CBDup, RunOptions{Profiled: true, DupOnly: []string{"x", "y"}}},
		{alloc.CBDup, RunOptions{Partitioner: core.MethodFM, DupOnly: []string{"x", "y"}}},
		{alloc.CB, RunOptions{Engine: EngineFast}},
		{alloc.CB, RunOptions{Engine: EngineMachine}},
	}
	seen := make(map[runKey]int)
	for i, r := range distinct {
		k := newRunKey(p, r.mode, r.ro)
		if j, ok := seen[k]; ok {
			t.Errorf("configs %d and %d alias onto one key %+v", j, i, k)
		}
		seen[k] = i
	}

	// Requests that provably measure the same thing must share a key:
	// duplication-set order and repeats, the FM pass bound without the
	// FM partitioner, and profile weighting on a mode that never
	// builds the interference graph.
	same := [][2]req{
		{{alloc.CBDup, RunOptions{DupOnly: []string{"y", "x"}}},
			{alloc.CBDup, RunOptions{DupOnly: []string{"x", "y", "x"}}}},
		{{alloc.CB, RunOptions{FMPasses: 3}}, {alloc.CB, RunOptions{}}},
		{{alloc.SingleBank, RunOptions{Profiled: true}}, {alloc.SingleBank, RunOptions{}}},
		{{alloc.CB, RunOptions{DupOnly: []string{"x"}}}, {alloc.CB, RunOptions{}}},
	}
	for i, pair := range same {
		a := newRunKey(p, pair[0].mode, pair[0].ro)
		b := newRunKey(p, pair[1].mode, pair[1].ro)
		if a != b {
			t.Errorf("pair %d: equivalent requests got distinct keys\n%+v\n%+v", i, a, b)
		}
	}
}

// TestHarnessDistinctConfigsMiss runs distinct configurations of one
// benchmark through a harness and checks each one executes (a cache
// miss), while a repeat of any of them hits.
func TestHarnessDistinctConfigsMiss(t *testing.T) {
	p, ok := ByName("fir_32_1")
	if !ok {
		t.Fatal("fir_32_1 missing")
	}
	h := NewHarness(1)
	ros := []RunOptions{
		{},
		{Partitioner: core.MethodFM},
		{Partitioner: core.MethodFM, FMPasses: -1},
		{Profiled: true},
		{DupOnly: []string{}},
		{DupOnly: []string{"h"}},
	}
	for i, ro := range ros {
		mode := alloc.CBDup
		if _, err := h.Run(p, alloc.SingleBank); err != nil {
			t.Fatal(err)
		}
		if _, _, err := h.RunCtx(context.Background(), p, mode, ro); err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
	}
	st := h.Stats()
	if want := int64(len(ros)) + 1; st.Misses != want {
		t.Errorf("misses = %d, want %d (one per distinct config + baseline)", st.Misses, want)
	}
	if _, _, err := h.RunCtx(context.Background(), p, alloc.CBDup, RunOptions{DupOnly: []string{"h"}}); err != nil {
		t.Fatal(err)
	}
	if st2 := h.Stats(); st2.Misses != st.Misses {
		t.Errorf("repeat config re-executed: misses %d -> %d", st.Misses, st2.Misses)
	}
}

// TestHarnessBatchedKeysDistinct extends the aliasing contract to
// batched dispatches: a batched measurement must not alias a
// single-run entry for the same configuration (their timings reflect
// different amortization), while repeated batched requests for the
// same configuration must hit.
func TestHarnessBatchedKeysDistinct(t *testing.T) {
	p, ok := ByName("fir_32_1")
	if !ok {
		t.Fatal("fir_32_1 missing")
	}
	h := NewHarness(1)
	single, _, err := h.RunCtx(context.Background(), p, alloc.CBDup, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	items := []BatchItem{
		{Mode: alloc.CBDup},
		{Mode: alloc.CB},
	}
	first := h.RunBatchCtx(context.Background(), p, items)
	for i, o := range first {
		if o.Err != nil {
			t.Fatalf("batch item %d: %v", i, o.Err)
		}
	}
	st := h.Stats()
	// One single-run miss, then two batched misses: the CBDup batch
	// entry must not have aliased the single-run one.
	if st.Misses != 3 {
		t.Errorf("misses = %d, want 3 (single CBDup + batched CBDup + batched CB)", st.Misses)
	}
	if first[0].Res.Cycles != single.Cycles {
		t.Errorf("batched CBDup cycles %d != single-run %d", first[0].Res.Cycles, single.Cycles)
	}
	second := h.RunBatchCtx(context.Background(), p, items)
	for i, o := range second {
		if o.Err != nil {
			t.Fatalf("repeat batch item %d: %v", i, o.Err)
		}
	}
	if st2 := h.Stats(); st2.Misses != st.Misses {
		t.Errorf("repeat batch re-executed: misses %d -> %d", st.Misses, st2.Misses)
	}
}
