// Package asm renders scheduled VLIW programs as readable assembly,
// one long instruction per line with its operations grouped by
// functional unit — the moral equivalent of the two-column
// DSP56001-style listing in Figure 1(b) of the paper.
package asm

import (
	"fmt"
	"strings"

	"dualbank/internal/compact"
	"dualbank/internal/ir"
	"dualbank/internal/machine"
)

// Print renders the whole program.
func Print(p *compact.Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; program %s  (ports: %s, %d long instructions)\n",
		p.Src.Name, p.Ports, p.StaticInstrs())
	for _, g := range p.Src.Globals {
		fmt.Fprintf(&sb, "; %-6s %-16s bank=%-2s addr=%-5d size=%d\n",
			g.Elem, g.Name, g.Bank, g.Addr, g.Size)
	}
	for _, f := range p.Src.Funcs {
		sb.WriteString(PrintFunc(p, f.Name))
	}
	return sb.String()
}

// PrintFunc renders one function.
func PrintFunc(p *compact.Program, name string) string {
	sf := p.Funcs[name]
	if sf == nil {
		return fmt.Sprintf("; no function %q\n", name)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "\n%s:\n", name)
	for _, b := range sf.Blocks {
		fmt.Fprintf(&sb, ".%s_b%d:", name, b.Src.ID)
		if b.Src.LoopDepth > 0 {
			fmt.Fprintf(&sb, "\t\t; loop depth %d", b.Src.LoopDepth)
		}
		sb.WriteByte('\n')
		for _, in := range b.Instrs {
			sb.WriteString("    ")
			first := true
			for u := 0; u < machine.NumUnits; u++ {
				op := in.Slots[u]
				if op == nil {
					continue
				}
				if !first {
					sb.WriteString(" || ")
				}
				first = false
				fmt.Fprintf(&sb, "%s: %s", machine.Unit(u), formatOp(op, b.Src))
			}
			if first {
				sb.WriteString("nop")
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func formatOp(op *ir.Op, b *ir.Block) string {
	switch op.Kind {
	case ir.OpBr:
		return fmt.Sprintf("br b%d", b.Succs[0].ID)
	case ir.OpCondBr:
		return fmt.Sprintf("br.nz %s, b%d, b%d", op.Args[0], b.Succs[0].ID, b.Succs[1].ID)
	case ir.OpDo:
		return fmt.Sprintf("do %s, b%d", op.Args[0], b.Succs[0].ID)
	case ir.OpEndDo:
		return fmt.Sprintf("enddo b%d, b%d", b.Succs[0].ID, b.Succs[1].ID)
	case ir.OpLoad:
		return fmt.Sprintf("%s = %s:%s", op.Dst, op.Bank, addrOf(op))
	case ir.OpStore:
		return fmt.Sprintf("%s:%s = %s", op.Bank, addrOf(op), op.Args[0])
	default:
		return op.String()
	}
}

func addrOf(op *ir.Op) string {
	if op.Idx != ir.NoReg {
		return fmt.Sprintf("%s[%s]", op.Sym, op.Idx)
	}
	return op.Sym.String()
}
