// Package bench contains the paper's benchmark suite — the twelve DSP
// kernels of Table 1 and the eleven applications of Table 2 —
// re-implemented in MiniC with deterministic embedded input data, plus
// the experiment harness that regenerates Figure 7, Figure 8, and
// Table 3.
//
// Every benchmark carries a Check function that validates the
// program's outputs against a Go reference implementation, so each
// harness run doubles as a correctness test of the whole compiler and
// simulator.
package bench

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"dualbank/internal/alloc"
	"dualbank/internal/compact"
	"dualbank/internal/core"
	"dualbank/internal/cost"
	"dualbank/internal/ir"
	"dualbank/internal/machine"
	"dualbank/internal/pipeline"
)

// simMachine is the engine-generic surface a measurement needs: the
// cycle count and output words. All three engines satisfy it.
type simMachine interface {
	Word(sym *ir.Symbol, idx int) (uint32, error)
	CycleCount() int64
}

// Kind distinguishes kernels (Table 1) from applications (Table 2).
type Kind int8

const (
	Kernel Kind = iota
	Application
)

func (k Kind) String() string {
	if k == Application {
		return "application"
	}
	return "kernel"
}

// Reader reads one word of program output by global symbol name.
type Reader func(name string, idx int) (uint32, error)

// F32 reads a float word through a Reader.
func F32(r Reader, name string, idx int) (float32, error) {
	w, err := r(name, idx)
	return math.Float32frombits(w), err
}

// I32 reads an integer word through a Reader.
func I32(r Reader, name string, idx int) (int32, error) {
	w, err := r(name, idx)
	return int32(w), err
}

// Program is one benchmark: source plus output validation.
type Program struct {
	Name   string
	Desc   string // the Table 1/2 description
	Kind   Kind
	Source string
	Check  func(r Reader) error
}

// suite memoizes the generated benchmark programs. Generating a
// program renders its whole MiniC source, embedded input data
// included (FFT(1024) alone formats a thousand floats), which costs
// milliseconds — far too much to repeat on every ByName lookup in a
// serving path. The programs are immutable once built (value structs
// over immutable strings and stateless Check functions), so one
// generation serves every caller; the accessors hand out fresh slice
// headers over the shared backing elements.
var suite struct {
	once    sync.Once
	kernels []Program
	apps    []Program
	byName  map[string]Program
}

func initSuite() {
	suite.kernels = []Program{
		FFT(1024), FFT(256),
		FIR(256, 64), FIR(32, 1),
		IIR(4, 64), IIR(1, 1),
		Latnrm(32, 64), Latnrm(8, 1),
		LMSFIR(32, 64), LMSFIR(8, 1),
		MatMult(10), MatMult(4),
	}
	suite.apps = []Program{
		ADPCM(), LPC(), Spectral(), EdgeDetect(), Compress(),
		Histogram(), V32Encode(), G721MLEncode(), G721MLDecode(),
		G721WFEncode(), Trellis(),
	}
	suite.byName = make(map[string]Program, len(suite.kernels)+len(suite.apps))
	for _, p := range suite.kernels {
		suite.byName[p.Name] = p
	}
	for _, p := range suite.apps {
		suite.byName[p.Name] = p
	}
}

// Kernels returns the Table 1 suite in figure order (k1..k12).
func Kernels() []Program {
	suite.once.Do(initSuite)
	return append([]Program(nil), suite.kernels...)
}

// Applications returns the Table 2 suite in figure order (a1..a11).
func Applications() []Program {
	suite.once.Do(initSuite)
	return append([]Program(nil), suite.apps...)
}

// ByName finds a benchmark in either suite, or materializes a
// generated one when name is a canonical "gen_<archetype>_<seed>" key
// (see internal/genmc).
func ByName(name string) (Program, bool) {
	suite.once.Do(initSuite)
	if p, ok := suite.byName[name]; ok {
		return p, true
	}
	return generatedByName(name)
}

// Result is one (benchmark, mode) measurement.
type Result struct {
	Bench  string
	Mode   alloc.Mode
	Cycles int64
	Mem    cost.Memory
	// DupStores is the number of coherence stores the allocation pass
	// inserted.
	DupStores int
	// Duplicated lists duplicated symbol names.
	Duplicated []string

	// CompileSeconds and SimSeconds split the measurement's wall clock
	// into the compile phase (front end through schedule validation)
	// and the simulation phase (lowering plus execution on the
	// selected engine).
	CompileSeconds float64
	SimSeconds     float64
}

// RunOptions configures RunWith beyond the allocation mode. Every
// field except Compiler changes the measurement and therefore appears
// in the harness's memo-cache key.
type RunOptions struct {
	// Partitioner selects the graph-partitioning algorithm for the CB
	// modes (greedy by default).
	Partitioner core.Method
	// FMPasses bounds the FM partitioner's refinement passes: 0 means
	// the library default, negative stops after the greedy-equivalent
	// first phase. Meaningful only when Partitioner is core.MethodFM.
	FMPasses int
	// Profiled uses profile-derived interference-edge weights for any
	// partitioned mode (CBProfiled always does, regardless).
	Profiled bool
	// DupOnly, when non-nil, names the exact CBDup duplication set —
	// any partitioned array listed is replicated, marked or not; an
	// empty non-nil slice duplicates nothing. Nil keeps the paper's
	// policy (duplicate every marked array). Meaningful only under
	// alloc.CBDup.
	DupOnly []string
	// Banks and Ports select the machine's bank geometry — bank count
	// and ports per bank. Zero values mean the classic dual-bank,
	// single-ported machine, reproducing the historical measurement
	// exactly.
	Banks, Ports int
	// BankPerm relabels the banks by a permutation before layout; cycle
	// counts are invariant under it (the metamorphic suite proves it)
	// but memory-split figures are not, so it is part of the memo key.
	BankPerm []int
	// Engine selects the simulation engine. The zero value is the
	// compiled engine. All engines produce identical measurements (the
	// differential suite pins them), but the harness still keys its
	// cache on the engine so a result's recorded timings are always the
	// requested engine's.
	Engine Engine
	// Compiler, when non-nil, supplies reusable compiler scratch so
	// back-to-back measurements skip re-growing it.
	Compiler *pipeline.Compiler
}

// Run compiles and executes one benchmark under one allocation mode,
// validates the schedule and the program outputs, and returns the
// measurement. Execution uses the compiled threaded-code simulator by
// default, which differential tests pin to the reference interpreter.
func Run(p Program, mode alloc.Mode) (Result, error) {
	return RunWith(p, mode, RunOptions{})
}

// RunWith is Run with an explicit partitioner choice and optional
// reusable compiler scratch.
func RunWith(p Program, mode alloc.Mode, ro RunOptions) (Result, error) {
	return RunCtx(context.Background(), p, mode, ro)
}

// RunCtx is RunWith honoring ctx: compilation checks cancellation
// between passes and the simulator polls it at basic-block boundaries,
// so a caller's deadline bounds the whole measurement.
func RunCtx(ctx context.Context, p Program, mode alloc.Mode, ro RunOptions) (Result, error) {
	cc := ro.Compiler
	if cc == nil {
		cc = new(pipeline.Compiler)
	}
	po := pipeline.Options{
		Mode: mode, Partitioner: ro.Partitioner,
		FMPasses: ro.FMPasses, Profiled: ro.Profiled,
		Spec:     machine.BankSpec{Banks: ro.Banks, PortsPerBank: ro.Ports},
		BankPerm: ro.BankPerm,
	}
	if ro.DupOnly != nil {
		po.DupOnly = make(map[string]bool, len(ro.DupOnly))
		for _, name := range ro.DupOnly {
			po.DupOnly[name] = true
		}
	}
	compileStart := time.Now()
	c, err := cc.CompileCtx(ctx, p.Source, p.Name, po)
	if err != nil {
		return Result{}, fmt.Errorf("%s/%v: %w", p.Name, mode, err)
	}
	if err := compact.Validate(c.Sched); err != nil {
		return Result{}, fmt.Errorf("%s/%v: %w", p.Name, mode, err)
	}
	compileSeconds := time.Since(compileStart).Seconds()
	simStart := time.Now()
	// The engines are pinned to identical observable results; the
	// switch only selects dispatch machinery. The compiled engine
	// recycles the compiler's batch arena, so its returned machine must
	// be fully read (cycles, output check) before this compiler runs
	// anything else — which RunCtx does before returning.
	var m simMachine
	var err2 error
	switch ro.Engine {
	case EngineMachine:
		m, err2 = c.RunCtx(ctx)
	case EngineFast:
		m, err2 = c.RunFastCtx(ctx)
	default:
		m, err2 = c.RunCompiledCtx(ctx, cc.SimBatch())
	}
	if err2 != nil {
		return Result{}, fmt.Errorf("%s/%v: %w", p.Name, mode, err2)
	}
	simSeconds := time.Since(simStart).Seconds()
	if p.Check != nil {
		read := func(name string, idx int) (uint32, error) {
			g := c.Global(name)
			if g == nil {
				return 0, fmt.Errorf("no global %q", name)
			}
			return m.Word(g, idx)
		}
		if err := p.Check(read); err != nil {
			return Result{}, fmt.Errorf("%s/%v: output check: %w", p.Name, mode, err)
		}
	}
	res := Result{
		Bench:          p.Name,
		Mode:           mode,
		Cycles:         m.CycleCount(),
		Mem:            cost.Of(c.Alloc, c.Sched),
		DupStores:      c.Alloc.DupStores,
		CompileSeconds: compileSeconds,
		SimSeconds:     simSeconds,
	}
	for _, s := range c.Alloc.Duplicated {
		res.Duplicated = append(res.Duplicated, s.Name)
	}
	return res, nil
}

// Gain returns the percentage cycle-count improvement of res over the
// baseline: (base/res - 1) * 100.
func Gain(base, res Result) float64 {
	return (float64(base.Cycles)/float64(res.Cycles) - 1) * 100
}

// BatchItem is one variant of a batched evaluation: an allocation mode
// plus its run options.
type BatchItem struct {
	Mode alloc.Mode
	Opts RunOptions
}

// BatchOutcome is one batched variant's measurement. Err is per-item:
// an infeasible or faulting variant does not abort its siblings.
// Cached reports a memo-cache hit when the batch ran through a
// Harness.
type BatchOutcome struct {
	Res    Result
	Cached bool
	Err    error
}

// RunBatchCtx measures one benchmark under many configuration variants
// on a shared compiler: all variants reuse one set of back-end scratch
// buffers and one recycled simulation arena, so a family of
// duplication or partition variants costs one warm-up instead of one
// per variant. Outcomes are returned in item order. A cancelled
// context fails the remaining items with its error but never corrupts
// completed outcomes; per-variant failures are recorded in their slot
// and evaluation continues.
func RunBatchCtx(ctx context.Context, p Program, items []BatchItem) []BatchOutcome {
	cc := new(pipeline.Compiler)
	out := make([]BatchOutcome, len(items))
	for i, it := range items {
		ro := it.Opts
		if ro.Compiler == nil {
			ro.Compiler = cc
		}
		out[i].Res, out[i].Err = RunCtx(ctx, p, it.Mode, ro)
	}
	return out
}
