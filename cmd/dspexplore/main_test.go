package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dualbank/internal/explore"
)

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	for _, want := range []string{"fft_256", "fir_32_1", "adpcm"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("-list missing %q", want)
		}
	}
}

func TestRunSingleBenchmark(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "report.json")
	csvPath := filepath.Join(dir, "report.csv")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-benchmark", "fir_32_1", "-budget", "40", "-workers", "4", "-quiet",
		"-json", jsonPath, "-csv", csvPath,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "fir_32_1:") || !strings.Contains(out, "verdict:") {
		t.Errorf("missing frontier table or verdict:\n%s", out)
	}

	var rep explore.Report
	b, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Bench != "fir_32_1" || len(rep.Benchmarks[0].Frontier) == 0 {
		t.Errorf("report JSON malformed: %+v", rep)
	}

	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "bench,config,cycles,cost,pg,ci,pcr\n") {
		t.Errorf("CSV header wrong: %q", string(csv[:min(len(csv), 60)]))
	}
}

// TestRunCheckpointResume runs the same exploration twice against one
// checkpoint directory; the second run must replay from the store and
// print identical frontiers.
func TestRunCheckpointResume(t *testing.T) {
	ckpt := t.TempDir()
	args := []string{"-benchmark", "fir_32_1", "-budget", "30", "-quiet", "-checkpoint", ckpt}

	var out1, err1 bytes.Buffer
	if code := run(args, &out1, &err1); code != 0 {
		t.Fatalf("first run: exit %d, stderr: %s", code, err1.String())
	}
	files, err := os.ReadDir(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no checkpoint files written")
	}

	var out2, err2 bytes.Buffer
	if code := run(args, &out2, &err2); code != 0 {
		t.Fatalf("second run: exit %d, stderr: %s", code, err2.String())
	}
	// The header line counts store hits (0 on the first run, >0 on the
	// resumed one); the frontier and verdict must be byte-identical.
	if got, want := stripCounters(out2.String()), stripCounters(out1.String()); got != want {
		t.Errorf("resumed frontier differs:\n1: %s\n2: %s", want, got)
	}
	if !strings.Contains(out2.String(), "store hits") || strings.Contains(out2.String(), "(0 store hits") {
		t.Errorf("second run did not replay checkpoints:\n%s", out2.String())
	}
	if !strings.Contains(err2.String(), "resuming from") {
		t.Errorf("no resume notice on stderr: %q", err2.String())
	}
}

// stripCounters drops the per-benchmark header lines (their store/cache
// hit counters legitimately differ between a fresh and a resumed run).
func stripCounters(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, " evals (") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

func TestRunBenchReport(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-report suite in -short mode")
	}
	path := filepath.Join(t.TempDir(), "BENCH_explore.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-bench-report", path, "-quiet", "-budget", "40"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var rep explore.Report
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != len(benchReportSuite) {
		t.Errorf("bench report covers %d benchmarks, want %d", len(rep.Benchmarks), len(benchReportSuite))
	}
	if len(rep.Suite) == 0 {
		t.Error("bench report has no suite frontier")
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no benchmarks: exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-benchmark", "nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown benchmark: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown benchmark") {
		t.Errorf("stderr: %q", stderr.String())
	}
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}

// TestRunCertifySmoke drives the certified-optimality sweep through
// the CLI: text table on stdout, gap-report JSON at the -certify path.
func TestRunCertifySmoke(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gaps.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-certify", path, "-benchmark", "fir_32_1,iir_1_1", "-workers", "2", "-quiet",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"certified optimality gaps", "iir_1_1", "optimal"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}

	var rep explore.CertReport
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("gap report JSON: %v", err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("gap report covers %d benchmarks, want 2", len(rep.Benchmarks))
	}
	iir := rep.Benchmarks[1]
	if iir.Bench != "iir_1_1" || iir.Cert.Verdict.String() != "optimal" || iir.Cert.Upper != 12 {
		t.Errorf("iir_1_1 certification malformed: %+v", iir)
	}
	for _, bc := range rep.Benchmarks {
		if len(bc.Arms) != 3 {
			t.Errorf("%s: %d arms, want 3", bc.Bench, len(bc.Arms))
		}
	}
}
