package ir

import (
	"strings"
	"testing"
)

// buildFunc constructs a minimal valid function: one block returning a
// constant.
func buildFunc(name string) *Func {
	f := NewFunc(name, TInt)
	b := f.NewBlock()
	r := f.NewReg(TInt)
	b.Ops = append(b.Ops,
		&Op{Kind: OpConst, Type: TInt, Dst: r, Imm: 7},
		&Op{Kind: OpRet, Args: [2]Reg{r}},
	)
	return f
}

func TestVerifyValid(t *testing.T) {
	p := &Program{Name: "t"}
	p.AddFunc(buildFunc("main"))
	if err := Verify(p); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	p := &Program{Name: "t"}
	f := NewFunc("main", TVoid)
	b := f.NewBlock()
	r := f.NewReg(TInt)
	b.Ops = append(b.Ops, &Op{Kind: OpConst, Type: TInt, Dst: r})
	p.AddFunc(f)
	if err := Verify(p); err == nil || !strings.Contains(err.Error(), "terminator") {
		t.Fatalf("Verify = %v, want missing-terminator error", err)
	}
}

func TestVerifyCatchesMidBlockTerminator(t *testing.T) {
	p := &Program{Name: "t"}
	f := NewFunc("main", TVoid)
	b := f.NewBlock()
	b.Ops = append(b.Ops,
		&Op{Kind: OpRet},
		&Op{Kind: OpRet},
	)
	p.AddFunc(f)
	if err := Verify(p); err == nil || !strings.Contains(err.Error(), "mid-block") {
		t.Fatalf("Verify = %v, want mid-block error", err)
	}
}

func TestVerifyCatchesBadEdges(t *testing.T) {
	p := &Program{Name: "t"}
	f := NewFunc("main", TVoid)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b0.Ops = append(b0.Ops, &Op{Kind: OpBr})
	b0.Succs = []*Block{b1} // missing back-edge in b1.Preds
	b1.Ops = append(b1.Ops, &Op{Kind: OpRet})
	p.AddFunc(f)
	if err := Verify(p); err == nil || !strings.Contains(err.Error(), "back-edge") {
		t.Fatalf("Verify = %v, want back-edge error", err)
	}
}

func TestVerifyCatchesUnknownCallee(t *testing.T) {
	p := &Program{Name: "t"}
	f := NewFunc("main", TVoid)
	b := f.NewBlock()
	b.Ops = append(b.Ops,
		&Op{Kind: OpCall, Callee: "missing"},
		&Op{Kind: OpRet},
	)
	p.AddFunc(f)
	if err := Verify(p); err == nil || !strings.Contains(err.Error(), "unknown function") {
		t.Fatalf("Verify = %v, want unknown-function error", err)
	}
}

func TestVerifyCatchesRegisterOutOfRange(t *testing.T) {
	p := &Program{Name: "t"}
	f := NewFunc("main", TVoid)
	b := f.NewBlock()
	b.Ops = append(b.Ops,
		&Op{Kind: OpConst, Type: TInt, Dst: Reg(99)},
		&Op{Kind: OpRet},
	)
	p.AddFunc(f)
	if err := Verify(p); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("Verify = %v, want out-of-range error", err)
	}
}

func TestOpUses(t *testing.T) {
	var buf []Reg
	add := &Op{Kind: OpAdd, Dst: 3, Args: [2]Reg{1, 2}}
	if got := add.Uses(buf[:0]); len(got) != 2 {
		t.Errorf("add uses %v", got)
	}
	// A multiply-accumulate also reads its destination.
	mac := &Op{Kind: OpMac, Dst: 3, Args: [2]Reg{1, 2}}
	got := mac.Uses(buf[:0])
	found := false
	for _, r := range got {
		if r == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("mac uses %v, should include its accumulator", got)
	}
	// A load with an index register reads it.
	sym := &Symbol{Name: "a", Size: 4}
	ld := &Op{Kind: OpLoad, Dst: 5, Sym: sym, Idx: 4}
	got = ld.Uses(buf[:0])
	if len(got) != 1 || got[0] != 4 {
		t.Errorf("load uses %v, want [v4]", got)
	}
}

func TestPhysRegisterConvention(t *testing.T) {
	f := NewFunc("f", TVoid)
	if f.Phys() {
		t.Fatal("new func should be virtual")
	}
	f.SetPhysRegTable()
	if !f.Phys() {
		t.Fatal("SetPhysRegTable should mark the function physical")
	}
	if f.RegType(PhysInt(1)) != TInt || f.RegType(PhysInt(32)) != TInt {
		t.Error("integer file misclassified")
	}
	if f.RegType(PhysFloat(1)) != TFloat || f.RegType(PhysFloat(32)) != TFloat {
		t.Error("float file misclassified")
	}
	if RetInt != PhysInt(1) || RetFloat != PhysFloat(1) {
		t.Error("return register convention changed")
	}
}

func TestSymbolHelpers(t *testing.T) {
	s := &Symbol{Name: "m", Dims: []int{3, 4}, Size: 12}
	if !s.IsArray() {
		t.Error("m should be an array")
	}
	sc := &Symbol{Name: "x", Size: 1}
	if sc.IsArray() {
		t.Error("x should be scalar")
	}
}

func TestProgramSymbolsAndFuncLookup(t *testing.T) {
	p := &Program{Name: "t"}
	g := &Symbol{Name: "g", Size: 1}
	p.Globals = append(p.Globals, g)
	f := buildFunc("main")
	f.Locals = append(f.Locals, &Symbol{Name: "main.tmp", Kind: SymLocal, Size: 2})
	p.AddFunc(f)
	syms := p.Symbols()
	if len(syms) != 2 {
		t.Fatalf("Symbols() = %d, want 2", len(syms))
	}
	if p.Func("main") != f || p.Func("nope") != nil {
		t.Fatal("Func lookup broken")
	}
}

func TestPrintSmoke(t *testing.T) {
	p := &Program{Name: "t"}
	p.Globals = append(p.Globals, &Symbol{Name: "g", Elem: TFloat, Size: 8, Dims: []int{8}})
	p.AddFunc(buildFunc("main"))
	out := p.String()
	for _, want := range []string{"g[8]", "func main", "const 7", "ret"} {
		if !strings.Contains(out, want) {
			t.Errorf("printout missing %q:\n%s", want, out)
		}
	}
}

func TestOpStringForms(t *testing.T) {
	sym := &Symbol{Name: "buf", Size: 8}
	cases := []struct {
		op   *Op
		want string
	}{
		{&Op{Kind: OpConst, Dst: 1, Imm: 42}, "v1 = const 42"},
		{&Op{Kind: OpFAdd, Dst: 3, Args: [2]Reg{1, 2}}, "v3 = fadd v1, v2"},
		{&Op{Kind: OpLoad, Dst: 2, Sym: sym, Idx: 1}, "v2 = load buf[v1]"},
		{&Op{Kind: OpStore, Args: [2]Reg{4}, Sym: sym}, "store buf, v4"},
		{&Op{Kind: OpCall, Callee: "f", CallArgs: []Reg{1, 2}}, "call f(v1, v2)"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
