package minic

import (
	"strings"
	"testing"
)

func analyze(t *testing.T, src string) (*File, error) {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f, Analyze(f)
}

func mustAnalyze(t *testing.T, src string) *File {
	t.Helper()
	f, err := analyze(t, src)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return f
}

func semaErr(t *testing.T, src, wantSub string) {
	t.Helper()
	_, err := analyze(t, src)
	if err == nil {
		t.Fatalf("expected semantic error containing %q", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err, wantSub)
	}
}

func TestSemaValidProgram(t *testing.T) {
	f := mustAnalyze(t, `
int g;
float arr[8];
int helper(int x) { return x * 2; }
void main() {
	int i;
	for (i = 0; i < 8; i++) {
		arr[i] = (float)helper(i) * 0.5;
	}
	g = helper(3);
}
`)
	// Every identifier must be resolved.
	if f.Decls[0].Sym == nil || !f.Decls[0].Sym.Global {
		t.Fatal("global g not resolved")
	}
}

func TestSemaTypeAnnotation(t *testing.T) {
	f := mustAnalyze(t, `float x; void main() { x = 1 + 2.5; }`)
	asg := f.Funcs[0].Body.Stmts[0].(*ExprStmt).X.(*AssignExpr)
	if asg.Rhs.TypeOf() != TypeFloat {
		t.Fatalf("1 + 2.5 typed %v, want float", asg.Rhs.TypeOf())
	}
	cmpSrc := mustAnalyze(t, `void main() { int b = 1.5 < 2.5; }`)
	d := cmpSrc.Funcs[0].Body.Stmts[0].(*DeclStmt)
	if d.Decl.Init.TypeOf() != TypeInt {
		t.Fatal("comparison should produce int")
	}
}

func TestSemaScoping(t *testing.T) {
	mustAnalyze(t, `
void main() {
	int x = 1;
	{
		int x = 2; // shadows
		x = 3;
	}
	x = 4;
}
`)
	semaErr(t, `void main() { int x; int x; }`, "redeclared")
	semaErr(t, `void main() { { int y; } y = 1; }`, "undeclared")
	// A for-init declaration is scoped to the loop.
	semaErr(t, `void main() { for (int i = 0; i < 3; i++) {} i = 1; }`, "undeclared")
}

func TestSemaErrors(t *testing.T) {
	semaErr(t, `void main() { x = 1; }`, "undeclared")
	semaErr(t, `int a[4]; void main() { a = 1; }`, "without subscript")
	semaErr(t, `int a; void main() { a[0] = 1; }`, "non-array")
	semaErr(t, `int a[4]; void main() { a[1][2] = 1; }`, "rank")
	semaErr(t, `int a[4]; void main() { a[1.5] = 1; }`, "subscript must be int")
	semaErr(t, `void main() { break; }`, "break outside loop")
	semaErr(t, `void main() { continue; }`, "continue outside loop")
	semaErr(t, `int f() { return; } void main() {}`, "without value")
	semaErr(t, `void f() { return 1; } void main() {}`, "void function")
	semaErr(t, `void main() { undefined(); }`, "undefined function")
	semaErr(t, `int f(int a) { return a; } void main() { f(); }`, "takes 1 arguments")
	semaErr(t, `void main() { float x = 1.0 % 2.0; }`, "requires int")
	semaErr(t, `void main() { float x = ~1.5; }`, "requires int")
	semaErr(t, `int g; int g; void main() {}`, "redeclared")
	semaErr(t, `int f() { return 0; } int f() { return 1; } void main() {}`, "redefined")
	semaErr(t, `int main; void main() {}`, "redeclared as function")
	semaErr(t, `int x = y; void main() {}`, "must be constant")
	semaErr(t, `int a[2] = {1, 2, 3}; void main() {}`, "too many initializers")
	semaErr(t, `int a[2] = 5; void main() {}`, "brace initializer")
	semaErr(t, `int a = {1}; void main() {}`, "brace initializer for scalar")
	semaErr(t, `void f() {} void main() { int x = f(); }`, "no value")
	semaErr(t, `void f() {} void main() { if (f()) {} }`, "no value")
	semaErr(t, `int x;`, "no main function")
}

func TestSemaVoidCallStatement(t *testing.T) {
	// Calling a void function as a statement is fine.
	mustAnalyze(t, `void f() {} void main() { f(); }`)
}

func TestSemaImplicitConversions(t *testing.T) {
	mustAnalyze(t, `
float f(float x) { return x; }
void main() {
	int i = 3;
	float y = f(i);   // int argument to float parameter
	i = y;            // float assigned to int
	if (i < y) {}     // mixed comparison
}
`)
}

func TestSemaSwitch(t *testing.T) {
	mustAnalyze(t, `
void main() {
	int x = 2;
	switch (x) {
	case 1:
		x = 10;
		break;
	case -2:
	default:
		x = 20;
	}
}
`)
	semaErr(t, `void main() { float f = 1.0; switch (f) {} }`, "must be int")
	semaErr(t, `void main() { int x; switch (x) { case 1: break; case 1: break; } }`, "duplicate case")
	semaErr(t, `void main() { int x; switch (x) { default: break; default: break; } }`, "multiple default")
	semaErr(t, `void main() { int x; switch (x) { case x: break; } }`, "constant")
	semaErr(t, `void main() { int x; switch (x) { case 1.5: break; } }`, "integer constant")
	// break is legal inside a switch, continue is not (outside a loop).
	semaErr(t, `void main() { int x; switch (x) { case 1: continue; } }`, "continue outside loop")
	// continue inside a loop containing a switch targets the loop.
	mustAnalyze(t, `
void main() {
	int i;
	for (i = 0; i < 4; i++) {
		switch (i) {
		case 2:
			continue;
		default:
			break;
		}
	}
}
`)
}

func TestSemaNestedInitializer(t *testing.T) {
	semaErr(t, `int a[4] = {{1}, 2}; void main() {}`, "nested initializer")
	semaErr(t, `int m[2][2] = {{1,2,3}}; void main() {}`, "row initializer too long")
}
