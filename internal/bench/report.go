package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// This file defines the machine-readable harness report written by
// `dspbench -json`: every figure/table's rows plus per-section
// wall-clock timings and the run cache's hit/miss traffic, so the
// repository's performance trajectory is trackable across commits.

// Report is the full output of one harness invocation.
type Report struct {
	// GOMAXPROCS and Parallel record the machine and pool width the
	// run used, for comparing timings across hosts.
	GOMAXPROCS int `json:"gomaxprocs"`
	Parallel   int `json:"parallel"`

	Sections []Section `json:"sections"`

	// Runs is the compile/simulate wall-clock split of every executed
	// (benchmark, mode) measurement, sorted by benchmark then mode.
	Runs []RunTiming `json:"runs,omitempty"`

	// SimBench is the per-engine simulator throughput suite (`dspbench
	// -simbench`); BENCH_sim.json is a Report carrying only this field.
	SimBench []SimBenchRow `json:"simbench,omitempty"`

	// Cache is the memoized run cache's traffic over the whole
	// invocation; TotalSeconds the end-to-end harness wall clock.
	Cache        CacheStats `json:"cache"`
	TotalSeconds float64    `json:"total_seconds"`
}

// Section is one experiment's rows and wall-clock cost. Exactly one of
// Figure, Table3 and Sweep is populated, matching the section kind.
type Section struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`

	Figure []FigureRow `json:"figure,omitempty"`
	Table3 []Table3Row `json:"table3,omitempty"`
	Sweep  []SweepRow  `json:"sweep,omitempty"`
}

// AddSection appends a timed section to the report.
func (r *Report) AddSection(s Section) { r.Sections = append(r.Sections, s) }

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport reads a report previously written by WriteFile — the
// -simcheck path for loading the committed BENCH_sim.json baseline.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := new(Report)
	if err := json.Unmarshal(data, r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// Timed runs fn and returns its wall-clock duration in seconds.
func Timed(fn func() error) (float64, error) {
	start := time.Now()
	err := fn()
	return time.Since(start).Seconds(), err
}
