package opt

import (
	"dualbank/internal/ir"
	"dualbank/internal/machine"
)

// This file implements the loop-shaping passes that let compacted code
// exploit the architecture's low-overhead looping hardware (the DO/REP
// mechanism of Figure 1):
//
//   - mergeBlocks collapses straight-line block chains, so a loop body
//     and its increment block become one schedulable region.
//   - rotateLoops turns while-shaped loops into do-while shape by
//     copying the (pure, register-only) header test into the backedge
//     block; the original header remains as the entry guard.
//   - hardwareLoops rewrites counted loops to OpDo/OpEndDo so the
//     per-iteration compare-and-branch chain disappears: the loop-end
//     test is performed by the loop hardware and packs into any
//     instruction with a free PCU slot.

// ShapeLoops runs the loop passes to a fixed point and renumbers the
// blocks. It is called from Run.
func ShapeLoops(f *ir.Func) {
	for round := 0; round < 16; round++ {
		changed := foldBranches(f)
		changed = mergeBlocks(f) || changed
		changed = rotateLoops(f) || changed
		changed = mergeBlocks(f) || changed
		changed = hardwareLoops(f) || changed
		if !changed {
			break
		}
	}
	renumber(f)
}

// foldBranches rewrites conditional branches whose condition is a
// known constant (for example the entry guard of a constant-trip-count
// loop after rotation) into unconditional branches. Only constants
// defined in the entry block or earlier in the same block are used, so
// the definition is guaranteed to execute first.
func foldBranches(f *ir.Func) bool {
	type def struct {
		val   int64
		blk   *ir.Block
		count int
	}
	defs := make(map[ir.Reg]*def)
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			if op.Dst == ir.NoReg {
				continue
			}
			d := defs[op.Dst]
			if d == nil {
				d = &def{}
				defs[op.Dst] = d
			}
			d.count++
			d.blk = b
			d.val = 0
			if op.Kind == ir.OpConst {
				d.val = op.Imm
			} else {
				d.count += 100 // not a constant: poison
			}
		}
	}
	changed := false
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || t.Kind != ir.OpCondBr {
			continue
		}
		d := defs[t.Args[0]]
		if d == nil || d.count != 1 {
			continue
		}
		if d.blk != f.Entry() && d.blk != b {
			continue
		}
		taken, dead := b.Succs[0], b.Succs[1]
		if d.val == 0 {
			taken, dead = dead, taken
		}
		t.Kind = ir.OpBr
		t.Args[0] = ir.NoReg
		b.Succs = []*ir.Block{taken}
		if dead != taken {
			removePred(dead, b)
		}
		changed = true
	}
	if changed {
		removeUnreachable(f)
		renumber(f)
	}
	return changed
}

func renumber(f *ir.Func) {
	for i, b := range f.Blocks {
		b.ID = i
	}
}

// mergeBlocks merges B -> S whenever B ends in an unconditional branch
// to S and S has no other predecessor.
func mergeBlocks(f *ir.Func) bool {
	changed := false
	for {
		merged := false
		for _, b := range f.Blocks {
			t := b.Terminator()
			if t == nil || t.Kind != ir.OpBr {
				continue
			}
			s := b.Succs[0]
			if s == b || len(s.Preds) != 1 {
				continue
			}
			// Merge: drop the branch, absorb S. A single-pred block
			// executes exactly as often as its predecessor, so the
			// merged block keeps B's loop depth (absorbing a loop
			// guard into straight-line code must not inflate the
			// edge-weight heuristic).
			b.Ops = append(b.Ops[:len(b.Ops)-1], s.Ops...)
			b.Succs = s.Succs
			for _, ss := range s.Succs {
				for i, p := range ss.Preds {
					if p == s {
						ss.Preds[i] = b
					}
				}
			}
			// Remove S from the block list.
			for i, blk := range f.Blocks {
				if blk == s {
					f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
					break
				}
			}
			merged = true
			changed = true
			break
		}
		if !merged {
			renumber(f)
			return changed
		}
	}
}

// regUsePositions returns, for every register, whether it is used in
// any block other than `home`.
func usedOutside(f *ir.Func, home *ir.Block) map[ir.Reg]bool {
	out := make(map[ir.Reg]bool)
	var buf []ir.Reg
	for _, b := range f.Blocks {
		if b == home {
			continue
		}
		for _, op := range b.Ops {
			buf = op.Uses(buf[:0])
			for _, u := range buf {
				out[u] = true
			}
		}
	}
	return out
}

// rotateLoops converts while-shaped loops to do-while shape. A header
// H whose operations are all pure register computations ending in a
// conditional branch is copied into every backedge block, which then
// branches directly to the body or the exit. H keeps its original code
// and becomes the entry guard, executed once.
func rotateLoops(f *ir.Func) bool {
	changed := false
	for _, h := range f.Blocks {
		t := h.Terminator()
		if t == nil || t.Kind != ir.OpCondBr || len(h.Ops) > 8 {
			continue
		}
		// Split predecessors into entries (earlier blocks) and
		// backedges (later blocks ending in an unconditional branch).
		// The front-end lowers loops with the preheader created before
		// the header, so block order distinguishes the two.
		var entries, backs []*ir.Block
		ok := true
		for _, p := range h.Preds {
			if p.ID < h.ID {
				entries = append(entries, p)
				continue
			}
			bt := p.Terminator()
			if bt == nil || bt.Kind != ir.OpBr || p == h {
				ok = false
				break
			}
			backs = append(backs, p)
		}
		if !ok || len(entries) != 1 || len(backs) == 0 {
			continue
		}
		// All header ops must be pure register computations, and the
		// registers they define must not be consumed outside H.
		pure := true
		for _, op := range h.Ops[:len(h.Ops)-1] {
			cls := op.Kind.Class()
			if cls != machine.ClassInteger && cls != machine.ClassFloat {
				pure = false
				break
			}
		}
		if !pure {
			continue
		}
		outside := usedOutside(f, h)
		defsOK := true
		for _, op := range h.Ops {
			if op.Dst != ir.NoReg && outside[op.Dst] {
				defsOK = false
				break
			}
		}
		if !defsOK {
			continue
		}
		body, exit := h.Succs[0], h.Succs[1]
		if body == h || exit == h {
			continue
		}
		for _, l := range backs {
			// Replace L's branch with a copy of H's computation and
			// conditional branch.
			l.Ops = l.Ops[:len(l.Ops)-1]
			for _, op := range h.Ops {
				cp := *op
				l.Ops = append(l.Ops, &cp)
			}
			l.Succs = []*ir.Block{body, exit}
			removePred(h, l)
			body.Preds = append(body.Preds, l)
			exit.Preds = append(exit.Preds, l)
		}
		changed = true
	}
	return changed
}

func removePred(b, p *ir.Block) {
	for i, x := range b.Preds {
		if x == p {
			b.Preds = append(b.Preds[:i], b.Preds[i+1:]...)
			return
		}
	}
}

// constOneRegs returns the registers whose single definition in the
// function is an integer constant, mapped to the constant value.
func constRegs(f *ir.Func) map[ir.Reg]int64 {
	defs := make(map[ir.Reg]int)
	val := make(map[ir.Reg]int64)
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			if op.Dst == ir.NoReg {
				continue
			}
			defs[op.Dst]++
			if op.Kind == ir.OpConst {
				val[op.Dst] = op.Imm
			} else {
				delete(val, op.Dst)
			}
		}
	}
	for r := range val {
		if defs[r] != 1 {
			delete(val, r)
		}
	}
	return val
}

// hardwareLoops rewrites counted loops to the DO/ENDDO hardware. See
// the file comment; the recognized shape, produced by mergeBlocks and
// rotateLoops, is a natural loop whose single exit is a backedge block
// ending in
//
//	i = i ± 1; t = i <cmp> n; condbr t (head, exit)
//
// with i updated exactly once per iteration, n loop-invariant, and t
// consumed only by the branch. The trip count (guaranteed positive by
// the rotation guard) is materialized in a new preheader that ends in
// OpDo; the compare and branch are deleted and the backedge block ends
// in OpEndDo, which the loop hardware evaluates for free.
func hardwareLoops(f *ir.Func) bool {
	consts := constRegs(f)
	for _, l := range f.Blocks {
		t := l.Terminator()
		if t == nil || t.Kind != ir.OpCondBr {
			continue
		}
		head, exit := l.Succs[0], l.Succs[1]
		loop, ok := naturalLoop(head, l)
		if !ok || loop[exit] {
			continue
		}
		// Single exit: only L leaves the loop, via its condbr.
		ok = true
		for b := range loop {
			for _, s := range b.Succs {
				if !loop[s] && !(b == l && s == exit) {
					ok = false
				}
			}
		}
		if !ok {
			continue
		}
		// Find the compare defining the branch condition, in L, with
		// the condition register used only by the branch.
		cmpIdx := -1
		for i := len(l.Ops) - 2; i >= 0; i-- {
			if l.Ops[i].Dst == t.Args[0] {
				cmpIdx = i
				break
			}
		}
		if cmpIdx < 0 {
			continue
		}
		cmp := l.Ops[cmpIdx]
		// Deleting the compare must not orphan any other use of the
		// condition register. After rotation the entry guard holds its
		// own copy of the compare, so the register appears in several
		// blocks; it is safe as long as every use is preceded by a
		// definition in its own block.
		if !selfContainedUses(f, t.Args[0], l, cmpIdx) {
			continue
		}
		var down bool
		switch cmp.Kind {
		case ir.OpSetLT, ir.OpSetLE:
			down = false
		case ir.OpSetGT, ir.OpSetGE:
			down = true
		default:
			continue
		}
		iReg, nReg := cmp.Args[0], cmp.Args[1]
		if iReg == nReg {
			continue
		}
		// n must be loop-invariant.
		if definedIn(loop, nReg) {
			continue
		}
		// i must be updated exactly once in the loop, in L before the
		// compare, by adding or subtracting a constant 1.
		updIdx := -1
		count := 0
		for b := range loop {
			for i, op := range b.Ops {
				if op.Dst == iReg {
					count++
					if b == l && i < cmpIdx {
						updIdx = i
					}
				}
			}
		}
		if count != 1 || updIdx < 0 {
			continue
		}
		upd := l.Ops[updIdx]
		step, isConstOne := consts[upd.Args[1]]
		if !isConstOne || step != 1 || upd.Args[0] != iReg {
			continue
		}
		switch {
		case upd.Kind == ir.OpAdd && !down:
		case upd.Kind == ir.OpSub && down:
		default:
			continue
		}
		// The loop must be entered through exactly one outside edge.
		var entry *ir.Block
		ok = true
		for _, p := range head.Preds {
			if loop[p] {
				continue
			}
			if entry != nil {
				ok = false
			}
			entry = p
		}
		if !ok || entry == nil {
			continue
		}

		// Build the preheader computing the trip count:
		//   up,   i<n: n-i      i<=n: n-i+1
		//   down, i>n: i-n      i>=n: i-n+1
		ph := f.NewBlock()
		ph.LoopDepth = head.LoopDepth - 1
		if ph.LoopDepth < 0 {
			ph.LoopDepth = 0
		}
		cnt := f.NewReg(ir.TInt)
		a, b := nReg, iReg
		if down {
			a, b = iReg, nReg
		}
		ph.Ops = append(ph.Ops, &ir.Op{Kind: ir.OpSub, Type: ir.TInt, Dst: cnt, Args: [2]ir.Reg{a, b}})
		if cmp.Kind == ir.OpSetLE || cmp.Kind == ir.OpSetGE {
			one := f.NewReg(ir.TInt)
			cnt2 := f.NewReg(ir.TInt)
			ph.Ops = append(ph.Ops,
				&ir.Op{Kind: ir.OpConst, Type: ir.TInt, Dst: one, Imm: 1},
				&ir.Op{Kind: ir.OpAdd, Type: ir.TInt, Dst: cnt2, Args: [2]ir.Reg{cnt, one}})
			cnt = cnt2
		}
		ph.Ops = append(ph.Ops, &ir.Op{Kind: ir.OpDo, Args: [2]ir.Reg{cnt}})
		ph.Succs = []*ir.Block{head}

		// Rewire entry -> ph -> head.
		for i, s := range entry.Succs {
			if s == head {
				entry.Succs[i] = ph
			}
		}
		ph.Preds = []*ir.Block{entry}
		for i, p := range head.Preds {
			if p == entry {
				head.Preds[i] = ph
			}
		}

		// Delete the compare; turn the branch into ENDDO.
		l.Ops = append(l.Ops[:cmpIdx], l.Ops[cmpIdx+1:]...)
		t.Kind = ir.OpEndDo
		t.Args[0] = ir.NoReg

		renumber(f)
		return true // structure changed; caller re-runs
	}
	return false
}

// naturalLoop returns the blocks of the natural loop with header head
// and backedge block tail (tail -> head).
func naturalLoop(head, tail *ir.Block) (map[*ir.Block]bool, bool) {
	loop := map[*ir.Block]bool{head: true, tail: true}
	stack := []*ir.Block{tail}
	steps := 0
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == head {
			continue
		}
		for _, p := range b.Preds {
			if !loop[p] {
				loop[p] = true
				stack = append(stack, p)
			}
		}
		if steps++; steps > 10000 {
			return nil, false
		}
	}
	// Header must not be the function entry (needs an outside pred).
	return loop, true
}

func definedIn(loop map[*ir.Block]bool, r ir.Reg) bool {
	for b := range loop {
		for _, op := range b.Ops {
			if op.Dst == r {
				return true
			}
		}
	}
	return false
}

// selfContainedUses reports whether every use of r is preceded by a
// definition of r earlier in the same block, and that within block
// `home` the only use after position defIdx is the terminator. This
// makes deleting home's definition at defIdx safe.
func selfContainedUses(f *ir.Func, r ir.Reg, home *ir.Block, defIdx int) bool {
	var buf []ir.Reg
	for _, b := range f.Blocks {
		defined := false
		for i, op := range b.Ops {
			buf = op.Uses(buf[:0])
			for _, u := range buf {
				if u != r {
					continue
				}
				if !defined {
					return false
				}
				if b == home && !op.Kind.IsTerminator() {
					return false
				}
			}
			if op.Dst == r {
				if b == home && i != defIdx {
					return false
				}
				defined = true
			}
		}
	}
	return true
}
