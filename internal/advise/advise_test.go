package advise_test

import (
	"strings"
	"testing"

	"dualbank/internal/advise"
	"dualbank/internal/alloc"
	"dualbank/internal/bench"
	"dualbank/internal/pipeline"
)

func report(t *testing.T, name string, mode alloc.Mode) string {
	t.Helper()
	p, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("no benchmark %q", name)
	}
	c, err := pipeline.Compile(p.Source, name, pipeline.Options{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return advise.Report(c)
}

func TestReportLpcNamesDuplicationCandidate(t *testing.T) {
	out := report(t, "lpc", alloc.CB)
	for _, want := range []string{
		"Data-allocation report for lpc",
		"Bank X:", "Bank Y:",
		"Same-array parallel accesses",
		"s ", // the frame buffer
		"coherence store per write",
		"hint: compile with partial duplication",
		"Static schedule utilization",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReportDupModeShowsStatus(t *testing.T) {
	out := report(t, "lpc", alloc.CBDup)
	if !strings.Contains(out, "(duplicated)") {
		t.Errorf("report does not show duplicated status:\n%s", out)
	}
	if strings.Contains(out, "hint: compile with partial duplication") {
		t.Errorf("hint shown although duplication is already on:\n%s", out)
	}
}

func TestReportReadOnlyNote(t *testing.T) {
	// A read-only array with same-array parallel reads: duplication is
	// free of coherence stores, and the report should say so.
	src := `
float tbl[32] = {1.0, 2.0, 3.0};
float r;
void main() {
	int i;
	float acc = 0.0;
	for (i = 0; i < 16; i++) {
		acc += tbl[i] * tbl[i + 16];
	}
	r = acc;
}
`
	c, err := pipeline.Compile(src, "rotab", pipeline.Options{Mode: alloc.CB})
	if err != nil {
		t.Fatal(err)
	}
	out := advise.Report(c)
	if !strings.Contains(out, "READ-ONLY") {
		t.Errorf("report misses the read-only observation:\n%s", out)
	}
}

func TestReportNoAnalysisModes(t *testing.T) {
	out := report(t, "histogram", alloc.SingleBank)
	if !strings.Contains(out, "performs no partitioning analysis") {
		t.Errorf("single-bank report should say no analysis ran:\n%s", out)
	}
}

func TestReportResidualEdges(t *testing.T) {
	// Three arrays pairwise co-accessed: any bipartition leaves one
	// pair co-resident, which the report must surface.
	src := `
float a[8] = {1.0};
float b[8] = {2.0};
float c[8] = {3.0};
float r;
void main() {
	int i;
	float acc = 0.0;
	for (i = 0; i < 8; i++) {
		acc += a[i] * b[i] + c[i];
	}
	r = acc;
}
`
	comp, err := pipeline.Compile(src, "tri", pipeline.Options{Mode: alloc.CB})
	if err != nil {
		t.Fatal(err)
	}
	out := advise.Report(comp)
	if !strings.Contains(out, "consider restructuring") {
		t.Errorf("triangle graph should leave a residual edge:\n%s", out)
	}
}
