package dualbank_test

// Runnable godoc examples for the public API.

import (
	"fmt"
	"log"

	"dualbank"
)

// ExampleCompile compiles the paper's Figure 1 FIR filter with
// compaction-based partitioning and reports where the two arrays
// landed.
func ExampleCompile() {
	src := `
float A[8] = {1.0, 2.0, 3.0};
float B[8] = {0.5};
float sum;
void main() {
	int i;
	float s = 0.0;
	for (i = 0; i < 8; i++) {
		s += A[i] * B[i];
	}
	sum = s;
}
`
	c, err := dualbank.Compile(src, "fir", dualbank.Options{Mode: dualbank.CB})
	if err != nil {
		log.Fatal(err)
	}
	a, b := c.Global("A"), c.Global("B")
	fmt.Printf("A in bank %s, B in bank %s\n", a.Bank, b.Bank)
	fmt.Println("separated:", a.Bank != b.Bank)
	// The greedy walk migrates the first-referenced symbol of a tied
	// pair, so A leads the move to bank Y; what matters is that the
	// two arrays end up separated.
	// Output:
	// A in bank Y, B in bank X
	// separated: true
}

// ExampleCompiled_Run simulates a compiled program and reads its
// result back from data memory.
func ExampleCompiled_Run() {
	src := `
int r;
void main() {
	int i;
	int s = 0;
	for (i = 1; i <= 10; i++) {
		s += i;
	}
	r = s;
}
`
	c, err := dualbank.Compile(src, "sum", dualbank.Options{Mode: dualbank.CB})
	if err != nil {
		log.Fatal(err)
	}
	m, err := c.Run()
	if err != nil {
		log.Fatal(err)
	}
	v, err := m.Int32(c.Global("r"), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("r =", v)
	// Output:
	// r = 55
}

// ExampleOptions_modes compares the unoptimized single-bank layout
// against CB partitioning on the same program.
func ExampleOptions_modes() {
	src := `
float a[32] = {1.0};
float b[32] = {2.0};
float y[32];
void main() {
	int i;
	for (i = 0; i < 32; i++) {
		y[i] = a[i] * b[i];
	}
}
`
	var base, cb int64
	for _, mode := range []dualbank.Mode{dualbank.SingleBank, dualbank.CB} {
		c, err := dualbank.Compile(src, "vecmul", dualbank.Options{Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		m, err := c.Run()
		if err != nil {
			log.Fatal(err)
		}
		if mode == dualbank.SingleBank {
			base = m.Cycles
		} else {
			cb = m.Cycles
		}
	}
	fmt.Println("partitioning is faster:", cb < base)
	// Output:
	// partitioning is faster: true
}
