package opt

import "dualbank/internal/ir"

// strengthReduce rewrites derived induction variables in single-block
// loops. An address computation like `a = n + k` (or `a = i*cols`)
// inside a loop over k keeps every dependent memory access one cycle
// behind its address arithmetic; rewriting it to an initial value in
// the preheader plus a step update at the bottom of the loop body
// turns the dependence into an anti-dependence, which costs nothing on
// a VLIW (the update shares the access's instruction). This is the
// compiler analogue of the post-increment address registers that DSPs
// like the DSP56001 use (Figure 1's `X:(R0)+,X0`), executed here by
// the AU units, and it is what lets two array accesses become
// simultaneously data-ready — the precondition for both interference
// edges and duplication marks.
func strengthReduce(f *ir.Func) bool {
	changed := false
	for _, l := range f.Blocks {
		t := l.Terminator()
		if t == nil {
			continue
		}
		selfLoop := false
		switch t.Kind {
		case ir.OpEndDo, ir.OpCondBr:
			selfLoop = len(l.Succs) == 2 && l.Succs[0] == l
		}
		if !selfLoop {
			continue
		}
		// Single outside predecessor = the preheader.
		var pre *ir.Block
		ok := true
		for _, p := range l.Preds {
			if p == l {
				continue
			}
			if pre != nil {
				ok = false
			}
			pre = p
		}
		if !ok || pre == nil || len(pre.Ops) == 0 {
			continue
		}
		if reduceLoop(f, pre, l) {
			changed = true
		}
	}
	return changed
}

// reduceLoop performs derived-induction rewriting for one self-loop
// block with its preheader.
func reduceLoop(f *ir.Func, pre, l *ir.Block) bool {
	// Global def/use census to establish invariance and locality.
	defsIn := make(map[ir.Reg]int)  // defs inside l
	defsOut := make(map[ir.Reg]int) // defs outside l
	usesOut := make(map[ir.Reg]int) // uses outside l
	var buf []ir.Reg
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			if op.Dst != ir.NoReg {
				if b == l {
					defsIn[op.Dst]++
				} else {
					defsOut[op.Dst]++
				}
			}
			if b != l {
				buf = op.Uses(buf[:0])
				for _, u := range buf {
					usesOut[u]++
				}
			}
		}
	}
	invariant := func(r ir.Reg) bool { return defsIn[r] == 0 }

	// Loop-invariant code motion: hoist pure scalar operations whose
	// operands are all invariant (the rotation guard guarantees at
	// least one execution, so the hoisted op would have run anyway).
	// This exposes computations like i*n to the derivation below.
	usedBeforeDef := func(v ir.Reg, defIdx int) bool {
		for i := 0; i < defIdx; i++ {
			buf = l.Ops[i].Uses(buf[:0])
			for _, u := range buf {
				if u == v {
					return true
				}
			}
		}
		return false
	}
	changedLICM := true
	for changedLICM {
		changedLICM = false
		for oi, op := range l.Ops {
			if op.Dst == ir.NoReg || defsIn[op.Dst] != 1 || op.IsMem() ||
				op.Kind.IsTerminator() || op.Kind == ir.OpCall ||
				op.Kind == ir.OpDiv || op.Kind == ir.OpRem {
				continue
			}
			allInv := true
			buf = op.Uses(buf[:0])
			for _, u := range buf {
				if !invariant(u) {
					allInv = false
					break
				}
			}
			// A multiply-accumulate reads its own destination.
			if op.Kind == ir.OpMac || op.Kind == ir.OpFMac {
				allInv = false
			}
			if !allInv || usedBeforeDef(op.Dst, oi) {
				continue
			}
			l.Ops = append(l.Ops[:oi], l.Ops[oi+1:]...)
			insertBeforeTerm(pre, op)
			defsIn[op.Dst] = 0
			defsOut[op.Dst]++
			changedLICM = true
			break
		}
	}

	// Base induction variables: r = add r, s with s invariant, single
	// in-loop def.
	type induction struct {
		step ir.Reg // per-iteration step (an invariant register)
		mul  ir.Reg // optional invariant factor: effective step = step*mul
	}
	ind := make(map[ir.Reg]induction)
	for _, op := range l.Ops {
		if op.Kind == ir.OpAdd && op.Dst == op.Args[0] && defsIn[op.Dst] == 1 && invariant(op.Args[1]) {
			ind[op.Dst] = induction{step: op.Args[1]}
		}
	}
	if len(ind) == 0 {
		return false
	}

	changed := false
	// One rewrite per round, rescanning after each; the bound covers
	// bodies with many derived addresses (e.g. several d[2s], d[2s+1]
	// computations per iteration).
	for round := 0; round < 24; round++ {
		progressed := false
		for oi, op := range l.Ops {
			if op.Dst == ir.NoReg || defsIn[op.Dst] != 1 || usesOut[op.Dst] != 0 {
				continue
			}
			if op.Kind != ir.OpAdd && op.Kind != ir.OpMul {
				continue
			}
			v := op.Dst
			if _, isInd := ind[v]; isInd {
				continue
			}
			var base ir.Reg
			var other ir.Reg
			if bi, ok := ind[op.Args[0]]; ok && invariant(op.Args[1]) {
				base, other = op.Args[0], op.Args[1]
				_ = bi
			} else if _, ok := ind[op.Args[1]]; ok && invariant(op.Args[0]) {
				base, other = op.Args[1], op.Args[0]
			} else {
				continue
			}
			bind := ind[base]
			// The base induction's update must come after this op (the
			// op must read the pre-increment value) and every use of v
			// must be inside the loop after this def.
			updIdx, defIdx := -1, oi
			for i, o := range l.Ops {
				if o.Dst == base && o.Kind == ir.OpAdd && o.Args[0] == base {
					updIdx = i
				}
			}
			if updIdx < defIdx {
				continue
			}
			usedBefore := false
			for i := 0; i < defIdx; i++ {
				buf = l.Ops[i].Uses(buf[:0])
				for _, u := range buf {
					if u == v {
						usedBefore = true
					}
				}
			}
			if usedBefore {
				continue
			}
			// A mul-derived induction needs a step multiplied by the
			// invariant factor; chain factors if the base already has
			// one.
			step := bind.step
			mulBy := bind.mul
			if op.Kind == ir.OpMul {
				if mulBy != ir.NoReg {
					// Fold the two factors in the preheader.
					m := f.NewReg(ir.TInt)
					insertBeforeTerm(pre, &ir.Op{Kind: ir.OpMul, Type: ir.TInt, Dst: m,
						Args: [2]ir.Reg{mulBy, other}})
					mulBy = m
				} else {
					mulBy = other
				}
			}
			// Effective step register, computed in the preheader.
			effStep := step
			if mulBy != ir.NoReg {
				es := f.NewReg(ir.TInt)
				insertBeforeTerm(pre, &ir.Op{Kind: ir.OpMul, Type: ir.TInt, Dst: es,
					Args: [2]ir.Reg{step, mulBy}})
				effStep = es
			}
			// Initial value in the preheader: same computation on the
			// entry values.
			init := *op
			insertBeforeTerm(pre, &init)
			// Replace the in-loop def with a step update at the bottom
			// of the body (before the terminator), so every use this
			// iteration sees the pre-step value.
			l.Ops = append(l.Ops[:oi], l.Ops[oi+1:]...)
			insertBeforeTerm(l, &ir.Op{Kind: ir.OpAdd, Type: ir.TInt, Dst: v,
				Args: [2]ir.Reg{v, effStep}})
			ind[v] = induction{step: effStep}
			defsIn[v] = 1
			progressed = true
			changed = true
			break // op indices shifted; rescan
		}
		if !progressed {
			break
		}
	}
	return changed
}

func insertBeforeTerm(b *ir.Block, op *ir.Op) {
	n := len(b.Ops)
	b.Ops = append(b.Ops, nil)
	copy(b.Ops[n:], b.Ops[n-1:n])
	b.Ops[n-1] = op
}
