package bench

import (
	"fmt"
	"math"
	"strings"
)

// prng is a small deterministic generator (xorshift32) used to build
// benchmark input data. It is self-contained so the data embedded in
// the MiniC sources is stable across Go releases.
type prng struct{ s uint32 }

func newPRNG(seed uint32) *prng {
	if seed == 0 {
		seed = 0x9e3779b9
	}
	return &prng{s: seed}
}

func (p *prng) next() uint32 {
	p.s ^= p.s << 13
	p.s ^= p.s >> 17
	p.s ^= p.s << 5
	return p.s
}

// f32 returns a float in [-1, 1).
func (p *prng) f32() float32 {
	return float32(int32(p.next())) / float32(math.MaxInt32)
}

// i32n returns an integer in [0, n).
func (p *prng) i32n(n int32) int32 {
	return int32(p.next() % uint32(n))
}

// fmtF renders a float32 as a MiniC literal that round-trips exactly.
func fmtF(v float32) string {
	s := fmt.Sprintf("%g", v)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// floatsDecl renders `float name[n] = {...};`.
func floatsDecl(name string, vals []float32) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "float %s[%d] = {", name, len(vals))
	for i, v := range vals {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(fmtF(v))
	}
	sb.WriteString("};\n")
	return sb.String()
}

// floats2Decl renders `float name[r][c] = {...};` from row-major data.
func floats2Decl(name string, vals []float32, rows, cols int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "float %s[%d][%d] = {", name, rows, cols)
	for i, v := range vals {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(fmtF(v))
	}
	sb.WriteString("};\n")
	return sb.String()
}

// intsDecl renders `int name[n] = {...};`.
func intsDecl(name string, vals []int32) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "int %s[%d] = {", name, len(vals))
	for i, v := range vals {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%d", v)
	}
	sb.WriteString("};\n")
	return sb.String()
}

// ints2Decl renders `int name[r][c] = {...};` from row-major data.
func ints2Decl(name string, vals []int32, rows, cols int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "int %s[%d][%d] = {", name, rows, cols)
	for i, v := range vals {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%d", v)
	}
	sb.WriteString("};\n")
	return sb.String()
}

// randFloats returns n floats in [-1, 1).
func randFloats(p *prng, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = p.f32()
	}
	return out
}

// randInts returns n integers in [0, max).
func randInts(p *prng, n int, max int32) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = p.i32n(max)
	}
	return out
}

// checkF32s compares a float output array against expected values with
// a mixed absolute/relative tolerance.
func checkF32s(r Reader, name string, want []float32, tol float64) error {
	for i, w := range want {
		got, err := F32(r, name, i)
		if err != nil {
			return err
		}
		diff := math.Abs(float64(got - w))
		scale := math.Max(1, math.Abs(float64(w)))
		if diff > tol*scale {
			return fmt.Errorf("%s[%d] = %g, want %g (diff %g)", name, i, got, w, diff)
		}
	}
	return nil
}

// checkI32s compares an integer output array exactly.
func checkI32s(r Reader, name string, want []int32) error {
	return checkI32sTol(r, name, want, 0)
}

// checkI32sTol compares an integer output array within an absolute
// tolerance (for values derived from float computations, where the
// final truncation may straddle an integer boundary).
func checkI32sTol(r Reader, name string, want []int32, tol int32) error {
	for i, w := range want {
		got, err := I32(r, name, i)
		if err != nil {
			return err
		}
		d := got - w
		if d < 0 {
			d = -d
		}
		if d > tol {
			return fmt.Errorf("%s[%d] = %d, want %d", name, i, got, w)
		}
	}
	return nil
}
