package exact_test

import (
	"math/rand"
	"testing"

	"dualbank/internal/alloc"
	"dualbank/internal/bench"
	"dualbank/internal/core"
	"dualbank/internal/exact"
	"dualbank/internal/ir"
	"dualbank/internal/pipeline"
)

// randomGraph builds a random weighted interference graph (mirrors the
// helper the core package tests use).
func randomGraph(rng *rand.Rand, n, edges int) *core.Graph {
	syms := make([]*ir.Symbol, n)
	for i := range syms {
		syms[i] = &ir.Symbol{Name: string(rune('a'+i%26)) + string(rune('0'+i/26)), Size: 1}
	}
	g := core.NewGraph(syms)
	for e := 0; e < edges; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		if g.Weight(syms[i], syms[j]) == 0 {
			g.SetWeight(syms[i], syms[j], int64(rng.Intn(5)+1))
		}
	}
	return g
}

// cutCost evaluates the residual cost of a side assignment on g.
func cutCost(g *core.Graph, inY []bool) int64 {
	c := g.CSR()
	var cost int64
	for a := 0; a < len(g.Nodes); a++ {
		for h := c.Start[a]; h < c.Start[a+1]; h++ {
			if b := int(c.Adj[h]); b > a && inY[b] == inY[a] {
				cost += c.W[h]
			}
		}
	}
	return cost
}

// activeNodes returns the indices of nodes with at least one edge.
func activeNodes(g *core.Graph) []int {
	c := g.CSR()
	var act []int
	for i := range g.Nodes {
		if c.Degree(i) > 0 {
			act = append(act, i)
		}
	}
	return act
}

// bruteForce enumerates every bipartition over the active nodes
// (isolated nodes cannot contribute cost; the first active node is
// pinned by symmetry) and returns the minimum residual cost. Callers
// must keep the active count at or below 16.
func bruteForce(t *testing.T, g *core.Graph) int64 {
	t.Helper()
	act := activeNodes(g)
	if len(act) == 0 {
		return 0
	}
	if len(act) > 16 {
		t.Fatalf("bruteForce on %d active nodes", len(act))
	}
	inY := make([]bool, len(g.Nodes))
	best := int64(1) << 62
	for mask := 0; mask < 1<<(len(act)-1); mask++ {
		for bi, node := range act[1:] {
			inY[node] = mask&(1<<bi) != 0
		}
		if cost := cutCost(g, inY); cost < best {
			best = cost
		}
	}
	return best
}

// checkInvariants asserts the properties every Solve result must have:
// the partition realises Upper, Lower never exceeds Upper, the exact
// arm is never costlier than any heuristic, and every heuristic sits
// inside the reported bound.
func checkInvariants(t *testing.T, g *core.Graph, r *exact.Result) {
	t.Helper()
	if r.Part.Cost != r.Cert.Upper {
		t.Fatalf("partition cost %d != certificate upper %d", r.Part.Cost, r.Cert.Upper)
	}
	if r.Cert.Lower > r.Cert.Upper {
		t.Fatalf("lower %d > upper %d", r.Cert.Lower, r.Cert.Upper)
	}
	if r.Cert.Verdict == exact.Optimal && r.Cert.Lower != r.Cert.Upper {
		t.Fatalf("verdict optimal with open interval [%d, %d]", r.Cert.Lower, r.Cert.Upper)
	}
	heuristics := map[string]int64{
		"greedy": g.Partition().Cost,
		"fm":     g.PartitionFM().Cost,
		"kl":     g.PartitionKL().Cost,
		"anneal": g.PartitionAnneal(1).Cost,
	}
	for name, cost := range heuristics {
		if r.Cert.Upper > cost {
			t.Fatalf("exact cost %d worse than %s %d", r.Cert.Upper, name, cost)
		}
		if cost < r.Cert.Lower {
			t.Fatalf("%s cost %d below proven lower bound %d", name, cost, r.Cert.Lower)
		}
	}
}

// TestExactMatchesBruteForceBenchmarks pins the branch-and-bound
// against exhaustive enumeration on every benchmark whose interference
// graph has at most 16 active arrays — all twelve kernels and most
// applications qualify.
func TestExactMatchesBruteForceBenchmarks(t *testing.T) {
	progs := append(bench.Kernels(), bench.Applications()...)
	checked := 0
	for _, p := range progs {
		c, err := pipeline.Compile(p.Source, p.Name, pipeline.Options{Mode: alloc.CB})
		if err != nil {
			t.Fatalf("%s: compile: %v", p.Name, err)
		}
		g := c.Alloc.Graph
		if len(activeNodes(g)) > 16 {
			continue
		}
		checked++
		want := bruteForce(t, g)
		r := exact.Solve(g, exact.Options{})
		checkInvariants(t, g, r)
		if r.Cert.Verdict != exact.Optimal {
			t.Errorf("%s: verdict %v, want optimal", p.Name, r.Cert.Verdict)
		}
		if r.Cert.Upper != want {
			t.Errorf("%s: exact cost %d, brute force %d", p.Name, r.Cert.Upper, want)
		}
	}
	if checked < 12 {
		t.Fatalf("only %d benchmarks qualified for brute force, want >= 12 (all kernels)", checked)
	}
}

// TestExactMatchesBruteForceRandom pins the solver against brute force
// on 200 seeded random graphs, both through the default ordering and
// with the spectral seed+ordering forced on (SpectralMin 2), so the
// float path is exercised on graphs small enough to verify exhaustively.
func TestExactMatchesBruteForceRandom(t *testing.T) {
	for _, opt := range []exact.Options{{}, {SpectralMin: 2}} {
		rng := rand.New(rand.NewSource(41))
		for trial := 0; trial < 200; trial++ {
			n := 2 + rng.Intn(13)
			g := randomGraph(rng, n, rng.Intn(4*n))
			want := bruteForce(t, g)
			r := exact.Solve(g, opt)
			checkInvariants(t, g, r)
			if r.Cert.Verdict != exact.Optimal {
				t.Fatalf("trial %d (spectralMin=%d): verdict %v, want optimal",
					trial, opt.SpectralMin, r.Cert.Verdict)
			}
			if r.Cert.Upper != want {
				t.Fatalf("trial %d (spectralMin=%d): exact cost %d, brute force %d",
					trial, opt.SpectralMin, r.Cert.Upper, want)
			}
		}
	}
}

// TestExactBudgetExhaustion: even with the budget strangled to a single
// node the result must stay a valid bound around the true optimum, and
// the incumbent (seeded from the heuristics) must never regress.
func TestExactBudgetExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(10)
		g := randomGraph(rng, n, n+rng.Intn(3*n))
		want := bruteForce(t, g)
		for _, budget := range []int64{1, 5, 50} {
			r := exact.Solve(g, exact.Options{NodeBudget: budget})
			checkInvariants(t, g, r)
			if r.Cert.Lower > want || want > r.Cert.Upper {
				t.Fatalf("trial %d budget %d: optimum %d outside [%d, %d]",
					trial, budget, want, r.Cert.Lower, r.Cert.Upper)
			}
			if r.Cert.BBNodes > budget {
				t.Fatalf("trial %d: expanded %d nodes over budget %d", trial, r.Cert.BBNodes, budget)
			}
		}
	}
}

// TestExactComponentsAdd: disjoint components solve independently and
// their optima (and certificate counts) add.
func TestExactComponentsAdd(t *testing.T) {
	syms := make([]*ir.Symbol, 7)
	for i := range syms {
		syms[i] = &ir.Symbol{Name: string(rune('a' + i)), Size: 1}
	}
	g := core.NewGraph(syms)
	// Two triangles (any bipartition strands one edge: min edge 1 and 2
	// respectively) plus one isolated node.
	g.SetWeight(syms[0], syms[1], 1)
	g.SetWeight(syms[1], syms[2], 4)
	g.SetWeight(syms[0], syms[2], 5)
	g.SetWeight(syms[3], syms[4], 2)
	g.SetWeight(syms[4], syms[5], 3)
	g.SetWeight(syms[3], syms[5], 6)
	r := exact.Solve(g, exact.Options{})
	if r.Cert.Verdict != exact.Optimal || r.Cert.Upper != 3 {
		t.Fatalf("two triangles: verdict %v cost %d, want optimal 3", r.Cert.Verdict, r.Cert.Upper)
	}
	if r.Cert.Components != 2 || r.Cert.Closed != 2 {
		t.Fatalf("components %d closed %d, want 2 and 2", r.Cert.Components, r.Cert.Closed)
	}
	if len(r.Part.SetX)+len(r.Part.SetY) != 7 {
		t.Fatalf("partition dropped nodes: |X|+|Y| = %d", len(r.Part.SetX)+len(r.Part.SetY))
	}
}

// TestExactDeterministic: equal graphs and options give bit-identical
// certificates and partitions, run-to-run.
func TestExactDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 30, 120)
	a := exact.Solve(g, exact.Options{NodeBudget: 10_000})
	b := exact.Solve(g, exact.Options{NodeBudget: 10_000})
	if a.Cert != b.Cert {
		t.Fatalf("certificates differ: %+v vs %+v", a.Cert, b.Cert)
	}
	if a.Part.String() != b.Part.String() {
		t.Fatalf("partitions differ:\n%s\nvs\n%s", a.Part, b.Part)
	}
	if !a.Cert.Spectral {
		t.Fatalf("30-node connected component should engage the spectral ordering")
	}
}

// TestExactMethodDispatch: the "exact" arm is reachable through the
// core Method surface the pipeline and CLIs use.
func TestExactMethodDispatch(t *testing.T) {
	m, err := core.ParseMethod("exact")
	if err != nil || m != core.MethodExact {
		t.Fatalf("ParseMethod(exact) = %v, %v", m, err)
	}
	if m.String() != "exact" {
		t.Fatalf("MethodExact.String() = %q", m.String())
	}
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 10, 25)
	got := g.PartitionWith(core.MethodExact)
	want := exact.Solve(g, exact.Options{})
	if got.Cost != want.Cert.Upper {
		t.Fatalf("PartitionWith(exact) cost %d, Solve %d", got.Cost, want.Cert.Upper)
	}
}

// TestVerdictText: the verdict names round-trip through the text
// marshalling BENCH_gaps.json uses.
func TestVerdictText(t *testing.T) {
	for _, v := range []exact.Verdict{exact.Optimal, exact.Bounded, exact.Budget} {
		b, err := v.MarshalText()
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back exact.Verdict
		if err := back.UnmarshalText(b); err != nil || back != v {
			t.Fatalf("round-trip %v: got %v, %v", v, back, err)
		}
	}
	var v exact.Verdict
	if err := v.UnmarshalText([]byte("nonsense")); err == nil {
		t.Fatal("UnmarshalText accepted nonsense")
	}
}

// graphFromBytes derives a small deterministic graph from fuzz input.
func graphFromBytes(data []byte) *core.Graph {
	if len(data) < 4 {
		return nil
	}
	n := 2 + int(data[0]%11)
	syms := make([]*ir.Symbol, n)
	for i := range syms {
		syms[i] = &ir.Symbol{Name: string(rune('a' + i)), Size: 1}
	}
	g := core.NewGraph(syms)
	for i := 1; i+2 < len(data); i += 3 {
		a, b := int(data[i])%n, int(data[i+1])%n
		if a == b {
			continue
		}
		g.SetWeight(syms[a], syms[b], int64(data[i+2]%9)+1)
	}
	return g
}

// FuzzExactNeverWorse: on arbitrary small graphs the exact arm is never
// costlier than any heuristic, every heuristic lies inside the reported
// bound, and (the graphs being small enough to enumerate) a closed
// search really did find the optimum.
func FuzzExactNeverWorse(f *testing.F) {
	f.Add([]byte{4, 0, 1, 3, 1, 2, 5, 0, 2, 2})
	f.Add([]byte{9, 0, 1, 1, 1, 2, 1, 2, 3, 1, 3, 4, 1, 4, 0, 1})
	f.Add([]byte{12, 5, 9, 7, 2, 8, 1, 0, 11, 3, 4, 6, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := graphFromBytes(data)
		if g == nil {
			return
		}
		r := exact.Solve(g, exact.Options{})
		checkInvariants(t, g, r)
		want := bruteForce(t, g)
		if r.Cert.Lower > want || want > r.Cert.Upper {
			t.Fatalf("optimum %d outside certified [%d, %d]", want, r.Cert.Lower, r.Cert.Upper)
		}
		if r.Cert.Verdict == exact.Optimal && r.Cert.Upper != want {
			t.Fatalf("claimed optimal %d, brute force %d", r.Cert.Upper, want)
		}
	})
}
