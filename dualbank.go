// Package dualbank is a reproduction of "Exploiting Dual Data-Memory
// Banks in Digital Signal Processors" (Saghir, Chow & Lee, ASPLOS-VII,
// 1996): an optimizing compiler for a C subset (MiniC) targeting a
// nine-unit VLIW model DSP with two single-ported, high-order
// interleaved data-memory banks, together with an instruction-set
// simulator and the paper's benchmark suite.
//
// The package is a thin facade over the implementation packages:
//
//   - internal/core — the paper's contribution: compaction-based (CB)
//     data partitioning and partial-data-duplication analysis.
//   - internal/minic, internal/lower, internal/opt,
//     internal/regalloc, internal/alloc, internal/compact — the
//     compiler pipeline.
//   - internal/sim — the IR interpreter and the VLIW machine simulator.
//   - internal/bench — the Table 1/2 benchmark suites and the
//     harnesses regenerating Figure 7, Figure 8 and Table 3.
//
// Quick start:
//
//	c, err := dualbank.Compile(src, "fir", dualbank.Options{Mode: dualbank.CB})
//	m, err := c.Run()
//	fmt.Println(m.Cycles)
package dualbank

import (
	"dualbank/internal/alloc"
	"dualbank/internal/asm"
	"dualbank/internal/opt"
	"dualbank/internal/pipeline"
	"dualbank/internal/sim"
)

// Mode selects the data-allocation strategy — the experiment arms of
// the paper's evaluation.
type Mode = alloc.Mode

// The available allocation modes.
const (
	// SingleBank places all data in bank X (the unoptimized baseline).
	SingleBank = alloc.SingleBank
	// CB is compaction-based partitioning with static loop-depth
	// weights (§3.1).
	CB = alloc.CB
	// Profiled is CB with profile-driven edge weights (Pr in Figure 8).
	Profiled = alloc.CBProfiled
	// Duplication is CB plus partial data duplication (§3.2).
	Duplication = alloc.CBDup
	// FullDuplication replicates every variable in both banks.
	FullDuplication = alloc.FullDup
	// Ideal models dual-ported memory cells, the paper's upper bound.
	Ideal = alloc.Ideal
	// LowOrder models a low-order-interleaved memory with run-time
	// conflict stalls — the organisation the paper argues against.
	LowOrder = alloc.LowOrder
)

// Options configures compilation.
type Options struct {
	// Mode is the data-allocation strategy (default SingleBank).
	Mode Mode
	// InterruptSafe makes duplicated-store pairs commit atomically in
	// one instruction (the store-lock/store-unlock discipline of §3.2).
	InterruptSafe bool
	// DisableMACFusion, DisableLoopShaping and DisableStrengthReduce
	// turn off individual optimizer features, for ablation studies.
	DisableMACFusion      bool
	DisableLoopShaping    bool
	DisableStrengthReduce bool
}

// Compiled is a compiled program; see pipeline.Compiled.
type Compiled = pipeline.Compiled

// Machine is the VLIW simulator state after a run; see sim.Machine.
type Machine = sim.Machine

// Compile builds MiniC source into scheduled VLIW code.
func Compile(source, name string, o Options) (*Compiled, error) {
	return pipeline.Compile(source, name, pipeline.Options{
		Mode:          o.Mode,
		InterruptSafe: o.InterruptSafe,
		Opt: opt.Options{
			NoMACFusion:      o.DisableMACFusion,
			NoLoopShaping:    o.DisableLoopShaping,
			NoStrengthReduce: o.DisableStrengthReduce,
		},
	})
}

// Assembly renders a compiled program as VLIW assembly text.
func Assembly(c *Compiled) string { return asm.Print(c.Sched) }
