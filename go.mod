module dualbank

go 1.22
