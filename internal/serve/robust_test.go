package serve_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dualbank/internal/faultinject"
	"dualbank/internal/serve"
)

// TestAdmitTimeoutSheds saturates a 1-worker, 0-queue server and
// checks bounded admission: the second request is shed with 429 and a
// Retry-After header instead of waiting out its whole deadline.
func TestAdmitTimeoutSheds(t *testing.T) {
	s := serve.New(serve.Config{
		Workers: 1, QueueDepth: -1, // -1: no queue at all (0 means default)
		AdmitTimeout: 20 * time.Millisecond,
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Pin the only worker with a long-running source job.
	blocker := make(chan struct{})
	go func() {
		defer close(blocker)
		body := fmt.Sprintf(`{"source":%q,"timeout_ms":10000}`, slowSource)
		postRunStatus(t, ts, body)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Pool().Active() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the blocking job")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json",
		strings.NewReader(`{"bench":"fir_32_1"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carried no Retry-After header")
	}
	if shed := s.Metrics().Snapshot().Shed["queue"]; shed != 1 {
		t.Errorf("shed counter %d, want 1", shed)
	}

	s.Close() // cancels the blocker's measurement
	<-blocker
}

// TestRateLimitPerClient: with a one-token bucket and a negligible
// refill rate, the same client's second request is rejected 429 while
// the first succeeds.
func TestRateLimitPerClient(t *testing.T) {
	s := serve.New(serve.Config{
		Workers: 1, RatePerSec: 0.0001, RateBurst: 1,
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, data := postRun(t, ts.Client(), ts.URL, `{"bench":"fir_32_1"}`); code != http.StatusOK {
		t.Fatalf("first request: %d %s", code, data)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json",
		strings.NewReader(`{"bench":"fir_32_1"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("rate-limited 429 carried no Retry-After header")
	}
	if shed := s.Metrics().Snapshot().Shed["rate"]; shed != 1 {
		t.Errorf("rate-shed counter %d, want 1", shed)
	}
}

// TestReadyzDrain: /readyz flips 200→503 at BeginDrain while /healthz
// stays 200 — the process is healthy, just leaving the pool.
func TestReadyzDrain(t *testing.T) {
	s := serve.New(serve.Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("pre-drain /readyz: %d %q", code, body)
	}
	if s.Draining() {
		t.Fatal("server reports draining before BeginDrain")
	}
	s.BeginDrain()
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("post-drain /readyz: %d %q", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("post-drain /healthz: %d, want 200", code)
	}
	// A draining server still serves work that reaches it.
	if code, data := postRun(t, ts.Client(), ts.URL, `{"bench":"fir_32_1"}`); code != http.StatusOK {
		t.Fatalf("post-drain run: %d %s", code, data)
	}
}

// TestInjectedFaultIs500: a transient injected compute error surfaces
// as 500 and never enters the memo cache, so the retry succeeds.
func TestInjectedFaultIs500(t *testing.T) {
	inj := faultinject.New(faultinject.Profile{ComputeError: 1})
	s := serve.New(serve.Config{Workers: 1, Fault: inj})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, data := postRun(t, ts.Client(), ts.URL, `{"bench":"fir_32_1"}`); code != http.StatusInternalServerError {
		t.Fatalf("faulted request: %d %s, want 500", code, data)
	}
	if st := s.CacheStats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("faulted request touched the cache: %+v", st)
	}
}

// postRunStatus is postRun without failing the test on transport
// errors — used for requests whose server may shut down under them.
func postRunStatus(t *testing.T, ts *httptest.Server, body string) int {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		return 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}
