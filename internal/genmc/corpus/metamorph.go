// Package corpus runs corpus-scale differential and metamorphic
// verification over generated MiniC programs, and aggregates the
// paper's CB-vs-duplication comparison into per-archetype statistics.
//
// It is the library behind cmd/dspcorpus and the corpus test gates:
// every program is compiled under the unoptimized baseline, CB
// partitioning, and partial duplication; each compilation runs on all
// three simulation engines (reference machine, predecoded fast path,
// compiled threaded code), which must agree on every counter and every
// memory word; the final image must equal the generator's own
// evaluator's expectation; and three semantics-preserving transforms
// (identifier renaming, declaration permutation, bank swapping) must
// leave every cycle count invariant.
package corpus

import (
	"fmt"
	"strconv"
	"strings"

	"dualbank/internal/minic"
)

// The transform helpers below are library versions of the metamorphic
// suite's source rewrites: they operate on the token stream, so they
// apply to any valid MiniC translation unit — hand-written benchmark
// or generated program — and return errors instead of failing a test.

// spellToken renders one token back to compilable source. Identifier
// spellings run through rename when non-nil ("main" is pinned — the
// entry point is looked up by name). Literals are re-spelled from
// their parsed values, which round-trip exactly.
func spellToken(tok minic.Token, rename map[string]string) (string, error) {
	switch tok.Kind {
	case minic.IDENT:
		if rename == nil || tok.Text == "main" {
			return tok.Text, nil
		}
		r, ok := rename[tok.Text]
		if !ok {
			r = fmt.Sprintf("mm%d_%s", len(rename), strings.Repeat("q", 1+len(rename)%3))
			rename[tok.Text] = r
		}
		return r, nil
	case minic.INTLIT:
		if tok.Int < 0 {
			// Only hex literals can parse negative; spelling one as "-N"
			// would need expression context.
			return "", fmt.Errorf("negative integer literal %d cannot be re-spelled", tok.Int)
		}
		return strconv.FormatInt(tok.Int, 10), nil
	case minic.FLOATLIT:
		s := strconv.FormatFloat(tok.Flt, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0" // keep it a FLOATLIT on re-lex
		}
		return s, nil
	default:
		return tok.Kind.String(), nil
	}
}

// emitTokens joins re-spelled tokens into source the front end accepts.
func emitTokens(toks []minic.Token, rename map[string]string) (string, error) {
	var b strings.Builder
	for i, tok := range toks {
		if tok.Kind == minic.EOF {
			break
		}
		if i > 0 {
			if i%32 == 0 {
				b.WriteByte('\n')
			} else {
				b.WriteByte(' ')
			}
		}
		s, err := spellToken(tok, rename)
		if err != nil {
			return "", err
		}
		b.WriteString(s)
	}
	b.WriteByte('\n')
	return b.String(), nil
}

// RenameIdents rewrites source with every identifier (except main)
// replaced by a fresh machine-generated name, in first-occurrence
// order. A compiler keying any decision on spelling diverges on the
// result.
func RenameIdents(source string) (string, error) {
	toks, err := minic.LexAll(source)
	if err != nil {
		return "", err
	}
	return emitTokens(toks, map[string]string{})
}

// topLevelChunks splits the token stream into top-level declarations.
// A chunk ends at a depth-0 semicolon (global declarations, including
// brace-enclosed array initializers) or at a depth-0 closing brace
// followed by a type keyword or EOF (function bodies).
func topLevelChunks(toks []minic.Token) ([][]minic.Token, error) {
	var chunks [][]minic.Token
	var cur []minic.Token
	depth := 0
	for i, tok := range toks {
		if tok.Kind == minic.EOF {
			break
		}
		cur = append(cur, tok)
		switch tok.Kind {
		case minic.LBrace, minic.LParen, minic.LBrack:
			depth++
		case minic.RBrace, minic.RParen, minic.RBrack:
			depth--
		}
		if depth != 0 {
			continue
		}
		end := tok.Kind == minic.Semi
		if tok.Kind == minic.RBrace {
			switch toks[i+1].Kind {
			case minic.KwInt, minic.KwFloat, minic.KwVoid, minic.EOF:
				end = true
			}
		}
		if end {
			chunks = append(chunks, cur)
			cur = nil
		}
	}
	if len(cur) != 0 {
		return nil, fmt.Errorf("trailing tokens after the last top-level declaration")
	}
	return chunks, nil
}

// PermuteDecls rewrites source with its top-level declarations in
// reverse order — the full mirror permutation, which displaces every
// declaration and still compiles because MiniC resolves globals and
// functions in a separate pass before checking bodies. A compiler
// whose layout or partitioning depends on declaration order diverges
// on the result.
func PermuteDecls(source string) (string, error) {
	toks, err := minic.LexAll(source)
	if err != nil {
		return "", err
	}
	chunks, err := topLevelChunks(toks)
	if err != nil {
		return "", err
	}
	if len(chunks) < 2 {
		return "", fmt.Errorf("only %d top-level declarations; nothing to permute", len(chunks))
	}
	var out []minic.Token
	for i := len(chunks) - 1; i >= 0; i-- {
		out = append(out, chunks[i]...)
	}
	out = append(out, minic.Token{Kind: minic.EOF})
	return emitTokens(out, nil)
}
