package bench

import (
	"testing"

	"dualbank/internal/alloc"
	"dualbank/internal/compact"
	"dualbank/internal/pipeline"
	"dualbank/internal/sim"
)

// TestInterruptSafeOverhead measures the store-lock/store-unlock
// discipline §3.2 sketches for interrupt-driven systems: both halves
// of a duplicated-store pair must commit in one instruction so an
// interrupt can never observe (or update) half-written duplicated
// data. The test checks the discipline is functionally transparent and
// quantifies its cycle overhead on the applications that duplicate
// data.
func TestInterruptSafeOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("study in short mode")
	}
	for _, name := range []string{"lpc", "spectral", "V32encode", "trellis"} {
		p, _ := ByName(name)
		var cycles [2]int64
		for i, safe := range []bool{false, true} {
			c, err := pipeline.Compile(p.Source, name, pipeline.Options{
				Mode: alloc.CBDup, InterruptSafe: safe,
			})
			if err != nil {
				t.Fatalf("%s safe=%v: %v", name, safe, err)
			}
			if err := compact.Validate(c.Sched); err != nil {
				t.Fatalf("%s safe=%v: %v", name, safe, err)
			}
			m, err := c.Run()
			if err != nil {
				t.Fatalf("%s safe=%v: %v", name, safe, err)
			}
			read := func(gn string, idx int) (uint32, error) {
				return m.Word(c.Global(gn), idx)
			}
			if err := p.Check(read); err != nil {
				t.Fatalf("%s safe=%v: wrong output: %v", name, safe, err)
			}
			cycles[i] = m.Cycles
		}
		overhead := float64(cycles[1])/float64(cycles[0]) - 1
		// Atomic pairing can only delay stores, never reorder results.
		if cycles[1] < cycles[0] {
			t.Errorf("%s: interrupt-safe run faster (%d < %d)?", name, cycles[1], cycles[0])
		}
		// The discipline should be cheap: both halves usually land in
		// one instruction anyway because they use opposite banks.
		if overhead > 0.10 {
			t.Errorf("%s: interrupt-safe overhead %.1f%% — expected under 10%%", name, overhead*100)
		}
		t.Logf("%-12s unsafe=%-8d safe=%-8d overhead=%.2f%%", name, cycles[0], cycles[1], overhead*100)
	}
}

// TestInterruptHazardObservable demonstrates the §3.2 hazard
// concretely: a program is crafted so that port pressure makes the
// scheduler split a duplicated-store pair across two instructions.
// Probing every instruction boundary (where an interrupt could fire)
// then observes moments where the two copies of the duplicated array
// disagree — unless InterruptSafe forces the halves into one
// instruction, in which case no boundary is ever incoherent.
func TestInterruptHazardObservable(t *testing.T) {
	// d is duplicated (same-array parallel reads in the second loop);
	// the first loop stores to d while two other arrays keep both
	// memory ports busy, inviting the scheduler to split the pair.
	src := `
int a[32] = {1, 2, 3, 4};
int b[32] = {5, 6, 7, 8};
int d[32] = {9, 9};
int r;
void main() {
	int i;
	int s = 0;
	for (i = 0; i < 32; i++) {
		d[i] = s;
		s += a[i] + b[i];
	}
	int acc = 0;
	for (i = 0; i < 16; i++) {
		acc += d[i] * d[i + 16];
	}
	r = acc + s;
}
`
	probe := func(safe bool) (incoherent int64) {
		c, err := pipeline.Compile(src, "hazard", pipeline.Options{
			Mode: alloc.CBDup, InterruptSafe: safe,
		})
		if err != nil {
			t.Fatal(err)
		}
		d := c.Global("d")
		if d == nil || !d.Duplicated {
			t.Fatalf("d not duplicated (safe=%v)", safe)
		}
		m := sim.NewMachine(c.Sched)
		m.AfterInstr = func(m *sim.Machine) error {
			for i := 0; i < d.Size; i++ {
				if m.X[d.Addr+i] != m.Y[d.Addr+i] {
					incoherent++
					return nil
				}
			}
			return nil
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return incoherent
	}

	unsafe := probe(false)
	safe := probe(true)
	if safe != 0 {
		t.Errorf("interrupt-safe run still shows %d incoherent boundaries", safe)
	}
	if unsafe == 0 {
		t.Skip("scheduler paired every duplicated store even without the discipline; hazard not triggered by this program")
	}
	t.Logf("incoherent interrupt windows: unsafe=%d, safe=%d", unsafe, safe)
}
