package cluster_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dualbank/internal/cluster"
	"dualbank/internal/faultinject"
	"dualbank/internal/serve"
)

// quickSource is a terminating MiniC program for source-job arms.
const quickSource = `
int sink[1];
void main() {
	int i;
	int acc = 0;
	for (i = 0; i < 100; i++) {
		acc = acc + i;
	}
	sink[0] = acc;
}
`

// postJSON posts body to url and returns status plus response bytes.
func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// getJSON fetches url into out.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("GET %s: %v in %s", url, err, data)
		}
	}
	return resp.StatusCode
}

// jobFor decodes a request body into a serve.Job for key computation.
func jobFor(t *testing.T, body string) serve.Job {
	t.Helper()
	j, err := serve.DecodeRequest([]byte(body), 1<<20)
	if err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	return j
}

// nodeIndexByAddr maps a ring address back to its fixture index.
func nodeIndexByAddr(t *testing.T, lc *cluster.LocalCluster, addr string) int {
	t.Helper()
	for i := 0; i < lc.N(); i++ {
		if lc.Addr(i) == addr {
			return i
		}
	}
	t.Fatalf("address %s not in fixture %v", addr, lc.Addrs())
	return -1
}

// metricValue extracts one (possibly labeled) sample from Prometheus
// text exposition.
func metricValue(t *testing.T, text, name string) int64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s absent:\n%s", name, text)
	}
	v, _ := strconv.ParseInt(m[1], 10, 64)
	return v
}

// TestClusterCrossNodeSingleFlight sprays one cold key concurrently
// across every node of a 3-node fleet and proves exactly one compute
// happened fleet-wide: every response is 200 with identical cycles,
// and the fleet's miss counters — read from /metrics, the same surface
// operators see — sum to one.
func TestClusterCrossNodeSingleFlight(t *testing.T) {
	lc, err := cluster.StartLocal(cluster.LocalOptions{
		N: 3, Replication: 2,
		// Hotness off: hot-key replication deliberately buys extra
		// copies, and this test pins down the cold-key guarantee.
		HotThreshold: 1 << 30,
		Serve:        serve.Config{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	const body = `{"bench":"fir_32_1","mode":"Dup","partitioner":"fm"}`
	const requests = 30
	var wg sync.WaitGroup
	cycles := make([]int64, requests)
	codes := make([]int, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, data := postJSON(t, lc.URL(i%lc.N())+"/v1/run", body)
			codes[i] = code
			var resp serve.Response
			if json.Unmarshal(data, &resp) == nil {
				cycles[i] = resp.Cycles
			}
		}(i)
	}
	wg.Wait()
	for i := range codes {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if cycles[i] != cycles[0] {
			t.Fatalf("request %d measured %d cycles, request 0 measured %d", i, cycles[i], cycles[0])
		}
	}

	var misses int64
	for i := 0; i < lc.N(); i++ {
		resp, err := http.Get(lc.URL(i) + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		text := string(data)
		misses += metricValue(t, text, "dspservd_cache_misses_total")
		if !strings.Contains(text, "dspcluster_members 3") {
			t.Errorf("node %d metrics lack dspcluster_members 3", i)
		}
	}
	if misses != 1 {
		t.Errorf("fleet computed the key %d times, want exactly 1", misses)
	}
}

// TestClusterHotKeyReplication drives one key past the hot threshold
// through a replica and checks the replica starts absorbing it locally
// — via the shared L2, never by recomputing: the fleet-wide compute
// count stays 1.
func TestClusterHotKeyReplication(t *testing.T) {
	lc, err := cluster.StartLocal(cluster.LocalOptions{
		N: 3, Replication: 2,
		StoreDir:     t.TempDir(),
		HotK:         4,
		HotThreshold: 2,
		HotWindow:    time.Hour,
		Serve:        serve.Config{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	const body = `{"bench":"iir_4_64","mode":"CB"}`
	key := lc.Node(0).RunKey(jobFor(t, body))
	reps := lc.Node(0).ReplicaSet(key)
	if len(reps) != 2 {
		t.Fatalf("replica set %v, want 2 members", reps)
	}
	owner := nodeIndexByAddr(t, lc, reps[0])
	replica := nodeIndexByAddr(t, lc, reps[1])

	// Warm the key through its owner: one compute, published to the L2.
	if code, data := postJSON(t, lc.URL(owner)+"/v1/run", body); code != http.StatusOK {
		t.Fatalf("owner warm-up: status %d: %s", code, data)
	}
	// Hammer the replica. The first requests forward (cold, not yet
	// hot); once its counter clears the threshold it serves locally from
	// the shared store.
	for i := 0; i < 10; i++ {
		if code, data := postJSON(t, lc.URL(replica)+"/v1/run", body); code != http.StatusOK {
			t.Fatalf("replica request %d: status %d: %s", i, code, data)
		}
	}

	rs := lc.Node(replica).Server().CacheStats()
	if rs.Misses != 0 {
		t.Errorf("replica computed %d times; replication must serve without recomputing", rs.Misses)
	}
	if rs.L2Hits < 1 {
		t.Errorf("replica L2 hits %d, want at least 1 (the hot promotion)", rs.L2Hits)
	}
	if hot := lc.Node(replica).Metrics().Snapshot().Local["hot"]; hot < 1 {
		t.Errorf("replica served %d requests as hot, want at least 1", hot)
	}
	if os := lc.Node(owner).Server().CacheStats(); os.Misses != 1 {
		t.Errorf("owner computed %d times, want exactly 1", os.Misses)
	}
	if total := lc.Node(replica).Server().CacheStats().Misses +
		lc.Node(owner).Server().CacheStats().Misses +
		lc.Node(3-owner-replica).Server().CacheStats().Misses; total != 1 {
		t.Errorf("fleet computed %d times, want 1", total)
	}
}

// TestClusterDrainAnnounce is the regression test for the graceful
// drain ordering: BeginDrain must flip /readyz AND announce departure
// to every peer before any in-flight work is cancelled. A request in
// flight on the draining node (held open by an injected 300ms delay)
// must complete 200 even though readiness flipped and the peers
// deregistered the node while it ran.
func TestClusterDrainAnnounce(t *testing.T) {
	inj := faultinject.New(faultinject.Profile{
		Seed:    1,
		Latency: 1.0, LatencyDur: 300 * time.Millisecond,
	})
	lc, err := cluster.StartLocal(cluster.LocalOptions{
		N: 3, Replication: 2,
		Serve: serve.Config{Workers: 2},
		Configure: func(i int, cfg *cluster.Config) {
			if i == 0 {
				cfg.Serve.Fault = inj
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	// A source job always executes on the node it lands on.
	body := fmt.Sprintf(`{"source":%q,"timeout_ms":10000}`, quickSource)
	type result struct {
		code int
		data []byte
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post(lc.URL(0)+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			inflight <- result{code: -1, data: []byte(err.Error())}
			return
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		inflight <- result{code: resp.StatusCode, data: data}
	}()
	// Let the request reach the pool (it then sits in the injected
	// delay for 300ms).
	time.Sleep(100 * time.Millisecond)

	lc.Node(0).BeginDrain()

	// Readiness flipped...
	resp, err := http.Get(lc.URL(0) + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz on draining node: status %d, want 503", resp.StatusCode)
	}
	// ...and the peers already deregistered the node, while the request
	// is still in flight.
	for i := 1; i < lc.N(); i++ {
		var ring struct {
			Members []string `json:"members"`
		}
		getJSON(t, lc.URL(i)+"/v1/cluster/ring", &ring)
		for _, m := range ring.Members {
			if m == lc.Addr(0) {
				t.Errorf("peer %d still lists the draining node %s: %v", i, lc.Addr(0), ring.Members)
			}
		}
	}

	select {
	case r := <-inflight:
		if r.code != http.StatusOK {
			t.Errorf("in-flight request during drain: status %d: %s", r.code, r.data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
}

// TestClusterMembership exercises the join/leave endpoints and the
// self-protection rule: a node never deregisters itself on a peer's
// say-so.
func TestClusterMembership(t *testing.T) {
	lc, err := cluster.StartLocal(cluster.LocalOptions{
		N: 2, Replication: 2,
		Serve: serve.Config{Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	var ring struct {
		Members     []string `json:"members"`
		Replication int      `json:"replication"`
	}
	if code := getJSON(t, lc.URL(0)+"/v1/cluster/ring", &ring); code != http.StatusOK {
		t.Fatalf("ring: status %d", code)
	}
	if len(ring.Members) != 2 || ring.Replication != 2 {
		t.Fatalf("ring %+v, want 2 members replication 2", ring)
	}

	code, data := postJSON(t, lc.URL(0)+"/v1/cluster/join", `{"addr":"127.0.0.1:1"}`)
	if code != http.StatusOK {
		t.Fatalf("join: status %d: %s", code, data)
	}
	getJSON(t, lc.URL(0)+"/v1/cluster/ring", &ring)
	if len(ring.Members) != 3 {
		t.Fatalf("after join: %v, want 3 members", ring.Members)
	}

	postJSON(t, lc.URL(0)+"/v1/cluster/leave", `{"addr":"127.0.0.1:1"}`)
	getJSON(t, lc.URL(0)+"/v1/cluster/ring", &ring)
	if len(ring.Members) != 2 {
		t.Fatalf("after leave: %v, want 2 members", ring.Members)
	}

	// A leave naming the node itself is ignored.
	postJSON(t, lc.URL(0)+"/v1/cluster/leave", fmt.Sprintf(`{"addr":%q}`, lc.Addr(0)))
	getJSON(t, lc.URL(0)+"/v1/cluster/ring", &ring)
	found := false
	for _, m := range ring.Members {
		found = found || m == lc.Addr(0)
	}
	if !found {
		t.Error("node deregistered itself on a leave request")
	}

	if code, _ := postJSON(t, lc.URL(0)+"/v1/cluster/join", `{"nope":1}`); code != http.StatusBadRequest {
		t.Errorf("malformed join: status %d, want 400", code)
	}
}
