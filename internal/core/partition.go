package core

import (
	"fmt"
	"strings"

	"dualbank/internal/ir"
)

// Partition is the result of bipartitioning the interference graph:
// SetX holds the symbols assigned to bank X, SetY those assigned to
// bank Y. Cost is the residual cost — the summed weight of edges whose
// endpoints ended up in the same set, i.e. the parallel-access
// opportunities the partition could not satisfy.
type Partition struct {
	SetX, SetY []*ir.Symbol
	Cost       int64
	// Trace records the cost after each greedy move, starting with the
	// initial all-in-one-set cost; exposed so tests can check the
	// Figure 5 walk (7 -> 3 -> 2).
	Trace []int64
}

// Partition bipartitions the graph's nodes with the paper's greedy
// algorithm (Figure 5):
//
//	Start with every node in set 1 and set 2 empty; the cost is the
//	total weight of edges inside set 1. Repeatedly move the node whose
//	transfer to set 2 yields the greatest net decrease in cost — the
//	weight of its edges into set 1 minus the weight of its edges into
//	set 2 — stopping as soon as no move decreases the cost.
//
// Ties are broken in favour of the preferred node. Hand-assembled
// graphs use the node-index rule ("later node wins"), which reproduces
// the published walk on the Figure 5 example. Graphs built by the
// program scanner carry the canonical first-reference ranking
// (Graph.tiePref) instead, which keeps the walk independent of
// declaration order and naming: ties go to the earliest-referenced
// symbol, except on a total tie — every eligible move equally good,
// the cost model blind — where the walk prefers the candidate
// referenced farthest (in first-use order) from the symbols already
// migrated, because operands of a single expression are natural
// pairing partners and migrating them all together would forfeit
// exactly the parallelism the partition exists to expose. The greedy
// method is O(v²) and, as the paper reports, achieves near-ideal
// partitions in practice; PartitionFM reaches the same local optimum
// with gain buckets in near-linear time.
func (g *Graph) Partition() *Partition {
	n := len(g.Nodes)
	c := g.CSR()
	inY := make([]bool, n)

	pref := func(i int) int32 {
		if g.tiePref != nil {
			return g.tiePref[i]
		}
		return int32(i)
	}
	// dist[i] is the first-use distance from node i to the nearest node
	// already moved to set 2; "infinite" while set 2 is empty. Only
	// meaningful on scanner-built graphs (tiePref ranks are first-use
	// positions); hand-assembled graphs skip the diversity criterion.
	const farAway = int32(1) << 30
	var dist []int32
	if g.tiePref != nil {
		dist = make([]int32, n)
		for i := range dist {
			dist[i] = farAway
		}
	}
	deltas := make([]int64, n)
	cost := c.Total
	trace := []int64{cost}
	for {
		// Pass 1: compute every node's net decrease — edges into set 1
		// minus edges into set 2 — and whether the cost model offers any
		// signal (some eligible move strictly better than another).
		bestDelta, signal := int64(0), false
		for i := 0; i < n; i++ {
			deltas[i] = 0
			if inY[i] {
				continue
			}
			var delta int64
			for h := c.Start[i]; h < c.Start[i+1]; h++ {
				if inY[c.Adj[h]] {
					delta -= c.W[h]
				} else {
					delta += c.W[h]
				}
			}
			if delta <= 0 {
				continue
			}
			deltas[i] = delta
			if bestDelta != 0 && delta != bestDelta {
				signal = true
			}
			if delta > bestDelta {
				bestDelta = delta
			}
		}
		if bestDelta == 0 {
			break
		}
		// Pass 2: pick among the best moves. The diversity criterion
		// applies only on a total tie — every eligible move equally
		// good — where the model is blind and clustering is the risk.
		best := -1
		for i := 0; i < n; i++ {
			if deltas[i] != bestDelta {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			if dist != nil && !signal && dist[i] != dist[best] {
				if dist[i] > dist[best] {
					best = i
				}
			} else if pref(i) > pref(best) {
				best = i
			}
		}
		inY[best] = true
		cost -= bestDelta
		trace = append(trace, cost)
		if dist != nil {
			for i := 0; i < n; i++ {
				if d := g.tiePref[i] - g.tiePref[best]; d < 0 && -d < dist[i] {
					dist[i] = -d
				} else if d >= 0 && d < dist[i] {
					dist[i] = d
				}
			}
		}
	}

	part := g.partitionFrom(inY)
	part.Trace = trace
	return part
}

// PartitionFromSides materialises a Partition from an explicit side
// assignment (inY[i] true puts node i in bank Y), computing the
// residual cost from the CSR view. External partitioner backends — the
// certified exact solver in internal/exact — and tests use it to turn
// a solved assignment into the structure the allocation pass consumes.
func (g *Graph) PartitionFromSides(inY []bool) *Partition {
	return g.partitionFrom(inY)
}

// partitionFrom materialises a Partition from a side assignment,
// computing the residual cost from the CSR view.
func (g *Graph) partitionFrom(inY []bool) *Partition {
	p := &Partition{Cost: g.CSR().cutCost(inY)}
	for i, s := range g.Nodes {
		if inY[i] {
			p.SetY = append(p.SetY, s)
		} else {
			p.SetX = append(p.SetX, s)
		}
	}
	return p
}

// String renders the partition for diagnostics.
func (p *Partition) String() string {
	names := func(ss []*ir.Symbol) string {
		var ns []string
		for _, s := range ss {
			ns = append(ns, s.Name)
		}
		return strings.Join(ns, ", ")
	}
	return fmt.Sprintf("X: {%s}\nY: {%s}\ncost: %d", names(p.SetX), names(p.SetY), p.Cost)
}
