// Command dspservd serves the dual-bank compile-and-simulate pipeline
// over HTTP/JSON: POST a benchmark name or MiniC source plus an
// allocation mode, get back the cycle count, memory footprint, and
// duplication stats of one measurement. Requests run on a bounded
// worker pool with per-request deadlines honored down to the
// simulator's basic-block boundaries; named-benchmark results are
// memoized behind a single-flight cache.
//
// Endpoints:
//
//	POST /v1/run                   {"bench":"fir_256_64","mode":"CB","timeout_ms":5000}
//	POST /v1/explore               {"benchmarks":["fft_256"],"budget":200} → async job
//	GET  /v1/explore/{id}          exploration job status
//	GET  /v1/explore/{id}/frontier completed exploration's Pareto report
//	GET  /v1/benchmarks            benchmark, mode, and partitioner inventory
//	GET  /healthz                  liveness
//	GET  /readyz                   readiness (503 once draining)
//	GET  /metrics                  Prometheus text exposition
//	     /debug/pprof/             the standard profiling endpoints
//
// With -explore-store, exploration evaluations are checkpointed to the
// given directory as they complete; a job interrupted by shutdown
// resumes from those checkpoints when resubmitted.
//
// Overload protection: -admit-timeout bounds how long a request waits
// for a worker slot before being shed with 429 + Retry-After (0 keeps
// unbounded waiting, limited only by the request deadline), and -rate
// / -rate-burst token-bucket individual clients. On SIGINT/SIGTERM the
// server flips /readyz to 503 first, then drains.
//
// -fault-profile injects deterministic faults (I/O errors, latency
// spikes, compute errors, starvation bursts) for chaos testing. It is
// refused unless DSP_FAULT_ENABLE=1 is set in the environment, so a
// production unit file cannot enable it by accident.
//
// Usage:
//
//	dspservd [-addr :8357] [-workers N] [-queue N]
//	         [-timeout 10s] [-max-timeout 60s] [-max-source 1048576]
//	         [-admit-timeout 0] [-rate 0] [-rate-burst 0]
//	         [-explore-store dir] [-fault-profile spec]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dualbank/internal/bench"
	"dualbank/internal/explore/store"
	"dualbank/internal/faultinject"
	"dualbank/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and exit code, so smoke tests
// can drive the full server lifecycle in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dspservd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8357", "listen address")
	workers := fs.Int("workers", 0, "worker pool width (default GOMAXPROCS)")
	queue := fs.Int("queue", 0, "accepted-but-unstarted job bound (default 2x workers)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request deadline when the request sets none")
	maxTimeout := fs.Duration("max-timeout", 60*time.Second, "upper clamp on requested deadlines")
	maxSource := fs.Int("max-source", 1<<20, "source size cap in bytes")
	drain := fs.Duration("drain", 15*time.Second, "graceful-shutdown drain budget")
	admitTimeout := fs.Duration("admit-timeout", 0, "shed requests (429) that wait longer than this for a worker slot (0 = wait out the deadline)")
	rate := fs.Float64("rate", 0, "per-client request rate limit in requests/sec (0 = off)")
	rateBurst := fs.Int("rate-burst", 0, "per-client burst allowance (default ceil(rate))")
	engineName := fs.String("engine", "compiled", "simulation engine: compiled, fast, or machine")
	exploreStore := fs.String("explore-store", "", "checkpoint /v1/explore evaluations to this directory")
	faultProfile := fs.String("fault-profile", "", "inject faults per this profile (requires DSP_FAULT_ENABLE=1; e.g. seed=1,ioerr=0.05,latency=0.02)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	engine, err := bench.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(stderr, "dspservd:", err)
		return 2
	}

	inj, err := faultinject.FromFlag(*faultProfile)
	if err != nil {
		fmt.Fprintln(stderr, "dspservd:", err)
		return 2
	}
	if inj != nil {
		fmt.Fprintf(stderr, "dspservd: FAULT INJECTION ACTIVE (%s)\n", *faultProfile)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var st *store.Store
	if *exploreStore != "" {
		var err error
		if inj != nil {
			// Under a fault profile the checkpoint store rides the
			// injected filesystem too.
			st, err = store.OpenFS(*exploreStore, faultinject.NewFaultFS(faultinject.OSFS{}, inj))
		} else {
			st, err = store.Open(*exploreStore)
		}
		if err != nil {
			fmt.Fprintln(stderr, "dspservd:", err)
			return 1
		}
	}
	s := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxSourceBytes: *maxSource,
		Engine:         engine,
		ExploreStore:   st,
		AdmitTimeout:   *admitTimeout,
		RatePerSec:     *rate,
		RateBurst:      *rateBurst,
		Fault:          inj,
	})
	defer s.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "dspservd:", err)
		return 1
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(stdout, "dspservd: listening on %s (workers=%d)\n", ln.Addr(), s.Pool().Workers())

	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "dspservd:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown: flip /readyz unready so load balancers stop
	// routing here, stop accepting, drain in-flight handlers within the
	// budget, then cancel whatever is still running by closing the pool
	// (the deferred Close).
	s.BeginDrain()
	fmt.Fprintln(stdout, "dspservd: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(stderr, "dspservd:", err)
		return 1
	}
	return 0
}
