package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTotalFormula(t *testing.T) {
	// Cost = X + Y + 2S + I (the paper's first-order model).
	m := Memory{XData: 100, YData: 80, Stack: 16, Instr: 50}
	if got := m.Total(); got != 100+80+2*16+50 {
		t.Fatalf("Total = %d", got)
	}
}

func TestCompareMetrics(t *testing.T) {
	base := Memory{XData: 100, YData: 0, Stack: 10, Instr: 80}
	opt := Memory{XData: 60, YData: 40, Stack: 10, Instr: 70}
	m := Compare(1000, 800, base, opt)
	if math.Abs(m.PG-1.25) > 1e-9 {
		t.Errorf("PG = %v, want 1.25", m.PG)
	}
	wantCI := float64(opt.Total()) / float64(base.Total())
	if math.Abs(m.CI-wantCI) > 1e-9 {
		t.Errorf("CI = %v, want %v", m.CI, wantCI)
	}
	if math.Abs(m.PCR-m.PG/m.CI) > 1e-9 {
		t.Errorf("PCR = %v, want PG/CI = %v", m.PCR, m.PG/m.CI)
	}
}

// TestCompareProperties: PG/CI/PCR relationships hold for arbitrary
// positive inputs.
func TestCompareProperties(t *testing.T) {
	f := func(baseCycles, cycles uint16, bx, by, bs, bi, ox, oy, os, oi uint8) bool {
		bc := int64(baseCycles) + 1
		cc := int64(cycles) + 1
		base := Memory{XData: int(bx) + 1, YData: int(by), Stack: int(bs), Instr: int(bi) + 1}
		opt := Memory{XData: int(ox) + 1, YData: int(oy), Stack: int(os), Instr: int(oi) + 1}
		m := Compare(bc, cc, base, opt)
		if m.PG <= 0 || m.CI <= 0 {
			return false
		}
		// A faster program has PG > 1; equal cycle counts give PG = 1.
		if cc == bc && math.Abs(m.PG-1) > 1e-12 {
			return false
		}
		return math.Abs(m.PCR*m.CI-m.PG) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
