package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"dualbank/internal/alloc"
	"dualbank/internal/bench"
	"dualbank/internal/serve"
)

// slowSource loops for billions of simulated cycles — far longer than
// any test deadline — so a request that is not cancelled mid-simulate
// would hang the suite.
const slowSource = `
int sink[1];
void main() {
	int i;
	int j;
	int acc = 0;
	for (i = 0; i < 60000; i++) {
		for (j = 0; j < 60000; j++) {
			acc = acc + j;
		}
	}
	sink[0] = acc;
}
`

// TestCancelMidSimulate aborts a long simulation via its request
// deadline: the response must arrive promptly after the deadline (the
// simulator polls cancellation at block boundaries), report 408, and
// leave the pool drained.
func TestCancelMidSimulate(t *testing.T) {
	s := serve.New(serve.Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"source":%q,"timeout_ms":100}`, slowSource)
	start := time.Now()
	code, data := postRun(t, ts.Client(), ts.URL, body)
	elapsed := time.Since(start)
	if code != http.StatusRequestTimeout {
		t.Fatalf("status %d, want 408: %s", code, data)
	}
	// The deadline is 100ms; well under a second proves the simulator
	// actually stopped at a block boundary instead of running out its
	// cycle budget.
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled request took %v", elapsed)
	}
	waitDrained(t, s)
}

// TestClientDisconnectCancels aborts a long simulation by hanging up:
// the worker must notice the closed connection through the request
// context and free its slot.
func TestClientDisconnectCancels(t *testing.T) {
	s := serve.New(serve.Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	body := fmt.Sprintf(`{"source":%q,"timeout_ms":60000}`, slowSource)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := ts.Client().Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("request succeeded despite client disconnect")
	}
	waitDrained(t, s)
}

// waitDrained asserts the pool frees its slots promptly after
// cancellations: no worker may stay stuck executing a dead request.
func waitDrained(t *testing.T, s *serve.Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Pool().Active() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pool still has %d active workers", s.Pool().Active())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPoolWorkersDoNotLeak bounds the goroutine cost of a server's
// lifecycle: churning requests (including cancelled ones) must not
// grow the goroutine count, and Close must return it to the baseline.
func TestPoolWorkersDoNotLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	s := serve.New(serve.Config{Workers: 8})
	ts := httptest.NewServer(s.Handler())

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := `{"bench":"fir_32_1"}`
			if i%4 == 0 {
				body = fmt.Sprintf(`{"source":%q,"timeout_ms":20}`, slowSource)
			}
			resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	ts.Close()
	s.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // let finished goroutines die down
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSoak is the 1k-request mixed soak: concurrent named-benchmark
// runs across modes, source compiles, hostile bodies, and short-fuse
// cancellations, all against a small pool. Afterwards the pool must be
// drained, the cache stats consistent with the request mix, and every
// successful measurement identical to a direct bench.RunWith result.
// Run under -race this doubles as the concurrency audit of the serve
// layer, the harness cache, and the context plumbing beneath them.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak in short mode")
	}
	s := serve.New(serve.Config{Workers: 8})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// The soak fleet outnumbers the default per-host connection limit;
	// raise it so requests block in the pool, not the client.
	tr := ts.Client().Transport.(*http.Transport)
	tr.MaxIdleConnsPerHost = 256
	tr.MaxConnsPerHost = 0

	// The fast arm of the matrix: small kernels only, so 1k requests
	// stay cheap even with -race on.
	progs := []string{"fir_32_1", "iir_1_1", "latnrm_8_1", "lmsfir_8_1", "mult_4_4"}
	modes := []alloc.Mode{
		alloc.SingleBank, alloc.CB, alloc.CBProfiled,
		alloc.CBDup, alloc.FullDup, alloc.Ideal, alloc.LowOrder,
	}

	// Direct oracle, computed once up front.
	type key struct {
		bench string
		mode  alloc.Mode
	}
	oracle := make(map[key]bench.Result)
	for _, name := range progs {
		p, ok := bench.ByName(name)
		if !ok {
			t.Fatalf("no benchmark %q", name)
		}
		for _, m := range modes {
			res, err := bench.RunWith(p, m, bench.RunOptions{})
			if err != nil {
				t.Fatalf("direct %s/%v: %v", name, m, err)
			}
			oracle[key{name, m}] = res
		}
	}

	const requests = 1000
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		byStatus  = map[int]int{}
		mismatch  int
		transport int
	)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			var body string
			kind := i % 10
			switch {
			case kind == 8: // hostile: bad JSON / unknown bench / bad mode
				body = []string{`{"bench":`, `{"bench":"nope"}`, `{"bench":"fir_32_1","mode":"zig"}`}[rng.Intn(3)]
			case kind == 9: // short-fuse cancellation
				body = fmt.Sprintf(`{"source":%q,"timeout_ms":%d}`, slowSource, 1+rng.Intn(30))
			default: // named benchmark, with a fuse generous enough that
				// queueing behind the whole soak never trips it
				name := progs[rng.Intn(len(progs))]
				mode := modes[rng.Intn(len(modes))]
				body = fmt.Sprintf(`{"bench":%q,"mode":%q,"timeout_ms":60000}`, name, mode)
			}
			resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
			if err != nil {
				mu.Lock()
				transport++
				mu.Unlock()
				return
			}
			defer resp.Body.Close()
			var r serve.Response
			ok := json.NewDecoder(resp.Body).Decode(&r) == nil
			mu.Lock()
			byStatus[resp.StatusCode]++
			if resp.StatusCode == http.StatusOK {
				var m alloc.Mode
				if !ok || m.UnmarshalText([]byte(r.Mode)) != nil {
					mismatch++
				} else if want, found := oracle[key{r.Bench, m}]; !found ||
					r.Cycles != want.Cycles || r.MemTotal != want.Mem.Total() ||
					r.DupStores != want.DupStores {
					mismatch++
				}
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	if transport > 0 {
		t.Fatalf("%d requests failed at the transport layer", transport)
	}
	total := 0
	for _, n := range byStatus {
		total += n
	}
	if total != requests {
		t.Fatalf("accounted for %d of %d requests: %v", total, requests, byStatus)
	}
	if mismatch != 0 {
		t.Fatalf("%d successful responses diverged from direct bench.RunWith", mismatch)
	}
	// 800 well-formed named requests must all succeed; the hostile and
	// short-fuse arms must all fail with their designated statuses.
	if byStatus[http.StatusOK] != 800 {
		t.Errorf("status mix %v: want 800 OK", byStatus)
	}
	if byStatus[http.StatusRequestTimeout] != 100 {
		t.Errorf("status mix %v: want 100 request timeouts", byStatus)
	}
	if n := byStatus[http.StatusBadRequest] + byStatus[http.StatusNotFound]; n != 100 {
		t.Errorf("status mix %v: want 100 rejections", byStatus)
	}

	waitDrained(t, s)
	if got := s.Metrics().InFlight(); got != 0 {
		t.Errorf("in-flight gauge %d after drain", got)
	}

	// Cache-stat consistency: every distinct (bench, mode) executes at
	// least once, and — since no named request can cancel under its 60s
	// fuse — hits + misses together account for exactly the
	// named-benchmark requests that reached the cache and succeeded.
	// (Source jobs bypass the cache; a cancelled computation would add a
	// miss without a success, but only named jobs touch the harness.)
	st := s.CacheStats()
	if st.Misses < int64(len(oracle)) {
		t.Errorf("cache misses %d < %d distinct keys", st.Misses, len(oracle))
	}
	if st.Hits+st.Misses != int64(byStatus[http.StatusOK]) {
		t.Errorf("cache traffic %d hits + %d misses != %d successes",
			st.Hits, st.Misses, byStatus[http.StatusOK])
	}
	// And the cache must now be fully warm: one more pass over the
	// whole matrix, every response a hit.
	for k := range oracle {
		body := fmt.Sprintf(`{"bench":%q,"mode":%q}`, k.bench, k.mode)
		code, data := postRun(t, ts.Client(), ts.URL, body)
		if code != http.StatusOK {
			t.Fatalf("warm pass %s/%v: status %d: %s", k.bench, k.mode, code, data)
		}
		var r serve.Response
		if err := json.Unmarshal(data, &r); err != nil {
			t.Fatal(err)
		}
		if !r.Cached {
			t.Errorf("warm pass %s/%v missed the cache", k.bench, k.mode)
		}
	}
}
