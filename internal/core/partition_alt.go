package core

import (
	"fmt"
	"math"
	"math/rand"
)

// This file provides alternative graph partitioners used to validate
// the paper's choice of the simple greedy algorithm:
//
//   - PartitionKL refines the greedy result with Kernighan–Lin-style
//     passes (the paper notes "other algorithms, such as graph
//     colouring, will probably work just as well").
//   - PartitionAnneal is a simulated-annealing partitioner in the
//     spirit of Sudarsanam & Malik's constraint-graph labelling, which
//     the paper's related-work section discusses; the Princeton study
//     found annealing performed no better than a greedy heuristic, a
//     result this reproduction's tests confirm on the benchmark suite.
//   - PartitionFM (partition_fm.go) is the fast path: a gain-bucket
//     Fiduccia–Mattheyses partitioner that reproduces the greedy walk
//     in near-linear time and then refines it.
//
// All are deterministic (the annealer takes an explicit seed).

// Method selects a partitioning algorithm.
type Method int8

const (
	// MethodGreedy is the paper's Figure 5 algorithm.
	MethodGreedy Method = iota
	// MethodKL is greedy followed by Kernighan–Lin refinement.
	MethodKL
	// MethodAnneal is simulated annealing.
	MethodAnneal
	// MethodFM is the gain-bucket Fiduccia–Mattheyses partitioner:
	// the greedy walk replayed with O(1) best-move extraction and
	// O(degree) incremental gain updates, followed by FM refinement
	// passes. Never worse than greedy, asymptotically faster.
	MethodFM
	// MethodExact is the certified branch-and-bound bipartitioner from
	// internal/exact: it seeds an incumbent from the heuristics and
	// proves optimality (or a bound) within a deterministic node
	// budget, so it is never costlier than any heuristic arm. The
	// implementation lives outside this package and registers itself
	// via RegisterExactPartitioner; alloc links it, so every pipeline
	// caller has it available behind the -partitioner flag.
	MethodExact
)

func (m Method) String() string {
	switch m {
	case MethodKL:
		return "kl"
	case MethodAnneal:
		return "anneal"
	case MethodFM:
		return "fm"
	case MethodExact:
		return "exact"
	}
	return "greedy"
}

// ParseMethod parses a partitioner name as printed by Method.String.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "greedy":
		return MethodGreedy, nil
	case "kl":
		return MethodKL, nil
	case "anneal":
		return MethodAnneal, nil
	case "fm":
		return MethodFM, nil
	case "exact":
		return MethodExact, nil
	}
	return 0, fmt.Errorf("core: unknown partition method %q (want greedy, kl, anneal, fm, or exact)", s)
}

// exactPartition is the registered certified-exact backend. It lives
// in internal/exact (which imports this package), so dispatch goes
// through a function value rather than a direct call.
var exactPartition func(*Graph) *Partition

// RegisterExactPartitioner installs the MethodExact backend. Called
// from internal/exact's init; last registration wins.
func RegisterExactPartitioner(f func(*Graph) *Partition) { exactPartition = f }

// PartitionWith partitions the graph with the chosen method.
func (g *Graph) PartitionWith(m Method) *Partition {
	return g.PartitionWithPasses(m, -1)
}

// PartitionWithPasses is PartitionWith with an explicit FM
// refinement-pass bound: fmPasses < 0 means the library default, and
// the bound only matters under MethodFM (the other methods fix their
// own refinement policy).
func (g *Graph) PartitionWithPasses(m Method, fmPasses int) *Partition {
	switch m {
	case MethodKL:
		return g.PartitionKL()
	case MethodAnneal:
		return g.PartitionAnneal(1)
	case MethodFM:
		if fmPasses < 0 {
			fmPasses = fmMaxPasses
		}
		return g.PartitionFMPasses(fmPasses)
	case MethodExact:
		if exactPartition == nil {
			panic("core: exact partitioner not linked (import dualbank/internal/exact)")
		}
		return exactPartition(g)
	default:
		return g.Partition()
	}
}

// PartitionKL runs the greedy algorithm and then Kernighan–Lin
// refinement: repeated passes that tentatively flip every node in
// best-gain order (allowing temporarily negative gains), keep the best
// prefix, and stop when a pass yields no improvement.
func (g *Graph) PartitionKL() *Partition {
	greedy := g.Partition()
	n := len(g.Nodes)
	c := g.CSR()
	inY := make([]bool, n)
	for _, s := range greedy.SetY {
		inY[g.index[s]] = true
	}
	cost := greedy.Cost

	for pass := 0; pass < 8; pass++ {
		locked := make([]bool, n)
		cur := cost
		best := cost
		bestPrefix := 0
		var flips []int
		state := append([]bool(nil), inY...)
		for step := 0; step < n; step++ {
			bi, bg := -1, int64(math.MinInt64)
			for i := 0; i < n; i++ {
				if locked[i] {
					continue
				}
				if gn := c.moveGain(state, i); gn > bg {
					bi, bg = i, gn
				}
			}
			if bi < 0 {
				break
			}
			state[bi] = !state[bi]
			locked[bi] = true
			cur -= bg
			flips = append(flips, bi)
			if cur < best {
				best = cur
				bestPrefix = len(flips)
			}
		}
		if best >= cost {
			break
		}
		for _, i := range flips[:bestPrefix] {
			inY[i] = !inY[i]
		}
		cost = best
	}
	p := g.partitionFrom(inY)
	p.Trace = []int64{greedy.Cost, p.Cost}
	return p
}

// PartitionAnneal partitions by simulated annealing with a geometric
// cooling schedule. The seed makes it deterministic.
func (g *Graph) PartitionAnneal(seed int64) *Partition {
	n := len(g.Nodes)
	c := g.CSR()
	total := c.Total
	rng := rand.New(rand.NewSource(seed))
	inY := make([]bool, n)
	cost := c.cutCost(inY)
	bestY := append([]bool(nil), inY...)
	best := cost

	if n > 0 && total > 0 {
		temp := float64(total)
		const cooling = 0.95
		for ; temp > 0.01; temp *= cooling {
			for step := 0; step < 4*n; step++ {
				i := rng.Intn(n)
				gain := c.moveGain(inY, i)
				if gain >= 0 || rng.Float64() < math.Exp(float64(gain)/temp) {
					inY[i] = !inY[i]
					cost -= gain
					if cost < best {
						best = cost
						copy(bestY, inY)
					}
				}
			}
		}
	}
	p := g.partitionFrom(bestY)
	p.Trace = []int64{total, p.Cost}
	return p
}
