package bench

import (
	"context"
	"testing"

	"dualbank/internal/alloc"
	"dualbank/internal/pipeline"
	"dualbank/internal/sim"
)

// TestFastSimMatchesReference pins the predecoded fast-path engine to
// the interpretive reference Machine: every Table 1/2 benchmark under
// every allocation mode must agree on the cycle count, the bandwidth
// counters (MemAccesses, DualMemCycles), the run-time conflict count
// (BankConflicts, non-zero only under the low-order organisation), the
// executed-operation count, and the complete final X/Y bank images.
func TestFastSimMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite in short mode")
	}
	modes := []alloc.Mode{
		alloc.SingleBank, alloc.CB, alloc.CBProfiled,
		alloc.CBDup, alloc.FullDup, alloc.Ideal, alloc.LowOrder,
	}
	for _, p := range append(Kernels(), Applications()...) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			for _, mode := range modes {
				c, err := pipeline.Compile(p.Source, p.Name, pipeline.Options{Mode: mode})
				if err != nil {
					t.Fatalf("%v: compile: %v", mode, err)
				}
				ref := sim.NewMachine(c.Sched)
				if err := ref.Run(); err != nil {
					t.Fatalf("%v: reference: %v", mode, err)
				}
				pd, err := sim.Predecode(c.Sched)
				if err != nil {
					t.Fatalf("%v: predecode: %v", mode, err)
				}
				fast := pd.NewMachine()
				if err := fast.Run(); err != nil {
					t.Fatalf("%v: fast: %v", mode, err)
				}
				if fast.Cycles != ref.Cycles {
					t.Errorf("%v: cycles: fast %d, reference %d", mode, fast.Cycles, ref.Cycles)
				}
				if fast.OpsExecuted != ref.OpsExecuted {
					t.Errorf("%v: ops executed: fast %d, reference %d", mode, fast.OpsExecuted, ref.OpsExecuted)
				}
				if fast.MemAccesses != ref.MemAccesses {
					t.Errorf("%v: mem accesses: fast %d, reference %d", mode, fast.MemAccesses, ref.MemAccesses)
				}
				if fast.DualMemCycles != ref.DualMemCycles {
					t.Errorf("%v: dual-mem cycles: fast %d, reference %d", mode, fast.DualMemCycles, ref.DualMemCycles)
				}
				if fast.BankConflicts != ref.BankConflicts {
					t.Errorf("%v: bank conflicts: fast %d, reference %d", mode, fast.BankConflicts, ref.BankConflicts)
				}
				for i := range ref.X {
					if fast.X[i] != ref.X[i] {
						t.Fatalf("%v: X[%#x]: fast %#x, reference %#x", mode, i, fast.X[i], ref.X[i])
					}
					if fast.Y[i] != ref.Y[i] {
						t.Fatalf("%v: Y[%#x]: fast %#x, reference %#x", mode, i, fast.Y[i], ref.Y[i])
					}
				}
			}
		})
	}
}

// TestCompiledSimMatchesReference pins the compiled threaded-code
// engine to the interpretive reference Machine with the same rigor as
// the fast-path pinning: every benchmark under every allocation mode
// must agree on cycle count, bandwidth counters, conflict count,
// executed-operation count, and the complete final memory images. The
// compiled engine's arenas cover only the program's used address
// range, so the image check compares that prefix word-for-word and
// then requires the reference to have left everything beyond it zero —
// if the reference could ever write past the compiled high-water mark,
// this fails rather than silently comparing a truncated image.
func TestCompiledSimMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite in short mode")
	}
	modes := []alloc.Mode{
		alloc.SingleBank, alloc.CB, alloc.CBProfiled,
		alloc.CBDup, alloc.FullDup, alloc.Ideal, alloc.LowOrder,
	}
	for _, p := range append(Kernels(), Applications()...) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			var batch sim.Batch
			for _, mode := range modes {
				c, err := pipeline.Compile(p.Source, p.Name, pipeline.Options{Mode: mode})
				if err != nil {
					t.Fatalf("%v: compile: %v", mode, err)
				}
				ref := sim.NewMachine(c.Sched)
				if err := ref.Run(); err != nil {
					t.Fatalf("%v: reference: %v", mode, err)
				}
				cp, err := sim.Compile(c.Sched)
				if err != nil {
					t.Fatalf("%v: lower: %v", mode, err)
				}
				// Run through a shared Batch, so this differential also
				// pins the arena-recycling path the production default
				// actually uses.
				cm, err := batch.Run(context.Background(), cp)
				if err != nil {
					t.Fatalf("%v: compiled: %v", mode, err)
				}
				if cm.Cycles != ref.Cycles {
					t.Errorf("%v: cycles: compiled %d, reference %d", mode, cm.Cycles, ref.Cycles)
				}
				if cm.OpsExecuted != ref.OpsExecuted {
					t.Errorf("%v: ops executed: compiled %d, reference %d", mode, cm.OpsExecuted, ref.OpsExecuted)
				}
				if cm.MemAccesses != ref.MemAccesses {
					t.Errorf("%v: mem accesses: compiled %d, reference %d", mode, cm.MemAccesses, ref.MemAccesses)
				}
				if cm.DualMemCycles != ref.DualMemCycles {
					t.Errorf("%v: dual-mem cycles: compiled %d, reference %d", mode, cm.DualMemCycles, ref.DualMemCycles)
				}
				if cm.BankConflicts != ref.BankConflicts {
					t.Errorf("%v: bank conflicts: compiled %d, reference %d", mode, cm.BankConflicts, ref.BankConflicts)
				}
				n := cp.MemWords()
				for i := 0; i < n; i++ {
					if cm.X[i] != ref.X[i] {
						t.Fatalf("%v: X[%#x]: compiled %#x, reference %#x", mode, i, cm.X[i], ref.X[i])
					}
					if cm.Y[i] != ref.Y[i] {
						t.Fatalf("%v: Y[%#x]: compiled %#x, reference %#x", mode, i, cm.Y[i], ref.Y[i])
					}
				}
				for i := n; i < len(ref.X); i++ {
					if ref.X[i] != 0 || ref.Y[i] != 0 {
						t.Fatalf("%v: reference wrote word %#x beyond the compiled arena (%d words)", mode, i, n)
					}
				}
			}
		})
	}
}

// TestFastMachineReset checks that Reset restores a FastMachine to its
// pristine state: a second run must reproduce the first exactly.
func TestFastMachineReset(t *testing.T) {
	p, _ := ByName("fir_32_1")
	c, err := pipeline.Compile(p.Source, p.Name, pipeline.Options{Mode: alloc.CBDup})
	if err != nil {
		t.Fatal(err)
	}
	pd, err := sim.Predecode(c.Sched)
	if err != nil {
		t.Fatal(err)
	}
	m := pd.NewMachine()
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	first := m.Cycles
	firstX := append([]uint32(nil), m.X...)
	m.Reset()
	if m.Cycles != 0 || m.OpsExecuted != 0 {
		t.Fatalf("counters not reset: cycles=%d ops=%d", m.Cycles, m.OpsExecuted)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Cycles != first {
		t.Fatalf("second run: %d cycles, first %d", m.Cycles, first)
	}
	for i := range firstX {
		if m.X[i] != firstX[i] {
			t.Fatalf("X[%#x] differs after reset+rerun: %#x vs %#x", i, m.X[i], firstX[i])
		}
	}
}
