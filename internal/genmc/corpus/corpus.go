package corpus

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"dualbank/internal/alloc"
	"dualbank/internal/compact"
	"dualbank/internal/cost"
	"dualbank/internal/genmc"
	"dualbank/internal/machine"
	"dualbank/internal/pipeline"
)

// VerifyModes are the allocation arms the corpus measures: the
// unoptimized single-bank baseline, compaction-based partitioning, and
// partial duplication — the paper's central comparison.
var VerifyModes = []alloc.Mode{alloc.SingleBank, alloc.CB, alloc.CBDup}

// Options configures a corpus run.
type Options struct {
	// N is the number of generated programs.
	N int
	// Seed selects the population: program i is generated from
	// archetype i mod 3 and a per-program seed decorrelated across base
	// seeds, so nightly runs with different base seeds cover disjoint
	// populations.
	Seed uint64
	// Workers bounds verification parallelism (default GOMAXPROCS).
	Workers int
	// Metamorphic also checks the three invariances (identifier rename,
	// declaration permutation, bank swap) on every program, plus the
	// multi-bank gauntlet: each program re-verified on a 4-bank, 2-port
	// machine across all three engines with the oracle cross-check and
	// a k-ary bank-permutation invariance.
	Metamorphic bool
	// Progress, when non-nil, is called after each program completes.
	Progress func(done, total int)
}

// Row is one program's verified measurements across the three arms.
type Row struct {
	Name      string `json:"name"`
	Archetype string `json:"archetype"`
	Seed      uint64 `json:"seed"`
	// Cycle counts per arm (all three engines agreed on each).
	CyclesNone int64 `json:"cycles_none"`
	CyclesCB   int64 `json:"cycles_cb"`
	CyclesDup  int64 `json:"cycles_dup"`
	// Memory-cost-model totals per arm.
	MemNone int `json:"mem_none"`
	MemCB   int `json:"mem_cb"`
	MemDup  int `json:"mem_dup"`
	// Duplication detail under CBDup.
	DupArrays int `json:"dup_arrays"`
	DupStores int `json:"dup_stores"`
}

// ArchStats aggregates one archetype's rows into the statistical
// re-test of the paper's claims: how often each technique wins, by how
// much, and what duplication costs when it stops paying.
type ArchStats struct {
	Archetype string `json:"archetype"`
	Programs  int    `json:"programs"`
	// Failures counts programs with at least one verification failure.
	Failures int `json:"failures"`

	// CBWins/CBLosses compare CB cycles against the single-bank
	// baseline; the remainder are ties.
	CBWins   int `json:"cb_wins"`
	CBLosses int `json:"cb_losses"`
	// DupWins/DupLosses compare CBDup cycles against CB.
	DupWins   int `json:"dup_wins"`
	DupLosses int `json:"dup_losses"`
	// DupNoGain counts programs where duplication bought zero cycles
	// but cost extra memory — the region where duplication stops
	// paying.
	DupNoGain int `json:"dup_no_gain"`
	// DupActive counts programs where CBDup actually duplicated
	// something.
	DupActive int `json:"dup_active"`

	// Gains are percentages; CB is measured against the baseline,
	// Dup against CB.
	MeanCBGainPct    float64 `json:"mean_cb_gain_pct"`
	MedianCBGainPct  float64 `json:"median_cb_gain_pct"`
	MeanDupGainPct   float64 `json:"mean_dup_gain_pct"`
	MedianDupGainPct float64 `json:"median_dup_gain_pct"`
	// MeanDupMemPct is duplication's mean memory overhead over CB.
	MeanDupMemPct float64 `json:"mean_dup_mem_pct"`
}

// Report is a corpus run's full result, serialized as the committed
// BENCH_corpus.json baseline. Field order, row order and float
// rounding are all deterministic: equal (N, Seed) inputs on a correct
// build produce byte-identical files.
type Report struct {
	N           int         `json:"n"`
	Seed        uint64      `json:"seed"`
	Metamorphic bool        `json:"metamorphic"`
	Failures    []string    `json:"failures,omitempty"`
	Stats       []ArchStats `json:"stats"`
	Rows        []Row       `json:"rows"`
}

// engines pins one compiled arm: the reference machine, the fast
// predecoded engine and the compiled threaded-code engine run the same
// schedule and must agree on every counter and every memory word; the
// reference image must equal the generator's expected outputs. It
// returns the agreed cycle count and appends any divergence to fails.
func engines(ctx context.Context, gp genmc.Program, c *pipeline.Compiled, cc *pipeline.Compiler, fails *[]string) int64 {
	mode := c.Alloc.Mode
	fail := func(format string, args ...any) {
		*fails = append(*fails, fmt.Sprintf("%s/%v: ", gp.Name, mode)+fmt.Sprintf(format, args...))
	}
	if err := compact.Validate(c.Sched); err != nil {
		fail("schedule: %v", err)
		return 0
	}
	ref, err := c.RunCtx(ctx)
	if err != nil {
		fail("reference: %v", err)
		return 0
	}
	fast, err := c.RunFastCtx(ctx)
	if err != nil {
		fail("fast: %v", err)
		return ref.Cycles
	}
	cm, err := c.RunCompiledCtx(ctx, cc.SimBatch())
	if err != nil {
		fail("compiled: %v", err)
		return ref.Cycles
	}

	type counter struct {
		name           string
		ref, fast, cmp int64
	}
	for _, ctr := range []counter{
		{"cycles", ref.Cycles, fast.Cycles, cm.Cycles},
		{"ops", ref.OpsExecuted, fast.OpsExecuted, cm.OpsExecuted},
		{"mem accesses", ref.MemAccesses, fast.MemAccesses, cm.MemAccesses},
		{"dual-mem cycles", ref.DualMemCycles, fast.DualMemCycles, cm.DualMemCycles},
		{"bank conflicts", ref.BankConflicts, fast.BankConflicts, cm.BankConflicts},
	} {
		if ctr.fast != ctr.ref {
			fail("%s: fast %d, reference %d", ctr.name, ctr.fast, ctr.ref)
		}
		if ctr.cmp != ctr.ref {
			fail("%s: compiled %d, reference %d", ctr.name, ctr.cmp, ctr.ref)
		}
	}

	// Full-image pinning across every bank (two on the classic machine,
	// more under a multi-bank spec): fast covers the whole bank; the
	// compiled arenas cover the used prefix, beyond which the reference
	// must have left zeroes (same discipline as the differential suite).
	for b := range ref.Banks {
		rb, fb, cb := ref.Banks[b], fast.Banks[b], cm.Banks[b]
		for i := range rb {
			if fb[i] != rb[i] {
				fail("fast image diverges in bank %d at word %#x", b, i)
				break
			}
		}
		n := len(cb)
		for i := 0; i < n; i++ {
			if cb[i] != rb[i] {
				fail("compiled image diverges in bank %d at word %#x", b, i)
				break
			}
		}
		for i := n; i < len(rb); i++ {
			if rb[i] != 0 {
				fail("reference wrote bank %d word %#x beyond the compiled arena (%d words)", b, i, n)
				break
			}
		}
	}

	// The generator's evaluator is the independent oracle: the final
	// image must match it array for array, word for word.
	names := make([]string, 0, len(gp.Out))
	for name := range gp.Out {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sym := c.Global(name)
		if sym == nil {
			fail("global %s missing after compilation", name)
			continue
		}
		for i, want := range gp.Out[name] {
			got, err := ref.Word(sym, i)
			if err != nil {
				fail("%s[%d]: %v", name, i, err)
				break
			}
			if int32(got) != want {
				fail("%s[%d] = %d, generator expects %d", name, i, int32(got), want)
				break
			}
		}
	}
	return ref.Cycles
}

// fastCycles compiles source under o and returns the fast engine's
// cycle count, for the metamorphic comparisons.
func fastCycles(ctx context.Context, cc *pipeline.Compiler, source, name string, o pipeline.Options) (int64, error) {
	c, err := cc.CompileCtx(ctx, source, name, o)
	if err != nil {
		return 0, err
	}
	m, err := c.RunFastCtx(ctx)
	if err != nil {
		return 0, err
	}
	return m.Cycles, nil
}

// VerifyProgram runs one generated program through the full gauntlet:
// three allocation arms, three engines each, the expected-output
// oracle, and (optionally) the three metamorphic invariances. It
// returns the measured row and every failure found — an empty slice
// means the program verified clean.
func VerifyProgram(ctx context.Context, gp genmc.Program, cc *pipeline.Compiler, metamorphic bool) (Row, []string) {
	row := Row{
		Name:      gp.Name,
		Archetype: gp.Knobs.Archetype.String(),
		Seed:      gp.Knobs.Seed,
	}
	var fails []string
	base := make(map[alloc.Mode]int64, len(VerifyModes))
	for _, mode := range VerifyModes {
		c, err := cc.CompileCtx(ctx, gp.Source, gp.Name, pipeline.Options{Mode: mode})
		if err != nil {
			fails = append(fails, fmt.Sprintf("%s/%v: compile: %v", gp.Name, mode, err))
			continue
		}
		cycles := engines(ctx, gp, c, cc, &fails)
		base[mode] = cycles
		mem := cost.Of(c.Alloc, c.Sched).Total()
		switch mode {
		case alloc.SingleBank:
			row.CyclesNone, row.MemNone = cycles, mem
		case alloc.CB:
			row.CyclesCB, row.MemCB = cycles, mem
		case alloc.CBDup:
			row.CyclesDup, row.MemDup = cycles, mem
			row.DupArrays = len(c.Alloc.Duplicated)
			row.DupStores = c.Alloc.DupStores
		}
	}

	if metamorphic && len(fails) == 0 {
		variants := []struct {
			label     string
			transform func(string) (string, error)
			swap      bool
		}{
			{"rename", RenameIdents, false},
			{"permute", PermuteDecls, false},
			{"swap-banks", nil, true},
		}
		for _, v := range variants {
			source := gp.Source
			if v.transform != nil {
				var err error
				source, err = v.transform(gp.Source)
				if err != nil {
					fails = append(fails, fmt.Sprintf("%s: %s: %v", gp.Name, v.label, err))
					continue
				}
			}
			for _, mode := range VerifyModes {
				got, err := fastCycles(ctx, cc, source, gp.Name, pipeline.Options{Mode: mode, SwapBanks: v.swap})
				if err != nil {
					fails = append(fails, fmt.Sprintf("%s/%v: %s: %v", gp.Name, mode, v.label, err))
					continue
				}
				if got != base[mode] {
					fails = append(fails, fmt.Sprintf("%s/%v: %s changed cycles: %d -> %d",
						gp.Name, mode, v.label, base[mode], got))
				}
			}
		}

		// Multi-bank gauntlet: the same program compiled for a 4-bank,
		// 2-port machine must verify on all three engines against the
		// generator's oracle, and its cycle count must be invariant
		// under a k-ary bank permutation (the generalization of the
		// bank-swap variant above). The report's rows carry classic
		// measurements only, so the committed baseline bytes are
		// untouched — this gauntlet can only add failures.
		hwSpec := machine.BankSpec{Banks: 4, PortsPerBank: 2}
		for _, mode := range []alloc.Mode{alloc.CB, alloc.CBDup} {
			c, err := cc.CompileCtx(ctx, gp.Source, gp.Name, pipeline.Options{Mode: mode, Spec: hwSpec})
			if err != nil {
				fails = append(fails, fmt.Sprintf("%s/%v: hw 4x2: compile: %v", gp.Name, mode, err))
				continue
			}
			hwCycles := engines(ctx, gp, c, cc, &fails)
			got, err := fastCycles(ctx, cc, gp.Source, gp.Name,
				pipeline.Options{Mode: mode, Spec: hwSpec, BankPerm: []int{1, 2, 3, 0}})
			if err != nil {
				fails = append(fails, fmt.Sprintf("%s/%v: hw 4x2 perm: %v", gp.Name, mode, err))
			} else if got != hwCycles {
				fails = append(fails, fmt.Sprintf("%s/%v: hw 4x2 bank permutation changed cycles: %d -> %d",
					gp.Name, mode, hwCycles, got))
			}
		}
	}
	return row, fails
}

// Run verifies a whole corpus in parallel and aggregates the report.
// Verification failures do not abort the run — they are collected into
// Report.Failures so one bad program yields one diagnosable line, not
// a truncated corpus. The returned error covers infrastructure only
// (context cancellation).
func Run(ctx context.Context, o Options) (*Report, error) {
	if o.N <= 0 {
		return nil, fmt.Errorf("corpus: N must be positive, got %d", o.N)
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > o.N {
		workers = o.N
	}
	pop := genmc.Population(o.N, o.Seed)
	rows := make([]Row, o.N)
	fails := make([][]string, o.N)
	var done atomic.Int64
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cc := new(pipeline.Compiler)
			for i := range next {
				gp := genmc.Generate(pop[i])
				rows[i], fails[i] = VerifyProgram(ctx, gp, cc, o.Metamorphic)
				if o.Progress != nil {
					o.Progress(int(done.Add(1)), o.N)
				}
			}
		}()
	}
feed:
	for i := 0; i < o.N; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}

	r := &Report{N: o.N, Seed: o.Seed, Metamorphic: o.Metamorphic, Rows: rows}
	for _, fs := range fails {
		r.Failures = append(r.Failures, fs...)
	}
	r.Stats = computeStats(rows, fails)
	return r, nil
}

// round3 fixes float formatting in the committed baseline to three
// decimals.
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

func meanMedian(vals []float64) (mean, median float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	sort.Float64s(vals)
	mid := vals[len(vals)/2]
	if len(vals)%2 == 0 {
		mid = (vals[len(vals)/2-1] + vals[len(vals)/2]) / 2
	}
	return round3(sum / float64(len(vals))), round3(mid)
}

// computeStats folds per-program rows into per-archetype statistics.
func computeStats(rows []Row, fails [][]string) []ArchStats {
	stats := make([]ArchStats, 0, 3)
	for _, a := range genmc.Archetypes() {
		s := ArchStats{Archetype: a.String()}
		var cbGains, dupGains, memPcts []float64
		for i, row := range rows {
			if row.Archetype != s.Archetype {
				continue
			}
			s.Programs++
			if len(fails[i]) != 0 {
				s.Failures++
				continue
			}
			switch {
			case row.CyclesCB < row.CyclesNone:
				s.CBWins++
			case row.CyclesCB > row.CyclesNone:
				s.CBLosses++
			}
			switch {
			case row.CyclesDup < row.CyclesCB:
				s.DupWins++
			case row.CyclesDup > row.CyclesCB:
				s.DupLosses++
			default:
				if row.MemDup > row.MemCB {
					s.DupNoGain++
				}
			}
			if row.DupArrays > 0 {
				s.DupActive++
			}
			if row.CyclesNone > 0 {
				cbGains = append(cbGains, 100*float64(row.CyclesNone-row.CyclesCB)/float64(row.CyclesNone))
			}
			if row.CyclesCB > 0 {
				dupGains = append(dupGains, 100*float64(row.CyclesCB-row.CyclesDup)/float64(row.CyclesCB))
			}
			if row.MemCB > 0 {
				memPcts = append(memPcts, 100*float64(row.MemDup-row.MemCB)/float64(row.MemCB))
			}
		}
		s.MeanCBGainPct, s.MedianCBGainPct = meanMedian(cbGains)
		s.MeanDupGainPct, s.MedianDupGainPct = meanMedian(dupGains)
		s.MeanDupMemPct, _ = meanMedian(memPcts)
		stats = append(stats, s)
	}
	return stats
}

// WriteFile serializes the report deterministically.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteText prints the per-archetype summary table — the statistical
// re-test of the paper's claims at corpus scale.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "corpus: %d generated programs (seed %d), %d verification failures\n",
		r.N, r.Seed, len(r.Failures))
	fmt.Fprintf(w, "%-10s %5s %6s %8s %8s %8s %8s %9s %9s %8s\n",
		"archetype", "progs", "fails", "cb-wins", "dup-wins", "dup-loss", "dup-idle",
		"cb-gain", "dup-gain", "dup-mem")
	for _, s := range r.Stats {
		fmt.Fprintf(w, "%-10s %5d %6d %8d %8d %8d %8d %8.1f%% %8.1f%% %7.1f%%\n",
			s.Archetype, s.Programs, s.Failures, s.CBWins, s.DupWins, s.DupLosses,
			s.DupNoGain, s.MeanCBGainPct, s.MeanDupGainPct, s.MeanDupMemPct)
	}
}

// ReadReport loads a report written by WriteFile.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := new(Report)
	if err := json.Unmarshal(data, r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
