package core

import (
	"fmt"
	"strings"

	"dualbank/internal/ir"
)

// Partition is the result of bipartitioning the interference graph:
// SetX holds the symbols assigned to bank X, SetY those assigned to
// bank Y. Cost is the residual cost — the summed weight of edges whose
// endpoints ended up in the same set, i.e. the parallel-access
// opportunities the partition could not satisfy.
type Partition struct {
	SetX, SetY []*ir.Symbol
	Cost       int64
	// Trace records the cost after each greedy move, starting with the
	// initial all-in-one-set cost; exposed so tests can check the
	// Figure 5 walk (7 -> 3 -> 2).
	Trace []int64
}

// Partition bipartitions the graph's nodes with the paper's greedy
// algorithm (Figure 5):
//
//	Start with every node in set 1 and set 2 empty; the cost is the
//	total weight of edges inside set 1. Repeatedly move the node whose
//	transfer to set 2 yields the greatest net decrease in cost — the
//	weight of its edges into set 1 minus the weight of its edges into
//	set 2 — stopping as soon as no move decreases the cost.
//
// Ties are broken in favour of the later node, which reproduces the
// published walk on the Figure 5 example. The greedy method is O(v²)
// and, as the paper reports, achieves near-ideal partitions in
// practice; PartitionFM reaches the same local optimum with gain
// buckets in near-linear time.
func (g *Graph) Partition() *Partition {
	n := len(g.Nodes)
	c := g.CSR()
	inY := make([]bool, n)

	cost := c.Total
	trace := []int64{cost}
	for {
		best, bestDelta := -1, int64(0)
		for i := 0; i < n; i++ {
			if inY[i] {
				continue
			}
			// Net decrease: edges into set 1 minus edges into set 2.
			var delta int64
			for h := c.Start[i]; h < c.Start[i+1]; h++ {
				if inY[c.Adj[h]] {
					delta -= c.W[h]
				} else {
					delta += c.W[h]
				}
			}
			if delta > 0 && delta >= bestDelta {
				best, bestDelta = i, delta
			}
		}
		if best < 0 {
			break
		}
		inY[best] = true
		cost -= bestDelta
		trace = append(trace, cost)
	}

	part := g.partitionFrom(inY)
	part.Trace = trace
	return part
}

// partitionFrom materialises a Partition from a side assignment,
// computing the residual cost from the CSR view.
func (g *Graph) partitionFrom(inY []bool) *Partition {
	p := &Partition{Cost: g.CSR().cutCost(inY)}
	for i, s := range g.Nodes {
		if inY[i] {
			p.SetY = append(p.SetY, s)
		} else {
			p.SetX = append(p.SetX, s)
		}
	}
	return p
}

// String renders the partition for diagnostics.
func (p *Partition) String() string {
	names := func(ss []*ir.Symbol) string {
		var ns []string
		for _, s := range ss {
			ns = append(ns, s.Name)
		}
		return strings.Join(ns, ", ")
	}
	return fmt.Sprintf("X: {%s}\nY: {%s}\ncost: %d", names(p.SetX), names(p.SetY), p.Cost)
}
