// This example walks through the paper's flagship result (§3.2 and
// Figure 6): the LPC autocorrelation loop
//
//	R[m] += s[n] * s[n+m]
//
// reads two elements of the *same* array at once, so no assignment of
// arrays to banks can make the accesses parallel — only duplicating
// the array in both banks (or dual-ported memory) can. The example
// compiles the lpc application benchmark under every mode, shows which
// symbol the compiler marks for duplication, and reports the gains.
package main

import (
	"fmt"
	"log"

	"dualbank"
	"dualbank/internal/alloc"
	"dualbank/internal/bench"
)

func main() {
	p, _ := bench.ByName("lpc")

	fmt.Println("The Figure 6 loop (from the lpc benchmark source):")
	fmt.Println()
	fmt.Println("    for (i = 0; i < lim; i++) {")
	fmt.Println("        acc += s[i] * s[i + m];")
	fmt.Println("    }")
	fmt.Println()

	// Show what the analysis finds.
	c, err := dualbank.Compile(p.Source, "lpc", dualbank.Options{Mode: dualbank.Duplication})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Symbols the compaction-based analysis marks for duplication:")
	for _, s := range c.Alloc.Duplicated {
		fmt.Printf("  %s (%d words) — now present in both banks at address %d\n",
			s.Name, s.Size, s.Addr)
	}
	fmt.Printf("Coherence stores inserted: %d\n\n", c.Alloc.DupStores)

	base, err := bench.Run(p, alloc.SingleBank)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %10s %8s\n", "mode", "cycles", "gain")
	fmt.Printf("%-22s %10d %8s\n", "single bank", base.Cycles, "--")
	for _, mode := range []alloc.Mode{alloc.CB, alloc.CBDup, alloc.Ideal} {
		res, err := bench.Run(p, mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10d %+7.1f%%\n", label(mode), res.Cycles, bench.Gain(base, res))
	}
	fmt.Println()
	fmt.Println("CB partitioning alone barely helps lpc: its hot loop's two")
	fmt.Println("accesses hit one array. Partial duplication recovers nearly")
	fmt.Println("all of the dual-ported ideal — the paper's 3% -> 34% result.")
}

func label(m alloc.Mode) string {
	switch m {
	case alloc.CB:
		return "CB partitioning"
	case alloc.CBDup:
		return "CB + duplication"
	case alloc.Ideal:
		return "ideal (dual-ported)"
	}
	return m.String()
}
