package explore

// Certify is the fleet-wide optimality-gap reporter: it runs the
// certified exact bipartitioner (internal/exact) on every benchmark's
// interference graph and measures each heuristic arm — greedy, FM,
// annealing — against the proven bound. The output answers the
// question the heuristic-vs-heuristic comparisons cannot: not "which
// heuristic wins" but "how far is each from optimal".
//
// Determinism contract: the exact solver's budget is a node count and
// every heuristic is deterministic, so the report bytes depend only on
// the benchmark set and budget — never on -workers width or machine.
// Workers parallelise across benchmarks only; within one benchmark the
// arms and the solver run sequentially on the same graph.

import (
	"context"
	"fmt"
	"io"
	"math"
	"sync"

	"dualbank/internal/alloc"
	"dualbank/internal/bench"
	"dualbank/internal/exact"
	"dualbank/internal/pipeline"
)

// CertifyOptions configures a certification sweep.
type CertifyOptions struct {
	// NodeBudget is the branch-and-bound node budget per benchmark
	// (0 = exact.DefaultNodeBudget). Deterministic at any value.
	NodeBudget int64
	// Workers bounds concurrent benchmarks (default 1). Any width
	// produces a byte-identical report.
	Workers int
	// Progress, when non-nil, receives one event per certified
	// benchmark, serialized.
	Progress func(CertifyEvent)
}

// CertifyEvent is one progress notification.
type CertifyEvent struct {
	Bench   string
	Verdict string
	BBNodes int64
	Done    int
	Total   int
}

// ArmGap is one heuristic arm's distance from the certified bound.
type ArmGap struct {
	Arm  string `json:"arm"`
	Cost int64  `json:"cost"`
	// GapPct is the arm's proven-gap ceiling as a percentage of the
	// certified lower bound: 0 means the arm matched the bound (under
	// verdict "optimal", provably optimal); a positive value is the
	// most the arm can be worse than optimal. -1 is the sentinel for a
	// positive cost over a zero lower bound, where no percentage is
	// meaningful.
	GapPct float64 `json:"gap_pct"`
}

// BenchCert is one benchmark's certification outcome.
type BenchCert struct {
	Bench string `json:"bench"`
	// Arrays is the interference-graph node count, Active the nodes
	// with at least one edge (the ones partitioning can affect).
	Arrays int   `json:"arrays"`
	Active int   `json:"active"`
	Edges  int   `json:"edges"`
	Total  int64 `json:"total_weight"`

	Cert exact.Certificate `json:"certificate"`
	// Arms reports greedy, fm, and anneal in that fixed order.
	Arms []ArmGap `json:"arms"`
}

// CertReport is a whole certification sweep's outcome.
type CertReport struct {
	NodeBudget int64       `json:"node_budget"`
	Benchmarks []BenchCert `json:"benchmarks"`

	// Verdict tallies across the suite.
	Optimal   int `json:"optimal"`
	Bounded   int `json:"bounded"`
	Exhausted int `json:"exhausted,omitempty"`
	// MaxGapPct is the worst finite arm gap in the suite.
	MaxGapPct float64 `json:"max_gap_pct"`
}

// Certify certifies every program's partition. The report lists
// benchmarks in input order regardless of worker scheduling.
func Certify(ctx context.Context, progs []bench.Program, opts CertifyOptions) (*CertReport, error) {
	if opts.NodeBudget <= 0 {
		opts.NodeBudget = exact.DefaultNodeBudget
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(progs) {
		workers = len(progs)
	}

	out := make([]BenchCert, len(progs))
	errs := make([]error, len(progs))
	next := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = certifyBench(progs[i], opts.NodeBudget)
				mu.Lock()
				done++
				if opts.Progress != nil && errs[i] == nil {
					opts.Progress(CertifyEvent{
						Bench:   out[i].Bench,
						Verdict: out[i].Cert.Verdict.String(),
						BBNodes: out[i].Cert.BBNodes,
						Done:    done,
						Total:   len(progs),
					})
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for i := range progs {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	rep := &CertReport{NodeBudget: opts.NodeBudget, Benchmarks: out}
	for _, bc := range out {
		switch bc.Cert.Verdict {
		case exact.Optimal:
			rep.Optimal++
		case exact.Bounded:
			rep.Bounded++
		default:
			rep.Exhausted++
		}
		for _, a := range bc.Arms {
			if a.GapPct > rep.MaxGapPct {
				rep.MaxGapPct = a.GapPct
			}
		}
	}
	return rep, nil
}

// certifyBench certifies one benchmark: compile the CB pipeline,
// measure each heuristic arm on the interference graph, then run the
// exact solver and express every arm against the certified bound.
func certifyBench(p bench.Program, budget int64) (BenchCert, error) {
	c, err := pipeline.Compile(p.Source, p.Name, pipeline.Options{Mode: alloc.CB})
	if err != nil {
		return BenchCert{}, fmt.Errorf("certify: %s: %w", p.Name, err)
	}
	g := c.Alloc.Graph
	csr := g.CSR()
	bc := BenchCert{Bench: p.Name, Arrays: len(g.Nodes), Total: csr.Total}
	for i := range g.Nodes {
		if csr.Degree(i) > 0 {
			bc.Active++
		}
	}
	bc.Edges = len(csr.Adj) / 2

	arms := []struct {
		name string
		cost int64
	}{
		{"greedy", g.Partition().Cost},
		{"fm", g.PartitionFM().Cost},
		{"anneal", g.PartitionAnneal(1).Cost},
	}
	r := exact.Solve(g, exact.Options{NodeBudget: budget})
	bc.Cert = r.Cert
	for _, a := range arms {
		if a.cost < r.Cert.Upper {
			return bc, fmt.Errorf("certify: %s: exact cost %d exceeds %s arm's %d — solver invariant broken",
				p.Name, r.Cert.Upper, a.name, a.cost)
		}
		bc.Arms = append(bc.Arms, ArmGap{Arm: a.name, Cost: a.cost, GapPct: gapPct(a.cost, r.Cert.Lower)})
	}
	return bc, nil
}

// gapPct expresses an arm cost against the certified lower bound.
func gapPct(cost, lower int64) float64 {
	switch {
	case cost <= lower:
		return 0
	case lower > 0:
		return math.Round(100*float64(cost-lower)/float64(lower)*1000) / 1000
	default:
		return -1
	}
}

// WriteText renders the report as the aligned table the CLI prints.
func (r *CertReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "certified optimality gaps (budget %d B&B nodes)\n", r.NodeBudget)
	fmt.Fprintf(w, "%-14s %-8s %-12s", "benchmark", "verdict", "bound")
	for _, arm := range []string{"greedy", "fm", "anneal"} {
		fmt.Fprintf(w, " %16s", arm)
	}
	fmt.Fprintf(w, " %10s\n", "bb-nodes")
	for _, bc := range r.Benchmarks {
		bound := fmt.Sprintf("%d", bc.Cert.Upper)
		if bc.Cert.Lower != bc.Cert.Upper {
			bound = fmt.Sprintf("[%d,%d]", bc.Cert.Lower, bc.Cert.Upper)
		}
		fmt.Fprintf(w, "%-14s %-8s %-12s", bc.Bench, bc.Cert.Verdict, bound)
		for _, a := range bc.Arms {
			fmt.Fprintf(w, " %7d %8s", a.Cost, pctString(a.GapPct))
		}
		fmt.Fprintf(w, " %10d\n", bc.Cert.BBNodes)
	}
	fmt.Fprintf(w, "%d benchmarks: %d optimal, %d bounded, %d budget-exhausted; worst proven gap %s\n",
		len(r.Benchmarks), r.Optimal, r.Bounded, r.Exhausted, pctString(r.MaxGapPct))
}

// pctString renders a gap percentage, with the -1 sentinel spelled out.
func pctString(pct float64) string {
	if pct < 0 {
		return "n/a"
	}
	return fmt.Sprintf("+%.3g%%", pct)
}
