package corpus

// Certified sample: the population-scale arm of the certified-
// optimality engine. Where Run re-tests the paper's cycle-count claims
// statistically, Certify re-tests the partitioner itself — it runs the
// internal/exact branch-and-bound on a seeded sample of generated
// programs' interference graphs and states, per archetype, what
// fraction of them each heuristic solves provably optimally.

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"

	"dualbank/internal/alloc"
	"dualbank/internal/exact"
	"dualbank/internal/genmc"
	"dualbank/internal/pipeline"
)

// CertifyOptions configures a certified sample.
type CertifyOptions struct {
	// N is the number of generated programs in the sample.
	N int
	// Seed selects the population exactly as Options.Seed does, so the
	// certified sample of (N, Seed) is a prefix-compatible slice of the
	// corpus Run measures.
	Seed uint64
	// Workers bounds parallelism (default GOMAXPROCS). Any width
	// produces an identical report.
	Workers int
	// NodeBudget is the branch-and-bound budget per program
	// (0 = exact.DefaultNodeBudget).
	NodeBudget int64
	// Progress, when non-nil, is called after each program completes.
	Progress func(done, total int)
}

// CertRow is one generated program's certification outcome.
type CertRow struct {
	Name      string `json:"name"`
	Archetype string `json:"archetype"`
	Verdict   string `json:"verdict"`
	Lower     int64  `json:"lower"`
	Upper     int64  `json:"upper"`
	Greedy    int64  `json:"greedy"`
	FM        int64  `json:"fm"`
	Anneal    int64  `json:"anneal"`
	BBNodes   int64  `json:"bb_nodes"`
}

// CertArchStats aggregates one archetype's certified sample.
type CertArchStats struct {
	Archetype string `json:"archetype"`
	Programs  int    `json:"programs"`
	// Certified counts programs whose search closed (verdict optimal);
	// the *Optimal fields count, among those, the programs each
	// heuristic solved to the proven optimum.
	Certified     int `json:"certified"`
	GreedyOptimal int `json:"greedy_optimal"`
	FMOptimal     int `json:"fm_optimal"`
	AnnealOptimal int `json:"anneal_optimal"`
}

// CertifyReport is a certified sample's outcome.
type CertifyReport struct {
	N          int             `json:"n"`
	Seed       uint64          `json:"seed"`
	NodeBudget int64           `json:"node_budget"`
	Stats      []CertArchStats `json:"stats"`
	Rows       []CertRow       `json:"rows"`

	// Certified counts programs with a closed (optimal) verdict;
	// FMOptimalPct is the headline number — the percentage of certified
	// programs FM solves provably optimally.
	Certified    int     `json:"certified"`
	FMOptimalPct float64 `json:"fm_optimal_pct"`
}

// Certify runs the certified sample: each generated program's CB
// interference graph goes through the exact solver, and every
// heuristic arm is scored against the proven optimum.
func Certify(ctx context.Context, o CertifyOptions) (*CertifyReport, error) {
	if o.N <= 0 {
		return nil, fmt.Errorf("corpus: N must be positive, got %d", o.N)
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > o.N {
		workers = o.N
	}
	pop := genmc.Population(o.N, o.Seed)
	rows := make([]CertRow, o.N)
	errs := make([]error, o.N)
	var mu sync.Mutex
	done := 0
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cc := new(pipeline.Compiler)
			for i := range next {
				gp := genmc.Generate(pop[i])
				rows[i], errs[i] = certifyGenerated(ctx, gp, cc, o.NodeBudget)
				if o.Progress != nil {
					mu.Lock()
					done++
					o.Progress(done, o.N)
					mu.Unlock()
				}
			}
		}()
	}
feed:
	for i := 0; i < o.N; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	r := &CertifyReport{N: o.N, Seed: o.Seed, Rows: rows}
	if r.NodeBudget = o.NodeBudget; r.NodeBudget <= 0 {
		r.NodeBudget = exact.DefaultNodeBudget
	}
	archs := genmc.Archetypes()
	r.Stats = make([]CertArchStats, len(archs))
	byArch := make(map[string]*CertArchStats, len(archs))
	for i, a := range archs {
		r.Stats[i] = CertArchStats{Archetype: a.String()}
		byArch[a.String()] = &r.Stats[i]
	}
	fmOptimal := 0
	for _, row := range rows {
		s := byArch[row.Archetype]
		if s == nil {
			return nil, fmt.Errorf("corpus: %s: unknown archetype %q", row.Name, row.Archetype)
		}
		s.Programs++
		if row.Verdict != "optimal" {
			continue
		}
		s.Certified++
		r.Certified++
		if row.Greedy == row.Upper {
			s.GreedyOptimal++
		}
		if row.FM == row.Upper {
			s.FMOptimal++
			fmOptimal++
		}
		if row.Anneal == row.Upper {
			s.AnnealOptimal++
		}
	}
	if r.Certified > 0 {
		r.FMOptimalPct = round3(100 * float64(fmOptimal) / float64(r.Certified))
	}
	return r, nil
}

// certifyGenerated certifies one generated program's CB partition.
func certifyGenerated(ctx context.Context, gp genmc.Program, cc *pipeline.Compiler, budget int64) (CertRow, error) {
	c, err := cc.CompileCtx(ctx, gp.Source, gp.Name, pipeline.Options{Mode: alloc.CB})
	if err != nil {
		return CertRow{}, fmt.Errorf("corpus: %s: compile: %w", gp.Name, err)
	}
	g := c.Alloc.Graph
	row := CertRow{
		Name:      gp.Name,
		Archetype: gp.Knobs.Archetype.String(),
		Greedy:    g.Partition().Cost,
		FM:        g.PartitionFM().Cost,
		Anneal:    g.PartitionAnneal(1).Cost,
	}
	res := exact.Solve(g, exact.Options{NodeBudget: budget})
	row.Verdict = res.Cert.Verdict.String()
	row.Lower, row.Upper = res.Cert.Lower, res.Cert.Upper
	row.BBNodes = res.Cert.BBNodes
	for _, arm := range []struct {
		name string
		cost int64
	}{{"greedy", row.Greedy}, {"fm", row.FM}, {"anneal", row.Anneal}} {
		if arm.cost < row.Upper {
			return row, fmt.Errorf("corpus: %s: exact cost %d exceeds %s arm's %d — solver invariant broken",
				gp.Name, row.Upper, arm.name, arm.cost)
		}
	}
	return row, nil
}

// WriteText prints the per-archetype certified-sample table.
func (r *CertifyReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "certified sample: %d generated programs (seed %d), %d certified optimal closures\n",
		r.N, r.Seed, r.Certified)
	fmt.Fprintf(w, "%-10s %5s %9s %10s %10s %10s\n",
		"archetype", "progs", "certified", "greedy-opt", "fm-opt", "anneal-opt")
	for _, s := range r.Stats {
		fmt.Fprintf(w, "%-10s %5d %9d %10d %10d %10d\n",
			s.Archetype, s.Programs, s.Certified, s.GreedyOptimal, s.FMOptimal, s.AnnealOptimal)
	}
	fmt.Fprintf(w, "FM provably optimal on %.3g%% of certified programs\n", r.FMOptimalPct)
}
