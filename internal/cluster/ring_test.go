package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRingDeterministic: two nodes holding the same member set — in
// any order — must agree on every key's placement, or the fleet's
// single-flight guarantee dissolves.
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"n1:1", "n2:2", "n3:3", "n4:4"})
	b := NewRing([]string{"n4:4", "n2:2", "n1:1", "n3:3", "n2:2"})
	if !reflect.DeepEqual(a.Members(), b.Members()) {
		t.Fatalf("member lists differ: %v vs %v", a.Members(), b.Members())
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("run|bench_%d|mode=CB", i)
		if ao, bo := a.Owner(key), b.Owner(key); ao != bo {
			t.Fatalf("key %q: owner %q vs %q", key, ao, bo)
		}
		if ar, br := a.Replicas(key, 2), b.Replicas(key, 2); !reflect.DeepEqual(ar, br) {
			t.Fatalf("key %q: replicas %v vs %v", key, ar, br)
		}
	}
}

// TestRingBalance: with 128 virtual nodes per member, a 4-member ring
// splits 10k keys within a loose 2× band of even.
func TestRingBalance(t *testing.T) {
	members := []string{"n1:1", "n2:2", "n3:3", "n4:4"}
	r := NewRing(members)
	counts := map[string]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("run|key_%d", i))]++
	}
	for _, m := range members {
		n := counts[m]
		if n < keys/len(members)/2 || n > keys*2/len(members) {
			t.Errorf("member %s owns %d of %d keys — outside the 2x band: %v", m, n, keys, counts)
		}
	}
}

// TestRingReplicas: replica sets are distinct members, owner first,
// clamped to the ring size.
func TestRingReplicas(t *testing.T) {
	r := NewRing([]string{"n1:1", "n2:2", "n3:3"})
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key_%d", i)
		reps := r.Replicas(key, 2)
		if len(reps) != 2 {
			t.Fatalf("key %q: %d replicas, want 2", key, len(reps))
		}
		if reps[0] == reps[1] {
			t.Fatalf("key %q: duplicate replica %v", key, reps)
		}
		if reps[0] != r.Owner(key) {
			t.Fatalf("key %q: replica[0]=%q but owner=%q", key, reps[0], r.Owner(key))
		}
	}
	if got := r.Replicas("k", 99); len(got) != 3 {
		t.Errorf("over-asking yields %d replicas, want the whole ring (3)", len(got))
	}
	if got := NewRing(nil).Replicas("k", 2); got != nil {
		t.Errorf("empty ring yields %v, want nil", got)
	}
	if got := NewRing(nil).Owner("k"); got != "" {
		t.Errorf("empty ring owner %q, want empty", got)
	}
}

// TestRingMinimalChurn: removing one member of four must not move keys
// between the survivors — only the dead member's keys reassign. This
// is the property that makes consistent hashing worth its salt over
// mod-N.
func TestRingMinimalChurn(t *testing.T) {
	before := NewRing([]string{"n1:1", "n2:2", "n3:3", "n4:4"})
	after := NewRing([]string{"n1:1", "n2:2", "n3:3"})
	const keys = 5000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key_%d", i)
		ob, oa := before.Owner(key), after.Owner(key)
		if ob == "n4:4" {
			continue // had to move
		}
		if ob != oa {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys moved between surviving members", moved)
	}
}
