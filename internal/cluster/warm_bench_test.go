package cluster_test

import (
	"context"
	"testing"

	"dualbank/internal/cluster"
	"dualbank/internal/serve"
)

// BenchmarkWarmFixture measures the per-request cost of the warm
// (cache-hit) serving path through a single-node fixture — the
// overhead floor every load-generator measurement sits on.
func BenchmarkWarmFixture(b *testing.B) {
	lc, err := cluster.StartLocal(cluster.LocalOptions{
		N: 1, StoreDir: b.TempDir(),
		Serve: serve.Config{Workers: 8},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()
	targets := []string{lc.URL(0)}
	if _, err := cluster.RunLoad(context.Background(), cluster.LoadOptions{
		Targets: targets, Requests: len(cluster.LoadBodies()),
		Concurrency: 8, Skew: "sweep",
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	rep, err := cluster.RunLoad(context.Background(), cluster.LoadOptions{
		Targets: targets, Requests: b.N,
		Concurrency: 32, Skew: "uniform",
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.Throughput, "req/s")
	b.ReportMetric(rep.P50Ms, "p50ms")
}
