package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"dualbank/internal/bench"
)

// Metrics is dspservd's observability surface: request counters by
// status code, an in-flight gauge, and compile/simulate latency
// histograms, rendered in the Prometheus text exposition format (no
// client library — the format is four lines of fmt). The memo cache's
// hit/miss counters are pulled from the harness at scrape time.
type Metrics struct {
	inFlight atomic.Int64

	mu       sync.Mutex
	requests map[int]int64
	compile  histogram
	simulate histogram
	// exploreJobs counts exploration jobs by lifecycle event
	// ("submitted", "done", "failed", "cancelled"); exploreEvals counts
	// their evaluations by source ("run", "cache", "store",
	// "infeasible").
	exploreJobs  map[string]int64
	exploreEvals map[string]int64
	// shed counts load-shed requests by reason ("queue" for bounded
	// admission, "rate" for the per-client limiter).
	shed map[string]int64
	// engineRuns counts measurement dispatches by simulation engine
	// ("compiled", "fast", "machine"), so a deployment's engine mix is
	// visible at a glance.
	engineRuns map[string]int64
}

// latencyBounds are the histogram bucket upper bounds in seconds,
// spanning sub-millisecond cache hits to multi-second hostile sources.
var latencyBounds = [...]float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram. Guarded by Metrics.mu.
type histogram struct {
	counts [len(latencyBounds) + 1]int64 // one per bound, plus +Inf
	sum    float64
	n      int64
}

// observe adds one sample.
func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(latencyBounds[:], v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// quantile estimates q (in [0,1]) by linear interpolation inside the
// owning bucket, saturating at the last finite bound.
func (h *histogram) quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := q * float64(h.n)
	var seen float64
	for i, c := range h.counts {
		if seen+float64(c) < rank || c == 0 {
			seen += float64(c)
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = latencyBounds[i-1]
		}
		hi := lo
		if i < len(latencyBounds) {
			hi = latencyBounds[i]
		}
		return lo + (hi-lo)*(rank-seen)/float64(c)
	}
	return latencyBounds[len(latencyBounds)-1]
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:     make(map[int]int64),
		exploreJobs:  make(map[string]int64),
		exploreEvals: make(map[string]int64),
		shed:         make(map[string]int64),
		engineRuns:   make(map[string]int64),
	}
}

// EngineRun counts one measurement dispatch by simulation engine.
func (m *Metrics) EngineRun(engine string) {
	m.mu.Lock()
	m.engineRuns[engine]++
	m.mu.Unlock()
}

// Shed counts one load-shed request by reason.
func (m *Metrics) Shed(reason string) {
	m.mu.Lock()
	m.shed[reason]++
	m.mu.Unlock()
}

// ExploreJob counts one exploration-job lifecycle event.
func (m *Metrics) ExploreJob(event string) {
	m.mu.Lock()
	m.exploreJobs[event]++
	m.mu.Unlock()
}

// ExploreEval counts one exploration evaluation by result source.
func (m *Metrics) ExploreEval(source string) {
	m.mu.Lock()
	m.exploreEvals[source]++
	m.mu.Unlock()
}

// RequestStart marks a request in flight; the returned func undoes it.
func (m *Metrics) RequestStart() func() {
	m.inFlight.Add(1)
	return func() { m.inFlight.Add(-1) }
}

// RequestDone counts one finished request by HTTP status code.
func (m *Metrics) RequestDone(code int) {
	m.mu.Lock()
	m.requests[code]++
	m.mu.Unlock()
}

// ObserveRun records one successful measurement's phase latencies.
func (m *Metrics) ObserveRun(compileSeconds, simSeconds float64) {
	m.mu.Lock()
	m.compile.observe(compileSeconds)
	m.simulate.observe(simSeconds)
	m.mu.Unlock()
}

// InFlight returns the current in-flight request count.
func (m *Metrics) InFlight() int64 { return m.inFlight.Load() }

// Snapshot is a point-in-time copy of the registry for tests and
// report generation.
type Snapshot struct {
	Requests map[int]int64
	Shed     map[string]int64
	// EngineRuns is the measurement-dispatch count by simulation
	// engine.
	EngineRuns map[string]int64
	InFlight   int64
	// CompileP50/P99 and SimP50/P99 are bucket-interpolated latency
	// quantiles in seconds; Runs is the number of observed
	// measurements.
	CompileP50, CompileP99 float64
	SimP50, SimP99         float64
	Runs                   int64
}

// Snapshot copies the current counters.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Requests:   make(map[int]int64, len(m.requests)),
		Shed:       make(map[string]int64, len(m.shed)),
		EngineRuns: make(map[string]int64, len(m.engineRuns)),
		InFlight:   m.inFlight.Load(),
		CompileP50: m.compile.quantile(0.50),
		CompileP99: m.compile.quantile(0.99),
		SimP50:     m.simulate.quantile(0.50),
		SimP99:     m.simulate.quantile(0.99),
		Runs:       m.compile.n,
	}
	for code, n := range m.requests {
		s.Requests[code] = n
	}
	for reason, n := range m.shed {
		s.Shed[reason] = n
	}
	for engine, n := range m.engineRuns {
		s.EngineRuns[engine] = n
	}
	return s
}

// WriteTo renders the registry in the Prometheus text format, merging
// in the memo cache's traffic and the pool's occupancy.
func (m *Metrics) WriteTo(w io.Writer, cache bench.CacheStats, poolActive int64, poolWorkers int) {
	fmt.Fprintf(w, "# HELP dspservd_in_flight Requests currently being handled.\n")
	fmt.Fprintf(w, "# TYPE dspservd_in_flight gauge\n")
	fmt.Fprintf(w, "dspservd_in_flight %d\n", m.inFlight.Load())

	fmt.Fprintf(w, "# HELP dspservd_pool_active Worker-pool slots currently executing.\n")
	fmt.Fprintf(w, "# TYPE dspservd_pool_active gauge\n")
	fmt.Fprintf(w, "dspservd_pool_active %d\n", poolActive)

	fmt.Fprintf(w, "# HELP dspservd_pool_workers Worker-pool size.\n")
	fmt.Fprintf(w, "# TYPE dspservd_pool_workers gauge\n")
	fmt.Fprintf(w, "dspservd_pool_workers %d\n", poolWorkers)

	fmt.Fprintf(w, "# HELP dspservd_cache_hits_total Memo-cache hits.\n")
	fmt.Fprintf(w, "# TYPE dspservd_cache_hits_total counter\n")
	fmt.Fprintf(w, "dspservd_cache_hits_total %d\n", cache.Hits)
	fmt.Fprintf(w, "# HELP dspservd_cache_misses_total Memo-cache misses (executed measurements).\n")
	fmt.Fprintf(w, "# TYPE dspservd_cache_misses_total counter\n")
	fmt.Fprintf(w, "dspservd_cache_misses_total %d\n", cache.Misses)
	fmt.Fprintf(w, "# HELP dspservd_cache_l2_hits_total Measurements served from the shared L2 result cache.\n")
	fmt.Fprintf(w, "# TYPE dspservd_cache_l2_hits_total counter\n")
	fmt.Fprintf(w, "dspservd_cache_l2_hits_total %d\n", cache.L2Hits)

	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP dspservd_requests_total Finished requests by HTTP status.\n")
	fmt.Fprintf(w, "# TYPE dspservd_requests_total counter\n")
	codes := make([]int, 0, len(m.requests))
	for code := range m.requests {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Fprintf(w, "dspservd_requests_total{code=%q} %d\n", strconv.Itoa(code), m.requests[code])
	}

	writeLabeled(w, "dspservd_shed_total", "Load-shed requests by reason.", "reason", m.shed)
	writeLabeled(w, "dspservd_engine_runs_total", "Measurement dispatches by simulation engine.", "engine", m.engineRuns)
	writeLabeled(w, "dspservd_explore_jobs_total", "Exploration jobs by lifecycle event.", "event", m.exploreJobs)
	writeLabeled(w, "dspservd_explore_evals_total", "Exploration evaluations by result source.", "source", m.exploreEvals)

	writeHistogram(w, "dspservd_compile_seconds", "Compile-phase latency of executed measurements.", &m.compile)
	writeHistogram(w, "dspservd_simulate_seconds", "Simulate-phase latency of executed measurements.", &m.simulate)
}

// writeLabeled renders one counter family with a single string label.
func writeLabeled(w io.Writer, name, help, label string, counts map[string]int64) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s counter\n", name)
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, k, counts[k])
	}
}

func writeHistogram(w io.Writer, name, help string, h *histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum int64
	for i, bound := range latencyBounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(bound, 'g', -1, 64), cum)
	}
	cum += h.counts[len(latencyBounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.n)
}
