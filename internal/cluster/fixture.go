package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"dualbank/internal/explore/store"
	"dualbank/internal/serve"
)

// LocalOptions configures StartLocal.
type LocalOptions struct {
	// N is the node count (default 3).
	N int
	// Replication is each key's replica-set size (default 2).
	Replication int
	// StoreDir, when non-empty, is the shared L2 result-store directory;
	// every node opens its own store handle over it. Empty disables the
	// L2 — each node keeps only its in-memory memo cache.
	StoreDir string
	// Serve is the base per-node server config, copied to every node.
	Serve serve.Config
	// HotK, HotThreshold, HotWindow tune hot-key detection (see Config).
	HotK         int
	HotThreshold int
	HotWindow    time.Duration
	// Configure, when non-nil, edits node i's config after the defaults
	// are applied — the seam for per-node fault injectors, transports,
	// and engine defaults.
	Configure func(i int, cfg *Config)
}

// LocalCluster is an in-process fleet: N nodes, each a real HTTP
// server on its own 127.0.0.1 port, fully meshed through a static
// peer list. It is the fixture behind the cluster tests and
// dsploadgen's self-contained mode; one process stands in for N
// machines, which shares CPU — in-process scaling numbers measure the
// routing tier, not N machines' compute.
type LocalCluster struct {
	nodes []*localNode
}

type localNode struct {
	node    *Node
	httpSrv *http.Server
	ln      net.Listener
	addr    string
	store   *store.Store
	closed  bool
}

// StartLocal boots an N-node cluster on loopback ports. Callers must
// Close it.
func StartLocal(opts LocalOptions) (*LocalCluster, error) {
	if opts.N < 1 {
		opts.N = 3
	}
	lc := &LocalCluster{}
	addrs := make([]string, opts.N)
	lns := make([]net.Listener, opts.N)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			lc.Close()
			return nil, fmt.Errorf("cluster: listen: %w", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for i := range lns {
		peers := make([]string, 0, opts.N-1)
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		cfg := Config{
			Self:         addrs[i],
			Peers:        peers,
			Replication:  opts.Replication,
			HotK:         opts.HotK,
			HotThreshold: opts.HotThreshold,
			HotWindow:    opts.HotWindow,
			Serve:        opts.Serve,
		}
		var st *store.Store
		if opts.StoreDir != "" {
			var err error
			if st, err = store.Open(opts.StoreDir); err != nil {
				lc.Close()
				return nil, fmt.Errorf("cluster: store: %w", err)
			}
			cfg.Serve.ResultCache = NewStoreCache(st)
		}
		if opts.Configure != nil {
			opts.Configure(i, &cfg)
		}
		node := New(cfg)
		hs := &http.Server{Handler: node.Handler()}
		ln := &localNode{node: node, httpSrv: hs, ln: lns[i], addr: addrs[i], store: st}
		lc.nodes = append(lc.nodes, ln)
		go hs.Serve(lns[i])
	}
	return lc, nil
}

// N returns the node count.
func (lc *LocalCluster) N() int { return len(lc.nodes) }

// Addr returns node i's address.
func (lc *LocalCluster) Addr(i int) string { return lc.nodes[i].addr }

// URL returns node i's base URL.
func (lc *LocalCluster) URL(i int) string { return "http://" + lc.nodes[i].addr }

// Addrs returns every node's address.
func (lc *LocalCluster) Addrs() []string {
	out := make([]string, len(lc.nodes))
	for i, n := range lc.nodes {
		out[i] = n.addr
	}
	return out
}

// Node returns node i.
func (lc *LocalCluster) Node(i int) *Node { return lc.nodes[i].node }

// Store returns node i's handle on the shared store (nil without one).
func (lc *LocalCluster) Store(i int) *store.Store { return lc.nodes[i].store }

// Kill abruptly stops node i: open connections are torn down and
// in-flight work is cancelled, as a crashed process would. The node
// announces nothing — peers discover the death through forward
// failures and their cooldown cache.
func (lc *LocalCluster) Kill(i int) {
	n := lc.nodes[i]
	if n.closed {
		return
	}
	n.closed = true
	n.httpSrv.Close()
	n.node.Close()
}

// Drain gracefully stops node i: readiness flips and departure is
// announced to the peers first, then the HTTP server drains in-flight
// requests, then the worker pool stops.
func (lc *LocalCluster) Drain(ctx context.Context, i int) {
	n := lc.nodes[i]
	if n.closed {
		return
	}
	n.closed = true
	n.node.BeginDrain()
	n.httpSrv.Shutdown(ctx)
	n.node.Close()
}

// Close tears down every remaining node.
func (lc *LocalCluster) Close() {
	for i := range lc.nodes {
		lc.Kill(i)
	}
}
