package corpus_test

import (
	"context"
	"testing"

	"dualbank/internal/genmc"
	"dualbank/internal/genmc/corpus"
	"dualbank/internal/pipeline"
)

// FuzzGenMC explores the generator's whole input space — the seed and
// every knob, unclamped — and runs each resulting program through the
// corpus gauntlet: three allocation arms, reference-vs-fast-vs-compiled
// engine differentials, and the generator's own evaluator as the
// output oracle. Generate clamps hostile knob values, so every input
// must yield a program that verifies clean; any failure is either a
// generator emitting an unsafe program or a compiler/simulator bug.
// CI runs this briefly in the fuzz-smoke step; the checked-in corpus
// seeds one program per archetype.
func FuzzGenMC(f *testing.F) {
	for i, a := range genmc.Archetypes() {
		f.Add(uint8(a), uint64(i+1), 3, 64, 2, 1, 2)
	}
	cc := new(pipeline.Compiler)
	f.Fuzz(func(t *testing.T, arch uint8, seed uint64, arrays, size, loops, depth, stmts int) {
		k := genmc.Knobs{
			Archetype: genmc.Archetype(arch % 3),
			Seed:      seed,
			Arrays:    arrays,
			Size:      size,
			Loops:     loops,
			Depth:     depth,
			Stmts:     stmts,
		}
		p := genmc.Generate(k)
		_, fails := corpus.VerifyProgram(context.Background(), p, cc, false)
		for _, msg := range fails {
			t.Errorf("%s", msg)
		}
		if len(fails) != 0 {
			t.Fatalf("knobs %+v generated a failing program:\n%s", k, p.Source)
		}
	})
}
