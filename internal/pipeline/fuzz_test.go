package pipeline

// Property-based whole-compiler testing: random MiniC programs are
// generated together with a Go-side evaluator that mirrors the
// architecture's 32-bit semantics exactly. Each program is compiled
// under several allocation modes, executed on the VLIW machine
// simulator, and its outputs compared word-for-word with the
// evaluator. Any divergence indicts some stage of the pipeline —
// front-end, optimizer, register allocator, data allocator, scheduler,
// or simulator.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"dualbank/internal/alloc"
	"dualbank/internal/compact"

	"dualbank/internal/opt"
)

// exprNode is a generated expression: its MiniC spelling plus an
// evaluator over the current variable environment.
type exprNode struct {
	src  string
	eval func(env map[string]int32) int32
}

type exprGen struct {
	rng  *rand.Rand
	vars []string // readable scalar variables
}

func lit(v int32) exprNode {
	s := fmt.Sprintf("%d", v)
	if v < 0 {
		s = fmt.Sprintf("(%d)", v)
	}
	return exprNode{src: s, eval: func(map[string]int32) int32 { return v }}
}

func (g *exprGen) leaf() exprNode {
	if len(g.vars) > 0 && g.rng.Intn(2) == 0 {
		name := g.vars[g.rng.Intn(len(g.vars))]
		return exprNode{src: name, eval: func(env map[string]int32) int32 { return env[name] }}
	}
	return lit(int32(g.rng.Intn(201) - 100))
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

func (g *exprGen) gen(depth int) exprNode {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		return g.leaf()
	}
	switch g.rng.Intn(12) {
	case 0: // unary minus
		x := g.gen(depth - 1)
		return exprNode{
			src:  "(-" + x.src + ")",
			eval: func(e map[string]int32) int32 { return -x.eval(e) },
		}
	case 1: // bitwise not
		x := g.gen(depth - 1)
		return exprNode{
			src:  "(~" + x.src + ")",
			eval: func(e map[string]int32) int32 { return ^x.eval(e) },
		}
	case 2: // logical not
		x := g.gen(depth - 1)
		return exprNode{
			src:  "(!" + x.src + ")",
			eval: func(e map[string]int32) int32 { return b2i(x.eval(e) == 0) },
		}
	case 3: // shift by a literal amount
		x := g.gen(depth - 1)
		k := int32(g.rng.Intn(31))
		op := ">>"
		if g.rng.Intn(2) == 0 {
			op = "<<"
		}
		return exprNode{
			src: fmt.Sprintf("(%s %s %d)", x.src, op, k),
			eval: func(e map[string]int32) int32 {
				if op == "<<" {
					return x.eval(e) << uint(k)
				}
				return x.eval(e) >> uint(k)
			},
		}
	case 4: // ternary
		c, a, b := g.gen(depth-1), g.gen(depth-1), g.gen(depth-1)
		return exprNode{
			src: fmt.Sprintf("(%s ? %s : %s)", c.src, a.src, b.src),
			eval: func(e map[string]int32) int32 {
				if c.eval(e) != 0 {
					return a.eval(e)
				}
				return b.eval(e)
			},
		}
	case 5: // short-circuit
		a, b := g.gen(depth-1), g.gen(depth-1)
		if g.rng.Intn(2) == 0 {
			return exprNode{
				src: fmt.Sprintf("(%s && %s)", a.src, b.src),
				eval: func(e map[string]int32) int32 {
					if a.eval(e) == 0 {
						return 0
					}
					return b2i(b.eval(e) != 0)
				},
			}
		}
		return exprNode{
			src: fmt.Sprintf("(%s || %s)", a.src, b.src),
			eval: func(e map[string]int32) int32 {
				if a.eval(e) != 0 {
					return 1
				}
				return b2i(b.eval(e) != 0)
			},
		}
	case 6: // comparison
		a, b := g.gen(depth-1), g.gen(depth-1)
		ops := []string{"==", "!=", "<", "<=", ">", ">="}
		op := ops[g.rng.Intn(len(ops))]
		return exprNode{
			src: fmt.Sprintf("(%s %s %s)", a.src, op, b.src),
			eval: func(e map[string]int32) int32 {
				x, y := a.eval(e), b.eval(e)
				switch op {
				case "==":
					return b2i(x == y)
				case "!=":
					return b2i(x != y)
				case "<":
					return b2i(x < y)
				case "<=":
					return b2i(x <= y)
				case ">":
					return b2i(x > y)
				}
				return b2i(x >= y)
			},
		}
	default: // binary arithmetic / bitwise
		a, b := g.gen(depth-1), g.gen(depth-1)
		ops := []string{"+", "-", "*", "&", "|", "^"}
		op := ops[g.rng.Intn(len(ops))]
		return exprNode{
			src: fmt.Sprintf("(%s %s %s)", a.src, op, b.src),
			eval: func(e map[string]int32) int32 {
				x, y := a.eval(e), b.eval(e)
				switch op {
				case "+":
					return x + y
				case "-":
					return x - y
				case "*":
					return x * y
				case "&":
					return x & y
				case "|":
					return x | y
				}
				return x ^ y
			},
		}
	}
}

// genProgram builds a random program: global scalars with constant
// initializers, a counted loop whose body reassigns them with random
// expressions (over the globals and the loop counter), and an output
// array capturing the final values. It returns the source and the
// expected outputs from the mirrored evaluator.
func genProgram(rng *rand.Rand) (src string, want []int32) {
	g := &exprGen{rng: rng}
	nVars := 2 + rng.Intn(4)
	trips := 1 + rng.Intn(9)

	env := map[string]int32{}
	var sb strings.Builder
	for i := 0; i < nVars; i++ {
		name := fmt.Sprintf("v%d", i)
		init := int32(rng.Intn(101) - 50)
		env[name] = init
		fmt.Fprintf(&sb, "int %s = %d;\n", name, init)
		g.vars = append(g.vars, name)
	}
	fmt.Fprintf(&sb, "int out[%d];\n", nVars)
	fmt.Fprintf(&sb, "void main() {\n\tint i;\n\tfor (i = 0; i < %d; i++) {\n", trips)

	// The loop counter is readable inside expressions.
	g.vars = append(g.vars, "i")
	nStmts := 1 + rng.Intn(4)
	type stmt struct {
		target string
		e      exprNode
	}
	var stmts []stmt
	for s := 0; s < nStmts; s++ {
		target := fmt.Sprintf("v%d", rng.Intn(nVars))
		e := g.gen(3)
		stmts = append(stmts, stmt{target, e})
		fmt.Fprintf(&sb, "\t\t%s = %s;\n", target, e.e())
	}
	sb.WriteString("\t}\n")
	for i := 0; i < nVars; i++ {
		fmt.Fprintf(&sb, "\tout[%d] = v%d;\n", i, i)
	}
	sb.WriteString("}\n")

	// Mirror execution.
	for it := int32(0); it < int32(trips); it++ {
		env["i"] = it
		for _, s := range stmts {
			env[s.target] = s.e.eval(env)
		}
	}
	want = make([]int32, nVars)
	for i := range want {
		want[i] = env[fmt.Sprintf("v%d", i)]
	}
	return sb.String(), want
}

// e returns the expression source (helper so the struct literal above
// stays compact).
func (n exprNode) e() string { return n.src }

var fuzzModes = []alloc.Mode{alloc.SingleBank, alloc.CB, alloc.CBDup, alloc.Ideal}

// TestRandomProgramsAllStages is the whole-pipeline differential test.
func TestRandomProgramsAllStages(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	for seed := 0; seed < n; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		src, want := genProgram(rng)
		for _, mode := range fuzzModes {
			c, err := Compile(src, fmt.Sprintf("fuzz%d", seed), Options{Mode: mode})
			if err != nil {
				t.Fatalf("seed %d mode %v: compile: %v\nsource:\n%s", seed, mode, err, src)
			}
			if err := compact.Validate(c.Sched); err != nil {
				t.Fatalf("seed %d mode %v: schedule: %v\nsource:\n%s", seed, mode, err, src)
			}
			m, err := c.Run()
			if err != nil {
				t.Fatalf("seed %d mode %v: run: %v\nsource:\n%s", seed, mode, err, src)
			}
			out := c.Global("out")
			for i, w := range want {
				got, err := m.Int32(out, i)
				if err != nil {
					t.Fatal(err)
				}
				if got != w {
					t.Fatalf("seed %d mode %v: out[%d] = %d, want %d\nsource:\n%s",
						seed, mode, i, got, w, src)
				}
			}
		}
	}
}

// TestRandomProgramsOptimizerAblations re-runs a slice of the fuzz
// corpus with each optimizer feature disabled, guarding the ablation
// configurations against miscompilation.
func TestRandomProgramsOptimizerAblations(t *testing.T) {
	ablations := []opt.Options{
		{NoMACFusion: true},
		{NoLoopShaping: true},
		{NoStrengthReduce: true},
		{NoConstHoist: true},
		{NoMACFusion: true, NoLoopShaping: true, NoStrengthReduce: true, NoConstHoist: true},
	}
	for seed := 100; seed < 115; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		src, want := genProgram(rng)
		for ai, ab := range ablations {
			c, err := Compile(src, fmt.Sprintf("abl%d", seed), Options{Mode: alloc.CB, Opt: ab})
			if err != nil {
				t.Fatalf("seed %d ablation %d: %v\nsource:\n%s", seed, ai, err, src)
			}
			m, err := c.Run()
			if err != nil {
				t.Fatalf("seed %d ablation %d: run: %v\nsource:\n%s", seed, ai, err, src)
			}
			out := c.Global("out")
			for i, w := range want {
				got, err := m.Int32(out, i)
				if err != nil {
					t.Fatal(err)
				}
				if got != w {
					t.Fatalf("seed %d ablation %d: out[%d] = %d, want %d\nsource:\n%s",
						seed, ai, i, got, w, src)
				}
			}
		}
	}
}
