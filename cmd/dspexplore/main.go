// Command dspexplore searches each benchmark's back-end design space —
// partitioning algorithm, profile weighting, FM refinement budget, and
// per-array duplication subsets — and reports the exact Pareto
// frontier of cycle count versus memory cost (Cost = X + Y + 2·S + I),
// with a verdict against the paper's fixed CB design point.
//
// The search is deterministic at any -workers width: the same inputs
// always produce byte-identical frontiers. With -checkpoint the engine
// writes every completed evaluation to a content-addressed store and a
// re-run resumes from it, replaying finished measurements instead of
// re-simulating (disable replay with -resume=false; checkpoints are
// still written).
//
// Usage:
//
//	dspexplore [-benchmark name[,name...]] [-kernels] [-apps]
//	           [-budget N] [-workers N] [-exactk K] [-banks N] [-ports P]
//	           [-checkpoint dir] [-resume=false] [-fault-profile spec]
//	           [-json path] [-csv path] [-quiet]
//	dspexplore -certify path [-certify-budget N]
//	dspexplore -bench-report path
//	dspexplore -hw-report path [-hw-grid B1xP1,B2xP2,...]
//	dspexplore -list
//
// -banks/-ports pin the exploration to one machine geometry (bank
// count × ports per bank; the default 2×1 is the paper's machine).
// -hw-report instead sweeps a geometry grid with a fixed compiler-arm
// set and writes the three-axis Pareto surface — cycles × memory cost
// × hardware cost — per benchmark (BENCH_hw.json).
//
// -certify runs the certified-optimality sweep instead of a design-
// space exploration: every selected benchmark's interference graph
// (all 23 when none are named) goes through the internal/exact
// branch-and-bound bipartitioner, and the report states each heuristic
// arm's proven optimality gap. The node budget makes the report
// deterministic at any -workers width, so the JSON written to path is
// a byte-stable baseline fit for version control (BENCH_gaps.json).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"dualbank/internal/bench"
	"dualbank/internal/explore"
	"dualbank/internal/explore/store"
	"dualbank/internal/faultinject"
	"dualbank/internal/machine"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// benchReportSuite is the pinned suite behind -bench-report: small
// representatives of each kernel family plus two Table 2 applications,
// explored with the default budget. The engine is deterministic, so
// the emitted JSON is a byte-stable baseline fit for version control.
var benchReportSuite = []string{
	"fir_32_1", "iir_1_1", "mult_4_4", "fft_256", "adpcm", "histogram",
}

// run is main with injectable streams and exit code, so the smoke
// tests can drive the whole driver in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dspexplore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	benchmarks := fs.String("benchmark", "", "comma-separated benchmark names to explore (see -list)")
	kernels := fs.Bool("kernels", false, "explore the Table 1 kernel suite")
	apps := fs.Bool("apps", false, "explore the Table 2 application suite")
	list := fs.Bool("list", false, "list benchmark names")
	budget := fs.Int("budget", 200, "evaluation budget per benchmark")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent evaluations (any width is deterministic)")
	exactK := fs.Int("exactk", 4, "exhaustively enumerate duplication subsets up to this many arrays; hill-climb beyond")
	banks := fs.Int("banks", 0, "data-bank count (0 = the classic 2)")
	ports := fs.Int("ports", 0, "ports per bank (0 = the classic 1)")
	hwReport := fs.String("hw-report", "", "sweep machine geometries and write the 3-axis Pareto surface JSON here")
	hwGrid := fs.String("hw-grid", "2x1,3x1,4x1,2x2,3x2,4x2", "comma-separated BxP geometries for -hw-report")
	checkpoint := fs.String("checkpoint", "", "checkpoint completed evaluations to this directory")
	resume := fs.Bool("resume", true, "replay existing checkpoints instead of re-simulating (needs -checkpoint)")
	faultProfile := fs.String("fault-profile", "", "inject checkpoint-store faults per this profile (requires DSP_FAULT_ENABLE=1)")
	jsonPath := fs.String("json", "", "write the full report as JSON to this file")
	csvPath := fs.String("csv", "", "write the frontier points as CSV to this file")
	benchReport := fs.String("bench-report", "", "explore the pinned baseline suite and write its report JSON here")
	certify := fs.String("certify", "", "run the certified-optimality sweep and write its gap report JSON here")
	certifyBudget := fs.Int64("certify-budget", 0, "branch-and-bound node budget per benchmark (0 = library default)")
	quiet := fs.Bool("quiet", false, "suppress the progress stream on stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, n := range bench.Names() {
			fmt.Fprintln(stdout, n)
		}
		return 0
	}

	var names []string
	if *benchReport != "" {
		names = benchReportSuite
	} else if *certify != "" || *hwReport != "" || *banks != 0 || *ports != 0 {
		// The certified and hardware sweeps — and explorations pinned to
		// a non-default machine geometry — default to the full suite;
		// explicit selections narrow them.
		if *kernels || *apps || *benchmarks != "" {
			if *kernels {
				for _, p := range bench.Kernels() {
					names = append(names, p.Name)
				}
			}
			if *apps {
				for _, p := range bench.Applications() {
					names = append(names, p.Name)
				}
			}
			for _, n := range strings.Split(*benchmarks, ",") {
				if n = strings.TrimSpace(n); n != "" {
					names = append(names, n)
				}
			}
		} else {
			for _, p := range append(bench.Kernels(), bench.Applications()...) {
				names = append(names, p.Name)
			}
		}
	} else {
		if *kernels {
			for _, p := range bench.Kernels() {
				names = append(names, p.Name)
			}
		}
		if *apps {
			for _, p := range bench.Applications() {
				names = append(names, p.Name)
			}
		}
		for _, n := range strings.Split(*benchmarks, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	if len(names) == 0 {
		fmt.Fprintln(stderr, "dspexplore: nothing to explore (use -benchmark, -kernels, -apps, or -bench-report; -list shows names)")
		return 2
	}
	progs := make([]bench.Program, 0, len(names))
	for _, n := range names {
		p, ok := bench.ByName(n)
		if !ok {
			fmt.Fprintf(stderr, "dspexplore: unknown benchmark %q (use -list)\n", n)
			return 2
		}
		progs = append(progs, p)
	}

	if *certify != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		copts := explore.CertifyOptions{NodeBudget: *certifyBudget, Workers: *workers}
		if !*quiet {
			copts.Progress = func(ev explore.CertifyEvent) {
				fmt.Fprintf(stderr, "dspexplore: certify %-14s %2d/%-2d %-8s %d B&B nodes\n",
					ev.Bench, ev.Done, ev.Total, ev.Verdict, ev.BBNodes)
			}
		}
		rep, err := explore.Certify(ctx, progs, copts)
		if err != nil {
			fmt.Fprintln(stderr, "dspexplore:", err)
			return 1
		}
		rep.WriteText(stdout)
		if err := writeJSON(*certify, rep); err != nil {
			fmt.Fprintln(stderr, "dspexplore:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *certify)
		return 0
	}

	if *hwReport != "" {
		specs, err := parseHWGrid(*hwGrid)
		if err != nil {
			fmt.Fprintln(stderr, "dspexplore:", err)
			return 2
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		h := bench.NewHarness(*workers)
		rep, err := explore.ExploreHW(ctx, progs, specs, explore.Options{Harness: h})
		if err != nil {
			fmt.Fprintln(stderr, "dspexplore:", err)
			return 1
		}
		writeHWText(stdout, rep)
		if err := writeJSON(*hwReport, rep); err != nil {
			fmt.Fprintln(stderr, "dspexplore:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *hwReport)
		return 0
	}

	opts := explore.Options{
		Budget:   *budget,
		Workers:  *workers,
		ExactK:   *exactK,
		NoResume: !*resume,
		Banks:    *banks,
		Ports:    *ports,
	}
	inj, err := faultinject.FromFlag(*faultProfile)
	if err != nil {
		fmt.Fprintln(stderr, "dspexplore:", err)
		return 2
	}
	if *checkpoint != "" {
		var st *store.Store
		var err error
		if inj != nil {
			fmt.Fprintf(stderr, "dspexplore: FAULT INJECTION ACTIVE on checkpoint store (%s)\n", *faultProfile)
			st, err = store.OpenFS(*checkpoint, faultinject.NewFaultFS(faultinject.OSFS{}, inj))
		} else {
			st, err = store.Open(*checkpoint)
		}
		if err != nil {
			fmt.Fprintln(stderr, "dspexplore:", err)
			return 1
		}
		opts.Store = st
		if *resume && st.Len() > 0 {
			fmt.Fprintf(stderr, "dspexplore: resuming from %d checkpointed evaluations in %s\n", st.Len(), *checkpoint)
		}
	}
	if !*quiet {
		opts.Progress = func(ev explore.Event) {
			fmt.Fprintf(stderr, "dspexplore: %-12s %3d/%-3d %-10s %-40s", ev.Bench, ev.Done, ev.Planned, ev.Source, ev.Config)
			if ev.Source != "infeasible" {
				fmt.Fprintf(stderr, " %8d cycles %6d words", ev.Cycles, ev.Cost)
			}
			fmt.Fprintln(stderr)
		}
	}

	// SIGINT/SIGTERM cancel the exploration; completed evaluations are
	// already checkpointed, so a re-run with -checkpoint resumes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := explore.Explore(ctx, progs, opts)
	if err != nil {
		fmt.Fprintln(stderr, "dspexplore:", err)
		return 1
	}

	rep.WriteText(stdout)
	if *jsonPath != "" || *benchReport != "" {
		path := *jsonPath
		if path == "" {
			path = *benchReport
		}
		if err := writeJSON(path, rep); err != nil {
			fmt.Fprintln(stderr, "dspexplore:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", path)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err == nil {
			err = rep.WriteCSV(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(stderr, "dspexplore:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *csvPath)
	}
	return 0
}

// parseHWGrid parses the -hw-grid flag: comma-separated "BxP"
// geometries.
func parseHWGrid(s string) ([]machine.BankSpec, error) {
	var specs []machine.BankSpec
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		var b, p int
		if _, err := fmt.Sscanf(field, "%dx%d", &b, &p); err != nil {
			return nil, fmt.Errorf("bad -hw-grid geometry %q (want BxP)", field)
		}
		spec := machine.BankSpec{Banks: b, PortsPerBank: p}
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("empty -hw-grid")
	}
	return specs, nil
}

// writeHWText renders the sweep's per-benchmark frontiers.
func writeHWText(w io.Writer, rep *explore.HWReport) {
	fmt.Fprintf(w, "hardware co-design sweep: %s over %d benchmarks\n",
		strings.Join(rep.Geometries, " "), len(rep.Benchmarks))
	for _, br := range rep.Benchmarks {
		fmt.Fprintf(w, "%s: %d points, frontier:\n", br.Bench, len(br.Points))
		for _, pt := range br.Frontier {
			fmt.Fprintf(w, "  %dx%d hw=%-3d %8d cycles %6d words  %s\n",
				pt.Banks, pt.Ports, pt.HW, pt.Cycles, pt.Cost, pt.Config)
		}
	}
}

func writeJSON(path string, rep any) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
