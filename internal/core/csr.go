package core

// CSR is the compressed-sparse-row adjacency view of an interference
// graph: node i's incident half-edges occupy Adj[Start[i]:Start[i+1]]
// (neighbour node indices) with parallel weights in W. It is built
// once per program from the flat edge store and shared by every
// partitioner, replacing the per-partitioner adjacency rebuilds (and
// the map-keyed edge lookups) of the original implementation.
type CSR struct {
	Start []int32 // len(Nodes)+1 row offsets
	Adj   []int32 // neighbour indices, 2×Edges entries
	W     []int64 // weight of the edge to Adj[h]
	Total int64   // summed weight of all edges
}

// Degree returns the number of edges incident to node i.
func (c *CSR) Degree(i int) int { return int(c.Start[i+1] - c.Start[i]) }

// weightedDegree returns the summed weight of node i's incident edges
// — the maximum possible gain of moving i, which bounds the gain-
// bucket range.
func (c *CSR) weightedDegree(i int) int64 {
	var d int64
	for h := c.Start[i]; h < c.Start[i+1]; h++ {
		d += c.W[h]
	}
	return d
}

// CSR returns the graph's adjacency in compressed-sparse-row form,
// building it on first use and caching it until the edge set changes.
// Within a row, neighbours appear in edge-insertion order, so the view
// is deterministic.
func (g *Graph) CSR() *CSR {
	if g.csr != nil {
		return g.csr
	}
	n := len(g.Nodes)
	c := &CSR{
		Start: make([]int32, n+1),
		Adj:   make([]int32, 2*len(g.edges)),
		W:     make([]int64, 2*len(g.edges)),
	}
	for _, e := range g.edges {
		c.Start[e.u+1]++
		c.Start[e.v+1]++
		c.Total += e.w
	}
	for i := 0; i < n; i++ {
		c.Start[i+1] += c.Start[i]
	}
	// Fill using Start as a moving cursor, then shift it back: after
	// the loop Start[i] has advanced to the old Start[i+1].
	for _, e := range g.edges {
		c.Adj[c.Start[e.u]] = e.v
		c.W[c.Start[e.u]] = e.w
		c.Start[e.u]++
		c.Adj[c.Start[e.v]] = e.u
		c.W[c.Start[e.v]] = e.w
		c.Start[e.v]++
	}
	for i := n; i > 0; i-- {
		c.Start[i] = c.Start[i-1]
	}
	c.Start[0] = 0
	g.csr = c
	return c
}

// cutCost returns the summed weight of edges whose endpoints share a
// side under the given assignment (inY[i] == true means node i is in
// bank Y).
func (c *CSR) cutCost(inY []bool) int64 {
	var cost int64
	for i := range inY {
		for h := c.Start[i]; h < c.Start[i+1]; h++ {
			if j := c.Adj[h]; int(j) > i && inY[j] == inY[i] {
				cost += c.W[h]
			}
		}
	}
	return cost
}

// moveGain is the cost decrease from flipping node i to the other side.
func (c *CSR) moveGain(inY []bool, i int) int64 {
	var same, cross int64
	for h := c.Start[i]; h < c.Start[i+1]; h++ {
		if inY[c.Adj[h]] == inY[i] {
			same += c.W[h]
		} else {
			cross += c.W[h]
		}
	}
	return same - cross
}
