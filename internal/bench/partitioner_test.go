package bench

import (
	"testing"

	"dualbank/internal/alloc"
	"dualbank/internal/compact"
	"dualbank/internal/core"
	"dualbank/internal/pipeline"
)

// TestPartitionerComparison reproduces the Princeton finding the
// paper's related-work section leans on: a computationally expensive
// partitioner (simulated annealing) buys essentially nothing over the
// simple greedy heuristic — which is the paper's justification for
// using the greedy algorithm. Kernighan-Lin refinement likewise only
// marginally moves the needle.
func TestPartitionerComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison study in short mode")
	}
	suite := []string{
		"fir_256_64", "iir_4_64", "latnrm_32_64", "mult_10_10",
		"fft_256", "lpc", "edge_detect", "V32encode", "trellis",
	}
	methods := []core.Method{core.MethodGreedy, core.MethodKL, core.MethodAnneal}
	for _, name := range suite {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("no benchmark %q", name)
		}
		cycles := map[core.Method]int64{}
		for _, m := range methods {
			c, err := pipeline.Compile(p.Source, name, pipeline.Options{
				Mode: alloc.CB, Partitioner: m,
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, m, err)
			}
			if err := compact.Validate(c.Sched); err != nil {
				t.Fatalf("%s/%v: %v", name, m, err)
			}
			mach, err := c.Run()
			if err != nil {
				t.Fatalf("%s/%v: %v", name, m, err)
			}
			if p.Check != nil {
				read := func(gn string, idx int) (uint32, error) {
					return mach.Word(c.Global(gn), idx)
				}
				if err := p.Check(read); err != nil {
					t.Fatalf("%s/%v: wrong output: %v", name, m, err)
				}
			}
			cycles[m] = mach.Cycles
		}
		greedy := float64(cycles[core.MethodGreedy])
		for _, m := range methods[1:] {
			ratio := float64(cycles[m]) / greedy
			// Comparable means within ~15% either way; typically they
			// are identical.
			if ratio > 1.15 || ratio < 0.70 {
				t.Errorf("%s: %v gives %d cycles vs greedy %d (ratio %.2f) — not comparable",
					name, m, cycles[m], cycles[core.MethodGreedy], ratio)
			}
		}
		t.Logf("%-14s greedy=%-8d kl=%-8d anneal=%-8d",
			name, cycles[core.MethodGreedy], cycles[core.MethodKL], cycles[core.MethodAnneal])
	}
}
