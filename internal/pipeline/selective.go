package pipeline

import (
	"fmt"
	"sort"

	"dualbank/internal/alloc"
	"dualbank/internal/cost"
)

// This file implements the selective-duplication refinement the paper
// proposes in its summary (§5): "If the Performance/Cost Ratio is too
// low, a further refinement is to determine whether some of these
// arrays do not have to be duplicated because doing so would not
// significantly affect performance." §4.2 adds that the compiler can
// be more selective given the designer's performance and area budgets.
//
// The implementation evaluates duplication candidates greedily: each
// array the interference analysis marks is trialled by compiling and
// simulating the program with the candidate added to the duplication
// set, and it is kept only when it improves the Performance/Cost Ratio
// (and respects the designer's optional cost ceiling). The evaluation
// uses the instruction-set simulator as its performance oracle, which
// stands in for the profile-driven estimate the paper sketches.

// SelectiveOptions carries the designer-supplied constraints of §4.2.
type SelectiveOptions struct {
	// MaxCostIncrease, if positive, rejects any duplication set whose
	// cost ratio over the unoptimized program exceeds it (the
	// designer's area budget), even if the PCR would improve.
	MaxCostIncrease float64
	// MinGain is the minimum cycle-count improvement (relative, e.g.
	// 0.02 for 2%) a candidate must contribute over the current best
	// configuration to be kept. Zero keeps any strict improvement that
	// also improves PCR.
	MinGain float64
	// Opt configures the optimizer for every trial compile.
	Opt OptForward
}

// OptForward mirrors opt.Options without importing it at every call
// site; zero value means all optimizations on.
type OptForward struct {
	NoMACFusion      bool
	NoLoopShaping    bool
	NoStrengthReduce bool
}

// Trial records one candidate evaluation.
type Trial struct {
	Symbol string
	Kept   bool
	// Cycles/PG/CI/PCR of the configuration with this candidate added
	// to the duplication set as it stood when trialled.
	Cycles int64
	PG     float64
	CI     float64
	PCR    float64
	Reason string
}

// SelectiveResult is the outcome of selective duplication.
type SelectiveResult struct {
	// Compiled is the final program, with only the chosen arrays
	// duplicated.
	Compiled *Compiled
	// Candidates are the arrays the analysis marked; Chosen those kept.
	Candidates []string
	Chosen     []string
	Trials     []Trial
	// Base metrics: the plain CB configuration the trials improve on.
	BaseCycles int64
	BasePCR    float64
}

// CompileSelective compiles source with CB partitioning plus
// PCR-driven selective duplication.
func CompileSelective(source, name string, sel SelectiveOptions) (*SelectiveResult, error) {
	baseOpts := Options{Mode: alloc.CBDup, DupOnly: map[string]bool{}}
	baseOpts.Opt.NoMACFusion = sel.Opt.NoMACFusion
	baseOpts.Opt.NoLoopShaping = sel.Opt.NoLoopShaping
	baseOpts.Opt.NoStrengthReduce = sel.Opt.NoStrengthReduce

	// The unoptimized reference for PG/CI.
	refOpts := baseOpts
	refOpts.Mode = alloc.SingleBank
	refOpts.DupOnly = nil
	ref, err := Compile(source, name, refOpts)
	if err != nil {
		return nil, err
	}
	refMach, err := ref.Run()
	if err != nil {
		return nil, err
	}
	refMem := cost.Of(ref.Alloc, ref.Sched)

	evaluate := func(dup map[string]bool) (*Compiled, int64, cost.Metrics, error) {
		o := baseOpts
		o.DupOnly = dup
		c, err := Compile(source, name, o)
		if err != nil {
			return nil, 0, cost.Metrics{}, err
		}
		m, err := c.Run()
		if err != nil {
			return nil, 0, cost.Metrics{}, err
		}
		met := cost.Compare(refMach.Cycles, m.Cycles, refMem, cost.Of(c.Alloc, c.Sched))
		return c, m.Cycles, met, nil
	}

	// Plain CB (empty duplication set) is the starting configuration.
	best, bestCycles, bestMet, err := evaluate(map[string]bool{})
	if err != nil {
		return nil, err
	}
	res := &SelectiveResult{
		Compiled:   best,
		BaseCycles: bestCycles,
		BasePCR:    bestMet.PCR,
	}

	// Candidate discovery: what would full partial duplication mark?
	probe, err := Compile(source, name, Options{Mode: alloc.CBDup, Opt: baseOpts.Opt})
	if err != nil {
		return nil, err
	}
	var candidates []string
	for _, s := range probe.Alloc.Duplicated {
		candidates = append(candidates, s.Name)
	}
	sort.Strings(candidates)
	res.Candidates = candidates

	chosen := map[string]bool{}
	for _, cand := range candidates {
		trialSet := map[string]bool{}
		for k := range chosen {
			trialSet[k] = true
		}
		trialSet[cand] = true
		c, cycles, met, err := evaluate(trialSet)
		if err != nil {
			return nil, fmt.Errorf("selective trial %q: %w", cand, err)
		}
		tr := Trial{Symbol: cand, Cycles: cycles, PG: met.PG, CI: met.CI, PCR: met.PCR}
		gain := float64(bestCycles-cycles) / float64(bestCycles)
		switch {
		case sel.MaxCostIncrease > 0 && met.CI > sel.MaxCostIncrease:
			tr.Reason = fmt.Sprintf("cost ratio %.2f exceeds budget %.2f", met.CI, sel.MaxCostIncrease)
		case met.PCR <= bestMet.PCR:
			tr.Reason = fmt.Sprintf("PCR %.3f does not improve on %.3f", met.PCR, bestMet.PCR)
		case gain < sel.MinGain:
			tr.Reason = fmt.Sprintf("gain %.1f%% below threshold %.1f%%", gain*100, sel.MinGain*100)
		default:
			tr.Kept = true
			tr.Reason = fmt.Sprintf("PCR %.3f improves on %.3f", met.PCR, bestMet.PCR)
			chosen[cand] = true
			best, bestCycles, bestMet = c, cycles, met
		}
		res.Trials = append(res.Trials, tr)
	}

	res.Compiled = best
	for name := range chosen {
		res.Chosen = append(res.Chosen, name)
	}
	sort.Strings(res.Chosen)
	return res, nil
}
