package pipeline

// FuzzCompiledVsMachine is the engine-differential fuzz target: random
// MiniC programs from the same generators the property tests use,
// executed on both the compiled threaded-code engine and the reference
// interpreter, comparing cycle counts, every bandwidth counter, and
// the full memory images word for word. The other fuzz targets check
// the compiler against the mirrored Go evaluator; this one checks the
// fast engine against the slow one, so a lowering bug that preserved
// plausible-looking output would still be caught by the first counter
// or dead-store word it perturbs.

import (
	"fmt"
	"math/rand"
	"testing"

	"dualbank/internal/sim"
)

// checkSeedCompiledVsMachine compiles one generated scalar program and
// one generated array program under every fuzz mode and pins the
// compiled engine to the reference interpreter on each.
func checkSeedCompiledVsMachine(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	scalarSrc, _ := genProgram(rng)
	arraySrc, _ := genArrayProgram(rng)
	for i, src := range []string{scalarSrc, arraySrc} {
		for _, mode := range fuzzModes {
			c, err := Compile(src, fmt.Sprintf("cfuzz%d_%d", seed, i), Options{Mode: mode})
			if err != nil {
				t.Fatalf("seed %d mode %v: compile: %v\nsource:\n%s", seed, mode, err, src)
			}
			ref, refErr := c.Run()
			cp, err := sim.Compile(c.Sched)
			if err != nil {
				t.Fatalf("seed %d mode %v: lower: %v\nsource:\n%s", seed, mode, err, src)
			}
			cm := cp.NewMachine()
			cmErr := cm.Run()
			if (refErr == nil) != (cmErr == nil) {
				t.Fatalf("seed %d mode %v: engines disagree on failure: machine=%v compiled=%v\nsource:\n%s",
					seed, mode, refErr, cmErr, src)
			}
			if refErr != nil {
				continue
			}
			counters := [][2]int64{
				{ref.Cycles, cm.Cycles},
				{ref.OpsExecuted, cm.OpsExecuted},
				{ref.MemAccesses, cm.MemAccesses},
				{ref.DualMemCycles, cm.DualMemCycles},
				{ref.BankConflicts, cm.BankConflicts},
			}
			names := []string{"Cycles", "OpsExecuted", "MemAccesses", "DualMemCycles", "BankConflicts"}
			for j, pair := range counters {
				if pair[0] != pair[1] {
					t.Fatalf("seed %d mode %v: %s: machine=%d compiled=%d\nsource:\n%s",
						seed, mode, names[j], pair[0], pair[1], src)
				}
			}
			// The compiled arena covers only the program's used address
			// range; the reference must agree on it word for word (and
			// the differential suite separately pins the reference to
			// zero beyond it).
			n := cp.MemWords()
			for a := 0; a < n; a++ {
				if ref.X[a] != cm.X[a] {
					t.Fatalf("seed %d mode %v: X[%d]: machine=%#x compiled=%#x\nsource:\n%s",
						seed, mode, a, ref.X[a], cm.X[a], src)
				}
				if ref.Y[a] != cm.Y[a] {
					t.Fatalf("seed %d mode %v: Y[%d]: machine=%#x compiled=%#x\nsource:\n%s",
						seed, mode, a, ref.Y[a], cm.Y[a], src)
				}
			}
		}
	}
}

func FuzzCompiledVsMachine(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(checkSeedCompiledVsMachine)
}
