package core

import (
	"testing"
	"testing/quick"

	"dualbank/internal/ir"
)

// sym makes a named array symbol.
func sym(name string) *ir.Symbol {
	return &ir.Symbol{Name: name, Elem: ir.TFloat, Size: 8, Dims: []int{8}}
}

// TestFigure5GreedyPartition reproduces the published partitioning
// walk on the Figure 5 graph: nodes A, B, C, D with edge weights
// (A,B)=1, (A,C)=1, (A,D)=2, (B,C)=1, (B,D)=1, (C,D)=1. The paper
// shows the cost dropping 7 -> 3 (move D) -> 2 (move C), ending with
// {A,B} in one bank and {C,D} in the other.
func TestFigure5GreedyPartition(t *testing.T) {
	a, b, c, d := sym("A"), sym("B"), sym("C"), sym("D")
	g := NewGraph([]*ir.Symbol{a, b, c, d})
	blkTop := &ir.Block{LoopDepth: 0}  // weight 1 edges
	blkLoop := &ir.Block{LoopDepth: 1} // weight 2 edge
	g.addEvent(a, b, blkTop, WeightStatic)
	g.addEvent(a, c, blkTop, WeightStatic)
	g.addEvent(a, d, blkLoop, WeightStatic)
	g.addEvent(b, c, blkTop, WeightStatic)
	g.addEvent(b, d, blkTop, WeightStatic)
	g.addEvent(c, d, blkTop, WeightStatic)

	p := g.Partition()
	wantTrace := []int64{7, 3, 2}
	if len(p.Trace) != len(wantTrace) {
		t.Fatalf("trace = %v, want %v", p.Trace, wantTrace)
	}
	for i, w := range wantTrace {
		if p.Trace[i] != w {
			t.Fatalf("trace = %v, want %v", p.Trace, wantTrace)
		}
	}
	if p.Cost != 2 {
		t.Errorf("cost = %d, want 2", p.Cost)
	}
	// Final sets: {A, B} stay, {D, C} moved (Figure 5(c)).
	if len(p.SetX) != 2 || len(p.SetY) != 2 {
		t.Fatalf("sets X=%v Y=%v", p.SetX, p.SetY)
	}
	inY := map[string]bool{}
	for _, s := range p.SetY {
		inY[s.Name] = true
	}
	if !inY["C"] || !inY["D"] {
		t.Errorf("moved set = %v, want {C, D}", p.SetY)
	}
}

// TestFigure4EdgeWeights checks the weight heuristic on hand-built
// events: an edge discovered only outside loops weighs 1; one
// discovered inside a loop weighs depth+1; re-discovery outside a loop
// does not lower or raise an existing weight (Figure 4 keeps (B,D)=1
// despite two discoveries).
func TestFigure4EdgeWeights(t *testing.T) {
	a, b, d := sym("A"), sym("B"), sym("D")
	g := NewGraph([]*ir.Symbol{a, b, d})
	top := &ir.Block{LoopDepth: 0}
	loop := &ir.Block{LoopDepth: 1}

	g.addEvent(b, d, top, WeightStatic)
	g.addEvent(b, d, top, WeightStatic) // second discovery, same weight
	if w := g.Weight(b, d); w != 1 {
		t.Errorf("weight(B,D) = %d, want 1", w)
	}
	g.addEvent(a, d, loop, WeightStatic)
	if w := g.Weight(a, d); w != 2 {
		t.Errorf("weight(A,D) = %d, want 2", w)
	}
	// Loop discovery upgrades an outside-loop edge.
	g.addEvent(b, d, loop, WeightStatic)
	if w := g.Weight(b, d); w != 2 {
		t.Errorf("weight(B,D) after loop discovery = %d, want 2", w)
	}
}

// TestProfiledWeights checks the Pr policy accumulates execution
// counts.
func TestProfiledWeights(t *testing.T) {
	a, b := sym("A"), sym("B")
	g := NewGraph([]*ir.Symbol{a, b})
	hot := &ir.Block{ExecCount: 1000}
	cold := &ir.Block{ExecCount: 3}
	g.addEvent(a, b, hot, WeightProfiled)
	g.addEvent(a, b, cold, WeightProfiled)
	if w := g.Weight(a, b); w != 1003 {
		t.Errorf("profiled weight = %d, want 1003", w)
	}
}

// TestDuplicationMark checks that a same-symbol event marks the symbol
// for duplication instead of adding a self-edge (Figure 6's trigger).
func TestDuplicationMark(t *testing.T) {
	s := sym("signal")
	g := NewGraph([]*ir.Symbol{s})
	g.addEvent(s, s, &ir.Block{LoopDepth: 2}, WeightStatic)
	if !g.DupMarks[s] {
		t.Fatal("same-array event should mark for duplication")
	}
	if g.Edges() != 0 {
		t.Fatal("same-array event must not add an edge")
	}
}

// TestScanBlockFindsParallelLoads builds a block with two loads from
// different arrays that are simultaneously data-ready and checks an
// interference edge appears; a third dependent load must not pair.
func TestScanBlockFindsParallelLoads(t *testing.T) {
	a, b, c := sym("A"), sym("B"), sym("C")
	f := ir.NewFunc("f", ir.TVoid)
	blk := f.NewBlock()
	i := f.NewReg(ir.TInt)
	va := f.NewReg(ir.TFloat)
	vb := f.NewReg(ir.TFloat)
	vi2 := f.NewReg(ir.TInt)
	vc := f.NewReg(ir.TFloat)
	blk.Ops = append(blk.Ops,
		&ir.Op{Kind: ir.OpConst, Type: ir.TInt, Dst: i, Imm: 1},
		&ir.Op{Kind: ir.OpLoad, Type: ir.TFloat, Dst: va, Sym: a, Idx: i},
		&ir.Op{Kind: ir.OpLoad, Type: ir.TFloat, Dst: vb, Sym: b, Idx: i},
		// C's index depends on A's loaded value, so the C load can
		// never be data-ready together with the A load.
		&ir.Op{Kind: ir.OpFloatToInt, Type: ir.TInt, Dst: vi2, Args: [2]ir.Reg{va}},
		&ir.Op{Kind: ir.OpLoad, Type: ir.TFloat, Dst: vc, Sym: c, Idx: vi2},
		&ir.Op{Kind: ir.OpRet},
	)
	g := NewGraph([]*ir.Symbol{a, b, c})
	g.ScanBlock(blk, WeightStatic)
	if g.Weight(a, b) == 0 {
		t.Error("expected interference edge (A, B)")
	}
	if g.Weight(a, c) != 0 {
		t.Error("dependent load C must not pair with A")
	}
}

// TestPartitionProperties uses testing/quick to check partition
// invariants on random graphs: the two sets are a disjoint cover of
// the nodes, the residual cost equals the weight of edges left inside
// one set, and the cost never exceeds the all-in-one-bank cost.
func TestPartitionProperties(t *testing.T) {
	f := func(seed int64, nNodes uint8, edges []uint16) bool {
		n := int(nNodes%12) + 2
		syms := make([]*ir.Symbol, n)
		for i := range syms {
			syms[i] = &ir.Symbol{Name: string(rune('a' + i)), Size: 1}
		}
		g := NewGraph(syms)
		var total int64
		for _, e := range edges {
			i := int(e) % n
			j := int(e>>4) % n
			if i == j {
				continue
			}
			w := int64(e>>8)%5 + 1
			if g.Weight(syms[i], syms[j]) == 0 {
				g.SetWeight(syms[i], syms[j], w)
				total += w
			}
		}
		p := g.Partition()
		// Disjoint cover.
		seen := map[*ir.Symbol]int{}
		for _, s := range p.SetX {
			seen[s]++
		}
		for _, s := range p.SetY {
			seen[s]++
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		// Residual cost is the weight of same-set edges.
		side := map[*ir.Symbol]int{}
		for _, s := range p.SetY {
			side[s] = 1
		}
		var residual int64
		for _, e := range g.edges {
			if side[g.Nodes[e.u]] == side[g.Nodes[e.v]] {
				residual += e.w
			}
		}
		if residual != p.Cost {
			return false
		}
		// Greedy never increases cost.
		return p.Cost <= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionTraceMonotone: every greedy move strictly decreases the
// cost.
func TestPartitionTraceMonotone(t *testing.T) {
	a, b, c, d := sym("A"), sym("B"), sym("C"), sym("D")
	g := NewGraph([]*ir.Symbol{a, b, c, d})
	top := &ir.Block{LoopDepth: 0}
	g.addEvent(a, b, top, WeightStatic)
	g.addEvent(c, d, top, WeightStatic)
	p := g.Partition()
	for i := 1; i < len(p.Trace); i++ {
		if p.Trace[i] >= p.Trace[i-1] {
			t.Fatalf("non-decreasing trace %v", p.Trace)
		}
	}
	if p.Cost != 0 {
		t.Errorf("two disjoint edges should partition to cost 0, got %d", p.Cost)
	}
}

func TestGraphString(t *testing.T) {
	a, b := sym("A"), sym("B")
	g := NewGraph([]*ir.Symbol{a, b})
	g.addEvent(a, b, &ir.Block{LoopDepth: 0}, WeightStatic)
	g.DupMarks[a] = true
	out := g.String()
	if out != "(A, B) w=1\ndup: A\n" {
		t.Errorf("String() = %q", out)
	}
}
