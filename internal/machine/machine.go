// Package machine describes the target VLIW model DSP architecture from
// Figure 2 of the paper: nine single-cycle functional units, three
// 32-entry register files, and two single-ported, high-order-interleaved
// data-memory banks (X and Y) reached through dedicated memory units
// (MU0 accesses bank X, MU1 accesses bank Y).
package machine

import "fmt"

// Bank identifies a data-memory bank. The model DSP has two data banks
// plus a separate instruction memory (not addressable by data ops).
type Bank int8

const (
	// BankNone marks an operation or symbol with no bank assignment yet.
	BankNone Bank = iota
	// BankX is the X data-memory bank, accessed by memory unit MU0.
	BankX
	// BankY is the Y data-memory bank, accessed by memory unit MU1.
	BankY
	// BankBoth marks a duplicated symbol stored in both banks at the
	// same offset. Loads may use either memory unit; stores must be
	// issued to both banks to keep the copies coherent.
	BankBoth
)

func (b Bank) String() string {
	switch b {
	case BankNone:
		return "-"
	case BankX:
		return "X"
	case BankY:
		return "Y"
	case BankBoth:
		return "XY"
	}
	if b >= 4 {
		// Banks beyond the classic pair (see BankAt in spec.go).
		return fmt.Sprintf("B%d", int(b)-2)
	}
	return fmt.Sprintf("Bank(%d)", int8(b))
}

// Other returns the opposite single bank. Other(BankX) == BankY and
// vice versa; it panics for BankNone and BankBoth.
func (b Bank) Other() Bank {
	switch b {
	case BankX:
		return BankY
	case BankY:
		return BankX
	}
	panic("machine: Other on non-single bank " + b.String())
}

// Unit identifies one of the nine functional units.
type Unit int8

const (
	// PCU is the program-control unit: branches, calls, returns, and
	// the low-overhead loop hardware.
	PCU Unit = iota
	// MU0 is the memory unit wired to bank X.
	MU0
	// MU1 is the memory unit wired to bank Y.
	MU1
	// AU0 and AU1 are the address-arithmetic units.
	AU0
	AU1
	// DU0 and DU1 are the integer data units.
	DU0
	DU1
	// FPU0 and FPU1 are the floating-point units.
	FPU0
	FPU1

	// NumUnits is the total number of functional units.
	NumUnits = 9
)

var unitNames = [NumUnits]string{"PCU", "MU0", "MU1", "AU0", "AU1", "DU0", "DU1", "FPU0", "FPU1"}

func (u Unit) String() string {
	if u >= NumUnits && u < MaxUnits {
		// Memory units appended past FPU1 (see MemUnit in spec.go).
		return fmt.Sprintf("MU%d", int(u)-NumUnits+2)
	}
	if u < 0 || int(u) >= NumUnits {
		return fmt.Sprintf("Unit(%d)", int8(u))
	}
	return unitNames[u]
}

// Class groups functional units able to execute the same kind of
// operation. The compaction pass assigns each operation a class and
// then picks any free unit of that class.
type Class int8

const (
	// ClassControl ops execute on the PCU.
	ClassControl Class = iota
	// ClassMemory ops execute on MU0 or MU1, subject to the bank
	// binding enforced by the port model.
	ClassMemory
	// ClassInteger ops execute on any of AU0, AU1, DU0, DU1. The model
	// architecture places no bank-related restrictions on registers, so
	// integer and address arithmetic share the four scalar units.
	ClassInteger
	// ClassFloat ops execute on FPU0 or FPU1.
	ClassFloat

	// NumClasses is the number of unit classes.
	NumClasses = 4
)

func (c Class) String() string {
	switch c {
	case ClassControl:
		return "control"
	case ClassMemory:
		return "memory"
	case ClassInteger:
		return "integer"
	case ClassFloat:
		return "float"
	}
	return fmt.Sprintf("Class(%d)", int8(c))
}

// Shared unit-preference slices: UnitsOf and UnitsForBank sit on the
// scheduler's per-operation hot path, so they hand out preallocated
// slices instead of building a fresh literal per call. Callers must
// treat the returned slices as read-only.
var (
	unitsControl = []Unit{PCU}
	unitsMemory  = []Unit{MU0, MU1}
	unitsInteger = []Unit{DU0, DU1, AU0, AU1}
	unitsFloat   = []Unit{FPU0, FPU1}
	unitsMU0     = []Unit{MU0}
	unitsMU1     = []Unit{MU1}
)

// UnitsOf returns the functional units that can execute operations of
// class c, in the order the scheduler should try them. The returned
// slice is shared; callers must not modify it.
func UnitsOf(c Class) []Unit {
	switch c {
	case ClassControl:
		return unitsControl
	case ClassMemory:
		return unitsMemory
	case ClassInteger:
		return unitsInteger
	case ClassFloat:
		return unitsFloat
	}
	return nil
}

// Register-file geometry (Figure 2: three 32 x 32-bit register files).
const (
	// NumIntRegs is the size of the integer register file.
	NumIntRegs = 32
	// NumFloatRegs is the size of the floating-point register file.
	NumFloatRegs = 32
	// NumAddrRegs is the size of the address register file. The
	// reproduction reserves two address registers for the dual stack
	// pointers (SPX and SPY).
	NumAddrRegs = 32
)

// Memory geometry. On-chip memories in the DSPs the paper surveys range
// from 16KB to 200KB; 64K 32-bit words per bank sits comfortably in that
// envelope and holds every benchmark.
const (
	// BankWords is the capacity of each data bank in 32-bit words.
	BankWords = 1 << 16
	// StackWords is the size reserved at the top of each bank for that
	// bank's program stack.
	StackWords = 1 << 12
)

// PortModel describes how memory units reach the data banks. It is the
// single knob distinguishing the real machine from the Ideal dual-ported
// configuration used as the paper's upper bound.
type PortModel int8

const (
	// PortsBanked is the real machine: MU0 reaches only bank X and MU1
	// only bank Y, one access per bank per cycle.
	PortsBanked PortModel = iota
	// PortsDualPorted is the Ideal configuration: either memory unit
	// reaches either bank, so any two accesses proceed in parallel
	// regardless of data placement.
	PortsDualPorted
	// PortsLowOrder models the alternative the paper argues against
	// (§1.2, §3.2): consecutive addresses alternate between the banks
	// (bank = address parity), as in the Multiflow and in
	// microprocessor first-level caches. The compiler cannot steer
	// placement; it issues up to two accesses per instruction and the
	// hardware serialises the instruction with a one-cycle stall when
	// both hit the same bank at run time.
	PortsLowOrder
)

func (p PortModel) String() string {
	switch p {
	case PortsDualPorted:
		return "dual-ported"
	case PortsLowOrder:
		return "low-order"
	}
	return "banked"
}

// UnitForBank returns the memory units that may carry an access to the
// given bank under the port model. The returned slice is shared;
// callers must not modify it.
func (p PortModel) UnitsForBank(b Bank) []Unit {
	if p == PortsDualPorted || p == PortsLowOrder || b == BankBoth {
		return unitsMemory
	}
	switch b {
	case BankX:
		return unitsMU0
	case BankY:
		return unitsMU1
	}
	// Unassigned data lives in bank X (the baseline single-bank layout).
	return unitsMU0
}

// BankOfUnit reports which bank a memory unit accesses under the banked
// port model. Under the dual-ported model the unit does not determine
// the bank and the operation's own bank tag is authoritative.
func BankOfUnit(u Unit) Bank {
	switch u {
	case MU0:
		return BankX
	case MU1:
		return BankY
	}
	return BankNone
}
