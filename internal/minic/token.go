// Package minic implements the front-end for MiniC, the C subset in
// which the benchmark suite is written. It stands in for the paper's
// GNU-C front-end: it produces a typed AST that internal/lower turns
// into the unpacked machine operations the optimizing back-end
// consumes.
//
// MiniC supports: int/float/void, global and local scalars, 1-D and
// 2-D arrays with initializers, functions with scalar value parameters,
// full C expression syntax (including ?:, short-circuit && and ||,
// compound assignment, ++/--, casts), if/else, while, for, break,
// continue, and return. Pointers, structs, and array parameters are
// deliberately absent: the paper's algorithms require symbol-level
// alias information, and the benchmarks use globals for shared arrays
// (the idiomatic style for embedded DSP code of the era).
package minic

import "fmt"

// Kind is a lexical token kind.
type Kind int8

const (
	EOF Kind = iota
	IDENT
	INTLIT
	FLOATLIT

	// Keywords.
	KwInt
	KwFloat
	KwVoid
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue
	KwDo
	KwSwitch
	KwCase
	KwDefault

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBrack
	RBrack
	Comma
	Semi
	Question
	Colon

	Assign
	PlusAssign
	MinusAssign
	StarAssign
	SlashAssign
	PercentAssign
	AmpAssign
	PipeAssign
	CaretAssign
	ShlAssign
	ShrAssign

	Plus
	Minus
	Star
	Slash
	Percent
	Amp
	Pipe
	Caret
	Tilde
	Bang
	Shl
	Shr
	AndAnd
	OrOr
	Inc
	Dec

	EQ
	NE
	LT
	LE
	GT
	GE
)

var kindNames = map[Kind]string{
	EOF: "end of file", IDENT: "identifier", INTLIT: "integer literal",
	FLOATLIT: "float literal",
	KwInt:    "int", KwFloat: "float", KwVoid: "void", KwIf: "if",
	KwElse: "else", KwWhile: "while", KwFor: "for", KwReturn: "return",
	KwBreak: "break", KwContinue: "continue", KwDo: "do",
	KwSwitch: "switch", KwCase: "case", KwDefault: "default",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBrack: "[", RBrack: "]", Comma: ",", Semi: ";",
	Question: "?", Colon: ":",
	Assign: "=", PlusAssign: "+=", MinusAssign: "-=", StarAssign: "*=",
	SlashAssign: "/=", PercentAssign: "%=", AmpAssign: "&=",
	PipeAssign: "|=", CaretAssign: "^=", ShlAssign: "<<=", ShrAssign: ">>=",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", Bang: "!",
	Shl: "<<", Shr: ">>", AndAnd: "&&", OrOr: "||", Inc: "++", Dec: "--",
	EQ: "==", NE: "!=", LT: "<", LE: "<=", GT: ">", GE: ">=",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int8(k))
}

var keywords = map[string]Kind{
	"int": KwInt, "float": KwFloat, "void": KwVoid,
	"if": KwIf, "else": KwElse, "while": KwWhile, "for": KwFor,
	"return": KwReturn, "break": KwBreak, "continue": KwContinue,
	"do": KwDo, "switch": KwSwitch, "case": KwCase, "default": KwDefault,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Pos  Pos
	Text string  // IDENT spelling
	Int  int64   // INTLIT value
	Flt  float64 // FLOATLIT value
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return t.Text
	case INTLIT:
		return fmt.Sprintf("%d", t.Int)
	case FLOATLIT:
		return fmt.Sprintf("%g", t.Flt)
	}
	return t.Kind.String()
}

// Error is a front-end diagnostic with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
