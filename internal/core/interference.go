// Package core implements the paper's primary contribution: the
// compaction-based (CB) data-partitioning algorithm and the analysis
// side of partial data duplication.
//
// The algorithm has three parts (§3.1–§3.2 of the paper):
//
//  1. An interference graph over the program's variables and arrays.
//     An edge (a, b) means a memory operation on a and one on b could
//     issue in the same long instruction if the two symbols lived in
//     different banks. Edges are discovered by running the operation
//     compaction (list-scheduling) algorithm over every basic block
//     with a single usable memory slot: whenever a second data-ready
//     memory operation is blocked only by the memory unit, the pair of
//     symbols interferes (Figure 3).
//  2. Edge weights. The static policy weighs an edge by the loop
//     nesting depth of the access (depth+1, so a pair inside one loop
//     outweighs a pair in straight-line code — Figure 4); the profiled
//     policy weighs it by the executed frequency of the block.
//  3. A min-cost bipartition of the graph assigning each symbol to
//     bank X or bank Y: the paper's greedy walk (Figure 5), optionally
//     refined or replaced by the alternative partitioners in
//     partition_alt.go and partition_fm.go.
//
// When the two blocked memory operations access the *same* symbol, no
// partition can help; the symbol is marked for duplication instead, the
// trigger for partial data duplication (§3.2, Figure 6).
//
// The graph is stored flat: one record per undirected edge plus
// per-node incidence lists threaded through half-edge indices, with a
// compressed-sparse-row (CSR) view built once per program for the
// partitioners. No map sits on the construction or partitioning hot
// path.
package core

import (
	"fmt"
	"sort"
	"strings"

	"dualbank/internal/ddg"
	"dualbank/internal/ir"
	"dualbank/internal/machine"
)

// WeightPolicy selects how interference-edge weights are derived.
type WeightPolicy int8

const (
	// WeightStatic uses the loop-nesting-depth heuristic: an edge
	// discovered at nesting depth d gets weight max(existing, d+1).
	WeightStatic WeightPolicy = iota
	// WeightProfiled accumulates the profiled execution count of the
	// block in which each pairing is discovered (the Pr configuration
	// in Figure 8). Blocks must carry ExecCount from a profiling run.
	WeightProfiled
)

func (w WeightPolicy) String() string {
	if w == WeightProfiled {
		return "profiled"
	}
	return "static"
}

// edgeRec is one undirected interference edge (u < v). pairs counts
// distinct discovery events, for diagnostics.
type edgeRec struct {
	u, v  int32
	w     int64
	pairs int
}

// Graph is the interference graph: nodes are data symbols, weighted
// edges are potential parallel accesses. Edges live in a flat record
// slice; each node's incidence is a singly-linked list of half-edges
// (half-edge 2e belongs to edge e's u endpoint, 2e+1 to its v
// endpoint), so edge lookup during construction is O(degree) with no
// map in sight.
type Graph struct {
	Nodes []*ir.Symbol

	index map[*ir.Symbol]int32
	edges []edgeRec
	head  []int32 // per node: first incident half-edge, or -1
	next  []int32 // per half-edge: next half-edge of the same node

	// DupMarks holds symbols flagged for duplication: two simultaneous
	// data-ready accesses hit the same symbol.
	DupMarks map[*ir.Symbol]bool

	// tiePref, when non-nil, replaces the greedy partitioner's
	// node-index tie-break with a canonical preference: on equal move
	// deltas the node with the greater preference migrates. BuildGraph
	// fills it from the order symbols are first referenced in the
	// program body (functions walked in call order from main), which is
	// invariant under top-level declaration permutation and identifier
	// renaming — the node index, being declaration order, is neither.
	// Graphs assembled directly through NewGraph keep the index rule.
	tiePref []int32

	csr *CSR // cached adjacency view, invalidated by edge mutation
}

// NewGraph returns an empty interference graph over the given symbols.
func NewGraph(nodes []*ir.Symbol) *Graph {
	g := &Graph{
		Nodes:    nodes,
		index:    make(map[*ir.Symbol]int32, len(nodes)),
		head:     make([]int32, len(nodes)),
		DupMarks: make(map[*ir.Symbol]bool),
	}
	for i, s := range nodes {
		g.index[s] = int32(i)
		g.head[i] = -1
	}
	return g
}

// findEdge returns the index of edge (i, j) in g.edges, or -1. It
// walks i's incidence list, so cost is O(degree(i)).
func (g *Graph) findEdge(i, j int32) int {
	for h := g.head[i]; h >= 0; h = g.next[h] {
		e := &g.edges[h>>1]
		other := e.v
		if h&1 == 1 {
			other = e.u
		}
		if other == j {
			return int(h >> 1)
		}
	}
	return -1
}

// addEdge appends a fresh zero-weight edge (i, j), i < j, and links
// its two half-edges into the endpoints' incidence lists.
func (g *Graph) addEdge(i, j int32) int {
	id := len(g.edges)
	g.edges = append(g.edges, edgeRec{u: i, v: j})
	g.next = append(g.next, g.head[i], g.head[j])
	g.head[i] = int32(2 * id)
	g.head[j] = int32(2*id + 1)
	return id
}

// edgeBetween returns the edge record for (a, b), creating it if
// needed, with endpoints normalised to u < v.
func (g *Graph) edgeBetween(a, b *ir.Symbol) *edgeRec {
	i, j := g.index[a], g.index[b]
	if i > j {
		i, j = j, i
	}
	id := g.findEdge(i, j)
	if id < 0 {
		id = g.addEdge(i, j)
	}
	return &g.edges[id]
}

// Weight returns the weight of edge (a, b), or 0 if absent.
func (g *Graph) Weight(a, b *ir.Symbol) int64 {
	i, j := g.index[a], g.index[b]
	if i > j {
		i, j = j, i
	}
	if id := g.findEdge(i, j); id >= 0 {
		return g.edges[id].w
	}
	return 0
}

// SetWeight sets the weight of edge (a, b), creating the edge if
// absent. Tests and external graph builders use it to construct graphs
// without going through the block scanner.
func (g *Graph) SetWeight(a, b *ir.Symbol, w int64) {
	if a == b {
		panic("core: SetWeight on a self edge")
	}
	g.edgeBetween(a, b).w = w
	g.csr = nil
}

// PairCount returns the number of distinct discovery events recorded
// for edge (a, b); exposed for diagnostics and tests.
func (g *Graph) PairCount(a, b *ir.Symbol) int {
	i, j := g.index[a], g.index[b]
	if i > j {
		i, j = j, i
	}
	if id := g.findEdge(i, j); id >= 0 {
		return g.edges[id].pairs
	}
	return 0
}

// Edges returns the number of edges in the graph.
func (g *Graph) Edges() int { return len(g.edges) }

// addEvent records one discovery of the pair (a, b) in block blk.
func (g *Graph) addEvent(a, b *ir.Symbol, blk *ir.Block, policy WeightPolicy) {
	if a == b {
		g.DupMarks[a] = true
		return
	}
	e := g.edgeBetween(a, b)
	e.pairs++
	switch policy {
	case WeightStatic:
		if w := int64(blk.LoopDepth + 1); w > e.w {
			e.w = w
		}
	case WeightProfiled:
		e.w += blk.ExecCount
	}
	g.csr = nil
}

// sortedEdges returns printable (name, name, weight) triples in
// deterministic name order, shared by String and Dot.
func (g *Graph) sortedEdges() []printEdge {
	edges := make([]printEdge, 0, len(g.edges))
	for _, e := range g.edges {
		edges = append(edges, printEdge{g.Nodes[e.u].Name, g.Nodes[e.v].Name, e.w})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	return edges
}

type printEdge struct {
	a, b string
	w    int64
}

// String renders the graph's edges, sorted, for tests and the explorer
// example.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, e := range g.sortedEdges() {
		fmt.Fprintf(&sb, "(%s, %s) w=%d\n", e.a, e.b, e.w)
	}
	var dups []string
	for s, ok := range g.DupMarks {
		if ok {
			dups = append(dups, s.Name)
		}
	}
	sort.Strings(dups)
	if len(dups) > 0 {
		fmt.Fprintf(&sb, "dup: %s\n", strings.Join(dups, ", "))
	}
	return sb.String()
}

// Dot renders the interference graph in Graphviz format, with the
// partition (if given) as node colours and duplication marks as
// doubled outlines — the visual counterpart of the paper's Figure 4.
// Node and edge ordering are deterministic (nodes in symbol order,
// edges sorted by endpoint names), so the output is golden-file
// testable.
func (g *Graph) Dot(part *Partition) string {
	var sb strings.Builder
	sb.WriteString("graph interference {\n  node [shape=ellipse, style=filled, fillcolor=white];\n")
	side := map[*ir.Symbol]string{}
	if part != nil {
		for _, s := range part.SetX {
			side[s] = "lightblue"
		}
		for _, s := range part.SetY {
			side[s] = "lightsalmon"
		}
	}
	// Only nodes that participate in an edge or a mark are drawn;
	// whole-program graphs contain many untouched symbols.
	used := make([]bool, len(g.Nodes))
	for _, e := range g.edges {
		used[e.u] = true
		used[e.v] = true
	}
	for i, s := range g.Nodes {
		if !used[i] && !g.DupMarks[s] {
			continue
		}
		attrs := ""
		if c, ok := side[s]; ok {
			attrs = ", fillcolor=" + c
		}
		if g.DupMarks[s] {
			attrs += ", peripheries=2"
		}
		fmt.Fprintf(&sb, "  %q [label=%q%s];\n", s.Name, s.Name, attrs)
	}
	for _, e := range g.sortedEdges() {
		fmt.Fprintf(&sb, "  %q -- %q [label=\"%d\"];\n", e.a, e.b, e.w)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Scanner holds the reusable scratch state for interference-graph
// construction: the dependence-graph builder plus the dry-run
// scheduler's per-block arrays. A Scanner reused across blocks reaches
// a zero-allocation steady state. The zero value is ready to use; a
// Scanner must not be used concurrently.
type Scanner struct {
	ddg       ddg.Builder
	scheduled []bool
	cycleOf   []int
	drs       []int
	recorded  []uint32 // epoch-stamped "pairing already recorded this cycle"
	epoch     uint32
}

// BuildGraph runs the Figure-3 algorithm over every basic block of the
// program and returns the completed interference graph, reusing the
// scanner's scratch storage across blocks.
func (sc *Scanner) BuildGraph(p *ir.Program, policy WeightPolicy) *Graph {
	g := NewGraph(p.Symbols())
	g.rankByFirstUse(p)
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			g.scanBlock(sc, b, policy)
		}
	}
	return g
}

// rankByFirstUse assigns the canonical tie-break preference: symbols
// referenced earlier in the program body are preferred for migration
// on equal greedy deltas. Functions are walked in call order from
// main (call sites in body order, each function once), so the ranking
// does not depend on the order functions or globals were declared, and
// never on their names. Symbols no operation references keep the
// lowest preferences; they can have no interference edges, so their
// mutual order is immaterial.
func (g *Graph) rankByFirstUse(p *ir.Program) {
	visited := make(map[*ir.Func]bool, len(p.Funcs))
	order := make([]*ir.Func, 0, len(p.Funcs))
	var visit func(f *ir.Func)
	visit = func(f *ir.Func) {
		if f == nil || visited[f] {
			return
		}
		visited[f] = true
		order = append(order, f)
		for _, b := range f.Blocks {
			for _, op := range b.Ops {
				if op.Kind == ir.OpCall {
					visit(p.Func(op.Callee))
				}
			}
		}
	}
	visit(p.Func("main"))
	for _, f := range p.Funcs { // unreachable code, if any, ranks last
		visit(f)
	}

	pref := int32(len(g.Nodes))
	g.tiePref = make([]int32, len(g.Nodes))
	for i := range g.tiePref {
		g.tiePref[i] = -1
	}
	for _, f := range order {
		for _, b := range f.Blocks {
			for _, op := range b.Ops {
				if op.Sym == nil {
					continue
				}
				if i, ok := g.index[op.Sym]; ok && g.tiePref[i] < 0 {
					g.tiePref[i] = pref
					pref--
				}
			}
		}
	}
}

// BuildGraph runs the Figure-3 algorithm over every basic block of the
// program and returns the completed interference graph.
func BuildGraph(p *ir.Program, policy WeightPolicy) *Graph {
	return new(Scanner).BuildGraph(p, policy)
}

// classSlots is the per-instruction functional-unit budget during graph
// construction. The memory budget is 1: data is not yet partitioned, so
// the pass cannot know that two accesses would use different units —
// precisely the situation the interference edge records.
func classSlots() [machine.NumClasses]int {
	var s [machine.NumClasses]int
	s[machine.ClassControl] = 1
	s[machine.ClassMemory] = 1
	s[machine.ClassInteger] = 4
	s[machine.ClassFloat] = 2
	return s
}

// ScanBlock applies the augmented compaction algorithm of Figure 3 to
// one basic block, adding interference edges and duplication marks.
// Operations are not actually packed into instructions here; that
// happens later, in the compaction pass proper.
func (g *Graph) ScanBlock(b *ir.Block, policy WeightPolicy) {
	g.scanBlock(new(Scanner), b, policy)
}

func (g *Graph) scanBlock(sc *Scanner, b *ir.Block, policy WeightPolicy) {
	dg := sc.ddg.Build(b)
	n := len(dg.Ops)
	if n == 0 {
		return
	}
	for len(sc.scheduled) < n {
		sc.scheduled = append(sc.scheduled, false)
		sc.cycleOf = append(sc.cycleOf, 0)
		sc.recorded = append(sc.recorded, 0)
	}
	scheduled := sc.scheduled[:n]
	cycleOf := sc.cycleOf[:n]
	for i := 0; i < n; i++ {
		scheduled[i] = false
		cycleOf[i] = -1
	}
	remaining := n

	drs := sc.drs[:0]
	for cycle := 0; remaining > 0; cycle++ {
		// Form a new long instruction.
		slots := classSlots()
		firstMem := -1
		remBefore := remaining
		// The epoch stamp notes a pairing event already emitted for an
		// op in this cycle, so the in-cycle fixed point below does not
		// count the same blocked pair twice.
		sc.epoch++
		if sc.epoch == 0 {
			clear(sc.recorded)
			sc.epoch = 1
		}

		// Fill the instruction to a fixed point, mirroring the real
		// scheduler: newly anti-dependence-ready operations may join
		// the current instruction.
		for {
			// Calculate the data-ready set: unscheduled ops whose
			// predecessors are all scheduled.
			drs = drs[:0]
			for i := 0; i < n; i++ {
				if scheduled[i] {
					continue
				}
				ready := true
				for _, e := range dg.Pred[i] {
					if !scheduled[e.To] {
						ready = false
						break
					}
				}
				if ready {
					drs = append(drs, i)
				}
			}
			// Sort the DRS by priority (descendant count), ties by
			// program order for determinism.
			ddg.SortByPriority(drs, dg.Priority)

			progress := false
			for _, i := range drs {
				// Data-compatibility: an op may join the current
				// instruction unless a strict predecessor was scheduled
				// in this same cycle (anti-dependences are fine: reads
				// precede writes).
				compatible := true
				for _, e := range dg.Pred[i] {
					if e.Strict && cycleOf[e.To] == cycle {
						compatible = false
						break
					}
				}
				if !compatible {
					continue
				}
				cls := dg.Ops[i].Kind.Class()
				if slots[cls] > 0 {
					slots[cls]--
					scheduled[i] = true
					cycleOf[i] = cycle
					remaining--
					progress = true
					if dg.Ops[i].IsMem() {
						firstMem = i
					}
					continue
				}
				// Function-unit incompatible. For memory operations this
				// is the interesting case: the op is independent of
				// everything scheduled (including the first memory op)
				// but competes for the memory unit. Record the
				// interference, or mark the symbol for duplication when
				// both ops touch the same one. The op stays unscheduled
				// so it re-enters the next DRS.
				if dg.Ops[i].IsMem() && firstMem >= 0 && sc.recorded[i] != sc.epoch {
					sc.recorded[i] = sc.epoch
					g.addEvent(dg.Ops[firstMem].Sym, dg.Ops[i].Sym, b, policy)
				}
			}
			if !progress {
				break
			}
		}
		if remaining == remBefore {
			// Defensive: cannot happen with per-class budgets >= 1, but
			// guarantees termination regardless.
			break
		}
	}
	sc.drs = drs[:0]
}
