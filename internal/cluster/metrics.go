package cluster

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Metrics counts the routing tier's decisions. Every cacheable request
// lands in exactly one local{reason=...} or forward{target=...} bucket,
// so the counters reconstruct the full routing story per node:
//
//	local{reason="owner"}        this node owns the key
//	local{reason="cached"}       replica with the answer (or flight) in memory
//	local{reason="hot"}          replica absorbing a hot key
//	local{reason="hop_cap"}      forward chain hit its cap; serve rather than loop
//	local{reason="peer_down"}    every forward target is cooling down
//	local{reason="fallback"}     a forward failed mid-request; computed here
//	local{reason="source"}       source jobs never route — no stable key
//	forward{target="owner"}      routed to the key's owner
//	forward{target="replica"}    hot key spread to a replica
type Metrics struct {
	mu       sync.Mutex
	local    map[string]int64
	forward  map[string]int64
	fwdErr   int64
	members  int
	hotCount func() int
}

func newClusterMetrics(hotCount func() int) *Metrics {
	return &Metrics{
		local:    make(map[string]int64),
		forward:  make(map[string]int64),
		hotCount: hotCount,
	}
}

func (m *Metrics) Local(reason string) {
	m.mu.Lock()
	m.local[reason]++
	m.mu.Unlock()
}

func (m *Metrics) Forward(target string) {
	m.mu.Lock()
	m.forward[target]++
	m.mu.Unlock()
}

func (m *Metrics) ForwardError() {
	m.mu.Lock()
	m.fwdErr++
	m.mu.Unlock()
}

func (m *Metrics) setMembers(n int) {
	m.mu.Lock()
	m.members = n
	m.mu.Unlock()
}

// Snapshot copies the counters for tests.
type Snapshot struct {
	Local         map[string]int64
	Forward       map[string]int64
	ForwardErrors int64
}

func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Local:         make(map[string]int64, len(m.local)),
		Forward:       make(map[string]int64, len(m.forward)),
		ForwardErrors: m.fwdErr,
	}
	for k, v := range m.local {
		s.Local[k] = v
	}
	for k, v := range m.forward {
		s.Forward[k] = v
	}
	return s
}

// WritePrometheus appends the cluster counters in Prometheus text
// format, after the inner server's families.
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fmt.Fprintf(w, "# HELP dspcluster_members Ring members this node currently knows.\n")
	fmt.Fprintf(w, "# TYPE dspcluster_members gauge\n")
	fmt.Fprintf(w, "dspcluster_members %d\n", m.members)
	fmt.Fprintf(w, "# HELP dspcluster_hot_keys Keys currently in the hot set.\n")
	fmt.Fprintf(w, "# TYPE dspcluster_hot_keys gauge\n")
	fmt.Fprintf(w, "dspcluster_hot_keys %d\n", m.hotCount())
	writeLabeled(w, "dspcluster_local_total", "Requests served locally by reason.", "reason", m.local)
	writeLabeled(w, "dspcluster_forward_total", "Requests forwarded by target role.", "target", m.forward)
	fmt.Fprintf(w, "# HELP dspcluster_forward_errors_total Forwards that failed and fell back to local compute.\n")
	fmt.Fprintf(w, "# TYPE dspcluster_forward_errors_total counter\n")
	fmt.Fprintf(w, "dspcluster_forward_errors_total %d\n", m.fwdErr)
}

func writeLabeled(w io.Writer, name, help, label string, counts map[string]int64) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s counter\n", name)
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, k, counts[k])
	}
}
