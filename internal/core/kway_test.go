package core

import (
	"math/rand"
	"testing"
)

// kwaySeeds mirrors the 200-seed random-graph sweep the bipartition
// property tests use; the k-way partitioner gets the same treatment.
const kwaySeeds = 200

// checkKPartitionShape verifies the structural invariants every
// KPartition must satisfy: k sets, every node in exactly one set, and
// the reported cost matching an independent recomputation from the
// bank assignment.
func checkKPartitionShape(t *testing.T, g *Graph, p *KPartition, k int) {
	t.Helper()
	if p.K != k {
		t.Fatalf("K = %d, want %d", p.K, k)
	}
	if len(p.Sets) != k {
		t.Fatalf("len(Sets) = %d, want %d", len(p.Sets), k)
	}
	side := make([]int32, len(g.Nodes))
	for i := range side {
		side[i] = -1
	}
	total := 0
	for b, set := range p.Sets {
		for _, s := range set {
			i, ok := g.index[s]
			if !ok {
				t.Fatalf("bank %d holds %s, which is not a graph node", b, s.Name)
			}
			if side[i] != -1 {
				t.Fatalf("node %s assigned to banks %d and %d", s.Name, side[i], b)
			}
			side[i] = int32(b)
			total++
		}
	}
	if total != len(g.Nodes) {
		t.Fatalf("partition covers %d nodes, graph has %d", total, len(g.Nodes))
	}
	if got := g.KPartitionFromSides(k, side).Cost; got != p.Cost {
		t.Fatalf("reported cost %d, recomputed %d", p.Cost, got)
	}
}

// TestKWayFMNeverWorseThanGreedy pins the guarantee partitionFMK is
// built on: it starts from the greedy-K result and commits only strict
// improvements, so across random graphs FM-K can never report a higher
// residual cost than greedy-K.
func TestKWayFMNeverWorseThanGreedy(t *testing.T) {
	for _, k := range []int{3, 4, 5} {
		for seed := int64(0); seed < kwaySeeds; seed++ {
			rng := rand.New(rand.NewSource(seed))
			n := 2 + rng.Intn(30)
			g := randomGraph(rng, n, rng.Intn(4*n))
			greedy := g.PartitionK(k, MethodGreedy, 0)
			fm := g.PartitionK(k, MethodFM, -1)
			checkKPartitionShape(t, g, greedy, k)
			checkKPartitionShape(t, g, fm, k)
			if fm.Cost > greedy.Cost {
				t.Errorf("k=%d seed %d: FM-K cost %d > greedy-K cost %d", k, seed, fm.Cost, greedy.Cost)
			}
		}
	}
}

// TestKWayK2MatchesBipartition pins the N=2 equivalence at the
// partitioner layer: PartitionK(2, ...) must be bit-for-bit the
// historical bipartition path for every method — same cost, same sets
// in the same order, same trace.
func TestKWayK2MatchesBipartition(t *testing.T) {
	cases := []struct {
		name   string
		m      Method
		passes int
	}{
		{"greedy", MethodGreedy, 0},
		{"kl", MethodKL, 0},
		{"anneal", MethodAnneal, 0},
		{"fm", MethodFM, -1},
		{"fm1", MethodFM, 1},
		{"fm2", MethodFM, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < kwaySeeds; seed++ {
				rng := rand.New(rand.NewSource(seed))
				n := 2 + rng.Intn(30)
				g := randomGraph(rng, n, rng.Intn(4*n))
				kp := g.PartitionK(2, tc.m, tc.passes)
				bp := g.PartitionWithPasses(tc.m, tc.passes)
				checkKPartitionShape(t, g, kp, 2)
				if kp.Cost != bp.Cost {
					t.Fatalf("seed %d: k-way cost %d, bipartition cost %d", seed, kp.Cost, bp.Cost)
				}
				if !samePartition(kp.Bipartition(), bp) {
					t.Fatalf("seed %d: k=2 sets differ from bipartition", seed)
				}
				if len(kp.Trace) != len(bp.Trace) {
					t.Fatalf("seed %d: trace length %d vs %d", seed, len(kp.Trace), len(bp.Trace))
				}
				for i := range kp.Trace {
					if kp.Trace[i] != bp.Trace[i] {
						t.Fatalf("seed %d: trace[%d] = %d vs %d", seed, i, kp.Trace[i], bp.Trace[i])
					}
				}
			}
		})
	}
}

// TestKWayFigure4 sanity-checks the k-way walk on the paper's Figure 4
// graph: with more banks available than conflicting symbols, every
// positive-weight edge can be cut, and adding banks never hurts.
func TestKWayFigure4(t *testing.T) {
	g := figure4Graph()
	prev := g.PartitionK(2, MethodFM, -1).Cost
	for k := 3; k <= 6; k++ {
		p := g.PartitionK(k, MethodFM, -1)
		checkKPartitionShape(t, g, p, k)
		if p.Cost > prev {
			t.Errorf("k=%d cost %d worse than k=%d cost %d", k, p.Cost, k-1, prev)
		}
		prev = p.Cost
	}
}

// TestKWayMethodsProduceValidPartitions runs every heuristic method
// through the shape checker across ks — anneal included, which takes a
// different code path from the greedy/FM pair.
func TestKWayMethodsProduceValidPartitions(t *testing.T) {
	for _, m := range []Method{MethodGreedy, MethodKL, MethodAnneal, MethodFM} {
		for _, k := range []int{3, 4, 8} {
			for seed := int64(0); seed < 20; seed++ {
				rng := rand.New(rand.NewSource(seed))
				n := 2 + rng.Intn(24)
				g := randomGraph(rng, n, rng.Intn(3*n))
				checkKPartitionShape(t, g, g.PartitionK(k, m, 0), k)
			}
		}
	}
}

// FuzzKWayPartition drives PartitionK with fuzz-chosen graph shapes
// and bank counts, checking the structural invariants and the
// FM-K ≤ greedy-K guarantee on every input. CI runs it in the fuzz
// smoke job alongside the pipeline and exact-partition targets.
func FuzzKWayPartition(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(12), uint8(3))
	f.Add(int64(7), uint8(20), uint8(50), uint8(4))
	f.Add(int64(42), uint8(3), uint8(0), uint8(8))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, edgesRaw, kRaw uint8) {
		n := 2 + int(nRaw)%30
		edges := int(edgesRaw) % (4 * n)
		k := 2 + int(kRaw)%7
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, n, edges)
		greedy := g.PartitionK(k, MethodGreedy, 0)
		fm := g.PartitionK(k, MethodFM, -1)
		checkKPartitionShape(t, g, greedy, k)
		checkKPartitionShape(t, g, fm, k)
		checkKPartitionShape(t, g, g.PartitionK(k, MethodAnneal, 0), k)
		if fm.Cost > greedy.Cost {
			t.Errorf("k=%d: FM-K cost %d > greedy-K cost %d", k, fm.Cost, greedy.Cost)
		}
	})
}
