package minic

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v\nsource:\n%s", err, src)
	}
	return f
}

func parseErr(t *testing.T, src, wantSub string) {
	t.Helper()
	_, err := Parse(src)
	if err == nil {
		t.Fatalf("expected parse error containing %q", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err, wantSub)
	}
}

func TestParseGlobals(t *testing.T) {
	f := mustParse(t, `
int a;
float b = 1.5;
int c[10];
float d[2][3] = {1.0, 2.0, 3.0, 4.0};
int e, g[4], h = 7;
void main() {}
`)
	if len(f.Decls) != 7 {
		t.Fatalf("got %d decls, want 7", len(f.Decls))
	}
	if f.Decls[3].Name != "d" || len(f.Decls[3].Dims) != 2 {
		t.Errorf("decl d parsed wrong: %+v", f.Decls[3])
	}
	if f.Decls[5].Name != "g" || f.Decls[5].Dims[0] != 4 {
		t.Errorf("multi-declarator g parsed wrong: %+v", f.Decls[5])
	}
}

func TestParseFunctions(t *testing.T) {
	f := mustParse(t, `
int add(int a, int b) { return a + b; }
float half(float x) { return x * 0.5; }
void nop(void) {}
void main() {}
`)
	if len(f.Funcs) != 4 {
		t.Fatalf("got %d funcs, want 4", len(f.Funcs))
	}
	if len(f.Funcs[0].Params) != 2 || f.Funcs[0].Ret != TypeInt {
		t.Errorf("add parsed wrong")
	}
	if len(f.Funcs[2].Params) != 0 {
		t.Errorf("nop(void) should have no params")
	}
}

func TestParseStatements(t *testing.T) {
	mustParse(t, `
void main() {
	int i;
	;
	if (i) i = 1; else { i = 2; }
	while (i < 10) i++;
	for (i = 0; i < 5; i++) { continue; }
	for (;;) { break; }
	for (int j = 0; j < 3; j++) {}
	{ int k = 1; k += 2; }
	return;
}
`)
}

func TestParseDoWhile(t *testing.T) {
	f := mustParse(t, `void main() { int i = 0; do { i++; } while (i < 3); }`)
	dw, ok := f.Funcs[0].Body.Stmts[1].(*DoWhileStmt)
	if !ok {
		t.Fatalf("statement is %T, want DoWhileStmt", f.Funcs[0].Body.Stmts[1])
	}
	if dw.Cond == nil || dw.Body == nil {
		t.Fatal("do-while missing parts")
	}
	parseErr(t, `void main() { do {} (1); }`, "expected while")
	parseErr(t, `void main() { do {} while (1) }`, "expected ;")
}

func TestParseExpressionPrecedence(t *testing.T) {
	f := mustParse(t, `void main() { int x; x = 1 + 2 * 3; }`)
	stmt := f.Funcs[0].Body.Stmts[1].(*ExprStmt)
	asg := stmt.X.(*AssignExpr)
	add := asg.Rhs.(*BinaryExpr)
	if add.Op != Plus {
		t.Fatalf("top operator %v, want +", add.Op)
	}
	if mul, ok := add.R.(*BinaryExpr); !ok || mul.Op != Star {
		t.Fatalf("* should bind tighter than +")
	}
}

func TestParseRightAssociativeAssign(t *testing.T) {
	f := mustParse(t, `void main() { int a; int b; a = b = 3; }`)
	stmt := f.Funcs[0].Body.Stmts[2].(*ExprStmt)
	outer := stmt.X.(*AssignExpr)
	if _, ok := outer.Rhs.(*AssignExpr); !ok {
		t.Fatal("assignment should be right-associative")
	}
}

func TestParseTernaryAndLogical(t *testing.T) {
	mustParse(t, `void main() { int a = 1; int b = a > 0 ? a : -a; int c = a && b || !a; }`)
}

func TestParseCasts(t *testing.T) {
	f := mustParse(t, `void main() { float x = 1.0; int i = (int)x + (int)(x * 2.0); }`)
	_ = f
}

func TestParse2DIndex(t *testing.T) {
	f := mustParse(t, `int m[3][4]; void main() { m[1][2] = m[0][0] + 1; }`)
	stmt := f.Funcs[0].Body.Stmts[0].(*ExprStmt)
	asg := stmt.X.(*AssignExpr)
	ix := asg.Lhs.(*IndexExpr)
	if len(ix.Idxs) != 2 {
		t.Fatalf("lhs has %d subscripts, want 2", len(ix.Idxs))
	}
}

func TestParsePostfixAndPrefix(t *testing.T) {
	mustParse(t, `int a[4]; void main() { int i = 0; a[i]++; ++i; --a[0]; i--; }`)
}

func TestParseErrors(t *testing.T) {
	parseErr(t, `void main() { 1 = 2; }`, "assignment target")
	parseErr(t, `int a[0]; void main() {}`, "positive")
	parseErr(t, `int a[2][2][2]; void main() {}`, "rank")
	parseErr(t, `void x; void main() {}`, "void")
	parseErr(t, `void f(int a[]) {} void main() {}`, "array parameters")
	parseErr(t, `void main() { if 1 {} }`, "expected (")
	parseErr(t, `void main() { int x = ; }`, "expected expression")
	parseErr(t, `void main() {`, "unterminated")
	parseErr(t, `void main() { x(); } int`, "expected")
}

func TestParseCallArguments(t *testing.T) {
	f := mustParse(t, `
int f(int a, int b, int c) { return a; }
void main() { f(1, 2 + 3, f(4, 5, 6)); }
`)
	stmt := f.Funcs[1].Body.Stmts[0].(*ExprStmt)
	call := stmt.X.(*CallExpr)
	if len(call.Args) != 3 {
		t.Fatalf("got %d args, want 3", len(call.Args))
	}
	if _, ok := call.Args[2].(*CallExpr); !ok {
		t.Fatal("nested call not parsed")
	}
}

func TestParseInitializers(t *testing.T) {
	f := mustParse(t, `
float w[4] = {1.0, -2.0, 3.0};
int m[2][2] = {{1, 2}, {3, 4}};
void main() {}
`)
	lst := f.Decls[0].Init.(*InitList)
	if len(lst.Elems) != 3 {
		t.Fatalf("w initializer has %d elems", len(lst.Elems))
	}
	nested := f.Decls[1].Init.(*InitList)
	if _, ok := nested.Elems[0].(*InitList); !ok {
		t.Fatal("nested initializer not parsed")
	}
}
