package sim

import "context"

// Batch amortizes CompiledMachine allocation across many runs: one
// Batch owns a machine whose arenas are grown to the largest program
// seen and re-sliced per run, so evaluating a family of configuration
// variants — the explorer's duplication subsets, the harness's batched
// dispatches — performs one lowering per variant and zero steady-state
// machine allocations. A Batch is not safe for concurrent use; give
// each worker its own.
type Batch struct {
	m CompiledMachine
}

// MachineFor readies the batch's machine for one run of cp: arenas are
// re-sliced (growing only when cp needs more than any earlier program)
// and reset to cp's initial images. The returned machine aliases the
// batch's storage — it is invalidated by the next MachineFor or Run
// call, so callers must finish reading results before reusing the
// batch.
func (b *Batch) MachineFor(cp *CompiledProgram) *CompiledMachine {
	m := &b.m
	if cap(m.Banks) < cp.nbanks {
		nb := make([][]uint32, cp.nbanks)
		copy(nb, m.Banks[:cap(m.Banks)])
		m.Banks = nb
	} else {
		m.Banks = m.Banks[:cp.nbanks]
	}
	for i := range m.Banks {
		if cap(m.Banks[i]) < cp.memWords {
			m.Banks[i] = make([]uint32, cp.memWords)
		} else {
			m.Banks[i] = m.Banks[i][:cp.memWords]
		}
	}
	m.X, m.Y = m.Banks[0], m.Banks[1]
	m.cp = cp
	m.MaxCycles = DefaultMaxSteps
	m.Reset()
	return m
}

// Run executes cp on the batch's recycled machine and returns it for
// result inspection. A failed or cancelled run leaves the batch
// reusable: the next call re-slices and resets the same storage, so
// one cancelled variant cannot poison its siblings.
func (b *Batch) Run(ctx context.Context, cp *CompiledProgram) (*CompiledMachine, error) {
	m := b.MachineFor(cp)
	if err := m.RunContext(ctx); err != nil {
		return nil, err
	}
	return m, nil
}
