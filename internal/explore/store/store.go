// Package store is the design-space explorer's on-disk checkpoint: a
// content-addressed key/value store of completed evaluations. Keys are
// the canonical evaluation identity (benchmark × configuration ×
// machine fingerprint); each record lands in its own JSON file named
// by the SHA-256 of its key, written atomically (temp file + rename),
// so a run killed at any instant leaves only whole records behind and
// a resumed run replays them instead of re-simulating. The store is
// safe for concurrent use by one process; cross-process writers are
// safe too because identical keys always carry identical contents.
//
// All disk traffic flows through a faultinject.FS, so the robustness
// suite can open a store over an injected filesystem and verify that
// I/O errors, latency spikes, and torn writes never publish a corrupt
// record — the atomic-write discipline confines damage to temp files
// that a later Open ignores.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"dualbank/internal/faultinject"
)

// Record is one checkpointed evaluation. The fields mirror what the
// explorer needs to rebuild a frontier point without re-running:
// cycles, the memory-footprint breakdown, and the duplication stats.
// Err, when non-empty, records an infeasible configuration (e.g. a
// duplication set that overflows a bank) so resumed runs skip it
// without retrying.
type Record struct {
	Bench  string `json:"bench"`
	Config string `json:"config"`
	Cycles int64  `json:"cycles"`

	MemXData int `json:"mem_x_data"`
	MemYData int `json:"mem_y_data"`
	MemStack int `json:"mem_stack"`
	MemInstr int `json:"mem_instr"`
	// MemExtra and MemNBanks carry the k-way footprint terms for
	// multi-bank design points; both are absent from classic records,
	// whose on-disk bytes are unchanged.
	MemExtra  []int `json:"mem_extra,omitempty"`
	MemNBanks int   `json:"mem_nbanks,omitempty"`

	DupStores  int      `json:"dup_stores"`
	Duplicated []string `json:"duplicated,omitempty"`

	Err string `json:"err,omitempty"`
}

// Store is a directory of checkpointed evaluations with an in-memory
// index. The zero value is not usable; call Open.
type Store struct {
	dir string
	fs  faultinject.FS

	mu   sync.Mutex
	recs map[string]Record // key -> record, loaded lazily at Open
}

// Key builds the canonical content address of one evaluation:
// benchmark name, configuration key, and the machine-configuration
// fingerprint the measurement depends on.
func Key(bench, config, fingerprint string) string {
	return bench + "|" + config + "|" + fingerprint
}

// Open creates (if needed) and loads the store rooted at dir on the
// real filesystem.
func Open(dir string) (*Store, error) {
	return OpenFS(dir, faultinject.OSFS{})
}

// OpenFS is Open over an explicit filesystem — the fault-injection
// seam. Corrupt or truncated record files — possible only from
// non-atomic external tampering — are skipped, not fatal: the
// evaluations re-run. A file that fails to read whole is likewise
// skipped rather than half-loaded.
func OpenFS(dir string, fsys faultinject.FS) (*Store, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, fs: fsys, recs: make(map[string]Record)}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := fsys.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		var f file
		if err := json.Unmarshal(data, &f); err != nil || f.Key == "" {
			continue
		}
		s.recs[f.Key] = f.Record
	}
	return s, nil
}

// file is the on-disk framing: the full key rides along with the
// record so the index can be rebuilt from the files alone.
type file struct {
	Key    string `json:"key"`
	Record Record `json:"record"`
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of loaded records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Get returns the record stored under key, if any.
func (s *Store) Get(key string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.recs[key]
	return r, ok
}

// GetOrLoad is Get falling through to disk on an index miss — the
// cross-process read path. A record another writer published into the
// same directory after this store opened is read, verified against the
// key (the file embeds it), indexed, and returned. Because keys are
// content addresses, a loaded record can never be stale: any file at
// the key's name holds the key's one value.
func (s *Store) GetOrLoad(key string) (Record, bool) {
	if r, ok := s.Get(key); ok {
		return r, true
	}
	data, err := s.fs.ReadFile(filepath.Join(s.dir, fileName(key)))
	if err != nil {
		return Record{}, false
	}
	var f file
	if err := json.Unmarshal(data, &f); err != nil || f.Key != key {
		return Record{}, false
	}
	s.mu.Lock()
	s.recs[key] = f.Record
	s.mu.Unlock()
	return f.Record, true
}

// Snapshot copies the whole index. The robustness suite compares it
// against a fresh Open of the same directory to prove the disk state
// reloads identically.
func (s *Store) Snapshot() map[string]Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Record, len(s.recs))
	for k, r := range s.recs {
		out[k] = r
	}
	return out
}

// Put checkpoints one evaluation, writing through to disk atomically
// before indexing it. A later Put of the same key overwrites — keys
// are content addresses, so the record is necessarily identical and
// the overwrite is idempotent. On any write failure the temp file is
// discarded and the index is left untouched: a failed Put never
// publishes a partial record, on disk or in memory.
func (s *Store) Put(key string, r Record) error {
	data, err := json.MarshalIndent(file{Key: key, Record: r}, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	name := fileName(key)
	tmp, err := s.fs.CreateTemp(s.dir, name+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		s.fs.Remove(tmp.Name())
		return fmt.Errorf("store: writing %s: %w", name, firstErr(werr, cerr))
	}
	if err := s.fs.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		s.fs.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	s.recs[key] = r
	s.mu.Unlock()
	return nil
}

func firstErr(a, b error) error {
	if a != nil {
		return a
	}
	return b
}

// fileName is the content address on disk: the SHA-256 of the key.
func fileName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + ".json"
}

// PruneStats reports one Prune pass.
type PruneStats struct {
	// Kept and Removed count record files; KeptBytes is the surviving
	// on-disk footprint.
	Kept, Removed int
	KeptBytes     int64
	// TempSwept counts stale temp files cleaned up alongside.
	TempSwept int
}

// Prune bounds the store's disk footprint, evicting whole record files
// least-recently-written first (LRU by modification time) until the
// total fits maxBytes, and dropping any record older than maxAge. A
// zero bound disables that dimension; Prune(0, 0) only sweeps stale
// temp files (leftovers of writers killed mid-Put, eligible once they
// are an hour old).
//
// Prune is safe against concurrent writers, local or in other
// processes: eviction removes only whole published files, a Put racing
// an eviction either lands before it (and may be evicted — it is the
// oldest-cohort loser) or after it (and survives), and a re-Put of an
// evicted key rewrites the identical content under the identical name,
// so no interleaving can publish a torn or wrong record. Evicted keys
// are dropped from this store's index; other stores over the same
// directory may index them a while longer, which is harmless — a
// content-addressed record that re-appears is byte-identical.
func (s *Store) Prune(maxBytes int64, maxAge time.Duration) (PruneStats, error) {
	var st PruneStats
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return st, fmt.Errorf("store: %w", err)
	}
	type rec struct {
		name  string
		size  int64
		mtime time.Time
	}
	now := time.Now()
	var recs []rec
	var total int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // vanished mid-scan: a concurrent prune or writer
		}
		if !strings.HasSuffix(e.Name(), ".json") {
			// A temp file. Sweep it only once it is stale: an hour is
			// far beyond any live Put's temp-file lifetime.
			if strings.Contains(e.Name(), ".json.tmp") && now.Sub(info.ModTime()) > time.Hour {
				if s.fs.Remove(filepath.Join(s.dir, e.Name())) == nil {
					st.TempSwept++
				}
			}
			continue
		}
		recs = append(recs, rec{name: e.Name(), size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
	}
	// Oldest first; ties broken by name so concurrent pruners converge
	// on the same victims.
	sort.Slice(recs, func(i, j int) bool {
		if !recs[i].mtime.Equal(recs[j].mtime) {
			return recs[i].mtime.Before(recs[j].mtime)
		}
		return recs[i].name < recs[j].name
	})
	// Reverse map file name → key, to drop evicted records from the
	// index; names not in it belong to other writers' records.
	s.mu.Lock()
	byName := make(map[string]string, len(s.recs))
	for k := range s.recs {
		byName[fileName(k)] = k
	}
	s.mu.Unlock()
	for _, r := range recs {
		evict := (maxBytes > 0 && total > maxBytes) ||
			(maxAge > 0 && now.Sub(r.mtime) > maxAge)
		if !evict {
			st.Kept++
			st.KeptBytes += r.size
			continue
		}
		if err := s.fs.Remove(filepath.Join(s.dir, r.name)); err != nil {
			// Already gone (a concurrent pruner won the race) or an
			// injected fault: either way the file no longer counts as
			// ours to evict, but keep its size conservative if it may
			// still exist.
			st.Kept++
			st.KeptBytes += r.size
			continue
		}
		total -= r.size
		st.Removed++
		if key, ok := byName[r.name]; ok {
			s.mu.Lock()
			delete(s.recs, key)
			s.mu.Unlock()
		}
	}
	return st, nil
}
