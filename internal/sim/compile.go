package sim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"dualbank/internal/compact"
	"dualbank/internal/ir"
	"dualbank/internal/machine"
)

// This file implements the compiled execution engine: a scheduled
// compact.Program is lowered once into threaded code — per-basic-block
// dense arrays of specialized closures with registers as direct array
// indices, branch/call targets resolved to block indices, and
// statically-resolvable banks (and, under the low-order model,
// statically-resolvable address parities) baked in at lowering time.
// Where the predecoded engine still dispatches a switch per operation
// per cycle, the compiled engine dispatches one indirect call per
// operation and aggregates every statically-known counter delta
// (cycles, occupied slots, memory accesses, dual-access cycles, even
// low-order conflict stalls of direct accesses) to a single add per
// basic block.
//
// The reference interpreter evaluates every operation of a long
// instruction against the pre-instruction register file before any
// result commits. The lowering proves, per instruction, an execution
// order under which committing each result immediately is
// indistinguishable from that two-phase scheme (readers of a register
// or symbol ordered before its writer); instructions where no such
// order exists — a genuine anti-dependence cycle, e.g. a packed
// register swap — fall back to a staged form that buffers results in a
// pending-write array exactly like the reference, reusing the
// predecoded engine's operand evaluators so the semantics stay pinned.
//
// sim.Machine remains the reference; the differential suite pins this
// engine to identical cycle counts, bandwidth counters, and memory
// images across the whole benchmark suite, exactly as it pins
// FastMachine.

// cOp is one compiled operation: a specialized closure over the
// executing machine. Closures capture only lowering-time constants, so
// one CompiledProgram is shared by any number of machines.
type cOp func(*CompiledMachine)

// ctrl kinds, a dense encoding of the PCU slot.
const (
	cNone uint8 = iota
	cBr
	cCondBr
	cRet
	cDo
	cEndDo
	cCall
)

// cInstr is one lowered long instruction.
type cInstr struct {
	ops []cOp
	// npend, when non-zero, marks the staged fallback: the ops buffer
	// npend results into the machine's pending-write array, committed
	// in slot order after the whole read phase.
	npend uint8
	// canFault gates the per-instruction fault check (indexed accesses,
	// division, and every staged instruction).
	canFault bool
	// dyn marks dynamic port accounting (low-order model with at least
	// one run-time-resolved access): the closures count ports and
	// finishDyn settles the bandwidth counters and conflict stall.
	dyn bool
	// statPX and statPY are the statically-resolved bank-0/bank-1
	// access counts a dyn instruction contributes on top of its
	// run-time ports (the low-order model is 2-bank only); statM is the
	// total static access count across every bank.
	statPX, statPY, statM int8

	ctrl    uint8
	ctrlReg uint8
	succ0   int32
	succ1   int32
	callee  *cFunc
}

// cBlock is one lowered basic block with its statically-aggregated
// counter deltas, applied in a single step at block entry.
type cBlock struct {
	instrs    []cInstr
	cycles    int64 // instruction count plus static low-order stalls
	nops      int64
	mem       int64
	dual      int64
	conflicts int64
}

// cFunc is one lowered function; blocks are indexed by ir block ID.
type cFunc struct {
	name   string
	blocks []cBlock
	entry  int32
}

// CompiledProgram is a program lowered for the compiled engine,
// produced by Compile and shared by any number of CompiledMachines.
type CompiledProgram struct {
	Prog *compact.Program

	main     *cFunc
	ports    machine.PortModel
	lowOrder bool
	// Bank geometry, resolved once from Prog.Spec.
	nbanks, pports int
	bankOf         [machine.MaxUnits]uint8
	// memWords is the per-bank arena length: the data high-water mark
	// of the program's symbol layout, so machines carry (and Reset
	// restores) kilobytes instead of the architectural full banks.
	memWords int
	// initBanks are the initial bank images, memWords long each.
	initBanks [][]uint32
}

// MemWords returns the per-bank arena length in words.
func (cp *CompiledProgram) MemWords() int { return cp.memWords }

// cPend is one buffered result of a staged instruction's read phase.
type cPend struct {
	val   uint32
	addr  int32
	reg   uint8
	isMem bool
	bank  uint8
}

// CompiledMachine executes a compiled program. It reproduces the
// reference Machine's observable behaviour exactly — cycle counts,
// bandwidth and conflict counters, and final memory images — with one
// indirect call per operation and a single counter update per basic
// block. Its memory arenas cover only the program's used address
// range, so allocating and resetting machines is cheap enough to do
// per run.
type CompiledMachine struct {
	cp *CompiledProgram

	// Banks are the data-memory bank arenas (MemWords long); X and Y
	// alias Banks[0] and Banks[1] (every spec has at least two).
	Banks [][]uint32
	X, Y  []uint32
	// Regs is the unified physical register file view.
	Regs [65]uint32

	// Cycles, OpsExecuted, MemAccesses, DualMemCycles and BankConflicts
	// mirror the reference Machine's counters.
	Cycles        int64
	OpsExecuted   int64
	MemAccesses   int64
	DualMemCycles int64
	BankConflicts int64
	// MaxCycles bounds execution.
	MaxCycles int64

	loops  [maxHWLoopDepth]int32
	nloops int

	portX, portY int32
	fault        error
	pend         [machine.MaxUnits]cPend

	cancel ctxCheck
}

// errCycleLimit marks a dynamic (conflict-stall) cycle-limit overrun.
var errCycleLimit = errors.New("cycle limit exceeded")

// Compile lowers a scheduled program for the compiled engine. The
// program must be in physical-register form.
func Compile(p *compact.Program) (*CompiledProgram, error) {
	spec := p.Spec.Norm()
	cp := &CompiledProgram{
		Prog:     p,
		ports:    p.Ports,
		lowOrder: p.Ports == machine.PortsLowOrder,
		nbanks:   spec.Banks,
		pports:   spec.PortsPerBank,
	}
	for u := range cp.bankOf {
		if i := spec.BankOfUnit(machine.Unit(u)).Index(); i >= 0 {
			cp.bankOf[u] = uint8(i)
		}
	}

	// Arena sizing: the allocator lays symbols out densely from word 0,
	// so the high-water mark of Addr+Size bounds every access either
	// engine can make.
	high := 0
	for _, s := range p.Src.Symbols() {
		if end := s.Addr + s.Size; end > high {
			high = end
		}
	}
	words := high
	if cp.lowOrder {
		words = (high + cp.nbanks - 1) / cp.nbanks
	}
	if words < 1 {
		words = 1
	}
	if words > machine.BankWords {
		words = machine.BankWords
	}
	cp.memWords = words
	cp.initBanks = make([][]uint32, cp.nbanks)
	for b := range cp.initBanks {
		cp.initBanks[b] = make([]uint32, words)
	}
	for _, s := range p.Src.Symbols() {
		for i, w := range s.Init {
			a := s.Addr + i
			if cp.lowOrder {
				cp.initBanks[a%cp.nbanks][a/cp.nbanks] = w
				continue
			}
			if s.Bank == machine.BankBoth {
				for b := range cp.initBanks {
					cp.initBanks[b][a] = w
				}
				continue
			}
			cp.initBanks[bankIndexOf(s.Bank, cp.nbanks)][a] = w
		}
	}

	funcs := make(map[string]*cFunc, len(p.Funcs))
	for name, f := range p.Funcs {
		if !f.Src.Phys() {
			return nil, fmt.Errorf("sim: compile %s: program must be in physical-register form", name)
		}
		funcs[name] = &cFunc{name: name, entry: int32(f.Src.Entry().ID)}
	}
	for name, f := range p.Funcs {
		cf := funcs[name]
		cf.blocks = make([]cBlock, len(f.Blocks))
		for bi, sb := range f.Blocks {
			cb := &cf.blocks[bi]
			cb.instrs = make([]cInstr, 0, len(sb.Instrs))
			for _, in := range sb.Instrs {
				ci, err := lowerInstr(in, sb, funcs, cp)
				if err != nil {
					return nil, fmt.Errorf("sim: compile %s: %w", name, err)
				}
				// Fold the instruction's static counter deltas into the
				// block aggregate.
				cb.cycles++
				cb.nops += instrNops(in)
				if !ci.dyn {
					px, py, sm := int(ci.statPX), int(ci.statPY), int(ci.statM)
					ci.statPX, ci.statPY, ci.statM = 0, 0, 0
					cb.mem += int64(sm)
					if sm >= 2 {
						cb.dual++
					}
					if cp.lowOrder && (px > 1 || py > 1) {
						cb.cycles++
						cb.conflicts++
						cb.dual--
					}
				}
				cb.instrs = append(cb.instrs, ci)
			}
		}
	}
	cp.main = funcs["main"]
	if cp.main == nil {
		return nil, fmt.Errorf("sim: compile: no main function")
	}
	return cp, nil
}

// instrNops counts occupied slots, including the control op.
func instrNops(in *compact.Instr) int64 {
	var n int64
	for _, op := range in.Slots {
		if op != nil {
			n++
		}
	}
	return n
}

// lowerInstr lowers one long instruction: control resolution, the
// anti-dependence analysis choosing direct vs staged form, and closure
// generation.
func lowerInstr(in *compact.Instr, sb *compact.Block, funcs map[string]*cFunc, cp *CompiledProgram) (cInstr, error) {
	ci := cInstr{ctrl: cNone, succ0: -1, succ1: -1}
	type dataOp struct {
		op   *ir.Op
		unit machine.Unit
	}
	var data []dataOp
	for u, op := range in.Slots {
		if op == nil {
			continue
		}
		switch op.Kind {
		case ir.OpBr:
			ci.ctrl = cBr
			ci.succ0 = int32(sb.Src.Succs[0].ID)
		case ir.OpCondBr:
			ci.ctrl = cCondBr
			ci.ctrlReg = uint8(op.Args[0])
			ci.succ0 = int32(sb.Src.Succs[0].ID)
			ci.succ1 = int32(sb.Src.Succs[1].ID)
		case ir.OpRet:
			ci.ctrl = cRet
		case ir.OpDo:
			ci.ctrl = cDo
			ci.ctrlReg = uint8(op.Args[0])
			ci.succ0 = int32(sb.Src.Succs[0].ID)
		case ir.OpEndDo:
			ci.ctrl = cEndDo
			ci.succ0 = int32(sb.Src.Succs[0].ID)
			ci.succ1 = int32(sb.Src.Succs[1].ID)
		case ir.OpCall:
			callee := funcs[op.Callee]
			if callee == nil {
				return cInstr{}, fmt.Errorf("call to unknown %s", op.Callee)
			}
			ci.ctrl = cCall
			ci.callee = callee
		default:
			data = append(data, dataOp{op: op, unit: machine.Unit(u)})
		}
	}
	if len(data) == 0 {
		return ci, nil
	}

	order, ok := commitOrder(func(i int) *ir.Op { return data[i].op }, len(data))
	lowOrder := cp.lowOrder
	if ok {
		// Direct form: execute in the proven order, commit immediately.
		ci.ops = make([]cOp, 0, len(data))
		for _, di := range order {
			d := data[di]
			f, canFault, dyn, bank, err := lowerDirect(d.op, d.unit, cp)
			if err != nil {
				return cInstr{}, err
			}
			ci.ops = append(ci.ops, f)
			ci.canFault = ci.canFault || canFault
			if d.op.IsMem() {
				if dyn {
					ci.dyn = true
				} else {
					ci.statM++
					switch bank {
					case 0:
						ci.statPX++
					case 1:
						ci.statPY++
					}
				}
			}
		}
		return ci, nil
	}

	// Staged form: a genuine anti-dependence cycle. Buffer every result
	// in slot order and commit after the read phase, exactly like the
	// reference's two-phase scheme. Under the low-order model all port
	// accounting goes dynamic — correctness over speed on this rare
	// path.
	ci.ops = make([]cOp, 0, len(data))
	ci.canFault = true
	for k, d := range data {
		po, err := predecodeOp(d.op, d.unit, cp.ports, &cp.bankOf, cp.nbanks)
		if err != nil {
			return cInstr{}, err
		}
		ci.ops = append(ci.ops, lowerStaged(d.op, po, k, lowOrder))
		if d.op.IsMem() {
			if lowOrder {
				ci.dyn = true
			} else {
				ci.statM++
				switch po.bank {
				case 0:
					ci.statPX++
				case 1:
					ci.statPY++
				}
			}
		}
	}
	ci.npend = uint8(len(data))
	return ci, nil
}

// commitOrder proves an immediate-commit execution order for n data
// operations: every reader of a register or symbol runs before that
// register's or symbol's writer, and writes to the same destination
// keep slot order. It returns the order (a permutation of 0..n-1,
// preferring slot order among ready operations so lowering is
// deterministic) and whether one exists; a cyclic anti-dependence —
// e.g. a packed register swap — has none.
func commitOrder(op func(int) *ir.Op, n int) ([]int, bool) {
	if n > machine.MaxUnits {
		return nil, false
	}
	var before [machine.MaxUnits][machine.MaxUnits]bool
	var uses [machine.MaxUnits][]ir.Reg
	var buf [4 * machine.MaxUnits]ir.Reg
	scratch := buf[:0]
	for i := 0; i < n; i++ {
		start := len(scratch)
		scratch = op(i).Uses(scratch)
		uses[i] = scratch[start:]
	}
	def := func(i int) ir.Reg {
		o := op(i)
		if o.Kind == ir.OpStore {
			return ir.NoReg
		}
		return o.Dst
	}
	for j := 0; j < n; j++ {
		oj := op(j)
		dj := def(j)
		for i := 0; i < n; i++ {
			if i == j {
				continue
			}
			oi := op(i)
			// Register anti-dependence: i reads what j writes.
			if dj != ir.NoReg {
				for _, u := range uses[i] {
					if u == dj {
						before[i][j] = true
						break
					}
				}
			}
			// Memory anti-dependence: a load of a symbol runs before a
			// store to it.
			if oj.Kind == ir.OpStore && oi.Kind == ir.OpLoad && oi.Sym == oj.Sym {
				before[i][j] = true
			}
			// Output dependences keep slot order: stores to the same
			// symbol, or two writes of the same register.
			if i < j {
				if oj.Kind == ir.OpStore && oi.Kind == ir.OpStore && oi.Sym == oj.Sym {
					before[i][j] = true
				}
				if dj != ir.NoReg && def(i) == dj {
					before[i][j] = true
				}
			}
		}
	}
	order := make([]int, 0, n)
	var done [machine.MaxUnits]bool
	for len(order) < n {
		picked := -1
		for j := 0; j < n && picked < 0; j++ {
			if done[j] {
				continue
			}
			ready := true
			for i := 0; i < n; i++ {
				if !done[i] && i != j && before[i][j] {
					ready = false
					break
				}
			}
			if ready {
				picked = j
			}
		}
		if picked < 0 {
			return nil, false
		}
		done[picked] = true
		order = append(order, picked)
	}
	return order, true
}

// setFault records the first fault of an instruction's read phase.
func (m *CompiledMachine) setFault(err error) {
	if m.fault == nil {
		m.fault = err
	}
}

// lowerDirect generates the specialized immediate-commit closure for
// one data operation. canFault reports whether the closure can set the
// machine fault; for memory operations dyn reports a run-time-resolved
// bank (low-order indexed access) and bank the static bank index.
func lowerDirect(op *ir.Op, u machine.Unit, cp *CompiledProgram) (f cOp, canFault, dyn bool, bank uint8, err error) {
	if op.IsMem() {
		f, canFault, dyn, bank, err = lowerMemDirect(op, u, cp)
		return
	}
	f, canFault, err = lowerALUDirect(op)
	return
}

// lowerMemDirect lowers a load or store. Bank resolution follows the
// port model: the executing unit under the banked model, the
// operation's tag under the dual-ported model, the address low bits —
// static for direct accesses, run-time for indexed ones — under the
// low-order model. Banks 0 and 1 get closures over the dedicated X/Y
// aliases, exactly the classic machine's code; wider specs index the
// bank table.
func lowerMemDirect(op *ir.Op, u machine.Unit, cp *CompiledProgram) (f cOp, canFault, dyn bool, bank uint8, err error) {
	base := int32(op.Sym.Addr)
	size := int32(op.Sym.Size)
	load := op.Kind == ir.OpLoad
	dst := uint8(op.Dst)
	val := uint8(op.Args[0])
	idx := uint8(0)
	if op.Idx != ir.NoReg {
		idx = uint8(op.Idx)
	}

	lowOrder := cp.lowOrder
	switch cp.ports {
	case machine.PortsBanked:
		bank = cp.bankOf[u]
	case machine.PortsDualPorted:
		bank = uint8(bankIndexOf(op.Bank, cp.nbanks))
	}

	if idx == 0 {
		// Direct access: the address — and under the low-order model
		// its bank — is a lowering-time constant.
		if size < 1 {
			serr := fmt.Errorf("index 0 out of range (size %d)", size)
			return func(m *CompiledMachine) { m.setFault(serr) }, true, false, bank, nil
		}
		addr := base
		if lowOrder {
			bank = uint8(int(addr) % cp.nbanks)
			addr = int32(int(addr) / cp.nbanks)
		}
		bk := int(bank)
		switch {
		case load && bank == 1:
			f = func(m *CompiledMachine) { m.Regs[dst] = m.Y[addr] }
		case load && bank == 0:
			f = func(m *CompiledMachine) { m.Regs[dst] = m.X[addr] }
		case load:
			f = func(m *CompiledMachine) { m.Regs[dst] = m.Banks[bk][addr] }
		case bank == 1:
			f = func(m *CompiledMachine) { m.Y[addr] = m.Regs[val] }
		case bank == 0:
			f = func(m *CompiledMachine) { m.X[addr] = m.Regs[val] }
		default:
			f = func(m *CompiledMachine) { m.Banks[bk][addr] = m.Regs[val] }
		}
		return f, false, false, bank, nil
	}

	if lowOrder {
		// Indexed low-order access: parity, and therefore the bank and
		// the port it occupies, resolve at run time.
		if load {
			f = func(m *CompiledMachine) {
				i := int32(m.Regs[idx])
				if uint32(i) >= uint32(size) {
					m.setFault(fmt.Errorf("index %d out of range (size %d)", i, size))
					return
				}
				a := base + i
				if a&1 == 0 {
					m.portX++
					m.Regs[dst] = m.X[a>>1]
				} else {
					m.portY++
					m.Regs[dst] = m.Y[a>>1]
				}
			}
		} else {
			f = func(m *CompiledMachine) {
				i := int32(m.Regs[idx])
				if uint32(i) >= uint32(size) {
					m.setFault(fmt.Errorf("index %d out of range (size %d)", i, size))
					return
				}
				a := base + i
				if a&1 == 0 {
					m.portX++
					m.X[a>>1] = m.Regs[val]
				} else {
					m.portY++
					m.Y[a>>1] = m.Regs[val]
				}
			}
		}
		return f, true, true, 0, nil
	}

	bk := int(bank)
	switch {
	case load && bank == 1:
		f = func(m *CompiledMachine) {
			i := int32(m.Regs[idx])
			if uint32(i) >= uint32(size) {
				m.setFault(fmt.Errorf("index %d out of range (size %d)", i, size))
				return
			}
			m.Regs[dst] = m.Y[base+i]
		}
	case load && bank == 0:
		f = func(m *CompiledMachine) {
			i := int32(m.Regs[idx])
			if uint32(i) >= uint32(size) {
				m.setFault(fmt.Errorf("index %d out of range (size %d)", i, size))
				return
			}
			m.Regs[dst] = m.X[base+i]
		}
	case load:
		f = func(m *CompiledMachine) {
			i := int32(m.Regs[idx])
			if uint32(i) >= uint32(size) {
				m.setFault(fmt.Errorf("index %d out of range (size %d)", i, size))
				return
			}
			m.Regs[dst] = m.Banks[bk][base+i]
		}
	case bank == 1:
		f = func(m *CompiledMachine) {
			i := int32(m.Regs[idx])
			if uint32(i) >= uint32(size) {
				m.setFault(fmt.Errorf("index %d out of range (size %d)", i, size))
				return
			}
			m.Y[base+i] = m.Regs[val]
		}
	case bank == 0:
		f = func(m *CompiledMachine) {
			i := int32(m.Regs[idx])
			if uint32(i) >= uint32(size) {
				m.setFault(fmt.Errorf("index %d out of range (size %d)", i, size))
				return
			}
			m.X[base+i] = m.Regs[val]
		}
	default:
		f = func(m *CompiledMachine) {
			i := int32(m.Regs[idx])
			if uint32(i) >= uint32(size) {
				m.setFault(fmt.Errorf("index %d out of range (size %d)", i, size))
				return
			}
			m.Banks[bk][base+i] = m.Regs[val]
		}
	}
	return f, true, false, bank, nil
}

// errDivZero is the shared division fault.
var errDivZero = errors.New("integer division by zero")

// lowerALUDirect generates the specialized closure for one scalar
// operation; semantics match Machine.evalALU (and opt.EvalIntBin)
// exactly — 32-bit two's-complement wraparound, masked shift counts,
// arithmetic right shift, float32 arithmetic on raw bit patterns.
func lowerALUDirect(op *ir.Op) (cOp, bool, error) {
	dst := uint8(op.Dst)
	a0 := uint8(op.Args[0])
	a1 := uint8(op.Args[1])
	fb := math.Float32bits
	ff := math.Float32frombits

	switch op.Kind {
	case ir.OpConst:
		imm := uint32(int32(op.Imm))
		return func(m *CompiledMachine) { m.Regs[dst] = imm }, false, nil
	case ir.OpFConst:
		imm := fb(float32(op.FImm))
		return func(m *CompiledMachine) { m.Regs[dst] = imm }, false, nil
	case ir.OpMov:
		return func(m *CompiledMachine) { m.Regs[dst] = m.Regs[a0] }, false, nil
	case ir.OpAdd:
		return func(m *CompiledMachine) {
			m.Regs[dst] = uint32(int32(m.Regs[a0]) + int32(m.Regs[a1]))
		}, false, nil
	case ir.OpSub:
		return func(m *CompiledMachine) {
			m.Regs[dst] = uint32(int32(m.Regs[a0]) - int32(m.Regs[a1]))
		}, false, nil
	case ir.OpMul:
		return func(m *CompiledMachine) {
			m.Regs[dst] = uint32(int32(m.Regs[a0]) * int32(m.Regs[a1]))
		}, false, nil
	case ir.OpDiv:
		return func(m *CompiledMachine) {
			b := int32(m.Regs[a1])
			if b == 0 {
				m.setFault(errDivZero)
				return
			}
			m.Regs[dst] = uint32(int32(m.Regs[a0]) / b)
		}, true, nil
	case ir.OpRem:
		return func(m *CompiledMachine) {
			b := int32(m.Regs[a1])
			if b == 0 {
				m.setFault(errDivZero)
				return
			}
			m.Regs[dst] = uint32(int32(m.Regs[a0]) % b)
		}, true, nil
	case ir.OpAnd:
		return func(m *CompiledMachine) { m.Regs[dst] = m.Regs[a0] & m.Regs[a1] }, false, nil
	case ir.OpOr:
		return func(m *CompiledMachine) { m.Regs[dst] = m.Regs[a0] | m.Regs[a1] }, false, nil
	case ir.OpXor:
		return func(m *CompiledMachine) { m.Regs[dst] = m.Regs[a0] ^ m.Regs[a1] }, false, nil
	case ir.OpShl:
		return func(m *CompiledMachine) {
			m.Regs[dst] = uint32(int32(m.Regs[a0]) << (m.Regs[a1] & 31))
		}, false, nil
	case ir.OpShr:
		return func(m *CompiledMachine) {
			m.Regs[dst] = uint32(int32(m.Regs[a0]) >> (m.Regs[a1] & 31))
		}, false, nil
	case ir.OpNeg:
		return func(m *CompiledMachine) { m.Regs[dst] = uint32(-int32(m.Regs[a0])) }, false, nil
	case ir.OpNot:
		return func(m *CompiledMachine) { m.Regs[dst] = ^m.Regs[a0] }, false, nil
	case ir.OpMac:
		return func(m *CompiledMachine) {
			m.Regs[dst] = uint32(int32(m.Regs[dst]) + int32(m.Regs[a0])*int32(m.Regs[a1]))
		}, false, nil
	case ir.OpSetEQ:
		return func(m *CompiledMachine) { m.Regs[dst] = cb2i(m.Regs[a0] == m.Regs[a1]) }, false, nil
	case ir.OpSetNE:
		return func(m *CompiledMachine) { m.Regs[dst] = cb2i(m.Regs[a0] != m.Regs[a1]) }, false, nil
	case ir.OpSetLT:
		return func(m *CompiledMachine) {
			m.Regs[dst] = cb2i(int32(m.Regs[a0]) < int32(m.Regs[a1]))
		}, false, nil
	case ir.OpSetLE:
		return func(m *CompiledMachine) {
			m.Regs[dst] = cb2i(int32(m.Regs[a0]) <= int32(m.Regs[a1]))
		}, false, nil
	case ir.OpSetGT:
		return func(m *CompiledMachine) {
			m.Regs[dst] = cb2i(int32(m.Regs[a0]) > int32(m.Regs[a1]))
		}, false, nil
	case ir.OpSetGE:
		return func(m *CompiledMachine) {
			m.Regs[dst] = cb2i(int32(m.Regs[a0]) >= int32(m.Regs[a1]))
		}, false, nil
	case ir.OpFAdd:
		return func(m *CompiledMachine) {
			m.Regs[dst] = fb(ff(m.Regs[a0]) + ff(m.Regs[a1]))
		}, false, nil
	case ir.OpFSub:
		return func(m *CompiledMachine) {
			m.Regs[dst] = fb(ff(m.Regs[a0]) - ff(m.Regs[a1]))
		}, false, nil
	case ir.OpFMul:
		return func(m *CompiledMachine) {
			m.Regs[dst] = fb(ff(m.Regs[a0]) * ff(m.Regs[a1]))
		}, false, nil
	case ir.OpFDiv:
		return func(m *CompiledMachine) {
			m.Regs[dst] = fb(ff(m.Regs[a0]) / ff(m.Regs[a1]))
		}, false, nil
	case ir.OpFNeg:
		return func(m *CompiledMachine) { m.Regs[dst] = fb(-ff(m.Regs[a0])) }, false, nil
	case ir.OpFMac:
		return func(m *CompiledMachine) {
			m.Regs[dst] = fb(ff(m.Regs[dst]) + ff(m.Regs[a0])*ff(m.Regs[a1]))
		}, false, nil
	case ir.OpFSetEQ:
		return func(m *CompiledMachine) { m.Regs[dst] = cb2i(ff(m.Regs[a0]) == ff(m.Regs[a1])) }, false, nil
	case ir.OpFSetNE:
		return func(m *CompiledMachine) { m.Regs[dst] = cb2i(ff(m.Regs[a0]) != ff(m.Regs[a1])) }, false, nil
	case ir.OpFSetLT:
		return func(m *CompiledMachine) { m.Regs[dst] = cb2i(ff(m.Regs[a0]) < ff(m.Regs[a1])) }, false, nil
	case ir.OpFSetLE:
		return func(m *CompiledMachine) { m.Regs[dst] = cb2i(ff(m.Regs[a0]) <= ff(m.Regs[a1])) }, false, nil
	case ir.OpFSetGT:
		return func(m *CompiledMachine) { m.Regs[dst] = cb2i(ff(m.Regs[a0]) > ff(m.Regs[a1])) }, false, nil
	case ir.OpFSetGE:
		return func(m *CompiledMachine) { m.Regs[dst] = cb2i(ff(m.Regs[a0]) >= ff(m.Regs[a1])) }, false, nil
	case ir.OpIntToFloat:
		return func(m *CompiledMachine) { m.Regs[dst] = fb(float32(int32(m.Regs[a0]))) }, false, nil
	case ir.OpFloatToInt:
		return func(m *CompiledMachine) { m.Regs[dst] = uint32(FloatToInt(ff(m.Regs[a0]))) }, false, nil
	}
	return nil, false, fmt.Errorf("cannot compile %s", op.Kind)
}

// cb2i is b2i for the compiled closures (branch-free enough in
// practice; the comparisons above use unsigned forms where the signed
// and unsigned results agree, i.e. EQ/NE).
func cb2i(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// lowerStaged generates one staged (two-phase) closure: it evaluates
// against the pre-commit register file via the predecoded engine's
// shared evaluators — keeping this rare path pinned to the reference
// by construction — and buffers the result at pending slot k.
func lowerStaged(op *ir.Op, po pOp, k int, lowOrder bool) cOp {
	switch op.Kind {
	case ir.OpLoad:
		dst := uint8(op.Dst)
		return func(m *CompiledMachine) {
			addr, bank, err := resolvePOp(&m.Regs, &po, lowOrder)
			if err != nil {
				m.setFault(err)
				return
			}
			if lowOrder {
				if bank == 1 {
					m.portY++
				} else {
					m.portX++
				}
			}
			m.pend[k] = cPend{val: m.Banks[bank][addr], reg: dst}
		}
	case ir.OpStore:
		val := uint8(op.Args[0])
		return func(m *CompiledMachine) {
			addr, bank, err := resolvePOp(&m.Regs, &po, lowOrder)
			if err != nil {
				m.setFault(err)
				return
			}
			if lowOrder {
				if bank == 1 {
					m.portY++
				} else {
					m.portX++
				}
			}
			m.pend[k] = cPend{val: m.Regs[val], addr: addr, isMem: true, bank: bank}
		}
	default:
		dst := uint8(op.Dst)
		return func(m *CompiledMachine) {
			v, err := evalPOp(&m.Regs, &po)
			if err != nil {
				m.setFault(err)
				return
			}
			m.pend[k] = cPend{val: v, reg: dst}
		}
	}
}

// NewMachine builds a fresh CompiledMachine: arenas hold the initial
// images, registers are zero.
func (cp *CompiledProgram) NewMachine() *CompiledMachine {
	m := &CompiledMachine{
		cp:        cp,
		Banks:     make([][]uint32, cp.nbanks),
		MaxCycles: DefaultMaxSteps,
	}
	for b := range m.Banks {
		m.Banks[b] = make([]uint32, cp.memWords)
		copy(m.Banks[b], cp.initBanks[b])
	}
	m.X, m.Y = m.Banks[0], m.Banks[1]
	return m
}

// Reset restores the machine to its initial state so it can be run
// again without reallocating. Unlike the predecoded engine's Reset,
// this touches only the program's used address range.
func (m *CompiledMachine) Reset() {
	for b := range m.Banks {
		copy(m.Banks[b], m.cp.initBanks[b])
	}
	m.Regs = [65]uint32{}
	m.Cycles = 0
	m.OpsExecuted = 0
	m.MemAccesses = 0
	m.DualMemCycles = 0
	m.BankConflicts = 0
	m.nloops = 0
	m.portX, m.portY = 0, 0
	m.fault = nil
}

// Run executes main() to completion.
func (m *CompiledMachine) Run() error {
	return m.RunContext(context.Background())
}

// RunContext executes main() to completion, honoring ctx: the run loop
// polls for cancellation at basic-block boundaries with the same
// stride-256 decimation as the other engines.
func (m *CompiledMachine) RunContext(ctx context.Context) error {
	m.cancel.arm(ctx)
	defer m.cancel.disarm()
	return m.runFunc(m.cp.main)
}

// runFunc executes one function invocation until its ret.
func (m *CompiledMachine) runFunc(f *cFunc) error {
	bi := f.entry
block:
	for {
		if err := m.cancel.poll(); err != nil {
			return fmt.Errorf("sim: %s: %w", f.name, err)
		}
		b := &f.blocks[bi]
		// One aggregated counter update per block. The pre-added cycles
		// all retire by the block's end, so partial sums never exceed
		// the run's final total and the limit check cannot fire
		// spuriously; dynamic conflict stalls re-check in finishDyn.
		m.Cycles += b.cycles
		m.OpsExecuted += b.nops
		m.MemAccesses += b.mem
		m.DualMemCycles += b.dual
		m.BankConflicts += b.conflicts
		if m.Cycles > m.MaxCycles {
			return fmt.Errorf("sim: cycle limit exceeded in %s", f.name)
		}
		for ii := range b.instrs {
			in := &b.instrs[ii]
			for _, op := range in.ops {
				op(m)
			}
			if in.canFault && m.fault != nil {
				err := m.fault
				m.fault = nil
				return fmt.Errorf("sim: %s: %w", f.name, err)
			}
			if in.npend > 0 {
				m.commit(int(in.npend))
			}
			if in.dyn {
				m.finishDyn(in)
				if m.fault != nil {
					err := m.fault
					m.fault = nil
					return fmt.Errorf("sim: %s: %w", f.name, err)
				}
			}
			switch in.ctrl {
			case cNone:
			case cBr:
				bi = in.succ0
				continue block
			case cCondBr:
				if m.Regs[in.ctrlReg] != 0 {
					bi = in.succ0
				} else {
					bi = in.succ1
				}
				continue block
			case cRet:
				return nil
			case cDo:
				n := int32(m.Regs[in.ctrlReg])
				if n < 1 {
					return fmt.Errorf("sim: do with count %d in %s", n, f.name)
				}
				if m.nloops >= maxHWLoopDepth {
					return fmt.Errorf("sim: loop stack overflow in %s", f.name)
				}
				m.loops[m.nloops] = n
				m.nloops++
				bi = in.succ0
				continue block
			case cEndDo:
				if m.nloops == 0 {
					return fmt.Errorf("sim: enddo with empty loop stack in %s", f.name)
				}
				m.loops[m.nloops-1]--
				if m.loops[m.nloops-1] > 0 {
					bi = in.succ0
				} else {
					m.nloops--
					bi = in.succ1
				}
				continue block
			case cCall:
				if err := m.runFunc(in.callee); err != nil {
					return err
				}
			}
		}
		return fmt.Errorf("sim: block b%d of %s has no terminator", bi, f.name)
	}
}

// commit flushes the first n pending writes in slot order — the staged
// instruction's write phase.
func (m *CompiledMachine) commit(n int) {
	for i := 0; i < n; i++ {
		p := &m.pend[i]
		if p.isMem {
			m.Banks[p.bank][p.addr] = p.val
		} else {
			m.Regs[p.reg] = p.val
		}
	}
}

// finishDyn settles a dynamic-port instruction's bandwidth counters:
// run-time port counts plus the statically-resolved accesses, the
// dual-access credit, and the low-order same-bank conflict stall.
func (m *CompiledMachine) finishDyn(in *cInstr) {
	px := int32(in.statPX) + m.portX
	py := int32(in.statPY) + m.portY
	m.portX, m.portY = 0, 0
	total := px + py
	if total == 0 {
		return
	}
	m.MemAccesses += int64(total)
	if total >= 2 {
		m.DualMemCycles++
	}
	if px > 1 || py > 1 {
		m.Cycles++
		m.BankConflicts++
		m.DualMemCycles--
		if m.Cycles > m.MaxCycles {
			m.setFault(errCycleLimit)
		}
	}
}

// Word reads sym[idx], mirroring Machine.Word: the bank-0 copy for
// duplicated symbols, with a coherence check across every bank.
func (m *CompiledMachine) Word(sym *ir.Symbol, idx int) (uint32, error) {
	a := sym.Addr + idx
	if m.cp.lowOrder {
		return m.Banks[a%m.cp.nbanks][a/m.cp.nbanks], nil
	}
	if sym.Bank == machine.BankBoth {
		v := m.Banks[0][a]
		for b := 1; b < m.cp.nbanks; b++ {
			if m.Banks[b][a] != v {
				return 0, fmt.Errorf("sim: duplicated symbol %s[%d] incoherent: %s=%#x %s=%#x",
					sym, idx, machine.BankAt(0), v, machine.BankAt(b), m.Banks[b][a])
			}
		}
		return v, nil
	}
	return m.Banks[bankIndexOf(sym.Bank, m.cp.nbanks)][a], nil
}

// Int32 reads sym[idx] as an integer.
func (m *CompiledMachine) Int32(sym *ir.Symbol, idx int) (int32, error) {
	w, err := m.Word(sym, idx)
	return int32(w), err
}

// Float32 reads sym[idx] as a float.
func (m *CompiledMachine) Float32(sym *ir.Symbol, idx int) (float32, error) {
	w, err := m.Word(sym, idx)
	return math.Float32frombits(w), err
}
