package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"dualbank/internal/explore/store"
)

// freePorts reserves n distinct loopback ports and releases them, so a
// test can hand the daemon addresses that double as ring identities.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	lns := make([]net.Listener, n)
	for i := range ports {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		ports[i] = ln.Addr().(*net.TCPAddr).Port
	}
	for _, ln := range lns {
		ln.Close()
	}
	return ports
}

func awaitListen(t *testing.T, stdout, stderr *syncBuffer) string {
	t.Helper()
	re := regexp.MustCompile(`listening on ([0-9.]+:[0-9]+)`)
	for deadline := time.Now().Add(5 * time.Second); ; {
		if m := re.FindStringSubmatch(stdout.String()); m != nil {
			return m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; stderr: %s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunClusterMode boots a two-node fleet through the real flag
// surface (-self/-peers/-store), verifies the nodes see each other on
// the ring, serves a request through each, and shuts the fleet down
// with the process manager's signal.
func TestRunClusterMode(t *testing.T) {
	ports := freePorts(t, 2)
	addrs := []string{
		fmt.Sprintf("127.0.0.1:%d", ports[0]),
		fmt.Sprintf("127.0.0.1:%d", ports[1]),
	}
	dir := t.TempDir()

	var outs, errs [2]syncBuffer
	done := make(chan int, 2)
	for i := range addrs {
		i := i
		peer := addrs[1-i]
		go func() {
			done <- run([]string{
				"-addr", addrs[i], "-self", addrs[i], "-peers", peer,
				"-store", dir, "-workers", "2",
			}, &outs[i], &errs[i])
		}()
	}
	for i := range addrs {
		awaitListen(t, &outs[i], &errs[i])
	}

	// Both nodes converge on a two-member ring (join announcements may
	// still be in flight right after the listen line).
	for _, addr := range addrs {
		var ring struct {
			Members []string `json:"members"`
		}
		for deadline := time.Now().Add(5 * time.Second); ; {
			resp, err := http.Get("http://" + addr + "/v1/cluster/ring")
			if err != nil {
				t.Fatal(err)
			}
			err = json.NewDecoder(resp.Body).Decode(&ring)
			resp.Body.Close()
			if err == nil && len(ring.Members) == 2 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s ring never reached 2 members: %+v", addr, ring)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// A request through either node succeeds and both return the same
	// measurement (the second ride is the first's cached result, owner
	// or forwarded).
	var bodies [2][]byte
	for i, addr := range addrs {
		resp, err := http.Post("http://"+addr+"/v1/run", "application/json",
			strings.NewReader(`{"bench":"fir_32_1","mode":"CB"}`))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("node %d run: %d %s", i, resp.StatusCode, b)
		}
		bodies[i] = b
	}
	var a, b map[string]any
	json.Unmarshal(bodies[0], &a)
	json.Unmarshal(bodies[1], &b)
	if a["cycles"] != b["cycles"] {
		t.Fatalf("nodes disagree: %v vs %v", a["cycles"], b["cycles"])
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case code := <-done:
			if code != 0 {
				t.Fatalf("exit %d; stderr: %s | %s", code, errs[0].String(), errs[1].String())
			}
		case <-time.After(20 * time.Second):
			t.Fatal("fleet did not shut down on SIGTERM")
		}
	}
}

// TestRunStorePrune boots the daemon against a result store holding
// backdated records over the byte budget and asserts the startup prune
// reports evicting them.
func TestRunStorePrune(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("prune-smoke-%d", i)
		if err := st.Put(key, store.Record{Cycles: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		os.Chtimes(dir+"/"+e.Name(), old, old)
	}

	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0", "-workers", "1",
			"-store", dir, "-store-max-bytes", "1",
		}, &stdout, &stderr)
	}()
	awaitListen(t, &stdout, &stderr)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatal("server did not shut down on SIGTERM")
	}
	if !strings.Contains(stdout.String(), "store prune:") {
		t.Errorf("no prune report in stdout: %q", stdout.String())
	}
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("%d records survived a 1-byte budget", len(left))
	}
}
