package minic

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParserNeverPanics feeds random byte soup and random token soup
// to the front-end: it must return errors, never panic or hang.
func TestParserNeverPanics(t *testing.T) {
	f := func(junk []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on input %q: %v", junk, r)
				ok = false
			}
		}()
		file, err := Parse(string(junk))
		if err == nil {
			// Valid parses must also survive analysis without panicking.
			_ = Analyze(file)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParserNeverPanicsOnTokenSoup builds inputs from valid token
// spellings in random order — much deeper parser penetration than raw
// bytes.
func TestParserNeverPanicsOnTokenSoup(t *testing.T) {
	words := []string{
		"int", "float", "void", "if", "else", "while", "for", "do",
		"switch", "case", "default", "return", "break", "continue",
		"x", "y", "main", "f", "42", "1.5", "0x10",
		"(", ")", "{", "}", "[", "]", ",", ";", "?", ":",
		"+", "-", "*", "/", "%", "&", "|", "^", "~", "!",
		"<<", ">>", "&&", "||", "++", "--",
		"==", "!=", "<", "<=", ">", ">=",
		"=", "+=", "-=", "*=", "/=", "%=",
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(40)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte(' ')
		}
		src := sb.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on token soup %q: %v", src, r)
				}
			}()
			file, err := Parse(src)
			if err == nil {
				_ = Analyze(file)
			}
		}()
	}
}

// TestDeepNestingBounded: pathological nesting depth must not crash
// the recursive-descent parser within reasonable limits.
func TestDeepNestingBounded(t *testing.T) {
	depth := 2000
	src := "void main() { int x = " + strings.Repeat("(", depth) + "1" +
		strings.Repeat(")", depth) + "; }"
	file, err := Parse(src)
	if err != nil {
		t.Fatalf("deep parens rejected: %v", err)
	}
	if err := Analyze(file); err != nil {
		t.Fatalf("deep parens failed analysis: %v", err)
	}
}
