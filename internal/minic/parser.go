package minic

// Parser is a recursive-descent parser for MiniC.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a complete MiniC translation unit.
func Parse(src string) (*File, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.file()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k Kind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	return Token{}, errf(p.cur().Pos, "expected %s, found %s", k, p.cur())
}

func (p *Parser) isType() bool {
	k := p.cur().Kind
	return k == KwInt || k == KwFloat || k == KwVoid
}

func (p *Parser) typeName() (TypeName, error) {
	switch p.next().Kind {
	case KwInt:
		return TypeInt, nil
	case KwFloat:
		return TypeFloat, nil
	case KwVoid:
		return TypeVoid, nil
	}
	return TypeVoid, errf(p.toks[p.pos-1].Pos, "expected type name")
}

func (p *Parser) file() (*File, error) {
	f := &File{}
	for !p.at(EOF) {
		if !p.isType() {
			return nil, errf(p.cur().Pos, "expected declaration, found %s", p.cur())
		}
		typ, err := p.typeName()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if p.at(LParen) {
			fn, err := p.funcRest(typ, name)
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fn)
			continue
		}
		decls, err := p.varDeclRest(typ, name)
		if err != nil {
			return nil, err
		}
		f.Decls = append(f.Decls, decls...)
	}
	return f, nil
}

// varDeclRest parses the remainder of a variable declaration after the
// type and first identifier have been consumed, through the semicolon.
func (p *Parser) varDeclRest(typ TypeName, first Token) ([]*VarDecl, error) {
	if typ == TypeVoid {
		return nil, errf(first.Pos, "variable %q declared void", first.Text)
	}
	var out []*VarDecl
	name := first
	for {
		d := &VarDecl{Pos: name.Pos, Name: name.Text, Type: typ}
		for p.accept(LBrack) {
			n, err := p.expect(INTLIT)
			if err != nil {
				return nil, err
			}
			if n.Int <= 0 {
				return nil, errf(n.Pos, "array dimension must be positive")
			}
			if _, err := p.expect(RBrack); err != nil {
				return nil, err
			}
			d.Dims = append(d.Dims, int(n.Int))
		}
		if len(d.Dims) > 2 {
			return nil, errf(d.Pos, "arrays of rank > 2 are not supported")
		}
		if p.accept(Assign) {
			init, err := p.initializer()
			if err != nil {
				return nil, err
			}
			d.Init = init
		}
		out = append(out, d)
		if p.accept(Comma) {
			var err error
			name, err = p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			continue
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return out, nil
	}
}

func (p *Parser) initializer() (Expr, error) {
	if p.at(LBrace) {
		lb := p.next()
		lst := &InitList{exprBase: exprBase{Pos: lb.Pos}}
		for !p.at(RBrace) {
			e, err := p.initializer()
			if err != nil {
				return nil, err
			}
			lst.Elems = append(lst.Elems, e)
			if !p.accept(Comma) {
				break
			}
		}
		if _, err := p.expect(RBrace); err != nil {
			return nil, err
		}
		return lst, nil
	}
	return p.assignExpr()
}

func (p *Parser) funcRest(ret TypeName, name Token) (*FuncDecl, error) {
	fn := &FuncDecl{Pos: name.Pos, Name: name.Text, Ret: ret}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	if !p.accept(RParen) {
		// Allow the C idiom f(void).
		if p.at(KwVoid) && p.toks[p.pos+1].Kind == RParen {
			p.next()
			p.next()
		} else {
			for {
				typ, err := p.typeName()
				if err != nil {
					return nil, err
				}
				if typ == TypeVoid {
					return nil, errf(p.cur().Pos, "void parameter")
				}
				id, err := p.expect(IDENT)
				if err != nil {
					return nil, err
				}
				if p.at(LBrack) {
					return nil, errf(id.Pos, "array parameters are not supported; use a global array")
				}
				fn.Params = append(fn.Params, &VarDecl{Pos: id.Pos, Name: id.Text, Type: typ})
				if !p.accept(Comma) {
					break
				}
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
		}
	}
	body, err := p.blockStmt()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) blockStmt() (*BlockStmt, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: lb.Pos}
	for !p.at(RBrace) {
		if p.at(EOF) {
			return nil, errf(lb.Pos, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.next()
	return blk, nil
}

func (p *Parser) stmt() (Stmt, error) {
	switch p.cur().Kind {
	case LBrace:
		return p.blockStmt()
	case Semi:
		t := p.next()
		return &EmptyStmt{Pos: t.Pos}, nil
	case KwInt, KwFloat:
		return p.declStmt()
	case KwVoid:
		return nil, errf(p.cur().Pos, "void local variable")
	case KwIf:
		return p.ifStmt()
	case KwWhile:
		return p.whileStmt()
	case KwDo:
		return p.doWhileStmt()
	case KwSwitch:
		return p.switchStmt()
	case KwFor:
		return p.forStmt()
	case KwReturn:
		t := p.next()
		r := &ReturnStmt{Pos: t.Pos}
		if !p.at(Semi) {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			r.X = x
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return r, nil
	case KwBreak:
		t := p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: t.Pos}, nil
	case KwContinue:
		t := p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: t.Pos}, nil
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return &ExprStmt{X: x}, nil
}

// declStmt parses a local declaration statement. Multiple declarators
// are wrapped in a BlockStmt-free sequence by returning a BlockStmt
// when needed; single declarators return the DeclStmt directly.
func (p *Parser) declStmt() (Stmt, error) {
	typ, err := p.typeName()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	decls, err := p.varDeclRest(typ, name)
	if err != nil {
		return nil, err
	}
	if len(decls) == 1 {
		return &DeclStmt{Decl: decls[0]}, nil
	}
	blk := &BlockStmt{Pos: decls[0].Pos}
	for _, d := range decls {
		blk.Stmts = append(blk.Stmts, &DeclStmt{Decl: d})
	}
	return blk, nil
}

func (p *Parser) parenExpr() (Expr, error) {
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	return x, nil
}

func (p *Parser) ifStmt() (Stmt, error) {
	t := p.next()
	cond, err := p.parenExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.stmt()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Pos: t.Pos, Cond: cond, Then: then}
	if p.accept(KwElse) {
		els, err := p.stmt()
		if err != nil {
			return nil, err
		}
		s.Else = els
	}
	return s, nil
}

func (p *Parser) whileStmt() (Stmt, error) {
	t := p.next()
	cond, err := p.parenExpr()
	if err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: t.Pos, Cond: cond, Body: body}, nil
}

func (p *Parser) switchStmt() (Stmt, error) {
	t := p.next()
	x, err := p.parenExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	sw := &SwitchStmt{Pos: t.Pos, X: x}
	for !p.at(RBrace) {
		if p.at(EOF) {
			return nil, errf(t.Pos, "unterminated switch")
		}
		var c *SwitchCase
		switch p.cur().Kind {
		case KwCase:
			ct := p.next()
			v, err := p.condExpr()
			if err != nil {
				return nil, err
			}
			c = &SwitchCase{Pos: ct.Pos, Val: v}
		case KwDefault:
			ct := p.next()
			c = &SwitchCase{Pos: ct.Pos, Default: true}
		default:
			return nil, errf(p.cur().Pos, "expected case or default, found %s", p.cur())
		}
		if _, err := p.expect(Colon); err != nil {
			return nil, err
		}
		for !p.at(KwCase) && !p.at(KwDefault) && !p.at(RBrace) && !p.at(EOF) {
			s, err := p.stmt()
			if err != nil {
				return nil, err
			}
			c.Stmts = append(c.Stmts, s)
		}
		sw.Cases = append(sw.Cases, c)
	}
	p.next()
	return sw, nil
}

func (p *Parser) doWhileStmt() (Stmt, error) {
	t := p.next()
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KwWhile); err != nil {
		return nil, err
	}
	cond, err := p.parenExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return &DoWhileStmt{Pos: t.Pos, Body: body, Cond: cond}, nil
}

func (p *Parser) forStmt() (Stmt, error) {
	t := p.next()
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	s := &ForStmt{Pos: t.Pos}
	if !p.at(Semi) {
		if p.at(KwInt) || p.at(KwFloat) {
			d, err := p.declStmt() // consumes the semicolon
			if err != nil {
				return nil, err
			}
			s.Init = d
		} else {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Init = &ExprStmt{X: x}
			if _, err := p.expect(Semi); err != nil {
				return nil, err
			}
		}
	} else {
		p.next()
	}
	if !p.at(Semi) {
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Cond = x
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if !p.at(RParen) {
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Post = x
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// --- Expressions (C precedence) ---

func (p *Parser) expr() (Expr, error) { return p.assignExpr() }

func isAssignOp(k Kind) bool {
	switch k {
	case Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign,
		PercentAssign, AmpAssign, PipeAssign, CaretAssign, ShlAssign, ShrAssign:
		return true
	}
	return false
}

func (p *Parser) assignExpr() (Expr, error) {
	lhs, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	if isAssignOp(p.cur().Kind) {
		op := p.next()
		switch lhs.(type) {
		case *Ident, *IndexExpr:
		default:
			return nil, errf(op.Pos, "assignment target must be a variable or array element")
		}
		rhs, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		return &AssignExpr{exprBase: exprBase{Pos: op.Pos}, Op: op.Kind, Lhs: lhs, Rhs: rhs}, nil
	}
	return lhs, nil
}

func (p *Parser) condExpr() (Expr, error) {
	c, err := p.binExpr(0)
	if err != nil {
		return nil, err
	}
	if p.at(Question) {
		q := p.next()
		then, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Colon); err != nil {
			return nil, err
		}
		els, err := p.condExpr()
		if err != nil {
			return nil, err
		}
		return &CondExpr{exprBase: exprBase{Pos: q.Pos}, Cond: c, Then: then, Else: els}, nil
	}
	return c, nil
}

// binPrec gives C binary-operator precedence (higher binds tighter).
func binPrec(k Kind) int {
	switch k {
	case Star, Slash, Percent:
		return 10
	case Plus, Minus:
		return 9
	case Shl, Shr:
		return 8
	case LT, LE, GT, GE:
		return 7
	case EQ, NE:
		return 6
	case Amp:
		return 5
	case Caret:
		return 4
	case Pipe:
		return 3
	case AndAnd:
		return 2
	case OrOr:
		return 1
	}
	return 0
}

func (p *Parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		prec := binPrec(p.cur().Kind)
		if prec == 0 || prec < minPrec {
			return lhs, nil
		}
		op := p.next()
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{exprBase: exprBase{Pos: op.Pos}, Op: op.Kind, L: lhs, R: rhs}
	}
}

func (p *Parser) unaryExpr() (Expr, error) {
	switch p.cur().Kind {
	case Minus, Bang, Tilde:
		op := p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{exprBase: exprBase{Pos: op.Pos}, Op: op.Kind, X: x}, nil
	case Plus:
		p.next()
		return p.unaryExpr()
	case Inc, Dec:
		op := p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &IncDecExpr{exprBase: exprBase{Pos: op.Pos}, Op: op.Kind, X: x}, nil
	case LParen:
		// Cast or parenthesised expression.
		if k := p.toks[p.pos+1].Kind; (k == KwInt || k == KwFloat) && p.toks[p.pos+2].Kind == RParen {
			lp := p.next()
			typ, _ := p.typeName()
			p.next() // RParen
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &CastExpr{exprBase: exprBase{Pos: lp.Pos}, To: typ, X: x}, nil
		}
	}
	return p.postfixExpr()
}

func (p *Parser) postfixExpr() (Expr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case LBrack:
			id, ok := x.(*Ident)
			if !ok {
				if ix, ok2 := x.(*IndexExpr); ok2 {
					// a[i][j]: extend the existing index expression.
					p.next()
					idx, err := p.expr()
					if err != nil {
						return nil, err
					}
					if _, err := p.expect(RBrack); err != nil {
						return nil, err
					}
					ix.Idxs = append(ix.Idxs, idx)
					continue
				}
				return nil, errf(p.cur().Pos, "indexing a non-array expression")
			}
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBrack); err != nil {
				return nil, err
			}
			x = &IndexExpr{exprBase: exprBase{Pos: id.Pos}, Arr: id, Idxs: []Expr{idx}}
		case Inc, Dec:
			op := p.next()
			x = &IncDecExpr{exprBase: exprBase{Pos: op.Pos}, Op: op.Kind, Postfix: true, X: x}
		default:
			return x, nil
		}
	}
}

func (p *Parser) primaryExpr() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case INTLIT:
		p.next()
		return &IntLit{exprBase: exprBase{Pos: t.Pos}, Val: t.Int}, nil
	case FLOATLIT:
		p.next()
		return &FloatLit{exprBase: exprBase{Pos: t.Pos}, Val: t.Flt}, nil
	case IDENT:
		p.next()
		if p.at(LParen) {
			p.next()
			call := &CallExpr{exprBase: exprBase{Pos: t.Pos}, Name: t.Text}
			for !p.at(RParen) {
				a, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.accept(Comma) {
					break
				}
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Ident{exprBase: exprBase{Pos: t.Pos}, Name: t.Text}, nil
	case LParen:
		return p.parenExpr()
	}
	return nil, errf(t.Pos, "expected expression, found %s", t)
}
