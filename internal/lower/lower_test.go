package lower

import (
	"math"
	"strings"
	"testing"

	"dualbank/internal/ir"
	"dualbank/internal/minic"
	"dualbank/internal/sim"
)

// compile lowers source without optimization.
func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	file, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := minic.Analyze(file); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	p, err := Program(file, "test")
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

// run lowers and interprets, returning the interpreter for inspection.
func run(t *testing.T, src string) *sim.Interp {
	t.Helper()
	p := compile(t, src)
	in := sim.NewInterp(p)
	if err := in.Run(); err != nil {
		t.Fatalf("interp: %v", err)
	}
	return in
}

func globalInt(t *testing.T, in *sim.Interp, name string, idx int) int32 {
	t.Helper()
	g := in.GlobalByName(name)
	if g == nil {
		t.Fatalf("no global %q", name)
	}
	return in.Int32(g, idx)
}

func globalFloat(t *testing.T, in *sim.Interp, name string, idx int) float32 {
	t.Helper()
	g := in.GlobalByName(name)
	if g == nil {
		t.Fatalf("no global %q", name)
	}
	return in.Float32(g, idx)
}

func TestLowerArithmetic(t *testing.T) {
	in := run(t, `
int r[12];
void main() {
	r[0] = 7 + 3;
	r[1] = 7 - 3;
	r[2] = 7 * 3;
	r[3] = 7 / 3;
	r[4] = 7 % 3;
	r[5] = -7;
	r[6] = 7 & 3;
	r[7] = 7 | 3;
	r[8] = 7 ^ 3;
	r[9] = ~7;
	r[10] = 7 << 2;
	r[11] = -8 >> 1;
}
`)
	want := []int32{10, 4, 21, 2, 1, -7, 3, 7, 4, -8, 28, -4}
	for i, w := range want {
		if got := globalInt(t, in, "r", i); got != w {
			t.Errorf("r[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestLowerFloatAndConversions(t *testing.T) {
	in := run(t, `
float f[4];
int i[2];
void main() {
	f[0] = 1.5 + 2.25;
	f[1] = 3;            // int -> float
	f[2] = 10.0 / 4.0;
	i[0] = (int)2.9;     // truncation
	i[1] = (int)-2.9;
	f[3] = (float)(7 / 2);
}
`)
	wantF := []float32{3.75, 3, 2.5, 3}
	for idx, w := range wantF {
		if got := globalFloat(t, in, "f", idx); got != w {
			t.Errorf("f[%d] = %g, want %g", idx, got, w)
		}
	}
	if got := globalInt(t, in, "i", 0); got != 2 {
		t.Errorf("i[0] = %d, want 2", got)
	}
	if got := globalInt(t, in, "i", 1); got != -2 {
		t.Errorf("i[1] = %d, want -2", got)
	}
}

func TestLowerControlFlow(t *testing.T) {
	in := run(t, `
int r[6];
void main() {
	int i;
	int sum = 0;
	for (i = 0; i < 10; i++) {
		if (i == 3) continue;
		if (i == 7) break;
		sum += i;
	}
	r[0] = sum; // 0+1+2+4+5+6 = 18

	int n = 0;
	while (n < 5) n++;
	r[1] = n;

	r[2] = 1 ? 10 : 20;
	r[3] = 0 ? 10 : 20;
	int a = 2;
	r[4] = (a > 1 && a < 3) ? 1 : 0;
	r[5] = (a < 1 || a == 2) ? 1 : 0;
}
`)
	want := []int32{18, 5, 10, 20, 1, 1}
	for i, w := range want {
		if got := globalInt(t, in, "r", i); got != w {
			t.Errorf("r[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestLowerShortCircuitSideEffects(t *testing.T) {
	in := run(t, `
int calls;
int bump() { calls += 1; return 1; }
void main() {
	int a = 0;
	if (a && bump()) {}
	if (a || bump()) {}
	if (1 || bump()) {}
	if (1 && bump()) {}
}
`)
	// bump must run exactly twice: once for `a || bump()` and once for
	// `1 && bump()`.
	if got := globalInt(t, in, "calls", 0); got != 2 {
		t.Errorf("calls = %d, want 2", got)
	}
}

func TestLowerIncDecSemantics(t *testing.T) {
	in := run(t, `
int r[4];
int a[2] = {10, 20};
void main() {
	int i = 5;
	r[0] = i++;  // 5, i becomes 6
	r[1] = ++i;  // 7
	r[2] = a[0]--; // 10, a[0] -> 9
	r[3] = --a[1]; // 19
}
`)
	want := []int32{5, 7, 10, 19}
	for i, w := range want {
		if got := globalInt(t, in, "r", i); got != w {
			t.Errorf("r[%d] = %d, want %d", i, got, w)
		}
	}
	if got := globalInt(t, in, "a", 0); got != 9 {
		t.Errorf("a[0] = %d, want 9", got)
	}
}

func TestLowerCompoundAssignOnArrayElement(t *testing.T) {
	// The index of a compound assignment must be evaluated once.
	in := run(t, `
int a[4] = {1, 1, 1, 1};
int evals;
int idx() { evals += 1; return 2; }
void main() {
	a[idx()] += 5;
}
`)
	if got := globalInt(t, in, "a", 2); got != 6 {
		t.Errorf("a[2] = %d, want 6", got)
	}
	if got := globalInt(t, in, "evals", 0); got != 1 {
		t.Errorf("index evaluated %d times, want 1", got)
	}
}

func TestLowerCallsAndParams(t *testing.T) {
	in := run(t, `
int r[3];
int add3(int a, int b, int c) { return a + b + c; }
float scale(float x, float k) { return x * k; }
int fib5() {
	int a = 0;
	int b = 1;
	int i;
	for (i = 0; i < 5; i++) {
		int t = a + b;
		a = b;
		b = t;
	}
	return a;
}
void main() {
	r[0] = add3(1, 2, 3);
	r[1] = (int)scale(4.0, 2.5);
	r[2] = fib5();
}
`)
	want := []int32{6, 10, 5}
	for i, w := range want {
		if got := globalInt(t, in, "r", i); got != w {
			t.Errorf("r[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestLower2DArrays(t *testing.T) {
	in := run(t, `
int m[3][4] = {{1, 2, 3, 4}, {5, 6, 7, 8}};
int r[3];
void main() {
	r[0] = m[1][2];         // 7
	m[2][3] = m[0][1] + 10; // 12
	r[1] = m[2][3];
	int i = 2;
	int j = 3;
	r[2] = m[i][j];
}
`)
	want := []int32{7, 12, 12}
	for i, w := range want {
		if got := globalInt(t, in, "r", i); got != w {
			t.Errorf("r[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestLowerLocalArrayInit(t *testing.T) {
	in := run(t, `
int out[3];
void fill() {
	int tmp[3] = {4, 5, 6};
	int i;
	for (i = 0; i < 3; i++) {
		out[i] = out[i] + tmp[i];
	}
}
void main() {
	fill();
	fill(); // locals re-initialize on every entry
}
`)
	want := []int32{8, 10, 12}
	for i, w := range want {
		if got := globalInt(t, in, "out", i); got != w {
			t.Errorf("out[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestLowerGlobalInitFlattening(t *testing.T) {
	p := compile(t, `
float w[4] = {1.5, -2.5};
int m[2][3] = {{1, 2}, {4}};
void main() {}
`)
	var w, m *ir.Symbol
	for _, g := range p.Globals {
		switch g.Name {
		case "w":
			w = g
		case "m":
			m = g
		}
	}
	if w == nil || len(w.Init) != 2 {
		t.Fatalf("w init = %v", w.Init)
	}
	if math.Float32frombits(w.Init[1]) != -2.5 {
		t.Errorf("w[1] init = %v", math.Float32frombits(w.Init[1]))
	}
	// Row initializers are padded to the row length.
	if m == nil || len(m.Init) != 6 {
		t.Fatalf("m init = %v", m.Init)
	}
	wantM := []int32{1, 2, 0, 4, 0, 0}
	for i, v := range wantM {
		if int32(m.Init[i]) != v {
			t.Errorf("m init[%d] = %d, want %d", i, int32(m.Init[i]), v)
		}
	}
}

func TestLowerReadOnlyMarking(t *testing.T) {
	p := compile(t, `
int ro[4] = {1, 2, 3, 4};
int rw[4];
void main() {
	rw[0] = ro[0];
}
`)
	for _, g := range p.Globals {
		switch g.Name {
		case "ro":
			if !g.ReadOnly {
				t.Error("ro should be read-only")
			}
		case "rw":
			if g.ReadOnly {
				t.Error("rw should not be read-only")
			}
		}
	}
}

func TestLowerLoopDepths(t *testing.T) {
	p := compile(t, `
int a[4];
void main() {
	int i;
	int j;
	a[0] = 1;              // depth 0
	for (i = 0; i < 2; i++) {
		a[1] = 2;          // depth 1
		for (j = 0; j < 2; j++) {
			a[2] = 3;      // depth 2
		}
	}
}
`)
	f := p.Func("main")
	maxDepth := 0
	for _, b := range f.Blocks {
		if b.LoopDepth > maxDepth {
			maxDepth = b.LoopDepth
		}
		for _, op := range b.Ops {
			if op.Kind == ir.OpStore && op.Sym.Name == "a" {
				// Identify which store by its constant source is hard
				// here; just check the entry block is depth 0.
			}
		}
	}
	if f.Entry().LoopDepth != 0 {
		t.Errorf("entry depth = %d, want 0", f.Entry().LoopDepth)
	}
	if maxDepth != 2 {
		t.Errorf("max loop depth = %d, want 2", maxDepth)
	}
}

func TestLowerRejectsRecursion(t *testing.T) {
	file, err := minic.Parse(`
int fact(int n) {
	if (n <= 1) return 1;
	return n * fact(n - 1);
}
void main() { int x = fact(5); }
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Analyze(file); err != nil {
		t.Fatal(err)
	}
	_, err = Program(file, "rec")
	if err == nil || !strings.Contains(err.Error(), "recursion") {
		t.Fatalf("lower = %v, want recursion error", err)
	}
}

func TestLowerRejectsMutualRecursion(t *testing.T) {
	file, err := minic.Parse(`
int g(int n);
`)
	_ = file
	_ = err
	// MiniC has no forward declarations, so mutual recursion cannot be
	// written; self-recursion coverage above suffices. This test
	// documents the restriction.
}

func TestLowerDoWhile(t *testing.T) {
	in := run(t, `
int r[3];
void main() {
	int i = 0;
	int s = 0;
	do {
		s += i;
		i++;
	} while (i < 5);
	r[0] = s; // 0+1+2+3+4 = 10

	// A do-while body always runs at least once.
	int n = 0;
	do {
		n = 99;
	} while (0);
	r[1] = n;

	// break and continue inside do-while.
	int k = 0;
	int c = 0;
	do {
		k++;
		if (k == 2) continue;
		if (k == 4) break;
		c += k;
	} while (k < 10);
	r[2] = c; // 1 + 3 = 4
}
`)
	want := []int32{10, 99, 4}
	for i, w := range want {
		if got := globalInt(t, in, "r", i); got != w {
			t.Errorf("r[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestLowerSwitch(t *testing.T) {
	in := run(t, `
int r[5];
int classify(int x) {
	int tag;
	switch (x) {
	case 0:
		tag = 100;
		break;
	case 1:
	case 2:
		tag = 200;       // 1 falls through to 2
		break;
	case -3:
		tag = 300;       // falls through into default
	default:
		tag = tag + 7;
	}
	return tag;
}
void main() {
	r[0] = classify(0);   // 100
	r[1] = classify(1);   // 200
	r[2] = classify(2);   // 200
	r[3] = classify(-3);  // 307
	r[4] = classify(99);  // default only: garbage + 7; use a defined path
	r[4] = classify(-3) - classify(2); // 107
}
`)
	want := []int32{100, 200, 200, 307, 107}
	for i, w := range want {
		if got := globalInt(t, in, "r", i); got != w {
			t.Errorf("r[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestLowerSwitchInsideLoop(t *testing.T) {
	in := run(t, `
int r;
void main() {
	int i;
	int s = 0;
	for (i = 0; i < 6; i++) {
		switch (i % 3) {
		case 0:
			s += 1;
			break;
		case 1:
			s += 10;
			break;
		default:
			s += 100;
		}
	}
	r = s; // 2*(1+10+100) = 222
}
`)
	if got := globalInt(t, in, "r", 0); got != 222 {
		t.Errorf("r = %d, want 222", got)
	}
}

func TestLowerContinueInSwitchTargetsLoop(t *testing.T) {
	in := run(t, `
int r;
void main() {
	int i;
	int s = 0;
	for (i = 0; i < 6; i++) {
		switch (i) {
		case 1:
		case 3:
			continue; // skip the accumulate below
		case 4:
			break;    // exits the switch, not the loop
		}
		s += i;
	}
	r = s; // 0 + 2 + 4 + 5 = 11
}
`)
	if got := globalInt(t, in, "r", 0); got != 11 {
		t.Errorf("r = %d, want 11", got)
	}
}

func TestLowerBackwardLoop(t *testing.T) {
	in := run(t, `
int r;
void main() {
	int i;
	int sum = 0;
	for (i = 10; i > 0; i--) {
		sum += i;
	}
	r = sum;
}
`)
	if got := globalInt(t, in, "r", 0); got != 55 {
		t.Errorf("r = %d, want 55", got)
	}
}

func TestLowerParamSlotsAreLocals(t *testing.T) {
	p := compile(t, `
int f(int a, float b) { return a + (int)b; }
void main() { int x = f(1, 2.0); }
`)
	f := p.Func("f")
	if len(f.Params) != 2 {
		t.Fatalf("f has %d param slots", len(f.Params))
	}
	if f.Params[0].Kind != ir.SymLocal || f.Params[0].Elem != ir.TInt {
		t.Errorf("param 0 = %+v", f.Params[0])
	}
	if f.Params[1].Elem != ir.TFloat {
		t.Errorf("param 1 = %+v", f.Params[1])
	}
}
