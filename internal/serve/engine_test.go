package serve_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dualbank/internal/serve"
)

// TestServeEngineOverride exercises the per-request engine pin: every
// valid engine name is accepted and produces the same measurement
// (the engines are differentially pinned), the dispatch is counted
// under the requested engine, distinct engines occupy distinct memo
// entries, and an unknown engine is a 400 before any work happens.
func TestServeEngineOverride(t *testing.T) {
	s := serve.New(serve.Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var cycles []int64
	for _, engine := range []string{"", "compiled", "fast", "machine"} {
		body := `{"bench":"fir_32_1","mode":"CB"`
		if engine != "" {
			body += `,"engine":"` + engine + `"`
		}
		body += `}`
		code, data := postRun(t, ts.Client(), ts.URL, body)
		if code != http.StatusOK {
			t.Fatalf("engine %q: status %d: %s", engine, code, data)
		}
		var resp serve.Response
		if err := json.Unmarshal(data, &resp); err != nil {
			t.Fatal(err)
		}
		cycles = append(cycles, resp.Cycles)
	}
	for i, c := range cycles {
		if c != cycles[0] {
			t.Errorf("engine arm %d measured %d cycles, arm 0 measured %d", i, c, cycles[0])
		}
	}

	// The default ("" → compiled) and the explicit "compiled" share a
	// memo entry; fast and machine each executed once more.
	if cs := s.CacheStats(); cs.Misses != 3 || cs.Hits != 1 {
		t.Errorf("cache stats %+v, want 3 misses (compiled, fast, machine) + 1 hit", cs)
	}
	snap := s.Metrics().Snapshot()
	if snap.EngineRuns["compiled"] != 2 || snap.EngineRuns["fast"] != 1 || snap.EngineRuns["machine"] != 1 {
		t.Errorf("engine dispatch mix %v, want compiled=2 fast=1 machine=1", snap.EngineRuns)
	}

	code, data := postRun(t, ts.Client(), ts.URL, `{"bench":"fir_32_1","engine":"turbo"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown engine: status %d: %s", code, data)
	}
	if !strings.Contains(string(data), "unknown engine") {
		t.Errorf("unknown-engine error body %s does not name the problem", data)
	}
}
