package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dualbank/internal/bench"
	"dualbank/internal/explore/store"
	"dualbank/internal/pipeline"
)

// Config sizes a Server. The zero value gets sensible defaults from
// New.
type Config struct {
	// Workers bounds concurrent compile+simulate jobs (default
	// GOMAXPROCS).
	Workers int
	// QueueDepth bounds accepted-but-unstarted jobs (default 2×Workers).
	QueueDepth int
	// DefaultTimeout applies to requests that set no timeout_ms
	// (default 10s); MaxTimeout clamps requested timeouts (default 60s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxSourceBytes caps the source field of a request (default 1 MiB);
	// the request body itself is capped slightly above it.
	MaxSourceBytes int
	// ExploreStore, when non-nil, checkpoints /v1/explore evaluations
	// and resumes submitted explorations from it.
	ExploreStore *store.Store
	// MaxExploreBudget clamps a submitted exploration's per-benchmark
	// evaluation budget (default 500).
	MaxExploreBudget int
}

// Server is the dspservd HTTP service: a mux, a worker pool, a
// single-flight memo cache for named-benchmark results, and a metrics
// registry.
//
//	POST /v1/run                   compile and simulate one benchmark or source
//	POST /v1/explore               submit an async design-space exploration
//	GET  /v1/explore/{id}          exploration job status
//	GET  /v1/explore/{id}/frontier completed exploration's Pareto report
//	GET  /v1/benchmarks            list benchmarks, modes, and partitioners
//	GET  /healthz                  liveness
//	GET  /metrics                  Prometheus text exposition
//	     /debug/pprof/             the standard profiling endpoints
type Server struct {
	cfg     Config
	harness *bench.Harness
	pool    *Pool
	metrics *Metrics
	mux     *http.ServeMux

	// Exploration jobs run in the background, outside the HTTP
	// handlers: jobsCtx parents every job (Close cancels it), jobsWG
	// tracks their goroutines, jobs is the id → job registry.
	jobsCtx    context.Context
	jobsCancel context.CancelFunc
	jobsWG     sync.WaitGroup
	jobsMu     sync.Mutex
	jobs       map[string]*exploreJob
	jobSeq     atomic.Int64
}

// New builds a ready-to-serve Server; callers must Close it to stop
// the worker pool.
func New(cfg Config) *Server {
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 10 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 60 * time.Second
	}
	if cfg.MaxSourceBytes <= 0 {
		cfg.MaxSourceBytes = 1 << 20
	}
	if cfg.MaxExploreBudget <= 0 {
		cfg.MaxExploreBudget = 500
	}
	s := &Server{
		cfg: cfg,
		// The harness's pool stays unused (the serve pool bounds
		// concurrency); it contributes the single-flight cache.
		harness: bench.NewHarness(1),
		metrics: NewMetrics(),
		mux:     http.NewServeMux(),
		jobs:    make(map[string]*exploreJob),
	}
	s.jobsCtx, s.jobsCancel = context.WithCancel(context.Background())
	s.pool = NewPool(cfg.Workers, cfg.QueueDepth, s.execute)

	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/explore", s.handleExploreSubmit)
	s.mux.HandleFunc("GET /v1/explore/{id}", s.handleExploreStatus)
	s.mux.HandleFunc("GET /v1/explore/{id}/frontier", s.handleExploreFrontier)
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the server's mux for mounting on an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool exposes the worker pool for occupancy checks.
func (s *Server) Pool() *Pool { return s.pool }

// Metrics exposes the metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// CacheStats reports the memo cache's traffic.
func (s *Server) CacheStats() bench.CacheStats { return s.harness.Stats() }

// Close stops the server's background work: exploration jobs are
// cancelled and waited for (their completed evaluations are already
// checkpointed — the store is write-through), then the worker pool is
// closed, cancelling in-flight measurements. Call it after
// http.Server.Shutdown has drained the handlers.
func (s *Server) Close() {
	s.jobsCancel()
	s.jobsWG.Wait()
	s.pool.Close()
}

// execute is the pool's RunFunc: named benchmarks flow through the
// single-flight memo cache, source jobs compile and simulate afresh.
func (s *Server) execute(ctx context.Context, cc *pipeline.Compiler, j Job) (bench.Result, bool, error) {
	ro := bench.RunOptions{
		Compiler: cc, Partitioner: j.Method,
		FMPasses: j.FMPasses, Profiled: j.Profiled, DupOnly: j.DupOnly,
	}
	if j.Cacheable {
		return s.harness.RunCtx(ctx, j.Prog, j.Mode, ro)
	}
	res, err := bench.RunCtx(ctx, j.Prog, j.Mode, ro)
	return res, false, err
}

// handleRun is POST /v1/run.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	done := s.metrics.RequestStart()
	defer done()

	// The body cap leaves headroom over the source cap for the JSON
	// framing and escaping around it.
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, int64(s.cfg.MaxSourceBytes)*2+4096))
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	job, err := DecodeRequest(data, s.cfg.MaxSourceBytes)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrUnknownBench) {
			code = http.StatusNotFound
		}
		s.fail(w, code, err)
		return
	}

	timeout := job.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	res, cached, err := s.pool.Do(ctx, job)
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	s.metrics.ObserveRun(res.CompileSeconds, res.SimSeconds)
	s.reply(w, http.StatusOK, ResponseFor(res, job.Method, cached))
}

// statusFor maps an execution error to its HTTP status: deadline
// overruns are the gateway-timeout family, client disconnects and
// shutdown are 503 (retry elsewhere), anything else — a compile error,
// a failed output check — is the request's fault.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, ErrStopped):
		return http.StatusServiceUnavailable
	default:
		return http.StatusUnprocessableEntity
	}
}

// benchmarksResponse is the body of GET /v1/benchmarks.
type benchmarksResponse struct {
	Benchmarks   []benchmarkInfo `json:"benchmarks"`
	Modes        []string        `json:"modes"`
	Partitioners []string        `json:"partitioners"`
}

type benchmarkInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Desc string `json:"desc"`
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	resp := benchmarksResponse{
		Modes:        Modes(),
		Partitioners: []string{"greedy", "kl", "anneal", "fm"},
	}
	for _, p := range append(bench.Kernels(), bench.Applications()...) {
		resp.Benchmarks = append(resp.Benchmarks, benchmarkInfo{
			Name: p.Name, Kind: p.Kind.String(), Desc: p.Desc,
		})
	}
	s.reply(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
	s.metrics.RequestDone(http.StatusOK)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	s.metrics.WriteTo(w, s.harness.Stats(), s.pool.Active(), s.pool.Workers())
}

// reply writes a JSON response and counts it.
func (s *Server) reply(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
	s.metrics.RequestDone(code)
}

// fail writes a JSON error response and counts it.
func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.reply(w, code, ErrorResponse{Error: err.Error()})
}
