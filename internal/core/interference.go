// Package core implements the paper's primary contribution: the
// compaction-based (CB) data-partitioning algorithm and the analysis
// side of partial data duplication.
//
// The algorithm has three parts (§3.1–§3.2 of the paper):
//
//  1. An interference graph over the program's variables and arrays.
//     An edge (a, b) means a memory operation on a and one on b could
//     issue in the same long instruction if the two symbols lived in
//     different banks. Edges are discovered by running the operation
//     compaction (list-scheduling) algorithm over every basic block
//     with a single usable memory slot: whenever a second data-ready
//     memory operation is blocked only by the memory unit, the pair of
//     symbols interferes (Figure 3).
//  2. Edge weights. The static policy weighs an edge by the loop
//     nesting depth of the access (depth+1, so a pair inside one loop
//     outweighs a pair in straight-line code — Figure 4); the profiled
//     policy weighs it by the executed frequency of the block.
//  3. A greedy min-cost bipartition of the graph (Figure 5) assigning
//     each symbol to bank X or bank Y.
//
// When the two blocked memory operations access the *same* symbol, no
// partition can help; the symbol is marked for duplication instead, the
// trigger for partial data duplication (§3.2, Figure 6).
package core

import (
	"fmt"
	"sort"
	"strings"

	"dualbank/internal/ddg"
	"dualbank/internal/ir"
	"dualbank/internal/machine"
)

// WeightPolicy selects how interference-edge weights are derived.
type WeightPolicy int8

const (
	// WeightStatic uses the loop-nesting-depth heuristic: an edge
	// discovered at nesting depth d gets weight max(existing, d+1).
	WeightStatic WeightPolicy = iota
	// WeightProfiled accumulates the profiled execution count of the
	// block in which each pairing is discovered (the Pr configuration
	// in Figure 8). Blocks must carry ExecCount from a profiling run.
	WeightProfiled
)

func (w WeightPolicy) String() string {
	if w == WeightProfiled {
		return "profiled"
	}
	return "static"
}

// Graph is the interference graph: nodes are data symbols, weighted
// edges are potential parallel accesses.
type Graph struct {
	Nodes []*ir.Symbol

	index   map[*ir.Symbol]int
	weights map[[2]int]int64

	// DupMarks holds symbols flagged for duplication: two simultaneous
	// data-ready accesses hit the same symbol.
	DupMarks map[*ir.Symbol]bool

	// Pairs counts distinct discovery events per edge; exposed for
	// diagnostics and tests.
	Pairs map[[2]int]int
}

// NewGraph returns an empty interference graph over the given symbols.
func NewGraph(nodes []*ir.Symbol) *Graph {
	g := &Graph{
		Nodes:    nodes,
		index:    make(map[*ir.Symbol]int, len(nodes)),
		weights:  make(map[[2]int]int64),
		DupMarks: make(map[*ir.Symbol]bool),
		Pairs:    make(map[[2]int]int),
	}
	for i, s := range nodes {
		g.index[s] = i
	}
	return g
}

func (g *Graph) key(a, b *ir.Symbol) [2]int {
	i, j := g.index[a], g.index[b]
	if i > j {
		i, j = j, i
	}
	return [2]int{i, j}
}

// Weight returns the weight of edge (a, b), or 0 if absent.
func (g *Graph) Weight(a, b *ir.Symbol) int64 {
	return g.weights[g.key(a, b)]
}

// Edges returns the number of edges in the graph.
func (g *Graph) Edges() int { return len(g.weights) }

// addEvent records one discovery of the pair (a, b) in block blk.
func (g *Graph) addEvent(a, b *ir.Symbol, blk *ir.Block, policy WeightPolicy) {
	if a == b {
		g.DupMarks[a] = true
		return
	}
	k := g.key(a, b)
	g.Pairs[k]++
	switch policy {
	case WeightStatic:
		w := int64(blk.LoopDepth + 1)
		if w > g.weights[k] {
			g.weights[k] = w
		}
	case WeightProfiled:
		g.weights[k] += blk.ExecCount
	}
}

// String renders the graph's edges, sorted, for tests and the explorer
// example.
func (g *Graph) String() string {
	type edge struct {
		a, b string
		w    int64
	}
	var edges []edge
	for k, w := range g.weights {
		edges = append(edges, edge{g.Nodes[k[0]].Name, g.Nodes[k[1]].Name, w})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	var sb strings.Builder
	for _, e := range edges {
		fmt.Fprintf(&sb, "(%s, %s) w=%d\n", e.a, e.b, e.w)
	}
	var dups []string
	for s, ok := range g.DupMarks {
		if ok {
			dups = append(dups, s.Name)
		}
	}
	sort.Strings(dups)
	if len(dups) > 0 {
		fmt.Fprintf(&sb, "dup: %s\n", strings.Join(dups, ", "))
	}
	return sb.String()
}

// Dot renders the interference graph in Graphviz format, with the
// partition (if given) as node colours and duplication marks as
// doubled outlines — the visual counterpart of the paper's Figure 4.
func (g *Graph) Dot(part *Partition) string {
	var sb strings.Builder
	sb.WriteString("graph interference {\n  node [shape=ellipse, style=filled, fillcolor=white];\n")
	side := map[*ir.Symbol]string{}
	if part != nil {
		for _, s := range part.SetX {
			side[s] = "lightblue"
		}
		for _, s := range part.SetY {
			side[s] = "lightsalmon"
		}
	}
	// Only nodes that participate in an edge or a mark are drawn;
	// whole-program graphs contain many untouched symbols.
	used := map[int]bool{}
	for k := range g.weights {
		used[k[0]] = true
		used[k[1]] = true
	}
	for i, s := range g.Nodes {
		if !used[i] && !g.DupMarks[s] {
			continue
		}
		attrs := ""
		if c, ok := side[s]; ok {
			attrs = ", fillcolor=" + c
		}
		if g.DupMarks[s] {
			attrs += ", peripheries=2"
		}
		fmt.Fprintf(&sb, "  %q [label=%q%s];\n", s.Name, s.Name, attrs)
	}
	type edge struct {
		a, b string
		w    int64
	}
	var edges []edge
	for k, w := range g.weights {
		edges = append(edges, edge{g.Nodes[k[0]].Name, g.Nodes[k[1]].Name, w})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	for _, e := range edges {
		fmt.Fprintf(&sb, "  %q -- %q [label=\"%d\"];\n", e.a, e.b, e.w)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// BuildGraph runs the Figure-3 algorithm over every basic block of the
// program and returns the completed interference graph.
func BuildGraph(p *ir.Program, policy WeightPolicy) *Graph {
	g := NewGraph(p.Symbols())
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			g.ScanBlock(b, policy)
		}
	}
	return g
}

// classSlots is the per-instruction functional-unit budget during graph
// construction. The memory budget is 1: data is not yet partitioned, so
// the pass cannot know that two accesses would use different units —
// precisely the situation the interference edge records.
func classSlots() [machine.NumClasses]int {
	var s [machine.NumClasses]int
	s[machine.ClassControl] = 1
	s[machine.ClassMemory] = 1
	s[machine.ClassInteger] = 4
	s[machine.ClassFloat] = 2
	return s
}

// ScanBlock applies the augmented compaction algorithm of Figure 3 to
// one basic block, adding interference edges and duplication marks.
// Operations are not actually packed into instructions here; that
// happens later, in the compaction pass proper.
func (g *Graph) ScanBlock(b *ir.Block, policy WeightPolicy) {
	dg := ddg.Build(b)
	n := len(dg.Ops)
	if n == 0 {
		return
	}
	scheduled := make([]bool, n)
	cycleOf := make([]int, n)
	for i := range cycleOf {
		cycleOf[i] = -1
	}
	remaining := n

	drs := make([]int, 0, n)
	for cycle := 0; remaining > 0; cycle++ {
		// Form a new long instruction.
		slots := classSlots()
		firstMem := -1
		remBefore := remaining
		// recorded[i] notes a pairing event already emitted for op i in
		// this cycle, so the in-cycle fixed point below does not count
		// the same blocked pair twice.
		recorded := make(map[int]bool)

		// Fill the instruction to a fixed point, mirroring the real
		// scheduler: newly anti-dependence-ready operations may join
		// the current instruction.
		for {
			// Calculate the data-ready set: unscheduled ops whose
			// predecessors are all scheduled.
			drs = drs[:0]
			for i := 0; i < n; i++ {
				if scheduled[i] {
					continue
				}
				ready := true
				for _, e := range dg.Pred[i] {
					if !scheduled[e.To] {
						ready = false
						break
					}
				}
				if ready {
					drs = append(drs, i)
				}
			}
			// Sort the DRS by priority (descendant count), ties by
			// program order for determinism.
			sort.SliceStable(drs, func(x, y int) bool {
				return dg.Priority[drs[x]] > dg.Priority[drs[y]]
			})

			progress := false
			for _, i := range drs {
				// Data-compatibility: an op may join the current
				// instruction unless a strict predecessor was scheduled
				// in this same cycle (anti-dependences are fine: reads
				// precede writes).
				compatible := true
				for _, e := range dg.Pred[i] {
					if e.Strict && cycleOf[e.To] == cycle {
						compatible = false
						break
					}
				}
				if !compatible {
					continue
				}
				cls := dg.Ops[i].Kind.Class()
				if slots[cls] > 0 {
					slots[cls]--
					scheduled[i] = true
					cycleOf[i] = cycle
					remaining--
					progress = true
					if dg.Ops[i].IsMem() {
						firstMem = i
					}
					continue
				}
				// Function-unit incompatible. For memory operations this
				// is the interesting case: the op is independent of
				// everything scheduled (including the first memory op)
				// but competes for the memory unit. Record the
				// interference, or mark the symbol for duplication when
				// both ops touch the same one. The op stays unscheduled
				// so it re-enters the next DRS.
				if dg.Ops[i].IsMem() && firstMem >= 0 && !recorded[i] {
					recorded[i] = true
					g.addEvent(dg.Ops[firstMem].Sym, dg.Ops[i].Sym, b, policy)
				}
			}
			if !progress {
				break
			}
		}
		if remaining == remBefore {
			// Defensive: cannot happen with per-class budgets >= 1, but
			// guarantees termination regardless.
			break
		}
	}
}
