// Command dspcorpus generates a seeded corpus of MiniC programs and
// runs every one through the verification gauntlet: compile under
// {single-bank, CB, CBDup}, pin all three simulation engines against
// each other and against the generator's own evaluator, check the
// metamorphic invariances, and aggregate per-archetype statistics on
// where compaction-based partitioning and partial duplication pay off.
//
// The run is deterministic: equal (-n, -seed) inputs produce a
// byte-identical report, so the committed BENCH_corpus.json is a
// version-controlled baseline CI can diff.
//
// Usage:
//
//	dspcorpus [-n N] [-seed S] [-workers N] [-metamorphic=false]
//	          [-json path] [-quiet]
//	dspcorpus -certify [-n N] [-seed S] [-certify-budget N] [-json path]
//
// -certify runs the certified sample instead of the verification
// gauntlet: each generated program's interference graph goes through
// the internal/exact branch-and-bound bipartitioner, and the report
// states what fraction of programs each heuristic arm solves provably
// optimally, per archetype.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"dualbank/internal/genmc/corpus"
)

// writeJSON serializes any report deterministically, matching the
// corpus Report.WriteFile format.
func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and exit code, so the smoke
// tests can drive the whole driver in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dspcorpus", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 1000, "number of generated programs")
	seed := fs.Uint64("seed", 1, "population base seed")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent verifications (any width is deterministic)")
	metamorphic := fs.Bool("metamorphic", true, "also check rename/permutation/bank-swap invariances")
	jsonPath := fs.String("json", "", "write the full report as JSON to this file")
	certify := fs.Bool("certify", false, "run the certified-optimality sample instead of the verification gauntlet")
	certifyBudget := fs.Int64("certify-budget", 0, "branch-and-bound node budget per program (0 = library default)")
	quiet := fs.Bool("quiet", false, "suppress the progress stream on stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *certify {
		copts := corpus.CertifyOptions{N: *n, Seed: *seed, Workers: *workers, NodeBudget: *certifyBudget}
		if !*quiet {
			copts.Progress = func(done, total int) {
				if done%100 == 0 || done == total {
					fmt.Fprintf(stderr, "dspcorpus: %d/%d programs certified\n", done, total)
				}
			}
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		rep, err := corpus.Certify(ctx, copts)
		if err != nil {
			fmt.Fprintln(stderr, "dspcorpus:", err)
			return 1
		}
		rep.WriteText(stdout)
		if *jsonPath != "" {
			if err := writeJSON(*jsonPath, rep); err != nil {
				fmt.Fprintln(stderr, "dspcorpus:", err)
				return 1
			}
			fmt.Fprintf(stdout, "wrote %s\n", *jsonPath)
		}
		return 0
	}

	opts := corpus.Options{
		N:           *n,
		Seed:        *seed,
		Workers:     *workers,
		Metamorphic: *metamorphic,
	}
	if !*quiet {
		opts.Progress = func(done, total int) {
			if done%100 == 0 || done == total {
				fmt.Fprintf(stderr, "dspcorpus: %d/%d programs verified\n", done, total)
			}
		}
	}

	// SIGINT/SIGTERM cancel the run cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := corpus.Run(ctx, opts)
	if err != nil {
		fmt.Fprintln(stderr, "dspcorpus:", err)
		return 1
	}
	rep.WriteText(stdout)
	if *jsonPath != "" {
		if err := rep.WriteFile(*jsonPath); err != nil {
			fmt.Fprintln(stderr, "dspcorpus:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *jsonPath)
	}
	if len(rep.Failures) != 0 {
		for _, f := range rep.Failures {
			fmt.Fprintln(stderr, "dspcorpus: FAIL:", f)
		}
		return 1
	}
	return 0
}
