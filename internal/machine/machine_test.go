package machine

import "testing"

func TestBankOther(t *testing.T) {
	if BankX.Other() != BankY || BankY.Other() != BankX {
		t.Fatal("Other() does not swap banks")
	}
}

func TestBankOtherPanics(t *testing.T) {
	for _, b := range []Bank{BankNone, BankBoth} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Other(%v) did not panic", b)
				}
			}()
			b.Other()
		}()
	}
}

func TestBankStrings(t *testing.T) {
	cases := map[Bank]string{
		BankNone: "-", BankX: "X", BankY: "Y", BankBoth: "XY",
	}
	for b, want := range cases {
		if got := b.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", b, got, want)
		}
	}
}

func TestUnitNames(t *testing.T) {
	want := []string{"PCU", "MU0", "MU1", "AU0", "AU1", "DU0", "DU1", "FPU0", "FPU1"}
	for i, w := range want {
		if got := Unit(i).String(); got != w {
			t.Errorf("Unit(%d) = %q, want %q", i, got, w)
		}
	}
	if NumUnits != len(want) {
		t.Errorf("NumUnits = %d, want %d", NumUnits, len(want))
	}
}

func TestUnitsOfClasses(t *testing.T) {
	// Figure 2: one PCU, two memory units, four scalar integer units
	// (AU0/AU1/DU0/DU1), two floating-point units.
	if got := UnitsOf(ClassControl); len(got) != 1 || got[0] != PCU {
		t.Errorf("control units = %v", got)
	}
	if got := UnitsOf(ClassMemory); len(got) != 2 || got[0] != MU0 || got[1] != MU1 {
		t.Errorf("memory units = %v", got)
	}
	if got := UnitsOf(ClassInteger); len(got) != 4 {
		t.Errorf("integer units = %v", got)
	}
	if got := UnitsOf(ClassFloat); len(got) != 2 {
		t.Errorf("float units = %v", got)
	}
}

func TestPortModelBinding(t *testing.T) {
	// Banked: MU0 reaches only X, MU1 only Y.
	if got := PortsBanked.UnitsForBank(BankX); len(got) != 1 || got[0] != MU0 {
		t.Errorf("banked X units = %v", got)
	}
	if got := PortsBanked.UnitsForBank(BankY); len(got) != 1 || got[0] != MU1 {
		t.Errorf("banked Y units = %v", got)
	}
	// Duplicated data may use either unit even on the banked model.
	if got := PortsBanked.UnitsForBank(BankBoth); len(got) != 2 {
		t.Errorf("banked Both units = %v", got)
	}
	// Dual-ported: any unit reaches any bank.
	for _, b := range []Bank{BankX, BankY, BankBoth} {
		if got := PortsDualPorted.UnitsForBank(b); len(got) != 2 {
			t.Errorf("dual-ported %v units = %v", b, got)
		}
	}
}

func TestBankOfUnit(t *testing.T) {
	if BankOfUnit(MU0) != BankX || BankOfUnit(MU1) != BankY {
		t.Fatal("memory unit bank binding wrong")
	}
	if BankOfUnit(DU0) != BankNone {
		t.Fatal("non-memory unit should have no bank")
	}
}
