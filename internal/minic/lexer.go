package minic

import (
	"strconv"
	"strings"
)

// Lexer turns MiniC source text into a token stream.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			for {
				if l.off >= len(l.src) {
					return errf(start, "unterminated block comment")
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isDigit(c) || (c == '.' && isDigit(l.peek2())):
		return l.number(pos)
	case isAlpha(c):
		start := l.off
		for l.off < len(l.src) && (isAlpha(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		word := l.src[start:l.off]
		if k, ok := keywords[word]; ok {
			return Token{Kind: k, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Pos: pos, Text: word}, nil
	}
	l.advance()
	// Two- and three-character operators.
	two := func(next byte, yes, no Kind) Token {
		if l.peek() == next {
			l.advance()
			return Token{Kind: yes, Pos: pos}
		}
		return Token{Kind: no, Pos: pos}
	}
	switch c {
	case '(':
		return Token{Kind: LParen, Pos: pos}, nil
	case ')':
		return Token{Kind: RParen, Pos: pos}, nil
	case '{':
		return Token{Kind: LBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: RBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: LBrack, Pos: pos}, nil
	case ']':
		return Token{Kind: RBrack, Pos: pos}, nil
	case ',':
		return Token{Kind: Comma, Pos: pos}, nil
	case ';':
		return Token{Kind: Semi, Pos: pos}, nil
	case '?':
		return Token{Kind: Question, Pos: pos}, nil
	case ':':
		return Token{Kind: Colon, Pos: pos}, nil
	case '~':
		return Token{Kind: Tilde, Pos: pos}, nil
	case '=':
		return two('=', EQ, Assign), nil
	case '!':
		return two('=', NE, Bang), nil
	case '+':
		if l.peek() == '+' {
			l.advance()
			return Token{Kind: Inc, Pos: pos}, nil
		}
		return two('=', PlusAssign, Plus), nil
	case '-':
		if l.peek() == '-' {
			l.advance()
			return Token{Kind: Dec, Pos: pos}, nil
		}
		return two('=', MinusAssign, Minus), nil
	case '*':
		return two('=', StarAssign, Star), nil
	case '/':
		return two('=', SlashAssign, Slash), nil
	case '%':
		return two('=', PercentAssign, Percent), nil
	case '&':
		if l.peek() == '&' {
			l.advance()
			return Token{Kind: AndAnd, Pos: pos}, nil
		}
		return two('=', AmpAssign, Amp), nil
	case '|':
		if l.peek() == '|' {
			l.advance()
			return Token{Kind: OrOr, Pos: pos}, nil
		}
		return two('=', PipeAssign, Pipe), nil
	case '^':
		return two('=', CaretAssign, Caret), nil
	case '<':
		if l.peek() == '<' {
			l.advance()
			return two('=', ShlAssign, Shl), nil
		}
		return two('=', LE, LT), nil
	case '>':
		if l.peek() == '>' {
			l.advance()
			return two('=', ShrAssign, Shr), nil
		}
		return two('=', GE, GT), nil
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

func (l *Lexer) number(pos Pos) (Token, error) {
	start := l.off
	isFloat := false
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		for l.off < len(l.src) && isHex(l.peek()) {
			l.advance()
		}
		v, err := strconv.ParseUint(l.src[start+2:l.off], 16, 64)
		if err != nil {
			return Token{}, errf(pos, "bad hex literal %q", l.src[start:l.off])
		}
		return Token{Kind: INTLIT, Pos: pos, Int: int64(int32(uint32(v)))}, nil
	}
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		isFloat = true
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	text := l.src[start:l.off]
	// Allow a trailing 'f' float suffix, as in C.
	if l.peek() == 'f' || l.peek() == 'F' {
		isFloat = true
		l.advance()
	}
	if isFloat {
		v, err := strconv.ParseFloat(strings.TrimSuffix(text, "f"), 64)
		if err != nil {
			return Token{}, errf(pos, "bad float literal %q", text)
		}
		return Token{Kind: FLOATLIT, Pos: pos, Flt: v}, nil
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Token{}, errf(pos, "bad integer literal %q", text)
	}
	return Token{Kind: INTLIT, Pos: pos, Int: v}, nil
}

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// LexAll tokenizes the whole input; used by tests and the parser.
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}
