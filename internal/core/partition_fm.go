package core

// PartitionFM is the fast compile path's partitioner: a
// Fiduccia–Mattheyses-style gain-bucket bipartitioner.
//
// Phase 1 replays the paper's greedy walk (Figure 5) exactly — same
// moves, same tie-breaks, same trace — but with incremental gain
// maintenance: instead of recomputing every node's move delta from
// scratch each round (the O(v²) inner loop of Graph.Partition), node
// gains live in a gain-bucket structure with O(1) best-move extraction
// and O(degree) updates per move, making the walk O(V + E + moves·deg).
//
// Phase 2 runs classic FM refinement passes: every node is tentatively
// flipped once in best-gain order (negative gains allowed, so the pass
// can climb out of the greedy walk's local optimum), the best prefix
// of flips is kept, and passes repeat until one fails to strictly
// improve the cut. Because phase 1 reproduces greedy exactly and
// phase 2 only ever commits strict improvements, PartitionFM is never
// worse than Partition, and produces the *identical* bank image
// whenever it cannot improve on it — the property the differential
// tests pin.

const fmMaxPasses = 8

// PartitionFM bipartitions the graph with the gain-bucket algorithm,
// running up to the default number of refinement passes.
func (g *Graph) PartitionFM() *Partition { return g.PartitionFMPasses(fmMaxPasses) }

// PartitionFMPasses is PartitionFM with an explicit refinement-pass
// bound: passes == 0 stops after the greedy-equivalent phase 1 (the
// cheapest configuration, identical to the paper's walk), larger
// values allow up to that many phase-2 passes. The pass loop still
// exits early as soon as a pass fails to strictly improve the cut, so
// raising the bound beyond the point of convergence changes nothing.
// The design-space explorer enumerates this knob.
func (g *Graph) PartitionFMPasses(passes int) *Partition {
	n := len(g.Nodes)
	c := g.CSR()
	inY := make([]bool, n)
	gain := make([]int64, n)

	var pmax int64
	for i := 0; i < n; i++ {
		if d := c.weightedDegree(i); d > pmax {
			pmax = d
		}
	}
	var q gainQueue
	q.init(n, pmax)

	// Phase 1: the greedy walk with incremental gains. A node's gain
	// starts as its weighted degree (everything is on side X), and
	// moving b to Y lowers each still-X neighbour's gain by 2w. The
	// walk must replay Graph.Partition move for move, so extraction
	// uses the same tie-breaks: canonical first-reference ranks on
	// scanner-built graphs (with the total-tie diversity rule — see
	// Partition), the node-index rule otherwise.
	cost := c.Total
	var trace []int64
	if q.useHeap && g.tiePref != nil {
		// Wide-range profiled graph with canonical ranks: the lazy
		// heap cannot see the whole tied cohort at once, so replay the
		// reference walk directly instead of teaching it the diversity
		// rule. This path keeps phase 1 exact on the rare fallback;
		// phase 2 below is unaffected.
		seed := g.Partition()
		for _, s := range seed.SetY {
			inY[g.index[s]] = true
		}
		cost = seed.Cost
		trace = seed.Trace
	} else {
		trace = append(trace, cost)
		var moved []int32
		for i := 0; i < n; i++ {
			gain[i] = c.weightedDegree(i)
			q.insert(int32(i), gain[i])
		}
		for {
			b, ok := q.popGreedy(g.tiePref, moved)
			if !ok {
				break
			}
			inY[b] = true
			cost -= gain[b]
			trace = append(trace, cost)
			if g.tiePref != nil {
				moved = append(moved, g.tiePref[b])
			}
			for h := c.Start[b]; h < c.Start[b+1]; h++ {
				a := c.Adj[h]
				if inY[a] {
					continue
				}
				gain[a] -= 2 * c.W[h]
				q.update(a, gain[a])
			}
		}
	}

	// Phase 2: FM refinement passes over the phase-1 partition.
	state := make([]bool, n)
	locked := make([]bool, n)
	flips := make([]int32, 0, n)
	for pass := 0; pass < passes; pass++ {
		copy(state, inY)
		for i := range locked {
			locked[i] = false
		}
		q.reset()
		for i := 0; i < n; i++ {
			gain[i] = c.moveGain(state, i)
			q.insert(int32(i), gain[i])
		}
		cur, best, bestPrefix := cost, cost, 0
		flips = flips[:0]
		for {
			b, ok := q.popMax(false)
			if !ok {
				break
			}
			state[b] = !state[b]
			locked[b] = true
			cur -= gain[b]
			flips = append(flips, b)
			if cur < best {
				best, bestPrefix = cur, len(flips)
			}
			for h := c.Start[b]; h < c.Start[b+1]; h++ {
				a := c.Adj[h]
				if locked[a] {
					continue
				}
				if state[a] == state[b] {
					gain[a] += 2 * c.W[h]
				} else {
					gain[a] -= 2 * c.W[h]
				}
				q.update(a, gain[a])
			}
		}
		if best >= cost {
			break
		}
		for _, i := range flips[:bestPrefix] {
			inY[i] = !inY[i]
		}
		cost = best
	}

	p := g.partitionFrom(inY)
	p.Trace = trace
	return p
}

// gainQueue is the FM gain structure: a bucket array indexed by gain
// (offset by the maximum weighted degree) holding intrusive
// doubly-linked lists of nodes, with a monotone-repair pointer to the
// highest occupied bucket. Extraction finds the best bucket in
// amortised O(1); ties inside a bucket are broken towards the highest
// node index (matching the greedy walk's published tie-break) by a
// scan of that bucket.
//
// Profile-weighted graphs can have gain ranges far too wide for a
// bucket per distinct gain; past bucketRangeLimit the queue degrades
// to a lazy binary max-heap with the same ordering (O(log n)
// extraction), keeping behaviour identical.
type gainQueue struct {
	n   int
	off int64 // bucket index = gain + off

	// Bucket mode. sizes and posCount track the top-bucket population
	// and the number of queued nodes with strictly positive gain, so
	// the greedy replay can recognise a total tie (every eligible move
	// equally good) in O(1).
	buckets    []int32 // head node of each gain bucket, -1 if empty
	prev, next []int32
	sizes      []int32
	posCount   int
	maxB       int

	// Heap fallback for very wide gain ranges.
	useHeap bool
	heap    []heapEnt

	inQ  []bool
	gain []int64 // the queue's view of each node's current gain
}

type heapEnt struct {
	g int64
	i int32
}

// bucketRangeLimit caps the bucket array at 2M entries (8 MiB of
// heads); gain ranges beyond this use the heap fallback.
const bucketRangeLimit = 1 << 21

func (q *gainQueue) init(n int, pmax int64) {
	q.n = n
	q.off = pmax
	q.inQ = make([]bool, n)
	q.gain = make([]int64, n)
	if r := 2*pmax + 1; r <= bucketRangeLimit {
		q.buckets = make([]int32, r)
		for i := range q.buckets {
			q.buckets[i] = -1
		}
		q.prev = make([]int32, n)
		q.next = make([]int32, n)
		q.sizes = make([]int32, r)
		q.posCount = 0
		q.maxB = -1
	} else {
		q.useHeap = true
		q.heap = make([]heapEnt, 0, n)
	}
}

// reset empties the queue for reuse.
func (q *gainQueue) reset() {
	for i := range q.inQ {
		q.inQ[i] = false
	}
	if q.useHeap {
		q.heap = q.heap[:0]
		return
	}
	for i := range q.buckets {
		q.buckets[i] = -1
	}
	for i := range q.sizes {
		q.sizes[i] = 0
	}
	q.posCount = 0
	q.maxB = -1
}

func (q *gainQueue) insert(i int32, g int64) {
	q.inQ[i] = true
	q.gain[i] = g
	if q.useHeap {
		q.push(heapEnt{g, i})
		return
	}
	b := int(g + q.off)
	q.prev[i] = -1
	q.next[i] = q.buckets[b]
	if q.next[i] >= 0 {
		q.prev[q.next[i]] = i
	}
	q.buckets[b] = i
	q.sizes[b]++
	if g > 0 {
		q.posCount++
	}
	if b > q.maxB {
		q.maxB = b
	}
}

// update moves node i to its new gain bucket; a no-op if i has already
// been extracted.
func (q *gainQueue) update(i int32, g int64) {
	if !q.inQ[i] {
		return
	}
	if q.useHeap {
		q.gain[i] = g
		q.push(heapEnt{g, i}) // lazy: stale entries are skipped on pop
		return
	}
	q.unlink(i)
	q.insert(i, g)
}

func (q *gainQueue) unlink(i int32) {
	if q.prev[i] >= 0 {
		q.next[q.prev[i]] = q.next[i]
	} else {
		q.buckets[q.gain[i]+q.off] = q.next[i]
	}
	if q.next[i] >= 0 {
		q.prev[q.next[i]] = q.prev[i]
	}
	q.sizes[q.gain[i]+q.off]--
	if q.gain[i] > 0 {
		q.posCount--
	}
}

// popMax extracts the node with the highest gain, ties towards the
// highest node index. With positiveOnly it refuses (and keeps) a best
// node whose gain is not strictly positive — the greedy walk's
// stopping rule.
func (q *gainQueue) popMax(positiveOnly bool) (int32, bool) {
	if q.useHeap {
		return q.heapPop(positiveOnly)
	}
	for q.maxB >= 0 && q.buckets[q.maxB] < 0 {
		q.maxB--
	}
	if q.maxB < 0 || (positiveOnly && int64(q.maxB)-q.off <= 0) {
		return 0, false
	}
	best := q.buckets[q.maxB]
	for i := q.next[best]; i >= 0; i = q.next[i] {
		if i > best {
			best = i
		}
	}
	q.unlink(best)
	q.inQ[best] = false
	return best, true
}

// popGreedy is popMax for the phase-1 replay of the canonical greedy
// walk: with first-reference ranks (pref non-nil, bucket mode) ties go
// to the highest rank, except on a total tie — every queued node with
// positive gain sits in the top bucket — where the candidate whose
// rank lies farthest from the already-moved nodes wins, exactly as in
// Graph.Partition. Without ranks it degrades to popMax.
func (q *gainQueue) popGreedy(pref []int32, moved []int32) (int32, bool) {
	if q.useHeap || pref == nil {
		return q.popMax(true)
	}
	for q.maxB >= 0 && q.buckets[q.maxB] < 0 {
		q.maxB--
	}
	if q.maxB < 0 || int64(q.maxB)-q.off <= 0 {
		return 0, false
	}
	best := q.buckets[q.maxB]
	if q.sizes[q.maxB] == int32(q.posCount) {
		bd := prefDist(pref[best], moved)
		for i := q.next[best]; i >= 0; i = q.next[i] {
			if d := prefDist(pref[i], moved); d > bd || (d == bd && pref[i] > pref[best]) {
				best, bd = i, d
			}
		}
	} else {
		for i := q.next[best]; i >= 0; i = q.next[i] {
			if pref[i] > pref[best] {
				best = i
			}
		}
	}
	q.unlink(best)
	q.inQ[best] = false
	return best, true
}

// prefDist is the first-use distance from rank p to the nearest moved
// node's rank; "infinite" while nothing has moved.
func prefDist(p int32, moved []int32) int32 {
	d := int32(1) << 30
	for _, m := range moved {
		dd := p - m
		if dd < 0 {
			dd = -dd
		}
		if dd < d {
			d = dd
		}
	}
	return d
}

// Heap fallback: a binary max-heap ordered by (gain, index) with lazy
// deletion — update pushes a fresh entry and pop discards entries
// whose recorded gain no longer matches the node's current gain.
func (q *gainQueue) push(e heapEnt) {
	q.heap = append(q.heap, e)
	i := len(q.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !entLess(q.heap[p], q.heap[i]) {
			break
		}
		q.heap[p], q.heap[i] = q.heap[i], q.heap[p]
		i = p
	}
}

func entLess(a, b heapEnt) bool {
	if a.g != b.g {
		return a.g < b.g
	}
	return a.i < b.i
}

func (q *gainQueue) heapPop(positiveOnly bool) (int32, bool) {
	for len(q.heap) > 0 {
		top := q.heap[0]
		if !q.inQ[top.i] || q.gain[top.i] != top.g {
			q.discardTop() // stale
			continue
		}
		if positiveOnly && top.g <= 0 {
			return 0, false
		}
		q.discardTop()
		q.inQ[top.i] = false
		return top.i, true
	}
	return 0, false
}

func (q *gainQueue) discardTop() {
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l <= last-1 && entLess(q.heap[big], q.heap[l]) {
			big = l
		}
		if r <= last-1 && entLess(q.heap[big], q.heap[r]) {
			big = r
		}
		if big == i {
			break
		}
		q.heap[i], q.heap[big] = q.heap[big], q.heap[i]
		i = big
	}
}
