package minic_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"dualbank/internal/genmc"
	"dualbank/internal/minic"
)

// Error-path tests over damaged generated programs. The byte-soup and
// token-soup tests in robust_test.go explore shallow garbage; these
// start from structurally deep, valid programs (the genmc generator's
// three archetypes) and damage them — truncation, deletion, byte
// noise, span duplication — which penetrates the parser's recovery
// paths far past what soup reaches: initializer lists mid-brace,
// nested loops cut at arbitrary depth, expressions with orphaned
// operators. The front end must return a diagnostic, never panic.

// frontEnd runs Parse and, when it succeeds, Analyze, converting any
// panic into a test failure that carries the damaged source.
func frontEnd(t *testing.T, label, src string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: front end panicked: %v\nsource:\n%s", label, r, src)
		}
	}()
	file, err := minic.Parse(src)
	if err != nil {
		if err.Error() == "" {
			t.Fatalf("%s: empty diagnostic", label)
		}
		return
	}
	if err := minic.Analyze(file); err != nil && err.Error() == "" {
		t.Fatalf("%s: empty analysis diagnostic", label)
	}
}

// mutations are the table of damage strategies.
var mutations = []struct {
	name  string
	apply func(src string, r *rand.Rand) string
}{
	{"truncate", func(s string, r *rand.Rand) string {
		return s[:r.Intn(len(s))]
	}},
	{"delete-span", func(s string, r *rand.Rand) string {
		i := r.Intn(len(s))
		n := 1 + r.Intn(40)
		if i+n > len(s) {
			n = len(s) - i
		}
		return s[:i] + s[i+n:]
	}},
	{"duplicate-span", func(s string, r *rand.Rand) string {
		i := r.Intn(len(s))
		n := 1 + r.Intn(40)
		if i+n > len(s) {
			n = len(s) - i
		}
		return s[:i+n] + s[i:i+n] + s[i+n:]
	}},
	{"punct-noise", func(s string, r *rand.Rand) string {
		punct := "{}()[];,=+-*&|^<>!"
		b := []byte(s)
		for k := 0; k < 4; k++ {
			b[r.Intn(len(b))] = punct[r.Intn(len(punct))]
		}
		return string(b)
	}},
	{"byte-noise", func(s string, r *rand.Rand) string {
		b := []byte(s)
		for k := 0; k < 4; k++ {
			b[r.Intn(len(b))] = byte(r.Intn(256))
		}
		return string(b)
	}},
	{"swap-halves", func(s string, r *rand.Rand) string {
		i := r.Intn(len(s))
		return s[i:] + s[:i]
	}},
}

// TestFrontEndSurvivesDamagedGenerated: every damage strategy applied
// to every archetype, many seeded trials each — diagnostics, never
// panics.
func TestFrontEndSurvivesDamagedGenerated(t *testing.T) {
	for _, m := range mutations {
		m := m
		t.Run(m.name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(1069))
			for _, a := range genmc.Archetypes() {
				src := genmc.Generate(genmc.Derive(a, 17)).Source
				for trial := 0; trial < 60; trial++ {
					damaged := m.apply(src, rng)
					frontEnd(t, fmt.Sprintf("%s/%v trial %d", m.name, a, trial), damaged)
				}
			}
		})
	}
}

// TestFrontEndSurvivesEveryTruncation cuts one compact program of each
// archetype at every byte position — the exhaustive version of the
// truncate strategy, covering every possible EOF-in-construct point.
func TestFrontEndSurvivesEveryTruncation(t *testing.T) {
	for _, a := range genmc.Archetypes() {
		k := genmc.Knobs{Archetype: a, Seed: 9, Arrays: 2, Size: 16, Loops: 1, Depth: 2, Stmts: 2}
		src := genmc.Generate(k).Source
		for i := 0; i <= len(src); i++ {
			frontEnd(t, fmt.Sprintf("%v cut at %d", a, i), src[:i])
		}
	}
}

// TestDiagnosticsNameTheProblem: representative damage classes draw
// diagnostics specific enough to act on, pinned loosely (substring,
// not exact spelling) so wording can improve without churn.
func TestDiagnosticsNameTheProblem(t *testing.T) {
	base := genmc.Generate(genmc.Derive(genmc.Pair, 17)).Source
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unterminated-program", strings.TrimSuffix(strings.TrimSpace(base), "}"), "unterminated"},
		{"garbage-prefix", "$$$\n" + base, "unexpected"},
		{"bad-subscript", "int a[] = {1};\nvoid main() { a[1 = 2; }", ""},
		{"undeclared", "void main() { zz = 1; }", "zz"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			file, err := minic.Parse(c.src)
			if err == nil {
				err = minic.Analyze(file)
			}
			if err == nil {
				t.Fatalf("damaged program drew no diagnostic:\n%s", c.src)
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Errorf("diagnostic %q does not mention %q", err, c.want)
			}
		})
	}
}
