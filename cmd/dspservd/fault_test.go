package main

import (
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestFaultProfileGate: -fault-profile is refused without
// DSP_FAULT_ENABLE=1, and a malformed profile is refused even with it.
func TestFaultProfileGate(t *testing.T) {
	t.Setenv("DSP_FAULT_ENABLE", "")
	var stdout, stderr syncBuffer
	if code := run([]string{"-addr", "127.0.0.1:0", "-fault-profile", "ioerr=0.5"}, &stdout, &stderr); code != 2 {
		t.Errorf("ungated fault profile: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "DSP_FAULT_ENABLE") {
		t.Errorf("diagnostic does not name the gate: %s", stderr.String())
	}

	t.Setenv("DSP_FAULT_ENABLE", "1")
	var stderr2 syncBuffer
	if code := run([]string{"-addr", "127.0.0.1:0", "-fault-profile", "wat=1"}, &stdout, &stderr2); code != 2 {
		t.Errorf("malformed fault profile: exit %d, want 2", code)
	}
}

// TestLifecycleWithFaultsAndDrain boots the daemon with a fault
// profile and the new overload flags, watches /readyz flip to 503 on
// SIGTERM, and asserts injected faults surface as 500s while the
// process still exits cleanly.
func TestLifecycleWithFaultsAndDrain(t *testing.T) {
	t.Setenv("DSP_FAULT_ENABLE", "1")
	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0", "-workers", "2",
			"-admit-timeout", "500ms", "-rate", "1000", "-rate-burst", "1000",
			"-fault-profile", "seed=1,compute=1",
		}, &stdout, &stderr)
	}()

	re := regexp.MustCompile(`listening on ([0-9.]+:[0-9]+)`)
	var addr string
	for deadline := time.Now().Add(5 * time.Second); addr == ""; {
		if m := re.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; stderr: %s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(stderr.String(), "FAULT INJECTION ACTIVE") {
		t.Errorf("no fault-injection banner on stderr: %s", stderr.String())
	}

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	if code, body := get("/readyz"); code != http.StatusOK {
		t.Fatalf("pre-drain /readyz: %d %q", code, body)
	}

	// compute=1 faults every measurement: the request must come back
	// 500, not hang or crash the server.
	resp, err := http.Post("http://"+addr+"/v1/run", "application/json",
		strings.NewReader(`{"bench":"fir_32_1","mode":"CB"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted run: status %d, want 500", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// During the drain window /readyz must report 503 while the process
	// finishes up. The window is brief; tolerate the race where the
	// listener is already gone.
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get("http://" + addr + "/readyz")
		if err != nil {
			break // listener closed — drain completed
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && strings.Contains(string(body), "draining") {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatal("server did not shut down on SIGTERM")
	}
}
