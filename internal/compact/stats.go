package compact

import (
	"fmt"
	"strings"

	"dualbank/internal/machine"
)

// Stats summarises a schedule's static resource utilization: how full
// the long instructions are, how busy each functional unit is, and —
// the figure of merit for this paper — how often the two memory units
// issue together.
type Stats struct {
	Instrs int // long instructions
	Ops    int // operations scheduled

	// UnitOps[u] is the number of instructions using unit u.
	UnitOps [machine.MaxUnits]int

	// MemInstrs counts instructions with at least one memory access;
	// DualMemInstrs those with two (the exploited parallelism).
	MemInstrs, DualMemInstrs int
}

// OpsPerInstr is the mean occupancy of a long instruction.
func (s Stats) OpsPerInstr() float64 {
	if s.Instrs == 0 {
		return 0
	}
	return float64(s.Ops) / float64(s.Instrs)
}

// DualMemRatio is the fraction of memory-carrying instructions that
// issue two accesses at once.
func (s Stats) DualMemRatio() float64 {
	if s.MemInstrs == 0 {
		return 0
	}
	return float64(s.DualMemInstrs) / float64(s.MemInstrs)
}

// StaticStats computes schedule statistics over the whole program.
func (p *Program) StaticStats() Stats {
	var s Stats
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				s.Instrs++
				mem := 0
				for u, op := range in.Slots {
					if op == nil {
						continue
					}
					s.Ops++
					s.UnitOps[u]++
					if op.IsMem() {
						mem++
					}
				}
				if mem >= 1 {
					s.MemInstrs++
				}
				if mem >= 2 {
					s.DualMemInstrs++
				}
			}
		}
	}
	return s
}

// String renders the statistics as a small report.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "instructions: %d, operations: %d (%.2f ops/instr)\n",
		s.Instrs, s.Ops, s.OpsPerInstr())
	fmt.Fprintf(&sb, "memory instructions: %d, dual-access: %d (%.0f%%)\n",
		s.MemInstrs, s.DualMemInstrs, 100*s.DualMemRatio())
	sb.WriteString("unit occupancy:")
	for u := 0; u < machine.MaxUnits; u++ {
		// The classic nine units always print; the extra memory units
		// of wider machines only when occupied, so default-machine
		// output is unchanged.
		if u >= machine.NumUnits && s.UnitOps[u] == 0 {
			continue
		}
		fmt.Fprintf(&sb, " %s=%d", machine.Unit(u), s.UnitOps[u])
	}
	sb.WriteString("\n")
	return sb.String()
}
