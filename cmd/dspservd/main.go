// Command dspservd serves the dual-bank compile-and-simulate pipeline
// over HTTP/JSON: POST a benchmark name or MiniC source plus an
// allocation mode, get back the cycle count, memory footprint, and
// duplication stats of one measurement. Requests run on a bounded
// worker pool with per-request deadlines honored down to the
// simulator's basic-block boundaries; named-benchmark results are
// memoized behind a single-flight cache.
//
// Endpoints:
//
//	POST /v1/run                   {"bench":"fir_256_64","mode":"CB","timeout_ms":5000}
//	POST /v1/explore               {"benchmarks":["fft_256"],"budget":200} → async job
//	GET  /v1/explore/{id}          exploration job status
//	GET  /v1/explore/{id}/frontier completed exploration's Pareto report
//	GET  /v1/benchmarks            benchmark, mode, and partitioner inventory
//	GET  /healthz                  liveness
//	GET  /readyz                   readiness (503 once draining)
//	GET  /metrics                  Prometheus text exposition
//	     /debug/pprof/             the standard profiling endpoints
//
// With -explore-store, exploration evaluations are checkpointed to the
// given directory as they complete; a job interrupted by shutdown
// resumes from those checkpoints when resubmitted.
//
// Overload protection: -admit-timeout bounds how long a request waits
// for a worker slot before being shed with 429 + Retry-After (0 keeps
// unbounded waiting, limited only by the request deadline), and -rate
// / -rate-burst token-bucket individual clients. On SIGINT/SIGTERM the
// server flips /readyz to 503 first, then drains.
//
// Cluster mode: -self plus -peers shard the keyspace across a fleet on
// a consistent-hash ring — each cacheable /v1/run routes to its
// owner's single-flight cache, hot keys are served by any replica, and
// -store points every node at one shared L2 result store (bounded by
// -store-max-bytes / -store-max-age, pruned LRU-by-mtime every
// minute). On shutdown a cluster node announces its departure to the
// peers after flipping /readyz and before cancelling in-flight work.
//
// -fault-profile injects deterministic faults (I/O errors, latency
// spikes, compute errors, starvation bursts) for chaos testing. It is
// refused unless DSP_FAULT_ENABLE=1 is set in the environment, so a
// production unit file cannot enable it by accident.
//
// Usage:
//
//	dspservd [-addr :8357] [-workers N] [-queue N]
//	         [-timeout 10s] [-max-timeout 60s] [-max-source 1048576]
//	         [-admit-timeout 0] [-rate 0] [-rate-burst 0]
//	         [-explore-store dir] [-fault-profile spec]
//	         [-store dir] [-store-max-bytes N] [-store-max-age D]
//	         [-self host:port] [-peers h1:p1,h2:p2] [-replication 2]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dualbank/internal/bench"
	"dualbank/internal/cluster"
	"dualbank/internal/explore/store"
	"dualbank/internal/faultinject"
	"dualbank/internal/serve"
)

// splitPeers parses the -peers flag: comma-separated, blanks dropped.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and exit code, so smoke tests
// can drive the full server lifecycle in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dspservd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8357", "listen address")
	workers := fs.Int("workers", 0, "worker pool width (default GOMAXPROCS)")
	queue := fs.Int("queue", 0, "accepted-but-unstarted job bound (default 2x workers)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request deadline when the request sets none")
	maxTimeout := fs.Duration("max-timeout", 60*time.Second, "upper clamp on requested deadlines")
	maxSource := fs.Int("max-source", 1<<20, "source size cap in bytes")
	drain := fs.Duration("drain", 15*time.Second, "graceful-shutdown drain budget")
	admitTimeout := fs.Duration("admit-timeout", 0, "shed requests (429) that wait longer than this for a worker slot (0 = wait out the deadline)")
	rate := fs.Float64("rate", 0, "per-client request rate limit in requests/sec (0 = off)")
	rateBurst := fs.Int("rate-burst", 0, "per-client burst allowance (default ceil(rate))")
	engineName := fs.String("engine", "compiled", "simulation engine: compiled, fast, or machine")
	exploreStore := fs.String("explore-store", "", "checkpoint /v1/explore evaluations to this directory")
	storeDir := fs.String("store", "", "shared result-store directory: L2 cache for /v1/run plus /v1/explore checkpoints (cluster nodes share one)")
	storeMaxBytes := fs.Int64("store-max-bytes", 0, "prune the result store LRU-by-mtime to this byte budget (0 = unbounded)")
	storeMaxAge := fs.Duration("store-max-age", 0, "evict result-store records older than this (0 = keep forever)")
	self := fs.String("self", "", "cluster mode: this node's advertised host:port on the ring")
	peers := fs.String("peers", "", "cluster mode: comma-separated peer host:port list")
	replication := fs.Int("replication", 2, "cluster mode: replica-set size per key")
	faultProfile := fs.String("fault-profile", "", "inject faults per this profile (requires DSP_FAULT_ENABLE=1; e.g. seed=1,ioerr=0.05,latency=0.02)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	engine, err := bench.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(stderr, "dspservd:", err)
		return 2
	}

	inj, err := faultinject.FromFlag(*faultProfile)
	if err != nil {
		fmt.Fprintln(stderr, "dspservd:", err)
		return 2
	}
	if inj != nil {
		fmt.Fprintf(stderr, "dspservd: FAULT INJECTION ACTIVE (%s)\n", *faultProfile)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// openStore opens a checkpoint/result store, riding the injected
	// filesystem when a fault profile is active.
	openStore := func(dir string) (*store.Store, error) {
		if inj != nil {
			return store.OpenFS(dir, faultinject.NewFaultFS(faultinject.OSFS{}, inj))
		}
		return store.Open(dir)
	}

	// -store is the shared tier: it backs the /v1/run L2 result cache
	// and, unless -explore-store points elsewhere, the exploration
	// checkpoints too (the two live in disjoint key namespaces).
	var shared, expl *store.Store
	if *storeDir != "" {
		var err error
		if shared, err = openStore(*storeDir); err != nil {
			fmt.Fprintln(stderr, "dspservd:", err)
			return 1
		}
		expl = shared
	}
	if *exploreStore != "" {
		var err error
		if expl, err = openStore(*exploreStore); err != nil {
			fmt.Fprintln(stderr, "dspservd:", err)
			return 1
		}
	}

	scfg := serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxSourceBytes: *maxSource,
		Engine:         engine,
		ExploreStore:   expl,
		AdmitTimeout:   *admitTimeout,
		RatePerSec:     *rate,
		RateBurst:      *rateBurst,
		Fault:          inj,
	}
	if shared != nil {
		scfg.ResultCache = cluster.NewStoreCache(shared)
	}

	var s *serve.Server
	var node *cluster.Node
	handlerDesc := "single node"
	if *self != "" {
		node = cluster.New(cluster.Config{
			Self:        *self,
			Peers:       splitPeers(*peers),
			Replication: *replication,
			Serve:       scfg,
		})
		s = node.Server()
		handlerDesc = fmt.Sprintf("cluster node %s (replication=%d)", *self, *replication)
	} else {
		s = serve.New(scfg)
	}
	defer s.Close()
	handler := s.Handler()
	if node != nil {
		handler = node.Handler()
	}

	// The store GC: bound the shared store's footprint on a fixed
	// cadence. Runs once at startup so a long-dead deployment's debris
	// clears before traffic, then every minute.
	if shared != nil && (*storeMaxBytes > 0 || *storeMaxAge > 0) {
		if pst, err := shared.Prune(*storeMaxBytes, *storeMaxAge); err != nil {
			fmt.Fprintln(stderr, "dspservd: prune:", err)
		} else if pst.Removed > 0 || pst.TempSwept > 0 {
			fmt.Fprintf(stdout, "dspservd: store prune: kept %d (%d bytes), removed %d, swept %d temps\n",
				pst.Kept, pst.KeptBytes, pst.Removed, pst.TempSwept)
		}
		go func() {
			tick := time.NewTicker(time.Minute)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if _, err := shared.Prune(*storeMaxBytes, *storeMaxAge); err != nil {
						fmt.Fprintln(stderr, "dspservd: prune:", err)
					}
				}
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "dspservd:", err)
		return 1
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(stdout, "dspservd: listening on %s (workers=%d, %s)\n", ln.Addr(), s.Pool().Workers(), handlerDesc)
	if node != nil {
		// Announce after the listener is up: a peer learning of this
		// node may route to it immediately.
		node.Join(ctx)
	}

	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "dspservd:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown: flip /readyz unready so load balancers stop
	// routing here (in cluster mode this also announces departure to
	// every peer, while all in-flight work still runs), stop accepting,
	// drain in-flight handlers within the budget, then cancel whatever
	// is still running by closing the pool (the deferred Close).
	s.BeginDrain()
	fmt.Fprintln(stdout, "dspservd: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(stderr, "dspservd:", err)
		return 1
	}
	return 0
}
