// Package compact implements the operation-compaction pass: the
// list-scheduling algorithm (based on local microcode compaction) that
// packs independent machine operations into VLIW long instructions,
// honouring functional-unit capacities and the memory-unit/bank binding
// established by the data allocation pass. It is the same algorithm the
// interference-graph builder dry-runs (Figure 3), now with both memory
// units usable because every memory operation carries a bank tag.
package compact

import (
	"fmt"

	"dualbank/internal/ddg"
	"dualbank/internal/ir"
	"dualbank/internal/machine"
)

// Instr is one VLIW long instruction: at most one operation per
// functional unit, all executing in a single cycle with operands read
// before results are written. The slot array is sized for the widest
// machine in the generalized family (machine.MaxUnits); on the default
// 2-bank machine only the classic nine slots are ever occupied.
type Instr struct {
	Slots [machine.MaxUnits]*ir.Op
}

// Ops returns the instruction's operations in unit order.
func (in *Instr) Ops() []*ir.Op {
	var out []*ir.Op
	for _, op := range in.Slots {
		if op != nil {
			out = append(out, op)
		}
	}
	return out
}

// Count returns the number of occupied slots.
func (in *Instr) Count() int {
	n := 0
	for _, op := range in.Slots {
		if op != nil {
			n++
		}
	}
	return n
}

// Block is a scheduled basic block.
type Block struct {
	Src    *ir.Block
	Instrs []*Instr
}

// Func is a scheduled function.
type Func struct {
	Src    *ir.Func
	Blocks []*Block // indexed by ir block ID
}

// Program is a fully scheduled program, the input to the simulator and
// the assembly printer.
type Program struct {
	Src   *ir.Program
	Funcs map[string]*Func
	Ports machine.PortModel
	// Spec is the bank/port geometry the program was scheduled for;
	// the zero value is the classic 2-bank, 1-port machine.
	Spec machine.BankSpec
}

// StaticInstrs returns the total number of long instructions in the
// program — the instruction-memory size I in the cost model (the paper
// assumes one word per instruction).
func (p *Program) StaticInstrs() int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}

// Config parameterises scheduling.
type Config struct {
	// Ports is the memory port model: banked (MU0=X, MU1=Y) or
	// dual-ported (Ideal). Non-default Specs always use the banked
	// model (each memory unit is one port of one bank).
	Ports machine.PortModel
	// Spec is the bank/port geometry; the zero value is the classic
	// 2-bank, 1-port machine, which takes the historical scheduling
	// path bit for bit.
	Spec machine.BankSpec
	// MirrorBanks flips the unit preference for operations free to use
	// either memory unit (duplicated loads tagged BankBoth): MU1 is
	// tried before MU0. Set when the allocation ran with swapped banks,
	// it makes the schedule of a mirrored allocation the exact mirror
	// of the unmirrored one — the swap-invariance the metamorphic tests
	// assert would otherwise be broken by the fixed MU0-first order.
	// It is sugar for BankPerm = {1, 0} (plus identity beyond bank 1).
	MirrorBanks bool
	// BankPerm generalizes MirrorBanks to an arbitrary bank
	// permutation: the unit preference for bank-free operations tries
	// banks in BankPerm order (BankPerm[0]'s units first). Nil means
	// identity. Set when the allocation ran under the same permutation,
	// it makes the schedule of a permuted allocation the exact
	// permutation image of the original — the k-ary generalization of
	// the swap-invariance above.
	BankPerm []int
}

// specUnits is the per-Config unit-preference table for non-default
// bank specs, built once per ScheduleWith (and per Validate) so the
// per-operation unitsFor lookup stays allocation-free.
type specUnits struct {
	// forBank[b] lists the memory units wired to bank b, ordinal order.
	forBank [][]machine.Unit
	// anyBank is the preference order for bank-free operations
	// (duplicated loads tagged BankBoth): banks in permutation order,
	// each bank's ports in ordinal order.
	anyBank []machine.Unit
}

// normalize resolves the Config's spec/permutation pair: it returns
// nil for configurations the historical 2-bank scheduler handles
// (possibly after folding BankPerm {1,0} into MirrorBanks), and a
// freshly built specUnits table otherwise.
func (cfg *Config) normalize() *specUnits {
	perm := cfg.BankPerm
	if cfg.Spec.IsDefault() {
		switch {
		case perm == nil, len(perm) == 2 && perm[0] == 0 && perm[1] == 1:
			return nil
		case len(perm) == 2 && perm[0] == 1 && perm[1] == 0:
			cfg.MirrorBanks = true
			cfg.BankPerm = nil
			return nil
		}
	}
	spec := cfg.Spec.Norm()
	if perm == nil {
		perm = make([]int, spec.Banks)
		for i := range perm {
			perm[i] = i
		}
		if cfg.MirrorBanks && spec.Banks >= 2 {
			perm[0], perm[1] = 1, 0
		}
	}
	su := &specUnits{forBank: make([][]machine.Unit, spec.Banks)}
	for b := 0; b < spec.Banks; b++ {
		su.forBank[b] = spec.UnitsForBankIndex(b)
	}
	for _, b := range perm {
		su.anyBank = append(su.anyBank, su.forBank[b]...)
	}
	return su
}

// Scratch holds the scheduler's reusable working state: the
// dependence-graph builder, the per-op bookkeeping arrays, and the
// instruction arena blocks are scheduled into before being sealed.
// A warm Scratch makes scheduleBlock allocation-free in steady state
// (only the sealed per-block output is freshly allocated), so repeated
// compiles — the experiment harness compiles every benchmark under
// seven machine modes — stop churning the garbage collector. A Scratch
// is not safe for concurrent use; give each worker its own.
type Scratch struct {
	ddg       ddg.Builder
	scheduled []bool
	cycleOf   []int
	pairIdx   []int32 // index of op.DupPair within the block, -1 if none
	opIdx     map[*ir.Op]int32
	drs       []int    // data-ready set, rebuilt each fill iteration
	inDRS     []uint32 // epoch stamp marking membership of drs
	drsEpoch  uint32
	arena     []Instr // per-block instruction arena, reused across blocks
	remaining int
}

// ensure grows the per-op scratch arrays to cover n operations.
func (s *Scratch) ensure(n int) {
	if cap(s.scheduled) < n {
		s.scheduled = make([]bool, n)
		s.cycleOf = make([]int, n)
		s.pairIdx = make([]int32, n)
		s.inDRS = make([]uint32, n)
		s.drs = make([]int, 0, n)
	}
	s.scheduled = s.scheduled[:n]
	s.cycleOf = s.cycleOf[:n]
	s.pairIdx = s.pairIdx[:n]
	s.inDRS = s.inDRS[:n]
	if s.opIdx == nil {
		s.opIdx = make(map[*ir.Op]int32, n)
	}
}

// Schedule compacts every block of every function.
func Schedule(p *ir.Program, cfg Config) (*Program, error) {
	return ScheduleWith(p, cfg, new(Scratch))
}

// ScheduleWith is Schedule with caller-provided scratch state, for
// pipelines that compile many programs back to back.
func ScheduleWith(p *ir.Program, cfg Config, s *Scratch) (*Program, error) {
	if s == nil {
		s = new(Scratch)
	}
	su := cfg.normalize()
	out := &Program{Src: p, Funcs: make(map[string]*Func, len(p.Funcs)), Ports: cfg.Ports, Spec: cfg.Spec}
	for _, f := range p.Funcs {
		sf := &Func{Src: f, Blocks: make([]*Block, 0, len(f.Blocks))}
		for _, b := range f.Blocks {
			n, err := s.scheduleBlock(b, cfg, su)
			if err != nil {
				return nil, fmt.Errorf("compact %s %s: %w", f.Name, b, err)
			}
			sf.Blocks = append(sf.Blocks, s.seal(b, n))
		}
		out.Funcs[f.Name] = sf
	}
	return out, nil
}

// unitsMemoryMirror is the both-memory-units candidate list in MU1-
// first order, used when Config.MirrorBanks flips the preference.
var unitsMemoryMirror = []machine.Unit{machine.MU1, machine.MU0}

// unitsFor lists the functional units that may execute op, most
// preferred first. The returned slice is shared and read-only. su is
// nil on the default 2-bank machine (the historical path) and the
// prebuilt preference table otherwise.
func unitsFor(op *ir.Op, cfg Config, su *specUnits) []machine.Unit {
	cls := op.Kind.Class()
	if cls != machine.ClassMemory {
		return machine.UnitsOf(cls)
	}
	if su != nil {
		if b := op.Bank.Index(); b >= 0 {
			return su.forBank[b]
		}
		if op.Bank == machine.BankBoth {
			return su.anyBank
		}
		// Unassigned data lives in bank 0 (the baseline layout).
		return su.forBank[0]
	}
	units := cfg.Ports.UnitsForBank(op.Bank)
	if cfg.MirrorBanks && len(units) == 2 {
		return unitsMemoryMirror
	}
	return units
}

// scheduleBlock list-schedules one block into the scratch arena and
// returns the number of long instructions emitted. With a warm Scratch
// it performs no heap allocations: the dependence graph, bookkeeping
// arrays, and instruction storage are all reused (enforced by
// TestScheduleBlockZeroAlloc).
func (s *Scratch) scheduleBlock(b *ir.Block, cfg Config, su *specUnits) (int, error) {
	g := s.ddg.Build(b)
	n := len(g.Ops)
	s.arena = s.arena[:0]
	if n == 0 {
		return 0, nil
	}
	s.ensure(n)
	for i := 0; i < n; i++ {
		s.scheduled[i] = false
		s.cycleOf[i] = -1
		s.pairIdx[i] = -1
	}

	// Resolve duplicated-store pairs to block-local indices once, so
	// the inner loop needs no map lookups. The two halves of a pair
	// point at each other.
	hasPairs := false
	for _, op := range g.Ops {
		if op.Atomic && op.DupPair != nil {
			hasPairs = true
			break
		}
	}
	if hasPairs {
		clear(s.opIdx)
		for i, op := range g.Ops {
			if op.Atomic && op.DupPair != nil {
				s.opIdx[op] = int32(i)
			}
		}
		for i, op := range g.Ops {
			if op.Atomic && op.DupPair != nil {
				if j, ok := s.opIdx[op.DupPair]; ok {
					s.pairIdx[i] = j
				}
			}
		}
	}

	s.remaining = n
	for cycle := 0; s.remaining > 0; cycle++ {
		s.arena = append(s.arena, Instr{})
		instr := &s.arena[len(s.arena)-1] // no appends until the cycle ends
		remBefore := s.remaining

		// Fill the instruction to a fixed point: scheduling an
		// operation can make its anti-dependent successors data-ready
		// within the same cycle (operands are read before results are
		// written), so the data-ready set is recalculated until the
		// instruction stops growing.
		for {
			s.drs = s.drs[:0]
			s.drsEpoch++
			if s.drsEpoch == 0 { // wrapped: stamps are stale, restart
				clear(s.inDRS)
				s.drsEpoch = 1
			}
			for i := 0; i < n; i++ {
				if s.scheduled[i] {
					continue
				}
				ready := true
				for _, e := range g.Pred[i] {
					if !s.scheduled[e.To] {
						ready = false
						break
					}
				}
				if ready {
					s.drs = append(s.drs, i)
					s.inDRS[i] = s.drsEpoch
				}
			}
			ddg.SortByPriority(s.drs, g.Priority)

			placed := false
			for _, i := range s.drs {
				if s.scheduled[i] || !s.compatible(g, i, cycle) {
					continue
				}
				op := g.Ops[i]
				// Atomic duplicated-store pairs must commit in the same
				// instruction: schedule both or neither.
				if op.Atomic && op.DupPair != nil {
					j := int(s.pairIdx[i])
					if j < 0 || s.scheduled[j] || s.inDRS[j] != s.drsEpoch || !s.compatible(g, j, cycle) {
						continue
					}
					if s.place(g, instr, cfg, su, i, cycle) {
						if s.place(g, instr, cfg, su, j, cycle) {
							placed = true
						} else {
							// Undo: both halves wait for the next cycle.
							for u := range instr.Slots {
								if instr.Slots[u] == op {
									instr.Slots[u] = nil
								}
							}
							s.scheduled[i] = false
							s.cycleOf[i] = -1
							s.remaining++
						}
					}
					continue
				}
				if s.place(g, instr, cfg, su, i, cycle) {
					placed = true
				}
			}
			if !placed {
				break
			}
		}
		if s.remaining == remBefore {
			return 0, fmt.Errorf("scheduler made no progress at cycle %d", cycle)
		}
	}
	return len(s.arena), nil
}

// compatible reports whether op i may join the instruction being built
// for this cycle: none of its strict predecessors may issue in the
// same cycle.
func (s *Scratch) compatible(g *ddg.Graph, i, cycle int) bool {
	for _, e := range g.Pred[i] {
		if e.Strict && s.cycleOf[e.To] == cycle {
			return false
		}
	}
	return true
}

// place puts op i into the first free unit that can execute it.
func (s *Scratch) place(g *ddg.Graph, instr *Instr, cfg Config, su *specUnits, i, cycle int) bool {
	for _, u := range unitsFor(g.Ops[i], cfg, su) {
		if instr.Slots[u] == nil {
			instr.Slots[u] = g.Ops[i]
			s.scheduled[i] = true
			s.cycleOf[i] = cycle
			s.remaining--
			return true
		}
	}
	return false
}

// seal copies the first n arena instructions into an exact-size block —
// the only per-block allocations the scheduler retains.
func (s *Scratch) seal(b *ir.Block, n int) *Block {
	sb := &Block{Src: b}
	if n == 0 {
		return sb
	}
	instrs := make([]Instr, n)
	copy(instrs, s.arena[:n])
	sb.Instrs = make([]*Instr, n)
	for i := range instrs {
		sb.Instrs[i] = &instrs[i]
	}
	return sb
}

// Validate checks that the schedule respects all dependences and unit
// constraints; tests run it over every compiled benchmark.
func Validate(p *Program) error {
	var bu ddg.Builder // reused across blocks; the graph is read per block
	vcfg := Config{Ports: p.Ports, Spec: p.Spec}
	vsu := vcfg.normalize()
	for name, f := range p.Funcs {
		for _, sb := range f.Blocks {
			cycle := make(map[*ir.Op]int)
			for c, in := range sb.Instrs {
				for u, op := range in.Slots {
					if op == nil {
						continue
					}
					cycle[op] = c
					cls := op.Kind.Class()
					okUnit := false
					for _, au := range unitsFor(op, vcfg, vsu) {
						if machine.Unit(u) == au {
							okUnit = true
						}
					}
					if !okUnit {
						return fmt.Errorf("%s: op %s of class %s on unit %s", name, op, cls, machine.Unit(u))
					}
				}
			}
			// Every op scheduled exactly once.
			if len(cycle) != len(sb.Src.Ops) {
				return fmt.Errorf("%s %s: %d ops scheduled, want %d", name, sb.Src, len(cycle), len(sb.Src.Ops))
			}
			g := bu.Build(sb.Src)
			for i, op := range g.Ops {
				for _, e := range g.Succ[i] {
					to := g.Ops[e.To]
					if e.Strict && cycle[to] <= cycle[op] {
						return fmt.Errorf("%s: strict dependence violated: %s -> %s", name, op, to)
					}
					if !e.Strict && cycle[to] < cycle[op] {
						return fmt.Errorf("%s: anti dependence violated: %s -> %s", name, op, to)
					}
				}
			}
			// Atomic pairs share an instruction.
			for op, c := range cycle {
				if op.Atomic && op.DupPair != nil && cycle[op.DupPair] != c {
					return fmt.Errorf("%s: atomic pair split across instructions", name)
				}
			}
		}
	}
	return nil
}
