package store_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dualbank/internal/explore/store"
)

// TestPruneBoundsDisk proves the size bound: after a quiescent Prune,
// the surviving record files fit maxBytes, the survivors are the most
// recently written, and every evicted key disappears from the index
// while every survivor stays readable.
func TestPruneBoundsDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("prune-key-%02d", i)
		keys = append(keys, key)
		if err := s.Put(key, store.Record{Bench: key, Cycles: int64(i)}); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so LRU order is unambiguous even on coarse
		// filesystem timestamps.
		name := filepath.Join(dir, fileNameOf(t, dir, key))
		older := time.Now().Add(-time.Duration(40-i) * time.Minute)
		if err := os.Chtimes(name, older, older); err != nil {
			t.Fatal(err)
		}
	}
	var perRecord int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		info, _ := e.Info()
		if info.Size() > perRecord {
			perRecord = info.Size()
		}
	}

	budget := perRecord * 10 // room for ~10 records
	st, err := s.Prune(budget, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.KeptBytes > budget {
		t.Errorf("kept %d bytes, budget %d", st.KeptBytes, budget)
	}
	if st.Removed == 0 || st.Kept == 0 {
		t.Fatalf("degenerate prune: %+v", st)
	}
	// The newest records survive, the oldest are gone — and the index
	// agrees with the disk exactly.
	fresh, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, key := range keys {
		_, onDisk := fresh.Get(key)
		_, inIndex := s.Get(key)
		if onDisk != inIndex {
			t.Errorf("key %s: disk=%v index=%v", key, onDisk, inIndex)
		}
		if i >= len(keys)-st.Kept && !onDisk {
			t.Errorf("recent key %s evicted before older survivors", key)
		}
	}

	// Age-based eviction clears everything older than a minute —
	// every record predates it except none, so the store empties.
	if _, err := s.Prune(0, time.Minute); err != nil {
		t.Fatal(err)
	}
	if n := s.Len(); n != 0 {
		t.Errorf("%d records survived a 1-minute max age; all were backdated >= 1 minute", n)
	}
}

// TestPruneStaleTempSweep checks Prune removes abandoned temp files
// once stale, and leaves fresh ones (a live writer's) alone.
func TestPruneStaleTempSweep(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "deadbeef.json.tmp123")
	freshTmp := filepath.Join(dir, "cafebabe.json.tmp456")
	for _, p := range []string{stale, freshTmp} {
		if err := os.WriteFile(p, []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	st, err := s.Prune(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.TempSwept != 1 {
		t.Errorf("swept %d temp files, want 1 (only the stale one)", st.TempSwept)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived the sweep")
	}
	if _, err := os.Stat(freshTmp); err != nil {
		t.Error("fresh temp file was swept")
	}
}

// TestPruneNeverRacesWriters is the property test the shared L2 cache
// depends on: pruners running flat out against concurrent writers (in
// the same store and in a second store over the same directory —
// another node of the fleet) never corrupt the directory. Afterwards
// every surviving file parses whole, a fresh Open succeeds, and the
// store still accepts and serves records.
func TestPruneNeverRacesWriters(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	peer, err := store.Open(dir) // a second writer, as another process would be
	if err != nil {
		t.Fatal(err)
	}

	const writers = 8
	const perWriter = 60
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Pruners: one on each store, spinning with a tight byte budget so
	// evictions constantly race the writers.
	for _, ps := range []*store.Store{s, peer} {
		wg.Add(1)
		go func(ps *store.Store) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := ps.Prune(4096, 0); err != nil {
					t.Errorf("prune: %v", err)
					return
				}
			}
		}(ps)
	}
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			ps := s
			if w%2 == 1 {
				ps = peer
			}
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("race-%d-%d", w, i)
				if err := ps.Put(key, store.Record{Bench: key, Cycles: int64(i)}); err != nil {
					t.Errorf("put %s: %v", key, err)
					return
				}
				// Re-put an old key now and then: the evict-then-rewrite
				// interleaving the content-address argument covers.
				if i > 0 && i%7 == 0 {
					old := fmt.Sprintf("race-%d-%d", w, i-1)
					if err := ps.Put(old, store.Record{Bench: old, Cycles: int64(i - 1)}); err != nil {
						t.Errorf("re-put %s: %v", old, err)
						return
					}
				}
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	// Every surviving file parses whole — no prune interleaving tore a
	// record.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue // evicted between ReadDir and ReadFile
		}
		var f struct {
			Key    string       `json:"key"`
			Record store.Record `json:"record"`
		}
		if err := json.Unmarshal(data, &f); err != nil || f.Key == "" {
			t.Errorf("file %s is torn after the race: %v", e.Name(), err)
		}
	}
	// The directory still opens and serves.
	fresh, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Put("post-race", store.Record{Bench: "post-race"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Get("post-race"); !ok {
		t.Error("store unusable after the race")
	}
	// And one final quiescent prune lands inside the budget.
	st, err := fresh.Prune(4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.KeptBytes > 4096 {
		t.Errorf("final prune kept %d bytes over the 4096 budget", st.KeptBytes)
	}
}

// fileNameOf recovers a key's on-disk file name by diffing the
// directory against the store's snapshot — the test has no access to
// the unexported hashing.
func fileNameOf(t *testing.T, dir, key string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		var f struct {
			Key string `json:"key"`
		}
		if json.Unmarshal(data, &f) == nil && f.Key == key {
			return e.Name()
		}
	}
	t.Fatalf("no file holds key %q", key)
	return ""
}
