// Package pipeline is the compiler driver: it chains the MiniC
// front-end, the optimizer, the register allocator, the data
// allocation pass, and the operation-compaction pass into a single
// Compile call, and wraps the simulator for execution. Every
// experiment arm of the paper is one Options.Mode value.
package pipeline

import (
	"context"
	"fmt"

	"dualbank/internal/alloc"
	"dualbank/internal/compact"
	"dualbank/internal/core"
	"dualbank/internal/ir"
	"dualbank/internal/lower"
	"dualbank/internal/machine"
	"dualbank/internal/minic"
	"dualbank/internal/opt"
	"dualbank/internal/regalloc"
	"dualbank/internal/sim"
)

// Options selects the data-allocation mode and pass configuration.
type Options struct {
	Mode alloc.Mode
	// InterruptSafe turns on atomic duplicated-store pairs (§3.2).
	InterruptSafe bool
	// Opt configures the machine-independent optimizer.
	Opt opt.Options
	// DupOnly, when non-nil, names the exact CBDup duplication set:
	// any partitioned array it contains is replicated, whether or not
	// the interference analysis marked it. Used by the
	// selective-duplication refinement and the design-space explorer.
	DupOnly map[string]bool
	// Partitioner selects the graph-partitioning algorithm.
	Partitioner core.Method
	// FMPasses bounds the FM partitioner's refinement passes: 0 means
	// the library default, negative stops after the greedy-equivalent
	// first phase. Ignored unless Partitioner is core.MethodFM.
	FMPasses int
	// Profiled runs a profiling pass and uses profile-derived
	// interference-edge weights for any partitioned mode (CBProfiled
	// implies it). This decouples the weighting policy from the mode so
	// profiling can combine with duplication.
	Profiled bool
	// SwapBanks mirrors the data allocation wholesale — everything
	// bound for bank X lands in Y and vice versa. The banks are
	// architecturally identical, so cycle counts must not change; the
	// metamorphic tests compile every benchmark both ways to prove it.
	SwapBanks bool
	// Spec selects the machine's bank geometry (bank count × ports per
	// bank); the zero value is the classic dual-bank, single-ported
	// machine and reproduces the historical pipeline exactly.
	Spec machine.BankSpec
	// BankPerm relabels the banks by a general permutation (the k-ary
	// form of SwapBanks, which it supersedes when non-nil): data
	// assigned to bank i lands in bank BankPerm[i]. Cycle counts must
	// not change; the k-ary metamorphic tests prove it.
	BankPerm []int
}

// Compiled is the result of compiling one program.
type Compiled struct {
	Name  string
	IR    *ir.Program
	Alloc *alloc.Result
	Sched *compact.Program
	Regs  map[string]regalloc.Stats
}

// Compiler carries the reusable scratch state of the back-end passes —
// the interference-graph scanner, the list scheduler's arena, and the
// compiled simulation engine's recycled machine — so a driver compiling
// many (program, mode) pairs back to back reaches a steady state where
// the hot passes allocate only their retained output. The zero value is
// ready to use. A Compiler is not safe for concurrent use; give each
// worker goroutine its own.
type Compiler struct {
	scanner core.Scanner
	scratch compact.Scratch
	batch   sim.Batch
}

// SimBatch returns the compiler's recycled simulation arena, for
// callers running the compiled engine across many measurements on this
// compiler. Like the compiler itself it is single-owner: a machine
// obtained through it is invalidated by the next batched run.
func (cc *Compiler) SimBatch() *sim.Batch { return &cc.batch }

// Compile builds source (a MiniC translation unit) into scheduled VLIW
// code under the given options.
func Compile(source, name string, o Options) (*Compiled, error) {
	return new(Compiler).Compile(source, name, o)
}

// Compile builds source into scheduled VLIW code, reusing the
// compiler's scratch state.
func (cc *Compiler) Compile(source, name string, o Options) (*Compiled, error) {
	return cc.CompileCtx(context.Background(), source, name, o)
}

// CompileCtx is Compile honoring ctx: cancellation is checked between
// passes and inside the CBProfiled profiling run (the only pass whose
// cost is driven by the program's dynamic behaviour rather than its
// size), so a caller's deadline bounds compilation of hostile input.
func (cc *Compiler) CompileCtx(ctx context.Context, source, name string, o Options) (*Compiled, error) {
	pass := func() error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%s: compile: %w", name, err)
		}
		return nil
	}
	if err := pass(); err != nil {
		return nil, err
	}
	file, err := minic.Parse(source)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if err := minic.Analyze(file); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	prog, err := lower.Program(file, name)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if err := pass(); err != nil {
		return nil, err
	}
	opt.Run(prog, o.Opt)
	if err := ir.Verify(prog); err != nil {
		return nil, fmt.Errorf("%s: after opt: %w", name, err)
	}
	regStats, err := regalloc.Run(prog)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if err := pass(); err != nil {
		return nil, err
	}

	profiled := o.Profiled && o.Mode.Partitioned()
	if o.Mode == alloc.CBProfiled || profiled {
		// Profile-driven edge weights: execute the program once at the
		// IR level to annotate every basic block with its execution
		// count before building the interference graph.
		in := sim.NewInterp(prog)
		in.Profile = true
		if err := in.RunContext(ctx); err != nil {
			return nil, fmt.Errorf("%s: profiling run: %w", name, err)
		}
	}

	allocOpts := alloc.Options{
		Mode: o.Mode, InterruptSafe: o.InterruptSafe,
		Method: o.Partitioner, FMPasses: o.FMPasses, Profiled: profiled,
		Scanner: &cc.scanner, SwapBanks: o.SwapBanks,
		Spec: o.Spec, BankPerm: o.BankPerm,
	}
	if o.DupOnly != nil {
		filter := o.DupOnly
		allocOpts.DupFilter = func(s *ir.Symbol) bool { return filter[s.Name] }
	}
	allocRes, err := alloc.Run(prog, allocOpts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	sched, err := compact.ScheduleWith(prog,
		compact.Config{Ports: allocRes.Ports, MirrorBanks: o.SwapBanks,
			Spec: o.Spec, BankPerm: o.BankPerm}, &cc.scratch)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return &Compiled{Name: name, IR: prog, Alloc: allocRes, Sched: sched, Regs: regStats}, nil
}

// Run executes the compiled program on a fresh machine and returns it
// for inspection (cycle count, memory contents).
func (c *Compiled) Run() (*sim.Machine, error) {
	return c.RunCtx(context.Background())
}

// RunCtx is Run honoring ctx at the simulator's block boundaries.
func (c *Compiled) RunCtx(ctx context.Context) (*sim.Machine, error) {
	m := sim.NewMachine(c.Sched)
	if err := m.RunContext(ctx); err != nil {
		return nil, fmt.Errorf("%s (%v): %w", c.Name, c.Alloc.Mode, err)
	}
	return m, nil
}

// RunFast executes the compiled program on the predecoded fast-path
// engine, which produces the same cycle counts, bandwidth counters and
// memory images as Run but without per-cycle map lookups or heap
// allocation. Use Run for the reference interpreter and its debugging
// hooks (tracing, per-instruction callbacks, port assertions).
func (c *Compiled) RunFast() (*sim.FastMachine, error) {
	return c.RunFastCtx(context.Background())
}

// RunFastCtx is RunFast honoring ctx: the fast engine polls for
// cancellation at basic-block boundaries, so a caller's deadline
// bounds even a simulation that would otherwise run to MaxCycles.
func (c *Compiled) RunFastCtx(ctx context.Context) (*sim.FastMachine, error) {
	pd, err := sim.Predecode(c.Sched)
	if err != nil {
		return nil, fmt.Errorf("%s (%v): %w", c.Name, c.Alloc.Mode, err)
	}
	m := pd.NewMachine()
	if err := m.RunContext(ctx); err != nil {
		return nil, fmt.Errorf("%s (%v): %w", c.Name, c.Alloc.Mode, err)
	}
	return m, nil
}

// RunCompiled executes the program on the compiled threaded-code
// engine, which produces the same cycle counts, bandwidth counters and
// memory images as Run and RunFast (differential tests pin all three)
// but dispatches one specialized closure per operation instead of
// interpreting, and allocates memory arenas covering only the
// program's used address range.
func (c *Compiled) RunCompiled() (*sim.CompiledMachine, error) {
	return c.RunCompiledCtx(context.Background(), nil)
}

// RunCompiledCtx is RunCompiled honoring ctx at the simulator's block
// boundaries. A non-nil batch recycles its machine's arenas across
// calls — the returned machine then aliases the batch's storage and is
// invalidated by the batch's next run, so callers must finish reading
// results first.
func (c *Compiled) RunCompiledCtx(ctx context.Context, b *sim.Batch) (*sim.CompiledMachine, error) {
	cp, err := sim.Compile(c.Sched)
	if err != nil {
		return nil, fmt.Errorf("%s (%v): %w", c.Name, c.Alloc.Mode, err)
	}
	if b == nil {
		m := cp.NewMachine()
		if err := m.RunContext(ctx); err != nil {
			return nil, fmt.Errorf("%s (%v): %w", c.Name, c.Alloc.Mode, err)
		}
		return m, nil
	}
	m, err := b.Run(ctx, cp)
	if err != nil {
		return nil, fmt.Errorf("%s (%v): %w", c.Name, c.Alloc.Mode, err)
	}
	return m, nil
}

// Global finds a global symbol by name for result inspection.
func (c *Compiled) Global(name string) *ir.Symbol {
	for _, g := range c.IR.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}
