// Command dspbench regenerates the paper's evaluation: Figure 7
// (kernel gains under CB partitioning vs the dual-ported Ideal),
// Figure 8 (application gains under CB, profiled weights, partial
// duplication, and Ideal), and Table 3 (performance/cost trade-offs).
//
// The experiments run through a shared worker pool and a memoized
// compile/run cache, so the single-bank baseline and arms shared
// between figures are measured exactly once per invocation. -parallel
// bounds the pool (1 reproduces the serial harness; the printed
// figures and tables are byte-identical at any width), -timing reports
// per-section wall clock and cache traffic on stderr, and -json writes
// the full results with timings to a machine-readable file.
//
// Usage:
//
//	dspbench [-fig7] [-fig8] [-table3] [-all] [-bench name]
//	         [-parallel N] [-timing] [-json path]
//	         [-cpuprofile path] [-memprofile path]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"dualbank/internal/alloc"
	"dualbank/internal/bench"
	"dualbank/internal/core"
	"dualbank/internal/pipeline"
)

func main() {
	fig7 := flag.Bool("fig7", false, "run the kernel experiment (Figure 7)")
	fig8 := flag.Bool("fig8", false, "run the application experiment (Figure 8)")
	table3 := flag.Bool("table3", false, "run the performance/cost table (Table 3)")
	orgs := flag.Bool("organizations", false, "compare memory organisations (low-order vs high-order vs dual-ported)")
	tables := flag.Bool("tables", false, "print the benchmark inventories (Tables 1 and 2)")
	sweep := flag.Bool("sweep", false, "sweep FIR filter order vs CB gain")
	all := flag.Bool("all", false, "run everything")
	one := flag.String("bench", "", "run a single benchmark across all modes")
	selective := flag.String("selective", "", "run PCR-driven selective duplication on one benchmark")
	list := flag.Bool("list", false, "list benchmark names")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool width for the experiment harness")
	timing := flag.Bool("timing", false, "report per-section wall clock, per-run compile/simulate split, and cache traffic on stderr")
	partitioner := flag.String("partitioner", "greedy", "graph partitioner for -bench runs: greedy, kl, anneal, fm, or exact")
	engineName := flag.String("engine", "compiled", "simulation engine: compiled, fast, or machine")
	simbench := flag.Bool("simbench", false, "measure per-engine simulator throughput (not part of -all)")
	simcheck := flag.String("simcheck", "", "re-measure simulator throughput and fail if the compiled/fast speedup regressed >10% vs this baseline JSON")
	jsonPath := flag.String("json", "", "write harness results and timings to this JSON file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	engine, err := bench.ParseEngine(*engineName)
	check(err)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	if *list {
		for _, n := range bench.Names() {
			fmt.Println(n)
		}
		return
	}
	if *selective != "" {
		runSelective(*selective)
		return
	}
	if *one != "" {
		runOne(*one, *partitioner, engine)
		return
	}
	if *simbench || *simcheck != "" {
		runSimBench(*simcheck, *jsonPath)
		return
	}
	if !*fig7 && !*fig8 && !*table3 && !*orgs && !*tables && !*sweep {
		*all = true
	}

	h := bench.NewHarness(*parallel)
	h.Engine = engine
	report := &bench.Report{GOMAXPROCS: runtime.GOMAXPROCS(0), Parallel: h.Parallel}
	start := time.Now()

	// section runs one experiment, prints its text (stdout stays
	// byte-identical to the serial harness), and records rows and
	// wall-clock in the JSON report.
	section := func(name string, run func() (bench.Section, string, error)) {
		s0 := time.Now()
		sec, text, err := run()
		check(err)
		sec.Name = name
		sec.Seconds = time.Since(s0).Seconds()
		fmt.Println(text)
		if *timing {
			st := h.Stats()
			fmt.Fprintf(os.Stderr, "dspbench: %-14s %8.3fs  cache %d hits / %d misses\n",
				name, sec.Seconds, st.Hits, st.Misses)
		}
		report.AddSection(sec)
	}

	if *tables || *all {
		fmt.Println(bench.RenderTables())
	}
	if *fig7 || *all {
		section("figure7", func() (bench.Section, string, error) {
			rows, err := h.Figure7()
			return bench.Section{Figure: rows}, bench.RenderFigure(
				"Figure 7: Performance Gain for DSP Kernels (over single-bank baseline)",
				rows, bench.Figure7Modes), err
		})
	}
	if *fig8 || *all {
		section("figure8", func() (bench.Section, string, error) {
			rows, err := h.Figure8()
			return bench.Section{Figure: rows}, bench.RenderFigure(
				"Figure 8: Performance Gain for DSP Applications (over single-bank baseline)",
				rows, bench.Figure8Modes), err
		})
	}
	if *table3 || *all {
		section("table3", func() (bench.Section, string, error) {
			rows, err := h.Table3()
			return bench.Section{Table3: rows}, bench.RenderTable3(rows), err
		})
	}
	if *orgs || *all {
		section("organizations", func() (bench.Section, string, error) {
			rows, err := h.Organizations()
			return bench.Section{Figure: rows}, bench.RenderFigure(
				"Memory organisations: low-order interleaved (hardware conflict stalls) vs high-order banked (CB/Dup) vs dual-ported",
				rows, bench.OrganizationModes), err
		})
	}
	if *sweep || *all {
		section("sweep_fir", func() (bench.Section, string, error) {
			rows, err := h.SweepFIR([]int{8, 16, 32, 64, 128, 256}, 16)
			return bench.Section{Sweep: rows}, bench.RenderSweep(
				"FIR order sensitivity: CB gain vs filter length (16 samples)", rows), err
		})
	}

	report.Cache = h.Stats()
	report.Runs = h.Timings()
	report.TotalSeconds = time.Since(start).Seconds()
	if *timing {
		var compileSum, simSum float64
		for _, rt := range report.Runs {
			compileSum += rt.CompileSeconds
			simSum += rt.SimSeconds
			fmt.Fprintf(os.Stderr, "dspbench: run %-14s %-12v compile %7.3fs  sim %8.3fs\n",
				rt.Bench, rt.Mode, rt.CompileSeconds, rt.SimSeconds)
		}
		fmt.Fprintf(os.Stderr, "dspbench: phase totals   compile %7.3fs  sim %8.3fs over %d runs\n",
			compileSum, simSum, len(report.Runs))
		fmt.Fprintf(os.Stderr, "dspbench: total          %8.3fs  cache %d hits / %d misses (parallel=%d)\n",
			report.TotalSeconds, report.Cache.Hits, report.Cache.Misses, h.Parallel)
	}
	if *jsonPath != "" {
		check(report.WriteFile(*jsonPath))
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		check(err)
		runtime.GC()
		check(pprof.WriteHeapProfile(f))
		f.Close()
	}
}

func runOne(name, partitioner string, engine bench.Engine) {
	p, ok := bench.ByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "dspbench: unknown benchmark %q (use -list)\n", name)
		os.Exit(2)
	}
	method, err := core.ParseMethod(partitioner)
	check(err)
	modes := []alloc.Mode{
		alloc.SingleBank, alloc.CB, alloc.CBProfiled,
		alloc.CBDup, alloc.FullDup, alloc.Ideal,
	}
	cc := new(pipeline.Compiler)
	var base bench.Result
	for _, m := range modes {
		res, err := bench.RunWith(p, m, bench.RunOptions{Partitioner: method, Compiler: cc, Engine: engine})
		check(err)
		if m == alloc.SingleBank {
			base = res
			fmt.Printf("%-12s cycles=%-10d cost=%d\n", m, res.Cycles, res.Mem.Total())
			continue
		}
		fmt.Printf("%-12s cycles=%-10d gain=%+6.1f%% cost=%-8d dupStores=%d dup=%v\n",
			m, res.Cycles, bench.Gain(base, res), res.Mem.Total(), res.DupStores, res.Duplicated)
	}
}

// runSimBench measures per-engine simulator throughput over the
// standard suite, optionally writing a BENCH_sim.json-style report and
// optionally gating on a committed baseline: with a non-empty
// checkPath the run exits 1 if any benchmark's compiled-over-fast
// speedup fell more than 10% below the baseline's. The speedup ratio —
// not raw ns/run — is what's compared, so the check transfers across
// host speeds.
func runSimBench(checkPath, jsonPath string) {
	rows, err := bench.SimBench(bench.SimBenchSuite, 100*time.Millisecond)
	check(err)
	fmt.Print(bench.RenderSimBench(rows))
	if jsonPath != "" {
		report := &bench.Report{GOMAXPROCS: runtime.GOMAXPROCS(0), SimBench: rows}
		check(report.WriteFile(jsonPath))
	}
	if checkPath == "" {
		return
	}
	baseline, err := bench.ReadReport(checkPath)
	check(err)
	if len(baseline.SimBench) == 0 {
		fmt.Fprintf(os.Stderr, "dspbench: %s carries no simbench rows\n", checkPath)
		os.Exit(1)
	}
	if fails := bench.SimCheck(rows, baseline.SimBench, 0.10); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "dspbench: REGRESSION:", f)
		}
		os.Exit(1)
	}
	fmt.Printf("simcheck: no compiled-engine regression vs %s\n", checkPath)
}

// runSelective demonstrates the paper's §5 refinement: duplicate only
// the arrays whose performance gain justifies their memory cost.
func runSelective(name string) {
	p, ok := bench.ByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "dspbench: unknown benchmark %q (use -list)\n", name)
		os.Exit(2)
	}
	res, err := pipeline.CompileSelective(p.Source, p.Name, pipeline.SelectiveOptions{})
	check(err)
	fmt.Printf("selective duplication for %s\n", p.Name)
	fmt.Printf("plain CB: %d cycles, PCR %.3f\n", res.BaseCycles, res.BasePCR)
	fmt.Printf("candidates: %v\n", res.Candidates)
	for _, tr := range res.Trials {
		verdict := "rejected"
		if tr.Kept {
			verdict = "kept"
		}
		fmt.Printf("  %-10s %-8s cycles=%-8d PG=%.2f CI=%.2f PCR=%.3f  (%s)\n",
			tr.Symbol, verdict, tr.Cycles, tr.PG, tr.CI, tr.PCR, tr.Reason)
	}
	fmt.Printf("chosen: %v\n", res.Chosen)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dspbench:", err)
		os.Exit(1)
	}
}
