package core

import (
	"math"
	"math/rand"

	"dualbank/internal/ir"
)

// This file provides two alternative graph partitioners used to
// validate the paper's choice of the simple greedy algorithm:
//
//   - PartitionKL refines the greedy result with Kernighan–Lin-style
//     passes (the paper notes "other algorithms, such as graph
//     colouring, will probably work just as well").
//   - PartitionAnneal is a simulated-annealing partitioner in the
//     spirit of Sudarsanam & Malik's constraint-graph labelling, which
//     the paper's related-work section discusses; the Princeton study
//     found annealing performed no better than a greedy heuristic, a
//     result this reproduction's tests confirm on the benchmark suite.
//
// Both are deterministic (the annealer takes an explicit seed).

// Method selects a partitioning algorithm.
type Method int8

const (
	// MethodGreedy is the paper's Figure 5 algorithm.
	MethodGreedy Method = iota
	// MethodKL is greedy followed by Kernighan–Lin refinement.
	MethodKL
	// MethodAnneal is simulated annealing.
	MethodAnneal
)

func (m Method) String() string {
	switch m {
	case MethodKL:
		return "kl"
	case MethodAnneal:
		return "anneal"
	}
	return "greedy"
}

// PartitionWith partitions the graph with the chosen method.
func (g *Graph) PartitionWith(m Method) *Partition {
	switch m {
	case MethodKL:
		return g.PartitionKL()
	case MethodAnneal:
		return g.PartitionAnneal(1)
	default:
		return g.Partition()
	}
}

type adjEntry struct {
	to int
	w  int64
}

func (g *Graph) adjacency() ([][]adjEntry, int64) {
	n := len(g.Nodes)
	adj := make([][]adjEntry, n)
	var total int64
	for k, w := range g.weights {
		adj[k[0]] = append(adj[k[0]], adjEntry{k[1], w})
		adj[k[1]] = append(adj[k[1]], adjEntry{k[0], w})
		total += w
	}
	return adj, total
}

// cutCost returns the weight of edges whose endpoints share a side.
func cutCost(adj [][]adjEntry, inY []bool) int64 {
	var cost int64
	for i := range adj {
		for _, a := range adj[i] {
			if a.to > i && inY[a.to] == inY[i] {
				cost += a.w
			}
		}
	}
	return cost
}

func (g *Graph) partitionFrom(inY []bool, adj [][]adjEntry) *Partition {
	p := &Partition{Cost: cutCost(adj, inY)}
	for i, s := range g.Nodes {
		if inY[i] {
			p.SetY = append(p.SetY, s)
		} else {
			p.SetX = append(p.SetX, s)
		}
	}
	return p
}

// moveGain is the cost decrease from flipping node i.
func moveGain(adj [][]adjEntry, inY []bool, i int) int64 {
	var same, cross int64
	for _, a := range adj[i] {
		if inY[a.to] == inY[i] {
			same += a.w
		} else {
			cross += a.w
		}
	}
	return same - cross
}

// PartitionKL runs the greedy algorithm and then Kernighan–Lin
// refinement: repeated passes that tentatively flip every node in
// best-gain order (allowing temporarily negative gains), keep the best
// prefix, and stop when a pass yields no improvement.
func (g *Graph) PartitionKL() *Partition {
	greedy := g.Partition()
	n := len(g.Nodes)
	adj, _ := g.adjacency()
	inY := make([]bool, n)
	idx := make(map[*ir.Symbol]int, n)
	for i, s := range g.Nodes {
		idx[s] = i
	}
	for _, s := range greedy.SetY {
		inY[idx[s]] = true
	}
	cost := greedy.Cost

	for pass := 0; pass < 8; pass++ {
		locked := make([]bool, n)
		cur := cost
		best := cost
		bestPrefix := 0
		var flips []int
		state := append([]bool(nil), inY...)
		for step := 0; step < n; step++ {
			bi, bg := -1, int64(math.MinInt64)
			for i := 0; i < n; i++ {
				if locked[i] {
					continue
				}
				if gn := moveGain(adj, state, i); gn > bg {
					bi, bg = i, gn
				}
			}
			if bi < 0 {
				break
			}
			state[bi] = !state[bi]
			locked[bi] = true
			cur -= bg
			flips = append(flips, bi)
			if cur < best {
				best = cur
				bestPrefix = len(flips)
			}
		}
		if best >= cost {
			break
		}
		for _, i := range flips[:bestPrefix] {
			inY[i] = !inY[i]
		}
		cost = best
	}
	p := g.partitionFrom(inY, adj)
	p.Trace = []int64{greedy.Cost, p.Cost}
	return p
}

// PartitionAnneal partitions by simulated annealing with a geometric
// cooling schedule. The seed makes it deterministic.
func (g *Graph) PartitionAnneal(seed int64) *Partition {
	n := len(g.Nodes)
	adj, total := g.adjacency()
	rng := rand.New(rand.NewSource(seed))
	inY := make([]bool, n)
	cost := cutCost(adj, inY)
	bestY := append([]bool(nil), inY...)
	best := cost

	if n > 0 && total > 0 {
		temp := float64(total)
		const cooling = 0.95
		for ; temp > 0.01; temp *= cooling {
			for step := 0; step < 4*n; step++ {
				i := rng.Intn(n)
				gain := moveGain(adj, inY, i)
				if gain >= 0 || rng.Float64() < math.Exp(float64(gain)/temp) {
					inY[i] = !inY[i]
					cost -= gain
					if cost < best {
						best = cost
						copy(bestY, inY)
					}
				}
			}
		}
	}
	p := g.partitionFrom(bestY, adj)
	p.Trace = []int64{total, p.Cost}
	return p
}
