package main

import (
	"bytes"
	"strings"
	"testing"

	"dualbank/internal/explore/store"
)

// TestFaultProfileGate: -fault-profile without DSP_FAULT_ENABLE=1 must
// be refused with a usage error, never silently honored.
func TestFaultProfileGate(t *testing.T) {
	t.Setenv("DSP_FAULT_ENABLE", "")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-benchmark", "fir_32_1", "-budget", "5", "-quiet",
		"-checkpoint", t.TempDir(), "-fault-profile", "ioerr=1",
	}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "DSP_FAULT_ENABLE") {
		t.Errorf("diagnostic does not name the gate: %s", stderr.String())
	}
}

// TestCheckpointDirFailsMidRun models the checkpoint directory going
// read-only partway through a -resume run (store-failafter lets a few
// writes land, then fails every one): the CLI must exit non-zero with
// a diagnostic, and the checkpoints written before the failure must
// survive intact for the next resume.
func TestCheckpointDirFailsMidRun(t *testing.T) {
	t.Setenv("DSP_FAULT_ENABLE", "1")
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-benchmark", "fir_32_1", "-budget", "40", "-workers", "2", "-quiet",
		"-checkpoint", dir, "-resume",
		"-fault-profile", "store-failafter=8",
	}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("exit 0 despite the checkpoint store failing mid-run; stderr: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "dspexplore:") || !strings.Contains(stderr.String(), "injected") {
		t.Errorf("no diagnostic naming the store failure:\n%s", stderr.String())
	}

	// The pre-failure checkpoints reload cleanly and seed a successful
	// fault-free resume.
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() == 0 {
		t.Fatal("no checkpoints survived the mid-run failure")
	}
	stdout.Reset()
	stderr.Reset()
	code = run([]string{
		"-benchmark", "fir_32_1", "-budget", "40", "-workers", "2", "-quiet",
		"-checkpoint", dir, "-resume",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("fault-free resume exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "resuming from") {
		t.Errorf("resume did not replay the surviving checkpoints:\n%s", stderr.String())
	}
}
