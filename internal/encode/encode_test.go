package encode_test

import (
	"testing"

	"dualbank/internal/alloc"
	"dualbank/internal/bench"
	"dualbank/internal/encode"
	"dualbank/internal/pipeline"
	"dualbank/internal/sim"
)

// roundTrip compiles a benchmark, encodes it, decodes the image, runs
// BOTH programs on the VLIW simulator, and compares cycle counts and
// every output word.
func roundTrip(t *testing.T, name string, mode alloc.Mode) {
	t.Helper()
	p, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("no benchmark %q", name)
	}
	c, err := pipeline.Compile(p.Source, name, pipeline.Options{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	img, err := encode.Encode(c.Sched)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := encode.Decode(img)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}

	m1 := sim.NewMachine(c.Sched)
	if err := m1.Run(); err != nil {
		t.Fatal(err)
	}
	m2 := sim.NewMachine(dec)
	if err := m2.Run(); err != nil {
		t.Fatalf("decoded image run: %v", err)
	}
	if m1.Cycles != m2.Cycles {
		t.Fatalf("cycle mismatch: original %d, decoded %d", m1.Cycles, m2.Cycles)
	}
	// Compare every global, word for word, matching symbols by name.
	decSyms := map[string]int{}
	for i, s := range dec.Src.Globals {
		decSyms[s.Name] = i
	}
	for _, g := range c.IR.Globals {
		di, ok := decSyms[g.Name]
		if !ok {
			t.Fatalf("decoded image lost global %s", g.Name)
		}
		dg := dec.Src.Globals[di]
		if dg.Size != g.Size || dg.Bank != g.Bank || dg.Addr != g.Addr {
			t.Fatalf("global %s metadata mismatch: %+v vs %+v", g.Name, g, dg)
		}
		for i := 0; i < g.Size; i++ {
			w1, err := m1.Word(g, i)
			if err != nil {
				t.Fatal(err)
			}
			w2, err := m2.Word(dg, i)
			if err != nil {
				t.Fatal(err)
			}
			if w1 != w2 {
				t.Fatalf("%s[%d]: original %#x, decoded %#x", g.Name, i, w1, w2)
			}
		}
	}
}

func TestRoundTripKernels(t *testing.T) {
	for _, name := range []string{"fir_32_1", "iir_4_64", "mult_4_4", "fft_256"} {
		for _, mode := range []alloc.Mode{alloc.SingleBank, alloc.CB, alloc.Ideal} {
			roundTrip(t, name, mode)
		}
	}
}

func TestRoundTripApplications(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Exercise duplication (lpc), calls (spectral's fft), heavy integer
	// code (adpcm) and the low-order organisation.
	roundTrip(t, "lpc", alloc.CBDup)
	roundTrip(t, "spectral", alloc.CB)
	roundTrip(t, "adpcm", alloc.CB)
	roundTrip(t, "trellis", alloc.LowOrder)
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := encode.Decode([]byte("not an image")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := encode.Decode(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	p, _ := bench.ByName("fir_32_1")
	c, err := pipeline.Compile(p.Source, "fir", pipeline.Options{Mode: alloc.CB})
	if err != nil {
		t.Fatal(err)
	}
	img, err := encode.Encode(c.Sched)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation point must produce an error, never a panic or a
	// silently wrong program.
	for cut := 0; cut < len(img)-1; cut += 7 {
		if _, err := encode.Decode(img[:cut]); err == nil {
			t.Fatalf("truncated image (%d of %d bytes) accepted", cut, len(img))
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	p, _ := bench.ByName("fir_32_1")
	c, err := pipeline.Compile(p.Source, "fir", pipeline.Options{Mode: alloc.CB})
	if err != nil {
		t.Fatal(err)
	}
	img, err := encode.Encode(c.Sched)
	if err != nil {
		t.Fatal(err)
	}
	// Flip bytes across the image; decoding must either fail or
	// produce a program that still passes the IR verifier (corruption
	// may land in data words, which are arbitrary). It must never
	// panic.
	for pos := 5; pos < len(img); pos += 13 {
		mut := append([]byte(nil), img...)
		mut[pos] ^= 0xFF
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decode panicked at corrupt byte %d: %v", pos, r)
				}
			}()
			_, _ = encode.Decode(mut)
		}()
	}
}

func TestImageDensity(t *testing.T) {
	p, _ := bench.ByName("fft_256")
	c, err := pipeline.Compile(p.Source, "fft", pipeline.Options{Mode: alloc.CB})
	if err != nil {
		t.Fatal(err)
	}
	img, err := encode.Encode(c.Sched)
	if err != nil {
		t.Fatal(err)
	}
	instrs := c.Sched.StaticInstrs()
	if instrs == 0 {
		t.Fatal("no instructions")
	}
	// Separate the embedded data tables (twiddle factors, input
	// samples) from the code stream.
	dataBytes := 0
	for _, s := range c.IR.Symbols() {
		dataBytes += 4 * len(s.Init)
	}
	codeBytes := len(img) - dataBytes
	perInstr := float64(codeBytes) / float64(instrs)
	// Tightly-encoded instructions are a DSP hallmark; the variable
	// encoding should stay far below a naive 9-slot fixed layout
	// (9 slots x ~8 bytes = 72 bytes per instruction).
	if perInstr > 40 {
		t.Errorf("code density %.1f bytes/instr — encoding is not tight", perInstr)
	}
	t.Logf("image: %d bytes total, %d data, %d code over %d instructions (%.1f bytes/instr)",
		len(img), dataBytes, codeBytes, instrs, perInstr)
}
