package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"dualbank/internal/bench"
	"dualbank/internal/serve"
)

// ForwardHeader carries the hop count of a forwarded request. Entry
// requests have no header; each forward increments it. A request at
// maxHops is served wherever it stands rather than forwarded again, so
// no routing disagreement — stale ring, mid-drain membership change —
// can loop a request.
const ForwardHeader = "X-Dspcluster-Forward"

// maxHops bounds the forward chain: entry → replica → owner is the
// longest legitimate path.
const maxHops = 2

// peerCooldown is how long a peer stays blacklisted after a failed
// forward — a short negative cache so one dead node costs each live
// node one failed dial per cooldown window, not one per request.
const peerCooldown = time.Second

// Config sizes one cluster node.
type Config struct {
	// Self is this node's advertised address (host:port) — its identity
	// on the ring. Required.
	Self string
	// Peers are the other members' advertised addresses known at start;
	// the ring is Self plus Peers. Late joiners announce themselves via
	// POST /v1/cluster/join.
	Peers []string
	// Replication is each key's replica-set size, owner included
	// (default 2, clamped to the member count). Hot keys are served by
	// any member of their replica set.
	Replication int
	// HotK, HotThreshold, and HotWindow tune hot-key detection: the top
	// HotK keys with at least HotThreshold observations per HotWindow
	// are hot (defaults 16, 8, 2s).
	HotK         int
	HotThreshold int
	HotWindow    time.Duration
	// Serve configures the inner single-node server. Its OnDrain is
	// chained after the node's own departure announcement.
	Serve serve.Config
	// Transport carries peer HTTP traffic (default
	// http.DefaultTransport). The chaos suite swaps in a partitioning
	// transport here.
	Transport http.RoundTripper
}

// Node is one member of the cluster: the single-node server plus the
// routing layer in front of its /v1/run. All other endpoints pass
// through untouched; /metrics gains the cluster counters.
type Node struct {
	cfg         Config
	self        string
	replication int
	srv         *serve.Server
	mux         *http.ServeMux
	metrics     *Metrics
	hot         *hotTracker
	client      *http.Client

	mu      sync.Mutex
	members map[string]bool
	ring    *Ring
	down    map[string]time.Time // peer -> cooldown expiry
}

// New builds a node. Callers must Close it.
func New(cfg Config) *Node {
	if cfg.Replication < 1 {
		cfg.Replication = 2
	}
	n := &Node{
		cfg:         cfg,
		self:        cfg.Self,
		replication: cfg.Replication,
		mux:         http.NewServeMux(),
		hot:         newHotTracker(cfg.HotK, cfg.HotThreshold, cfg.HotWindow),
		members:     make(map[string]bool),
		down:        make(map[string]time.Time),
	}
	n.metrics = newClusterMetrics(n.hot.HotCount)
	transport := cfg.Transport
	if transport == nil {
		// Forwarding fans many concurrent requests at a handful of
		// peers; the default transport's 2 idle connections per host
		// would re-dial for most of them.
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = 256
		tr.MaxIdleConnsPerHost = 64
		transport = tr
	}
	n.client = &http.Client{Transport: transport}

	// Departure runs before the inner server cancels anything: the
	// node's OnDrain chain is announce-first, then the caller's hook.
	sc := cfg.Serve
	inner := sc.OnDrain
	sc.OnDrain = func() {
		n.announceLeave()
		if inner != nil {
			inner()
		}
	}
	n.srv = serve.New(sc)

	n.members[cfg.Self] = true
	for _, p := range cfg.Peers {
		if p != "" {
			n.members[p] = true
		}
	}
	n.rebuildRing()

	n.mux.HandleFunc("POST /v1/run", n.handleRun)
	n.mux.HandleFunc("POST /v1/cluster/join", n.handleJoin)
	n.mux.HandleFunc("POST /v1/cluster/leave", n.handleLeave)
	n.mux.HandleFunc("GET /v1/cluster/ring", n.handleRing)
	n.mux.HandleFunc("GET /metrics", n.handleMetrics)
	n.mux.Handle("/", n.srv.Handler())
	return n
}

// Handler returns the node's mux.
func (n *Node) Handler() http.Handler { return n.mux }

// Server exposes the inner single-node server (drain, stats, close).
func (n *Node) Server() *serve.Server { return n.srv }

// Metrics exposes the cluster routing counters.
func (n *Node) Metrics() *Metrics { return n.metrics }

// BeginDrain flips readiness and announces departure to every peer,
// in that order, before any in-flight work is cancelled.
func (n *Node) BeginDrain() { n.srv.BeginDrain() }

// Close shuts down the inner server.
func (n *Node) Close() { n.srv.Close() }

// ReplicaSet returns key's replica set — owner first — on this node's
// current ring. Tests and the load generator use it to pick nodes by
// role.
func (n *Node) ReplicaSet(key string) []string {
	return n.currentRing().Replicas(key, n.replication)
}

// RunKey computes the routing key this node would hash for a job —
// the harness memo key under the node's effective engine.
func (n *Node) RunKey(j serve.Job) string {
	return bench.CacheKey(j.Prog, j.Mode, bench.RunOptions{
		Partitioner: j.Method,
		FMPasses:    j.FMPasses, Profiled: j.Profiled, DupOnly: j.DupOnly,
		Banks: j.Banks, Ports: j.Ports,
		Engine: n.effectiveEngine(j),
	})
}

// rebuildRing rebuilds the ring from the member set. Caller must not
// hold n.mu.
func (n *Node) rebuildRing() {
	n.mu.Lock()
	ms := make([]string, 0, len(n.members))
	for m := range n.members {
		ms = append(ms, m)
	}
	n.ring = NewRing(ms)
	count := len(ms)
	n.mu.Unlock()
	n.metrics.setMembers(count)
}

// currentRing returns the ring snapshot.
func (n *Node) currentRing() *Ring {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ring
}

// peerDown reports whether addr is inside its failure cooldown.
func (n *Node) peerDown(addr string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	exp, ok := n.down[addr]
	if !ok {
		return false
	}
	if time.Now().After(exp) {
		delete(n.down, addr)
		return false
	}
	return true
}

// markDown starts addr's failure cooldown.
func (n *Node) markDown(addr string) {
	n.mu.Lock()
	n.down[addr] = time.Now().Add(peerCooldown)
	n.mu.Unlock()
}

// effectiveEngine resolves the engine a request will run under on any
// node: its own pin, or this node's configured default.
func (n *Node) effectiveEngine(j serve.Job) bench.Engine {
	if j.EngineSet {
		return j.Engine
	}
	return n.cfg.Serve.Engine
}

// maxSourceBytes mirrors the inner server's default so the routing
// decoder and the serving decoder accept identical bodies.
func (n *Node) maxSourceBytes() int {
	if n.cfg.Serve.MaxSourceBytes > 0 {
		return n.cfg.Serve.MaxSourceBytes
	}
	return 1 << 20
}

// handleRun routes POST /v1/run. Source jobs and malformed bodies go
// straight to the inner server (the latter so error responses are
// byte-identical to a single node's). Cacheable jobs route by memo
// key: the owner serves, replicas serve what they hold, any node
// serves a hot key, everyone else forwards.
func (n *Node) handleRun(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, int64(n.maxSourceBytes())*2+4096))
	if err != nil {
		// Oversized or torn body: let the inner server produce its own
		// error shape from the same (truncated) read.
		n.serveLocal(w, r, body, "source")
		return
	}
	job, err := serve.DecodeRequest(body, n.maxSourceBytes())
	if err != nil || !job.Cacheable {
		n.serveLocal(w, r, body, "source")
		return
	}

	engine := n.effectiveEngine(job)
	key := bench.CacheKey(job.Prog, job.Mode, bench.RunOptions{
		Partitioner: job.Method,
		FMPasses:    job.FMPasses, Profiled: job.Profiled, DupOnly: job.DupOnly,
		Engine: engine,
	})
	hot := n.hot.Observe(key)
	hops := 0
	if h := r.Header.Get(ForwardHeader); h != "" {
		hops, _ = strconv.Atoi(h)
	}

	ring := n.currentRing()
	reps := ring.Replicas(key, n.replication)
	selfIdx := -1
	for i, m := range reps {
		if m == n.self {
			selfIdx = i
			break
		}
	}

	switch {
	case len(reps) == 0 || selfIdx == 0:
		n.serveLocal(w, r, body, "owner")
	case selfIdx > 0: // replica, not owner
		switch {
		case hot:
			n.serveLocal(w, r, body, "hot")
		case n.srv.HasCached(job):
			n.serveLocal(w, r, body, "cached")
		case hops >= maxHops:
			n.serveLocal(w, r, body, "hop_cap")
		default:
			n.forward(w, r, body, engine, []string{reps[0]}, "owner", hops)
		}
	default: // not in the replica set
		switch {
		case hot:
			// A hot key is served wherever it lands: by promotion time
			// the owner has computed and published the result, so this
			// serve is an L2 (or local memo) hit, and the head of a
			// skewed workload diffuses across the whole fleet instead of
			// queueing on its replica set. Without a shared store this
			// costs at most one extra compute per node, bounded and
			// deliberate.
			n.serveLocal(w, r, body, "hot")
		case hops >= maxHops:
			n.serveLocal(w, r, body, "hop_cap")
		default:
			n.forward(w, r, body, engine, append([]string(nil), reps...), "owner", hops)
		}
	}
}

// serveLocal hands the request to the inner server with the body
// restored, counting the routing reason.
func (n *Node) serveLocal(w http.ResponseWriter, r *http.Request, body []byte, reason string) {
	n.metrics.Local(reason)
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	n.srv.Handler().ServeHTTP(w, r2)
}

// forward relays the request to the first healthy target, pinning the
// effective engine into the body so the executor computes the identical
// memo key. Targets inside their failure cooldown are skipped; if every
// target is down the request is served locally. A forward that fails on
// the wire marks its peer down and falls back to local compute — a
// degraded cluster answers slower, it does not error.
func (n *Node) forward(w http.ResponseWriter, r *http.Request, body []byte, engine bench.Engine, targets []string, role string, hops int) {
	fwdBody, err := pinEngine(body, engine)
	if err != nil {
		n.serveLocal(w, r, body, "source")
		return
	}
	for _, target := range targets {
		if target == n.self || n.peerDown(target) {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
			"http://"+target+"/v1/run", bytes.NewReader(fwdBody))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(ForwardHeader, strconv.Itoa(hops+1))
		resp, err := n.client.Do(req)
		if err != nil {
			if r.Context().Err() != nil {
				// The client went away, not the peer; serve locally so the
				// inner server accounts the cancellation (499) exactly as a
				// single node would.
				n.serveLocal(w, r, body, "fallback")
				return
			}
			n.metrics.ForwardError()
			n.markDown(target)
			continue
		}
		n.metrics.Forward(role)
		copyResponse(w, resp)
		return
	}
	// Every candidate peer is down or skipped: degrade to local compute.
	n.metrics.Local("peer_down")
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	n.srv.Handler().ServeHTTP(w, r2)
}

// pinEngine re-marshals the request body with the engine made
// explicit, so the executing node — whatever its own default — runs
// the engine the routing decision hashed.
func pinEngine(body []byte, engine bench.Engine) ([]byte, error) {
	var req serve.Request
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	req.Engine = engine.String()
	return json.Marshal(&req)
}

// copyResponse relays a peer's response verbatim.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// memberChange is the body of join and leave announcements.
type memberChange struct {
	Addr string `json:"addr"`
}

func (n *Node) handleJoin(w http.ResponseWriter, r *http.Request) {
	n.memberEdit(w, r, true)
}

func (n *Node) handleLeave(w http.ResponseWriter, r *http.Request) {
	n.memberEdit(w, r, false)
}

func (n *Node) memberEdit(w http.ResponseWriter, r *http.Request, add bool) {
	var mc memberChange
	if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&mc); err != nil || mc.Addr == "" {
		http.Error(w, `{"error":"body must be {\"addr\":\"host:port\"}"}`, http.StatusBadRequest)
		return
	}
	n.mu.Lock()
	if add {
		n.members[mc.Addr] = true
		delete(n.down, mc.Addr) // a joining peer is alive by definition
	} else if mc.Addr != n.self {
		delete(n.members, mc.Addr)
	}
	n.mu.Unlock()
	n.rebuildRing()
	n.handleRing(w, r)
}

// ringResponse is the body of GET /v1/cluster/ring.
type ringResponse struct {
	Self        string   `json:"self"`
	Members     []string `json:"members"`
	Replication int      `json:"replication"`
	Draining    bool     `json:"draining"`
}

func (n *Node) handleRing(w http.ResponseWriter, r *http.Request) {
	resp := ringResponse{
		Self:        n.self,
		Members:     n.currentRing().Members(),
		Replication: n.replication,
		Draining:    n.srv.Draining(),
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// handleMetrics renders the inner server's families followed by the
// cluster tier's.
func (n *Node) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rec := &bufferingWriter{header: make(http.Header)}
	n.srv.Handler().ServeHTTP(rec, r.Clone(r.Context()))
	for k, vs := range rec.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	code := rec.code
	if code == 0 {
		code = http.StatusOK
	}
	w.WriteHeader(code)
	w.Write(rec.buf.Bytes())
	n.metrics.WritePrometheus(w)
}

// bufferingWriter captures the inner /metrics body so the cluster
// families can be appended after it.
type bufferingWriter struct {
	header http.Header
	buf    bytes.Buffer
	code   int
}

func (b *bufferingWriter) Header() http.Header { return b.header }
func (b *bufferingWriter) WriteHeader(c int)   { b.code = c }
func (b *bufferingWriter) Write(p []byte) (int, error) {
	return b.buf.Write(p)
}

// announceLeave tells every peer this node is departing. Best-effort
// and bounded: a partitioned peer must not stall the drain.
func (n *Node) announceLeave() {
	peers := n.currentRing().Members()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for _, p := range peers {
		if p == n.self {
			continue
		}
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			body := fmt.Sprintf(`{"addr":%q}`, n.self)
			req, err := http.NewRequestWithContext(ctx, http.MethodPost,
				"http://"+peer+"/v1/cluster/leave", strings.NewReader(body))
			if err != nil {
				return
			}
			req.Header.Set("Content-Type", "application/json")
			if resp, err := n.client.Do(req); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(p)
	}
	wg.Wait()
}

// Join announces this node to each configured peer and merges the
// members they report. Best-effort: unreachable peers are skipped.
func (n *Node) Join(ctx context.Context) {
	for _, p := range n.cfg.Peers {
		if p == "" || p == n.self {
			continue
		}
		body := fmt.Sprintf(`{"addr":%q}`, n.self)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			"http://"+p+"/v1/cluster/join", strings.NewReader(body))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := n.client.Do(req)
		if err != nil {
			continue
		}
		var rr ringResponse
		err = json.NewDecoder(resp.Body).Decode(&rr)
		resp.Body.Close()
		if err != nil {
			continue
		}
		n.mu.Lock()
		for _, m := range rr.Members {
			n.members[m] = true
		}
		n.mu.Unlock()
	}
	n.rebuildRing()
}
