package core

// Unit tests for the canonical greedy tie-break: the first-reference
// ranking rankByFirstUse assigns, the total-tie diversity rule in
// Partition, and the FM phase-1 replay of both. The pipeline-level
// metamorphic suite proves the end-to-end invariance; these tests pin
// the mechanism at the graph layer, where a regression is cheapest to
// diagnose.

import (
	"strings"
	"testing"

	"dualbank/internal/ir"
	"dualbank/internal/lower"
	"dualbank/internal/minic"
	"dualbank/internal/opt"
	"dualbank/internal/regalloc"
)

// biquadDecls and biquadBody spell a single-section IIR biquad — the
// smallest real kernel whose interference graph is a uniform complete
// graph, where every greedy move is a total tie and only the canonical
// rules decide the walk.
var biquadDecls = []string{
	"float x[1] = {0.5};",
	"float b0[1] = {0.2};",
	"float b1[1] = {0.1};",
	"float b2[1] = {0.05};",
	"float a1[1] = {-0.3};",
	"float a2[1] = {0.1};",
	"float y[1];",
}

const biquadBody = `
void main() {
	int n;
	float d0 = 0.0;
	float d1 = 0.0;
	for (n = 0; n < 1; n++) {
		float w = x[n] - a1[0] * d0 - a2[0] * d1;
		float out = b0[0] * w + b1[0] * d0 + b2[0] * d1;
		d1 = d0;
		d0 = w;
		y[n] = out;
	}
}
`

func lowerSource(t *testing.T, src, name string) *ir.Program {
	t.Helper()
	f, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	if err := minic.Analyze(f); err != nil {
		t.Fatalf("%s: analyze: %v", name, err)
	}
	p, err := lower.Program(f, name)
	if err != nil {
		t.Fatalf("%s: lower: %v", name, err)
	}
	opt.Run(p, opt.Options{})
	if _, err := regalloc.Run(p); err != nil {
		t.Fatalf("%s: regalloc: %v", name, err)
	}
	return p
}

func biquadSource(decls []string) string {
	return strings.Join(decls, "\n") + "\n" + biquadBody
}

func nodePref(t *testing.T, g *Graph, name string) int32 {
	t.Helper()
	for i, s := range g.Nodes {
		if s.Name == name {
			return g.tiePref[i]
		}
	}
	t.Fatalf("no node %q in graph", name)
	return 0
}

func nameSet(ss []*ir.Symbol) map[string]bool {
	m := make(map[string]bool, len(ss))
	for _, s := range ss {
		m[s.Name] = true
	}
	return m
}

// TestCanonicalRankFirstUse pins the rank source: symbols referenced
// earlier in the body rank higher, regardless of where they were
// declared.
func TestCanonicalRankFirstUse(t *testing.T) {
	p := lowerSource(t, biquadSource(biquadDecls), "biquad")
	g := BuildGraph(p, WeightStatic)
	if g.tiePref == nil {
		t.Fatal("scanner-built graph has no tiePref ranking")
	}
	// Body reference order: x, a1, a2, b0, b1, b2 — not declaration
	// order (which puts the b coefficients before the a ones).
	order := []string{"x", "a1", "a2", "b0", "b1", "b2"}
	for i := 1; i < len(order); i++ {
		hi, lo := order[i-1], order[i]
		if nodePref(t, g, hi) <= nodePref(t, g, lo) {
			t.Errorf("pref(%s)=%d not above pref(%s)=%d; want first-use order",
				hi, nodePref(t, g, hi), lo, nodePref(t, g, lo))
		}
	}
}

// TestPartitionTotalTieDiversity pins the diversity rule: on the
// biquad's uniform complete graph every move is a total tie, and the
// walk must not migrate the operands of one expression wholesale —
// that partition has the same cut cost but schedules strictly worse.
func TestPartitionTotalTieDiversity(t *testing.T) {
	p := lowerSource(t, biquadSource(biquadDecls), "biquad")
	g := BuildGraph(p, WeightStatic)
	part := g.Partition()

	inY := nameSet(part.SetY)
	first := 0 // operands of the first expression: x, a1, a2
	for _, n := range []string{"x", "a1", "a2"} {
		if inY[n] {
			first++
		}
	}
	second := 0 // operands of the second: b0, b1, b2
	for _, n := range []string{"b0", "b1", "b2"} {
		if inY[n] {
			second++
		}
	}
	if first+second != len(part.SetY) {
		t.Fatalf("unexpected migrated set %v", part.SetY)
	}
	if first == 0 || second == 0 {
		t.Errorf("migrated set Y=%s clusters one expression's operands; want a mix",
			names(part.SetY))
	}
}

// TestPartitionDeclOrderInvariant rebuilds the biquad with its global
// declarations reversed and demands the identical partition — the
// property the pipeline metamorphic suite checks end to end.
func TestPartitionDeclOrderInvariant(t *testing.T) {
	base := lowerSource(t, biquadSource(biquadDecls), "biquad")
	reversed := make([]string, len(biquadDecls))
	for i, d := range biquadDecls {
		reversed[len(biquadDecls)-1-i] = d
	}
	perm := lowerSource(t, biquadSource(reversed), "biquad_rev")

	pb := BuildGraph(base, WeightStatic).Partition()
	pp := BuildGraph(perm, WeightStatic).Partition()
	if pb.Cost != pp.Cost {
		t.Fatalf("cost changed under declaration permutation: %d vs %d", pb.Cost, pp.Cost)
	}
	bx, by := nameSet(pb.SetX), nameSet(pb.SetY)
	px, py := nameSet(pp.SetX), nameSet(pp.SetY)
	if !sameSet(bx, px) || !sameSet(by, py) {
		t.Errorf("partition changed under declaration permutation:\nbase %s\nperm %s",
			pb, pp)
	}
}

// TestFMReplaysCanonicalWalk pins the differential property at the
// graph layer: FM's phase 1 must replay the canonical greedy walk move
// for move — same trace, same cost, same bank image.
func TestFMReplaysCanonicalWalk(t *testing.T) {
	p := lowerSource(t, biquadSource(biquadDecls), "biquad")
	g := BuildGraph(p, WeightStatic)
	greedy := g.Partition()
	fm := g.PartitionFMPasses(0)

	if greedy.Cost != fm.Cost {
		t.Fatalf("FM phase 1 cost %d differs from greedy %d", fm.Cost, greedy.Cost)
	}
	if len(greedy.Trace) != len(fm.Trace) {
		t.Fatalf("FM phase 1 trace %v differs from greedy %v", fm.Trace, greedy.Trace)
	}
	for i := range greedy.Trace {
		if greedy.Trace[i] != fm.Trace[i] {
			t.Fatalf("FM phase 1 trace %v differs from greedy %v", fm.Trace, greedy.Trace)
		}
	}
	if !sameSet(nameSet(greedy.SetY), nameSet(fm.SetY)) {
		t.Errorf("FM phase 1 image differs from greedy:\ngreedy %s\nfm %s", greedy, fm)
	}
	if full := g.PartitionFM(); full.Cost > greedy.Cost {
		t.Errorf("refined FM cost %d worse than greedy %d", full.Cost, greedy.Cost)
	}
}

// TestParseMethodRoundTrip covers the method name round trip and the
// error path.
func TestParseMethodRoundTrip(t *testing.T) {
	for _, m := range []Method{MethodGreedy, MethodKL, MethodAnneal, MethodFM, MethodExact} {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMethod(%q) = %v, %v; want %v", m.String(), got, err, m)
		}
	}
	if _, err := ParseMethod("quantum"); err == nil {
		t.Error("ParseMethod accepted an unknown method name")
	}
}

// TestGraphDiagnostics smoke-tests the rendering helpers over a real
// scanner-built graph.
func TestGraphDiagnostics(t *testing.T) {
	p := lowerSource(t, biquadSource(biquadDecls), "biquad")
	g := BuildGraph(p, WeightStatic)
	part := g.Partition()
	if s := g.String(); !strings.Contains(s, "w=") {
		t.Errorf("Graph.String rendered no edges:\n%s", s)
	}
	if d := g.Dot(part); !strings.Contains(d, "graph interference") {
		t.Errorf("Graph.Dot missing header:\n%s", d)
	}
	if s := part.String(); !strings.Contains(s, "cost:") {
		t.Errorf("Partition.String missing cost:\n%s", s)
	}
	var a1, a2 *ir.Symbol
	for _, s := range g.Nodes {
		switch s.Name {
		case "a1":
			a1 = s
		case "a2":
			a2 = s
		}
	}
	if a1 == nil || a2 == nil {
		t.Fatal("biquad graph lost its coefficient nodes")
	}
	if g.PairCount(a1, a2) <= 0 {
		t.Error("no recorded pairing events between a1 and a2")
	}
	c := g.CSR()
	for i := range g.Nodes {
		if g.Nodes[i] == a1 && c.Degree(i) == 0 {
			t.Error("a1 has no incident edges in the CSR view")
		}
	}
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func names(ss []*ir.Symbol) string {
	var ns []string
	for _, s := range ss {
		ns = append(ns, s.Name)
	}
	return strings.Join(ns, ", ")
}
