// Package cluster is the scale-out tier over dspservd: it shards the
// measurement keyspace across N nodes with a consistent-hash ring,
// routes every cacheable /v1/run to the key's owner so the fleet
// computes each cold key exactly once (the owner's in-memory
// single-flight cache coalesces every node's forwarded requests), backs
// all nodes with one shared content-addressed L2 result store, and
// replicates hot keys — the top of a windowed popularity count — so
// skewed workloads spread across the key's replica set instead of
// melting its owner.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// vnodesPerMember is the number of ring positions each member owns.
// 128 virtual nodes keep the keyspace split within a few percent of
// even for small fleets while keeping ring rebuilds trivial.
const vnodesPerMember = 128

// Ring is an immutable consistent-hash ring: members placed at
// vnodesPerMember pseudo-random points each, keys owned by the first
// point at or clockwise of the key's hash. Membership changes build a
// new Ring; lookups are lock-free reads of a sorted slice.
type Ring struct {
	points  []ringPoint // sorted by hash
	members []string    // sorted, deduplicated
}

type ringPoint struct {
	hash   uint64
	member string
}

// hash64 is the ring's hash: the first 8 bytes of SHA-256. Every node
// must agree on key placement byte-for-byte, so the hash is fixed and
// well-defined rather than seeded.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring over the given member addresses. Duplicates
// are collapsed; order does not matter — any two nodes holding the
// same member set build identical rings.
func NewRing(members []string) *Ring {
	set := make(map[string]bool, len(members))
	for _, m := range members {
		if m != "" {
			set[m] = true
		}
	}
	r := &Ring{
		points:  make([]ringPoint, 0, len(set)*vnodesPerMember),
		members: make([]string, 0, len(set)),
	}
	for m := range set {
		r.members = append(r.members, m)
		for v := 0; v < vnodesPerMember; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hash64(m + "#" + strconv.Itoa(v)),
				member: m,
			})
		}
	}
	sort.Strings(r.members)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the sorted member list.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Owner returns the member owning key: the first distinct member at or
// clockwise of the key's hash. Empty ring returns "".
func (r *Ring) Owner(key string) string {
	reps := r.Replicas(key, 1)
	if len(reps) == 0 {
		return ""
	}
	return reps[0]
}

// Replicas returns the first n distinct members clockwise of the key's
// hash — the key's replica set, owner first. n is clamped to the
// member count.
func (r *Ring) Replicas(key string, n int) []string {
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= h
	})
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}
