package ir

import (
	"fmt"
	"strings"

	"dualbank/internal/machine"
)

// OpKind enumerates the machine operations of the model architecture.
type OpKind int8

const (
	OpInvalid OpKind = iota

	// Constants and moves.
	OpConst  // Dst = Imm (int)
	OpFConst // Dst = FImm (float)
	OpMov    // Dst = Args[0] (same type)

	// Integer arithmetic and logic (ClassInteger).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpNeg
	OpAnd
	OpOr
	OpXor
	OpNot
	OpShl
	OpShr // arithmetic shift right
	OpMac // Dst = Dst + Args[0]*Args[1] (multiply-accumulate)

	// Integer comparisons, producing 0 or 1 (ClassInteger).
	OpSetEQ
	OpSetNE
	OpSetLT
	OpSetLE
	OpSetGT
	OpSetGE

	// Floating-point arithmetic (ClassFloat).
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg
	OpFMac // Dst = Dst + Args[0]*Args[1]

	// Floating-point comparisons, producing int 0 or 1 (ClassFloat).
	OpFSetEQ
	OpFSetNE
	OpFSetLT
	OpFSetLE
	OpFSetGT
	OpFSetGE

	// Conversions (execute on the unit of their source domain).
	OpIntToFloat
	OpFloatToInt // truncates toward zero

	// Memory (ClassMemory). Address = Sym.Addr + Idx (+ frame base for
	// locals). Idx == NoReg means a direct scalar access.
	OpLoad  // Dst = mem[Sym + Idx]
	OpStore // mem[Sym + Idx] = Args[0]

	// Control (ClassControl). These terminate blocks, except OpCall.
	OpBr     // unconditional branch to Block.Succs[0]
	OpCondBr // if Args[0] != 0 goto Succs[0] else Succs[1]
	OpRet    // return Args[0] (or nothing for void)
	OpCall   // Dst = Callee(CallArgs...)

	// Low-overhead looping hardware (ClassControl). OpDo pushes a loop
	// counter (Args[0], must be >= 1) and enters Succs[0]; OpEndDo
	// decrements the top counter and repeats to Succs[0] while it is
	// non-zero, otherwise pops and falls through to Succs[1]. These
	// model the zero-overhead DO/REP mechanism of DSPs like the
	// DSP56001 (Figure 1 of the paper).
	OpDo
	OpEndDo
)

var opNames = map[OpKind]string{
	OpConst: "const", OpFConst: "fconst", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpNeg: "neg", OpAnd: "and", OpOr: "or", OpXor: "xor", OpNot: "not",
	OpShl: "shl", OpShr: "shr", OpMac: "mac",
	OpSetEQ: "seteq", OpSetNE: "setne", OpSetLT: "setlt",
	OpSetLE: "setle", OpSetGT: "setgt", OpSetGE: "setge",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFNeg: "fneg", OpFMac: "fmac",
	OpFSetEQ: "fseteq", OpFSetNE: "fsetne", OpFSetLT: "fsetlt",
	OpFSetLE: "fsetle", OpFSetGT: "fsetgt", OpFSetGE: "fsetge",
	OpIntToFloat: "itof", OpFloatToInt: "ftoi",
	OpLoad: "load", OpStore: "store",
	OpBr: "br", OpCondBr: "condbr", OpRet: "ret", OpCall: "call",
	OpDo: "do", OpEndDo: "enddo",
}

func (k OpKind) String() string {
	if s, ok := opNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", int8(k))
}

// Class returns the functional-unit class that executes operations of
// this kind.
func (k OpKind) Class() machine.Class {
	switch k {
	case OpLoad, OpStore:
		return machine.ClassMemory
	case OpBr, OpCondBr, OpRet, OpCall, OpDo, OpEndDo:
		return machine.ClassControl
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFNeg, OpFMac,
		OpFSetEQ, OpFSetNE, OpFSetLT, OpFSetLE, OpFSetGT, OpFSetGE,
		OpFConst, OpIntToFloat, OpFloatToInt:
		return machine.ClassFloat
	default:
		return machine.ClassInteger
	}
}

// IsTerminator reports whether the kind ends a basic block.
func (k OpKind) IsTerminator() bool {
	return k == OpBr || k == OpCondBr || k == OpRet || k == OpDo || k == OpEndDo
}

// IsCompare reports whether the kind is an integer or float comparison.
func (k OpKind) IsCompare() bool {
	return (k >= OpSetEQ && k <= OpSetGE) || (k >= OpFSetEQ && k <= OpFSetGE)
}

// Op is one machine operation.
type Op struct {
	Kind OpKind
	Type Type // result type (TVoid if no result)
	Dst  Reg
	Args [2]Reg
	Idx  Reg // index register for Load/Store (NoReg = direct)

	Imm  int64   // OpConst
	FImm float64 // OpFConst (stored as float64, rounded to float32 by the simulator)

	// Sym is the symbol accessed by Load/Store.
	Sym *Symbol

	// Callee and CallArgs describe OpCall.
	Callee   string
	CallArgs []Reg

	// Bank is the memory bank this Load/Store is tagged with after data
	// allocation ("each memory operation is tagged with the bank that
	// stores the data it is accessing", §3.1). For a load from a
	// duplicated symbol this stays BankBoth, leaving the scheduler free
	// to use either memory unit.
	Bank machine.Bank

	// DupPair links the two stores produced by expanding a store to a
	// duplicated symbol; used by the store-lock/store-unlock interrupt
	// mode and by statistics.
	DupPair *Op

	// Atomic marks the two halves of a duplicated-store pair that must
	// issue in the same long instruction, the store-lock/store-unlock
	// interrupt-safety discipline of §3.2.
	Atomic bool
}

// Uses returns the registers the operation reads, appended to dst.
func (o *Op) Uses(dst []Reg) []Reg {
	for _, a := range o.Args {
		if a != NoReg {
			dst = append(dst, a)
		}
	}
	if o.Idx != NoReg {
		dst = append(dst, o.Idx)
	}
	// Multiply-accumulate reads its accumulator.
	if o.Kind == OpMac || o.Kind == OpFMac {
		dst = append(dst, o.Dst)
	}
	dst = append(dst, o.CallArgs...)
	return dst
}

// Def returns the register the operation writes, or NoReg.
func (o *Op) Def() Reg { return o.Dst }

// IsMem reports whether the op accesses data memory.
func (o *Op) IsMem() bool { return o.Kind == OpLoad || o.Kind == OpStore }

func (o *Op) String() string {
	var b strings.Builder
	if o.Dst != NoReg {
		fmt.Fprintf(&b, "%s = ", o.Dst)
	}
	b.WriteString(o.Kind.String())
	switch o.Kind {
	case OpConst:
		fmt.Fprintf(&b, " %d", o.Imm)
	case OpFConst:
		fmt.Fprintf(&b, " %g", o.FImm)
	case OpLoad:
		fmt.Fprintf(&b, " %s", o.Sym)
		if o.Idx != NoReg {
			fmt.Fprintf(&b, "[%s]", o.Idx)
		}
		if o.Bank != machine.BankNone {
			fmt.Fprintf(&b, " !%s", o.Bank)
		}
	case OpStore:
		fmt.Fprintf(&b, " %s", o.Sym)
		if o.Idx != NoReg {
			fmt.Fprintf(&b, "[%s]", o.Idx)
		}
		fmt.Fprintf(&b, ", %s", o.Args[0])
		if o.Bank != machine.BankNone {
			fmt.Fprintf(&b, " !%s", o.Bank)
		}
	case OpCall:
		fmt.Fprintf(&b, " %s(", o.Callee)
		for i, a := range o.CallArgs {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
		b.WriteString(")")
	default:
		sep := " "
		for _, a := range o.Args {
			if a != NoReg {
				b.WriteString(sep)
				b.WriteString(a.String())
				sep = ", "
			}
		}
	}
	return b.String()
}
