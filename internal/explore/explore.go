// Package explore is the design-space exploration engine: it searches
// per-benchmark back-end configurations — partitioning algorithm,
// profile weighting, FM refinement budget, and per-array duplication
// subsets — evaluating every candidate through the experiment
// harness's memo cache and scoring it with the paper's cost model
// (Cost = X + Y + 2·S + I) against its cycle count. The engine
// maintains the exact Pareto frontier (cycles vs. cost words) per
// benchmark and across the suite, streams progress, and checkpoints
// completed evaluations to a content-addressed on-disk store so an
// interrupted exploration resumes without re-simulating.
//
// The search is deterministic at any worker count: candidates are
// generated in a fixed order, exact subset enumeration is used while
// the duplication space is small, and the hill-climbing phase beyond
// that moves in synchronous rounds whose winners are chosen by a fixed
// tie-break — so the frontier bytes depend only on the inputs, never
// on scheduling.
package explore

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"dualbank/internal/alloc"
	"dualbank/internal/bench"
	"dualbank/internal/cost"
	"dualbank/internal/explore/store"
	"dualbank/internal/machine"
	"dualbank/internal/pipeline"
)

// EvalFunc executes one measurement. The default runs through a
// bench.Harness; the HTTP service substitutes its worker pool so
// exploration shares the serving path's backpressure and metrics.
// cached reports a memo-cache hit.
type EvalFunc func(ctx context.Context, p bench.Program, mode alloc.Mode, ro bench.RunOptions) (res bench.Result, cached bool, err error)

// BatchEvalFunc executes a family of measurements of one benchmark in
// a single dispatch, returning outcomes in item order. The default
// runs through bench.Harness.RunBatchCtx, which shares one compiler
// and one recycled simulation arena across the family — so evaluating
// a whole duplication-subset round costs one warm-up instead of one
// per configuration. Per-item errors (infeasible configurations) must
// come back in their slot, not abort the batch.
type BatchEvalFunc func(ctx context.Context, p bench.Program, items []bench.BatchItem) []bench.BatchOutcome

// Event is one progress notification: an evaluation finished (or was
// replayed from a checkpoint).
type Event struct {
	Bench  string
	Config string
	// Source tells where the result came from: "run" (executed),
	// "cache" (harness memo hit), "store" (checkpoint replay), or
	// "infeasible" (the configuration cannot compile, e.g. bank
	// overflow).
	Source string
	Cycles int64
	Cost   int
	// Done and Planned are the benchmark's progress counters; Planned
	// grows when the adaptive phase schedules more rounds.
	Done, Planned int
}

// Options configures an exploration.
type Options struct {
	// Budget caps evaluations per benchmark (default 200). The
	// enumerated space is searched in a fixed order, so a smaller
	// budget explores a deterministic prefix.
	Budget int
	// Workers bounds concurrent evaluations (default 1). Any value
	// produces byte-identical frontiers.
	Workers int
	// ExactK is the duplication-subset exhaustion bound: benchmarks
	// with at most this many partitioned arrays have every subset
	// enumerated; beyond it the engine hill-climbs (default 4).
	ExactK int
	// MaxDupArrays caps the arrays considered for duplication search
	// (default 8); candidates the paper's analysis marks come first.
	MaxDupArrays int
	// Store, when non-nil, checkpoints every completed evaluation and
	// (unless NoResume) replays existing checkpoints instead of
	// re-simulating.
	Store *store.Store
	// NoResume ignores existing checkpoints (they are still written).
	NoResume bool
	// Harness supplies the memo cache for the default evaluator; a
	// private one is created when nil.
	Harness *bench.Harness
	// Evaluate overrides the evaluator with a per-measurement function;
	// setting it disables batched evaluation (the HTTP service routes
	// every measurement through its worker pool individually, keeping
	// exploration under the serving path's backpressure).
	Evaluate EvalFunc
	// EvaluateBatch overrides the batched evaluator. Ignored when
	// Evaluate is set.
	EvaluateBatch BatchEvalFunc
	// Progress, when non-nil, receives one Event per finished
	// evaluation, serialized (never concurrently).
	Progress func(Event)
	// Banks and Ports pin the exploration to one machine geometry
	// (stamped onto every candidate configuration). Zero values explore
	// the classic dual-bank, single-ported machine, byte-identical to
	// the pre-generalization explorer.
	Banks, Ports int
}

// hw is the hardware-cost annotation for the exploration's machine: 0
// on the classic machine (keeping historical report bytes), the spec's
// HardwareCost otherwise.
func (o Options) hw() int {
	s := machine.BankSpec{Banks: o.Banks, PortsPerBank: o.Ports}
	if s.IsDefault() {
		return 0
	}
	return s.HardwareCost()
}

func (o Options) withDefaults() Options {
	if o.Budget <= 0 {
		o.Budget = 200
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.ExactK <= 0 {
		o.ExactK = 4
	}
	if o.MaxDupArrays <= 0 {
		o.MaxDupArrays = 8
	}
	return o
}

// Eval is one completed candidate evaluation.
type Eval struct {
	Config     Config      `json:"-"`
	Key        string      `json:"config"`
	Cycles     int64       `json:"cycles"`
	Mem        cost.Memory `json:"mem"`
	DupStores  int         `json:"dup_stores,omitempty"`
	Duplicated []string    `json:"duplicated,omitempty"`
	// Err marks an infeasible configuration (it cannot compile under
	// the machine model, e.g. duplication overflows a bank).
	Err string `json:"err,omitempty"`
	// Source is "run", "cache", or "store" (see Event).
	Source string `json:"source"`
}

// Feasible reports whether the evaluation produced a measurement.
func (e Eval) Feasible() bool { return e.Err == "" }

// BenchReport is one benchmark's exploration outcome.
type BenchReport struct {
	Bench          string   `json:"bench"`
	BaselineCycles int64    `json:"baseline_cycles"`
	BaselineCost   int      `json:"baseline_cost"`
	DupArrays      []string `json:"dup_arrays,omitempty"`
	DupMarked      []string `json:"dup_marked,omitempty"`

	Evals      int  `json:"evals"`
	Infeasible int  `json:"infeasible,omitempty"`
	StoreHits  int  `json:"store_hits"`
	CacheHits  int  `json:"cache_hits"`
	Exhaustive bool `json:"exhaustive"`

	// Frontier is the exact Pareto frontier, cost ascending.
	Frontier []Point `json:"frontier"`
	// CB is the paper's fixed CB design point; DominatingCB lists
	// frontier points that strictly dominate it (empty plus
	// Exhaustive=true is a proof none exists in the space).
	CB           Point   `json:"cb"`
	DominatingCB []Point `json:"dominating_cb,omitempty"`
	// Best is the minimum-cycles feasible point.
	Best Point `json:"best"`
}

// Report is a whole exploration's outcome.
type Report struct {
	Budget     int           `json:"budget"`
	ExactK     int           `json:"exact_k"`
	Benchmarks []BenchReport `json:"benchmarks"`
	// Suite is the cross-benchmark frontier over shared configurations
	// (those evaluated for every explored benchmark), scoring each by
	// summed cycles and summed cost. Present only for multi-benchmark
	// explorations.
	Suite []Point `json:"suite_frontier,omitempty"`

	Evals     int `json:"evals"`
	StoreHits int `json:"store_hits"`
	CacheHits int `json:"cache_hits"`
}

// engine carries one exploration's shared state. Exactly one of eval
// and evalB is non-nil: a per-measurement override forces the
// one-at-a-time path, otherwise whole configuration families go
// through the batched evaluator.
type engine struct {
	opts  Options
	eval  EvalFunc
	evalB BatchEvalFunc

	mu   sync.Mutex // serializes Progress and per-bench counters
	done int
	plan int
}

// Explore searches the design space of each benchmark and returns the
// frontiers. On cancellation it returns the report for the benchmarks
// completed so far alongside the error; everything already evaluated
// is checkpointed.
func Explore(ctx context.Context, progs []bench.Program, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	e := &engine{opts: opts, eval: opts.Evaluate, evalB: opts.EvaluateBatch}
	if e.eval != nil {
		e.evalB = nil
	} else if e.evalB == nil {
		h := opts.Harness
		if h == nil {
			h = bench.NewHarness(1)
		}
		e.evalB = func(ctx context.Context, p bench.Program, items []bench.BatchItem) []bench.BatchOutcome {
			return h.RunBatchCtx(ctx, p, items)
		}
	}

	rep := &Report{Budget: opts.Budget, ExactK: opts.ExactK}
	// evalsByBench remembers every feasible evaluation keyed by config,
	// in candidate order, for the suite frontier.
	type benchEvals struct {
		order []string
		byKey map[string]Eval
	}
	var suiteEvals []benchEvals
	for _, p := range progs {
		br, evals, err := e.exploreBench(ctx, p)
		if err != nil {
			return rep, err
		}
		rep.Benchmarks = append(rep.Benchmarks, *br)
		rep.Evals += br.Evals
		rep.StoreHits += br.StoreHits
		rep.CacheHits += br.CacheHits
		be := benchEvals{byKey: make(map[string]Eval, len(evals))}
		for _, ev := range evals {
			if ev.Feasible() {
				be.order = append(be.order, ev.Key)
				be.byKey[ev.Key] = ev
			}
		}
		suiteEvals = append(suiteEvals, be)
	}

	// Suite frontier: configurations every benchmark evaluated, scored
	// by summed cycles and cost, inserted in the first benchmark's
	// candidate order.
	if len(progs) > 1 {
		var baseCycles int64
		var baseCost int
		for _, br := range rep.Benchmarks {
			baseCycles += br.BaselineCycles
			baseCost += br.BaselineCost
		}
		var f Frontier
		for _, key := range suiteEvals[0].order {
			var cycles int64
			var costWords int
			shared := true
			for _, be := range suiteEvals {
				ev, ok := be.byKey[key]
				if !ok {
					shared = false
					break
				}
				cycles += ev.Cycles
				costWords += ev.Mem.Total()
			}
			if shared {
				f.Add(point(key, cycles, costWords, baseCycles, baseCost, opts.hw()))
			}
		}
		rep.Suite = f.Points()
	}
	return rep, nil
}

// point builds a frontier point with its Table 3 metrics. hw is the
// machine's hardware-cost annotation (0 on the classic machine).
func point(key string, cycles int64, costWords int, baseCycles int64, baseCost int, hw int) Point {
	pg := float64(baseCycles) / float64(cycles)
	ci := float64(costWords) / float64(baseCost)
	return Point{Config: key, Cycles: cycles, Cost: costWords, HW: hw, PG: pg, CI: ci, PCR: pg / ci}
}

// exploreBench searches one benchmark's space.
func (e *engine) exploreBench(ctx context.Context, p bench.Program) (*BenchReport, []Eval, error) {
	marked, arrays, err := DupCandidates(p)
	if err != nil {
		return nil, nil, fmt.Errorf("explore: %s: %w", p.Name, err)
	}
	if len(arrays) > e.opts.MaxDupArrays {
		arrays = arrays[:e.opts.MaxDupArrays]
	}

	configs := enumerate(marked, arrays, e.opts.ExactK)
	// The hardware axis is a fixed stamp, not a search dimension: every
	// candidate runs on the exploration's machine. (ExploreHW sweeps
	// geometries by running this per-geometry search once per point.)
	if e.opts.Banks != 0 || e.opts.Ports != 0 {
		for i := range configs {
			configs[i].Banks, configs[i].Ports = e.opts.Banks, e.opts.Ports
			configs[i] = configs[i].Canon()
		}
	}
	exhaustive := len(arrays) <= e.opts.ExactK && len(configs) <= e.opts.Budget
	if len(configs) > e.opts.Budget {
		configs = configs[:e.opts.Budget]
	}
	e.mu.Lock()
	e.done, e.plan = 0, len(configs)
	e.mu.Unlock()

	evals, err := e.evalBatch(ctx, p, configs)
	if err != nil {
		return nil, nil, err
	}

	// Adaptive phase: when the subset space is too large to enumerate,
	// hill-climb it — synchronous rounds of single-array toggles from
	// the best duplication set so far, carried by the best-performing
	// non-duplication configuration. Deterministic: the round's batch
	// is a pure function of the state, and winners break ties by key.
	budget := e.opts.Budget - len(evals)
	if len(arrays) > e.opts.ExactK && budget > 0 {
		more, err := e.hillClimb(ctx, p, arrays, evals, budget)
		if err != nil {
			return nil, nil, err
		}
		evals = append(evals, more...)
	}

	br, err := e.reportBench(p, marked, arrays, evals, exhaustive)
	if err != nil {
		return nil, nil, err
	}
	return br, evals, nil
}

// hillClimb runs the adaptive duplication-subset search.
func (e *engine) hillClimb(ctx context.Context, p bench.Program, arrays []string, evals []Eval, budget int) ([]Eval, error) {
	// Carrier: the feasible non-duplication configuration with the
	// fewest cycles (ties by key), stripped to its partitioning knobs.
	carrier := FixedCB
	carrier.Banks, carrier.Ports = e.opts.Banks, e.opts.Ports
	carrier = carrier.Canon()
	bestCycles := int64(-1)
	var bestSet []string
	bestSetCycles := int64(-1)
	for _, ev := range evals {
		if !ev.Feasible() || ev.Config.Single {
			continue
		}
		c := ev.Config.Canon()
		if !c.DupAll && len(c.Dup) == 0 {
			if bestCycles < 0 || ev.Cycles < bestCycles || (ev.Cycles == bestCycles && c.Key() < carrier.Key()) {
				carrier, bestCycles = c, ev.Cycles
			}
		}
		if c.DupAll || len(c.Dup) > 0 {
			if bestSetCycles < 0 || ev.Cycles < bestSetCycles {
				bestSet, bestSetCycles = ev.Duplicated, ev.Cycles
			}
		}
	}
	cur := append([]string(nil), bestSet...)
	curCycles := bestSetCycles
	if curCycles < 0 {
		curCycles = bestCycles
	}

	var out []Eval
	for budget > 0 {
		// One round: toggle each array in or out of the current set.
		var batch []Config
		for _, a := range arrays {
			next := toggle(cur, a)
			c := carrier
			c.Dup = next
			c.DupAll = false
			if len(next) == 0 {
				continue // the empty set is the carrier itself, already measured
			}
			batch = append(batch, c.Canon())
		}
		if len(batch) > budget {
			batch = batch[:budget]
		}
		if len(batch) == 0 {
			break
		}
		e.mu.Lock()
		e.plan += len(batch)
		e.mu.Unlock()
		res, err := e.evalBatch(ctx, p, batch)
		if err != nil {
			return nil, err
		}
		out = append(out, res...)
		budget -= len(res)

		// Move to the round's best strict improvement, scanning in
		// candidate order so ties resolve deterministically.
		improved := false
		for _, ev := range res {
			if ev.Feasible() && ev.Cycles < curCycles {
				cur = append(cur[:0:0], ev.Config.Canon().Dup...)
				curCycles = ev.Cycles
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return out, nil
}

// toggle returns names with a added (if absent) or removed (if
// present), sorted.
func toggle(names []string, a string) []string {
	out := make([]string, 0, len(names)+1)
	found := false
	for _, n := range names {
		if n == a {
			found = true
			continue
		}
		out = append(out, n)
	}
	if !found {
		out = append(out, a)
		sort.Strings(out)
	}
	return out
}

// reportBench assembles one benchmark's report from its evaluations.
func (e *engine) reportBench(p bench.Program, marked, arrays []string, evals []Eval, exhaustive bool) (*BenchReport, error) {
	var baseline *Eval
	for i := range evals {
		if evals[i].Config.Single {
			baseline = &evals[i]
			break
		}
	}
	if baseline == nil || !baseline.Feasible() {
		return nil, fmt.Errorf("explore: %s: single-bank baseline unavailable", p.Name)
	}
	baseCycles, baseCost := baseline.Cycles, baseline.Mem.Total()

	br := &BenchReport{
		Bench:          p.Name,
		BaselineCycles: baseCycles,
		BaselineCost:   baseCost,
		DupArrays:      arrays,
		DupMarked:      marked,
		Exhaustive:     exhaustive,
	}
	cbRef := FixedCB
	cbRef.Banks, cbRef.Ports = e.opts.Banks, e.opts.Ports
	cbKey := cbRef.Key()
	var f Frontier
	var cb, best Point
	haveCB, haveBest := false, false
	for _, ev := range evals {
		switch ev.Source {
		case "store":
			br.StoreHits++
		case "cache":
			br.CacheHits++
		}
		br.Evals++
		if !ev.Feasible() {
			br.Infeasible++
			continue
		}
		pt := point(ev.Key, ev.Cycles, ev.Mem.Total(), baseCycles, baseCost, e.opts.hw())
		f.Add(pt)
		if ev.Key == cbKey {
			cb, haveCB = pt, true
		}
		if !haveBest || pt.Cycles < best.Cycles {
			best, haveBest = pt, true
		}
	}
	if !haveCB {
		return nil, fmt.Errorf("explore: %s: fixed CB point was not evaluated", p.Name)
	}
	br.Frontier = f.Points()
	br.CB = cb
	br.DominatingCB = f.Dominating(cb)
	br.Best = best
	return br, nil
}

// evalBatch evaluates configs and returns the results in candidate
// order. Infeasible configurations come back as Evals with Err set;
// cancellation and other context failures abort the batch. The default
// batched evaluator dispatches whole configuration families per worker
// (one shared compiler and simulation arena each); a per-measurement
// override falls back to one-at-a-time dispatch.
func (e *engine) evalBatch(ctx context.Context, p bench.Program, configs []Config) ([]Eval, error) {
	if e.evalB != nil {
		return e.evalBatched(ctx, p, configs)
	}
	out := make([]Eval, len(configs))
	errs := make([]error, len(configs))
	workers := e.opts.Workers
	if workers > len(configs) {
		workers = len(configs)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = e.evalOne(ctx, p, configs[i])
			}
		}()
	}
	for i := range configs {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// evalBatched is the batched flow: checkpoint replays resolve first in
// candidate order, then the remaining configurations split into
// contiguous per-worker chunks, each dispatched as one batch. Results
// deposit at their candidate index, so the output order — and with it
// every downstream frontier and counter — is identical to the
// one-at-a-time path's.
func (e *engine) evalBatched(ctx context.Context, p bench.Program, configs []Config) ([]Eval, error) {
	out := make([]Eval, len(configs))
	errs := make([]error, len(configs))
	var pending []int
	for i := range configs {
		configs[i] = configs[i].Canon()
		if ev, ok := e.fromStore(p, configs[i]); ok {
			out[i] = ev
		} else {
			pending = append(pending, i)
		}
	}
	if len(pending) > 0 {
		workers := e.opts.Workers
		if workers > len(pending) {
			workers = len(pending)
		}
		chunk := (len(pending) + workers - 1) / workers
		var wg sync.WaitGroup
		for lo := 0; lo < len(pending); lo += chunk {
			hi := lo + chunk
			if hi > len(pending) {
				hi = len(pending)
			}
			wg.Add(1)
			go func(idxs []int) {
				defer wg.Done()
				items := make([]bench.BatchItem, len(idxs))
				for k, i := range idxs {
					items[k] = bench.BatchItem{Mode: configs[i].Mode(), Opts: configs[i].RunOptions()}
				}
				for k, o := range e.evalB(ctx, p, items) {
					i := idxs[k]
					out[i], errs[i] = e.record(ctx, p, configs[i], o.Res, o.Cached, o.Err)
				}
			}(pending[lo:hi])
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// evalOne measures one configuration: checkpoint replay when
// available, otherwise execution plus write-through checkpointing.
func (e *engine) evalOne(ctx context.Context, p bench.Program, c Config) (Eval, error) {
	c = c.Canon()
	if ev, ok := e.fromStore(p, c); ok {
		return ev, nil
	}
	res, cached, err := e.eval(ctx, p, c.Mode(), c.RunOptions())
	return e.record(ctx, p, c, res, cached, err)
}

// fromStore replays c's checkpoint if the store holds one.
func (e *engine) fromStore(p bench.Program, c Config) (Eval, bool) {
	if e.opts.Store == nil || e.opts.NoResume {
		return Eval{}, false
	}
	rec, ok := e.opts.Store.Get(store.Key(p.Name, c.Key(), bench.FingerprintSpec(c.Mode(), c.Spec())))
	if !ok {
		return Eval{}, false
	}
	ev := Eval{
		Config: c, Key: c.Key(),
		Cycles: rec.Cycles,
		Mem: cost.Memory{
			XData: rec.MemXData, YData: rec.MemYData,
			Extra: rec.MemExtra, NBanks: rec.MemNBanks,
			Stack: rec.MemStack, Instr: rec.MemInstr,
		},
		DupStores:  rec.DupStores,
		Duplicated: rec.Duplicated,
		Err:        rec.Err,
		Source:     "store",
	}
	e.progress(p.Name, ev)
	return ev, true
}

// record finishes one executed measurement: classify the outcome,
// write the checkpoint through, and emit progress.
func (e *engine) record(ctx context.Context, p bench.Program, c Config, res bench.Result, cached bool, err error) (Eval, error) {
	ev := Eval{Config: c, Key: c.Key()}
	switch {
	case err == nil:
		ev.Cycles = res.Cycles
		ev.Mem = res.Mem
		ev.DupStores = res.DupStores
		ev.Duplicated = res.Duplicated
		ev.Source = "run"
		if cached {
			ev.Source = "cache"
		}
	case ctx.Err() != nil, errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return Eval{}, err
	default:
		// The configuration cannot compile under the machine model
		// (e.g. its duplication set overflows a bank): a legitimate
		// infeasible design point, recorded so resume skips it too.
		ev.Err = err.Error()
		ev.Source = "infeasible"
	}
	if e.opts.Store != nil {
		rec := store.Record{
			Bench: p.Name, Config: ev.Key, Cycles: ev.Cycles,
			MemXData: ev.Mem.XData, MemYData: ev.Mem.YData,
			MemExtra: ev.Mem.Extra, MemNBanks: ev.Mem.NBanks,
			MemStack: ev.Mem.Stack, MemInstr: ev.Mem.Instr,
			DupStores: ev.DupStores, Duplicated: ev.Duplicated, Err: ev.Err,
		}
		if err := e.opts.Store.Put(store.Key(p.Name, ev.Key, bench.FingerprintSpec(c.Mode(), c.Spec())), rec); err != nil {
			return Eval{}, err
		}
	}
	e.progress(p.Name, ev)
	return ev, nil
}

// progress emits one event under the engine lock.
func (e *engine) progress(benchName string, ev Eval) {
	e.mu.Lock()
	e.done++
	done, plan := e.done, e.plan
	cb := e.opts.Progress
	src := ev.Source
	if !ev.Feasible() {
		src = "infeasible"
	}
	if cb != nil {
		cb(Event{
			Bench: benchName, Config: ev.Key, Source: src,
			Cycles: ev.Cycles, Cost: ev.Mem.Total(),
			Done: done, Planned: plan,
		})
	}
	e.mu.Unlock()
}

// DupCandidates compiles a CBDup probe of p and returns the
// duplication-candidate arrays: marked is the set the paper's
// interference analysis would replicate, arrays every partitioned
// array (marked first, then the rest, each sorted) — the explorer's
// duplication search space.
func DupCandidates(p bench.Program) (marked, arrays []string, err error) {
	c, err := pipeline.Compile(p.Source, p.Name, pipeline.Options{Mode: alloc.CBDup})
	if err != nil {
		return nil, nil, err
	}
	g := c.Alloc.Graph
	var rest []string
	for _, s := range g.Nodes {
		if !s.IsArray() {
			continue
		}
		if g.DupMarks[s] {
			marked = append(marked, s.Name)
		} else {
			rest = append(rest, s.Name)
		}
	}
	sort.Strings(marked)
	sort.Strings(rest)
	return marked, append(append([]string(nil), marked...), rest...), nil
}
