package genmc_test

import (
	"strings"
	"testing"

	"dualbank/internal/genmc"
	"dualbank/internal/minic"
)

// TestDeterminism: equal knobs generate byte-identical programs and
// identical expected outputs; distinct seeds diverge.
func TestDeterminism(t *testing.T) {
	for _, a := range genmc.Archetypes() {
		p1 := genmc.Generate(genmc.Derive(a, 42))
		p2 := genmc.Generate(genmc.Derive(a, 42))
		if p1.Source != p2.Source {
			t.Errorf("%v: same seed generated different sources", a)
		}
		if len(p1.Out) != len(p2.Out) {
			t.Errorf("%v: same seed generated different output sets", a)
		}
		for name, want := range p1.Out {
			got := p2.Out[name]
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v: same seed, %s[%d] = %d vs %d", a, name, i, got[i], want[i])
				}
			}
		}
		p3 := genmc.Generate(genmc.Derive(a, 43))
		if p3.Source == p1.Source {
			t.Errorf("%v: seeds 42 and 43 generated identical sources", a)
		}
	}
}

// TestNameRoundTrip: Name/ParseName are inverse on canonical names and
// ParseName rejects everything else.
func TestNameRoundTrip(t *testing.T) {
	for _, a := range genmc.Archetypes() {
		for _, seed := range []uint64{0, 1, 7, 1069, 1 << 40} {
			k := genmc.Derive(a, seed)
			got, ok := genmc.ParseName(k.Name())
			if !ok {
				t.Fatalf("ParseName rejected canonical name %q", k.Name())
			}
			if got != k {
				t.Fatalf("round-trip changed knobs: %+v -> %+v", k, got)
			}
		}
	}
	for _, bad := range []string{
		"", "gen_", "gen_pair", "gen_pair_", "gen_pair_x", "gen_pair_01",
		"gen_pair_-1", "gen_tri_5", "fir_32_1", "gen_pair_5_extra",
		"gen_pair_99999999999999999999999",
	} {
		if _, ok := genmc.ParseName(bad); ok {
			t.Errorf("ParseName accepted %q", bad)
		}
	}
}

// TestGeneratedProgramsAreValidMiniC: the front end accepts every
// generated program across archetypes and seeds, and the expected
// outputs cover every declared global array.
func TestGeneratedProgramsAreValidMiniC(t *testing.T) {
	for _, a := range genmc.Archetypes() {
		for seed := uint64(0); seed < 50; seed++ {
			p := genmc.Generate(genmc.Derive(a, seed))
			file, err := minic.Parse(p.Source)
			if err != nil {
				t.Fatalf("%s: parse: %v\n%s", p.Name, err, p.Source)
			}
			if err := minic.Analyze(file); err != nil {
				t.Fatalf("%s: analyze: %v\n%s", p.Name, err, p.Source)
			}
			if len(p.Out) == 0 {
				t.Fatalf("%s: no expected outputs", p.Name)
			}
			for _, d := range file.Decls {
				want, ok := p.Out[d.Name]
				if !ok {
					t.Fatalf("%s: global %s has no expected output", p.Name, d.Name)
				}
				if n := d.Sym.Words(); n != len(want) {
					t.Fatalf("%s: global %s is %d words, expectation has %d", p.Name, d.Name, n, len(want))
				}
			}
		}
	}
}

// TestKnobClamping: Generate is total over arbitrary knob values —
// hostile settings clamp instead of panicking or emitting invalid
// programs.
func TestKnobClamping(t *testing.T) {
	hostile := []genmc.Knobs{
		{Archetype: genmc.Pair, Seed: 1, Arrays: -5, Size: 0, Loops: -1, Depth: 99, Stmts: -7},
		{Archetype: genmc.Window, Seed: 2, Arrays: 1 << 30, Size: 1 << 30, Loops: 1 << 20, Depth: 0, Stmts: 1 << 20},
		{Archetype: genmc.Chain, Seed: 3, Arrays: 2, Size: 17, Loops: 2, Depth: 1, Stmts: 2},
	}
	for _, k := range hostile {
		p := genmc.Generate(k)
		if _, err := minic.Parse(p.Source); err != nil {
			t.Errorf("knobs %+v generated invalid MiniC: %v", k, err)
		}
	}
}

// TestSourceShape: archetype fingerprints show up in the source —
// chain programs chase nxt, window programs read one array twice in a
// statement, pair programs never do.
func TestSourceShape(t *testing.T) {
	chain := genmc.Generate(genmc.Derive(genmc.Chain, 5))
	if !strings.Contains(chain.Source, "nxt[") {
		t.Errorf("chain program never chases nxt:\n%s", chain.Source)
	}
	pair := genmc.Generate(genmc.Derive(genmc.Pair, 5))
	if strings.Contains(pair.Source, "nxt[") {
		t.Errorf("pair program contains a successor array:\n%s", pair.Source)
	}
}
